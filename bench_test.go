package saber

// This file is the benchmark face of the reproduction: one testing.B
// target per table/figure of the paper's evaluation (§6), each delegating
// to the experiment harness in internal/bench. Run a single figure with
//
//	go test -bench=BenchmarkFig10a -benchmem
//
// or everything with `go test -bench=. -benchmem`. Each benchmark prints
// the regenerated rows once. Benchmark volumes are kept modest; use
// cmd/saber-bench with -scale/-mb for higher-fidelity runs.

import (
	"fmt"
	"os"
	"testing"

	"saber/internal/bench"
)

// benchOptions keeps the full suite's wall time in minutes on a small
// host while the calibrated model still dominates real compute.
func benchOptions() bench.Options {
	return bench.Options{Scale: 8, MB: 4, Workers: 8}
}

func runExperiment(b *testing.B, id string) {
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var rep bench.Report
	for i := 0; i < b.N; i++ {
		rep = e.Run(benchOptions())
	}
	if len(rep.Rows) == 0 {
		b.Fatalf("experiment %s produced no rows", id)
	}
	fmt.Fprintln(os.Stderr)
	rep.Print(os.Stderr)
}

func BenchmarkFig01SparkSlide(b *testing.B)         { runExperiment(b, "fig01") }
func BenchmarkTable1Catalog(b *testing.B)           { runExperiment(b, "tab01") }
func BenchmarkFig07Applications(b *testing.B)       { runExperiment(b, "fig07") }
func BenchmarkFig08Synthetic(b *testing.B)          { runExperiment(b, "fig08") }
func BenchmarkFig09SparkComparison(b *testing.B)    { runExperiment(b, "fig09") }
func BenchmarkMonetDBJoin(b *testing.B)             { runExperiment(b, "mdb") }
func BenchmarkFig10aSelectPredicates(b *testing.B)  { runExperiment(b, "fig10a") }
func BenchmarkFig10bJoinPredicates(b *testing.B)    { runExperiment(b, "fig10b") }
func BenchmarkFig11aSelectSlide(b *testing.B)       { runExperiment(b, "fig11a") }
func BenchmarkFig11bAggSlide(b *testing.B)          { runExperiment(b, "fig11b") }
func BenchmarkFig12TaskSize(b *testing.B)           { runExperiment(b, "fig12") }
func BenchmarkFig13WindowIndependence(b *testing.B) { runExperiment(b, "fig13") }
func BenchmarkFig14CPUScaling(b *testing.B)         { runExperiment(b, "fig14") }
func BenchmarkFig15Scheduling(b *testing.B)         { runExperiment(b, "fig15") }
func BenchmarkFig16Adaptation(b *testing.B)         { runExperiment(b, "fig16") }
func BenchmarkAblationLookahead(b *testing.B)       { runExperiment(b, "abl-lookahead") }
func BenchmarkAblationIncremental(b *testing.B)     { runExperiment(b, "abl-incremental") }
func BenchmarkAblationPipeline(b *testing.B)        { runExperiment(b, "abl-pipeline") }
func BenchmarkAblationDispatcher(b *testing.B)      { runExperiment(b, "abl-dispatcher") }
