module saber

go 1.22
