// Package saber is a from-scratch Go reproduction of SABER, the
// window-based hybrid relational stream processing engine for
// heterogeneous architectures (Koliousis et al., SIGMOD 2016).
//
// SABER executes windowed streaming SQL queries as fixed-size query tasks
// that can run on any available processor — a pool of CPU workers or a
// (here: simulated) GPGPU — and schedules them with the heterogeneous
// lookahead scheduling (HLS) algorithm, which continuously measures per-
// query task throughput on each processor instead of relying on an
// offline performance model.
//
// Quick start:
//
//	eng := saber.New(saber.Config{CPUWorkers: 4})
//	eng.DeclareStream("S", saber.MustSchema(
//		saber.Field{Name: "timestamp", Type: saber.Int64},
//		saber.Field{Name: "value", Type: saber.Float32},
//	))
//	q, err := eng.Query("avg", `
//		select timestamp, avg(value) as avgValue
//		from S [rows 1024 slide 256]`)
//	q.OnResult(func(rows []byte) { ... })
//	eng.Start()
//	q.Insert(tuples)
//	eng.Drain()
//	eng.Close()
//
// See DESIGN.md for the architecture and the mapping from the paper's
// sections to the packages under internal/.
package saber

import (
	"fmt"
	"net/http"
	"time"

	"saber/internal/adapt"
	"saber/internal/catalog"
	"saber/internal/ckpt"
	"saber/internal/cql"
	"saber/internal/engine"
	"saber/internal/gpu"
	"saber/internal/model"
	"saber/internal/obs"
	"saber/internal/overload"
	"saber/internal/query"
	"saber/internal/sched"
	"saber/internal/schema"
	"saber/internal/window"
)

// Re-exported substrate types, so applications only import this package.
type (
	// Schema describes a stream's fixed-width binary tuple layout.
	Schema = schema.Schema
	// Field is one attribute of a tuple schema.
	Field = schema.Field
	// Type is a primitive field type.
	Type = schema.Type
	// Window is a window definition ω(size, slide).
	Window = window.Def
	// Query is a validated logical query.
	Query = query.Query
	// QueryBuilder builds queries programmatically (the CQL front end
	// covers the common cases).
	QueryBuilder = query.Builder
	// UDF is a user-defined window operator function (paper §2.4),
	// installed with QueryBuilder.UDF.
	UDF = query.UDF
	// Stats is a per-query counter snapshot.
	Stats = engine.Stats
	// GPUDevice is a simulated GPGPU accelerator.
	GPUDevice = gpu.Device
	// GPUConfig configures a simulated GPGPU.
	GPUConfig = gpu.Config
	// ModelParams is the calibrated performance model.
	ModelParams = model.Params
	// Processor identifies a processor class for static scheduling.
	Processor = sched.Processor
	// MetricsRegistry is the engine's observability registry: every
	// counter, gauge and latency histogram under the canonical
	// saber.* naming scheme (see DESIGN.md §9).
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time view of a MetricsRegistry.
	MetricsSnapshot = obs.Snapshot
	// TraceRecord is one finished task's lifecycle trace from the
	// tracer's postmortem ring.
	TraceRecord = obs.TraceRecord
	// ShedPolicy selects what overload protection does when a query's
	// input queue exceeds its budget and the bounded admission wait
	// expires (see Config.MaxQueueBytes).
	ShedPolicy = overload.Policy
)

// Field type constants.
const (
	Int32   = schema.Int32
	Int64   = schema.Int64
	Float32 = schema.Float32
	Float64 = schema.Float64
)

// Processor classes for Config.StaticAssign.
const (
	OnCPU = sched.CPU
	OnGPU = sched.GPU
)

// Shedding policies for Config.ShedPolicy.
const (
	// ShedNone never drops data: a full queue blocks Insert (quiesce-
	// aware backpressure) until it drains below budget.
	ShedNone = overload.ShedNone
	// ShedOldest cuts the oldest undispatched window range first,
	// bounding result staleness under sustained overload.
	ShedOldest = overload.ShedOldest
	// ShedWeighted drops incoming chunks probabilistically, weighted per
	// input side, so hot sources absorb more of the loss.
	ShedWeighted = overload.ShedWeighted
)

// ParseShedPolicy parses a -shed-policy flag value: "none", "oldest" or
// "weighted".
func ParseShedPolicy(s string) (ShedPolicy, error) { return overload.ParsePolicy(s) }

// NewSchema builds a schema from fields; the first field of a stream
// schema must be a long timestamp.
func NewSchema(fields ...Field) (*Schema, error) { return schema.New(fields...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(fields ...Field) *Schema { return schema.MustNew(fields...) }

// CountWindow returns a count-based window of size tuples sliding by
// slide tuples.
func CountWindow(size, slide int64) Window { return window.NewCount(size, slide) }

// TimeWindow returns a time-based window over the tuples' logical
// timestamps.
func TimeWindow(size, slide int64) Window { return window.NewTime(size, slide) }

// UnboundedWindow returns the whole-stream window (per-tuple streaming
// operators).
func UnboundedWindow() Window { return window.NewUnbounded() }

// NewQuery starts a programmatic query builder.
func NewQuery(name string) *QueryBuilder { return query.NewBuilder(name) }

// OpenGPU starts a simulated GPGPU device. Pass it in Config.GPU and
// Close it after the engine.
func OpenGPU(cfg GPUConfig) *GPUDevice { return gpu.Open(cfg) }

// DefaultModel returns the paper-calibrated performance model; use
// Scaled to shrink experiment wall time.
func DefaultModel() ModelParams { return model.Default() }

// Config tunes the engine; the zero value reproduces the paper's setup
// (15 CPU workers, 1 MiB tasks, HLS scheduling, calibrated model).
type Config struct {
	// CPUWorkers is the number of CPU worker threads (default 15).
	CPUWorkers int
	// GPU attaches a simulated GPGPU; nil runs CPU-only.
	GPU *GPUDevice
	// TaskSize is ϕ, the query task size in bytes (default 1 MiB).
	TaskSize int
	// Policy is "hls" (default), "fcfs", or "static".
	Policy string
	// StaticAssign maps query registration order to processors for the
	// static policy.
	StaticAssign []Processor
	// SwitchThreshold is HLS's exploration threshold (default 10).
	SwitchThreshold int
	// Model calibrates simulated performance; zero selects DefaultModel.
	Model ModelParams
	// NativeSpeed disables the performance model's padding and runs at
	// raw Go speed (for correctness tests; relative performance then
	// reflects this host, not the paper's hardware).
	NativeSpeed bool
	// InputBufferSize and ResultSlots override engine internals; zero
	// selects defaults.
	InputBufferSize int
	ResultSlots     int

	// LatencySLO enables adaptive task sizing (dynamic ϕ): when set, a
	// feedback controller resizes tasks within [MinTaskSize, MaxTaskSize]
	// to keep the end-to-end p99 latency under this target while growing
	// ϕ whenever the GPU pipeline is dispatch-bound. TaskSize becomes the
	// starting ϕ. Controller state is exported as saber.adapt.* metrics.
	LatencySLO time.Duration
	// MinTaskSize and MaxTaskSize bound the adaptive ϕ in bytes; zero
	// selects 4 KiB and 4 MiB. Ignored unless LatencySLO is set.
	MinTaskSize, MaxTaskSize int
	// AdaptInterval is the controller's tick period (default 50ms).
	// Ignored unless LatencySLO is set.
	AdaptInterval time.Duration

	// CheckpointDir enables epoch-based checkpointing: the engine
	// periodically persists each query's state (committed output
	// frontier, open windows, input cursors, ϕ, learned scheduler rates)
	// to this directory, and Restore rebuilds from the newest valid
	// epoch after a crash. Empty disables checkpointing.
	CheckpointDir string
	// CheckpointInterval is the automatic epoch period. Zero selects
	// 500ms when CheckpointDir is set; a negative value disables the
	// automatic coordinator (manual Checkpoint calls only).
	CheckpointInterval time.Duration
	// CheckpointKeep is how many epochs to retain on disk (default 3);
	// older epochs are the fallback past a torn or corrupt newest file.
	CheckpointKeep int

	// MaxQueueBytes arms overload protection with a per-query,
	// per-input admission budget in bytes: once a query buffers this
	// much unprocessed input, further Inserts block (ShedNone) or, after
	// a bounded wait, actuate the shedding policy. The budget is floored
	// at two task sizes so the dispatcher can always cut a task. Zero
	// leaves the ring capacity as the only bound, and shedding never
	// actuates — the policy fires only when this budget is the binding
	// constraint; plain ring backpressure always stays lossless.
	MaxQueueBytes int64
	// ShedPolicy is the tiered load-shedding rung applied when the
	// budget binds and the bounded wait expires: ShedNone (default)
	// blocks losslessly, ShedOldest cuts the stalest buffered window
	// range, ShedWeighted drops arriving chunks probabilistically.
	// Every shed tuple is counted in Stats (TuplesShed, TuplesShedAdmit)
	// and the saber.overload.* metrics, so offered == out + shed holds
	// exactly. With adaptive sizing (LatencySLO) armed, shedding only
	// actuates while the controller reports the last-rung overload
	// signal — resizing ϕ is always tried first.
	ShedPolicy ShedPolicy
	// ShedMaxWait bounds how long a blocked Insert waits for budget
	// headroom before the policy actuates (default 2ms). Ignored when
	// ShedPolicy is ShedNone.
	ShedMaxWait time.Duration
}

// Engine is a SABER instance: declare streams, register queries, start,
// ingest, drain.
type Engine struct {
	e       *engine.Engine
	catalog cql.Catalog
}

// New creates an engine.
func New(cfg Config) *Engine {
	ecfg := engine.Config{
		CPUWorkers:      cfg.CPUWorkers,
		GPU:             cfg.GPU,
		TaskSize:        cfg.TaskSize,
		InputBufferSize: cfg.InputBufferSize,
		ResultSlots:     cfg.ResultSlots,
		Policy:          cfg.Policy,
		StaticAssign:    cfg.StaticAssign,
		SwitchThreshold: cfg.SwitchThreshold,
		Model:           cfg.Model,
		DisablePad:      cfg.NativeSpeed,

		CheckpointDir:      cfg.CheckpointDir,
		CheckpointInterval: cfg.CheckpointInterval,
		CheckpointKeep:     cfg.CheckpointKeep,
	}
	if cfg.MaxQueueBytes > 0 || cfg.ShedPolicy != ShedNone {
		ecfg.Overload = &overload.Config{
			MaxQueueBytes: cfg.MaxQueueBytes,
			Policy:        cfg.ShedPolicy,
			MaxWait:       cfg.ShedMaxWait,
		}
	}
	if cfg.LatencySLO > 0 {
		ecfg.Adapt = &adapt.Config{
			SLO:      cfg.LatencySLO,
			MinPhi:   cfg.MinTaskSize,
			MaxPhi:   cfg.MaxTaskSize,
			Interval: cfg.AdaptInterval,
		}
	}
	return &Engine{
		e:       engine.New(ecfg),
		catalog: cql.Catalog{},
	}
}

// DeclareStream names a stream schema for use in CQL FROM clauses.
func (e *Engine) DeclareStream(name string, s *Schema) {
	e.catalog[name] = s
}

// Query parses a CQL query against the declared streams, compiles it and
// registers it. Must be called before Start.
func (e *Engine) Query(name, src string) (*QueryHandle, error) {
	q, err := cql.Parse(name, src, e.catalog)
	if err != nil {
		return nil, err
	}
	return e.RegisterQuery(q)
}

// MustQuery is Query that panics on error.
func (e *Engine) MustQuery(name, src string) *QueryHandle {
	h, err := e.Query(name, src)
	if err != nil {
		panic(err)
	}
	return h
}

// RegisterQuery registers a programmatically built query.
func (e *Engine) RegisterQuery(q *Query) (*QueryHandle, error) {
	h, err := e.e.Register(q)
	if err != nil {
		return nil, err
	}
	return &QueryHandle{h: h}, nil
}

// Start launches the worker threads; no further queries can be added.
func (e *Engine) Start() error { return e.e.Start() }

// Checkpoint cuts one durable epoch immediately (the automatic
// coordinator, when enabled, does this on its own). After it returns,
// every QueryHandle.Committed reflects the new epoch.
func (e *Engine) Checkpoint() error {
	_, err := e.e.Checkpoint()
	return err
}

// RestoreInfo summarises a successful Restore.
type RestoreInfo = engine.RestoreInfo

// ErrNoCheckpoint is returned (wrapped) by Restore when the directory
// holds no loadable epoch — a cold start, not a failure.
var ErrNoCheckpoint = ckpt.ErrNoCheckpoint

// Restore rebuilds engine state from the newest valid checkpoint in dir.
// Call it after registering the same queries (matched by name) and
// before Start. On success, resume feeding each query from
// QueryHandle.InputCursor and keep downstream output up to
// QueryHandle.Committed — together that yields exactly-once restart.
func (e *Engine) Restore(dir string) (*RestoreInfo, error) { return e.e.Restore(dir) }

// Drain finishes all buffered and in-flight work and flushes open
// windows. Call after the last Insert.
func (e *Engine) Drain() { e.e.Drain() }

// Close stops the engine's workers.
func (e *Engine) Close() { e.e.Close() }

// QueueLen reports the system-wide task queue depth (telemetry).
func (e *Engine) QueueLen() int { return e.e.QueueLen() }

// TaskSize reports the live task size ϕ in bytes — constant unless
// adaptive sizing (Config.LatencySLO) is enabled.
func (e *Engine) TaskSize() int { return e.e.TaskSize() }

// Metrics returns the engine's observability registry. Always non-nil;
// snapshot it for programmatic access, or serve MetricsHandler for the
// admin endpoint.
func (e *Engine) Metrics() *MetricsRegistry { return e.e.Metrics() }

// MetricsHandler returns the admin endpoint: /varz (JSON snapshot),
// /metrics (Prometheus text format), /traces (recent task traces) and
// /debug/pprof. Mount it on an http.Server of your choosing; it is
// read-only and safe to serve while the engine runs.
func (e *Engine) MetricsHandler() http.Handler {
	return obs.Handler(e.e.Metrics(), e.e.Tracer())
}

// RecentTraces returns the most recent task lifecycle traces, newest
// first (a bounded postmortem ring of 128 records).
func (e *Engine) RecentTraces() []TraceRecord { return e.e.Tracer().Recent() }

// StallReport returns the stall watchdog's most recent postmortem — the
// pipeline state and recent task traces captured when buffered input
// stopped draining — or "" when no stall has been detected. The
// saber.overload.stalls counter carries the count.
func (e *Engine) StallReport() string { return e.e.StallReport() }

// ThroughputMatrix returns the HLS throughput matrix rows as
// [query][cpu, gpu] rates (telemetry, Fig. 16).
func (e *Engine) ThroughputMatrix() [][2]float64 {
	m := e.e.Matrix()
	if m == nil {
		return nil
	}
	snap := m.Snapshot()
	out := make([][2]float64, len(snap))
	for i, row := range snap {
		out[i] = [2]float64{row[sched.CPU], row[sched.GPU]}
	}
	return out
}

// QueryHandle ingests data into a query and exposes its ordered result
// stream and statistics.
type QueryHandle struct {
	h *engine.Handle
}

// Insert appends serialised tuples to the query's (single) input.
func (q *QueryHandle) Insert(data []byte) { q.h.Insert(data) }

// InsertInto appends tuples to input side 0 or 1 of a join query.
func (q *QueryHandle) InsertInto(side int, data []byte) { q.h.InsertInto(side, data) }

// TryInsert is the non-blocking admission path: the whole payload is
// admitted, or none of it is and TryInsert returns false (counted in
// saber.overload.q<i>.admit.rejects). Use it when the caller would
// rather shed or reroute at the source than block on backpressure.
func (q *QueryHandle) TryInsert(data []byte) bool { return q.h.TryInsert(data) }

// TryInsertInto is TryInsert for input side 0 or 1 of a join query.
func (q *QueryHandle) TryInsertInto(side int, data []byte) bool {
	return q.h.TryInsertInto(side, data)
}

// OnResult installs an ordered result sink. fn must not retain the slice.
func (q *QueryHandle) OnResult(fn func(rows []byte)) { q.h.OnResult(fn) }

// OutputSchema returns the result tuple layout.
func (q *QueryHandle) OutputSchema() *Schema { return q.h.OutputSchema() }

// Name returns the query's name.
func (q *QueryHandle) Name() string { return q.h.Name() }

// Stats snapshots the query's counters.
func (q *QueryHandle) Stats() Stats { return q.h.Stats() }

// Committed returns the output byte offset covered by the newest durable
// checkpoint: keep output up to this offset and resume from it after a
// Restore to observe every result exactly once.
func (q *QueryHandle) Committed() int64 { return q.h.Committed() }

// InputCursor returns the absolute tuple index the feeder must replay
// the stream from after a Restore (side 0 unless the query is a join).
func (q *QueryHandle) InputCursor(side int) int64 { return q.h.InputCursor(side) }

// String describes the handle.
func (q *QueryHandle) String() string {
	return fmt.Sprintf("query(%s)", q.h.Name())
}

// Catalog is a live multi-query catalog driving an Engine: it executes
// BQL DDL scripts (CREATE SOURCE / SINK / STREAM, DROP, PAUSE, RESUME),
// owns the named objects and their dependency graph, and keeps the
// statement log inside every checkpoint so a restarted engine rebuilds
// the exact registered query set. Obtain one with Engine.BootScript.
type Catalog struct {
	m *catalog.Manager
}

// CatalogListing is the JSON-serialisable snapshot of a Catalog's
// contents, as served on GET /catalog.
type CatalogListing = catalog.Listing

// BootScript builds a catalog for the engine from a BQL script. When the
// engine's checkpoint directory holds a loadable epoch, the snapshot's
// statement log is replayed instead of the script and the engine is
// restored at the barrier (the returned RestoreInfo is non-nil exactly
// in that case). Call before Start; call Catalog.StartFeeds after it.
func (e *Engine) BootScript(script string) (*Catalog, *RestoreInfo, error) {
	m, info, err := catalog.Boot(e.e, script)
	if err != nil {
		return nil, nil, err
	}
	return &Catalog{m: m}, info, nil
}

// AdminHandler returns the admin endpoint with the catalog's routes
// mounted next to /varz, /metrics, /traces and /debug/pprof: GET
// /catalog lists the live objects, POST /catalog/ddl executes DDL
// against the running engine.
func (e *Engine) AdminHandler(c *Catalog) http.Handler {
	return obs.Handler(e.e.Metrics(), e.e.Tracer(), c.m.Routes()...)
}

// Exec executes a BQL script against the live catalog and reports how
// many statements were applied before the first error, if any.
func (c *Catalog) Exec(src string) (int, error) { return c.m.Exec(src) }

// ExecScript is Exec discarding the applied-statement count.
func (c *Catalog) ExecScript(src string) error { return c.m.ExecScript(src) }

// StartFeeds starts the generator feeders and TCP listeners. Call once,
// after Engine.Start.
func (c *Catalog) StartFeeds() { c.m.StartFeeds() }

// WaitFeeds blocks until every currently running generator feeder
// reaches its count bound. Feeders without a count never finish; stop
// those with Close.
func (c *Catalog) WaitFeeds() { c.m.WaitFeeds() }

// Tap attaches fn to a stream's post-emitter result feed, alongside any
// INTO sink. fn must not retain the slice.
func (c *Catalog) Tap(stream string, fn func(rows []byte)) error { return c.m.Tap(stream, fn) }

// Stream returns the query handle behind a named stream.
func (c *Catalog) Stream(name string) (*QueryHandle, error) {
	h, err := c.m.Handle(name)
	if err != nil {
		return nil, err
	}
	return &QueryHandle{h: h}, nil
}

// List snapshots the catalog contents.
func (c *Catalog) List() CatalogListing { return c.m.List() }

// Statements returns the replayable statement log — the DDL that
// recreates the current catalog, in execution order.
func (c *Catalog) Statements() []string { return c.m.Statements() }

// Close stops feeders, listeners and file sinks. It does not stop the
// engine: drain and close that separately.
func (c *Catalog) Close() { c.m.Close() }
