// Command ckptdump prints a human-readable summary of a checkpoint
// directory: the manifest chain, then every epoch file newest-first with
// its per-query barrier, committed output frontier, input cursors and
// pending-window count. Torn or corrupt files are flagged instead of
// aborting the dump — exactly the files recovery would fall back past.
//
// Usage:
//
//	ckptdump <checkpoint-dir>
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"saber/internal/ckpt"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: ckptdump <checkpoint-dir>")
		os.Exit(2)
	}
	dir := os.Args[1]

	if m, err := os.ReadFile(filepath.Join(dir, "MANIFEST")); err == nil {
		fmt.Printf("MANIFEST (newest first):\n")
		for _, line := range strings.Split(strings.TrimSpace(string(m)), "\n") {
			if line != "" {
				fmt.Printf("  %s\n", line)
			}
		}
	} else {
		fmt.Printf("MANIFEST: %v\n", err)
	}

	files, err := ckpt.Scan(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ckptdump: %v\n", err)
		os.Exit(1)
	}
	if len(files) == 0 {
		fmt.Println("no epoch files")
		return
	}
	corrupt := 0
	for _, f := range files {
		snap, err := ckpt.Load(f.Path)
		if err != nil {
			corrupt++
			fmt.Printf("\n%s: CORRUPT (%v)\n", filepath.Base(f.Path), err)
			continue
		}
		st, _ := os.Stat(f.Path)
		size := int64(0)
		if st != nil {
			size = st.Size()
		}
		fmt.Printf("\n%s: epoch %d, phi %d bytes, %d queries, %d bytes on disk\n",
			filepath.Base(f.Path), snap.Epoch, snap.Phi, len(snap.Queries), size)
		for _, q := range snap.Queries {
			fmt.Printf("  query %q: barrier task %d, committed %d bytes / %d tuples, %d pending windows\n",
				q.Name, q.Barrier, q.CommittedBytes, q.CommittedTuples, len(q.Pending))
			for i, in := range q.Ins {
				fmt.Printf("    input %d: replay from byte %d (prevTS %d)\n", i, in.FreeTo, in.PrevTS)
			}
			if q.RateCPU > 0 || q.RateGPU > 0 {
				fmt.Printf("    learned rates: cpu %.0f B/s, gpu %.0f B/s\n", q.RateCPU, q.RateGPU)
			}
		}
	}
	if corrupt > 0 {
		fmt.Printf("\n%d of %d epoch files corrupt — recovery falls back past them\n", corrupt, len(files))
	}
}
