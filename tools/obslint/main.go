// Command obslint enforces the observability boundary: all telemetry
// goes through internal/obs (counters, gauges, histograms, traces), so
// raw sync/atomic free-function accumulators — the pre-PR-5 ad-hoc
// counter idiom, e.g. atomic.AddUint64(&stat, 1) — are rejected
// everywhere outside internal/obs itself.
//
// Typed atomics (atomic.Int64 and friends) remain fine: they are the
// concurrency primitives the engine's data structures are built from.
// The free-function form over a package-level word is what ad-hoc
// telemetry looks like, and that is what this lint catches.
//
// Usage: go run ./tools/obslint [dir]   (default ".")
// Exits 1 and lists offending call sites when any are found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// banned is the set of sync/atomic free functions whose only plausible
// use in this codebase is an ad-hoc counter.
var banned = map[string]bool{
	"AddInt32": true, "AddInt64": true,
	"AddUint32": true, "AddUint64": true, "AddUintptr": true,
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var bad []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel := filepath.ToSlash(path)
		// The obs package owns the atomics; this linter is also exempt
		// (it names the banned calls in its own source).
		if strings.Contains(rel, "internal/obs/") || strings.Contains(rel, "tools/obslint/") {
			return nil
		}
		bad = append(bad, lintFile(path)...)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "obslint: %v\n", err)
		os.Exit(2)
	}
	if len(bad) > 0 {
		fmt.Fprintln(os.Stderr, "obslint: raw atomic telemetry outside internal/obs (use obs.Counter / obs.Gauge / RegisterFunc):")
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "  %s\n", b)
		}
		os.Exit(1)
	}
}

// lintFile reports banned atomic free-function calls in one file as
// "path:line: atomic.Fn" strings.
func lintFile(path string) []string {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return []string{fmt.Sprintf("%s: parse error: %v", path, err)}
	}
	// Resolve the local name of the sync/atomic import (usually
	// "atomic", but honour renames; "_" and "." imports are ignored —
	// dot-imports of sync/atomic do not occur in this codebase).
	atomicName := ""
	for _, imp := range f.Imports {
		p, _ := strconv.Unquote(imp.Path.Value)
		if p != "sync/atomic" {
			continue
		}
		atomicName = "atomic"
		if imp.Name != nil {
			atomicName = imp.Name.Name
		}
	}
	if atomicName == "" || atomicName == "_" || atomicName == "." {
		return nil
	}
	var bad []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != atomicName || !banned[sel.Sel.Name] {
			return true
		}
		pos := fset.Position(call.Pos())
		bad = append(bad, fmt.Sprintf("%s:%d: atomic.%s", path, pos.Line, sel.Sel.Name))
		return true
	})
	return bad
}
