// Command benchguard gates the checked-in benchmark twins:
//
//   - Observability overhead (BENCH_operators.json, the operators
//     experiment): fails when the aggregate metrics-on overhead exceeds
//     the budget. The gate is the report's geometric-mean overhead
//     across operators, not the per-operator maximum: single-operator
//     readings at microsecond batch times are noise-dominated (a
//     descheduled trial shows up as several percent), while the
//     aggregate is stable. The bench batch (4096 tuples) is also ~8x
//     smaller than an engine task (1 MiB), so the measured overhead
//     overstates the engine's true per-byte cost.
//
//   - Columnar layout (same default run): every operator must carry a
//     columnar measurement whose paired columnar/row ratio stays above
//     -col-min (default 0.9 — kernel-level parity with a noise
//     allowance; the batch fits in cache, so the layouts are expected
//     to tie per-operator and structural regressions show up as large
//     drops). The ingest_bandwidth section must be present with at
//     least one elided gather and an end-to-end columnar/row ratio of
//     at least -ingest-min (default 1.0): the whole point of shredding
//     at ingest is that the full pipeline gets faster, not slower.
//
//   - Adaptive task sizing (-adaptive, BENCH_adaptive.json, the
//     adaptive experiment): fails unless the adaptive run meets the
//     latency SLO under the bursty load AND sustains at least -min-pct
//     of the best fixed-ϕ configuration's paced throughput — the
//     "adaptivity is nearly free" claim, checked against the twin.
//
//   - Overload protection (-overload, BENCH_overload.json, the overload
//     experiment): fails unless the oldest-policy run under the
//     2x-capacity feed keeps goodput at or above -goodput-min percent of
//     the measured blocking capacity, actually sheds (a zero shed
//     fraction means the overload path was never exercised), holds its
//     tail p99 inside the experiment's SLO, and trips no stall
//     watchdog.
//
//   - Epoch checkpointing (-ckpt, BENCH_ckpt.json, the ckpt
//     experiment): fails when the paired checkpoint-on/off throughput
//     overhead exceeds -ckpt-max (default 5%), or when the run cut no
//     epochs — a coordinator that never fires would gate at 0% overhead
//     while protecting nothing.
//
// Usage:
//
//	go run ./tools/benchguard [-max 3] [-file BENCH_operators.json]
//	go run ./tools/benchguard -adaptive [-min-pct 90] [-file BENCH_adaptive.json]
//	go run ./tools/benchguard -ckpt [-ckpt-max 5] [-file BENCH_ckpt.json]
//	go run ./tools/benchguard -overload [-goodput-min 80] [-file BENCH_overload.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	adaptive := flag.Bool("adaptive", false, "gate the adaptive task-sizing twin instead of the observability overhead")
	ckpt := flag.Bool("ckpt", false, "gate the epoch-checkpointing overhead twin instead of the observability overhead")
	over := flag.Bool("overload", false, "gate the overload-protection twin instead of the observability overhead")
	file := flag.String("file", "", "experiment JSON twin (default BENCH_operators.json; BENCH_adaptive.json with -adaptive; BENCH_ckpt.json with -ckpt)")
	max := flag.Float64("max", 3, "maximum allowed aggregate metrics-on overhead, percent")
	minPct := flag.Float64("min-pct", 90, "with -adaptive: minimum adaptive throughput as a percentage of the best fixed ϕ")
	colMin := flag.Float64("col-min", 0.9, "minimum per-operator columnar/row throughput ratio")
	ingestMin := flag.Float64("ingest-min", 1.0, "minimum end-to-end ingest-bandwidth columnar/row ratio")
	ckptMax := flag.Float64("ckpt-max", 5, "with -ckpt: maximum allowed paired checkpoint-on overhead, percent")
	goodputMin := flag.Float64("goodput-min", 80, "with -overload: minimum oldest-policy goodput as a percentage of blocking capacity")
	flag.Parse()

	if *adaptive {
		if *file == "" {
			*file = "BENCH_adaptive.json"
		}
		guardAdaptive(*file, *minPct)
		return
	}
	if *ckpt {
		if *file == "" {
			*file = "BENCH_ckpt.json"
		}
		guardCkpt(*file, *ckptMax)
		return
	}
	if *over {
		if *file == "" {
			*file = "BENCH_overload.json"
		}
		guardOverload(*file, *goodputMin)
		return
	}
	if *file == "" {
		*file = "BENCH_operators.json"
	}

	buf, err := os.ReadFile(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v (run saber-bench -experiment operators first)\n", err)
		os.Exit(2)
	}
	var js struct {
		Operators []struct {
			Name               string  `json:"name"`
			VectorizedMtps     float64 `json:"vectorized_mtps"`
			ColumnarMtps       float64 `json:"columnar_mtps"`
			ColumnarVsRow      float64 `json:"columnar_vs_row"`
			MetricsOnMtps      float64 `json:"metrics_on_mtps"`
			MetricsOverheadPct float64 `json:"metrics_overhead_pct"`
		} `json:"operators"`
		IngestBandwidth *struct {
			Query         string  `json:"query"`
			RowMtps       float64 `json:"row_mtps"`
			ColumnarMtps  float64 `json:"columnar_mtps"`
			ColumnarVsRow float64 `json:"columnar_vs_row"`
			GatherElided  int64   `json:"gather_elided"`
			GatherCopied  int64   `json:"gather_copied"`
		} `json:"ingest_bandwidth"`
		MetricsOverheadPct float64 `json:"metrics_overhead_pct"`
		Metrics            struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf, &js); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *file, err)
		os.Exit(2)
	}
	if len(js.Operators) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s: no operators (stale or truncated file?)\n", *file)
		os.Exit(2)
	}
	failed := false
	for _, op := range js.Operators {
		if op.MetricsOnMtps <= 0 {
			fmt.Fprintf(os.Stderr, "benchguard: %s: missing metrics-on measurement for %s (pre-observability file?)\n", *file, op.Name)
			os.Exit(2)
		}
		if op.ColumnarMtps <= 0 {
			fmt.Fprintf(os.Stderr, "benchguard: %s: missing columnar measurement for %s (pre-columnar file?)\n", *file, op.Name)
			os.Exit(2)
		}
		fmt.Printf("  %-18s bare %8.2f Mt/s   columnar %8.2f Mt/s (%.2fx)   metrics-on %8.2f Mt/s   overhead %5.2f%%\n",
			op.Name, op.VectorizedMtps, op.ColumnarMtps, op.ColumnarVsRow, op.MetricsOnMtps, op.MetricsOverheadPct)
		if op.ColumnarVsRow < *colMin {
			fmt.Fprintf(os.Stderr, "benchguard: %s columnar/row ratio %.2f below the %.2f floor\n",
				op.Name, op.ColumnarVsRow, *colMin)
			failed = true
		}
	}
	if len(js.Metrics.Counters) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s: embedded metrics snapshot is empty\n", *file)
		os.Exit(2)
	}
	ing := js.IngestBandwidth
	if ing == nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: no ingest_bandwidth section (pre-columnar file?)\n", *file)
		os.Exit(2)
	}
	fmt.Printf("ingest-bandwidth (%s): row %.2f Mt/s, columnar %.2f Mt/s (%.2fx), %d gathers elided / %d wrap copies\n",
		ing.Query, ing.RowMtps, ing.ColumnarMtps, ing.ColumnarVsRow, ing.GatherElided, ing.GatherCopied)
	if ing.GatherElided <= 0 {
		fmt.Fprintf(os.Stderr, "benchguard: ingest-bandwidth run elided no gathers — the columnar path never engaged\n")
		failed = true
	}
	if ing.ColumnarVsRow < *ingestMin {
		fmt.Fprintf(os.Stderr, "benchguard: ingest-bandwidth columnar/row ratio %.2f below the %.2f floor\n",
			ing.ColumnarVsRow, *ingestMin)
		failed = true
	}
	fmt.Printf("aggregate overhead %.2f%% (budget %.2f%%)\n", js.MetricsOverheadPct, *max)
	if js.MetricsOverheadPct > *max {
		fmt.Fprintf(os.Stderr, "benchguard: metrics-on overhead %.2f%% exceeds %.2f%% budget\n", js.MetricsOverheadPct, *max)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}

// adaptiveRun mirrors the adaptive experiment's per-config JSON record
// (internal/bench adaptRun).
type adaptiveRun struct {
	Phi      int     `json:"phi"`
	GBps     float64 `json:"gbps"`
	P99Ms    float64 `json:"p99_ms"`
	MeetsSLO bool    `json:"meets_slo"`
	PhiStart int     `json:"phi_start"`
	PhiFinal int     `json:"phi_final"`
	Grows    int64   `json:"grows"`
	Shrinks  int64   `json:"shrinks"`
}

// guardAdaptive gates BENCH_adaptive.json: the adaptive run must meet
// the SLO that the large fixed configurations violate, while keeping at
// least minPct of the best fixed configuration's paced throughput.
func guardAdaptive(file string, minPct float64) {
	buf, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v (run saber-bench -experiment adaptive first)\n", err)
		os.Exit(2)
	}
	var js struct {
		SLOMs             float64       `json:"slo_ms"`
		Fixed             []adaptiveRun `json:"fixed"`
		Adaptive          adaptiveRun   `json:"adaptive"`
		BestFixedGBps     float64       `json:"best_fixed_gbps"`
		AdaptiveVsBestPct float64       `json:"adaptive_vs_best_pct"`
	}
	if err := json.Unmarshal(buf, &js); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", file, err)
		os.Exit(2)
	}
	if len(js.Fixed) == 0 || js.Adaptive.PhiStart == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s: no fixed sweep or no adaptive run (stale or truncated file?)\n", file)
		os.Exit(2)
	}
	for _, r := range js.Fixed {
		fmt.Printf("  fixed ϕ=%-8d %6.2f GB/s   tail p99 %6.2f ms   meets SLO %v\n",
			r.Phi, r.GBps, r.P99Ms, r.MeetsSLO)
	}
	a := js.Adaptive
	fmt.Printf("  adaptive %d→%d  %6.2f GB/s   tail p99 %6.2f ms   meets SLO %v   (%d grows, %d shrinks)\n",
		a.PhiStart, a.PhiFinal, a.GBps, a.P99Ms, a.MeetsSLO, a.Grows, a.Shrinks)
	fmt.Printf("adaptive vs best fixed: %.1f%% of %.2f GB/s (floor %.1f%%), SLO %.0f ms\n",
		js.AdaptiveVsBestPct, js.BestFixedGBps, minPct, js.SLOMs)

	if !a.MeetsSLO {
		fmt.Fprintf(os.Stderr, "benchguard: adaptive run misses the %.0f ms SLO (tail p99 %.2f ms)\n",
			js.SLOMs, a.P99Ms)
		os.Exit(1)
	}
	if js.AdaptiveVsBestPct < minPct {
		fmt.Fprintf(os.Stderr, "benchguard: adaptive throughput %.1f%% of best fixed ϕ, below the %.1f%% floor\n",
			js.AdaptiveVsBestPct, minPct)
		os.Exit(1)
	}
	if a.Grows+a.Shrinks == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: adaptive run never resized ϕ — the controller was inert\n")
		os.Exit(1)
	}
}

// guardCkpt gates BENCH_ckpt.json: the paired checkpoint-on/off
// throughput overhead must stay within maxPct, with at least one epoch
// actually persisted (and none failing) so the measurement demonstrably
// exercised the coordinator.
func guardCkpt(file string, maxPct float64) {
	buf, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v (run saber-bench -experiment ckpt first)\n", err)
		os.Exit(2)
	}
	var js struct {
		IntervalMs  float64 `json:"interval_ms"`
		Trials      int     `json:"trials"`
		OffGBps     float64 `json:"off_gbps"`
		OnGBps      float64 `json:"on_gbps"`
		OverheadPct float64 `json:"overhead_pct"`
		Epochs      int64   `json:"epochs"`
		CkptBytes   int64   `json:"ckpt_bytes"`
		P50Ms       float64 `json:"snapshot_p50_ms"`
		P99Ms       float64 `json:"snapshot_p99_ms"`
		Runs        []struct {
			Ckpt     bool    `json:"ckpt"`
			GBps     float64 `json:"gbps"`
			Epochs   int64   `json:"epochs"`
			Failures int64   `json:"failures"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf, &js); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", file, err)
		os.Exit(2)
	}
	if js.Trials == 0 || len(js.Runs) == 0 || js.OffGBps <= 0 || js.OnGBps <= 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s: no trials recorded (stale or truncated file?)\n", file)
		os.Exit(2)
	}
	for _, r := range js.Runs {
		mode := "off"
		if r.Ckpt {
			mode = "on "
		}
		fmt.Printf("  checkpoint %s %6.2f GB/s   epochs %3d   persist failures %d\n",
			mode, r.GBps, r.Epochs, r.Failures)
		if r.Failures > 0 {
			fmt.Fprintf(os.Stderr, "benchguard: %d checkpoint persist failure(s) during the measurement\n", r.Failures)
			os.Exit(1)
		}
	}
	fmt.Printf("paired overhead %.2f%% over %d pairs (budget %.2f%%), %d epochs at %0.fms period, snapshot p50 %.2f ms / p99 %.2f ms\n",
		js.OverheadPct, js.Trials, maxPct, js.Epochs, js.IntervalMs, js.P50Ms, js.P99Ms)
	if js.Epochs == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: checkpoint-on runs cut no epochs — the coordinator never fired\n")
		os.Exit(1)
	}
	if js.OverheadPct > maxPct {
		fmt.Fprintf(os.Stderr, "benchguard: checkpoint overhead %.2f%% exceeds %.2f%% budget\n", js.OverheadPct, maxPct)
		os.Exit(1)
	}
}

// overloadGateRun mirrors the overload experiment's per-policy JSON
// record (internal/bench overloadRun).
type overloadGateRun struct {
	Policy               string  `json:"policy"`
	OfferedGBps          float64 `json:"offered_gbps"`
	GoodputGBps          float64 `json:"goodput_gbps"`
	GoodputVsCapacityPct float64 `json:"goodput_vs_capacity_pct"`
	ShedFrac             float64 `json:"shed_frac"`
	P99Ms                float64 `json:"p99_ms"`
	MeetsSLO             bool    `json:"meets_slo"`
	Stalls               int64   `json:"stalls"`
}

// guardOverload gates BENCH_overload.json: under the 2x-capacity feed
// the oldest-policy run must keep goodput near capacity, really shed,
// stay inside the SLO and trip no stall watchdog — graceful degradation,
// demonstrated rather than asserted.
func guardOverload(file string, goodputMin float64) {
	buf, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v (run saber-bench -experiment overload first)\n", err)
		os.Exit(2)
	}
	var js struct {
		CapacityGBps float64           `json:"capacity_gbps"`
		SLOMs        float64           `json:"slo_ms"`
		OfferedX     float64           `json:"offered_x"`
		Runs         []overloadGateRun `json:"runs"`
		Gate         overloadGateRun   `json:"gate"`
	}
	if err := json.Unmarshal(buf, &js); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", file, err)
		os.Exit(2)
	}
	if js.CapacityGBps <= 0 || len(js.Runs) == 0 || js.Gate.Policy == "" {
		fmt.Fprintf(os.Stderr, "benchguard: %s: no capacity or gate run recorded (stale or truncated file?)\n", file)
		os.Exit(2)
	}
	for _, r := range js.Runs {
		fmt.Printf("  %-9s offered %5.2f GB/s   goodput %5.2f GB/s (%5.1f%% of capacity)   shed %5.1f%%   p99 %7.2f ms   meets SLO %v   stalls %d\n",
			r.Policy, r.OfferedGBps, r.GoodputGBps, r.GoodputVsCapacityPct, r.ShedFrac*100, r.P99Ms, r.MeetsSLO, r.Stalls)
	}
	g := js.Gate
	fmt.Printf("gate (%s): goodput %.1f%% of %.2f GB/s capacity (floor %.1f%%), shed %.1f%%, p99 %.2f ms (SLO %.0f ms) at %.0fx offered load\n",
		g.Policy, g.GoodputVsCapacityPct, js.CapacityGBps, goodputMin, g.ShedFrac*100, g.P99Ms, js.SLOMs, js.OfferedX)
	if g.GoodputVsCapacityPct < goodputMin {
		fmt.Fprintf(os.Stderr, "benchguard: overloaded goodput %.1f%% of capacity, below the %.1f%% floor\n",
			g.GoodputVsCapacityPct, goodputMin)
		os.Exit(1)
	}
	if g.ShedFrac <= 0 {
		fmt.Fprintf(os.Stderr, "benchguard: gate run shed nothing — the overload path was never exercised\n")
		os.Exit(1)
	}
	if !g.MeetsSLO {
		fmt.Fprintf(os.Stderr, "benchguard: gate run misses the %.0f ms SLO (tail p99 %.2f ms)\n", js.SLOMs, g.P99Ms)
		os.Exit(1)
	}
	for _, r := range js.Runs {
		if r.Stalls != 0 {
			fmt.Fprintf(os.Stderr, "benchguard: %s run tripped the stall watchdog %d time(s)\n", r.Policy, r.Stalls)
			os.Exit(1)
		}
	}
}
