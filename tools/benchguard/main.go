// Command benchguard gates the observability overhead: it reads a
// BENCH_operators.json produced by the operators experiment (which
// measures every vectorized kernel bare and again with the engine's full
// per-task metrics/trace bundle applied per batch) and fails when the
// aggregate metrics-on overhead exceeds the budget.
//
// The gate is the report's geometric-mean overhead across operators, not
// the per-operator maximum: single-operator readings at microsecond
// batch times are noise-dominated (a descheduled trial shows up as
// several percent), while the aggregate is stable. The bench batch
// (4096 tuples) is also ~8x smaller than an engine task (1 MiB), so the
// measured overhead overstates the engine's true per-byte cost.
//
// Usage: go run ./tools/benchguard [-max 3] [-file BENCH_operators.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	file := flag.String("file", "BENCH_operators.json", "operators experiment JSON twin")
	max := flag.Float64("max", 3, "maximum allowed aggregate metrics-on overhead, percent")
	flag.Parse()

	buf, err := os.ReadFile(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v (run saber-bench -experiment operators first)\n", err)
		os.Exit(2)
	}
	var js struct {
		Operators []struct {
			Name               string  `json:"name"`
			VectorizedMtps     float64 `json:"vectorized_mtps"`
			MetricsOnMtps      float64 `json:"metrics_on_mtps"`
			MetricsOverheadPct float64 `json:"metrics_overhead_pct"`
		} `json:"operators"`
		MetricsOverheadPct float64 `json:"metrics_overhead_pct"`
		Metrics            struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf, &js); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *file, err)
		os.Exit(2)
	}
	if len(js.Operators) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s: no operators (stale or truncated file?)\n", *file)
		os.Exit(2)
	}
	for _, op := range js.Operators {
		if op.MetricsOnMtps <= 0 {
			fmt.Fprintf(os.Stderr, "benchguard: %s: missing metrics-on measurement for %s (pre-observability file?)\n", *file, op.Name)
			os.Exit(2)
		}
		fmt.Printf("  %-18s bare %8.2f Mt/s   metrics-on %8.2f Mt/s   overhead %5.2f%%\n",
			op.Name, op.VectorizedMtps, op.MetricsOnMtps, op.MetricsOverheadPct)
	}
	if len(js.Metrics.Counters) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s: embedded metrics snapshot is empty\n", *file)
		os.Exit(2)
	}
	fmt.Printf("aggregate overhead %.2f%% (budget %.2f%%)\n", js.MetricsOverheadPct, *max)
	if js.MetricsOverheadPct > *max {
		fmt.Fprintf(os.Stderr, "benchguard: metrics-on overhead %.2f%% exceeds %.2f%% budget\n", js.MetricsOverheadPct, *max)
		os.Exit(1)
	}
}
