package saber

import (
	"sync"
	"testing"

	"saber/internal/expr"
	"saber/internal/ingest"
	"saber/internal/query"
	"saber/internal/schema"
)

func testStream(n int) (*Schema, []byte) {
	s := MustSchema(
		Field{Name: "timestamp", Type: Int64},
		Field{Name: "value", Type: Float32},
		Field{Name: "key", Type: Int32},
	)
	b := schema.NewTupleBuilder(s, n)
	for i := 0; i < n; i++ {
		b.Begin().Timestamp(int64(i)).Float32("value", float32(i%10)).Int32("key", int32(i%4))
	}
	return s, b.Bytes()
}

func TestPublicAPIQuickstart(t *testing.T) {
	s, stream := testStream(10000)
	eng := New(Config{CPUWorkers: 2, TaskSize: 4096, NativeSpeed: true})
	eng.DeclareStream("S", s)

	q, err := eng.Query("avg", `
		select timestamp, key, avg(value) as avgValue, count(*) as n
		from S [rows 1000 slide 1000]
		group by key`)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	rowsSeen := 0
	out := q.OutputSchema()
	q.OnResult(func(rows []byte) {
		mu.Lock()
		rowsSeen += len(rows) / out.TupleSize()
		mu.Unlock()
	})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	q.Insert(stream)
	eng.Drain()
	eng.Close()

	// 10 tumbling windows × 4 keys.
	if rowsSeen != 40 {
		t.Fatalf("rows = %d, want 40", rowsSeen)
	}
	st := q.Stats()
	if st.BytesIn != int64(len(stream)) || st.TuplesOut != 40 {
		t.Errorf("stats = %+v", st)
	}
	if q.Name() != "avg" || q.String() != "query(avg)" {
		t.Errorf("naming: %s / %s", q.Name(), q.String())
	}
}

func TestPublicAPIHybrid(t *testing.T) {
	dev := OpenGPU(GPUConfig{SMs: 2, Model: DefaultModel().Scaled(1e-6)})
	defer dev.Close()
	s, stream := testStream(50000)
	eng := New(Config{CPUWorkers: 2, TaskSize: 4096, GPU: dev, NativeSpeed: true, SwitchThreshold: 3})
	eng.DeclareStream("S", s)
	q := eng.MustQuery("sel", `select * from S [rows 64] where value > 4.0`)
	var mu sync.Mutex
	gotBytes := 0
	q.OnResult(func(rows []byte) { mu.Lock(); gotBytes += len(rows); mu.Unlock() })
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	q.Insert(stream)
	eng.Drain()
	eng.Close()
	// value = i%10 > 4 → half the tuples.
	if gotBytes != len(stream)/2 {
		t.Fatalf("output bytes = %d, want %d", gotBytes, len(stream)/2)
	}
	st := q.Stats()
	if st.TasksGPU == 0 || st.TasksCPU == 0 {
		t.Errorf("hybrid split = %+v", st)
	}
	if m := eng.ThroughputMatrix(); len(m) != 1 || m[0][0] <= 0 {
		t.Errorf("matrix = %v", m)
	}
}

func TestPublicAPIBuilderAndWindows(t *testing.T) {
	s, stream := testStream(5000)
	eng := New(Config{CPUWorkers: 1, TaskSize: 8192, NativeSpeed: true})
	q := NewQuery("built").
		From("S", s, CountWindow(500, 250)).
		Aggregate(query.Sum, expr.Col("value"), "total").
		MustBuild()
	h, err := eng.RegisterQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	h.Insert(stream)
	eng.Drain()
	eng.Close()
	if h.Stats().TuplesOut == 0 {
		t.Fatal("no windows emitted")
	}
	if CountWindow(4, 2).Kind != TimeWindow(4, 2).Kind {
		// distinct kinds
	} else {
		t.Error("window constructors collapsed")
	}
	if UnboundedWindow().Validate() != nil {
		t.Error("unbounded invalid")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	eng := New(Config{CPUWorkers: 1, NativeSpeed: true})
	if _, err := eng.Query("q", `select * from Missing [rows 4]`); err == nil {
		t.Error("unknown stream accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustQuery did not panic")
		}
	}()
	eng.MustQuery("q", `select`)
}

func TestNetworkIngestEndToEnd(t *testing.T) {
	s, stream := testStream(20000)
	eng := New(Config{CPUWorkers: 2, TaskSize: 4096, NativeSpeed: true})
	eng.DeclareStream("S", s)
	q := eng.MustQuery("net", `select timestamp, key, count(*) as n from S [rows 1000] group by key`)
	var mu sync.Mutex
	rows := 0
	out := q.OutputSchema()
	q.OnResult(func(r []byte) {
		mu.Lock()
		rows += len(r) / out.TupleSize()
		mu.Unlock()
	})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	srv, err := ingest.Listen("127.0.0.1:0", ingest.SinkFunc(q.Insert), s.TupleSize())
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()

	c, err := ingest.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tsz := s.TupleSize()
	for off := 0; off < len(stream); off += 500 * tsz {
		end := off + 500*tsz
		if end > len(stream) {
			end = len(stream)
		}
		if err := c.Send(stream[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	srv.Close() // waits for the connection to drain into the engine
	eng.Drain()
	eng.Close()

	if srv.BytesIn() != int64(len(stream)) {
		t.Fatalf("server received %d bytes, want %d", srv.BytesIn(), len(stream))
	}
	// 20 tumbling windows × 4 keys.
	if rows != 80 {
		t.Fatalf("rows = %d, want 80", rows)
	}
}
