package saber

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"saber/internal/workload"
)

// TestBQLEndToEnd is the frontend's acceptance demo on the public API:
// an engine booted from a BQL script serves three concurrent queries;
// mid-stream, one stream is dropped and another added through the HTTP
// admin API; every surviving stream's output is byte-identical to a
// statically registered single-query reference (zero disturbance from
// sibling DDL); and a second engine booted from the same checkpoint
// directory restores the exact final catalog.
func TestBQLEndToEnd(t *testing.T) {
	const (
		seed  = 3
		count = 20000
	)
	dir := t.TempDir()
	cfg := Config{CPUWorkers: 4, TaskSize: 4096, NativeSpeed: true,
		CheckpointDir: dir, CheckpointInterval: -1}

	// Non-aggregate streams default to IStream, which is the identity on
	// selection output — so a plain statically registered CQL query is
	// the exact reference for each stream.
	queries := map[string]string{
		"wide": "SELECT * FROM Syn [rows 64 slide 32] WHERE a3 < 512",
		"agg":  "SELECT count(*) AS n FROM Syn [rows 200 slide 50]",
		"slim": "SELECT timestamp, a1 FROM Syn [rows 64 slide 64]",
	}
	script := `CREATE SOURCE Syn TYPE gen WITH (gen='syn', seed=3, rate=400000, count=20000);
CREATE STREAM wide AS ` + queries["wide"] + `;
CREATE STREAM agg AS ` + queries["agg"] + `;
CREATE STREAM slim AS ` + queries["slim"] + `;`

	eng := New(cfg)
	cat, info, err := eng.BootScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if info != nil {
		t.Fatalf("cold boot restored: %+v", info)
	}

	type sink struct {
		mu  sync.Mutex
		buf []byte
	}
	taps := map[string]*sink{}
	tap := func(name string) {
		s := &sink{}
		taps[name] = s
		if err := cat.Tap(name, func(rows []byte) {
			s.mu.Lock()
			s.buf = append(s.buf, rows...)
			s.mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	for name := range queries {
		tap(name)
	}

	srv := httptest.NewServer(eng.AdminHandler(cat))
	defer srv.Close()
	ddl := func(stmt string) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/catalog/ddl", "text/plain", strings.NewReader(stmt))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var res struct{ Error string }
			_ = json.NewDecoder(resp.Body).Decode(&res)
			t.Fatalf("ddl %q: status %d: %s", stmt, resp.StatusCode, res.Error)
		}
	}

	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	cat.StartFeeds()

	// Wait until the paced run is genuinely mid-stream, then mutate the
	// catalog through the admin API: add one stream, drop another.
	h, err := cat.Stream("wide")
	if err != nil {
		t.Fatal(err)
	}
	quarter := int64(count / 4 * workload.SynSchema.TupleSize())
	deadline := time.Now().Add(10 * time.Second)
	for h.Stats().BytesIn < quarter {
		if time.Now().After(deadline) {
			t.Fatalf("feed stuck at %d bytes", h.Stats().BytesIn)
		}
		time.Sleep(time.Millisecond)
	}
	// Create the new stream paused (one atomic DDL batch) so the tap
	// attaches before any result is emitted, then release it.
	lateQuery := "SELECT timestamp, a2 FROM Syn [rows 32 slide 32]"
	ddl("CREATE STREAM late AS " + lateQuery + "; PAUSE STREAM late;")
	tap("late")
	ddl("RESUME STREAM late;")
	ddl("DROP STREAM slim;")

	cat.WaitFeeds()
	eng.Drain()
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cat.Close()
	eng.Close()

	// Differential: each surviving stream against a statically registered
	// single-query engine over the identical deterministic input. The
	// mid-run DDL must have left no trace in their bytes — and the
	// late-created stream sees the full stream (its feeder replays the
	// deterministic source from tuple zero).
	input := workload.NewSynGen(seed).Next(nil, count)
	refQueries := map[string]string{
		"wide": queries["wide"], "agg": queries["agg"], "late": lateQuery,
	}
	for name, q := range refQueries {
		ref := New(Config{CPUWorkers: 4, TaskSize: 4096, NativeSpeed: true})
		ref.DeclareStream("Syn", workload.SynSchema)
		qh, err := ref.Query(name, q)
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var want []byte
		qh.OnResult(func(rows []byte) {
			mu.Lock()
			want = append(want, rows...)
			mu.Unlock()
		})
		if err := ref.Start(); err != nil {
			t.Fatal(err)
		}
		qh.Insert(input)
		ref.Drain()
		ref.Close()
		if got := taps[name].buf; !bytes.Equal(got, want) {
			t.Errorf("%s: catalog run %d bytes, static reference %d bytes", name, len(got), len(want))
		}
	}

	// Restore round-trip: a fresh engine booted from the checkpoint
	// directory rebuilds the final catalog — late present, slim gone —
	// without consulting the boot script.
	eng2 := New(cfg)
	cat2, info2, err := eng2.BootScript("ignored on restore")
	if err != nil {
		t.Fatal(err)
	}
	if info2 == nil {
		t.Fatal("no restore happened")
	}
	names := map[string]bool{}
	for _, s := range cat2.List().Streams {
		names[s.Name] = true
	}
	for _, want := range []string{"wide", "agg", "late"} {
		if !names[want] {
			t.Errorf("restored catalog lacks %s: %v", want, names)
		}
	}
	if names["slim"] {
		t.Errorf("dropped stream came back: %v", names)
	}
	cat2.Close()
	eng2.Close()
}
