// Smart grid anomaly detection: the paper's SG pipeline (Appendix A.2).
// SG1 derives the sliding global load average and SG2 the per-plug local
// averages; their output streams feed SG3, the outlier join, whose output
// feeds the final per-house outlier count — demonstrating how derived
// streams chain through engines.
//
//	go run ./examples/smartgrid
package main

import (
	"fmt"
	"sync"
	"time"

	"saber"
	"saber/internal/workload"
)

func main() {
	// Stage 1: SG1 + SG2 over the raw meter readings.
	stage1 := saber.New(saber.Config{CPUWorkers: 4, TaskSize: 128 << 10, NativeSpeed: true})
	const windowScale = 60 // shrink the paper's 3600-unit windows for the demo
	sg1, err := stage1.RegisterQuery(workload.SG1(windowScale))
	if err != nil {
		panic(err)
	}
	sg2, err := stage1.RegisterQuery(workload.SG2(windowScale))
	if err != nil {
		panic(err)
	}

	var mu sync.Mutex
	var globalStream, localStream []byte
	sg1.OnResult(func(rows []byte) {
		mu.Lock()
		globalStream = append(globalStream, rows...)
		mu.Unlock()
	})
	sg2.OnResult(func(rows []byte) {
		mu.Lock()
		localStream = append(localStream, rows...)
		mu.Unlock()
	})
	if err := stage1.Start(); err != nil {
		panic(err)
	}

	gen := workload.NewSGGen(3)
	start := time.Now()
	var buf []byte
	for i := 0; i < 32; i++ {
		buf = gen.Next(buf[:0], 8192)
		sg1.Insert(buf)
		sg2.Insert(buf)
	}
	stage1.Drain()
	stage1.Close()

	// Stage 2: the SG3 outlier join over the derived streams.
	stage2 := saber.New(saber.Config{CPUWorkers: 4, TaskSize: 64 << 10, NativeSpeed: true})
	sg3, err := stage2.RegisterQuery(workload.SG3Join())
	if err != nil {
		panic(err)
	}
	out := sg3.OutputSchema()
	outliersByHouse := map[int32]int{}
	sg3.OnResult(func(rows []byte) {
		mu.Lock()
		defer mu.Unlock()
		osz := out.TupleSize()
		houseIdx := out.IndexOf("house")
		for i := 0; i+osz <= len(rows); i += osz {
			outliersByHouse[out.ReadInt32(rows[i:], houseIdx)]++
		}
	})
	if err := stage2.Start(); err != nil {
		panic(err)
	}
	// Feed the two derived streams interleaved and proportionally so the
	// join dispatcher's batches stay time-aligned (the local stream has
	// one row per group per window, the global stream one row per window).
	ltz, gtz := workload.SGLocalSchema.TupleSize(), workload.SGGlobalSchema.TupleSize()
	localStream = localStream[:len(localStream)/ltz*ltz]
	globalStream = globalStream[:len(globalStream)/gtz*gtz]
	const steps = 64
	for s := 0; s < steps; s++ {
		lcut := func(x int) int { return (len(localStream) / ltz) * x / steps * ltz }
		gcut := func(x int) int { return (len(globalStream) / gtz) * x / steps * gtz }
		sg3.InsertInto(0, localStream[lcut(s):lcut(s+1)])
		sg3.InsertInto(1, globalStream[gcut(s):gcut(s+1)])
	}
	stage2.Drain()
	stage2.Close()

	fmt.Printf("derived %d local and %d global averages in %v\n",
		len(localStream)/workload.SGLocalSchema.TupleSize(),
		len(globalStream)/workload.SGGlobalSchema.TupleSize(),
		time.Since(start).Round(time.Millisecond))
	top, topN := int32(-1), 0
	total := 0
	for h, n := range outliersByHouse {
		total += n
		if n > topN {
			top, topN = h, n
		}
	}
	fmt.Printf("outlier readings (local avg above global): %d across %d houses\n", total, len(outliersByHouse))
	if topN > 0 {
		fmt.Printf("most anomalous house: %d with %d outliers\n", top, topN)
	}
}
