// Cluster monitoring: the paper's CM1 and CM2 queries (Appendix A.1)
// over a synthetic Google-cluster-style event trace, running concurrently
// on one hybrid engine — the multi-query scenario HLS was designed for.
//
//	go run ./examples/clustermon
package main

import (
	"fmt"
	"sync"
	"time"

	"saber"
	"saber/internal/workload"
)

func main() {
	gpu := saber.OpenGPU(saber.GPUConfig{})
	defer gpu.Close()
	eng := saber.New(saber.Config{
		CPUWorkers: 4,
		GPU:        gpu,
		TaskSize:   256 << 10,
		Model:      saber.DefaultModel().Scaled(2),
	})
	eng.DeclareStream("TaskEvents", workload.CMSchema)

	cm1, err := eng.Query("CM1", `
		select timestamp, category, sum(cpu) as totalCpu
		from TaskEvents [range 60 slide 1]
		group by category`)
	if err != nil {
		panic(err)
	}
	cm2, err := eng.Query("CM2", `
		select timestamp, jobId, avg(cpu) as avgCpu
		from TaskEvents [range 60 slide 1]
		where eventType == 1
		group by jobId`)
	if err != nil {
		panic(err)
	}

	var mu sync.Mutex
	samples := map[string][]string{}
	keep := func(name string, h *saber.QueryHandle) {
		out := h.OutputSchema()
		h.OnResult(func(rows []byte) {
			mu.Lock()
			defer mu.Unlock()
			if len(samples[name]) < 3 && len(rows) >= out.TupleSize() {
				samples[name] = append(samples[name], out.Format(rows[:out.TupleSize()]))
			}
		})
	}
	keep("CM1", cm1)
	keep("CM2", cm2)

	if err := eng.Start(); err != nil {
		panic(err)
	}

	gen := workload.NewCMGen(7)
	const chunkTuples = 4096
	start := time.Now()
	var buf []byte
	for i := 0; i < 64; i++ {
		buf = gen.Next(buf[:0], chunkTuples)
		// Both queries consume the same trace.
		cm1.Insert(buf)
		cm2.Insert(buf)
	}
	eng.Drain()
	eng.Close()
	elapsed := time.Since(start)

	for _, name := range []string{"CM1", "CM2"} {
		fmt.Printf("%s sample results:\n", name)
		for _, s := range samples[name] {
			fmt.Println("  ", s)
		}
	}
	for name, h := range map[string]*saber.QueryHandle{"CM1": cm1, "CM2": cm2} {
		st := h.Stats()
		fmt.Printf("%s: %.1f MiB in, %d windows of output, cpu/gpu tasks %d/%d\n",
			name, float64(st.BytesIn)/(1<<20), st.TuplesOut, st.TasksCPU, st.TasksGPU)
	}
	fmt.Printf("wall time %v; HLS throughput matrix %v\n",
		elapsed.Round(time.Millisecond), eng.ThroughputMatrix())
}
