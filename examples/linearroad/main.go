// Linear Road: the paper's LRB pipeline (Appendix A.3). Stage 1 runs
// LRB1, deriving highway segments from raw position reports; the derived
// SegSpeedStr then feeds LRB3 (congested segments via HAVING) and LRB4
// (vehicle counts per segment) in a second engine.
//
//	go run ./examples/linearroad
package main

import (
	"fmt"
	"sync"
	"time"

	"saber"
	"saber/internal/workload"
)

func main() {
	// Stage 1: LRB1 over the raw position reports.
	stage1 := saber.New(saber.Config{CPUWorkers: 4, TaskSize: 256 << 10, NativeSpeed: true})
	lrb1, err := stage1.RegisterQuery(workload.LRB1())
	if err != nil {
		panic(err)
	}
	var mu sync.Mutex
	var segStream []byte
	lrb1.OnResult(func(rows []byte) {
		mu.Lock()
		segStream = append(segStream, rows...)
		mu.Unlock()
	})
	if err := stage1.Start(); err != nil {
		panic(err)
	}

	gen := workload.NewLRBGen(5, 400)
	start := time.Now()
	var buf []byte
	for i := 0; i < 48; i++ {
		buf = gen.Next(buf[:0], 8192)
		lrb1.Insert(buf)
	}
	stage1.Drain()
	stage1.Close()

	// Stage 2: LRB3 and LRB4 over SegSpeedStr.
	stage2 := saber.New(saber.Config{CPUWorkers: 4, TaskSize: 256 << 10, NativeSpeed: true})
	lrb3, err := stage2.RegisterQuery(workload.LRB3())
	if err != nil {
		panic(err)
	}
	lrb4, err := stage2.RegisterQuery(workload.LRB4())
	if err != nil {
		panic(err)
	}

	congested := map[[2]int64]bool{} // (segment, direction)
	out3 := lrb3.OutputSchema()
	segIdx, dirIdx := out3.IndexOf("segment"), out3.IndexOf("direction")
	lrb3.OnResult(func(rows []byte) {
		mu.Lock()
		defer mu.Unlock()
		osz := out3.TupleSize()
		for i := 0; i+osz <= len(rows); i += osz {
			congested[[2]int64{out3.ReadInt(rows[i:], segIdx), out3.ReadInt(rows[i:], dirIdx)}] = true
		}
	})
	if err := stage2.Start(); err != nil {
		panic(err)
	}
	lrb3.Insert(segStream)
	lrb4.Insert(segStream)
	stage2.Drain()
	stage2.Close()

	st1, st3, st4 := lrb1.Stats(), lrb3.Stats(), lrb4.Stats()
	fmt.Printf("position reports: %d → segment stream: %d tuples (pipeline in %v)\n",
		st1.BytesIn/int64(workload.LRBSchema.TupleSize()), st1.TuplesOut,
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("LRB3 congested-segment window results: %d\n", st3.TuplesOut)
	mu.Lock()
	fmt.Printf("distinct congested (segment, direction) pairs: %d (simulator congests segments 20–25)\n", len(congested))
	mu.Unlock()
	fmt.Printf("LRB4 vehicle-count rows: %d\n", st4.TuplesOut)
}
