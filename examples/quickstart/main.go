// Quickstart: a windowed aggregation over a synthetic sensor stream.
//
//	go run ./examples/quickstart
//
// It declares a stream, registers one CQL query, pumps a million tuples
// through the hybrid engine (CPU workers plus the simulated GPGPU), and
// prints the first window results and the run statistics.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"saber"
)

func main() {
	sensor := saber.MustSchema(
		saber.Field{Name: "timestamp", Type: saber.Int64},
		saber.Field{Name: "sensor", Type: saber.Int32},
		saber.Field{Name: "value", Type: saber.Float32},
	)

	gpu := saber.OpenGPU(saber.GPUConfig{})
	defer gpu.Close()

	eng := saber.New(saber.Config{
		CPUWorkers: 4,
		GPU:        gpu,
		TaskSize:   256 << 10,
	})
	eng.DeclareStream("Sensors", sensor)

	q, err := eng.Query("avgBySensor", `
		select timestamp, sensor, avg(value) as avgValue, count(*) as n
		from Sensors [rows 65536 slide 16384]
		group by sensor`)
	if err != nil {
		panic(err)
	}

	out := q.OutputSchema()
	var mu sync.Mutex
	printed := 0
	q.OnResult(func(rows []byte) {
		mu.Lock()
		defer mu.Unlock()
		osz := out.TupleSize()
		for i := 0; i+osz <= len(rows) && printed < 8; i += osz {
			fmt.Println("  ", out.Format(rows[i:i+osz]))
			printed++
		}
	})

	if err := eng.Start(); err != nil {
		panic(err)
	}

	// Pump one million tuples.
	const tuples = 1 << 20
	rnd := rand.New(rand.NewSource(1))
	buf := make([]byte, sensor.TupleSize())
	batch := make([]byte, 0, 4096*sensor.TupleSize())
	start := time.Now()
	for i := 0; i < tuples; i++ {
		sensor.SetTimestamp(buf, int64(i))
		sensor.WriteInt32(buf, 1, int32(rnd.Intn(8)))
		sensor.WriteFloat32(buf, 2, rnd.Float32()*100)
		batch = append(batch, buf...)
		if len(batch) == cap(batch) {
			q.Insert(batch)
			batch = batch[:0]
		}
	}
	q.Insert(batch)
	eng.Drain()
	eng.Close()

	st := q.Stats()
	fmt.Printf("\nprocessed %d tuples in %v — %d windows, %d on CPU / %d on GPGPU, avg latency %v\n",
		tuples, time.Since(start).Round(time.Millisecond),
		st.TuplesOut/8, st.TasksCPU, st.TasksGPU, st.AvgLatency.Round(time.Microsecond))
}
