// Command saber-bench regenerates the tables and figures of the SABER
// paper's evaluation (§6).
//
// Usage:
//
//	saber-bench -list
//	saber-bench -experiment fig10a
//	saber-bench -experiment all -scale 20 -mb 16 -workers 15
//
// Output units are paper-equivalent (see internal/bench and DESIGN.md §2:
// measured throughput × time scale).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"saber/internal/bench"
	"saber/internal/obs"
	"saber/internal/overload"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id, or 'all'")
		scale      = flag.Float64("scale", 0, "model time scale (0 = default)")
		mb         = flag.Int("mb", 0, "data volume per measurement point in MiB (0 = default)")
		workers    = flag.Int("workers", 0, "CPU worker threads (0 = default 15)")
		list       = flag.Bool("list", false, "list experiments and exit")

		maxQueueBytes = flag.Int64("max-queue-bytes", 0, "overload experiment: admission budget override in bytes (0 = experiment default)")
		shedPolicy    = flag.String("shed-policy", "", "overload experiment: which shedding run (oldest | weighted) the BENCH_overload.json gate reads; empty selects oldest")
		metricsAddr   = flag.String("metrics-addr", "", "serve the admin endpoint (/varz, /metrics, /debug/pprof) on this address while experiments run; empty disables it")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Title)
		}
		return
	}

	if *shedPolicy != "" {
		if _, err := overload.ParsePolicy(*shedPolicy); err != nil {
			fmt.Fprintf(os.Stderr, "saber-bench: %v\n", err)
			os.Exit(2)
		}
	}
	opts := bench.Options{Scale: *scale, MB: *mb, Workers: *workers,
		MaxQueueBytes: *maxQueueBytes, ShedPolicy: *shedPolicy}
	if *metricsAddr != "" {
		// One process-wide registry shared by every experiment's engines:
		// counters accumulate across runs, gauges track the newest engine.
		// No tracer is exposed — /traces reports null; latency histograms
		// are visible via /varz and /metrics.
		opts.Metrics = obs.NewRegistry()
		srv := &http.Server{Addr: *metricsAddr, Handler: obs.Handler(opts.Metrics, nil)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "saber-bench: metrics endpoint: %v\n", err)
			}
		}()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics endpoint on http://%s (/varz /metrics /debug/pprof)\n", *metricsAddr)
	}
	// SIGTERM/SIGINT finish the experiment in flight, then stop — partial
	// tables are worse than none, and the deferred admin-endpoint close
	// still runs. A second signal kills the process the default way.
	var stopping atomic.Bool
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		fmt.Fprintf(os.Stderr, "\nsaber-bench: %v — stopping after the current experiment (signal again to kill)\n", s)
		stopping.Store(true)
		signal.Stop(sigs)
	}()

	run := func(e bench.Experiment) {
		start := time.Now()
		rep := e.Run(opts)
		rep.Notes = append(rep.Notes, fmt.Sprintf("experiment wall time: %v", time.Since(start).Round(time.Millisecond)))
		rep.Print(os.Stdout)
	}

	if *experiment == "all" {
		for _, e := range bench.All() {
			if stopping.Load() {
				fmt.Fprintln(os.Stderr, "saber-bench: interrupted — remaining experiments skipped")
				break
			}
			run(e)
		}
		return
	}
	e, ok := bench.Lookup(*experiment)
	if !ok {
		fmt.Fprintf(os.Stderr, "saber-bench: unknown experiment %q (use -list)\n", *experiment)
		os.Exit(1)
	}
	run(e)
}
