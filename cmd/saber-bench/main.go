// Command saber-bench regenerates the tables and figures of the SABER
// paper's evaluation (§6).
//
// Usage:
//
//	saber-bench -list
//	saber-bench -experiment fig10a
//	saber-bench -experiment all -scale 20 -mb 16 -workers 15
//
// Output units are paper-equivalent (see internal/bench and DESIGN.md §2:
// measured throughput × time scale).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"saber/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id, or 'all'")
		scale      = flag.Float64("scale", 0, "model time scale (0 = default)")
		mb         = flag.Int("mb", 0, "data volume per measurement point in MiB (0 = default)")
		workers    = flag.Int("workers", 0, "CPU worker threads (0 = default 15)")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := bench.Options{Scale: *scale, MB: *mb, Workers: *workers}
	run := func(e bench.Experiment) {
		start := time.Now()
		rep := e.Run(opts)
		rep.Notes = append(rep.Notes, fmt.Sprintf("experiment wall time: %v", time.Since(start).Round(time.Millisecond)))
		rep.Print(os.Stdout)
	}

	if *experiment == "all" {
		for _, e := range bench.All() {
			run(e)
		}
		return
	}
	e, ok := bench.Lookup(*experiment)
	if !ok {
		fmt.Fprintf(os.Stderr, "saber-bench: unknown experiment %q (use -list)\n", *experiment)
		os.Exit(1)
	}
	run(e)
}
