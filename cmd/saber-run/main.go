// Command saber-run executes a CQL query over one of the built-in
// workload generators and prints a sample of the result stream plus
// throughput statistics — or, with -bql, boots a whole multi-query
// catalog from a BQL script.
//
// Usage:
//
//	saber-run -stream cm -query 'select timestamp, category, sum(cpu) as totalCpu
//	                             from TaskEvents [range 60 slide 1] group by category'
//	saber-run -stream syn -mb 32 -gpu=false -query 'select * from Syn [rows 1024] where a3 < 256'
//	saber-run -bql examples/quickstart.bql -metrics-addr 127.0.0.1:8080
//
// Streams: syn (Syn), cm (TaskEvents), sg (SmartGridStr), lrb
// (PosSpeedStr).
//
// In -bql mode the script declares the sources, sinks and streams
// (CREATE SOURCE / CREATE SINK / CREATE STREAM ... AS SELECT ...); the
// admin endpoint additionally serves GET /catalog and POST /catalog/ddl
// so objects can be created, paused, resumed and dropped while the
// engine runs. With -checkpoint-dir, the catalog's statement log rides
// in every epoch and a restart rebuilds the exact registered query set,
// resuming generated sources at their saved cursors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"saber"
	"saber/internal/ingest"
	"saber/internal/workload"
)

func main() {
	var (
		queryText = flag.String("query", "", "CQL query text (required unless -bql is given)")
		bqlFile   = flag.String("bql", "", "boot a multi-query catalog from this BQL script instead of -query/-stream; DDL can then be applied live via the admin endpoint")
		stream    = flag.String("stream", "syn", "input stream: syn | cm | sg | lrb")
		mb        = flag.Int("mb", 8, "input volume in MiB")
		useGPU    = flag.Bool("gpu", true, "attach the simulated GPGPU")
		workers   = flag.Int("workers", 15, "CPU worker threads")
		scale     = flag.Float64("scale", 1, "model time scale")
		sample    = flag.Int("sample", 5, "result rows to print")
		native    = flag.Bool("native", false, "run at native speed (no performance model)")

		metricsAddr   = flag.String("metrics-addr", "", "serve the admin endpoint (/varz, /metrics, /traces, /debug/pprof) on this address, e.g. 127.0.0.1:8080; empty disables it")
		statsInterval = flag.Duration("stats-interval", 0, "print a one-line metrics summary to stderr at this interval; 0 disables it")

		latencySLO = flag.Duration("latency-slo", 0, "enable adaptive task sizing (dynamic ϕ) targeting this end-to-end p99 latency, e.g. 50ms; 0 keeps ϕ fixed")
		minPhi     = flag.Int("min-task-size", 0, "adaptive ϕ lower bound in bytes (0 selects 4 KiB); needs -latency-slo")
		maxPhi     = flag.Int("max-task-size", 0, "adaptive ϕ upper bound in bytes (0 selects 4 MiB); needs -latency-slo")

		ckptDir      = flag.String("checkpoint-dir", "", "enable epoch checkpointing to this directory; on startup the engine restores from the newest valid epoch and resumes the generated stream at the saved cursor")
		ckptInterval = flag.Duration("checkpoint-interval", 0, "automatic checkpoint period (0 selects 500ms; negative disables the automatic coordinator); needs -checkpoint-dir")

		maxQueueBytes = flag.Int64("max-queue-bytes", 0, "overload protection: per-query admission budget in bytes; a full queue blocks Insert, or sheds under -shed-policy; 0 leaves the input ring as the only bound")
		shedPolicy    = flag.String("shed-policy", "none", "load shedding when the queue budget binds: none (lossless blocking) | oldest (cut stalest buffered window range) | weighted (drop arriving chunks probabilistically); needs -max-queue-bytes to actuate")
		srcCredits    = flag.Int("source-credits", 0, "feed over loopback TCP ingest with credit-based flow control: the server advertises this window (tuples) and the source paces itself on the returned grants; 0 feeds in-process")
	)
	flag.Parse()
	if *bqlFile == "" && *queryText == "" {
		fmt.Fprintln(os.Stderr, "saber-run: -query is required (or use -bql)")
		os.Exit(2)
	}
	if *bqlFile != "" && *queryText != "" {
		fmt.Fprintln(os.Stderr, "saber-run: -query and -bql are mutually exclusive")
		os.Exit(2)
	}
	shed, err := saber.ParseShedPolicy(*shedPolicy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "saber-run: %v\n", err)
		os.Exit(2)
	}

	var (
		name   string
		schema *saber.Schema
		gen    func(dst []byte, n int) []byte
	)
	switch *stream {
	case "syn":
		name, schema = "Syn", workload.SynSchema
		g := workload.NewSynGen(1)
		g.Groups = 64
		gen = g.Next
	case "cm":
		name, schema = "TaskEvents", workload.CMSchema
		gen = workload.NewCMGen(1).Next
	case "sg":
		name, schema = "SmartGridStr", workload.SGSchema
		gen = workload.NewSGGen(1).Next
	case "lrb":
		name, schema = "PosSpeedStr", workload.LRBSchema
		gen = workload.NewLRBGen(1, 500).Next
	default:
		fmt.Fprintf(os.Stderr, "saber-run: unknown stream %q\n", *stream)
		os.Exit(2)
	}

	cfg := saber.Config{
		CPUWorkers:  *workers,
		Model:       saber.DefaultModel().Scaled(*scale),
		NativeSpeed: *native,
		LatencySLO:  *latencySLO,
		MinTaskSize: *minPhi,
		MaxTaskSize: *maxPhi,

		CheckpointDir:      *ckptDir,
		CheckpointInterval: *ckptInterval,

		MaxQueueBytes: *maxQueueBytes,
		ShedPolicy:    shed,
	}
	if *useGPU {
		dev := saber.OpenGPU(saber.GPUConfig{Model: cfg.Model})
		defer dev.Close()
		cfg.GPU = dev
	}
	if *bqlFile != "" {
		runBQL(cfg, *bqlFile, *sample, *metricsAddr, *statsInterval)
		return
	}
	eng := saber.New(cfg)
	eng.DeclareStream(name, schema)

	q, err := eng.Query("q", *queryText)
	if err != nil {
		fmt.Fprintf(os.Stderr, "saber-run: %v\n", err)
		os.Exit(1)
	}
	out := q.OutputSchema()
	fmt.Printf("output schema: %s\n", out)

	var mu sync.Mutex
	printed := 0
	q.OnResult(func(rows []byte) {
		mu.Lock()
		defer mu.Unlock()
		osz := out.TupleSize()
		for i := 0; i+osz <= len(rows) && printed < *sample; i += osz {
			fmt.Printf("  %s\n", out.Format(rows[i:i+osz]))
			printed++
		}
	})

	// The generated stream is deterministic, so after a restore the
	// replayed prefix is simply regenerated and skipped up to the saved
	// cursor — the stand-in for an upstream source resending from the
	// resume offset (see internal/ingest's resume protocol for the TCP
	// equivalent).
	resumeTuples := 0
	if *ckptDir != "" {
		info, err := eng.Restore(*ckptDir)
		switch {
		case err == nil:
			resumeTuples = int(q.InputCursor(0))
			fmt.Fprintf(os.Stderr, "restored epoch %d from %s (resuming at tuple %d", info.Epoch, info.Path, resumeTuples)
			if info.Skipped > 0 {
				fmt.Fprintf(os.Stderr, ", %d corrupt epoch(s) skipped", info.Skipped)
			}
			fmt.Fprintln(os.Stderr, ")")
		case errors.Is(err, saber.ErrNoCheckpoint):
			fmt.Fprintln(os.Stderr, "no checkpoint found — cold start")
		default:
			fmt.Fprintf(os.Stderr, "saber-run: restore: %v\n", err)
			os.Exit(1)
		}
	}

	if err := eng.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "saber-run: %v\n", err)
		os.Exit(1)
	}

	// SIGTERM/SIGINT stop the feed at the next chunk boundary; the run
	// then drains in-flight work, cuts a final checkpoint (when enabled)
	// and shuts down cleanly. A second signal kills the process the
	// default way.
	var stopping atomic.Bool
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		fmt.Fprintf(os.Stderr, "\nsaber-run: %v — draining (signal again to kill)\n", s)
		stopping.Store(true)
		signal.Stop(sigs)
	}()

	if *metricsAddr != "" {
		srv := &http.Server{Addr: *metricsAddr, Handler: eng.MetricsHandler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "saber-run: metrics endpoint: %v\n", err)
			}
		}()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics endpoint on http://%s (/varz /metrics /traces /debug/pprof)\n", *metricsAddr)
	}
	if *statsInterval > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(*statsInterval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					printStatsLine(eng, q)
				}
			}
		}()
	}

	tuples := (*mb << 20) / schema.TupleSize()
	data := gen(nil, tuples)
	skip := resumeTuples * schema.TupleSize()
	if skip > len(data) {
		skip = len(data)
	}
	// The feed path: in-process Insert by default, or loopback TCP
	// ingest with credit-based flow control when -source-credits is set
	// (the server's advertised window paces the source to the engine's
	// rate instead of relying on Insert backpressure).
	send := func(chunk []byte) { q.Insert(chunk) }
	closeFeed := func() {}
	var creditWaits func() int64
	if *srcCredits > 0 {
		srv, lerr := ingest.Listen("127.0.0.1:0", ingest.SinkFunc(func(chunk []byte) { q.Insert(chunk) }), schema.TupleSize())
		if lerr != nil {
			fmt.Fprintf(os.Stderr, "saber-run: ingest listen: %v\n", lerr)
			os.Exit(1)
		}
		srv.EnableCredits(int64(*srcCredits))
		srv.RegisterMetrics(eng.Metrics(), "saber.ingest.in0")
		go func() { _ = srv.Serve() }()
		cli, derr := ingest.DialCredits(srv.Addr().String(), schema.TupleSize())
		if derr != nil {
			srv.Close()
			fmt.Fprintf(os.Stderr, "saber-run: ingest dial: %v\n", derr)
			os.Exit(1)
		}
		send = func(chunk []byte) {
			if serr := cli.Send(chunk); serr != nil {
				fmt.Fprintf(os.Stderr, "saber-run: ingest send: %v\n", serr)
				os.Exit(1)
			}
		}
		creditWaits = cli.CreditWaits
		// Close the sender, then the server — Close waits for buffered
		// frames to drain into the sink, so it must precede Drain.
		closeFeed = func() { cli.Close(); srv.Close() }
		fmt.Fprintf(os.Stderr, "feeding over loopback ingest, credit window %d tuples\n", *srcCredits)
	}

	start := time.Now()
	chunk := 1024 * schema.TupleSize()
	for off := skip; off < len(data) && !stopping.Load(); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		send(data[off:end])
	}
	closeFeed()
	eng.Drain()
	elapsed := time.Since(start)
	if *ckptDir != "" {
		// Final epoch at the drained frontier: a restart replays nothing.
		if err := eng.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "saber-run: final checkpoint: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "final checkpoint persisted (committed %d output bytes)\n", q.Committed())
		}
	}
	eng.Close()

	st := q.Stats()
	fmt.Printf("\nprocessed %.1f MiB in %v (%.3f GB/s measured",
		float64(st.BytesIn)/(1<<20), elapsed.Round(time.Millisecond),
		float64(st.BytesIn)/elapsed.Seconds()/1e9)
	if !*native {
		fmt.Printf(", %.3f GB/s paper-equivalent", float64(st.BytesIn)/elapsed.Seconds()/1e9**scale)
	}
	fmt.Printf(")\ntasks: %d cpu, %d gpu (gpu share %.0f%%); output: %d tuples; avg latency %v\n",
		st.TasksCPU, st.TasksGPU, st.GPUShare()*100, st.TuplesOut, st.AvgLatency.Round(time.Microsecond))
	if *latencySLO > 0 {
		snap := eng.Metrics().Snapshot()
		fmt.Printf("adaptive ϕ: final %d KiB (grow %d, shrink %d, clamped %d over %d ticks)\n",
			eng.TaskSize()>>10,
			snap.Counters["saber.adapt.grow"], snap.Counters["saber.adapt.shrink"],
			snap.Counters["saber.adapt.clamped"], snap.Counters["saber.adapt.ticks"])
	}
	if *maxQueueBytes > 0 || shed != saber.ShedNone {
		fmt.Printf("overload: offered %.1f MiB, shed %d tuples (%d oldest-window, %d at admission), bounded admission waits %d\n",
			float64(st.BytesOffered)/(1<<20),
			st.TuplesShed+st.TuplesShedAdmit, st.TuplesShedOldest, st.TuplesShedAdmit, st.AdmitWaits)
	}
	if creditWaits != nil {
		fmt.Printf("ingest flow control: source blocked on credit grants %d times (window %d tuples)\n",
			creditWaits(), *srcCredits)
	}
}

// printStatsLine emits a one-line live metrics summary to stderr.
func printStatsLine(eng *saber.Engine, q *saber.QueryHandle) {
	snap := eng.Metrics().Snapshot()
	st := q.Stats()
	e2e := snap.Histograms["saber.trace.e2e"]
	fmt.Fprintf(os.Stderr,
		"[stats] in=%.1fMiB out=%d tuples tasks=%d cpu/%d gpu queue=%.0f phi=%.0fKiB latency p50=%v p99=%v shed=%d\n",
		float64(st.BytesIn)/(1<<20), st.TuplesOut, st.TasksCPU, st.TasksGPU,
		snap.Gauges["saber.engine.queue.depth"],
		snap.Gauges["saber.engine.phi"]/1024,
		time.Duration(e2e.Quantile(0.50)).Round(time.Microsecond),
		time.Duration(e2e.Quantile(0.99)).Round(time.Microsecond),
		st.TuplesShed)
}

// runBQL boots a multi-query catalog from a BQL script and runs it until
// every bounded source finishes or a signal arrives. With checkpointing
// enabled, a previous run's newest epoch takes precedence over the
// script: the catalog is rebuilt from the checkpoint's statement log and
// the generated sources resume at their saved cursors.
func runBQL(cfg saber.Config, path string, sample int, metricsAddr string, statsInterval time.Duration) {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "saber-run: %v\n", err)
		os.Exit(1)
	}
	eng := saber.New(cfg)
	cat, info, err := eng.BootScript(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "saber-run: %v\n", err)
		os.Exit(1)
	}
	if info != nil {
		fmt.Fprintf(os.Stderr, "restored epoch %d from %s (%d queries", info.Epoch, info.Path, info.Queries)
		if info.Unmatched > 0 {
			fmt.Fprintf(os.Stderr, ", %d unmatched snapshot entries skipped", info.Unmatched)
		}
		fmt.Fprintln(os.Stderr, ")")
	}
	l := cat.List()
	fmt.Printf("catalog: %d source(s), %d sink(s), %d stream(s)\n", len(l.Sources), len(l.Sinks), len(l.Streams))

	// Per-stream result sampler.
	var mu sync.Mutex
	for _, si := range l.Streams {
		qh, err := cat.Stream(si.Name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "saber-run: %v\n", err)
			os.Exit(1)
		}
		out := qh.OutputSchema()
		fmt.Printf("  %s: %s\n", si.Name, out)
		name, printed := si.Name, 0
		if err := cat.Tap(name, func(rows []byte) {
			mu.Lock()
			defer mu.Unlock()
			osz := out.TupleSize()
			for i := 0; i+osz <= len(rows) && printed < sample; i += osz {
				fmt.Printf("  [%s] %s\n", name, out.Format(rows[i:i+osz]))
				printed++
			}
		}); err != nil {
			fmt.Fprintf(os.Stderr, "saber-run: %v\n", err)
			os.Exit(1)
		}
	}

	if err := eng.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "saber-run: %v\n", err)
		os.Exit(1)
	}
	cat.StartFeeds()

	if metricsAddr != "" {
		srv := &http.Server{Addr: metricsAddr, Handler: eng.AdminHandler(cat)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "saber-run: admin endpoint: %v\n", err)
			}
		}()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "admin endpoint on http://%s (/catalog /catalog/ddl /varz /metrics /traces /debug/pprof)\n", metricsAddr)
	}
	if statsInterval > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(statsInterval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					var in, outTuples, tasks int64
					for _, si := range cat.List().Streams {
						in += si.BytesIn
						outTuples += si.BytesOut
						tasks += si.Tasks
					}
					fmt.Fprintf(os.Stderr, "[stats] streams=%d in=%.1fMiB out=%.1fMiB tasks=%d queue=%d\n",
						len(cat.List().Streams), float64(in)/(1<<20), float64(outTuples)/(1<<20), tasks, eng.QueueLen())
				}
			}
		}()
	}

	// Run until every bounded source finishes, or a signal stops the run
	// early; either way the engine drains and (when enabled) cuts a final
	// checkpoint so a restart resumes exactly where this run stopped.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() { cat.WaitFeeds(); close(done) }()
	start := time.Now()
	select {
	case <-done:
	case s := <-sigs:
		fmt.Fprintf(os.Stderr, "\nsaber-run: %v — draining (signal again to kill)\n", s)
		signal.Stop(sigs)
	}
	cat.Close()
	eng.Drain()
	elapsed := time.Since(start)
	if cfg.CheckpointDir != "" {
		if err := eng.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "saber-run: final checkpoint: %v\n", err)
		} else {
			fmt.Fprintln(os.Stderr, "final checkpoint persisted (catalog statement log included)")
		}
	}
	eng.Close()

	fmt.Printf("\nran %d stream(s) for %v\n", len(cat.List().Streams), elapsed.Round(time.Millisecond))
	for _, si := range cat.List().Streams {
		qh, err := cat.Stream(si.Name)
		if err != nil {
			continue
		}
		st := qh.Stats()
		fmt.Printf("  %-12s in %.1f MiB, out %d tuples, tasks %d cpu / %d gpu, avg latency %v\n",
			si.Name, float64(st.BytesIn)/(1<<20), st.TuplesOut, st.TasksCPU, st.TasksGPU,
			st.AvgLatency.Round(time.Microsecond))
	}
}
