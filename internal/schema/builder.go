package schema

// TupleBuilder incrementally assembles packed tuple batches for a schema.
// It is used by the workload generators and tests; the engine itself never
// builds tuples attribute-by-attribute on the hot path.
type TupleBuilder struct {
	s   *Schema
	buf []byte
	cur []byte
}

// NewTupleBuilder returns a builder for the given schema with capacity for
// hint tuples pre-allocated.
func NewTupleBuilder(s *Schema, hint int) *TupleBuilder {
	return &TupleBuilder{s: s, buf: make([]byte, 0, hint*s.TupleSize())}
}

// Begin starts a new tuple. Fields default to zero.
func (b *TupleBuilder) Begin() *TupleBuilder {
	n := len(b.buf)
	b.buf = append(b.buf, make([]byte, b.s.TupleSize())...)
	b.cur = b.buf[n : n+b.s.TupleSize()]
	return b
}

// Int32 sets the named field of the current tuple.
func (b *TupleBuilder) Int32(name string, v int32) *TupleBuilder {
	b.s.WriteInt32(b.cur, b.s.IndexOf(name), v)
	return b
}

// Int64 sets the named field of the current tuple.
func (b *TupleBuilder) Int64(name string, v int64) *TupleBuilder {
	b.s.WriteInt64(b.cur, b.s.IndexOf(name), v)
	return b
}

// Float32 sets the named field of the current tuple.
func (b *TupleBuilder) Float32(name string, v float32) *TupleBuilder {
	b.s.WriteFloat32(b.cur, b.s.IndexOf(name), v)
	return b
}

// Float64 sets the named field of the current tuple.
func (b *TupleBuilder) Float64(name string, v float64) *TupleBuilder {
	b.s.WriteFloat64(b.cur, b.s.IndexOf(name), v)
	return b
}

// Timestamp sets the timestamp (first) field of the current tuple.
func (b *TupleBuilder) Timestamp(ts int64) *TupleBuilder {
	b.s.SetTimestamp(b.cur, ts)
	return b
}

// Bytes returns the packed batch built so far. The returned slice aliases
// the builder's buffer; call Reset before reusing the builder.
func (b *TupleBuilder) Bytes() []byte { return b.buf }

// Count returns the number of tuples built so far.
func (b *TupleBuilder) Count() int { return len(b.buf) / b.s.TupleSize() }

// Reset discards all built tuples, retaining capacity.
func (b *TupleBuilder) Reset() {
	b.buf = b.buf[:0]
	b.cur = nil
}
