// Package schema defines tuple schemas and the fixed-width binary tuple
// layout used throughout SABER.
//
// SABER stores stream tuples in their serialised byte representation and
// deserialises attribute values lazily, only if and when an operator needs
// them (paper §5.1). A Schema describes the byte layout of one tuple:
// fields are packed in declaration order with no padding, and every field
// has a fixed width, so attribute access is a constant-offset read into a
// byte slice.
package schema

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Type identifies the primitive type of a field. All types have a fixed
// byte width so tuples are fixed size.
type Type uint8

// Supported primitive field types.
const (
	Int32 Type = iota // 4-byte signed integer
	Int64             // 8-byte signed integer (also used for timestamps)
	Float32
	Float64
	Undefined
)

// Size returns the number of bytes a value of this type occupies in a tuple.
func (t Type) Size() int {
	switch t {
	case Int32, Float32:
		return 4
	case Int64, Float64:
		return 8
	default:
		return 0
	}
}

// String returns the lower-case name of the type as used in CQL schemas.
func (t Type) String() string {
	switch t {
	case Int32:
		return "int"
	case Int64:
		return "long"
	case Float32:
		return "float"
	case Float64:
		return "double"
	default:
		return "undefined"
	}
}

// ParseType maps a CQL type name to a Type.
func ParseType(s string) (Type, error) {
	switch strings.ToLower(s) {
	case "int", "int32":
		return Int32, nil
	case "long", "int64":
		return Int64, nil
	case "float", "float32":
		return Float32, nil
	case "double", "float64":
		return Float64, nil
	default:
		return Undefined, fmt.Errorf("schema: unknown type %q", s)
	}
}

// Field is a single named attribute of a tuple.
type Field struct {
	Name string
	Type Type
}

// Schema describes the binary layout of a tuple: an ordered list of fields,
// each at a fixed byte offset.
type Schema struct {
	fields  []Field
	offsets []int
	size    int
	index   map[string]int
}

// New builds a Schema from an ordered field list. Field names must be
// unique (case-sensitive) and non-empty.
func New(fields ...Field) (*Schema, error) {
	s := &Schema{
		fields:  make([]Field, len(fields)),
		offsets: make([]int, len(fields)),
		index:   make(map[string]int, len(fields)),
	}
	copy(s.fields, fields)
	off := 0
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("schema: field %d has empty name", i)
		}
		if f.Type.Size() == 0 {
			return nil, fmt.Errorf("schema: field %q has undefined type", f.Name)
		}
		if _, dup := s.index[f.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate field %q", f.Name)
		}
		s.index[f.Name] = i
		s.offsets[i] = off
		off += f.Type.Size()
	}
	s.size = off
	if s.size == 0 {
		return nil, fmt.Errorf("schema: no fields")
	}
	return s, nil
}

// MustNew is like New but panics on error. Intended for package-level
// schema literals in tests and workload definitions.
func MustNew(fields ...Field) *Schema {
	s, err := New(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// TupleSize returns the fixed byte size of one tuple.
func (s *Schema) TupleSize() int { return s.size }

// NumFields returns the number of fields.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns the i-th field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of the field list.
func (s *Schema) Fields() []Field {
	out := make([]Field, len(s.fields))
	copy(out, s.fields)
	return out
}

// Offset returns the byte offset of the i-th field within a tuple.
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// IndexOf returns the position of the named field, or -1 if absent.
func (s *Schema) IndexOf(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// HasField reports whether the schema contains the named field.
func (s *Schema) HasField(name string) bool { return s.IndexOf(name) >= 0 }

// Project returns a new schema consisting of the named fields, in the given
// order. Projection may repeat or reorder fields.
func (s *Schema) Project(names ...string) (*Schema, error) {
	fields := make([]Field, 0, len(names))
	for _, n := range names {
		i := s.IndexOf(n)
		if i < 0 {
			return nil, fmt.Errorf("schema: no field %q", n)
		}
		fields = append(fields, s.fields[i])
	}
	return New(fields...)
}

// String renders the schema as "name type, name type, ...".
func (s *Schema) String() string {
	var b strings.Builder
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", f.Name, f.Type)
	}
	return b.String()
}

// Equal reports whether two schemas have identical field lists.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if o == nil || len(s.fields) != len(o.fields) {
		return false
	}
	for i := range s.fields {
		if s.fields[i] != o.fields[i] {
			return false
		}
	}
	return true
}

// Concat returns a schema whose fields are s's followed by o's. Name
// collisions are resolved by prefixing the right-hand fields with prefix
// (used for join output schemas).
func (s *Schema) Concat(o *Schema, prefix string) (*Schema, error) {
	fields := s.Fields()
	for _, f := range o.fields {
		name := f.Name
		if s.HasField(name) {
			name = prefix + name
		}
		fields = append(fields, Field{Name: name, Type: f.Type})
	}
	return New(fields...)
}

// --- Tuple access -----------------------------------------------------------
//
// Tuples are raw byte slices of length TupleSize, little-endian. The
// accessors below implement the lazy-deserialisation discipline: only the
// attribute that an operator touches is decoded, and only to a primitive.

// ReadInt32 decodes field i of the tuple.
func (s *Schema) ReadInt32(tuple []byte, i int) int32 {
	return int32(binary.LittleEndian.Uint32(tuple[s.offsets[i]:]))
}

// ReadInt64 decodes field i of the tuple.
func (s *Schema) ReadInt64(tuple []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(tuple[s.offsets[i]:]))
}

// ReadFloat32 decodes field i of the tuple.
func (s *Schema) ReadFloat32(tuple []byte, i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(tuple[s.offsets[i]:]))
}

// ReadFloat64 decodes field i of the tuple.
func (s *Schema) ReadFloat64(tuple []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(tuple[s.offsets[i]:]))
}

// WriteInt32 encodes v into field i of the tuple.
func (s *Schema) WriteInt32(tuple []byte, i int, v int32) {
	binary.LittleEndian.PutUint32(tuple[s.offsets[i]:], uint32(v))
}

// WriteInt64 encodes v into field i of the tuple.
func (s *Schema) WriteInt64(tuple []byte, i int, v int64) {
	binary.LittleEndian.PutUint64(tuple[s.offsets[i]:], uint64(v))
}

// WriteFloat32 encodes v into field i of the tuple.
func (s *Schema) WriteFloat32(tuple []byte, i int, v float32) {
	binary.LittleEndian.PutUint32(tuple[s.offsets[i]:], math.Float32bits(v))
}

// WriteFloat64 encodes v into field i of the tuple.
func (s *Schema) WriteFloat64(tuple []byte, i int, v float64) {
	binary.LittleEndian.PutUint64(tuple[s.offsets[i]:], math.Float64bits(v))
}

// ReadFloat reads field i as float64 regardless of its numeric type. This
// is what aggregation operators use so that sum/avg work uniformly.
func (s *Schema) ReadFloat(tuple []byte, i int) float64 {
	switch s.fields[i].Type {
	case Int32:
		return float64(s.ReadInt32(tuple, i))
	case Int64:
		return float64(s.ReadInt64(tuple, i))
	case Float32:
		return float64(s.ReadFloat32(tuple, i))
	case Float64:
		return s.ReadFloat64(tuple, i)
	}
	return 0
}

// WriteFloat writes v into field i, converting to the field's numeric type.
func (s *Schema) WriteFloat(tuple []byte, i int, v float64) {
	switch s.fields[i].Type {
	case Int32:
		s.WriteInt32(tuple, i, int32(v))
	case Int64:
		s.WriteInt64(tuple, i, int64(v))
	case Float32:
		s.WriteFloat32(tuple, i, float32(v))
	case Float64:
		s.WriteFloat64(tuple, i, v)
	}
}

// ReadInt reads field i as int64 regardless of its numeric type, truncating
// floats. Used for GROUP-BY keys and join predicates over integer columns.
func (s *Schema) ReadInt(tuple []byte, i int) int64 {
	switch s.fields[i].Type {
	case Int32:
		return int64(s.ReadInt32(tuple, i))
	case Int64:
		return s.ReadInt64(tuple, i)
	case Float32:
		return int64(s.ReadFloat32(tuple, i))
	case Float64:
		return int64(s.ReadFloat64(tuple, i))
	}
	return 0
}

// Timestamp returns the tuple's timestamp. By SABER convention (paper §2.4)
// the first field of every stream schema is a 64-bit logical timestamp.
func (s *Schema) Timestamp(tuple []byte) int64 {
	return int64(binary.LittleEndian.Uint64(tuple))
}

// SetTimestamp overwrites the tuple's timestamp.
func (s *Schema) SetTimestamp(tuple []byte, ts int64) {
	binary.LittleEndian.PutUint64(tuple, uint64(ts))
}

// HasTimestamp reports whether the schema follows the timestamp convention:
// the first field is an Int64.
func (s *Schema) HasTimestamp() bool {
	return len(s.fields) > 0 && s.fields[0].Type == Int64
}

// CopyTuple appends the i-th tuple of a packed batch to dst and returns the
// extended slice. A packed batch is a byte slice holding contiguous tuples.
func (s *Schema) CopyTuple(dst, batch []byte, i int) []byte {
	start := i * s.size
	return append(dst, batch[start:start+s.size]...)
}

// TupleAt returns a subslice of the packed batch holding the i-th tuple.
func (s *Schema) TupleAt(batch []byte, i int) []byte {
	start := i * s.size
	return batch[start : start+s.size]
}

// TupleCount returns the number of whole tuples in a packed batch.
func (s *Schema) TupleCount(batch []byte) int { return len(batch) / s.size }

// Format renders tuple values as a human-readable row, for debugging and the
// example programs. It deliberately allocates; never used on the hot path.
func (s *Schema) Format(tuple []byte) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		switch f.Type {
		case Int32:
			fmt.Fprintf(&b, "%s=%d", f.Name, s.ReadInt32(tuple, i))
		case Int64:
			fmt.Fprintf(&b, "%s=%d", f.Name, s.ReadInt64(tuple, i))
		case Float32:
			fmt.Fprintf(&b, "%s=%g", f.Name, s.ReadFloat32(tuple, i))
		case Float64:
			fmt.Fprintf(&b, "%s=%g", f.Name, s.ReadFloat64(tuple, i))
		}
	}
	b.WriteByte(')')
	return b.String()
}
