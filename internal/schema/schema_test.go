package schema

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := New(
		Field{"timestamp", Int64},
		Field{"a", Float32},
		Field{"b", Int32},
		Field{"c", Int32},
		Field{"d", Float64},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewLayout(t *testing.T) {
	s := testSchema(t)
	if got := s.TupleSize(); got != 8+4+4+4+8 {
		t.Fatalf("TupleSize = %d, want 28", got)
	}
	wantOffsets := []int{0, 8, 12, 16, 20}
	for i, w := range wantOffsets {
		if got := s.Offset(i); got != w {
			t.Errorf("Offset(%d) = %d, want %d", i, got, w)
		}
	}
	if s.NumFields() != 5 {
		t.Errorf("NumFields = %d, want 5", s.NumFields())
	}
}

func TestNewErrors(t *testing.T) {
	cases := []struct {
		name   string
		fields []Field
	}{
		{"empty", nil},
		{"emptyName", []Field{{"", Int32}}},
		{"dup", []Field{{"x", Int32}, {"x", Int64}}},
		{"undefinedType", []Field{{"x", Undefined}}},
	}
	for _, c := range cases {
		if _, err := New(c.fields...); err == nil {
			t.Errorf("New(%s): expected error", c.name)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid schema")
		}
	}()
	MustNew(Field{"", Int32})
}

func TestIndexOf(t *testing.T) {
	s := testSchema(t)
	if i := s.IndexOf("c"); i != 3 {
		t.Errorf("IndexOf(c) = %d, want 3", i)
	}
	if i := s.IndexOf("missing"); i != -1 {
		t.Errorf("IndexOf(missing) = %d, want -1", i)
	}
	if !s.HasField("a") || s.HasField("z") {
		t.Error("HasField mismatch")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := testSchema(t)
	tuple := make([]byte, s.TupleSize())
	s.WriteInt64(tuple, 0, -42)
	s.WriteFloat32(tuple, 1, 3.25)
	s.WriteInt32(tuple, 2, math.MaxInt32)
	s.WriteInt32(tuple, 3, math.MinInt32)
	s.WriteFloat64(tuple, 4, -1e300)

	if got := s.ReadInt64(tuple, 0); got != -42 {
		t.Errorf("ReadInt64 = %d", got)
	}
	if got := s.ReadFloat32(tuple, 1); got != 3.25 {
		t.Errorf("ReadFloat32 = %g", got)
	}
	if got := s.ReadInt32(tuple, 2); got != math.MaxInt32 {
		t.Errorf("ReadInt32 = %d", got)
	}
	if got := s.ReadInt32(tuple, 3); got != math.MinInt32 {
		t.Errorf("ReadInt32 = %d", got)
	}
	if got := s.ReadFloat64(tuple, 4); got != -1e300 {
		t.Errorf("ReadFloat64 = %g", got)
	}
}

func TestReadWriteRoundTripQuick(t *testing.T) {
	s := testSchema(t)
	f := func(ts int64, a float32, b, c int32, d float64) bool {
		tuple := make([]byte, s.TupleSize())
		s.WriteInt64(tuple, 0, ts)
		s.WriteFloat32(tuple, 1, a)
		s.WriteInt32(tuple, 2, b)
		s.WriteInt32(tuple, 3, c)
		s.WriteFloat64(tuple, 4, d)
		readBack := s.ReadInt64(tuple, 0) == ts &&
			s.ReadInt32(tuple, 2) == b && s.ReadInt32(tuple, 3) == c
		// NaN != NaN; compare bit patterns for floats.
		readBack = readBack &&
			math.Float32bits(s.ReadFloat32(tuple, 1)) == math.Float32bits(a) &&
			math.Float64bits(s.ReadFloat64(tuple, 4)) == math.Float64bits(d)
		return readBack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGenericFloatIntAccess(t *testing.T) {
	s := testSchema(t)
	tuple := make([]byte, s.TupleSize())
	s.WriteFloat(tuple, 2, 7.9) // Int32 field: truncates
	if got := s.ReadInt(tuple, 2); got != 7 {
		t.Errorf("ReadInt over int32 = %d, want 7", got)
	}
	s.WriteFloat(tuple, 1, 2.5) // Float32 field
	if got := s.ReadFloat(tuple, 1); got != 2.5 {
		t.Errorf("ReadFloat over float32 = %g, want 2.5", got)
	}
	s.WriteFloat(tuple, 0, 123) // Int64 field
	if got := s.ReadFloat(tuple, 0); got != 123 {
		t.Errorf("ReadFloat over int64 = %g, want 123", got)
	}
	s.WriteFloat(tuple, 4, -0.5)
	if got := s.ReadInt(tuple, 4); got != 0 {
		t.Errorf("ReadInt over float64 = %d, want 0", got)
	}
}

func TestTimestampConvention(t *testing.T) {
	s := testSchema(t)
	if !s.HasTimestamp() {
		t.Fatal("HasTimestamp = false for timestamp-led schema")
	}
	tuple := make([]byte, s.TupleSize())
	s.SetTimestamp(tuple, 99)
	if got := s.Timestamp(tuple); got != 99 {
		t.Errorf("Timestamp = %d", got)
	}
	noTS := MustNew(Field{"x", Int32})
	if noTS.HasTimestamp() {
		t.Error("HasTimestamp = true for int32-led schema")
	}
}

func TestProject(t *testing.T) {
	s := testSchema(t)
	p, err := s.Project("c", "a")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumFields() != 2 || p.Field(0).Name != "c" || p.Field(1).Name != "a" {
		t.Fatalf("Project fields = %v", p.Fields())
	}
	if p.TupleSize() != 8 {
		t.Errorf("projected TupleSize = %d, want 8", p.TupleSize())
	}
	if _, err := s.Project("nope"); err == nil {
		t.Error("Project(missing) did not error")
	}
}

func TestConcat(t *testing.T) {
	left := MustNew(Field{"timestamp", Int64}, Field{"v", Int32})
	right := MustNew(Field{"timestamp", Int64}, Field{"w", Int32})
	j, err := left.Concat(right, "r_")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"timestamp", "v", "r_timestamp", "w"}
	for i, n := range want {
		if j.Field(i).Name != n {
			t.Errorf("Concat field %d = %q, want %q", i, j.Field(i).Name, n)
		}
	}
}

func TestEqual(t *testing.T) {
	a := testSchema(t)
	b := testSchema(t)
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	c := MustNew(Field{"timestamp", Int64})
	if a.Equal(c) || a.Equal(nil) {
		t.Error("different schemas reported Equal")
	}
}

func TestPackedBatchHelpers(t *testing.T) {
	s := MustNew(Field{"timestamp", Int64}, Field{"v", Int32})
	b := NewTupleBuilder(s, 4)
	for i := 0; i < 4; i++ {
		b.Begin().Timestamp(int64(i)).Int32("v", int32(i*10))
	}
	batch := b.Bytes()
	if got := s.TupleCount(batch); got != 4 {
		t.Fatalf("TupleCount = %d", got)
	}
	for i := 0; i < 4; i++ {
		tu := s.TupleAt(batch, i)
		if s.Timestamp(tu) != int64(i) || s.ReadInt32(tu, 1) != int32(i*10) {
			t.Errorf("tuple %d = %s", i, s.Format(tu))
		}
	}
	var dst []byte
	dst = s.CopyTuple(dst, batch, 2)
	if s.Timestamp(dst) != 2 {
		t.Errorf("CopyTuple copied wrong tuple: %s", s.Format(dst))
	}
}

func TestBuilderResetAndCount(t *testing.T) {
	s := MustNew(Field{"timestamp", Int64})
	b := NewTupleBuilder(s, 2)
	b.Begin().Timestamp(1)
	b.Begin().Timestamp(2)
	if b.Count() != 2 {
		t.Fatalf("Count = %d", b.Count())
	}
	b.Reset()
	if b.Count() != 0 || len(b.Bytes()) != 0 {
		t.Error("Reset did not clear builder")
	}
	b.Begin().Timestamp(7)
	if s.Timestamp(b.Bytes()) != 7 {
		t.Error("builder unusable after Reset")
	}
}

func TestParseType(t *testing.T) {
	for name, want := range map[string]Type{
		"int": Int32, "long": Int64, "float": Float32, "double": Float64,
		"INT": Int32, "Int64": Int64,
	} {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseType("varchar"); err == nil {
		t.Error("ParseType(varchar) did not error")
	}
}

func TestStringAndFormat(t *testing.T) {
	s := MustNew(Field{"timestamp", Int64}, Field{"cpu", Float32})
	if got := s.String(); got != "timestamp long, cpu float" {
		t.Errorf("String = %q", got)
	}
	tuple := make([]byte, s.TupleSize())
	s.SetTimestamp(tuple, 5)
	s.WriteFloat32(tuple, 1, 0.5)
	if got := s.Format(tuple); !strings.Contains(got, "timestamp=5") || !strings.Contains(got, "cpu=0.5") {
		t.Errorf("Format = %q", got)
	}
}

func TestTypeSizeAndString(t *testing.T) {
	if Int32.Size() != 4 || Int64.Size() != 8 || Float32.Size() != 4 || Float64.Size() != 8 {
		t.Error("Type.Size mismatch")
	}
	if Undefined.Size() != 0 || Undefined.String() != "undefined" {
		t.Error("Undefined type behaviour mismatch")
	}
}
