package gpu

import (
	"bytes"
	"math"
	"sync"
	"sync/atomic"

	"saber/internal/exec"
)

// atomicTable is the GPGPU-side open-addressing hash table of paper §5.4:
// concurrent workgroup threads claim slots with compare-and-swap on a
// state word, then fold their values in with atomic operations. The layout
// (linear probing, FNV-1a placement via exec.Hash) matches the CPU table
// so converted results merge transparently in the assembly stage.
type atomicTable struct {
	keyLen int
	nAggs  int
	mask   int

	// state: 0 empty, 1 claiming (key being written), 2 ready.
	state  []atomic.Int32
	keys   []byte
	counts []atomic.Int64
	vals   []atomic.Uint64 // float64 bit patterns
	maxTS  []atomic.Int64

	used atomic.Int64

	// grow fallback: when the fixed-capacity table fills up, overflow
	// inserts serialise into the spill map (rare; sized to avoid it).
	spillMu sync.Mutex
	spill   map[string]*spillGroup
}

type spillGroup struct {
	count int64
	vals  []float64
	maxTS int64
}

func newAtomicTable(keyLen, nAggs, capacity int) *atomicTable {
	c := 64
	for c < capacity*2 {
		c <<= 1
	}
	t := &atomicTable{
		keyLen: keyLen,
		nAggs:  nAggs,
		mask:   c - 1,
		state:  make([]atomic.Int32, c),
		keys:   make([]byte, c*keyLen),
		counts: make([]atomic.Int64, c),
		vals:   make([]atomic.Uint64, c*nAggs),
		maxTS:  make([]atomic.Int64, c),
	}
	return t
}

// upsert finds or claims the slot for key and returns its index, or -1
// when the table is beyond its load limit (callers spill).
func (t *atomicTable) upsert(key []byte, seed []float64) int {
	if int(t.used.Load())*2 > t.mask+1 {
		return -1
	}
	i := int(exec.Hash(key)) & t.mask
	for probes := 0; probes <= t.mask; probes++ {
		switch t.state[i].Load() {
		case 0:
			if t.state[i].CompareAndSwap(0, 1) {
				copy(t.keys[i*t.keyLen:], key)
				t.maxTS[i].Store(math.MinInt64)
				for a := 0; a < t.nAggs; a++ {
					t.vals[i*t.nAggs+a].Store(math.Float64bits(seed[a]))
				}
				t.used.Add(1)
				t.state[i].Store(2)
				return i
			}
			continue // lost the race: re-examine the slot
		case 1:
			continue // another thread is writing the key: spin
		case 2:
			if bytes.Equal(t.keys[i*t.keyLen:(i+1)*t.keyLen], key) {
				return i
			}
			i = (i + 1) & t.mask
		}
	}
	return -1
}

// fold applies one tuple's contribution to slot i.
func (t *atomicTable) fold(i int, vals []float64, ops []exec.MergeOp, ts int64) {
	t.counts[i].Add(1)
	atomicMaxInt64(&t.maxTS[i], ts)
	for a, op := range ops {
		cell := &t.vals[i*t.nAggs+a]
		switch op {
		case exec.OpAdd:
			atomicAddFloat64(cell, vals[a])
		case exec.OpMin:
			atomicMinFloat64(cell, vals[a])
		case exec.OpMax:
			atomicMaxFloat64(cell, vals[a])
		}
	}
}

// foldSpill handles inserts that did not fit the fixed-capacity table.
func (t *atomicTable) foldSpill(key []byte, vals []float64, ops []exec.MergeOp, ts int64, seed []float64) {
	t.spillMu.Lock()
	defer t.spillMu.Unlock()
	if t.spill == nil {
		t.spill = make(map[string]*spillGroup)
	}
	g := t.spill[string(key)]
	if g == nil {
		g = &spillGroup{vals: append([]float64(nil), seed...), maxTS: math.MinInt64}
		t.spill[string(key)] = g
	}
	g.count++
	if ts > g.maxTS {
		g.maxTS = ts
	}
	for a, op := range ops {
		switch op {
		case exec.OpAdd:
			g.vals[a] += vals[a]
		case exec.OpMin:
			if vals[a] < g.vals[a] {
				g.vals[a] = vals[a]
			}
		case exec.OpMax:
			if vals[a] > g.vals[a] {
				g.vals[a] = vals[a]
			}
		}
	}
}

// drainInto converts the atomic table into a CPU-compatible table.
func (t *atomicTable) drainInto(dst *exec.HashTable, seedSlot func(exec.Slot), ops []exec.MergeOp) {
	for i := 0; i <= t.mask; i++ {
		if t.state[i].Load() != 2 {
			continue
		}
		sl := dst.Upsert(t.keys[i*t.keyLen:(i+1)*t.keyLen], seedSlot)
		sl.AddCount(t.counts[i].Load())
		sl.ObserveTS(t.maxTS[i].Load())
		for a, op := range ops {
			v := math.Float64frombits(t.vals[i*t.nAggs+a].Load())
			switch op {
			case exec.OpAdd:
				sl.AddVal(a, v)
			case exec.OpMin:
				sl.MinVal(a, v)
			case exec.OpMax:
				sl.MaxVal(a, v)
			}
		}
	}
	for key, g := range t.spill {
		sl := dst.Upsert([]byte(key), seedSlot)
		sl.AddCount(g.count)
		sl.ObserveTS(g.maxTS)
		for a, op := range ops {
			switch op {
			case exec.OpAdd:
				sl.AddVal(a, g.vals[a])
			case exec.OpMin:
				sl.MinVal(a, g.vals[a])
			case exec.OpMax:
				sl.MaxVal(a, g.vals[a])
			}
		}
	}
}

func (t *atomicTable) len() int {
	n := int(t.used.Load())
	t.spillMu.Lock()
	n += len(t.spill)
	t.spillMu.Unlock()
	return n
}

func atomicAddFloat64(cell *atomic.Uint64, v float64) {
	for {
		old := cell.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if cell.CompareAndSwap(old, next) {
			return
		}
	}
}

func atomicMinFloat64(cell *atomic.Uint64, v float64) {
	for {
		old := cell.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if cell.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func atomicMaxFloat64(cell *atomic.Uint64, v float64) {
	for {
		old := cell.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if cell.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func atomicMaxInt64(cell *atomic.Int64, v int64) {
	for {
		old := cell.Load()
		if old >= v {
			return
		}
		if cell.CompareAndSwap(old, v) {
			return
		}
	}
}
