package gpu

import (
	"time"

	"saber/internal/exec"
	"saber/internal/fault"
	"saber/internal/model"
	"saber/internal/obs"
)

// job is one query task travelling through the five pipeline stages. The
// slot's buffers (pinned staging and device global memory) are owned by
// the job while in flight and recycled when copyout completes.
type job struct {
	prog *Program
	in   [2]exec.Batch
	res  *exec.TaskResult
	done chan error

	slot    *slotBuffers
	inBytes int
	tuples  int

	// err marks the job failed; later stages pass a failed job through
	// without touching its buffers, and copyout reports the error on the
	// completion channel instead of a result.
	err error

	// devOut holds the kernel's stream output in device memory; moveout
	// and copyout stage it back to the host. Structured partials are
	// produced by the kernel and accounted for in outBytes.
	outBytes    int
	selectivity float64

	// tr receives per-stage duration stamps (nil disables stamping; all
	// TaskTrace methods are nil-safe). A failed-over task's trace may
	// concurrently receive CPU-retry stamps — TaskTrace fields are atomic,
	// last write wins.
	tr *obs.TaskTrace
}

// slotBuffers is one of the PipelineDepth in-flight buffer sets (the
// paper's "buffer 1..4" in Fig. 6).
type slotBuffers struct {
	pinIn  [2][]byte
	devIn  [2][]byte
	devOut []byte
	pinOut []byte
}

type pipeline struct {
	d     *Device
	slots chan *slotBuffers

	cIn, cMove, cExec, cBack, cOut chan *job
	quit                           chan struct{}
}

func newPipeline(d *Device) *pipeline {
	p := &pipeline{
		d:     d,
		slots: make(chan *slotBuffers, d.cfg.PipelineDepth),
		cIn:   make(chan *job),
		cMove: make(chan *job),
		cExec: make(chan *job),
		cBack: make(chan *job),
		cOut:  make(chan *job),
		quit:  make(chan struct{}),
	}
	for i := 0; i < d.cfg.PipelineDepth; i++ {
		p.slots <- &slotBuffers{}
	}
	go p.copyin()
	go p.movein()
	go p.execute()
	go p.moveout()
	go p.copyout()
	return p
}

func (p *pipeline) close() {
	close(p.cIn) // cascades stage by stage
}

func (p *pipeline) submit(j *job) {
	j.slot = <-p.slots
	// Snapshot the task's input into the slot's pinned staging buffers
	// while the submitter still owns the task's ring region. After submit
	// returns the pipeline touches only slot-owned memory, so a task that
	// is failed over during a device hang — its ring region released and
	// rewritten by the feeder — cannot race a stalled copy stage.
	j.inBytes = 0
	hint := int(p.d.batchHint.Load())
	for i := 0; i < 2; i++ {
		if n := len(j.in[i].Data); n > 0 && hint > n && hint > cap(j.slot.pinIn[i]) {
			// The engine has grown ϕ past this slot's staging capacity:
			// reallocate once to the hinted size rather than letting the
			// next several batches append-double their way there.
			j.slot.pinIn[i] = make([]byte, 0, hint)
			p.d.stagingGrows.Add(1)
		}
		j.slot.pinIn[i] = append(j.slot.pinIn[i][:0], j.in[i].Data...)
		j.inBytes += len(j.in[i].Data)
		j.in[i].Data = nil
	}
	p.d.inflight.Add(1)
	p.cIn <- j
}

// copyin: managed heap → pinned host memory (the copy itself happened at
// submit; this stage models its cost and injects DMA faults).
func (p *pipeline) copyin() {
	defer close(p.cMove)
	for j := range p.cIn {
		if p.d.cfg.Fault.Decide(fault.GPUCopyIn) {
			j.err = fault.Errorf(fault.GPUCopyIn, "DMA copy-in error")
			p.cMove <- j
			continue
		}
		start := time.Now()
		j.tr.SetStage(obs.StageGPUCopyIn, model.Pad(start, p.d.cfg.Model.HostCopyTime(j.inBytes)))
		p.cMove <- j
	}
}

// movein: pinned host memory → device global memory over the simulated
// PCIe link.
func (p *pipeline) movein() {
	defer close(p.cExec)
	for j := range p.cMove {
		if j.err != nil {
			p.cExec <- j
			continue
		}
		start := time.Now()
		for i := 0; i < 2; i++ {
			j.slot.devIn[i] = append(j.slot.devIn[i][:0], j.slot.pinIn[i]...)
		}
		p.d.bytesMoved.Add(int64(j.inBytes))
		j.tr.SetStage(obs.StageGPUMoveIn, model.Pad(start, p.d.cfg.Model.PCIeTime(j.inBytes)))
		p.cExec <- j
	}
}

// execute: run the kernels over device memory. Window boundaries are
// computed host-side (as in the paper — the cause of Fig. 12c's GPGPU
// collapse for very large join tasks).
func (p *pipeline) execute() {
	defer close(p.cBack)
	for j := range p.cExec {
		if j.err != nil {
			p.cBack <- j
			continue
		}
		// An injected hang stalls the whole pipeline behind this task —
		// exactly how a wedged kernel starves the real device. The job
		// still completes afterwards, typically long after the engine's
		// GPU timeout failed it over, exercising late-result dedup.
		if d := p.d.cfg.Fault.Stall(fault.GPUHang); d > 0 {
			p.d.hangs.Add(1)
			time.Sleep(d)
		}
		if p.d.cfg.Fault.Decide(fault.GPUKernel) {
			j.err = fault.Errorf(fault.GPUKernel, "kernel fault")
			p.cBack <- j
			continue
		}
		start := time.Now()
		j.prog.runKernels(j)
		cost := p.d.cfg.Model
		j.tr.SetStage(obs.StageGPUKernel, model.Pad(start, cost.GPUKernelTime(j.prog.cost, j.tuples, j.selectivity)))
		p.cBack <- j
	}
}

// moveout: device global memory → pinned host memory.
func (p *pipeline) moveout() {
	defer close(p.cOut)
	for j := range p.cBack {
		if j.err != nil {
			p.cOut <- j
			continue
		}
		start := time.Now()
		j.slot.pinOut = append(j.slot.pinOut[:0], j.slot.devOut...)
		p.d.bytesMoved.Add(int64(j.outBytes))
		j.tr.SetStage(obs.StageGPUMoveOut, model.Pad(start, p.d.cfg.Model.PCIeTime(j.outBytes)))
		p.cOut <- j
	}
}

// copyout: pinned host memory → managed heap (the TaskResult).
func (p *pipeline) copyout() {
	for j := range p.cOut {
		if j.err != nil {
			p.d.inflight.Add(-1)
			p.slots <- j.slot
			p.d.tasksFailed.Add(1)
			j.done <- j.err
			continue
		}
		start := time.Now()
		j.res.Stream = append(j.res.Stream, j.slot.pinOut...)
		j.tr.SetStage(obs.StageGPUCopyOut, model.Pad(start, p.d.cfg.Model.HostCopyTime(j.outBytes)))
		p.d.inflight.Add(-1)
		p.slots <- j.slot
		p.d.tasksDone.Add(1)
		j.done <- nil
	}
}
