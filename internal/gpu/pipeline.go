package gpu

import (
	"time"

	"saber/internal/exec"
	"saber/internal/fault"
	"saber/internal/model"
	"saber/internal/obs"
)

// job is one query task travelling through the five pipeline stages. The
// slot's buffers (pinned staging and device global memory) are owned by
// the job while in flight and recycled when copyout completes.
type job struct {
	prog *Program
	in   [2]exec.Batch
	res  *exec.TaskResult
	done chan error

	slot    *slotBuffers
	inBytes int
	tuples  int

	// colStaged marks that input 0 was staged as per-field column
	// segments (slot.pinCols/devCols) instead of packed rows: the
	// RowFreeMap no-gather path. Byte volume is identical either way, so
	// the modelled DMA costs do not change.
	colStaged bool

	// err marks the job failed; later stages pass a failed job through
	// without touching its buffers, and copyout reports the error on the
	// completion channel instead of a result.
	err error

	// devOut holds the kernel's stream output in device memory; moveout
	// and copyout stage it back to the host. Structured partials are
	// produced by the kernel and accounted for in outBytes.
	outBytes    int
	selectivity float64

	// tr receives per-stage duration stamps (nil disables stamping; all
	// TaskTrace methods are nil-safe). A failed-over task's trace may
	// concurrently receive CPU-retry stamps — TaskTrace fields are atomic,
	// last write wins.
	tr *obs.TaskTrace
}

// slotBuffers is one of the PipelineDepth in-flight buffer sets (the
// paper's "buffer 1..4" in Fig. 6).
type slotBuffers struct {
	pinIn  [2][]byte
	devIn  [2][]byte
	devOut []byte
	pinOut []byte

	// pinCols/devCols stage input 0's column segments for columnar jobs
	// (one entry per input-schema field, stride == field width).
	pinCols [][]byte
	devCols [][]byte
}

type pipeline struct {
	d     *Device
	slots chan *slotBuffers

	cIn, cMove, cExec, cBack, cOut chan *job
	quit                           chan struct{}
}

func newPipeline(d *Device) *pipeline {
	// The stage channels are buffered to the pipeline depth: the slot pool
	// is the admission gate (at most PipelineDepth jobs hold buffers), so
	// buffering the handoffs costs nothing — but it decouples submit from
	// stage backpressure. With unbuffered handoffs a stalled execute stage
	// propagates backwards and blocks submit itself for the stall's
	// duration, which hides the hang from the submitter's timeout watch.
	depth := d.cfg.PipelineDepth
	p := &pipeline{
		d:     d,
		slots: make(chan *slotBuffers, depth),
		cIn:   make(chan *job, depth),
		cMove: make(chan *job, depth),
		cExec: make(chan *job, depth),
		cBack: make(chan *job, depth),
		cOut:  make(chan *job, depth),
		quit:  make(chan struct{}),
	}
	for i := 0; i < d.cfg.PipelineDepth; i++ {
		p.slots <- &slotBuffers{}
	}
	go p.copyin()
	go p.movein()
	go p.execute()
	go p.moveout()
	go p.copyout()
	return p
}

func (p *pipeline) close() {
	close(p.cIn) // cascades stage by stage
}

func (p *pipeline) submit(j *job) {
	j.slot = <-p.slots
	// Snapshot the task's input into the slot's pinned staging buffers
	// while the submitter still owns the task's ring region. After submit
	// returns the pipeline touches only slot-owned memory, so a task that
	// is failed over during a device hang — its ring region released and
	// rewritten by the feeder — cannot race a stalled copy stage.
	j.inBytes = 0
	j.colStaged = j.in[0].Cols != nil && j.prog.plan.RowFreeMap()
	hint := int(p.d.batchHint.Load())
	if j.colStaged {
		// Stage the per-field column segments directly: no row image is
		// gathered or transferred. Only the fields the plan reads are
		// materialised (the ring shreds the plan's ColumnsRead set), so the
		// modelled copy/PCIe costs cover exactly the referenced bytes —
		// nil entries mark row-only fields the kernels never touch.
		cols := j.in[0].Cols
		if cap(j.slot.pinCols) < len(cols) {
			j.slot.pinCols = make([][]byte, len(cols))
		}
		j.slot.pinCols = j.slot.pinCols[:len(cols)]
		for c, col := range cols {
			if col == nil {
				j.slot.pinCols[c] = nil
				continue
			}
			j.slot.pinCols[c] = append(j.slot.pinCols[c][:0], col...)
			j.inBytes += len(col)
		}
		p.d.gathersElided.Add(1)
	} else {
		for i := 0; i < 2; i++ {
			if n := len(j.in[i].Data); n > 0 && hint > n && hint > cap(j.slot.pinIn[i]) {
				// The engine has grown ϕ past this slot's staging capacity:
				// reallocate once to the hinted size rather than letting the
				// next several batches append-double their way there.
				j.slot.pinIn[i] = make([]byte, 0, hint)
				p.d.stagingGrows.Add(1)
			}
			j.slot.pinIn[i] = append(j.slot.pinIn[i][:0], j.in[i].Data...)
			j.inBytes += len(j.in[i].Data)
		}
	}
	// Drop the ring-backed views either way: after submit the pipeline
	// touches only slot-owned memory.
	for i := 0; i < 2; i++ {
		j.in[i].Data = nil
		j.in[i].Cols = nil
	}
	p.d.inflight.Add(1)
	p.cIn <- j
}

// copyin: managed heap → pinned host memory (the copy itself happened at
// submit; this stage models its cost and injects DMA faults).
func (p *pipeline) copyin() {
	defer close(p.cMove)
	for j := range p.cIn {
		if p.d.cfg.Fault.Decide(fault.GPUCopyIn) {
			j.err = fault.Errorf(fault.GPUCopyIn, "DMA copy-in error")
			p.cMove <- j
			continue
		}
		start := time.Now()
		j.tr.SetStage(obs.StageGPUCopyIn, model.Pad(start, p.d.cfg.Model.HostCopyTime(j.inBytes)))
		p.cMove <- j
	}
}

// movein: pinned host memory → device global memory over the simulated
// PCIe link.
func (p *pipeline) movein() {
	defer close(p.cExec)
	for j := range p.cMove {
		if j.err != nil {
			p.cExec <- j
			continue
		}
		start := time.Now()
		if j.colStaged {
			if cap(j.slot.devCols) < len(j.slot.pinCols) {
				j.slot.devCols = make([][]byte, len(j.slot.pinCols))
			}
			j.slot.devCols = j.slot.devCols[:len(j.slot.pinCols)]
			for c, col := range j.slot.pinCols {
				if col == nil {
					j.slot.devCols[c] = nil
					continue
				}
				j.slot.devCols[c] = append(j.slot.devCols[c][:0], col...)
			}
		} else {
			for i := 0; i < 2; i++ {
				j.slot.devIn[i] = append(j.slot.devIn[i][:0], j.slot.pinIn[i]...)
			}
		}
		p.d.bytesMoved.Add(int64(j.inBytes))
		j.tr.SetStage(obs.StageGPUMoveIn, model.Pad(start, p.d.cfg.Model.PCIeTime(j.inBytes)))
		p.cExec <- j
	}
}

// execute: run the kernels over device memory. Window boundaries are
// computed host-side (as in the paper — the cause of Fig. 12c's GPGPU
// collapse for very large join tasks).
func (p *pipeline) execute() {
	defer close(p.cBack)
	for j := range p.cExec {
		if j.err != nil {
			p.cBack <- j
			continue
		}
		// An injected hang stalls the whole pipeline behind this task —
		// exactly how a wedged kernel starves the real device. The job
		// still completes afterwards, typically long after the engine's
		// GPU timeout failed it over, exercising late-result dedup.
		if d := p.d.cfg.Fault.Stall(fault.GPUHang); d > 0 {
			p.d.hangs.Add(1)
			time.Sleep(d)
		}
		if p.d.cfg.Fault.Decide(fault.GPUKernel) {
			j.err = fault.Errorf(fault.GPUKernel, "kernel fault")
			p.cBack <- j
			continue
		}
		start := time.Now()
		j.prog.runKernels(j)
		cost := p.d.cfg.Model
		j.tr.SetStage(obs.StageGPUKernel, model.Pad(start, cost.GPUKernelTime(j.prog.cost, j.tuples, j.selectivity)))
		p.cBack <- j
	}
}

// moveout: device global memory → pinned host memory.
func (p *pipeline) moveout() {
	defer close(p.cOut)
	for j := range p.cBack {
		if j.err != nil {
			p.cOut <- j
			continue
		}
		start := time.Now()
		j.slot.pinOut = append(j.slot.pinOut[:0], j.slot.devOut...)
		p.d.bytesMoved.Add(int64(j.outBytes))
		j.tr.SetStage(obs.StageGPUMoveOut, model.Pad(start, p.d.cfg.Model.PCIeTime(j.outBytes)))
		p.cOut <- j
	}
}

// copyout: pinned host memory → managed heap (the TaskResult).
func (p *pipeline) copyout() {
	for j := range p.cOut {
		if j.err != nil {
			p.d.inflight.Add(-1)
			p.slots <- j.slot
			p.d.tasksFailed.Add(1)
			j.done <- j.err
			continue
		}
		start := time.Now()
		j.res.Stream = append(j.res.Stream, j.slot.pinOut...)
		j.tr.SetStage(obs.StageGPUCopyOut, model.Pad(start, p.d.cfg.Model.HostCopyTime(j.outBytes)))
		p.d.inflight.Add(-1)
		p.slots <- j.slot
		p.d.tasksDone.Add(1)
		j.done <- nil
	}
}
