package gpu

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"saber/internal/exec"
	"saber/internal/expr"
	"saber/internal/model"
	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/window"
)

var syn = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "a", Type: schema.Float32},
	schema.Field{Name: "b", Type: schema.Int32},
	schema.Field{Name: "c", Type: schema.Int32},
)

func genStream(n int, seed int64) []byte {
	rnd := rand.New(rand.NewSource(seed))
	b := schema.NewTupleBuilder(syn, n)
	for i := 0; i < n; i++ {
		b.Begin().
			Timestamp(int64(i)).
			Float32("a", float32(rnd.Intn(1000))/10).
			Int32("b", int32(rnd.Intn(8))).
			Int32("c", int32(rnd.Intn(50)))
	}
	return b.Bytes()
}

// fastDevice opens a device whose modelled times are negligible, so
// correctness tests run quickly.
func fastDevice(t *testing.T) *Device {
	t.Helper()
	d := Open(Config{SMs: 4, WorkgroupTuples: 16, Model: model.Default().Scaled(1e-6)})
	t.Cleanup(d.Close)
	return d
}

// runBoth executes the plan over the stream twice — CPU path and GPU
// program — and returns both assembled outputs.
func runBoth(t *testing.T, d *Device, p *exec.Plan, streams [2][]byte, batchTuples int) (cpu, gpu []byte) {
	t.Helper()
	prog := d.Compile(p)
	for _, mode := range []string{"cpu", "gpu"} {
		asm := exec.NewAssembler(p)
		var out []byte
		var pos [2]int
		prevTS := [2]int64{window.NoPrev, window.NoPrev}
		more := func() bool {
			for i := 0; i < p.NumInputs(); i++ {
				if pos[i]*p.InputSchema(i).TupleSize() < len(streams[i]) {
					return true
				}
			}
			return false
		}
		for more() {
			var in [2]exec.Batch
			for i := 0; i < p.NumInputs(); i++ {
				s := p.InputSchema(i)
				tsz := s.TupleSize()
				total := len(streams[i]) / tsz
				n := batchTuples
				if pos[i]+n > total {
					n = total - pos[i]
				}
				data := streams[i][pos[i]*tsz : (pos[i]+n)*tsz]
				in[i] = exec.Batch{Data: data, Ctx: window.Context{
					FirstIndex:    int64(pos[i]),
					PrevTimestamp: prevTS[i],
				}}
				if n > 0 {
					prevTS[i] = s.Timestamp(data[(n-1)*tsz:])
				}
				pos[i] += n
			}
			res := p.NewResult()
			if mode == "cpu" {
				if err := p.Process(in, res); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := prog.Run(in, res); err != nil {
					t.Fatal(err)
				}
			}
			out = asm.Drain(res, out)
			p.ReleaseResult(res)
		}
		out = asm.Flush(out)
		if mode == "cpu" {
			cpu = out
		} else {
			gpu = out
		}
	}
	return cpu, gpu
}

func mustCompile(t *testing.T, q *query.Query) *exec.Plan {
	t.Helper()
	p, err := exec.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMapKernelMatchesCPU(t *testing.T) {
	d := fastDevice(t)
	q := query.NewBuilder("sel").
		From("S", syn, window.NewCount(8, 8)).
		Where(expr.Cmp{Op: expr.Lt, Left: expr.Col("b"), Right: expr.IntConst(4)}).
		Select("timestamp", "b").
		SelectAs(expr.Arith{Op: expr.Mul, Left: expr.Col("a"), Right: expr.FloatConst(2)}, "a2").
		MustBuild()
	p := mustCompile(t, q)
	stream := genStream(500, 1)
	for _, batch := range []int{33, 128, 500} {
		cpu, gpu := runBoth(t, d, p, [2][]byte{stream, nil}, batch)
		if string(cpu) != string(gpu) {
			t.Fatalf("batch %d: GPU selection output differs (%d vs %d bytes)", batch, len(gpu), len(cpu))
		}
	}
}

func TestMapKernelEmptyAndAllPass(t *testing.T) {
	d := fastDevice(t)
	qAll := query.NewBuilder("all").From("S", syn, window.NewCount(4, 4)).MustBuild()
	pAll := mustCompile(t, qAll)
	stream := genStream(64, 2)
	cpu, gpu := runBoth(t, d, pAll, [2][]byte{stream, nil}, 10)
	if string(cpu) != string(gpu) || len(gpu) != len(stream) {
		t.Fatal("identity mismatch")
	}
	qNone := query.NewBuilder("none").
		From("S", syn, window.NewCount(4, 4)).
		Where(expr.Cmp{Op: expr.Lt, Left: expr.Col("b"), Right: expr.IntConst(-1)}).
		MustBuild()
	pNone := mustCompile(t, qNone)
	cpu, gpu = runBoth(t, d, pNone, [2][]byte{stream, nil}, 10)
	if len(cpu) != 0 || len(gpu) != 0 {
		t.Fatal("all-filtered mismatch")
	}
}

// rowsAsSet normalises rows for order-insensitive comparison with small
// float tolerance via formatting.
func rowsAsSet(p *exec.Plan, out []byte) []string {
	s := p.OutputSchema()
	osz := s.TupleSize()
	var rows []string
	for i := 0; i+osz <= len(out); i += osz {
		var b []byte
		for f := 0; f < s.NumFields(); f++ {
			b = fmt.Appendf(b, "%s=%.3f;", s.Field(f).Name, s.ReadFloat(out[i:i+osz], f))
		}
		rows = append(rows, string(b))
	}
	sort.Strings(rows)
	return rows
}

func TestAggScalarKernelMatchesCPU(t *testing.T) {
	d := fastDevice(t)
	for _, w := range []window.Def{window.NewCount(16, 16), window.NewCount(32, 8), window.NewTime(20, 5)} {
		q := query.NewBuilder("agg").
			From("S", syn, w).
			Aggregate(query.Sum, expr.Col("a"), "s").
			Aggregate(query.Count, nil, "n").
			Aggregate(query.Min, expr.Col("a"), "lo").
			Aggregate(query.Max, expr.Col("a"), "hi").
			MustBuild()
		p := mustCompile(t, q)
		stream := genStream(300, 3)
		cpu, gpu := runBoth(t, d, p, [2][]byte{stream, nil}, 47)
		cr, gr := rowsAsSet(p, cpu), rowsAsSet(p, gpu)
		if len(cr) != len(gr) {
			t.Fatalf("%v: rows %d vs %d", w, len(cr), len(gr))
		}
		for i := range cr {
			if cr[i] != gr[i] {
				t.Fatalf("%v row %d:\n cpu %s\n gpu %s", w, i, cr[i], gr[i])
			}
		}
	}
}

func TestAggGroupedKernelMatchesCPU(t *testing.T) {
	d := fastDevice(t)
	for _, w := range []window.Def{window.NewCount(25, 25), window.NewCount(40, 10)} {
		q := query.NewBuilder("grp").
			From("S", syn, w).
			Where(expr.Cmp{Op: expr.Gt, Left: expr.Col("a"), Right: expr.FloatConst(5)}).
			Aggregate(query.Avg, expr.Col("a"), "m").
			Aggregate(query.Count, nil, "n").
			GroupBy("b").
			MustBuild()
		p := mustCompile(t, q)
		stream := genStream(400, 4)
		cpu, gpu := runBoth(t, d, p, [2][]byte{stream, nil}, 61)
		cr, gr := rowsAsSet(p, cpu), rowsAsSet(p, gpu)
		if len(cr) != len(gr) {
			t.Fatalf("%v: rows %d vs %d", w, len(cr), len(gr))
		}
		for i := range cr {
			if cr[i] != gr[i] {
				t.Fatalf("%v row %d:\n cpu %s\n gpu %s", w, i, cr[i], gr[i])
			}
		}
	}
}

// TestAggGroupedManyGroupsSpill forces the fixed-capacity atomic table
// into its spill path and checks nothing is lost.
func TestAggGroupedManyGroupsSpill(t *testing.T) {
	d := fastDevice(t)
	wide := schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "g", Type: schema.Int32},
	)
	n := 3000
	b := schema.NewTupleBuilder(wide, n)
	for i := 0; i < n; i++ {
		b.Begin().Timestamp(int64(i)).Int32("g", int32(i)) // all distinct
	}
	q := query.NewBuilder("spill").
		From("S", wide, window.NewCount(int64(n), int64(n))).
		CountAll("n").
		GroupBy("g").
		MustBuild()
	p := mustCompile(t, q)
	cpu, gpu := runBoth(t, d, p, [2][]byte{b.Bytes(), nil}, n)
	if len(cpu) != len(gpu) || len(cpu)/p.OutputSchema().TupleSize() != n {
		t.Fatalf("spill path lost groups: cpu %d gpu %d bytes", len(cpu), len(gpu))
	}
}

func TestJoinKernelMatchesCPU(t *testing.T) {
	d := fastDevice(t)
	right := schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "w", Type: schema.Int32},
	)
	lb := schema.NewTupleBuilder(syn, 128)
	rb := schema.NewTupleBuilder(right, 128)
	rnd := rand.New(rand.NewSource(5))
	for i := 0; i < 128; i++ {
		lb.Begin().Timestamp(int64(i)).Int32("b", int32(rnd.Intn(4)))
		rb.Begin().Timestamp(int64(i)).Int32("w", int32(rnd.Intn(4)))
	}
	q := query.NewBuilder("join").
		FromAs("L", "L", syn, window.NewCount(16, 16)).
		FromAs("R", "R", right, window.NewCount(16, 16)).
		Join(expr.Cmp{Op: expr.Eq, Left: expr.Col("b"), Right: expr.Col("w")}).
		MustBuild()
	p := mustCompile(t, q)
	for _, batch := range []int{5, 16, 128} {
		cpu, gpu := runBoth(t, d, p, [2][]byte{lb.Bytes(), rb.Bytes()}, batch)
		if string(cpu) != string(gpu) {
			t.Fatalf("batch %d: join output differs (%d vs %d bytes)", batch, len(cpu), len(gpu))
		}
	}
}

// TestPipelineOverlap: with modelled stage times, a depth-4 pipeline must
// finish a burst of tasks in much less time than the sequential device.
func TestPipelineOverlap(t *testing.T) {
	mk := func(depth int) time.Duration {
		m := model.Default()
		// Inflate transfers so each stage is ~5 ms for a 64 KB task.
		m.PCIeNsPerByte = 80
		m.HostCopyNsPerByte = 80
		m.GPULaunchNs = 5e6
		d := Open(Config{SMs: 2, PipelineDepth: depth, Model: m})
		defer d.Close()
		q := query.NewBuilder("id").From("S", syn, window.NewCount(8, 8)).MustBuild()
		p := mustCompile(t, q)
		prog := d.Compile(p)
		stream := genStream(2730, 7) // ~64 KB
		const tasks = 8
		start := time.Now()
		dones := make([]<-chan error, 0, tasks)
		results := make([]*exec.TaskResult, 0, tasks)
		for i := 0; i < tasks; i++ {
			res := p.NewResult()
			results = append(results, res)
			dones = append(dones, prog.Submit([2]exec.Batch{{Data: stream, Ctx: window.Context{FirstIndex: int64(i * 2730), PrevTimestamp: int64(i*2730 - 1)}}, {}}, res))
		}
		for _, c := range dones {
			if err := <-c; err != nil {
				t.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		for _, r := range results {
			p.ReleaseResult(r)
		}
		return elapsed
	}
	seq := mk(1)
	pipe := mk(4)
	if pipe*2 > seq {
		t.Fatalf("pipelining ineffective: depth4 %v vs depth1 %v", pipe, seq)
	}
}

func TestDeviceTelemetryAndClose(t *testing.T) {
	d := Open(Config{SMs: 2, Model: model.Default().Scaled(1e-6)})
	q := query.NewBuilder("id").From("S", syn, window.NewCount(8, 8)).MustBuild()
	p := mustCompile(t, q)
	prog := d.Compile(p)
	res := p.NewResult()
	stream := genStream(100, 8)
	if err := prog.Run([2]exec.Batch{{Data: stream, Ctx: window.Context{PrevTimestamp: window.NoPrev}}, {}}, res); err != nil {
		t.Fatal(err)
	}
	if d.TasksCompleted() != 1 || d.BytesMoved() == 0 {
		t.Fatalf("telemetry: tasks=%d bytes=%d", d.TasksCompleted(), d.BytesMoved())
	}
	if d.String() == "" {
		t.Error("String empty")
	}
	d.Close()
	d.Close() // idempotent
}

func TestAtomicTableConcurrent(t *testing.T) {
	tab := newAtomicTable(4, 1, 64)
	ops := []exec.MergeOp{exec.OpAdd}
	seed := []float64{0}
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func(g int) {
			key := make([]byte, 4)
			for i := 0; i < 1000; i++ {
				key[0] = byte(i % 16)
				if s := tab.upsert(key, seed); s >= 0 {
					tab.fold(s, []float64{1}, ops, int64(i))
				} else {
					tab.foldSpill(key, []float64{1}, ops, int64(i), seed)
				}
			}
			done <- true
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if tab.len() != 16 {
		t.Fatalf("groups = %d, want 16", tab.len())
	}
	dst := exec.NewHashTable(4, 1, 16)
	tab.drainInto(dst, nil, ops)
	total := int64(0)
	dst.Range(func(s exec.Slot) {
		total += s.Count()
		if s.Val(0) != float64(s.Count()) {
			t.Fatalf("count %d != sum %g", s.Count(), s.Val(0))
		}
	})
	if total != 4000 {
		t.Fatalf("total = %d", total)
	}
}

func TestAtomicHelpers(t *testing.T) {
	var cell = newAtomicTable(1, 1, 4).vals[:1]
	cell[0].Store(math.Float64bits(1))
	atomicAddFloat64(&cell[0], 2)
	if math.Float64frombits(cell[0].Load()) != 3 {
		t.Fatal("add")
	}
	atomicMinFloat64(&cell[0], 10) // no-op
	atomicMinFloat64(&cell[0], -1)
	if math.Float64frombits(cell[0].Load()) != -1 {
		t.Fatal("min")
	}
	atomicMaxFloat64(&cell[0], 7)
	atomicMaxFloat64(&cell[0], 2) // no-op
	if math.Float64frombits(cell[0].Load()) != 7 {
		t.Fatal("max")
	}
}

// TestUDFKernelMatchesCPU runs a single-input UDF (windowed value
// histogram) on both paths.
func TestUDFKernelMatchesCPU(t *testing.T) {
	d := fastDevice(t)
	out := schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "sum", Type: schema.Float64},
	)
	udf := &query.UDF{
		Name: "sumBlob",
		Out:  out,
		ProcessFragment: func(in [][]byte) []byte {
			var s float64
			var maxTS int64 = math.MinInt64
			n := len(in[0]) / syn.TupleSize()
			for i := 0; i < n; i++ {
				tu := syn.TupleAt(in[0], i)
				s += float64(syn.ReadFloat32(tu, 1))
				if ts := syn.Timestamp(tu); ts > maxTS {
					maxTS = ts
				}
			}
			b := make([]byte, 16)
			binary.LittleEndian.PutUint64(b, uint64(maxTS))
			binary.LittleEndian.PutUint64(b[8:], math.Float64bits(s))
			return b
		},
		Merge: func(acc, next []byte) []byte {
			if len(acc) == 0 {
				return next
			}
			if len(next) == 0 {
				return acc
			}
			at := int64(binary.LittleEndian.Uint64(acc))
			nt := int64(binary.LittleEndian.Uint64(next))
			if nt > at {
				binary.LittleEndian.PutUint64(acc, uint64(nt))
			}
			s := math.Float64frombits(binary.LittleEndian.Uint64(acc[8:])) +
				math.Float64frombits(binary.LittleEndian.Uint64(next[8:]))
			binary.LittleEndian.PutUint64(acc[8:], math.Float64bits(s))
			return acc
		},
		Finalize: func(partial []byte) []byte {
			row := make([]byte, out.TupleSize())
			out.SetTimestamp(row, int64(binary.LittleEndian.Uint64(partial)))
			out.WriteFloat64(row, 1, math.Float64frombits(binary.LittleEndian.Uint64(partial[8:])))
			return row
		},
	}
	q := query.NewBuilder("udf").
		From("S", syn, window.NewCount(40, 20)).
		UDF(udf).
		MustBuild()
	p := mustCompile(t, q)
	stream := genStream(400, 9)
	cpu, gpu := runBoth(t, d, p, [2][]byte{stream, nil}, 57)
	if string(cpu) != string(gpu) {
		t.Fatalf("UDF kernel output differs: %d vs %d bytes", len(cpu), len(gpu))
	}
	if len(cpu) == 0 {
		t.Fatal("no UDF output")
	}
}
