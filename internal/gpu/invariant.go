package gpu

import "fmt"

// Invariant hooks for the stress harness (internal/harness). Device
// satisfies the inv.Checker contract structurally.

// Inflight returns the number of tasks currently holding one of the
// pipeline's slot buffer sets.
func (d *Device) Inflight() int64 { return d.inflight.Load() }

// InvariantName implements the inv.Checker contract.
func (d *Device) InvariantName() string { return "gpu.device" }

// CheckInvariants verifies the pipeline's slot accounting:
//
//   - the number of in-flight tasks stays within [0, PipelineDepth]
//     (submit acquires a slot before incrementing, copyout decrements
//     before returning it, so a violation means a slot leaked or was
//     double-freed);
//   - the completed-task counter is monotonic. The checker mutex
//     serialises callers so the watermark comparison cannot misfire on
//     stale loads.
func (d *Device) CheckInvariants() error {
	fly := d.inflight.Load()
	if fly < 0 || fly > int64(d.cfg.PipelineDepth) {
		return fmt.Errorf("inflight %d outside [0,%d]", fly, d.cfg.PipelineDepth)
	}
	d.chk.mu.Lock()
	defer d.chk.mu.Unlock()
	done := d.tasksDone.Load()
	if done < d.chk.done {
		return fmt.Errorf("tasksDone moved backwards: %d -> %d", d.chk.done, done)
	}
	d.chk.done = done
	return nil
}
