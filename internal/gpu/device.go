// Package gpu implements SABER's GPGPU execution back end as a software
// device (DESIGN.md §2): streaming multiprocessors are a goroutine pool
// executing workgroups, global memory is arena-style byte buffers, DMA
// transfers really copy bytes through pinned staging buffers, and the
// five-stage pipeline of paper §5.2 (copyin → movein → execute → moveout →
// copyout) interleaves transfers with kernel execution across in-flight
// tasks. Wall-clock behaviour follows the calibrated cost model in
// internal/model, so the device exhibits the paper's performance surface
// (PCIe-bound for cheap kernels, compute-advantaged for expensive ones)
// while producing real, assembly-compatible results.
package gpu

import (
	"fmt"
	"sync"
	"sync/atomic"

	"saber/internal/fault"
	"saber/internal/model"
)

// Config describes the simulated device.
type Config struct {
	// SMs is the number of streaming multiprocessors: the worker
	// goroutines executing workgroups. Defaults to 8.
	SMs int
	// WorkgroupTuples is the number of tuples per workgroup. Defaults
	// to 256.
	WorkgroupTuples int
	// PipelineDepth is the number of in-flight tasks (the paper uses 4
	// device buffers). 1 disables pipelining (the ablation baseline).
	PipelineDepth int
	// Model supplies the timing behaviour.
	Model model.Params
	// Fault optionally injects device faults (DMA errors, kernel faults,
	// hangs) at the pipeline's stages; nil runs fault-free.
	Fault *fault.Injector
}

func (c Config) withDefaults() Config {
	if c.SMs <= 0 {
		c.SMs = 8
	}
	if c.WorkgroupTuples <= 0 {
		c.WorkgroupTuples = 256
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 4
	}
	if c.Model.TimeScale == 0 {
		c.Model = model.Default()
	}
	return c
}

// Device is one simulated GPGPU. Open it once and share it between
// queries; Close it to stop its goroutines.
type Device struct {
	cfg Config

	work   chan workgroup
	wgDone sync.WaitGroup // SM pool lifetime

	pipe *pipeline

	closed atomic.Bool

	// batchHint is the engine's current task size ϕ in bytes; the submit
	// path pre-sizes each slot's pinned staging buffers to it, so a grown
	// ϕ costs one reallocation per slot instead of append-doubling churn
	// in the middle of a burst. 0 means no hint (size to the data).
	batchHint atomic.Int64

	// Telemetry.
	tasksDone    atomic.Int64
	tasksFailed  atomic.Int64 // tasks that left the pipeline with an error
	hangs        atomic.Int64 // injected execute-stage stalls
	bytesMoved   atomic.Int64
	inflight      atomic.Int64 // tasks holding a pipeline slot right now
	stagingGrows  atomic.Int64 // hint-driven staging buffer reallocations
	gathersElided atomic.Int64 // tasks staged columnar (no row gather)

	// chk holds the invariant checker's monotonicity watermark; the mutex
	// serialises CheckInvariants callers (see invariant.go).
	chk struct {
		mu   sync.Mutex
		done int64
	}
}

type workgroup struct {
	fn   func(lo, hi int)
	lo   int
	hi   int
	done *sync.WaitGroup
}

// Open starts the device: the SM pool and the pipeline stage threads.
func Open(cfg Config) *Device {
	cfg = cfg.withDefaults()
	d := &Device{
		cfg:  cfg,
		work: make(chan workgroup, cfg.SMs*4),
	}
	d.wgDone.Add(cfg.SMs)
	for i := 0; i < cfg.SMs; i++ {
		go d.sm()
	}
	d.pipe = newPipeline(d)
	return d
}

// Close drains and stops the device. Outstanding Submit results complete
// first.
func (d *Device) Close() {
	if d.closed.Swap(true) {
		return
	}
	d.pipe.close()
	close(d.work)
	d.wgDone.Wait()
}

// TasksCompleted returns the number of tasks the device has finished.
func (d *Device) TasksCompleted() int64 { return d.tasksDone.Load() }

// TasksFailed returns the number of tasks that left the pipeline with a
// (injected) device fault.
func (d *Device) TasksFailed() int64 { return d.tasksFailed.Load() }

// Hangs returns the number of injected execute-stage stalls.
func (d *Device) Hangs() int64 { return d.hangs.Load() }

// BytesMoved returns the number of bytes DMA-transferred in either
// direction.
func (d *Device) BytesMoved() int64 { return d.bytesMoved.Load() }

// SetBatchHint tells the device the task size ϕ the engine is currently
// cutting, so the pipeline can stage batches into right-sized pinned
// buffers. Safe to call concurrently with submissions; 0 clears the
// hint.
func (d *Device) SetBatchHint(bytes int) {
	if bytes < 0 {
		bytes = 0
	}
	d.batchHint.Store(int64(bytes))
}

// BatchHint returns the current staging size hint in bytes.
func (d *Device) BatchHint() int64 { return d.batchHint.Load() }

// StagingGrows returns how many hint-driven staging-buffer
// reallocations the pipeline has performed.
func (d *Device) StagingGrows() int64 { return d.stagingGrows.Load() }

// GathersElided returns how many tasks were staged as column segments,
// skipping the per-task row gather entirely.
func (d *Device) GathersElided() int64 { return d.gathersElided.Load() }

// Injector returns the device's fault injector (nil when fault-free), so
// telemetry can mirror its per-site budgets.
func (d *Device) Injector() *fault.Injector { return d.cfg.Fault }

func (d *Device) sm() {
	defer d.wgDone.Done()
	for wg := range d.work {
		wg.fn(wg.lo, wg.hi)
		wg.done.Done()
	}
}

// launch runs a kernel over n work items, split into workgroups executed
// by the SM pool, and waits for completion.
func (d *Device) launch(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	gs := d.cfg.WorkgroupTuples
	var done sync.WaitGroup
	for lo := 0; lo < n; lo += gs {
		hi := lo + gs
		if hi > n {
			hi = n
		}
		done.Add(1)
		d.work <- workgroup{fn: fn, lo: lo, hi: hi, done: &done}
	}
	done.Wait()
}

// String describes the device.
func (d *Device) String() string {
	return fmt.Sprintf("gpu(SMs=%d, wg=%d, depth=%d)", d.cfg.SMs, d.cfg.WorkgroupTuples, d.cfg.PipelineDepth)
}
