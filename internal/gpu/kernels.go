package gpu

import (
	"math"
	"sort"

	"saber/internal/exec"
	"saber/internal/model"
	"saber/internal/obs"
	"saber/internal/window"
)

// Program is a query plan bound to a device: the OpenCL analogue of the
// paper's populated kernel templates (§5.4).
type Program struct {
	d    *Device
	plan *exec.Plan
	cost model.QueryCost
}

// Compile binds a plan to the device.
func (d *Device) Compile(plan *exec.Plan) *Program {
	return &Program{d: d, plan: plan, cost: model.Analyze(plan.Q)}
}

// Cost returns the program's analysed query cost.
func (p *Program) Cost() model.QueryCost { return p.cost }

// Submit enqueues a task into the five-stage pipeline and returns a
// completion channel. Up to the device's PipelineDepth tasks are in
// flight; beyond that Submit blocks, which is the backpressure the GPGPU
// worker thread relies on.
func (p *Program) Submit(in [2]exec.Batch, res *exec.TaskResult) <-chan error {
	return p.SubmitTraced(in, res, nil)
}

// SubmitTraced is Submit with a task trace: each pipeline stage stamps
// its duration (copyin/movein/kernel/moveout/copyout) into tr. A nil tr
// disables stamping.
func (p *Program) SubmitTraced(in [2]exec.Batch, res *exec.TaskResult, tr *obs.TaskTrace) <-chan error {
	done := make(chan error, 1)
	p.d.pipe.submit(&job{prog: p, in: in, res: res, done: done, selectivity: 1, tr: tr})
	return done
}

// Run executes a task synchronously.
func (p *Program) Run(in [2]exec.Batch, res *exec.TaskResult) error {
	return <-p.Submit(in, res)
}

// runKernels executes the plan's kernels over the job's device buffers.
// Called from the pipeline's execute stage.
func (p *Program) runKernels(j *job) {
	switch p.plan.Kind {
	case exec.Map:
		p.mapKernel(j)
	case exec.Aggregate:
		p.aggKernel(j)
	case exec.Join:
		p.joinKernel(j)
	case exec.UDFOp:
		p.udfKernel(j)
	}
}

// udfKernel evaluates a user-defined operator function: fragments/window
// pairs are computed host-side; each window's fragment function runs as
// an independent work item.
func (p *Program) udfKernel(j *job) {
	plan := p.plan
	if plan.NumInputs() == 2 {
		devIn := [2]exec.Batch{
			{Data: j.slot.devIn[0], Ctx: j.in[0].Ctx},
			{Data: j.slot.devIn[1], Ctx: j.in[1].Ctx},
		}
		j.tuples = len(devIn[0].Data)/plan.InputSchema(0).TupleSize() +
			len(devIn[1].Data)/plan.InputSchema(1).TupleSize()
		pairs := plan.JoinPairs(devIn)
		if len(pairs) == 0 {
			return
		}
		parts := make([]exec.WindowPartial, len(pairs))
		p.d.launch(len(pairs), func(lo, hi int) {
			for pi := lo; pi < hi; pi++ {
				parts[pi] = plan.UDFPartialPair(pairs[pi], devIn)
			}
		})
		j.res.Partials = append(j.res.Partials, parts...)
		j.outBytes = partialBytes(plan, parts)
		return
	}

	in := exec.Batch{Data: j.slot.devIn[0], Ctx: j.in[0].Ctx}
	j.tuples = len(in.Data) / plan.InputSchema(0).TupleSize()
	frags := plan.Fragments(nil, 0, j.tuples, in.Data, in.Ctx)
	if len(frags) == 0 {
		return
	}
	parts := make([]exec.WindowPartial, len(frags))
	p.d.launch(len(frags), func(lo, hi int) {
		for fi := lo; fi < hi; fi++ {
			parts[fi] = plan.UDFPartialSingle(in, frags[fi])
		}
	})
	j.res.Partials = append(j.res.Partials, parts...)
	j.outBytes = partialBytes(plan, parts)
}

// mapKernel implements projection/selection with the paper's two-step
// prefix-sum compaction: kernel 1 evaluates the predicate into a flag
// vector and per-workgroup counts; a scan turns counts into offsets;
// kernel 2 writes each selected tuple's projection to its compacted
// position in the device output buffer.
func (p *Program) mapKernel(j *job) {
	plan := p.plan
	s := plan.InputSchema(0)
	tsz := s.TupleSize()
	var data []byte
	var cols [][]byte
	var n int
	if j.colStaged {
		// Columnar job: the device holds per-field segments and never
		// materialises a row image; both kernels read the columns
		// directly. Row-only fields have nil entries (the ring shreds only
		// the plan's referenced set), so the tuple count comes from the
		// first staged column, not a byte total.
		cols = j.slot.devCols
		for f, c := range cols {
			if c != nil {
				n = len(c) / s.Field(f).Type.Size()
				break
			}
		}
	} else {
		data = j.slot.devIn[0]
		n = len(data) / tsz
	}
	j.tuples = n
	j.slot.devOut = j.slot.devOut[:0]
	if n == 0 {
		return
	}

	gs := p.d.cfg.WorkgroupTuples
	nGroups := (n + gs - 1) / gs
	flags := make([]uint8, n)
	counts := make([]int, nGroups)

	p.d.launch(n, func(lo, hi int) {
		// Batch-evaluate the predicate over the workgroup's range — the
		// same vectorized selection the CPU path runs.
		sel := plan.FilterSelect(nil, data, cols, lo, hi)
		for _, i := range sel {
			flags[i] = 1
		}
		counts[lo/gs] = len(sel)
	})

	// Scan the workgroup counts (small, done by the host like the
	// paper's window-boundary computation).
	offsets := make([]int, nGroups)
	total := 0
	for g, c := range counts {
		offsets[g] = total
		total += c
	}

	osz := plan.OutputSchema().TupleSize()
	if cap(j.slot.devOut) < total*osz {
		j.slot.devOut = make([]byte, total*osz)
	}
	out := j.slot.devOut[:total*osz]
	p.d.launch(n, func(lo, hi int) {
		pos := offsets[lo/gs]
		if j.colStaged {
			// Rebuild the workgroup's selection from the flag vector and
			// write its compacted run in one columnar batch append.
			sel := make([]int32, 0, hi-lo)
			for i := lo; i < hi; i++ {
				if flags[i] != 0 {
					sel = append(sel, int32(i))
				}
			}
			dst := out[pos*osz : pos*osz : (pos+len(sel))*osz]
			plan.WriteOutputBatch(dst, nil, cols, n, sel)
			return
		}
		tmp := make([]byte, 0, osz)
		for i := lo; i < hi; i++ {
			if flags[i] == 0 {
				continue
			}
			tmp = plan.WriteOutput(tmp[:0], data[i*tsz:(i+1)*tsz], nil)
			copy(out[pos*osz:], tmp)
			pos++
		}
	})
	j.slot.devOut = out
	j.outBytes = total * osz
	if n > 0 {
		j.selectivity = float64(total) / float64(n)
		if j.selectivity < 0.02 {
			j.selectivity = 0.02 // the guard predicate still runs
		}
	}
}

// aggKernel implements windowed aggregation: window boundaries are
// computed host-side, then one workgroup reduces each fragment (scalar
// aggregates) or all workgroups fold tuples into per-fragment atomic
// hash tables (GROUP BY), which are then compacted into CPU-compatible
// tables.
func (p *Program) aggKernel(j *job) {
	plan := p.plan
	s := plan.InputSchema(0)
	tsz := s.TupleSize()
	data := j.slot.devIn[0]
	n := len(data) / tsz
	j.tuples = n
	if n == 0 {
		return
	}
	frags := plan.Fragments(nil, 0, n, data, j.in[0].Ctx)
	if len(frags) == 0 {
		return
	}
	parts := make([]exec.WindowPartial, len(frags))
	for i, f := range frags {
		parts[i] = exec.WindowPartial{
			Window:     f.Window,
			OpenedHere: f.Opens,
			ClosedHere: f.Closes,
			MaxTS:      math.MinInt64,
		}
		if f.End > f.Start {
			parts[i].MaxTS = plan.TimestampOf(0, data, f.End-1)
		}
	}

	if plan.Grouped() {
		p.aggKernelGrouped(j, data, tsz, frags, parts)
	} else {
		p.aggKernelScalar(j, data, tsz, frags, parts)
	}

	j.res.Partials = append(j.res.Partials, parts...)
	j.outBytes = partialBytes(plan, parts)
}

func (p *Program) aggKernelScalar(j *job, data []byte, tsz int, frags []window.Fragment, parts []exec.WindowPartial) {
	plan := p.plan
	m := plan.NumAggs()
	ops := plan.AggOps()
	// Carve every fragment's accumulators out of the result's arena
	// before the launch: AllocVals is not safe from concurrent work
	// items.
	for fi := range parts {
		part := &parts[fi]
		part.Vals = j.res.AllocVals(m)
		for a, op := range ops {
			switch op {
			case exec.OpMin:
				part.Vals[a] = math.Inf(1)
			case exec.OpMax:
				part.Vals[a] = math.Inf(-1)
			}
		}
	}
	p.d.launch(len(frags), func(lo, hi int) {
		for fi := lo; fi < hi; fi++ {
			f := frags[fi]
			part := &parts[fi]
			// Reduction over the fragment's tuples.
			for i := f.Start; i < f.End; i++ {
				tuple := data[i*tsz : (i+1)*tsz]
				if !plan.EvalFilter(tuple) {
					continue
				}
				part.Count++
				for a, op := range ops {
					v := plan.AggArg(a, tuple)
					switch op {
					case exec.OpAdd:
						part.Vals[a] += v
					case exec.OpMin:
						if v < part.Vals[a] {
							part.Vals[a] = v
						}
					case exec.OpMax:
						if v > part.Vals[a] {
							part.Vals[a] = v
						}
					}
				}
			}
		}
	})
}

func (p *Program) aggKernelGrouped(j *job, data []byte, tsz int, frags []window.Fragment, parts []exec.WindowPartial) {
	plan := p.plan
	m := plan.NumAggs()
	ops := plan.AggOps()
	n := len(data) / tsz

	seed := make([]float64, m)
	for a, op := range ops {
		switch op {
		case exec.OpMin:
			seed[a] = math.Inf(1)
		case exec.OpMax:
			seed[a] = math.Inf(-1)
		}
	}

	tables := make([]*atomicTable, len(frags))
	for i, f := range frags {
		capHint := (f.End - f.Start) / 4
		if capHint < 16 {
			capHint = 16
		}
		if capHint > 4096 {
			capHint = 4096
		}
		tables[i] = newAtomicTable(plan.KeyLen(), m, capHint)
	}

	// Fold every tuple into the tables of all fragments containing it.
	// Workgroups cover tuple ranges; fragments are sorted, so each group
	// scans forward from the first fragment that overlaps its range.
	p.d.launch(n, func(lo, hi int) {
		keyBuf := make([]byte, 0, plan.KeyLen())
		vals := make([]float64, m)
		first := sort.Search(len(frags), func(i int) bool { return frags[i].End > lo })
		for fi := first; fi < len(frags) && frags[fi].Start < hi; fi++ {
			f := frags[fi]
			t := tables[fi]
			start, end := f.Start, f.End
			if start < lo {
				start = lo
			}
			if end > hi {
				end = hi
			}
			for i := start; i < end; i++ {
				tuple := data[i*tsz : (i+1)*tsz]
				if !plan.EvalFilter(tuple) {
					continue
				}
				keyBuf = plan.GroupKey(keyBuf, tuple)
				for a := range vals {
					vals[a] = plan.AggArg(a, tuple)
				}
				ts := plan.TimestampOf(0, data, i)
				if slot := t.upsert(keyBuf, seed); slot >= 0 {
					t.fold(slot, vals, ops, ts)
				} else {
					t.foldSpill(keyBuf, vals, ops, ts, seed)
				}
			}
		}
	})

	// Compact the atomic tables into CPU-compatible tables (the paper
	// compacts sparsely populated tables after processing).
	p.d.launch(len(frags), func(lo, hi int) {
		for fi := lo; fi < hi; fi++ {
			table := plan.NewTable()
			tables[fi].drainInto(table, plan.SeedSlot, ops)
			parts[fi].Table = table
		}
	})
}

// joinKernel implements the windowed θ-join: window pairs are formed
// host-side (window computation stays on the CPU, §5.4), then each
// window's cross join runs as an independent work item
// (count-and-compact per window).
func (p *Program) joinKernel(j *job) {
	plan := p.plan
	sa, sb := plan.InputSchema(0), plan.InputSchema(1)
	devIn := [2]exec.Batch{
		{Data: j.slot.devIn[0], Ctx: j.in[0].Ctx},
		{Data: j.slot.devIn[1], Ctx: j.in[1].Ctx},
	}
	j.tuples = len(devIn[0].Data)/sa.TupleSize() + len(devIn[1].Data)/sb.TupleSize()

	pairs := plan.JoinPairs(devIn)
	if len(pairs) == 0 {
		return
	}
	parts := make([]exec.WindowPartial, len(pairs))
	p.d.launch(len(pairs), func(lo, hi int) {
		for pi := lo; pi < hi; pi++ {
			parts[pi] = plan.JoinPartial(pairs[pi], devIn)
		}
	})

	j.res.Partials = append(j.res.Partials, parts...)
	j.outBytes = partialBytes(plan, parts)
}

// partialBytes estimates the byte volume of structured fragment results
// for transfer-time accounting.
func partialBytes(plan *exec.Plan, parts []exec.WindowPartial) int {
	total := 0
	for i := range parts {
		pt := &parts[i]
		total += 24 // window id + flags + count
		total += 8 * len(pt.Vals)
		if pt.Table != nil {
			total += pt.Table.Len() * (plan.KeyLen() + 8*plan.NumAggs() + 16)
		}
		total += len(pt.Data) + len(pt.AData) + len(pt.BData)
	}
	return total
}
