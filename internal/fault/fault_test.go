package fault

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Decide(GPUKernel) {
		t.Error("nil injector decided to inject")
	}
	if d := in.Stall(GPUHang); d != 0 {
		t.Errorf("nil injector stalled %v", d)
	}
	if in.TotalInjections() != 0 || in.Injections(PlanExec) != 0 || in.Decisions(PlanExec) != 0 {
		t.Error("nil injector has counters")
	}
	if in.Snapshot() != nil {
		t.Error("nil injector has a snapshot")
	}
}

func TestUnarmedSiteNeverInjects(t *testing.T) {
	in := New(42)
	for i := 0; i < 1000; i++ {
		if in.Decide(GPUKernel) {
			t.Fatal("unarmed site injected")
		}
	}
	if in.Decisions(GPUKernel) != 0 {
		t.Error("unarmed site counted decisions")
	}
}

func TestDecideIsDeterministicInSeed(t *testing.T) {
	run := func(seed int64) []bool {
		in := New(seed)
		in.Arm(PlanExec, Spec{Rate: 0.3})
		out := make([]bool, 2000)
		for i := range out {
			out[i] = in.Decide(PlanExec)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical seeds", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical decision sequences")
	}
}

func TestRateRoughlyHolds(t *testing.T) {
	in := New(3)
	in.Arm(GPUCopyIn, Spec{Rate: 0.25})
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if in.Decide(GPUCopyIn) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("rate 0.25 produced %g", frac)
	}
	if got := in.Injections(GPUCopyIn); got != int64(hits) {
		t.Errorf("Injections = %d, want %d", got, hits)
	}
	if got := in.Decisions(GPUCopyIn); got != int64(n) {
		t.Errorf("Decisions = %d, want %d", got, n)
	}
}

func TestAfterAndLimit(t *testing.T) {
	in := New(5)
	in.Arm(GPUKernel, Spec{Rate: 1, After: 10, Limit: 3})
	var hits []int
	for i := 0; i < 100; i++ {
		if in.Decide(GPUKernel) {
			hits = append(hits, i)
		}
	}
	if len(hits) != 3 {
		t.Fatalf("limit 3 produced %d injections", len(hits))
	}
	for _, i := range hits {
		if i < 10 {
			t.Errorf("injection at decision %d before After=10", i)
		}
	}
	if in.TotalInjections() != 3 {
		t.Errorf("TotalInjections = %d", in.TotalInjections())
	}
}

func TestLimitUnderConcurrency(t *testing.T) {
	in := New(11)
	in.Arm(PlanExec, Spec{Rate: 1, Limit: 50})
	var hits int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < 1000; i++ {
				if in.Decide(PlanExec) {
					local++
				}
			}
			mu.Lock()
			hits += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if hits != 50 {
		t.Errorf("concurrent limit 50 produced %d injections", hits)
	}
}

func TestStallReturnsDelay(t *testing.T) {
	in := New(9)
	in.Arm(GPUHang, Spec{Rate: 1, Delay: 5 * time.Millisecond})
	if d := in.Stall(GPUHang); d != 5*time.Millisecond {
		t.Errorf("Stall = %v", d)
	}
	in.Arm(IngestStall, Spec{Rate: 0, Delay: time.Millisecond})
	if d := in.Stall(IngestStall); d != 0 {
		t.Errorf("rate-0 Stall = %v", d)
	}
}

func TestErrorTagging(t *testing.T) {
	err := Errorf(GPUKernel, "boom %d", 7)
	if !Injected(err) {
		t.Error("Errorf result not recognised as injected")
	}
	if !Injected(fmt.Errorf("wrapped: %w", err)) {
		t.Error("wrapped fault not recognised")
	}
	if Injected(errors.New("organic")) {
		t.Error("organic error recognised as injected")
	}
	if got := err.Error(); got != "fault[gpu.kernel]: boom 7" {
		t.Errorf("Error() = %q", got)
	}
}

func TestDisarmStopsInjection(t *testing.T) {
	in := New(13)
	in.Arm(IngestDrop, Spec{Rate: 1})
	if !in.Decide(IngestDrop) {
		t.Fatal("armed rate-1 site did not inject")
	}
	in.Disarm(IngestDrop)
	if in.Decide(IngestDrop) {
		t.Error("disarmed site injected")
	}
}
