// Package fault is SABER's seeded, deterministic fault-injection
// facility. Subsystems that can fail in production — the GPGPU pipeline,
// plan execution on the CPU workers, ingest connections — consult an
// Injector at their failure points (Site constants); the injector decides
// per call, from a hash of (seed, site, per-site decision index), whether
// to inject a fault there. Decisions are independent of wall clock and of
// goroutine interleaving in aggregate: the k-th decision at a site always
// resolves the same way for a given seed, so a chaos run's fault volume
// and placement reproduce under the run's seed.
//
// All Injector methods are safe on a nil receiver (no fault is ever
// injected), so production call sites need no nil guards, and safe for
// concurrent use.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one injection point.
type Site string

// The engine's injection sites.
const (
	// GPUCopyIn fails a GPGPU task in the copy-in/DMA stage before any
	// bytes reach the device.
	GPUCopyIn Site = "gpu.copyin"
	// GPUKernel fails a GPGPU task in the execute stage (kernel fault).
	GPUKernel Site = "gpu.kernel"
	// GPUHang stalls the GPGPU execute stage for the armed Delay; the
	// task eventually completes, typically long after the engine's GPU
	// task timeout has failed it over to the CPU.
	GPUHang Site = "gpu.hang"
	// PlanExec fails a plan execution on a CPU worker.
	PlanExec Site = "plan.exec"
	// IngestDrop breaks an ingest client connection mid-frame: the
	// header and a truncated payload are written, then the connection is
	// closed, so the server discards the partial frame and the client
	// must resend on a fresh connection.
	IngestDrop Site = "ingest.drop"
	// IngestStall stalls an ingest client mid-frame for the armed Delay
	// (long enough to trip the server's read deadline), then abandons
	// the connection and reports the frame failed.
	IngestStall Site = "ingest.stall"
)

// Spec arms one site.
type Spec struct {
	// Rate is the injection probability per decision, in [0, 1].
	Rate float64
	// After skips the first After decisions at the site (lets a run warm
	// up before chaos starts).
	After int64
	// Limit caps the total number of injections at the site; 0 means
	// unlimited.
	Limit int64
	// Delay is the stall duration for hang/stall sites (GPUHang,
	// IngestStall); ignored elsewhere.
	Delay time.Duration
}

// Error tags an injected fault so recovery paths can distinguish chaos
// from organic failures in logs and telemetry.
type Error struct {
	Site Site
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("fault[%s]: %s", e.Site, e.Msg) }

// Errorf builds a tagged injected-fault error.
func Errorf(site Site, format string, args ...any) error {
	return &Error{Site: site, Msg: fmt.Sprintf(format, args...)}
}

// Injected reports whether err is (or wraps) an injected fault.
func Injected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// arm is one armed site's spec and counters.
type arm struct {
	spec      Spec
	decisions atomic.Int64
	injected  atomic.Int64
}

// Injector decides, deterministically from its seed, whether each
// consultation of an armed site injects a fault.
type Injector struct {
	seed int64
	mu   sync.RWMutex
	arms map[Site]*arm
}

// New creates an injector with no sites armed.
func New(seed int64) *Injector {
	return &Injector{seed: seed, arms: make(map[Site]*arm)}
}

// Seed returns the injector's seed.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Arm arms (or re-arms) a site. Re-arming resets the site's counters.
func (in *Injector) Arm(site Site, spec Spec) {
	in.mu.Lock()
	in.arms[site] = &arm{spec: spec}
	in.mu.Unlock()
}

// Disarm removes a site; subsequent decisions there never inject.
func (in *Injector) Disarm(site Site) {
	in.mu.Lock()
	delete(in.arms, site)
	in.mu.Unlock()
}

func (in *Injector) arm(site Site) *arm {
	if in == nil {
		return nil
	}
	in.mu.RLock()
	a := in.arms[site]
	in.mu.RUnlock()
	return a
}

// Decide reports whether the caller should inject a fault at site now.
// The k-th decision at a site resolves identically for a given seed.
func (in *Injector) Decide(site Site) bool {
	a := in.arm(site)
	if a == nil || a.spec.Rate <= 0 {
		return false
	}
	n := a.decisions.Add(1) - 1
	if n < a.spec.After {
		return false
	}
	h := mix(uint64(in.seed) ^ siteHash(site) ^ uint64(n)*0x9e3779b97f4a7c15)
	if float64(h>>11)/(1<<53) >= a.spec.Rate {
		return false
	}
	// Claim one injection under the limit (CAS loop: concurrent deciders
	// must not overshoot).
	for {
		c := a.injected.Load()
		if a.spec.Limit > 0 && c >= a.spec.Limit {
			return false
		}
		if a.injected.CompareAndSwap(c, c+1) {
			return true
		}
	}
}

// Stall returns the armed Delay when a decision at site fires, else 0.
func (in *Injector) Stall(site Site) time.Duration {
	a := in.arm(site)
	if a == nil || a.spec.Delay <= 0 {
		return 0
	}
	if !in.Decide(site) {
		return 0
	}
	return a.spec.Delay
}

// Injections returns the number of faults injected at site so far.
func (in *Injector) Injections(site Site) int64 {
	a := in.arm(site)
	if a == nil {
		return 0
	}
	return a.injected.Load()
}

// Decisions returns the number of decisions taken at site so far.
func (in *Injector) Decisions(site Site) int64 {
	a := in.arm(site)
	if a == nil {
		return 0
	}
	return a.decisions.Load()
}

// TotalInjections sums injections across all armed sites.
func (in *Injector) TotalInjections() int64 {
	if in == nil {
		return 0
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	var total int64
	for _, a := range in.arms {
		total += a.injected.Load()
	}
	return total
}

// Snapshot returns the per-site injection counts (telemetry).
func (in *Injector) Snapshot() map[Site]int64 {
	if in == nil {
		return nil
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	out := make(map[Site]int64, len(in.arms))
	for s, a := range in.arms {
		out[s] = a.injected.Load()
	}
	return out
}

// siteHash is FNV-1a over the site name.
func siteHash(site Site) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return h
}

// mix is the splitmix64 finaliser.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
