package overload

import (
	"testing"
	"time"
)

func TestWatchdogTripsOncePerEpisode(t *testing.T) {
	w := NewWatchdog(time.Second)
	now := time.Unix(0, 0)

	// Priming observation never trips.
	if _, ok := w.Observe(now, Progress{PendingBytes: 100, Drained: 0}); ok {
		t.Fatal("tripped on first observation")
	}
	// No progress, but timeout not reached.
	now = now.Add(500 * time.Millisecond)
	if _, ok := w.Observe(now, Progress{PendingBytes: 100, Drained: 0}); ok {
		t.Fatal("tripped before timeout")
	}
	// Timeout reached with pending input and a frozen frontier: trip.
	now = now.Add(600 * time.Millisecond)
	rep, ok := w.Observe(now, Progress{PendingBytes: 100, Drained: 0, QueueLen: 3})
	if !ok {
		t.Fatal("did not trip after timeout")
	}
	if rep.Stalled < time.Second || rep.Last.QueueLen != 3 {
		t.Fatalf("bad report: %+v", rep)
	}
	// Still wedged: no re-trip within the same episode.
	now = now.Add(5 * time.Second)
	if _, ok := w.Observe(now, Progress{PendingBytes: 100, Drained: 0}); ok {
		t.Fatal("re-tripped without progress")
	}
	// Progress re-arms; a fresh stall trips again.
	now = now.Add(time.Second)
	if _, ok := w.Observe(now, Progress{PendingBytes: 100, Drained: 1}); ok {
		t.Fatal("tripped on progress")
	}
	now = now.Add(2 * time.Second)
	if _, ok := w.Observe(now, Progress{PendingBytes: 100, Drained: 1}); !ok {
		t.Fatal("did not trip on second episode")
	}
}

func TestWatchdogIdlePipelineNeverTrips(t *testing.T) {
	w := NewWatchdog(time.Second)
	now := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		// Nothing pending: a quiet engine is not a stalled engine.
		if _, ok := w.Observe(now, Progress{PendingBytes: 0, Drained: 7}); ok {
			t.Fatal("tripped while idle")
		}
		now = now.Add(time.Second)
	}
}
