// Package overload implements the engine's overload-protection layer:
// admission-control budgets for the per-query input queues, tiered load
// shedding policies that degrade gracefully instead of stalling, and a
// stall watchdog that detects a wedged pipeline.
//
// The policy ladder is deliberate (DESIGN.md §13): a loaded engine first
// shrinks ϕ (internal/adapt), then exerts backpressure against the
// budget, and only as a last rung sheds tuples — oldest-window-first to
// bound staleness, or probabilistically weighted per source. Every shed
// tuple is accounted for exactly, so the harness conservation invariant
// `offered == out + shed` holds at quiesce.
package overload

import (
	"fmt"
	"math/rand"
	"time"
)

// Policy selects what the engine does when a query's input queue exceeds
// its budget and the bounded admission wait expires.
type Policy int

const (
	// ShedNone never drops data: admission blocks (quiesce-aware
	// backpressure) until the queue drains below budget.
	ShedNone Policy = iota
	// ShedOldest sheds the oldest undispatched window range first: the
	// stalest buffered tuples are cut as an accounted gap task, freeing
	// budget for fresh data. Bounds result staleness under overload.
	ShedOldest
	// ShedWeighted sheds incoming chunks probabilistically, with a
	// per-source weight scaling the drop probability, so hot sources
	// absorb more of the loss than light ones.
	ShedWeighted
)

// String returns the policy's flag spelling.
func (p Policy) String() string {
	switch p {
	case ShedNone:
		return "none"
	case ShedOldest:
		return "oldest"
	case ShedWeighted:
		return "weighted"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses a -shed-policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "none":
		return ShedNone, nil
	case "oldest":
		return ShedOldest, nil
	case "weighted":
		return ShedWeighted, nil
	}
	return ShedNone, fmt.Errorf("overload: unknown shed policy %q (none|oldest|weighted)", s)
}

// Config tunes the overload layer. The zero value disables budgets and
// shedding but still arms the quiesce-aware bounded admission wait and
// the stall watchdog.
type Config struct {
	// MaxQueueBytes is the per-query, per-input buffered-bytes budget
	// admission enforces. 0 means the ring capacity is the only bound.
	// The effective budget is floored so at least one task can always be
	// cut (see EffectiveBudget) — a budget below 2ϕ would deadlock the
	// dispatcher, not protect it.
	MaxQueueBytes int64
	// Policy is the shedding rung. ShedNone (default) blocks instead.
	Policy Policy
	// MaxWait bounds how long a blocking Insert waits on budget or ring
	// space before the shedding policy actuates. Default 2ms.
	MaxWait time.Duration
	// DropProb is ShedWeighted's base per-chunk drop probability once the
	// bounded wait expires. Default 0.5.
	DropProb float64
	// Weights scales DropProb per input side (join queries); 0 means 1.0.
	// A heavier source sheds proportionally more.
	Weights [2]float64
	// Seed makes ShedWeighted's coin flips reproducible. 0 derives a
	// fixed default so chaos runs stay deterministic.
	Seed int64
	// StallTimeout is how long the watchdog tolerates buffered input with
	// no drain progress before declaring the pipeline wedged. Default 5s.
	StallTimeout time.Duration
	// StallInterval is the watchdog probe period. Default StallTimeout/8.
	StallInterval time.Duration
}

// WithDefaults fills the zero fields.
func (c Config) WithDefaults() Config {
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.DropProb <= 0 || c.DropProb > 1 {
		c.DropProb = 0.5
	}
	for i := range c.Weights {
		if c.Weights[i] <= 0 {
			c.Weights[i] = 1
		}
	}
	if c.Seed == 0 {
		c.Seed = 0x5abe2
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 5 * time.Second
	}
	if c.StallInterval <= 0 {
		c.StallInterval = c.StallTimeout / 8
	}
	return c
}

// EffectiveBudget clamps a configured queue budget so admission can
// always make progress: at least two live task sizes (the dispatcher
// needs a full ϕ pending to cut, plus headroom for the cut in flight)
// and at least the chunk being admitted. max <= 0 disables the budget.
func EffectiveBudget(max, phi, need int64) int64 {
	if max <= 0 {
		return 0
	}
	b := max
	if m := 2 * phi; b < m {
		b = m
	}
	if b < need {
		b = need
	}
	return b
}

// Shedder makes ShedWeighted's seeded drop decisions. It is not
// goroutine-safe; the engine calls it under the query's ingest lock,
// which also makes the decision sequence deterministic for a seed.
type Shedder struct {
	cfg Config
	rnd *rand.Rand
}

// NewShedder creates a Shedder for a defaulted Config.
func NewShedder(cfg Config) *Shedder {
	return &Shedder{cfg: cfg, rnd: rand.New(rand.NewSource(cfg.Seed))}
}

// DropChunk flips the weighted coin for one incoming chunk on the given
// input side.
func (s *Shedder) DropChunk(side int) bool {
	p := s.cfg.DropProb * s.cfg.Weights[side&1]
	if p >= 1 {
		return true
	}
	return s.rnd.Float64() < p
}
