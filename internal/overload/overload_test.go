package overload

import (
	"testing"
	"time"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		err  bool
	}{
		{"", ShedNone, false},
		{"none", ShedNone, false},
		{"oldest", ShedOldest, false},
		{"weighted", ShedWeighted, false},
		{"Oldest", ShedNone, true},
		{"drop", ShedNone, true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
	// Round trip: every policy's String parses back to itself.
	for _, p := range []Policy{ShedNone, ShedOldest, ShedWeighted} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%v.String()) = %v, %v", p, got, err)
		}
	}
}

func TestEffectiveBudget(t *testing.T) {
	// Disabled budget stays disabled.
	if got := EffectiveBudget(0, 1<<20, 4096); got != 0 {
		t.Fatalf("EffectiveBudget(0,...) = %d, want 0", got)
	}
	// A generous budget passes through unchanged.
	if got := EffectiveBudget(64<<20, 1<<20, 4096); got != 64<<20 {
		t.Fatalf("generous budget clamped: %d", got)
	}
	// A budget below 2ϕ is floored at 2ϕ — the dispatcher needs a full ϕ
	// pending before it can cut a task, so a smaller cap would wedge.
	if got := EffectiveBudget(1024, 1<<20, 4096); got != 2<<20 {
		t.Fatalf("tiny budget not floored at 2phi: %d", got)
	}
	// The chunk being admitted always fits the budget.
	if got := EffectiveBudget(1024, 512, 1<<20); got != 1<<20 {
		t.Fatalf("budget below chunk: %d", got)
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.MaxWait <= 0 || c.DropProb <= 0 || c.DropProb > 1 {
		t.Fatalf("bad defaults: %+v", c)
	}
	if c.Weights[0] != 1 || c.Weights[1] != 1 {
		t.Fatalf("weights not defaulted: %+v", c.Weights)
	}
	if c.StallTimeout <= 0 || c.StallInterval <= 0 || c.StallInterval >= c.StallTimeout {
		t.Fatalf("bad watchdog defaults: %+v", c)
	}
	if c.Seed == 0 {
		t.Fatal("seed not defaulted")
	}
	// Explicit values survive.
	c2 := Config{MaxWait: time.Second, DropProb: 0.25, Weights: [2]float64{2, 0.5}, Seed: 7}.WithDefaults()
	if c2.MaxWait != time.Second || c2.DropProb != 0.25 || c2.Weights != [2]float64{2, 0.5} || c2.Seed != 7 {
		t.Fatalf("explicit config clobbered: %+v", c2)
	}
}

func TestShedderDeterministicAndWeighted(t *testing.T) {
	cfg := Config{Policy: ShedWeighted, DropProb: 0.5, Weights: [2]float64{1, 0.1}, Seed: 42}.WithDefaults()
	a, b := NewShedder(cfg), NewShedder(cfg)
	const n = 4096
	drops := [2]int{}
	for i := 0; i < n; i++ {
		side := i & 1
		da, db := a.DropChunk(side), b.DropChunk(side)
		if da != db {
			t.Fatalf("same seed diverged at flip %d", i)
		}
		if da {
			drops[side]++
		}
	}
	// Side 0 drops at ~0.5, side 1 at ~0.05: the weighted source must
	// shed markedly more. Wide margins keep this seed-stable.
	if drops[0] < n/2*3/10 {
		t.Fatalf("heavy side dropped too little: %d/%d", drops[0], n/2)
	}
	if drops[1] > n/2*2/10 {
		t.Fatalf("light side dropped too much: %d/%d", drops[1], n/2)
	}
	if drops[1] >= drops[0] {
		t.Fatalf("weighting inverted: %v", drops)
	}
}

func TestShedderSaturatedProbability(t *testing.T) {
	cfg := Config{DropProb: 0.9, Weights: [2]float64{4, 1}}.WithDefaults()
	s := NewShedder(cfg)
	for i := 0; i < 64; i++ {
		if !s.DropChunk(0) {
			t.Fatal("p>=1 must always drop")
		}
	}
}
