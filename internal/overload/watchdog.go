package overload

import "time"

// Progress is one watchdog observation of the pipeline: how much input
// is buffered and how far the result stage has drained. The drain
// counter is the engine's liveness signal — as long as it moves, queues
// may be deep but the pipeline is not wedged.
type Progress struct {
	// PendingBytes is the total bytes buffered across all input rings.
	PendingBytes int64
	// Drained is the total drained-task count across all queries
	// (monotone).
	Drained int64
	// QueueLen is the task-queue depth (diagnostic only).
	QueueLen int64
}

// StallReport describes a detected stall.
type StallReport struct {
	// Stalled is how long the drain frontier has not advanced while
	// input was pending.
	Stalled time.Duration
	// Last is the observation that tripped the watchdog.
	Last Progress
}

// Watchdog is a pure stall detector: the caller feeds it periodic
// Progress observations with a clock, and it trips once per stall
// episode when input is pending but the drain frontier has not advanced
// for the configured timeout. Pure so it is testable with a fake clock;
// the engine supplies real time and the probe.
type Watchdog struct {
	timeout time.Duration

	primed      bool
	lastDrained int64
	lastMove    time.Time
	tripped     bool
}

// NewWatchdog creates a watchdog with the given stall timeout.
func NewWatchdog(timeout time.Duration) *Watchdog {
	return &Watchdog{timeout: timeout}
}

// Observe feeds one observation. It returns a report and true exactly
// once per stall episode; any drain progress (or an empty pipeline)
// re-arms it.
func (w *Watchdog) Observe(now time.Time, p Progress) (StallReport, bool) {
	if !w.primed || p.Drained != w.lastDrained || p.PendingBytes == 0 {
		w.primed = true
		w.lastDrained = p.Drained
		w.lastMove = now
		w.tripped = false
		return StallReport{}, false
	}
	if w.tripped {
		return StallReport{}, false
	}
	if stalled := now.Sub(w.lastMove); stalled >= w.timeout {
		w.tripped = true
		return StallReport{Stalled: stalled, Last: p}, true
	}
	return StallReport{}, false
}
