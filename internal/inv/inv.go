// Package inv defines the invariant-checker contract shared by SABER's
// concurrency-bearing subsystems (ringbuf, engine, sched, gpu) and the
// stress harness in internal/harness.
//
// A subsystem exposes machine-verifiable invariants by implementing
// Checker on one of its types — no import of this package is required,
// the interface is satisfied structurally — and the harness polls every
// registered checker while the system runs under adversarial load.
// CheckInvariants implementations must be safe to call concurrently with
// normal operation and must only report violations that are stable under
// races (e.g. compare monotonic counters in a race-safe load order).
package inv

import (
	"errors"
	"fmt"
	"sync"
)

// Checker is one subsystem's invariant hook.
type Checker interface {
	// InvariantName identifies the checker in violation reports, e.g.
	// "ringbuf[q0/in0]" or "engine.result[q0]".
	InvariantName() string
	// CheckInvariants returns nil when every invariant holds right now,
	// or an error describing the violated invariant. It may be called at
	// any time from any goroutine while the subsystem is running.
	CheckInvariants() error
}

// CheckFunc adapts a name and a function to the Checker interface, for
// ad-hoc invariants that do not belong to a single struct.
type CheckFunc struct {
	Name string
	Fn   func() error
}

// InvariantName implements Checker.
func (c CheckFunc) InvariantName() string { return c.Name }

// CheckInvariants implements Checker.
func (c CheckFunc) CheckInvariants() error { return c.Fn() }

// Registry is a concurrency-safe collection of checkers. Future
// subsystems register their invariants here; the harness sweeps the
// registry from its polling goroutine.
type Registry struct {
	mu       sync.Mutex
	checkers []Checker
}

// Register adds checkers to the registry.
func (r *Registry) Register(cs ...Checker) {
	r.mu.Lock()
	r.checkers = append(r.checkers, cs...)
	r.mu.Unlock()
}

// Checkers returns a snapshot of the registered checkers.
func (r *Registry) Checkers() []Checker {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Checker, len(r.checkers))
	copy(out, r.checkers)
	return out
}

// CheckAll runs every registered checker once and returns the joined
// violations, each prefixed with the checker's name, or nil.
func (r *Registry) CheckAll() error {
	var errs []error
	for _, c := range r.Checkers() {
		if err := c.CheckInvariants(); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", c.InvariantName(), err))
		}
	}
	return errors.Join(errs...)
}
