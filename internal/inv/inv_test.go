package inv

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCheckAll(t *testing.T) {
	var r Registry
	if err := r.CheckAll(); err != nil {
		t.Fatalf("empty registry: %v", err)
	}
	r.Register(
		CheckFunc{Name: "ok", Fn: func() error { return nil }},
		CheckFunc{Name: "broken", Fn: func() error { return errors.New("boom") }},
	)
	err := r.CheckAll()
	if err == nil {
		t.Fatal("violation not reported")
	}
	if !strings.Contains(err.Error(), "broken: boom") {
		t.Fatalf("violation not attributed to its checker: %v", err)
	}
	if len(r.Checkers()) != 2 {
		t.Fatalf("checkers = %d", len(r.Checkers()))
	}
}

func TestRegistryConcurrentRegister(t *testing.T) {
	var r Registry
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Register(CheckFunc{Name: "c", Fn: func() error { return nil }})
				_ = r.CheckAll()
			}
		}()
	}
	wg.Wait()
	if got := len(r.Checkers()); got != 800 {
		t.Fatalf("checkers = %d, want 800", got)
	}
}
