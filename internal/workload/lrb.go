package workload

import (
	"math/rand"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/window"
)

// LRBSchema is the Linear Road position-report stream (paper Appendix
// A.3, PosSpeedStr).
var LRBSchema = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "vehicle", Type: schema.Int32},
	schema.Field{Name: "speed", Type: schema.Float32},
	schema.Field{Name: "highway", Type: schema.Int32},
	schema.Field{Name: "lane", Type: schema.Int32},
	schema.Field{Name: "direction", Type: schema.Int32},
	schema.Field{Name: "position", Type: schema.Int32},
)

// LRBSegSchema is LRB1's output (SegSpeedStr): position replaced by the
// derived segment.
var LRBSegSchema = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "vehicle", Type: schema.Int32},
	schema.Field{Name: "speed", Type: schema.Float32},
	schema.Field{Name: "highway", Type: schema.Int32},
	schema.Field{Name: "lane", Type: schema.Int32},
	schema.Field{Name: "direction", Type: schema.Int32},
	schema.Field{Name: "segment", Type: schema.Int64},
)

// lrbVehicle is one simulated car.
type lrbVehicle struct {
	id        int32
	highway   int32
	lane      int32
	direction int32
	position  float64
	speed     float64
}

// LRBGen simulates the benchmark's toll-road network: vehicles emit
// position reports as they drive, slow down in congested segments, and
// change lanes. It exercises the same query-visible distributions as the
// benchmark data (per-vehicle report streams, congestion patches).
type LRBGen struct {
	rnd      *rand.Rand
	ts       int64
	vehicles []lrbVehicle
	next     int
	inUnit   int
	// ReportsPerTimeUnit sets timestamp density.
	ReportsPerTimeUnit int
}

// NewLRBGen creates a simulator with the given fleet size.
func NewLRBGen(seed int64, vehicles int) *LRBGen {
	g := &LRBGen{rnd: rand.New(rand.NewSource(seed)), ReportsPerTimeUnit: 64}
	for i := 0; i < vehicles; i++ {
		g.vehicles = append(g.vehicles, lrbVehicle{
			id:        int32(i),
			highway:   g.rnd.Int31n(4),
			lane:      g.rnd.Int31n(4),
			direction: g.rnd.Int31n(2),
			position:  g.rnd.Float64() * 528000, // 100 segments of 5280 ft
			speed:     40 + g.rnd.Float64()*40,
		})
	}
	return g
}

// Next appends n position reports to dst.
func (g *LRBGen) Next(dst []byte, n int) []byte {
	b := schema.NewTupleBuilder(LRBSchema, n)
	for i := 0; i < n; i++ {
		v := &g.vehicles[g.next]
		g.next = (g.next + 1) % len(g.vehicles)

		// Congestion: segments 20–25 are slow.
		seg := int(v.position / 5280)
		target := 40 + g.rnd.Float64()*40
		if seg >= 20 && seg <= 25 {
			target = 10 + g.rnd.Float64()*20
		}
		v.speed += (target - v.speed) * 0.3
		v.position += v.speed * 1.4667 // ft per time step at mph
		if v.position >= 528000 {
			v.position -= 528000
		}
		if g.rnd.Intn(16) == 0 {
			v.lane = g.rnd.Int31n(4)
		}

		b.Begin().
			Timestamp(g.ts).
			Int32("vehicle", v.id).
			Float32("speed", float32(v.speed)).
			Int32("highway", v.highway).
			Int32("lane", v.lane).
			Int32("direction", v.direction).
			Int32("position", int32(v.position))
		g.inUnit++
		if g.inUnit >= g.ReportsPerTimeUnit {
			g.inUnit = 0
			g.ts++
		}
	}
	return append(dst, b.Bytes()...)
}

// LRB1 is Appendix A.3 Query 1: derive the segment from the position
// (unbounded projection).
func LRB1() *query.Query {
	return query.NewBuilder("LRB1").
		From("PosSpeedStr", LRBSchema, window.NewUnbounded()).
		Select("timestamp", "vehicle", "speed", "highway", "lane", "direction").
		SelectAs(expr.Arith{Op: expr.Div, Left: expr.Col("position"), Right: expr.IntConst(5280)}, "segment").
		MustBuild()
}

// LRB2 is Appendix A.3 Query 2, the distinct vehicle-segment-entry
// stream. The paper realises it as a partition-window self-join; this
// reproduction uses the equivalent DISTINCT projection over the sliding
// window (the engine's partitioned row windows are future work, see
// DESIGN.md).
func LRB2() *query.Query {
	return query.NewBuilder("LRB2").
		From("SegSpeedStr", LRBSegSchema, window.NewCount(30*64, 64)).
		Select("timestamp", "vehicle", "highway", "lane", "direction", "segment").
		Distinct().
		MustBuild()
}

// LRB3 is Appendix A.3 Query 3: congested segments (average speed below
// 40) over a 300-unit sliding window. Runs over LRB1's output.
func LRB3() *query.Query {
	return query.NewBuilder("LRB3").
		From("SegSpeedStr", LRBSegSchema, window.NewTime(300, 1)).
		Aggregate(query.Avg, expr.Col("speed"), "avgSpeed").
		GroupBy("highway", "direction", "segment").
		Having(expr.Cmp{Op: expr.Lt, Left: expr.Col("avgSpeed"), Right: expr.FloatConst(40)}).
		MustBuild()
}

// LRB4 is Appendix A.3 Query 4's outer aggregation: vehicles per
// segment. The paper's inner per-vehicle grouping is subsumed by
// counting vehicles directly per segment over the same window; see
// EXPERIMENTS.md for the substitution note.
func LRB4() *query.Query {
	return query.NewBuilder("LRB4").
		From("SegSpeedStr", LRBSegSchema, window.NewTime(30, 1)).
		CountAll("numVehicles").
		GroupBy("highway", "direction", "segment").
		MustBuild()
}
