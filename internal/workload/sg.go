package workload

import (
	"math"
	"math/rand"

	"saber/internal/cql"
	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/window"
)

// SGSchema is the DEBS'14 smart-meter reading (paper Appendix A.2), with
// a padding attribute as in the paper's 32-byte layout.
var SGSchema = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "value", Type: schema.Float32},
	schema.Field{Name: "property", Type: schema.Int32},
	schema.Field{Name: "plug", Type: schema.Int32},
	schema.Field{Name: "household", Type: schema.Int32},
	schema.Field{Name: "house", Type: schema.Int32},
	schema.Field{Name: "padding", Type: schema.Int32},
)

// SGGen synthesises smart-meter load readings: each (house, household,
// plug) has a base load plus diurnal-ish oscillation and noise, so local
// averages genuinely differ from the global average and SG3 finds
// outliers.
type SGGen struct {
	rnd    *rand.Rand
	ts     int64
	Houses int32
	// PlugsPerHousehold and HouseholdsPerHouse shape the hierarchy.
	PlugsPerHousehold, HouseholdsPerHouse int32
	ReadingsPerTimeUnit                   int
	inUnit                                int
}

// NewSGGen creates the generator.
func NewSGGen(seed int64) *SGGen {
	return &SGGen{
		rnd:                 rand.New(rand.NewSource(seed)),
		Houses:              40,
		PlugsPerHousehold:   4,
		HouseholdsPerHouse:  4,
		ReadingsPerTimeUnit: 64,
	}
}

// Next appends n readings to dst.
func (g *SGGen) Next(dst []byte, n int) []byte {
	b := schema.NewTupleBuilder(SGSchema, n)
	for i := 0; i < n; i++ {
		house := g.rnd.Int31n(g.Houses)
		household := g.rnd.Int31n(g.HouseholdsPerHouse)
		plug := g.rnd.Int31n(g.PlugsPerHousehold)
		base := float64(house%7) * 10
		phase := float64(g.ts%3600) / 3600 * 2 * math.Pi
		load := base + 30 + 20*math.Sin(phase+float64(plug)) + g.rnd.Float64()*5
		b.Begin().
			Timestamp(g.ts).
			Float32("value", float32(load)).
			Int32("property", 1). // load measurement
			Int32("plug", plug).
			Int32("household", household).
			Int32("house", house).
			Int32("padding", 0)
		g.inUnit++
		if g.inUnit >= g.ReadingsPerTimeUnit {
			g.inUnit = 0
			g.ts++
		}
	}
	return append(dst, b.Bytes()...)
}

// SGCatalog registers the smart-grid streams for CQL parsing.
func SGCatalog() cql.Catalog {
	return cql.Catalog{
		"SmartGridStr":  SGSchema,
		"GlobalLoadStr": SGGlobalSchema,
		"LocalLoadStr":  SGLocalSchema,
	}
}

// SGGlobalSchema is SG1's output (GlobalLoadStr).
var SGGlobalSchema = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "globalAvgLoad", Type: schema.Float32},
)

// SGLocalSchema is SG2's output (LocalLoadStr).
var SGLocalSchema = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "plug", Type: schema.Int32},
	schema.Field{Name: "household", Type: schema.Int32},
	schema.Field{Name: "house", Type: schema.Int32},
	schema.Field{Name: "localAvgLoad", Type: schema.Float32},
)

// SG1 is Appendix A.2 Query 1: the sliding global load average.
// windowScale shrinks the paper's 3600-unit window for quick runs
// (1 reproduces the paper).
func SG1(windowScale int64) *query.Query {
	return query.NewBuilder("SG1").
		From("SmartGridStr", SGSchema, window.NewTime(max64(3600/windowScale, 2), 1)).
		Aggregate(query.Avg, expr.Col("value"), "globalAvgLoad").
		MustBuild()
}

// SG2 is Appendix A.2 Query 2: sliding load average per plug.
func SG2(windowScale int64) *query.Query {
	return query.NewBuilder("SG2").
		From("SmartGridStr", SGSchema, window.NewTime(max64(3600/windowScale, 2), 1)).
		Aggregate(query.Avg, expr.Col("value"), "localAvgLoad").
		GroupBy("plug", "household", "house").
		MustBuild()
}

// SG3Join is the join core of Appendix A.2 Query 3: local averages that
// exceed the global average, per time unit. It consumes SG1's and SG2's
// output streams. (The outer count-per-house aggregation is SG3Count.)
func SG3Join() *query.Query {
	return query.NewBuilder("SG3join").
		FromAs("LocalLoadStr", "L", SGLocalSchema, window.NewTime(1, 1)).
		FromAs("GlobalLoadStr", "G", SGGlobalSchema, window.NewTime(1, 1)).
		Join(expr.Cmp{Op: expr.Gt, Left: expr.Col("localAvgLoad"), Right: expr.Col("globalAvgLoad")}).
		SelectAs(expr.QCol("L", "timestamp"), "timestamp").
		SelectAs(expr.QCol("L", "house"), "house").
		MustBuild()
}

// SG3Count is the outer aggregation of Query 3: outlier count per house.
func SG3Count() *query.Query {
	outlier := schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "house", Type: schema.Int32},
	)
	return query.NewBuilder("SG3").
		From("OutlierStr", outlier, window.NewTime(1, 1)).
		CountAll("count").
		GroupBy("house").
		MustBuild()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
