package workload

import (
	"testing"

	"saber/internal/exec"
	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/window"
)

func TestSynGenShape(t *testing.T) {
	g := NewSynGen(1)
	data := g.Next(nil, 1000)
	if len(data) != 1000*SynTupleSize {
		t.Fatalf("bytes = %d", len(data))
	}
	if SynSchema.TupleSize() != SynTupleSize {
		t.Fatalf("schema size = %d", SynSchema.TupleSize())
	}
	// Timestamps non-decreasing, one per tuple by default.
	prev := int64(-1)
	for i := 0; i < 1000; i++ {
		ts := SynSchema.Timestamp(SynSchema.TupleAt(data, i))
		if ts < prev {
			t.Fatal("timestamps regress")
		}
		prev = ts
	}
	g2 := NewSynGen(2)
	g2.Groups = 8
	d2 := g2.Next(nil, 500)
	for i := 0; i < 500; i++ {
		if v := SynSchema.ReadInt32(SynSchema.TupleAt(d2, i), 2); v < 0 || v >= 8 {
			t.Fatalf("a2 out of group range: %d", v)
		}
	}
}

func TestSynQueriesCompile(t *testing.T) {
	w := window.NewCount(1024, 1024)
	queries := []*query.Query{
		Proj(4, 1, w),
		Proj(6, 100, w),
		Select(1, w),
		Select(64, w),
		GuardedSelect(500, 100, w),
		Agg(query.Sum, w),
		Agg(query.Avg, w),
		Agg(query.Min, w),
		GroupBy([]query.AggFunc{query.Count, query.Sum}, 8, w),
		Join(1, w),
		Join(64, w),
	}
	for _, q := range queries {
		if _, err := exec.Compile(q); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
	}
}

func TestSynQueryNames(t *testing.T) {
	if Select(16, window.NewCount(4, 4)).Name != "SELECT16" {
		t.Error("name")
	}
	if Proj(0, 0, window.NewCount(4, 4)).Name != "PROJ0" {
		t.Error("zero name")
	}
}

func runQueryOver(t *testing.T, q *query.Query, data []byte, batch int) []byte {
	t.Helper()
	p, err := exec.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	asm := exec.NewAssembler(p)
	var out []byte
	s := p.InputSchema(0)
	tsz := s.TupleSize()
	total := len(data) / tsz
	prev := window.NoPrev
	for pos := 0; pos < total; {
		n := batch
		if pos+n > total {
			n = total - pos
		}
		chunk := data[pos*tsz : (pos+n)*tsz]
		res := p.NewResult()
		var in [2]exec.Batch
		in[0] = exec.Batch{Data: chunk, Ctx: window.Context{FirstIndex: int64(pos), PrevTimestamp: prev}}
		if p.NumInputs() == 2 {
			in[1] = in[0] // self-join over the same synthetic stream
		}
		if err := p.Process(in, res); err != nil {
			t.Fatal(err)
		}
		out = asm.Drain(res, out)
		p.ReleaseResult(res)
		prev = s.Timestamp(chunk[(n-1)*tsz:])
		pos += n
	}
	return asm.Flush(out)
}

func TestCMGenAndQueries(t *testing.T) {
	g := NewCMGen(1)
	data := g.Next(nil, 5000)
	if len(data) != 5000*CMSchema.TupleSize() {
		t.Fatal("size")
	}
	fails := 0
	for i := 0; i < 5000; i++ {
		if CMSchema.ReadInt32(CMSchema.TupleAt(data, i), 4) == CMEventFail {
			fails++
		}
	}
	if fails == 0 || fails > 1000 {
		t.Fatalf("failures = %d at rate 0.02", fails)
	}

	out1 := runQueryOver(t, CM1(), data, 700)
	if len(out1) == 0 {
		t.Fatal("CM1 emitted nothing")
	}
	s1 := CM1().OutputSchema()
	// Per-window per-category rows: category ∈ [0, 4).
	for i := 0; i+s1.TupleSize() <= len(out1); i += s1.TupleSize() {
		if c := s1.ReadInt32(out1[i:], 1); c < 0 || c >= 4 {
			t.Fatalf("category %d", c)
		}
	}
	if len(runQueryOver(t, CM2(), data, 700)) == 0 {
		t.Fatal("CM2 emitted nothing")
	}
}

func TestCMFailureSurge(t *testing.T) {
	g := NewCMGen(2)
	g.FailureRate = 0.9
	data := g.Next(nil, 1000)
	fails := 0
	for i := 0; i < 1000; i++ {
		if CMSchema.ReadInt32(CMSchema.TupleAt(data, i), 4) == CMEventFail {
			fails++
		}
	}
	if fails < 800 {
		t.Fatalf("surge failures = %d", fails)
	}
}

func TestSGGenAndQueries(t *testing.T) {
	g := NewSGGen(1)
	data := g.Next(nil, 8000)
	out := runQueryOver(t, SG1(100), data, 900)
	s := SG1(100).OutputSchema()
	if len(out) == 0 {
		t.Fatal("SG1 emitted nothing")
	}
	// Load values are positive and bounded by the generator's model.
	for i := 0; i+s.TupleSize() <= len(out); i += s.TupleSize() {
		v := s.ReadFloat(out[i:], 1)
		if v <= 0 || v > 200 {
			t.Fatalf("globalAvgLoad = %g", v)
		}
	}
	if len(runQueryOver(t, SG2(100), data, 900)) == 0 {
		t.Fatal("SG2 emitted nothing")
	}
	if _, err := exec.Compile(SG3Join()); err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Compile(SG3Count()); err != nil {
		t.Fatal(err)
	}
}

func TestLRBGenAndQueries(t *testing.T) {
	g := NewLRBGen(1, 200)
	data := g.Next(nil, 20000)

	lrb1 := LRB1()
	out := runQueryOver(t, lrb1, data, 3000)
	if len(out) != 20000*LRBSegSchema.TupleSize() {
		t.Fatalf("LRB1 out bytes = %d", len(out))
	}
	segs := lrb1.OutputSchema()
	if !segs.Equal(LRBSegSchema) {
		t.Fatalf("LRB1 output schema %s != SegSpeedStr %s", segs, LRBSegSchema)
	}
	// Segments derived by integer division.
	for i := 0; i < 100; i++ {
		in := LRBSchema.TupleAt(data, i)
		o := LRBSegSchema.TupleAt(out, i)
		if LRBSegSchema.ReadInt(o, 6) != int64(LRBSchema.ReadInt32(in, 6)/5280) {
			t.Fatalf("segment mismatch at %d", i)
		}
	}

	// LRB3 finds the simulated congestion (segments 20–25).
	out3 := runQueryOver(t, LRB3(), out, 2000)
	s3 := LRB3().OutputSchema()
	if len(out3) == 0 {
		t.Fatal("LRB3 found no congestion")
	}
	for i := 0; i+s3.TupleSize() <= len(out3); i += s3.TupleSize() {
		if v := s3.ReadFloat(out3[i:], 4); v >= 40 {
			t.Fatalf("HAVING leak: avgSpeed %g", v)
		}
	}

	if len(runQueryOver(t, LRB4(), out, 2000)) == 0 {
		t.Fatal("LRB4 emitted nothing")
	}
	if _, err := exec.Compile(LRB2()); err != nil {
		t.Fatal(err)
	}
}

func TestSchemas32Bytes(t *testing.T) {
	// The paper's Table 1 tuple widths: CM 12 attributes, SG/LRB 7.
	if CMSchema.NumFields() != 12 {
		t.Errorf("CM fields = %d", CMSchema.NumFields())
	}
	if SGSchema.NumFields() != 7 || LRBSchema.NumFields() != 7 {
		t.Error("SG/LRB field counts")
	}
	var _ = schema.Schema{}
}
