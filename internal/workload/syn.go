// Package workload provides the four workloads of the paper's evaluation
// (Table 1): the synthetic parameter-sweep queries (Syn), compute cluster
// monitoring (CM), smart-grid anomaly detection (SG) and the Linear Road
// Benchmark (LRB) — each as a data generator with the paper's schema plus
// ready-made query constructors.
package workload

import (
	"math/rand"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/window"
)

// SynSchema is the paper's synthetic tuple: a 64-bit timestamp and six
// 32-bit attributes, the first a float (32 bytes total).
var SynSchema = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "a1", Type: schema.Float32},
	schema.Field{Name: "a2", Type: schema.Int32},
	schema.Field{Name: "a3", Type: schema.Int32},
	schema.Field{Name: "a4", Type: schema.Int32},
	schema.Field{Name: "a5", Type: schema.Int32},
	schema.Field{Name: "a6", Type: schema.Int32},
)

// SynTupleSize is the synthetic tuple's byte size (32).
const SynTupleSize = 32

// SynGen streams synthetic tuples with uniformly distributed values.
type SynGen struct {
	rnd *rand.Rand
	ts  int64
	// Groups bounds a2's domain (GROUP-BY cardinality); 0 means the full
	// int32 range.
	Groups int32
	// TuplesPerTimeUnit controls timestamp density (default 1).
	TuplesPerTimeUnit int
	inUnit            int
}

// NewSynGen creates a generator with a fixed seed for reproducibility.
func NewSynGen(seed int64) *SynGen {
	return &SynGen{rnd: rand.New(rand.NewSource(seed)), TuplesPerTimeUnit: 1}
}

// Next appends n tuples to dst and returns it.
func (g *SynGen) Next(dst []byte, n int) []byte {
	b := schema.NewTupleBuilder(SynSchema, n)
	for i := 0; i < n; i++ {
		a2 := g.rnd.Int31()
		if g.Groups > 0 {
			a2 = g.rnd.Int31n(g.Groups)
		}
		b.Begin().
			Timestamp(g.ts).
			Float32("a1", g.rnd.Float32()*100).
			Int32("a2", a2).
			Int32("a3", g.rnd.Int31n(1024)).
			Int32("a4", g.rnd.Int31n(1024)).
			Int32("a5", g.rnd.Int31()).
			Int32("a6", g.rnd.Int31())
		g.inUnit++
		if g.inUnit >= g.TuplesPerTimeUnit {
			g.inUnit = 0
			g.ts++
		}
	}
	return append(dst, b.Bytes()...)
}

// Proj returns PROJ_m: a projection of the timestamp plus m arithmetic
// expressions over a1 (paper Table 1). exprsPerAttr stacks extra
// arithmetic per attribute (PROJ6* in Fig. 15 uses 100).
func Proj(m, exprsPerAttr int, w window.Def) *query.Query {
	b := query.NewBuilder(synName("PROJ", m)).
		From("Syn", SynSchema, w).
		Select("timestamp")
	for i := 0; i < m; i++ {
		var e expr.Expr = expr.Col("a1")
		n := exprsPerAttr
		if n < 1 {
			n = 1
		}
		for j := 0; j < n; j++ {
			e = expr.Arith{Op: expr.Add, Left: expr.Arith{Op: expr.Mul, Left: e, Right: expr.FloatConst(3)}, Right: expr.FloatConst(float64(i + j))}
		}
		b.SelectAs(e, synName("p", i))
	}
	return b.MustBuild()
}

// Select returns SELECT_n: a selection with n predicates over a3
// (disjunction, ~50% selective overall).
func Select(n int, w window.Def) *query.Query {
	preds := make([]expr.Pred, n)
	for i := 0; i < n; i++ {
		preds[i] = expr.Cmp{Op: expr.Lt, Left: expr.Col("a3"), Right: expr.IntConst(int64(512 / (i + 1)))}
	}
	return query.NewBuilder(synName("SELECT", n)).
		From("Syn", SynSchema, w).
		Where(expr.Or{Preds: preds}).
		MustBuild()
}

// GuardedSelect returns the Fig. 16 query shape: p1 ∧ (p2 ∨ … ∨ pn), so
// the n-1 inner predicates are evaluated only when the guard passes.
// guardThreshold tunes p1's selectivity over a4 ∈ [0, 1024).
func GuardedSelect(n int, guardThreshold int64, w window.Def) *query.Query {
	inner := make([]expr.Pred, n-1)
	for i := range inner {
		inner[i] = expr.Cmp{Op: expr.Gt, Left: expr.Col("a3"), Right: expr.IntConst(int64(1024 - i))}
	}
	return query.NewBuilder(synName("GSELECT", n)).
		From("Syn", SynSchema, w).
		Where(expr.And{Preds: []expr.Pred{
			expr.Cmp{Op: expr.Lt, Left: expr.Col("a4"), Right: expr.IntConst(guardThreshold)},
			expr.Or{Preds: inner},
		}}).
		MustBuild()
}

// Agg returns AGG_f: a windowed aggregation with function f over a1.
func Agg(f query.AggFunc, w window.Def) *query.Query {
	return query.NewBuilder("AGG"+f.String()).
		From("Syn", SynSchema, w).
		Aggregate(f, expr.Col("a1"), "v").
		MustBuild()
}

// GroupBy returns GROUP-BY_o over a2 with o groups (pair the generator's
// Groups knob with o) computing the given aggregates.
func GroupBy(funcs []query.AggFunc, o int, w window.Def) *query.Query {
	b := query.NewBuilder(synName("GROUP-BY", o)).
		From("Syn", SynSchema, w).
		GroupBy("a2")
	for i, f := range funcs {
		arg := expr.Expr(expr.Col("a1"))
		if f == query.Count {
			arg = nil
		}
		b.Aggregate(f, arg, synName("v", i))
	}
	return b.MustBuild()
}

// Join returns JOIN_r: a windowed θ-join with r predicates between two
// synthetic streams.
func Join(r int, w window.Def) *query.Query {
	preds := make([]expr.Pred, r)
	preds[0] = expr.Cmp{Op: expr.Eq, Left: expr.QCol("A", "a3"), Right: expr.QCol("B", "a3")}
	for i := 1; i < r; i++ {
		preds[i] = expr.Cmp{Op: expr.Ge, Left: expr.QCol("A", "a4"), Right: expr.IntConst(int64(i))}
	}
	return query.NewBuilder(synName("JOIN", r)).
		FromAs("SynA", "A", SynSchema, w).
		FromAs("SynB", "B", SynSchema, w).
		Join(expr.And{Preds: preds}).
		SelectAs(expr.QCol("A", "timestamp"), "timestamp").
		SelectAs(expr.QCol("A", "a3"), "a3").
		SelectAs(expr.QCol("B", "timestamp"), "ts2").
		MustBuild()
}

func synName(prefix string, n int) string {
	const digits = "0123456789"
	if n == 0 {
		return prefix + "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%10]
		n /= 10
	}
	return prefix + string(buf[i:])
}
