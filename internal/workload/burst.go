package workload

import (
	"math/rand"
	"time"
)

// RateFunc is an offered-load profile: bytes per second at time elapsed
// since the start of the run. Profiles are pure functions of elapsed
// time, so a feeder replaying one against a seeded generator produces
// the same byte stream every run — the property the adaptive-ϕ
// experiments and chaos scenarios depend on.
type RateFunc func(elapsed time.Duration) float64

// SteadyRate offers a constant load.
func SteadyRate(bytesPerSec float64) RateFunc {
	return func(time.Duration) float64 { return bytesPerSec }
}

// BurstRate is the bursty profile: base load with a step to burst for
// burstLen at the start of every period. The square edges are the
// hardest case for a ϕ controller — no ramp to foreshadow the step.
func BurstRate(base, burst float64, period, burstLen time.Duration) RateFunc {
	return func(elapsed time.Duration) float64 {
		if period <= 0 {
			return base
		}
		if elapsed%period < burstLen {
			return burst
		}
		return base
	}
}

// DiurnalRate ramps linearly from lo up to hi and back once per period —
// the day/night load curve compressed to experiment time.
func DiurnalRate(lo, hi float64, period time.Duration) RateFunc {
	return func(elapsed time.Duration) float64 {
		if period <= 0 {
			return lo
		}
		pos := float64(elapsed%period) / float64(period) // [0, 1)
		var frac float64
		if pos < 0.5 {
			frac = pos * 2
		} else {
			frac = (1 - pos) * 2
		}
		return lo + (hi-lo)*frac
	}
}

// Jitter multiplies a profile by seeded multiplicative noise in
// [1-amp, 1+amp], re-drawn per call. Same seed ⇒ same sequence of
// draws, keeping paced feeders reproducible tick-for-tick.
func Jitter(f RateFunc, amp float64, seed int64) RateFunc {
	rnd := rand.New(rand.NewSource(seed))
	return func(elapsed time.Duration) float64 {
		return f(elapsed) * (1 + amp*(2*rnd.Float64()-1))
	}
}

// PaceTuples converts a rate profile into the deterministic per-tick
// tuple counts a feeder should insert: tick i covers
// [i·tick, (i+1)·tick) and carries rate(i·tick)·tick bytes rounded down
// to whole tuples, with the rounding remainder carried forward so the
// long-run average matches the profile exactly. The returned schedule
// is what both the bench feeder and the chaos scenario replay.
func PaceTuples(f RateFunc, tupleSize int, tick, total time.Duration) []int {
	if tick <= 0 || total <= 0 || tupleSize <= 0 {
		return nil
	}
	n := int(total / tick)
	out := make([]int, 0, n)
	carry := 0.0
	for i := 0; i < n; i++ {
		bytes := f(time.Duration(i)*tick)*tick.Seconds() + carry
		tuples := int(bytes) / tupleSize
		if tuples < 0 {
			tuples = 0
		}
		carry = bytes - float64(tuples*tupleSize)
		out = append(out, tuples)
	}
	return out
}
