package workload

import (
	"math/rand"

	"saber/internal/cql"
	"saber/internal/query"
	"saber/internal/schema"
)

// CMSchema is the Google cluster-monitoring TaskEvents schema (paper
// Appendix A.1).
var CMSchema = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "jobId", Type: schema.Int64},
	schema.Field{Name: "taskId", Type: schema.Int64},
	schema.Field{Name: "machineId", Type: schema.Int64},
	schema.Field{Name: "eventType", Type: schema.Int32},
	schema.Field{Name: "userId", Type: schema.Int32},
	schema.Field{Name: "category", Type: schema.Int32},
	schema.Field{Name: "priority", Type: schema.Int32},
	schema.Field{Name: "cpu", Type: schema.Float32},
	schema.Field{Name: "ram", Type: schema.Float32},
	schema.Field{Name: "disk", Type: schema.Float32},
	schema.Field{Name: "constraints", Type: schema.Int32},
)

// Cluster event types (a subset of the trace's vocabulary).
const (
	CMEventSubmit = 0
	CMEventFail   = 2
	// CMEventSchedule is the paper's eventType == 1 filter in CM2.
	CMEventSchedule = 1
	CMEventFinish   = 4
)

// CMGen synthesises the Google cluster trace's statistical shape:
// timestamped task events across jobs and machines, with a configurable
// task-failure rate that can be surged to replay the trace period used
// in Fig. 16.
type CMGen struct {
	rnd *rand.Rand
	ts  int64
	// FailureRate is the probability that an event is a task failure.
	FailureRate float64
	// Jobs and Machines bound the respective id domains.
	Jobs, Machines int64
	// EventsPerTimeUnit controls timestamp density.
	EventsPerTimeUnit int
	inUnit            int
}

// NewCMGen creates a generator with the trace-like defaults.
func NewCMGen(seed int64) *CMGen {
	return &CMGen{
		rnd:               rand.New(rand.NewSource(seed)),
		FailureRate:       0.02,
		Jobs:              1000,
		Machines:          11000, // the trace's 11,000-machine cluster
		EventsPerTimeUnit: 64,
	}
}

// Next appends n task events to dst.
func (g *CMGen) Next(dst []byte, n int) []byte {
	b := schema.NewTupleBuilder(CMSchema, n)
	for i := 0; i < n; i++ {
		ev := int32(CMEventSchedule)
		switch {
		case g.rnd.Float64() < g.FailureRate:
			ev = CMEventFail
		case g.rnd.Intn(4) == 0:
			ev = CMEventSubmit
		case g.rnd.Intn(8) == 0:
			ev = CMEventFinish
		}
		b.Begin().
			Timestamp(g.ts).
			Int64("jobId", g.rnd.Int63n(g.Jobs)).
			Int64("taskId", g.rnd.Int63()).
			Int64("machineId", g.rnd.Int63n(g.Machines)).
			Int32("eventType", ev).
			Int32("userId", g.rnd.Int31n(100)).
			Int32("category", g.rnd.Int31n(4)).
			Int32("priority", g.rnd.Int31n(12)).
			Float32("cpu", g.rnd.Float32()).
			Float32("ram", g.rnd.Float32()).
			Float32("disk", g.rnd.Float32()).
			Int32("constraints", g.rnd.Int31n(2))
		g.inUnit++
		if g.inUnit >= g.EventsPerTimeUnit {
			g.inUnit = 0
			g.ts++
		}
	}
	return append(dst, b.Bytes()...)
}

// CMCatalog registers the TaskEvents stream for CQL parsing.
func CMCatalog() cql.Catalog { return cql.Catalog{"TaskEvents": CMSchema} }

// CM1 is Appendix A.1 Query 1: CPU usage per category.
func CM1() *query.Query {
	return cql.MustParse("CM1", `
		select timestamp, category, sum(cpu) as totalCpu
		from TaskEvents [range 60 slide 1]
		group by category`, CMCatalog())
}

// CM2 is Appendix A.1 Query 2: average requested CPU per job for
// scheduled tasks.
func CM2() *query.Query {
	return cql.MustParse("CM2", `
		select timestamp, jobId, avg(cpu) as avgCpu
		from TaskEvents [range 60 slide 1]
		where eventType == 1
		group by jobId`, CMCatalog())
}
