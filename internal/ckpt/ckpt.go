// Package ckpt implements SABER's epoch-based checkpointing: periodic,
// crash-consistent snapshots of engine state cut at task-sequence
// barriers, persisted as CRC32-framed, fsync'd, atomically-renamed files
// with a small manifest chain.
//
// The durability unit is the epoch. The engine's result stage already
// merges task results strictly in task-ID order, so its drain frontier B
// is a natural barrier: when the coordinator snapshots under the drain
// lock, the committed output bytes, the assembler's still-open window
// partials, the ring release cursors and the dispatch timestamps all
// describe exactly tasks [0, B) — no quiescing, no in-flight task state
// to capture. Recovery rebuilds the engine at that barrier and replays
// the input from the released-cursor position; the checkpointed
// committed-output offset tells downstream exactly where the pre-crash
// prefix ends, so replayed output deduplicates to exactly-once delivery.
//
// On disk an epoch is one self-contained file, epoch-<n>.ckpt, written
// to a temp file, fsync'd, renamed into place, and followed by a
// directory fsync — a torn write can only ever produce a file that fails
// its length or CRC check, never a half-applied state. The store keeps
// the last K epochs plus a MANIFEST listing them newest-first; recovery
// scans newest-to-oldest and falls back past any torn or corrupt file.
package ckpt

import "saber/internal/exec"

// Snapshot is one epoch's full engine state.
type Snapshot struct {
	// Epoch numbers snapshots monotonically, across restarts.
	Epoch uint64
	// Phi is the engine's task size at the barrier (adaptive sizing
	// carries over, so recovery resumes with the tuned ϕ).
	Phi int64
	// Queries holds one entry per registered query, keyed by name.
	Queries []QuerySnap
	// Statements is the catalog's DDL statement log at the barrier (codec
	// v3; empty when restored from an older file or an engine without a
	// catalog). Recovery replays it through a fresh catalog so the
	// registered sources, streams and sinks are restored exactly, then
	// matches Queries by name for their stream state.
	Statements []string
}

// QuerySnap is one query's state at the epoch barrier.
type QuerySnap struct {
	// Name matches the query's registered name; recovery refuses a
	// checkpoint whose queries don't match the rebuilt engine.
	Name string
	// Barrier is the task-sequence frontier: tasks [0, Barrier) are fully
	// merged into this snapshot, tasks >= Barrier are not reflected at
	// all and will be re-cut from replayed input.
	Barrier int64
	// CommittedBytes/CommittedTuples are the output stream position at
	// the barrier — the exactly-once cutoff for downstream consumers.
	CommittedBytes  int64
	CommittedTuples int64
	// RateCPU/RateGPU carry the scheduler's learned throughput row so a
	// restored engine does not re-learn the CPU/GPU crossover from the
	// uniform prior.
	RateCPU, RateGPU float64
	// Overload-protection ledger at the barrier (codec v2; zero when
	// restored from a v1 file). OfferedBytes/InBytes are the raw
	// bytes-offered and bytes-admitted counters — their difference is the
	// admission-shed volume in bytes, which recovery re-seeds so the
	// offered == admitted + shed identity survives a restart. The tuple
	// counters carry the shed telemetry itself. All are approximate
	// within the inserts in flight at capture; exact when the engine was
	// quiescent.
	OfferedBytes     int64
	InBytes          int64
	ShedTuples       int64
	ShedAdmitTuples  int64
	ShedOldestTuples int64
	// Ins holds per-input stream cursors.
	Ins []InputSnap
	// Pending holds the assembler's still-open window partials at the
	// barrier (windows that span the barrier).
	Pending []exec.WindowPartial
}

// InputSnap is one input stream's position at the epoch barrier.
type InputSnap struct {
	// FreeTo is the absolute ring byte offset released by the last task
	// before the barrier: everything below it is fully reflected in the
	// snapshot, everything at or above it must be replayed. FreeTo is
	// always tuple-aligned, so FreeTo / tupleSize is the replay cursor in
	// tuples — the position handed to ingest resume.
	FreeTo int64
	// PrevTS is the timestamp of the last tuple consumed before the
	// barrier (window.NoPrev when none): the window.Context continuity
	// for the first batch cut after recovery.
	PrevTS int64
}
