package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrNoCheckpoint reports a checkpoint directory with no loadable epoch:
// missing, empty, or containing only torn/corrupt files. Callers treat it
// as "cold start".
var ErrNoCheckpoint = errors.New("ckpt: no checkpoint found")

// manifestName is the advisory newest-first epoch listing. Recovery
// scans the directory itself, so a torn manifest can never block it.
const manifestName = "MANIFEST"

// Store persists epochs into one directory, keeping the last keep files.
type Store struct {
	dir  string
	keep int

	mu sync.Mutex
}

// Open creates (if needed) the checkpoint directory and returns a store
// retaining the last keep epochs (default 3 when keep <= 0).
func Open(dir string, keep int) (*Store, error) {
	if dir == "" {
		return nil, errors.New("ckpt: empty checkpoint directory")
	}
	if keep <= 0 {
		keep = 3
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return &Store{dir: dir, keep: keep}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

func epochFile(epoch uint64) string { return fmt.Sprintf("epoch-%016d.ckpt", epoch) }

// Save encodes and durably persists one epoch: temp file, fsync, atomic
// rename, directory fsync, manifest rewrite, then garbage collection of
// epochs beyond the retention window. Returns the final path and the
// encoded size.
func (st *Store) Save(s *Snapshot) (string, int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()

	buf := Encode(s)
	path := filepath.Join(st.dir, epochFile(s.Epoch))
	if err := writeDurable(path, buf); err != nil {
		return "", 0, err
	}
	epochs, err := scanEpochs(st.dir)
	if err != nil {
		return "", 0, err
	}
	// Manifest first, GC second: the manifest never lists a file GC is
	// about to remove for longer than one crash window, and recovery
	// ignores the manifest anyway.
	if len(epochs) > st.keep {
		epochs = epochs[:st.keep]
	}
	var m strings.Builder
	for _, e := range epochs {
		fmt.Fprintf(&m, "%s\n", filepath.Base(e.Path))
	}
	if err := writeDurable(filepath.Join(st.dir, manifestName), []byte(m.String())); err != nil {
		return "", 0, err
	}
	st.gc(epochs)
	return path, len(buf), nil
}

// gc removes every epoch file not in the retained set.
func (st *Store) gc(retained []FileInfo) {
	keep := make(map[string]bool, len(retained))
	for _, e := range retained {
		keep[filepath.Base(e.Path)] = true
	}
	all, err := scanEpochs(st.dir)
	if err != nil {
		return
	}
	for _, e := range all {
		if !keep[filepath.Base(e.Path)] {
			os.Remove(e.Path)
		}
	}
}

// writeDurable writes b to path via temp file + fsync + rename + dir
// fsync, so path either holds the complete new content or is untouched.
func writeDurable(path string, b []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// FileInfo describes one epoch file found in a checkpoint directory.
type FileInfo struct {
	Path  string
	Epoch uint64
}

// Scan lists the epoch files in dir, newest first. Non-epoch files are
// ignored. A missing directory scans as empty.
func Scan(dir string) ([]FileInfo, error) {
	return scanEpochs(dir)
}

func scanEpochs(dir string) ([]FileInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var out []FileInfo
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, "epoch-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "epoch-"), ".ckpt"), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, FileInfo{Path: filepath.Join(dir, name), Epoch: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch > out[j].Epoch })
	return out, nil
}

// Load reads and decodes one epoch file.
func Load(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return Decode(b)
}

// LoadInfo describes which epoch LoadLatest settled on.
type LoadInfo struct {
	Path  string
	Epoch uint64
	// Skipped counts newer epoch files that failed to load (torn or
	// corrupt) and were fallen past. Recovery surfaces it as the
	// saber.ckpt.corrupt counter.
	Skipped int
}

// LoadLatest returns the newest decodable epoch in dir, falling back
// past torn or corrupt files. ErrNoCheckpoint when none loads.
func LoadLatest(dir string) (*Snapshot, *LoadInfo, error) {
	epochs, err := scanEpochs(dir)
	if err != nil {
		return nil, nil, err
	}
	info := &LoadInfo{}
	for _, e := range epochs {
		s, err := Load(e.Path)
		if err != nil {
			info.Skipped++
			continue
		}
		info.Path = e.Path
		info.Epoch = e.Epoch
		return s, info, nil
	}
	return nil, info, fmt.Errorf("%w in %s (%d corrupt files skipped)", ErrNoCheckpoint, dir, info.Skipped)
}
