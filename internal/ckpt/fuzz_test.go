package ckpt

import (
	"errors"
	"testing"
)

// FuzzDecode hammers the snapshot decoder with mutated frames. The
// contract under fuzzing is the recovery contract: any input either
// decodes to a snapshot that re-encodes and decodes again cleanly, or
// fails with an error wrapping ErrCorrupt — and nothing ever panics,
// because recovery must be able to fall back past arbitrary disk damage.
func FuzzDecode(f *testing.F) {
	// Seed with real encodings (full-featured and minimal), their
	// truncations, and targeted frame damage, so the fuzzer starts on
	// both sides of every validation branch.
	full := Encode(sampleSnapshot(7))
	f.Add(full)
	f.Add(Encode(&Snapshot{}))
	f.Add(Encode(&Snapshot{Epoch: 1, Phi: 4096, Queries: []QuerySnap{{Name: "q"}}}))
	for _, cut := range []int{0, 1, len(magic), headerSize, headerSize + 1, len(full) - 1} {
		if cut <= len(full) {
			f.Add(full[:cut])
		}
	}
	flipped := append([]byte(nil), full...)
	flipped[headerSize+3] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		// Whatever decoded must survive a re-encode round trip.
		if _, err := Decode(Encode(s)); err != nil {
			t.Fatalf("re-encode of decoded snapshot does not decode: %v", err)
		}
	})
}
