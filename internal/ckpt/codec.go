package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"saber/internal/exec"
)

// Binary snapshot framing:
//
//	magic   "SBRCKPT1"          8 bytes
//	version u32 (= 3; v1 and v2 still decode)
//	length  u64 (payload bytes)
//	payload little-endian fields, see encodePayload
//	crc     u32, IEEE CRC32 over the payload
//
// Version 2 appends the overload-protection ledger (offered/admitted
// bytes and the shed tuple counters) to each query record. Version 3
// appends the catalog's DDL statement log after the query records.
// Older files decode with the newer fields zero/empty, so recovery can
// still fall back to a pre-upgrade epoch.
//
// The frame check (magic, version, declared length, CRC) is what lets
// recovery distinguish "torn or corrupt, fall back one epoch" from "valid
// but semantically incompatible, refuse". Decode is defensive end to end:
// every count is validated against the bytes actually remaining before
// any allocation, so no input — truncated, bit-flipped or adversarial —
// can panic or balloon memory (see FuzzDecode).

var le = binary.LittleEndian

const (
	magic       = "SBRCKPT1"
	version     = 3
	minVersion  = 1
	headerSize  = len(magic) + 4 + 8
	trailerSize = 4

	// Decode sanity bounds. Generous for real engines (2 queries, a few
	// pending windows) while keeping hostile counts from allocating.
	maxQueries  = 1 << 12
	maxStmts    = 1 << 12
	maxStmtLen  = 1 << 16
	maxName     = 1 << 12
	maxInputs   = 2
	maxPending  = 1 << 20
	maxVals     = 1 << 16
	maxGroupKey = 1 << 12
	maxAggs     = 1 << 12
)

// ErrCorrupt wraps every frame/payload validation failure so callers can
// classify a bad file without string matching.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// Encode serialises a snapshot into a framed byte buffer.
func Encode(s *Snapshot) []byte {
	var p payload
	p.u64(s.Epoch)
	p.u64(uint64(s.Phi))
	p.u32(uint32(len(s.Queries)))
	for i := range s.Queries {
		q := &s.Queries[i]
		p.str(q.Name)
		p.u64(uint64(q.Barrier))
		p.u64(uint64(q.CommittedBytes))
		p.u64(uint64(q.CommittedTuples))
		p.f64(q.RateCPU)
		p.f64(q.RateGPU)
		p.u64(uint64(q.OfferedBytes))
		p.u64(uint64(q.InBytes))
		p.u64(uint64(q.ShedTuples))
		p.u64(uint64(q.ShedAdmitTuples))
		p.u64(uint64(q.ShedOldestTuples))
		p.u32(uint32(len(q.Ins)))
		for _, in := range q.Ins {
			p.u64(uint64(in.FreeTo))
			p.u64(uint64(in.PrevTS))
		}
		p.u32(uint32(len(q.Pending)))
		for j := range q.Pending {
			p.partial(&q.Pending[j])
		}
	}
	p.u32(uint32(len(s.Statements)))
	for _, st := range s.Statements {
		p.str(st)
	}

	out := make([]byte, 0, headerSize+len(p.b)+trailerSize)
	out = append(out, magic...)
	out = le.AppendUint32(out, version)
	out = le.AppendUint64(out, uint64(len(p.b)))
	out = append(out, p.b...)
	out = le.AppendUint32(out, crc32.ChecksumIEEE(p.b))
	return out
}

// Decode parses a framed snapshot. It never panics; any malformed input
// returns an error wrapping ErrCorrupt.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < headerSize+trailerSize {
		return nil, corruptf("file of %d bytes is shorter than the frame", len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, corruptf("bad magic %q", b[:len(magic)])
	}
	v := le.Uint32(b[len(magic):])
	if v < minVersion || v > version {
		return nil, corruptf("unsupported version %d", v)
	}
	n := le.Uint64(b[len(magic)+4:])
	if n != uint64(len(b)-headerSize-trailerSize) {
		return nil, corruptf("declared payload %d bytes, frame carries %d (torn write?)",
			n, len(b)-headerSize-trailerSize)
	}
	pay := b[headerSize : headerSize+int(n)]
	if sum := crc32.ChecksumIEEE(pay); sum != le.Uint32(b[headerSize+int(n):]) {
		return nil, corruptf("payload CRC mismatch")
	}

	r := &reader{b: pay}
	s := &Snapshot{
		Epoch: r.u64(),
		Phi:   int64(r.u64()),
	}
	nq := r.count(maxQueries, "queries")
	for i := 0; i < nq && r.err == nil; i++ {
		q := QuerySnap{
			Name:            r.str(),
			Barrier:         int64(r.u64()),
			CommittedBytes:  int64(r.u64()),
			CommittedTuples: int64(r.u64()),
			RateCPU:         r.f64(),
			RateGPU:         r.f64(),
		}
		if v >= 2 {
			q.OfferedBytes = int64(r.u64())
			q.InBytes = int64(r.u64())
			q.ShedTuples = int64(r.u64())
			q.ShedAdmitTuples = int64(r.u64())
			q.ShedOldestTuples = int64(r.u64())
		}
		nin := r.count(maxInputs, "inputs")
		for j := 0; j < nin && r.err == nil; j++ {
			q.Ins = append(q.Ins, InputSnap{
				FreeTo: int64(r.u64()),
				PrevTS: int64(r.u64()),
			})
		}
		np := r.count(maxPending, "pending windows")
		for j := 0; j < np && r.err == nil; j++ {
			p, err := r.partial()
			if err != nil {
				return nil, err
			}
			q.Pending = append(q.Pending, p)
		}
		s.Queries = append(s.Queries, q)
	}
	if v >= 3 {
		ns := r.count(maxStmts, "statements")
		for i := 0; i < ns && r.err == nil; i++ {
			n := r.count(maxStmtLen, "statement length")
			s.Statements = append(s.Statements, string(r.take(n)))
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, corruptf("%d trailing payload bytes", len(r.b)-r.off)
	}
	return s, nil
}

// payload is the append-only encode buffer.
type payload struct{ b []byte }

func (p *payload) u32(v uint32)  { p.b = le.AppendUint32(p.b, v) }
func (p *payload) u64(v uint64)  { p.b = le.AppendUint64(p.b, v) }
func (p *payload) u8(v uint8)    { p.b = append(p.b, v) }
func (p *payload) f64(v float64) { p.u64(math.Float64bits(v)) }
func (p *payload) str(s string)  { p.u32(uint32(len(s))); p.b = append(p.b, s...) }
func (p *payload) bytes(b []byte) {
	p.u32(uint32(len(b)))
	p.b = append(p.b, b...)
}

// Partial flag bits.
const (
	flagOpenedHere  = 1 << 0
	flagClosedHere  = 1 << 1
	flagClosedSideA = 1 << 2
	flagClosedSideB = 1 << 3
	flagHasTable    = 1 << 4
)

func (p *payload) partial(w *exec.WindowPartial) {
	p.u64(uint64(w.Window))
	var flags uint8
	if w.OpenedHere {
		flags |= flagOpenedHere
	}
	if w.ClosedHere {
		flags |= flagClosedHere
	}
	if w.ClosedSides[0] {
		flags |= flagClosedSideA
	}
	if w.ClosedSides[1] {
		flags |= flagClosedSideB
	}
	if w.Table != nil {
		flags |= flagHasTable
	}
	p.u8(flags)
	p.u64(uint64(w.Count))
	p.u64(uint64(w.MaxTS))
	p.u32(uint32(len(w.Vals)))
	for _, v := range w.Vals {
		p.f64(v)
	}
	p.bytes(w.Data)
	p.bytes(w.AData)
	p.bytes(w.BData)
	if w.Table != nil {
		p.table(w.Table)
	}
}

func (p *payload) table(h *exec.HashTable) {
	p.u32(uint32(h.KeyLen()))
	p.u32(uint32(h.NumAggs()))
	p.u32(uint32(h.Len()))
	h.Range(func(s exec.Slot) {
		p.b = append(p.b, s.Key()...)
		p.u64(uint64(s.Count()))
		p.u64(uint64(s.MaxTS()))
		for a := 0; a < h.NumAggs(); a++ {
			p.f64(s.Val(a))
		}
	})
}

// reader is the bounds-checked decode cursor: after the first failed
// read every subsequent read is a zero-value no-op and err carries the
// first failure.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = corruptf(format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail("payload truncated at offset %d (want %d more bytes)", r.off, n)
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return le.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return le.Uint64(b)
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// count reads a u32 element count and validates it against both the
// semantic bound and the bytes remaining (one byte per element minimum),
// so hostile counts cannot drive huge allocations.
func (r *reader) count(max int, what string) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n > max || n > len(r.b)-r.off {
		r.fail("%s count %d out of range (max %d, %d bytes left)", what, n, max, len(r.b)-r.off)
		return 0
	}
	return n
}

func (r *reader) str() string {
	n := r.count(maxName, "name length")
	return string(r.take(n))
}

func (r *reader) blob() []byte {
	n := r.count(len(r.b), "blob length")
	b := r.take(n)
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

func (r *reader) partial() (exec.WindowPartial, error) {
	var w exec.WindowPartial
	w.Window = int64(r.u64())
	flags := r.u8()
	w.OpenedHere = flags&flagOpenedHere != 0
	w.ClosedHere = flags&flagClosedHere != 0
	w.ClosedSides[0] = flags&flagClosedSideA != 0
	w.ClosedSides[1] = flags&flagClosedSideB != 0
	w.Count = int64(r.u64())
	w.MaxTS = int64(r.u64())
	nv := r.count(maxVals, "accumulators")
	for i := 0; i < nv && r.err == nil; i++ {
		w.Vals = append(w.Vals, r.f64())
	}
	w.Data = r.blob()
	w.AData = r.blob()
	w.BData = r.blob()
	if flags&flagHasTable != 0 {
		w.Table = r.table()
	}
	return w, r.err
}

func (r *reader) table() *exec.HashTable {
	keyLen := r.count(maxGroupKey, "group key length")
	nAggs := r.count(maxAggs, "group accumulators")
	groups := int(r.u32())
	if r.err != nil {
		return nil
	}
	// Each group carries keyLen + 16 + 8*nAggs bytes; validate against the
	// remaining payload before sizing the table.
	per := keyLen + 16 + 8*nAggs
	if groups < 0 || per <= 0 || groups > (len(r.b)-r.off)/per {
		r.fail("group count %d exceeds remaining payload", groups)
		return nil
	}
	h := exec.NewHashTable(keyLen, nAggs, groups)
	for g := 0; g < groups && r.err == nil; g++ {
		key := r.take(keyLen)
		count := int64(r.u64())
		maxTS := int64(r.u64())
		if r.err != nil {
			return nil
		}
		s := h.Upsert(key, nil)
		s.AddCount(count)
		// Fresh slots seed maxTS at MinInt64; ObserveTS only raises, which
		// round-trips every legitimate value including the seed itself.
		s.ObserveTS(maxTS)
		for a := 0; a < nAggs; a++ {
			s.SetVal(a, r.f64())
		}
	}
	return h
}
