package ckpt

import (
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"saber/internal/exec"
)

// sampleSnapshot exercises every payload shape: scalar aggregation
// partials, a grouped partial with a hash table, join byte payloads, and
// multiple queries/inputs.
func sampleSnapshot(epoch uint64) *Snapshot {
	ht := exec.NewHashTable(8, 2, 4)
	for _, k := range []string{"aaaaaaaa", "bbbbbbbb", "cccccccc"} {
		s := ht.Upsert([]byte(k), nil)
		s.AddCount(int64(len(k)))
		s.ObserveTS(int64(epoch) * 100)
		s.SetVal(0, 1.5*float64(epoch))
		s.SetVal(1, -2.25)
	}
	return &Snapshot{
		Epoch: epoch,
		Phi:   1 << 20,
		Queries: []QuerySnap{
			{
				Name:             "stress-0",
				Barrier:          int64(epoch) * 17,
				CommittedBytes:   int64(epoch) * 4096,
				CommittedTuples:  int64(epoch) * 128,
				RateCPU:          1234.5,
				RateGPU:          987.25,
				OfferedBytes:     int64(epoch) * 5000,
				InBytes:          int64(epoch) * 4600,
				ShedTuples:       int64(epoch) * 13,
				ShedAdmitTuples:  int64(epoch) * 9,
				ShedOldestTuples: int64(epoch) * 4,
				Ins: []InputSnap{
					{FreeTo: int64(epoch) * 32, PrevTS: int64(epoch) - 1},
					{FreeTo: 0, PrevTS: math.MinInt64},
				},
				Pending: []exec.WindowPartial{
					{Window: 7, OpenedHere: true, Count: 42, Vals: []float64{1, 2, 3}, MaxTS: 99},
					{Window: 8, Table: ht, MaxTS: math.MinInt64},
					{Window: 9, Data: []byte("joined"), AData: []byte("left"), BData: []byte("right"),
						ClosedSides: [2]bool{true, false}},
				},
			},
			{Name: "stress-1", Barrier: 3, CommittedBytes: 100, CommittedTuples: 5,
				Ins: []InputSnap{{FreeTo: 160, PrevTS: 4}}},
		},
	}
}

func assertSnapshotsEqual(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.Epoch != want.Epoch || got.Phi != want.Phi || len(got.Queries) != len(want.Queries) {
		t.Fatalf("snapshot header: got epoch=%d phi=%d queries=%d, want epoch=%d phi=%d queries=%d",
			got.Epoch, got.Phi, len(got.Queries), want.Epoch, want.Phi, len(want.Queries))
	}
	for i := range want.Queries {
		g, w := got.Queries[i], want.Queries[i]
		if g.Name != w.Name || g.Barrier != w.Barrier || g.CommittedBytes != w.CommittedBytes ||
			g.CommittedTuples != w.CommittedTuples || g.RateCPU != w.RateCPU || g.RateGPU != w.RateGPU {
			t.Fatalf("query %d header mismatch: got %+v", i, g)
		}
		if g.OfferedBytes != w.OfferedBytes || g.InBytes != w.InBytes || g.ShedTuples != w.ShedTuples ||
			g.ShedAdmitTuples != w.ShedAdmitTuples || g.ShedOldestTuples != w.ShedOldestTuples {
			t.Fatalf("query %d overload ledger mismatch: got %+v", i, g)
		}
		if !reflect.DeepEqual(g.Ins, w.Ins) {
			t.Fatalf("query %d inputs: got %+v, want %+v", i, g.Ins, w.Ins)
		}
		if len(g.Pending) != len(w.Pending) {
			t.Fatalf("query %d: %d pending windows, want %d", i, len(g.Pending), len(w.Pending))
		}
		for j := range w.Pending {
			gp, wp := g.Pending[j], w.Pending[j]
			gt, wt := gp.Table, wp.Table
			gp.Table, wp.Table = nil, nil
			// Encode normalises empty slices to nil.
			if !reflect.DeepEqual(gp, wp) {
				t.Fatalf("query %d window %d: got %+v, want %+v", i, j, gp, wp)
			}
			if (gt == nil) != (wt == nil) {
				t.Fatalf("query %d window %d: table presence mismatch", i, j)
			}
			if wt != nil {
				assertTablesEqual(t, gt, wt)
			}
		}
	}
}

func assertTablesEqual(t *testing.T, got, want *exec.HashTable) {
	t.Helper()
	if got.Len() != want.Len() || got.KeyLen() != want.KeyLen() || got.NumAggs() != want.NumAggs() {
		t.Fatalf("table shape: got len=%d keyLen=%d aggs=%d, want len=%d keyLen=%d aggs=%d",
			got.Len(), got.KeyLen(), got.NumAggs(), want.Len(), want.KeyLen(), want.NumAggs())
	}
	want.Range(func(ws exec.Slot) {
		gs, ok := got.Lookup(ws.Key())
		if !ok {
			t.Fatalf("group %q missing after round trip", ws.Key())
		}
		if gs.Count() != ws.Count() || gs.MaxTS() != ws.MaxTS() {
			t.Fatalf("group %q: count/maxTS %d/%d, want %d/%d",
				ws.Key(), gs.Count(), gs.MaxTS(), ws.Count(), ws.MaxTS())
		}
		for a := 0; a < want.NumAggs(); a++ {
			if gs.Val(a) != ws.Val(a) {
				t.Fatalf("group %q agg %d: %v, want %v", ws.Key(), a, gs.Val(a), ws.Val(a))
			}
		}
	})
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleSnapshot(3)
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	assertSnapshotsEqual(t, got, want)
}

// TestDecodeV1Compat hand-builds a version-1 frame (no overload ledger
// fields) and checks it still decodes, with the v2 fields zero — recovery
// must be able to fall back to a pre-upgrade epoch file.
func TestDecodeV1Compat(t *testing.T) {
	var p payload
	p.u64(3)    // epoch
	p.u64(4096) // phi
	p.u32(1)    // queries
	p.str("q0")
	p.u64(7)   // barrier
	p.u64(100) // committed bytes
	p.u64(5)   // committed tuples
	p.f64(1.5) // rate cpu
	p.f64(2.5) // rate gpu
	p.u32(1)   // inputs
	p.u64(160) // free-to
	p.u64(42)  // prev ts
	p.u32(0)   // pending
	frame := append([]byte(nil), magic...)
	frame = le.AppendUint32(frame, 1)
	frame = le.AppendUint64(frame, uint64(len(p.b)))
	frame = append(frame, p.b...)
	frame = le.AppendUint32(frame, crc32.ChecksumIEEE(p.b))

	s, err := Decode(frame)
	if err != nil {
		t.Fatalf("Decode v1: %v", err)
	}
	q := s.Queries[0]
	if s.Epoch != 3 || q.Name != "q0" || q.Barrier != 7 || q.CommittedBytes != 100 ||
		len(q.Ins) != 1 || q.Ins[0].FreeTo != 160 {
		t.Fatalf("v1 fields mangled: %+v", s)
	}
	if q.OfferedBytes != 0 || q.InBytes != 0 || q.ShedTuples != 0 ||
		q.ShedAdmitTuples != 0 || q.ShedOldestTuples != 0 {
		t.Fatalf("v1 decode should leave the overload ledger zero: %+v", q)
	}
}

func TestStoreSaveLoadLatest(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 5; e++ {
		if _, _, err := st.Save(sampleSnapshot(e)); err != nil {
			t.Fatalf("Save epoch %d: %v", e, err)
		}
	}
	s, info, err := LoadLatest(dir)
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if s.Epoch != 5 || info.Epoch != 5 || info.Skipped != 0 {
		t.Fatalf("loaded epoch %d (skipped %d), want 5 (0)", s.Epoch, info.Skipped)
	}
	assertSnapshotsEqual(t, s, sampleSnapshot(5))

	// Retention: only the newest 3 epochs remain on disk.
	epochs, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 3 || epochs[0].Epoch != 5 || epochs[2].Epoch != 3 {
		t.Fatalf("retained %+v, want epochs 5,4,3", epochs)
	}
	// Manifest lists the retained epochs newest-first.
	m, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if want := "epoch-0000000000000005.ckpt\nepoch-0000000000000004.ckpt\nepoch-0000000000000003.ckpt\n"; string(m) != want {
		t.Fatalf("manifest:\n%s\nwant:\n%s", m, want)
	}
}

func TestLoadLatestNoCheckpoint(t *testing.T) {
	if _, _, err := LoadLatest(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: err = %v, want ErrNoCheckpoint", err)
	}
	if _, _, err := LoadLatest(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: err = %v, want ErrNoCheckpoint", err)
	}
}

// TestLoadLatestFallsBackPastCorruption is the torn/corrupt recovery
// contract: a damaged newest epoch must never block recovery or panic —
// LoadLatest reports it skipped and settles on the previous valid epoch.
func TestLoadLatestFallsBackPastCorruption(t *testing.T) {
	damage := map[string]func(path string) error{
		"bit-flip": func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			b[len(b)/2] ^= 0x40
			return os.WriteFile(path, b, 0o644)
		},
		"truncated": func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, b[:len(b)/3], 0o644)
		},
		"empty": func(path string) error {
			return os.WriteFile(path, nil, 0o644)
		},
		"bad-magic": func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			copy(b, "NOTSABER")
			return os.WriteFile(path, b, 0o644)
		},
	}
	for name, corrupt := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir, 4)
			if err != nil {
				t.Fatal(err)
			}
			for e := uint64(1); e <= 3; e++ {
				if _, _, err := st.Save(sampleSnapshot(e)); err != nil {
					t.Fatal(err)
				}
			}
			if err := corrupt(filepath.Join(dir, epochFile(3))); err != nil {
				t.Fatal(err)
			}
			s, info, err := LoadLatest(dir)
			if err != nil {
				t.Fatalf("LoadLatest: %v", err)
			}
			if s.Epoch != 2 || info.Skipped != 1 {
				t.Fatalf("loaded epoch %d (skipped %d), want epoch 2 with 1 skip", s.Epoch, info.Skipped)
			}
			assertSnapshotsEqual(t, s, sampleSnapshot(2))
		})
	}
}

// TestDecodeRejectsHostileCounts guards the allocation bounds: a frame
// with a valid CRC but an absurd element count must fail cleanly.
func TestDecodeRejectsHostileCounts(t *testing.T) {
	// Build a valid frame, then rewrite the query count to 2^31 and
	// re-frame with a fresh CRC so only the count check can reject it.
	s := &Snapshot{Epoch: 1}
	b := Encode(s)
	payload := append([]byte(nil), b[headerSize:len(b)-trailerSize]...)
	le.PutUint32(payload[16:], 1<<31-1)
	hostile := append([]byte(nil), b[:headerSize]...)
	hostile = append(hostile, payload...)
	hostile = le.AppendUint32(hostile, crc32.ChecksumIEEE(payload))
	if _, err := Decode(hostile); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile count: err = %v, want ErrCorrupt", err)
	}
}
