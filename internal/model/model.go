// Package model provides SABER's calibrated performance model.
//
// The paper evaluates on 16 Xeon cores plus an NVIDIA Quadro K5200 behind
// PCIe 3.0. This reproduction has neither, so executors compute real
// results and then *pad* each task's wall time to the duration this model
// predicts for the paper's hardware (DESIGN.md §2). Padding uses sleeping,
// so any number of simulated processors overlap on however few physical
// cores exist; the relative performance surface — which processor wins for
// which query, where the crossovers sit — follows the model, which is
// calibrated against the paper's measured throughputs.
//
// Nothing else in the engine knows about the model: HLS scheduling, the
// throughput matrix, dispatching and result handling all observe ordinary
// wall-clock durations.
package model

import (
	"time"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/window"
)

// Params holds the calibrated constants. All per-unit costs are in
// nanoseconds at TimeScale == 1; Scale lets benchmarks trade fidelity for
// wall-clock time uniformly.
type Params struct {
	// TimeScale multiplies every modelled duration. 1.0 reproduces the
	// paper's magnitudes; smaller values shrink experiment runtime while
	// preserving every ratio.
	TimeScale float64

	// CPUBaseNs and CPUUnitNs model one CPU worker's per-tuple cost:
	// base + unit × complexity.
	CPUBaseNs float64
	CPUUnitNs float64

	// CPUFragNs models the CPU's per-window-fragment overhead (snapshot
	// and bookkeeping of the incremental computation).
	CPUFragNs float64

	// GPULaunchNs is the fixed kernel-launch + scheduling cost per task.
	GPULaunchNs float64

	// GPUBaseNs and GPUUnitNs model the GPGPU's per-tuple kernel cost:
	// base + unit × complexity, already divided by its parallelism.
	GPUBaseNs float64
	GPUUnitNs float64

	// GPUReduceNs is the GPGPU's cost per duplicated tuple visit in
	// windowed reductions: fragments are computed independently, so a
	// tuple in k overlapping windows is reduced k times (no incremental
	// computation on the GPGPU, §5.4).
	GPUReduceNs float64

	// PCIeNsPerByte models the DMA transfer cost in each direction
	// (≈0.45 ns/B ≈ 2.2 GB/s effective, matching the paper's observed
	// ceiling once both directions share the bus).
	PCIeNsPerByte float64

	// HostCopyNsPerByte models the managed-heap ↔ pinned-memory copies
	// (copyin/copyout stages).
	HostCopyNsPerByte float64

	// DispatchNsPerByte models the sequential dispatching stage; it caps
	// engine ingest (the paper's ~6 GB/s dispatcher bound).
	DispatchNsPerByte float64
}

// Default returns the paper-calibrated parameters (see DESIGN.md §2 for
// the derivation from Figures 8 and 10).
func Default() Params {
	return Params{
		TimeScale:         1.0,
		CPUBaseNs:         55,
		CPUUnitNs:         14,
		CPUFragNs:         140,
		GPULaunchNs:       30_000,
		GPUBaseNs:         2.0,
		GPUUnitNs:         0.2,
		GPUReduceNs:       0.05,
		PCIeNsPerByte:     0.45,
		HostCopyNsPerByte: 0.10,
		DispatchNsPerByte: 0.155,
	}
}

// Scaled returns a copy with TimeScale set.
func (p Params) Scaled(scale float64) Params {
	p.TimeScale = scale
	return p
}

func (p Params) dur(ns float64) time.Duration {
	return time.Duration(ns * p.TimeScale)
}

// QueryCost is the per-query complexity summary the model derives once at
// query registration.
type QueryCost struct {
	// Complexity counts operator work units applied per tuple: predicate
	// comparisons, projection expressions, aggregate updates.
	Complexity float64
	// WindowDup is the data-duplication factor of RStream operators on
	// the GPGPU: every tuple is processed once per window containing it
	// (size/slide), because GPGPU fragments are computed independently.
	// 1 for IStream operators and tumbling windows.
	WindowDup float64
	// FragsPerTuple is how many window fragments the CPU touches per
	// tuple (1/slide in tuples); drives the CPU's per-fragment overhead.
	FragsPerTuple float64
	// JoinWindowTuples is the opposing-window size for joins (per-tuple
	// comparisons against the other stream's window); 0 otherwise.
	JoinWindowTuples float64
}

// Analyze derives a QueryCost from a validated query. For time-based
// windows it assumes unit tuple density (one tuple per time unit), which
// holds for the synthetic workloads used in the paper's parameter sweeps.
func Analyze(q *query.Query) QueryCost {
	c := QueryCost{Complexity: 1, WindowDup: 1}

	if q.Where != nil {
		c.Complexity += float64(countCmps(q.Where))
	}
	// Projection arithmetic is far cheaper per node than predicate
	// evaluation (calibrated against Fig. 15's PROJ6* throughputs).
	for _, item := range q.Projection {
		c.Complexity += 0.1 * float64(countExprNodes(item.Expr))
	}
	for range q.Aggregates {
		c.Complexity += 2
	}
	if len(q.GroupBy) > 0 {
		c.Complexity += 3
	}

	w := q.Inputs[0].Window
	slideTuples := float64(1)
	if w.Kind != window.Unbounded && w.Slide > 0 {
		slideTuples = float64(w.Slide)
	}
	if q.IsAggregation() || q.Distinct {
		if w.Kind != window.Unbounded {
			c.WindowDup = float64(w.Size) / float64(w.Slide)
			c.FragsPerTuple = 1 / slideTuples
		}
	}
	if q.IsJoin() {
		if q.JoinPred != nil {
			c.Complexity += float64(countCmps(q.JoinPred))
		}
		if w.Kind != window.Unbounded {
			c.JoinWindowTuples = float64(w.Size)
			c.WindowDup = float64(w.Size) / float64(w.Slide)
		}
	}
	return c
}

func countCmps(p expr.Pred) int {
	switch v := p.(type) {
	case expr.Cmp:
		return 1
	case expr.And:
		n := 0
		for _, q := range v.Preds {
			n += countCmps(q)
		}
		return n
	case expr.Or:
		n := 0
		for _, q := range v.Preds {
			n += countCmps(q)
		}
		return n
	case expr.Not:
		return countCmps(v.P)
	}
	return 0
}

func countExprNodes(e expr.Expr) int {
	switch v := e.(type) {
	case expr.Arith:
		return 1 + countExprNodes(v.Left) + countExprNodes(v.Right)
	case expr.Neg:
		return 1 + countExprNodes(v.E)
	}
	return 1
}

// CPUTaskTime models one CPU worker executing a task of the given size.
// selectivity (0..1) scales the complexity actually applied per tuple for
// adaptive workloads (Fig. 16); pass 1 when unknown.
func (p Params) CPUTaskTime(c QueryCost, tuples int, selectivity float64) time.Duration {
	perTuple := p.CPUBaseNs + p.CPUUnitNs*c.Complexity*selectivity
	if c.JoinWindowTuples > 0 {
		perTuple += p.CPUUnitNs * c.JoinWindowTuples * 0.5
	}
	ns := float64(tuples) * (perTuple + p.CPUFragNs*c.FragsPerTuple)
	return p.dur(ns)
}

// GPUKernelTime models the execute stage for a task: launch plus per-tuple
// kernel cost, plus the per-visit reduction cost times the window overlap
// (the GPGPU does not compute incrementally across overlapping windows).
func (p Params) GPUKernelTime(c QueryCost, tuples int, selectivity float64) time.Duration {
	perTuple := p.GPUBaseNs + p.GPUUnitNs*c.Complexity*selectivity
	if c.WindowDup > 1 {
		perTuple += p.GPUReduceNs * c.WindowDup
	}
	if c.JoinWindowTuples > 0 {
		perTuple += p.GPUUnitNs * c.JoinWindowTuples * 8
	}
	return p.dur(p.GPULaunchNs + float64(tuples)*perTuple)
}

// PCIeTime models one DMA transfer of n bytes.
func (p Params) PCIeTime(n int) time.Duration {
	return p.dur(float64(n) * p.PCIeNsPerByte)
}

// HostCopyTime models one heap↔pinned copy of n bytes.
func (p Params) HostCopyTime(n int) time.Duration {
	return p.dur(float64(n) * p.HostCopyNsPerByte)
}

// DispatchTime models the sequential dispatcher handling n ingest bytes.
func (p Params) DispatchTime(n int) time.Duration {
	return p.dur(float64(n) * p.DispatchNsPerByte)
}

// Pad sleeps whatever remains of target beyond the time already spent
// since start. It returns the total elapsed time.
func Pad(start time.Time, target time.Duration) time.Duration {
	elapsed := time.Since(start)
	if remaining := target - elapsed; remaining > 0 {
		time.Sleep(remaining)
		return target
	}
	return elapsed
}
