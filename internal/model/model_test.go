package model

import (
	"testing"
	"time"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/window"
)

var syn = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "a", Type: schema.Float32},
	schema.Field{Name: "b", Type: schema.Int32},
)

func selectN(t *testing.T, n int) *query.Query {
	t.Helper()
	var preds []expr.Pred
	for i := 0; i < n; i++ {
		preds = append(preds, expr.Cmp{Op: expr.Gt, Left: expr.Col("a"), Right: expr.FloatConst(float64(i))})
	}
	return query.NewBuilder("sel").
		From("S", syn, window.NewCount(1024, 1024)).
		Where(expr.Or{Preds: preds}).
		MustBuild()
}

// TestCrossoverShape locks the central Fig. 10a property into the model:
// the CPU wins for few predicates, the GPGPU wins for many.
func TestCrossoverShape(t *testing.T) {
	p := Default()
	const workers = 15
	const tuples = 32768 // 1 MB of 32-byte tuples
	const bytes = tuples * 32

	cpuThroughput := func(n int) float64 {
		c := Analyze(selectN(t, n))
		perWorker := p.CPUTaskTime(c, tuples, 1)
		return float64(bytes) * workers / perWorker.Seconds()
	}
	gpuThroughput := func(n int) float64 {
		c := Analyze(selectN(t, n))
		// Pipeline bottleneck: max of kernel and each transfer stage.
		k := p.GPUKernelTime(c, tuples, 1)
		tr := p.PCIeTime(bytes)
		b := k
		if tr > b {
			b = tr
		}
		return float64(bytes) / b.Seconds()
	}

	if cpuThroughput(1) < gpuThroughput(1) {
		t.Errorf("SELECT1: CPU %.2g should beat GPU %.2g", cpuThroughput(1), gpuThroughput(1))
	}
	if cpuThroughput(64) > gpuThroughput(64) {
		t.Errorf("SELECT64: GPU %.2g should beat CPU %.2g", gpuThroughput(64), cpuThroughput(64))
	}
	// Monotone decline on the CPU, roughly flat on the GPGPU.
	if cpuThroughput(64) > cpuThroughput(4)/4 {
		t.Errorf("CPU throughput should collapse with predicate count: %g vs %g", cpuThroughput(64), cpuThroughput(4))
	}
	if gpuThroughput(64) < gpuThroughput(1)*0.5 {
		t.Errorf("GPU throughput should stay near-flat: %g vs %g", gpuThroughput(64), gpuThroughput(1))
	}
}

func TestAnalyzeComplexity(t *testing.T) {
	q1 := selectN(t, 1)
	q8 := selectN(t, 8)
	c1, c8 := Analyze(q1), Analyze(q8)
	if c8.Complexity-c1.Complexity != 7 {
		t.Errorf("complexity delta = %g", c8.Complexity-c1.Complexity)
	}
	if c1.WindowDup != 1 || c1.FragsPerTuple != 0 {
		t.Errorf("selection cost = %+v", c1)
	}
}

func TestAnalyzeAggregation(t *testing.T) {
	q := query.NewBuilder("agg").
		From("S", syn, window.NewCount(1024, 32)).
		Aggregate(query.Avg, expr.Col("a"), "m").
		GroupBy("b").
		MustBuild()
	c := Analyze(q)
	if c.WindowDup != 32 { // 1024/32
		t.Errorf("WindowDup = %g", c.WindowDup)
	}
	if c.FragsPerTuple != 1.0/32 {
		t.Errorf("FragsPerTuple = %g", c.FragsPerTuple)
	}
	if c.Complexity < 5 { // base 1 + agg 2 + grouped 3
		t.Errorf("Complexity = %g", c.Complexity)
	}
}

func TestAnalyzeJoin(t *testing.T) {
	right := schema.MustNew(schema.Field{Name: "timestamp", Type: schema.Int64}, schema.Field{Name: "w", Type: schema.Int32})
	q := query.NewBuilder("j").
		FromAs("L", "L", syn, window.NewCount(128, 128)).
		FromAs("R", "R", right, window.NewCount(128, 128)).
		Join(expr.Cmp{Op: expr.Eq, Left: expr.Col("b"), Right: expr.Col("w")}).
		MustBuild()
	c := Analyze(q)
	if c.JoinWindowTuples != 128 {
		t.Errorf("JoinWindowTuples = %g", c.JoinWindowTuples)
	}
}

// TestSlideShapes locks the Fig. 11 property: selection time is
// slide-invariant; GPU aggregation work falls as the slide grows.
func TestSlideShapes(t *testing.T) {
	p := Default()
	aggWith := func(slide int64) QueryCost {
		q := query.NewBuilder("agg").
			From("S", syn, window.NewCount(1024, slide)).
			Aggregate(query.Avg, expr.Col("a"), "m").
			MustBuild()
		return Analyze(q)
	}
	small := p.GPUKernelTime(aggWith(1), 4096, 1)
	large := p.GPUKernelTime(aggWith(1024), 4096, 1)
	if small <= large {
		t.Errorf("GPU agg with 1-tuple slide (%v) must cost more than tumbling (%v)", small, large)
	}
	selCost := Analyze(selectN(t, 10))
	if selCost.WindowDup != 1 {
		t.Error("selection must not duplicate work across windows")
	}
}

func TestTimeScale(t *testing.T) {
	p := Default()
	half := p.Scaled(0.5)
	c := QueryCost{Complexity: 4, WindowDup: 1}
	if half.CPUTaskTime(c, 1000, 1)*2 != p.CPUTaskTime(c, 1000, 1) {
		t.Error("TimeScale not linear")
	}
	if half.TimeScale != 0.5 || p.TimeScale != 1.0 {
		t.Error("Scaled mutated receiver")
	}
}

func TestDispatchAndCopies(t *testing.T) {
	p := Default()
	if p.DispatchTime(1<<30) <= 0 || p.PCIeTime(1<<20) <= 0 || p.HostCopyTime(1<<20) <= 0 {
		t.Error("non-positive modelled durations")
	}
	// Dispatcher bound ≈ 6.5 GB/s: 1 GB should take ~150 ms.
	d := p.DispatchTime(1 << 30)
	if d < 100*time.Millisecond || d > 250*time.Millisecond {
		t.Errorf("dispatch of 1 GB = %v", d)
	}
}

func TestPad(t *testing.T) {
	start := time.Now()
	got := Pad(start, 30*time.Millisecond)
	if got < 30*time.Millisecond {
		t.Errorf("Pad returned %v", got)
	}
	if real := time.Since(start); real < 25*time.Millisecond {
		t.Errorf("Pad slept only %v", real)
	}
	// Already-exceeded target: no sleep.
	start2 := time.Now().Add(-time.Second)
	if got := Pad(start2, time.Millisecond); got < time.Second {
		t.Errorf("Pad with exceeded target = %v", got)
	}
}

func TestSelectivityScalesCost(t *testing.T) {
	p := Default()
	c := Analyze(selectN(t, 500))
	cheap := p.CPUTaskTime(c, 10000, 0.01)
	dear := p.CPUTaskTime(c, 10000, 1.0)
	if dear < 10*cheap {
		t.Errorf("selectivity scaling too weak: %v vs %v", dear, cheap)
	}
}
