package query

import (
	"strings"
	"testing"

	"saber/internal/expr"
	"saber/internal/schema"
	"saber/internal/window"
)

var taskEvents = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "jobId", Type: schema.Int64},
	schema.Field{Name: "eventType", Type: schema.Int32},
	schema.Field{Name: "category", Type: schema.Int32},
	schema.Field{Name: "cpu", Type: schema.Float32},
)

func TestCM1Shape(t *testing.T) {
	// CM1: select timestamp, category, sum(cpu) group by category.
	q, err := NewBuilder("CM1").
		From("TaskEvents", taskEvents, window.NewTime(60, 1)).
		Aggregate(Sum, expr.Col("cpu"), "totalCpu").
		GroupBy("category").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	out := q.OutputSchema()
	want := []string{"timestamp", "category", "totalCpu"}
	if out.NumFields() != 3 {
		t.Fatalf("output schema = %s", out)
	}
	for i, n := range want {
		if out.Field(i).Name != n {
			t.Errorf("field %d = %q, want %q", i, out.Field(i).Name, n)
		}
	}
	if out.Field(2).Type != schema.Float32 {
		t.Errorf("sum type = %v", out.Field(2).Type)
	}
	if !q.IsAggregation() || q.IsJoin() {
		t.Error("classification wrong")
	}
}

func TestCM2Shape(t *testing.T) {
	q, err := NewBuilder("CM2").
		From("TaskEvents", taskEvents, window.NewTime(60, 1)).
		Where(expr.Cmp{Op: expr.Eq, Left: expr.Col("eventType"), Right: expr.IntConst(1)}).
		Aggregate(Avg, expr.Col("cpu"), "avgCpu").
		GroupBy("jobId").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if q.OutputSchema().Field(1).Type != schema.Int64 {
		t.Errorf("jobId type = %v", q.OutputSchema().Field(1).Type)
	}
}

func TestProjectionQuery(t *testing.T) {
	q, err := NewBuilder("LRB1").
		From("PosSpeedStr", lrbSchema(t), window.NewUnbounded()).
		Select("timestamp", "vehicle", "speed").
		SelectAs(expr.Arith{Op: expr.Div, Left: expr.Col("position"), Right: expr.IntConst(5280)}, "segment").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	out := q.OutputSchema()
	if out.NumFields() != 4 || out.Field(3).Name != "segment" {
		t.Fatalf("output = %s", out)
	}
	// position is int32, 5280 is int64 const: promoted to int64.
	if out.Field(3).Type != schema.Int64 {
		t.Errorf("segment type = %v", out.Field(3).Type)
	}
}

func lrbSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "vehicle", Type: schema.Int32},
		schema.Field{Name: "speed", Type: schema.Float32},
		schema.Field{Name: "highway", Type: schema.Int32},
		schema.Field{Name: "lane", Type: schema.Int32},
		schema.Field{Name: "direction", Type: schema.Int32},
		schema.Field{Name: "position", Type: schema.Int32},
	)
}

func TestJoinQuery(t *testing.T) {
	global := schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "globalAvgLoad", Type: schema.Float32},
	)
	local := schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "house", Type: schema.Int32},
		schema.Field{Name: "localAvgLoad", Type: schema.Float32},
	)
	q, err := NewBuilder("SG3join").
		FromAs("LocalLoadStr", "L", local, window.NewTime(1, 1)).
		FromAs("GlobalLoadStr", "G", global, window.NewTime(1, 1)).
		Join(expr.Cmp{Op: expr.Gt, Left: expr.Col("localAvgLoad"), Right: expr.Col("globalAvgLoad")}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsJoin() {
		t.Fatal("not classified as join")
	}
	out := q.OutputSchema()
	// Full concatenation: L fields then G fields, timestamp deduped.
	if out.NumFields() != 5 {
		t.Fatalf("output = %s", out)
	}
	if out.IndexOf("G_timestamp") < 0 {
		t.Errorf("missing prefixed right timestamp in %s", out)
	}
	js, err := q.JoinedSchema()
	if err != nil || !js.Equal(out) {
		t.Errorf("JoinedSchema = %v, %v", js, err)
	}
}

func TestValidationErrors(t *testing.T) {
	noTS := schema.MustNew(schema.Field{Name: "x", Type: schema.Int32})
	mk := func(mut func(b *Builder)) error {
		b := NewBuilder("bad").From("S", taskEvents, window.NewCount(4, 2))
		mut(b)
		_, err := b.Build()
		return err
	}
	cases := []struct {
		name string
		err  error
	}{
		{"no inputs", func() error { _, err := NewBuilder("q").Build(); return err }()},
		{"no name", func() error {
			_, err := NewBuilder("").From("S", taskEvents, window.NewCount(1, 1)).Build()
			return err
		}()},
		{"no timestamp", func() error {
			_, err := NewBuilder("q").From("S", noTS, window.NewCount(1, 1)).Build()
			return err
		}()},
		{"bad window", mk(func(b *Builder) { b.q.Inputs[0].Window = window.NewCount(0, 0) })},
		{"join pred single input", mk(func(b *Builder) { b.Join(expr.Cmp{Op: expr.Eq, Left: expr.Col("cpu"), Right: expr.Col("cpu")}) })},
		{"groupby without agg", mk(func(b *Builder) { b.GroupBy("category") })},
		{"having without agg", mk(func(b *Builder) { b.Having(expr.Cmp{Op: expr.Gt, Left: expr.Col("cpu"), Right: expr.IntConst(0)}) })},
		{"bad where column", mk(func(b *Builder) { b.Where(expr.Cmp{Op: expr.Eq, Left: expr.Col("zzz"), Right: expr.IntConst(0)}) })},
		{"bad groupby column", mk(func(b *Builder) { b.Aggregate(Sum, expr.Col("cpu"), "s").GroupBy("zzz") })},
		{"bad agg arg", mk(func(b *Builder) { b.Aggregate(Sum, expr.Col("zzz"), "s") })},
		{"sum without arg", mk(func(b *Builder) { b.Aggregate(Sum, nil, "s") })},
		{"expr without alias", mk(func(b *Builder) {
			b.q.Projection = append(b.q.Projection, ProjectionItem{Expr: expr.Arith{Op: expr.Add, Left: expr.Col("cpu"), Right: expr.IntConst(1)}})
		})},
		{"bad having column", mk(func(b *Builder) {
			b.Aggregate(Sum, expr.Col("cpu"), "s").Having(expr.Cmp{Op: expr.Gt, Left: expr.Col("nope"), Right: expr.IntConst(0)})
		})},
		{"distinct with agg", mk(func(b *Builder) { b.Distinct().Aggregate(Sum, expr.Col("cpu"), "s") })},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestHavingResolvesAgainstOutput(t *testing.T) {
	// LRB3-style: having avgSpeed < 40 where avgSpeed is the agg output.
	q, err := NewBuilder("LRB3").
		From("SegSpeedStr", lrbSchema(t), window.NewTime(300, 1)).
		Aggregate(Avg, expr.Col("speed"), "avgSpeed").
		GroupBy("highway", "direction").
		Having(expr.Cmp{Op: expr.Lt, Left: expr.Col("avgSpeed"), Right: expr.FloatConst(40)}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if q.Having == nil {
		t.Fatal("having dropped")
	}
}

func TestCountAllOutput(t *testing.T) {
	q, err := NewBuilder("cnt").
		From("S", taskEvents, window.NewCount(8, 8)).
		CountAll("n").
		GroupBy("category").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	f := q.OutputSchema().Field(2)
	if f.Name != "n" || f.Type != schema.Int64 {
		t.Errorf("count field = %+v", f)
	}
}

func TestDefaultAggregateName(t *testing.T) {
	a := Aggregate{Func: Max, Arg: expr.Col("cpu")}
	if a.Name() != "max" {
		t.Errorf("Name = %q", a.Name())
	}
	if !strings.Contains(a.String(), "max(cpu)") {
		t.Errorf("String = %q", a.String())
	}
	c := Aggregate{Func: Count}
	if !strings.Contains(c.String(), "count(*)") {
		t.Errorf("String = %q", c.String())
	}
}

func TestBuilderReuse(t *testing.T) {
	b := NewBuilder("q").From("S", taskEvents, window.NewCount(4, 4)).Select("timestamp")
	q1 := b.MustBuild()
	q2 := b.MustBuild()
	if q1 == q2 {
		t.Fatal("Build returned shared query")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	NewBuilder("").MustBuild()
}

func TestQueryString(t *testing.T) {
	q := NewBuilder("CM1").
		From("TaskEvents", taskEvents, window.NewTime(60, 1)).
		Aggregate(Sum, expr.Col("cpu"), "totalCpu").
		GroupBy("category").
		MustBuild()
	s := q.String()
	for _, want := range []string{"select", "sum(cpu) as totalCpu", "TaskEvents", "range 60 slide 1", "group by category"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	sel := NewBuilder("sel").
		From("S", taskEvents, window.NewCount(4, 2)).
		Where(expr.Cmp{Op: expr.Gt, Left: expr.Col("cpu"), Right: expr.FloatConst(0.5)}).
		MustBuild()
	if !strings.Contains(sel.String(), "select * from") || !strings.Contains(sel.String(), "where") {
		t.Errorf("String = %q", sel.String())
	}
}

func TestProjectionItemName(t *testing.T) {
	if (ProjectionItem{Expr: expr.Col("a")}).Name() != "a" {
		t.Error("column name not defaulted")
	}
	if (ProjectionItem{Expr: expr.IntConst(1)}).Name() != "" {
		t.Error("computed item has implicit name")
	}
	if (ProjectionItem{Expr: expr.IntConst(1), As: "one"}).Name() != "one" {
		t.Error("alias ignored")
	}
}
