package query

import (
	"fmt"

	"saber/internal/schema"
)

// UDF is a user-defined operator function (paper §2.4): bespoke
// computation per window, decomposed — like the built-in operators — into
// a fragment operator function, a pairwise assembly (merge) function and
// a finalisation step, so UDF queries enjoy the same data-parallel
// execution, incremental assembly and hybrid scheduling as relational
// operators.
//
// A UDF's partial results are opaque byte blobs. ProcessFragment receives
// one window fragment's raw tuples per input stream and returns the
// fragment's partial; Merge folds two partials (in query-task order);
// Finalize renders a closed window's partial into output tuples of Out.
// If the computation needs raw tuples across task boundaries (as an
// n-ary partition join does), the partial must carry them.
type UDF struct {
	// Name identifies the UDF in plans and logs.
	Name string
	// Out is the output tuple schema.
	Out *schema.Schema
	// ProcessFragment computes a window fragment's partial from the raw
	// fragment tuples (one packed slice per input; the slices alias
	// engine buffers and must not be retained).
	ProcessFragment func(in [][]byte) []byte
	// Merge combines the accumulated partial with the next fragment's,
	// returning the new accumulated partial (may reuse acc's storage).
	Merge func(acc, next []byte) []byte
	// Finalize renders the final partial into packed output tuples.
	Finalize func(partial []byte) []byte
}

// Validate checks the UDF's shape.
func (u *UDF) Validate() error {
	if u.Name == "" {
		return fmt.Errorf("udf: missing name")
	}
	if u.Out == nil {
		return fmt.Errorf("udf %s: missing output schema", u.Name)
	}
	if u.ProcessFragment == nil || u.Merge == nil || u.Finalize == nil {
		return fmt.Errorf("udf %s: ProcessFragment, Merge and Finalize are all required", u.Name)
	}
	return nil
}
