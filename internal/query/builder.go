package query

import (
	"saber/internal/expr"
	"saber/internal/schema"
	"saber/internal/window"
)

// Builder assembles a Query fluently. It never fails mid-chain; errors
// surface from Build, which validates the finished query.
type Builder struct {
	q Query
}

// NewBuilder starts a query with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{q: Query{Name: name}}
}

// From adds an input stream.
func (b *Builder) From(name string, s *schema.Schema, w window.Def) *Builder {
	b.q.Inputs = append(b.q.Inputs, Input{Name: name, Schema: s, Window: w})
	return b
}

// FromAs adds an aliased input stream.
func (b *Builder) FromAs(name, alias string, s *schema.Schema, w window.Def) *Builder {
	b.q.Inputs = append(b.q.Inputs, Input{Name: name, Alias: alias, Schema: s, Window: w})
	return b
}

// Where sets the selection predicate.
func (b *Builder) Where(p expr.Pred) *Builder {
	b.q.Where = p
	return b
}

// Join sets the θ-join predicate (requires two inputs).
func (b *Builder) Join(p expr.Pred) *Builder {
	b.q.JoinPred = p
	return b
}

// Select appends plain column projections.
func (b *Builder) Select(cols ...string) *Builder {
	for _, c := range cols {
		b.q.Projection = append(b.q.Projection, ProjectionItem{Expr: expr.Col(c)})
	}
	return b
}

// SelectAs appends a computed projection with an output name.
func (b *Builder) SelectAs(e expr.Expr, as string) *Builder {
	b.q.Projection = append(b.q.Projection, ProjectionItem{Expr: e, As: as})
	return b
}

// Distinct deduplicates projection output within each window.
func (b *Builder) Distinct() *Builder {
	b.q.Distinct = true
	return b
}

// Aggregate appends an aggregation function.
func (b *Builder) Aggregate(f AggFunc, arg expr.Expr, as string) *Builder {
	b.q.Aggregates = append(b.q.Aggregates, Aggregate{Func: f, Arg: arg, As: as})
	return b
}

// CountAll appends count(*).
func (b *Builder) CountAll(as string) *Builder {
	return b.Aggregate(Count, nil, as)
}

// GroupBy sets the grouping columns.
func (b *Builder) GroupBy(cols ...string) *Builder {
	for _, c := range cols {
		b.q.GroupBy = append(b.q.GroupBy, expr.Col(c))
	}
	return b
}

// Having sets the post-aggregation filter.
func (b *Builder) Having(p expr.Pred) *Builder {
	b.q.Having = p
	return b
}

// UDF installs a user-defined operator function in place of the
// relational operators.
func (b *Builder) UDF(u *UDF) *Builder {
	b.q.UDF = u
	return b
}

// Build validates and returns the query.
func (b *Builder) Build() (*Query, error) {
	q := b.q // copy so the builder can be reused
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &q, nil
}

// MustBuild is Build that panics on error; for tests and workloads with
// statically known-good queries.
func (b *Builder) MustBuild() *Query {
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	return q
}
