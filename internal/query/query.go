// Package query defines SABER's logical query model (paper §2.4): window-
// based continuous queries over relational streams, composed of projection
// (π), selection (σ), aggregation (α, with GROUP BY and HAVING) and
// windowed θ-join (⋈) operators, plus user-defined window functions.
//
// A Query is a declarative description; planning/compilation into batch,
// fragment and assembly operator functions happens in internal/exec (CPU)
// and internal/gpu (GPGPU).
package query

import (
	"fmt"
	"strings"

	"saber/internal/expr"
	"saber/internal/schema"
	"saber/internal/window"
)

// AggFunc identifies an aggregation function. All of them decompose into
// commutative/associative partial aggregates, which is what lets fragment
// results be assembled pairwise (paper §3).
type AggFunc uint8

// Aggregation functions.
const (
	Count AggFunc = iota
	Sum
	Avg
	Min
	Max
)

// String names the function as in CQL.
func (f AggFunc) String() string {
	return [...]string{"count", "sum", "avg", "min", "max"}[f]
}

// Aggregate is one aggregation in a SELECT list, e.g. sum(cpu) as totalCpu.
type Aggregate struct {
	Func AggFunc
	// Arg is the aggregated expression; nil only for Count.
	Arg expr.Expr
	// As names the output column. Defaults to the function name.
	As string
}

// Name returns the output column name.
func (a Aggregate) Name() string {
	if a.As != "" {
		return a.As
	}
	return a.Func.String()
}

func (a Aggregate) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	s := fmt.Sprintf("%s(%s)", a.Func, arg)
	if a.As != "" {
		s += " as " + a.As
	}
	return s
}

// ProjectionItem is one non-aggregate SELECT list entry.
type ProjectionItem struct {
	Expr expr.Expr
	// As names the output column. Defaults to the expression's column name
	// for plain column references.
	As string
}

// Name returns the output column name, or "" when the item needs an
// explicit alias (computed expressions).
func (p ProjectionItem) Name() string {
	if p.As != "" {
		return p.As
	}
	if c, ok := p.Expr.(expr.Column); ok {
		return c.Name
	}
	return ""
}

// Input is one stream source of a query.
type Input struct {
	// Name is the stream's registered name.
	Name string
	// Alias is the optional FROM-clause alias used in qualified columns.
	Alias string
	// Schema is the stream's tuple schema.
	Schema *schema.Schema
	// Window is the window definition applied to this input.
	Window window.Def
}

func (in Input) alias() string {
	if in.Alias != "" {
		return in.Alias
	}
	return in.Name
}

// Query is a window-based continuous query over one or two input streams.
// Evaluation order: WHERE selection → join (two inputs) → aggregation with
// GROUP BY → HAVING → projection. Queries with an aggregation emit with
// RStream semantics (one result set per window); others with IStream
// semantics (paper §2.4 default combinations).
type Query struct {
	// Name identifies the query; used in scheduling and metrics.
	Name string
	// Inputs holds one or two sources.
	Inputs []Input
	// Where is the optional selection predicate (σ), applied per tuple
	// before any join or aggregation.
	Where expr.Pred
	// JoinPred is the θ-join predicate; required iff there are two inputs.
	JoinPred expr.Pred
	// Projection lists non-aggregate output expressions. For aggregation
	// queries it must be empty or list exactly the GROUP BY columns (plus
	// timestamp), as in the paper's Appendix A queries.
	Projection []ProjectionItem
	// Distinct deduplicates projection output rows within a window.
	Distinct bool
	// Aggregates lists aggregation functions; empty for π/σ/⋈ queries.
	Aggregates []Aggregate
	// GroupBy lists grouping columns for the aggregation.
	GroupBy []expr.Column
	// Having filters aggregation results; it references the aggregation
	// output schema (group columns and aggregate names).
	Having expr.Pred
	// UDF replaces the relational operator function with a user-defined
	// one (paper §2.4); it is mutually exclusive with Where/Projection/
	// Aggregates/JoinPred.
	UDF *UDF

	// output is the validated output schema, set by Validate.
	output *schema.Schema
}

// HasGroupColumn reports whether name is one of the GROUP BY columns.
func (q *Query) HasGroupColumn(name string) bool {
	for _, g := range q.GroupBy {
		if g.Name == name {
			return true
		}
	}
	return false
}

// IsJoin reports whether the query joins two inputs.
func (q *Query) IsJoin() bool { return len(q.Inputs) == 2 }

// IsAggregation reports whether the query aggregates.
func (q *Query) IsAggregation() bool { return len(q.Aggregates) > 0 }

// OutputSchema returns the query's result schema. Validate must have
// succeeded first.
func (q *Query) OutputSchema() *schema.Schema { return q.output }

// Resolver returns the column resolver for the query's pre-aggregation
// stage (input tuples).
func (q *Query) Resolver() expr.Resolver {
	if q.IsJoin() {
		return expr.PairResolver{
			Left: q.Inputs[0].Schema, Right: q.Inputs[1].Schema,
			LeftAlias: q.Inputs[0].alias(), RightAlias: q.Inputs[1].alias(),
		}
	}
	return expr.SingleResolver{Schema: q.Inputs[0].Schema, Alias: q.Inputs[0].alias()}
}

// JoinedSchema returns the concatenated schema a join produces before
// projection; right-side name collisions get the right alias as prefix.
func (q *Query) JoinedSchema() (*schema.Schema, error) {
	if !q.IsJoin() {
		return q.Inputs[0].Schema, nil
	}
	return q.Inputs[0].Schema.Concat(q.Inputs[1].Schema, q.Inputs[1].alias()+"_")
}

// Validate checks the query's shape, resolves every expression, and
// computes the output schema.
func (q *Query) Validate() error {
	if q.Name == "" {
		return fmt.Errorf("query: missing name")
	}
	if len(q.Inputs) == 0 || len(q.Inputs) > 2 {
		return fmt.Errorf("query %s: %d inputs, want 1 or 2", q.Name, len(q.Inputs))
	}
	for i, in := range q.Inputs {
		if in.Schema == nil {
			return fmt.Errorf("query %s: input %d has no schema", q.Name, i)
		}
		if !in.Schema.HasTimestamp() {
			return fmt.Errorf("query %s: input %q does not start with a long timestamp", q.Name, in.Name)
		}
		if err := in.Window.Validate(); err != nil {
			return fmt.Errorf("query %s input %q: %w", q.Name, in.Name, err)
		}
	}
	if q.UDF != nil {
		if err := q.UDF.Validate(); err != nil {
			return fmt.Errorf("query %s: %w", q.Name, err)
		}
		if q.Where != nil || q.JoinPred != nil || len(q.Projection) > 0 ||
			len(q.Aggregates) > 0 || len(q.GroupBy) > 0 || q.Having != nil || q.Distinct {
			return fmt.Errorf("query %s: UDF queries cannot combine relational operators", q.Name)
		}
		if !q.UDF.Out.HasTimestamp() {
			return fmt.Errorf("query %s: UDF output must start with a long timestamp", q.Name)
		}
		q.output = q.UDF.Out
		return nil
	}
	if q.IsJoin() != (q.JoinPred != nil) {
		return fmt.Errorf("query %s: join predicate and two inputs must come together", q.Name)
	}
	if q.IsJoin() && q.IsAggregation() {
		return fmt.Errorf("query %s: join plus aggregation in one query is unsupported; chain two queries", q.Name)
	}
	if q.Distinct && q.IsAggregation() {
		return fmt.Errorf("query %s: distinct with aggregation is unsupported", q.Name)
	}
	if !q.IsAggregation() && (len(q.GroupBy) > 0 || q.Having != nil) {
		return fmt.Errorf("query %s: GROUP BY/HAVING require an aggregation", q.Name)
	}

	res := q.Resolver()
	if q.Where != nil {
		if _, err := expr.CompilePred(q.Where, res); err != nil {
			return fmt.Errorf("query %s where: %w", q.Name, err)
		}
	}
	if q.JoinPred != nil {
		if _, err := expr.CompilePred(q.JoinPred, res); err != nil {
			return fmt.Errorf("query %s join: %w", q.Name, err)
		}
	}

	out, err := q.computeOutputSchema(res)
	if err != nil {
		return err
	}
	q.output = out

	if q.Having != nil {
		havingRes := expr.SingleResolver{Schema: out}
		if _, err := expr.CompilePred(q.Having, havingRes); err != nil {
			return fmt.Errorf("query %s having: %w", q.Name, err)
		}
	}
	return nil
}

func (q *Query) computeOutputSchema(res expr.Resolver) (*schema.Schema, error) {
	if q.IsAggregation() {
		// Canonical aggregation output: timestamp, group columns, one
		// column per aggregate (Appendix A shape).
		fields := []schema.Field{{Name: "timestamp", Type: schema.Int64}}
		for _, g := range q.GroupBy {
			_, fi, s, err := res.Resolve(g)
			if err != nil {
				return nil, fmt.Errorf("query %s group by: %w", q.Name, err)
			}
			fields = append(fields, schema.Field{Name: g.Name, Type: s.Field(fi).Type})
		}
		for _, a := range q.Aggregates {
			if a.Func != Count {
				if a.Arg == nil {
					return nil, fmt.Errorf("query %s: %s requires an argument", q.Name, a.Func)
				}
				if _, err := expr.CompileNum(a.Arg, res); err != nil {
					return nil, fmt.Errorf("query %s aggregate %s: %w", q.Name, a, err)
				}
			}
			typ := schema.Float32
			if a.Func == Count {
				typ = schema.Int64
			}
			fields = append(fields, schema.Field{Name: a.Name(), Type: typ})
		}
		s, err := schema.New(fields...)
		if err != nil {
			return nil, fmt.Errorf("query %s output: %w", q.Name, err)
		}
		return s, nil
	}

	// Projection (possibly over a join). An empty projection selects all
	// columns of the (joined) input.
	base, err := q.JoinedSchema()
	if err != nil {
		return nil, fmt.Errorf("query %s: %w", q.Name, err)
	}
	if len(q.Projection) == 0 {
		return base, nil
	}
	fields := make([]schema.Field, 0, len(q.Projection))
	for i, item := range q.Projection {
		p, err := expr.CompileNum(item.Expr, res)
		if err != nil {
			return nil, fmt.Errorf("query %s projection %d: %w", q.Name, i, err)
		}
		name := item.Name()
		if name == "" {
			return nil, fmt.Errorf("query %s projection %d: computed expression needs an alias", q.Name, i)
		}
		fields = append(fields, schema.Field{Name: name, Type: p.Type()})
	}
	s, err := schema.New(fields...)
	if err != nil {
		return nil, fmt.Errorf("query %s output: %w", q.Name, err)
	}
	return s, nil
}

// String renders the query roughly as CQL, for logs and debugging.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("select ")
	if q.Distinct {
		b.WriteString("distinct ")
	}
	var items []string
	for _, p := range q.Projection {
		s := p.Expr.String()
		if p.As != "" {
			s += " as " + p.As
		}
		items = append(items, s)
	}
	for _, a := range q.Aggregates {
		items = append(items, a.String())
	}
	if len(items) == 0 {
		items = []string{"*"}
	}
	b.WriteString(strings.Join(items, ", "))
	b.WriteString(" from ")
	var srcs []string
	for _, in := range q.Inputs {
		s := fmt.Sprintf("%s [%s]", in.Name, windowSpec(in.Window))
		if in.Alias != "" {
			s += " as " + in.Alias
		}
		srcs = append(srcs, s)
	}
	b.WriteString(strings.Join(srcs, ", "))
	if q.Where != nil {
		b.WriteString(" where " + q.Where.String())
	}
	if q.JoinPred != nil {
		b.WriteString(" where " + q.JoinPred.String())
	}
	if len(q.GroupBy) > 0 {
		var cols []string
		for _, c := range q.GroupBy {
			cols = append(cols, c.String())
		}
		b.WriteString(" group by " + strings.Join(cols, ", "))
	}
	if q.Having != nil {
		b.WriteString(" having " + q.Having.String())
	}
	return b.String()
}

func windowSpec(d window.Def) string {
	switch d.Kind {
	case window.Unbounded:
		return "range unbounded"
	case window.Time:
		return fmt.Sprintf("range %d slide %d", d.Size, d.Slide)
	default:
		return fmt.Sprintf("rows %d slide %d", d.Size, d.Slide)
	}
}
