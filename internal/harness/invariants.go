package harness

import (
	"fmt"
	"sync"

	"saber/internal/schema"
)

// streamChecker validates one query's output stream incrementally as the
// engine's drain emits chunks, and once more at end of stream. Checkers
// verify machine-checkable invariants, never golden outputs.
type streamChecker interface {
	// consume validates the next ordered chunk of packed output tuples.
	// The engine serialises sink calls (one drainer at a time), but
	// implementations lock anyway so a broken drain that calls the sink
	// concurrently corrupts no checker state and still surfaces as an
	// invariant violation rather than a checker race.
	consume(rows []byte)
	// finish validates the end-of-stream invariants given the number of
	// tuples fed to the query and the input fingerprint.
	finish(tuplesIn int64, fingerprint int64)
	// tuplesOut returns the number of output tuples seen.
	tuplesOut() int64
	// violations returns the recorded invariant violations.
	violations() []error
}

// violationLog caps recorded violations so a systemic failure reports the
// first occurrences instead of flooding memory.
type violationLog struct {
	errs    []error
	dropped int
}

const maxViolations = 16

func (l *violationLog) addf(format string, args ...any) {
	if len(l.errs) >= maxViolations {
		l.dropped++
		return
	}
	l.errs = append(l.errs, fmt.Errorf(format, args...))
}

func (l *violationLog) list() []error {
	if l.dropped > 0 {
		return append(l.errs[:len(l.errs):len(l.errs)],
			fmt.Errorf("... and %d further violations suppressed", l.dropped))
	}
	return l.errs
}

// passthroughChecker verifies the identity workloads (passthrough,
// jitter): the output must be the input stream, exactly once, in order.
//
//   - tuple integrity: every output tuple's checksum field matches its
//     content (catches torn reads, buffer corruption, wrap-around bugs);
//   - exactly-once + total order: the seq field must count 0,1,2,...
//     with no gap, repeat or inversion (catches drops, duplicates and
//     reordering at the first divergent tuple);
//   - timestamp monotonicity: non-decreasing across the whole stream;
//   - conservation: the XOR of output tuple checksums equals the input
//     fingerprint and the tuple count equals the input count.
type passthroughChecker struct {
	mu          sync.Mutex
	log         violationLog
	nextSeq     int64
	lastTS      int64
	fingerprint int64
	n           int64
	done        bool
}

func (c *passthroughChecker) consume(rows []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tsz := StreamSchema.TupleSize()
	if len(rows)%tsz != 0 {
		c.log.addf("output chunk of %d bytes is not whole tuples (tuple size %d)", len(rows), tsz)
	}
	for i := 0; i+tsz <= len(rows); i += tsz {
		t := rows[i : i+tsz]
		ts := StreamSchema.ReadInt64(t, 0)
		seq := StreamSchema.ReadInt64(t, 1)
		val := StreamSchema.ReadInt64(t, 2)
		sum := StreamSchema.ReadInt64(t, 3)
		if want := tupleChecksum(ts, seq, val); sum != want {
			c.log.addf("tuple %d (seq %d): checksum %#x, want %#x (corrupted tuple)", c.n, seq, sum, want)
		}
		switch {
		case seq == c.nextSeq:
			c.nextSeq++
		case seq < c.nextSeq:
			c.log.addf("tuple %d: seq %d after %d already emitted (duplicate or reorder)", c.n, seq, c.nextSeq)
		default:
			c.log.addf("tuple %d: seq %d skips ahead of %d (lost tuples or reorder)", c.n, seq, c.nextSeq)
			c.nextSeq = seq + 1 // resync so one gap reports once
		}
		if ts < c.lastTS {
			c.log.addf("tuple %d: timestamp %d after %d (output order not monotonic)", c.n, ts, c.lastTS)
		}
		c.lastTS = ts
		c.fingerprint ^= sum
		c.n++
	}
}

func (c *passthroughChecker) finish(tuplesIn, fingerprint int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done = true
	if c.n != tuplesIn {
		c.log.addf("conservation: %d tuples out, %d in", c.n, tuplesIn)
	}
	if c.fingerprint != fingerprint {
		c.log.addf("conservation: output fingerprint %#x != input %#x", c.fingerprint, fingerprint)
	}
}

func (c *passthroughChecker) tuplesOut() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *passthroughChecker) violations() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.log.list()
}

// shedChecker verifies the identity workloads under a shedding overload
// policy. Load shedding legitimately drops tuples, so the exactly-once
// coverage check no longer applies; what must still hold is
//
//   - tuple integrity: every emitted tuple's checksum matches its
//     content — shedding drops tuples, it never corrupts them;
//   - order without duplication: seq values strictly increase (gaps are
//     shed tuples; a repeat or inversion is still a bug);
//   - timestamp monotonicity across the whole stream;
//   - shed-ledger conservation: emitted + shed == offered. The run feeds
//     the engine's shed total in via setShed before finish; dropping the
//     ledger entry for even one tuple breaks the equation (the mutation
//     self-test relies on exactly this).
//
// When the ledger reports zero shed tuples the policy never actuated and
// the checker demands full passthrough equality, fingerprint included.
type shedChecker struct {
	mu          sync.Mutex
	log         violationLog
	lastSeq     int64
	lastTS      int64
	fingerprint int64
	n           int64
	shed        int64
}

func (c *shedChecker) consume(rows []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tsz := StreamSchema.TupleSize()
	if len(rows)%tsz != 0 {
		c.log.addf("output chunk of %d bytes is not whole tuples (tuple size %d)", len(rows), tsz)
	}
	for i := 0; i+tsz <= len(rows); i += tsz {
		t := rows[i : i+tsz]
		ts := StreamSchema.ReadInt64(t, 0)
		seq := StreamSchema.ReadInt64(t, 1)
		val := StreamSchema.ReadInt64(t, 2)
		sum := StreamSchema.ReadInt64(t, 3)
		if want := tupleChecksum(ts, seq, val); sum != want {
			c.log.addf("tuple %d (seq %d): checksum %#x, want %#x (corrupted tuple)", c.n, seq, sum, want)
		}
		if c.n > 0 && seq <= c.lastSeq {
			c.log.addf("tuple %d: seq %d after %d (duplicate or reorder; shedding only ever gaps forward)",
				c.n, seq, c.lastSeq)
		}
		c.lastSeq = seq
		if ts < c.lastTS {
			c.log.addf("tuple %d: timestamp %d after %d (output order not monotonic)", c.n, ts, c.lastTS)
		}
		c.lastTS = ts
		c.fingerprint ^= sum
		c.n++
	}
}

// setShed records the engine's total shed-tuple count (policy gaps plus
// admission drops) for this query. Must be called before finish.
func (c *shedChecker) setShed(total int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shed = total
}

func (c *shedChecker) finish(tuplesIn, fingerprint int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shed == 0 {
		// The policy never fired: the run degenerates to exact passthrough
		// and the stronger invariants apply.
		if c.n != tuplesIn {
			c.log.addf("conservation: %d tuples out, %d in (nothing shed)", c.n, tuplesIn)
		}
		if c.fingerprint != fingerprint {
			c.log.addf("conservation: output fingerprint %#x != input %#x (nothing shed)", c.fingerprint, fingerprint)
		}
		return
	}
	if c.n+c.shed != tuplesIn {
		c.log.addf("shed conservation: %d out + %d shed != %d in (tuples leaked or double-counted)",
			c.n, c.shed, tuplesIn)
	}
}

func (c *shedChecker) tuplesOut() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *shedChecker) violations() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.log.list()
}

// aggChecker verifies the tumbling COUNT(*) workload: window timestamps
// must be non-decreasing and the counts must add up to exactly the number
// of input tuples — every tuple lands in exactly one tumbling window, so
// any drop or duplicate anywhere in the pipeline shifts the total.
type aggChecker struct {
	mu     sync.Mutex
	log    violationLog
	out    *schema.Schema
	total  int64
	lastTS int64
	n      int64
}

func (c *aggChecker) consume(rows []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	osz := c.out.TupleSize()
	if len(rows)%osz != 0 {
		c.log.addf("output chunk of %d bytes is not whole tuples (tuple size %d)", len(rows), osz)
	}
	for i := 0; i+osz <= len(rows); i += osz {
		t := rows[i : i+osz]
		ts := c.out.Timestamp(t)
		if ts < c.lastTS {
			c.log.addf("window %d: timestamp %d after %d (output order not monotonic)", c.n, ts, c.lastTS)
		}
		c.lastTS = ts
		c.total += c.out.ReadInt(t, 1)
		c.n++
	}
}

func (c *aggChecker) finish(tuplesIn, _ int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.total != tuplesIn {
		c.log.addf("conservation: window counts add up to %d, %d tuples in", c.total, tuplesIn)
	}
}

func (c *aggChecker) tuplesOut() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *aggChecker) violations() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.log.list()
}
