package harness

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"saber/internal/engine"
	"saber/internal/fault"
	"saber/internal/ingest"
	"saber/internal/model"
	"saber/internal/overload"
)

// RestartConfig tunes one crash-restart differential run: a reference
// engine processes the whole stream uninterrupted, a second engine is
// killed mid-stream (Close without Drain — queued tasks and buffered
// input are abandoned, exactly like a process crash destroys them) after
// cutting checkpoints, and a third engine restores from disk and
// processes the remainder. Exactly-once restart means the committed
// prefix plus the post-recovery output is byte-identical to the
// reference.
type RestartConfig struct {
	// Seed drives the stream payloads, the chunk schedule and the kill
	// point.
	Seed int64
	// Workload: WorkloadPassthrough (default), WorkloadAgg or
	// WorkloadAggTime. All three have deterministic output bytes, which
	// the differential requires (grouped aggregation does not: its row
	// order depends on hash-table layout).
	Workload string
	// Tuples is the stream length. Default 40000.
	Tuples int
	// Workers, TaskSize, InputBufferSize, WindowSize as in Config.
	Workers         int
	TaskSize        int
	InputBufferSize int
	WindowSize      int64
	// InsertMaxTuples bounds the seeded chunk size. Default 300.
	InsertMaxTuples int
	// CheckpointEveryChunks cuts an epoch after every N feed chunks.
	// Default 6.
	CheckpointEveryChunks int
	// KillChunk is the chunk index after which the engine is killed; 0
	// derives a seeded kill point past the first checkpoint.
	KillChunk int
	// Quiesce waits for the engine to fully drain before each
	// checkpoint, making the epoch barrier (and therefore the committed
	// prefix and resume cursor) a pure function of the seed — the
	// determinism differential needs that; the byte-identity
	// differential deliberately runs without it, checkpointing against a
	// moving frontier.
	Quiesce bool
	// Ingest feeds over TCP loopback with the resume protocol: the
	// server is greeted back to the checkpoint cursor after the restart
	// and the reconnecting client replays the lost suffix from its
	// replay window.
	Ingest bool
	// Overload arms the admission-control/shedding layer on all three
	// engines. The differential requires that the policy never actuates
	// (a shed tuple voids byte identity), so configs set a budget the run
	// cannot exhaust: the point is proving the armed layer is inert on a
	// healthy pipeline and its ledger counters survive the restore.
	Overload *overload.Config
	// Chaos arms seeded fault injection (plan-execution errors, ingest
	// drops) on the crash and recovery engines. MaxTaskRetries defaults
	// to 6 when set, keeping the retry budget above any plausible
	// failure streak so nothing quarantines.
	Chaos          *fault.Injector
	MaxTaskRetries int
	// Dir is the checkpoint directory; empty creates (and removes) a
	// temporary one.
	Dir string
}

func (c RestartConfig) withDefaults() RestartConfig {
	if c.Workload == "" {
		c.Workload = WorkloadPassthrough
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tuples <= 0 {
		c.Tuples = 40000
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.TaskSize <= 0 {
		c.TaskSize = 1024
	}
	if c.InputBufferSize <= 0 {
		c.InputBufferSize = 1 << 15
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 64
	}
	if c.InsertMaxTuples <= 0 {
		c.InsertMaxTuples = 300
	}
	if c.CheckpointEveryChunks <= 0 {
		c.CheckpointEveryChunks = 6
	}
	if c.Chaos != nil && c.MaxTaskRetries == 0 {
		c.MaxTaskRetries = 6
	}
	return c
}

// RestartReport is the crash-restart differential's evidence.
type RestartReport struct {
	Seed      int64
	Chunks    int // chunks in the full stream schedule
	KillChunk int // chunk after which the crash engine died
	// Epochs is how many checkpoints the crash engine cut.
	Epochs int64
	// CommittedBytes is the exactly-once output cutoff at the crash;
	// ResumeCursor the tuple index recovery resumed the feed from.
	CommittedBytes int64
	ResumeCursor   int64
	// PreBytes/PostBytes/RefBytes are output sizes: committed prefix,
	// post-recovery, and uninterrupted reference.
	PreBytes, PostBytes, RefBytes int
	// RingWraps counts input-ring wraps across the recovery engine (>0
	// proves the rebased ring really wrapped mid-recovery when the
	// config targets that).
	RingWraps int64
	// Quarantined must be 0: shed tuples would break the differential.
	Quarantined int64
	// Shed must be 0 for the same reason: an armed overload policy that
	// actuates mid-differential voids byte identity.
	Shed int64
	// Retried / FaultsInjected / Reconnects / Resends are chaos and
	// ingest evidence.
	Retried        int64
	FaultsInjected int64
	Reconnects     int64
	Resends        int64
	Violations     []error
}

// Err joins the violations, nil when the differential held.
func (r *RestartReport) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("restart(seed=%d): %w", r.Seed, errors.Join(r.Violations...))
}

// String summarises the run.
func (r *RestartReport) String() string {
	return fmt.Sprintf(
		"seed=%d chunks=%d kill=%d epochs=%d committed=%d cursor=%d pre=%d post=%d ref=%d wraps=%d retried=%d injected=%d reconnects=%d resends=%d violations=%d",
		r.Seed, r.Chunks, r.KillChunk, r.Epochs, r.CommittedBytes, r.ResumeCursor,
		r.PreBytes, r.PostBytes, r.RefBytes, r.RingWraps, r.Retried, r.FaultsInjected,
		r.Reconnects, r.Resends, len(r.Violations))
}

// outCollector buffers a query's ordered output.
type outCollector struct {
	mu  sync.Mutex
	buf []byte
}

func (c *outCollector) sink(rows []byte) {
	c.mu.Lock()
	c.buf = append(c.buf, rows...)
	c.mu.Unlock()
}

func (c *outCollector) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf...)
}

// restartEngine builds one engine + query + collector for the run.
func restartEngine(cfg RestartConfig, dir string) (*engine.Engine, *engine.Handle, *outCollector, error) {
	q, err := buildQuery(Config{Workload: cfg.Workload, WindowSize: cfg.WindowSize, Seed: cfg.Seed}, "restart")
	if err != nil {
		return nil, nil, nil, err
	}
	eng := engine.New(engine.Config{
		CPUWorkers:      cfg.Workers,
		TaskSize:        cfg.TaskSize,
		InputBufferSize: cfg.InputBufferSize,
		DisablePad:      true,
		Model:           model.Default(),
		Fault:           cfg.Chaos,
		MaxTaskRetries:  cfg.MaxTaskRetries,

		Overload: cfg.Overload,

		CheckpointDir:      dir,
		CheckpointInterval: -1, // the runner cuts epochs at seeded chunk counts
	})
	h, err := eng.Register(q)
	if err != nil {
		return nil, nil, nil, err
	}
	out := &outCollector{}
	h.OnResult(out.sink)
	return eng, h, out, nil
}

// chunkSchedule precomputes the seeded tuple-aligned feed chunks as
// [start, end) byte offsets, so the crash run and the reference feed the
// exact same frames.
func chunkSchedule(cfg RestartConfig, streamLen int) [][2]int {
	tsz := StreamSchema.TupleSize()
	rnd := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	var out [][2]int
	for off := 0; off < streamLen; {
		n := (1 + rnd.Intn(cfg.InsertMaxTuples)) * tsz
		if off+n > streamLen {
			n = streamLen - off
		}
		out = append(out, [2]int{off, off + n})
		off += n
	}
	return out
}

// quiesce waits until every created task has drained.
func quiesce(h *engine.Handle) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		d := h.Debug()
		if d.Drained >= d.TasksCreated {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("quiesce timeout: %d of %d tasks drained", d.Drained, d.TasksCreated)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// RunCrashRestart executes the crash-restart differential. It returns an
// error only for configuration mistakes; differential failures land in
// RestartReport.Violations.
func RunCrashRestart(cfg RestartConfig) (*RestartReport, error) {
	cfg = cfg.withDefaults()
	rep := &RestartReport{Seed: cfg.Seed}

	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "ckpt-restart-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}

	tsz := StreamSchema.TupleSize()
	stream, _ := genStream(cfg.Tuples, cfg.Seed)
	chunks := chunkSchedule(cfg, len(stream))
	rep.Chunks = len(chunks)

	kill := cfg.KillChunk
	if kill <= 0 {
		// Seeded kill point strictly past the first checkpoint and before
		// the stream's end, so there is both state to recover and a
		// suffix left to process.
		lo := cfg.CheckpointEveryChunks + 1
		hi := len(chunks) - 1
		if hi <= lo {
			return nil, fmt.Errorf("harness: stream too short for a crash point (%d chunks, checkpoint every %d)",
				len(chunks), cfg.CheckpointEveryChunks)
		}
		rnd := rand.New(rand.NewSource(cfg.Seed ^ 0x6b11))
		kill = lo + rnd.Intn(hi-lo)
	}
	rep.KillChunk = kill

	// Reference: the same frames, uninterrupted, no checkpointing.
	refEng, refH, refOut, err := restartEngine(cfg, "")
	if err != nil {
		return nil, err
	}
	if err := refEng.Start(); err != nil {
		return nil, err
	}
	for _, c := range chunks {
		refH.Insert(stream[c[0]:c[1]])
	}
	refEng.Drain()
	refEng.Close()
	ref := refOut.bytes()
	rep.RefBytes = len(ref)

	// Crash run: feed chunks [0, kill), checkpointing along the way,
	// then die without draining.
	engA, hA, outA, err := restartEngine(cfg, dir)
	if err != nil {
		return nil, err
	}
	if err := engA.Start(); err != nil {
		return nil, err
	}

	var send func([]byte) error
	var rc *ingest.ReconnectClient
	var srv *ingest.Server
	if cfg.Ingest {
		srv, err = ingest.Listen("127.0.0.1:0", hA, tsz)
		if err != nil {
			return nil, err
		}
		srv.EnableResume(0)
		srv.SetReadTimeout(time.Second)
		go func() { _ = srv.Serve() }()
		rc, err = ingest.DialReconnect(srv.Addr().String(), ingest.ReconnectConfig{
			Seed:      cfg.Seed,
			Resume:    true,
			TupleSize: tsz,
			Fault:     cfg.Chaos,
		})
		if err != nil {
			return nil, err
		}
		send = rc.Send
	} else {
		send = func(data []byte) error { hA.Insert(data); return nil }
	}

	for i := 0; i < kill; i++ {
		if err := send(stream[chunks[i][0]:chunks[i][1]]); err != nil {
			return nil, fmt.Errorf("harness: pre-crash feed: %w", err)
		}
		if (i+1)%cfg.CheckpointEveryChunks == 0 {
			if cfg.Quiesce {
				if cfg.Ingest {
					// Wait for in-flight frames to reach the engine before
					// the drain barrier can mean anything.
					waitIngested(srv, int64(chunks[i][1]/tsz))
				}
				if err := quiesce(hA); err != nil {
					return nil, err
				}
			}
			if _, err := engA.Checkpoint(); err != nil {
				return nil, fmt.Errorf("harness: checkpoint: %w", err)
			}
		}
	}
	// Crash: stop the ingest front end, then kill the engine with work
	// still in flight. No Drain, no final checkpoint.
	if srv != nil {
		srv.Close()
	}
	engA.Close()
	rep.Epochs = engA.Metrics().Snapshot().Counters["saber.ckpt.epochs"]
	committed := hA.Committed()
	rep.CommittedBytes = committed
	pre := outA.bytes()
	if committed > int64(len(pre)) {
		rep.Violations = append(rep.Violations,
			fmt.Errorf("committed %d bytes but the sink only saw %d", committed, len(pre)))
		return rep, nil
	}
	prefix := pre[:committed]
	rep.PreBytes = len(prefix)
	if int64(len(ref)) < committed || !bytes.Equal(prefix, ref[:committed]) {
		rep.Violations = append(rep.Violations,
			fmt.Errorf("committed prefix (%d bytes) diverges from the reference", committed))
	}

	// Recovery: fresh engine, restore from disk, resume the feed at the
	// checkpoint cursor, finish the stream.
	engB, hB, outB, err := restartEngine(cfg, dir)
	if err != nil {
		return nil, err
	}
	if _, err := engB.Restore(dir); err != nil {
		rep.Violations = append(rep.Violations, fmt.Errorf("restore: %w", err))
		return rep, nil
	}
	if got := hB.Committed(); got != committed {
		rep.Violations = append(rep.Violations,
			fmt.Errorf("restored Committed %d, crash engine committed %d", got, committed))
	}
	cursor := hB.InputCursor(0)
	rep.ResumeCursor = cursor
	if cursor < 0 || cursor*int64(tsz) > int64(chunks[kill-1][1]) {
		rep.Violations = append(rep.Violations,
			fmt.Errorf("resume cursor %d outside the fed range", cursor))
		return rep, nil
	}
	if err := engB.Start(); err != nil {
		return nil, err
	}
	if cfg.Ingest {
		// Restart the server on the same address, greeting with the
		// restored cursor; the surviving client replays the gap from its
		// window and pushes on.
		srvB, err := ingest.Listen(srv.Addr().String(), hB, tsz)
		if err != nil {
			return nil, err
		}
		srvB.EnableResume(cursor)
		srvB.SetReadTimeout(time.Second)
		go func() { _ = srvB.Serve() }()
		for i := kill; i < len(chunks); i++ {
			if err := rc.Send(stream[chunks[i][0]:chunks[i][1]]); err != nil {
				return nil, fmt.Errorf("harness: post-recovery feed: %w", err)
			}
		}
		rep.Reconnects = rc.Reconnects()
		rep.Resends = rc.Resends()
		rc.Close()
		srvB.Close() // drains in-flight frames into the engine
	} else {
		// Direct mode replays from the cursor with fresh seeded chunking:
		// the stitched output must not depend on how the replay is cut.
		rnd := rand.New(rand.NewSource(cfg.Seed ^ 0x7e57))
		for off := cursor * int64(tsz); off < int64(len(stream)); {
			n := int64((1 + rnd.Intn(cfg.InsertMaxTuples)) * tsz)
			if off+n > int64(len(stream)) {
				n = int64(len(stream)) - off
			}
			hB.Insert(stream[off : off+n])
			off += n
		}
	}
	engB.Drain()
	for _, c := range engB.Invariants() {
		if err := c.CheckInvariants(); err != nil {
			rep.Violations = append(rep.Violations, fmt.Errorf("%s: %w", c.InvariantName(), err))
		}
	}
	engB.Close()

	post := outB.bytes()
	rep.PostBytes = len(post)
	d := hB.Debug()
	for _, w := range d.RingWraps {
		rep.RingWraps += w
	}
	stA, stB := hA.Stats(), hB.Stats()
	rep.Quarantined = stA.TasksQuarantined + stB.TasksQuarantined
	rep.Retried = stA.TasksRetried + stB.TasksRetried
	rep.Shed = stA.TuplesShed + stA.TuplesShedAdmit + stB.TuplesShed + stB.TuplesShedAdmit
	if cfg.Chaos != nil {
		rep.FaultsInjected = cfg.Chaos.TotalInjections()
	}
	if rep.Quarantined != 0 {
		rep.Violations = append(rep.Violations,
			fmt.Errorf("%d tasks quarantined — shed tuples void the differential", rep.Quarantined))
	}
	if rep.Shed != 0 {
		rep.Violations = append(rep.Violations,
			fmt.Errorf("%d tuples shed — an overload policy actuated mid-differential", rep.Shed))
	}
	if cfg.Overload != nil {
		// The admission ledger must balance on the recovery engine at
		// quiesce even though its offered/in counters were seeded from the
		// restored snapshot: offered == in + shed-at-admission.
		if d := stB.BytesOffered - stB.BytesIn - stB.TuplesShedAdmit*int64(tsz); d != 0 {
			rep.Violations = append(rep.Violations, fmt.Errorf(
				"restored admission ledger off by %d bytes (offered %d, in %d)",
				d, stB.BytesOffered, stB.BytesIn))
		}
	}

	got := append(prefix[:len(prefix):len(prefix)], post...)
	if !bytes.Equal(got, ref) {
		rep.Violations = append(rep.Violations, fmt.Errorf(
			"stitched output (%d committed + %d recovered bytes) != reference (%d bytes), first divergence at %d",
			len(prefix), len(post), len(ref), firstByteDiff(got, ref)))
	}
	return rep, nil
}

func firstByteDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// waitIngested blocks until the resume server's cursor reaches tuples
// (all frames up to that point have been handed to the sink).
func waitIngested(srv *ingest.Server, tuples int64) {
	deadline := time.Now().Add(10 * time.Second)
	for srv.Cursor() < tuples && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
}

// CrashRestartScenario is the chaos variant of the crash-restart
// differential: seeded plan-execution faults fire on the reference, the
// crash engine and the recovery engine alike, with the retry budget high
// enough that nothing quarantines — so exactly-once restart must hold
// even when tasks fail and retry around the epoch barrier.
func CrashRestartScenario(seed int64) RestartConfig {
	inj := fault.New(seed ^ 0xc4a5)
	inj.Arm(fault.PlanExec, fault.Spec{Rate: 0.03, Limit: 120})
	return RestartConfig{
		Seed:           seed,
		Workload:       WorkloadPassthrough,
		Tuples:         30000,
		Chaos:          inj,
		MaxTaskRetries: 6,
	}
}
