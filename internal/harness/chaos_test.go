package harness

import (
	"testing"
	"time"

	"saber/internal/adapt"
	"saber/internal/fault"
	"saber/internal/workload"
)

// TestChaosScenarios runs the seeded chaos suite: under injected GPU
// stage faults, device hangs, CPU plan errors and ingest disconnects,
// every invariant must hold — per-tuple checksums, exactly-once sequence
// coverage, ordering, conservation, clean quiesce — with zero tuples
// lost, duplicated or quarantined, and each scenario must prove its
// targeted fault path actually fired.
func TestChaosScenarios(t *testing.T) {
	for _, sc := range ChaosScenarios(Seed(7001)) {
		t.Run(sc.Name, func(t *testing.T) {
			cfg := sc.Cfg
			if testing.Short() {
				cfg.Tuples /= 4
			}
			rep := runClean(t, cfg)
			if rep.FaultsInjected == 0 {
				t.Fatal("chaos scenario injected zero faults; it proved nothing")
			}
			if rep.TasksQuarantined != 0 || rep.TuplesShed != 0 {
				t.Fatalf("unexpected quarantine: %s", rep)
			}
			if rep.TuplesOut != rep.TuplesIn && sc.Cfg.Workload != WorkloadAgg {
				t.Fatalf("conservation under chaos: %d tuples out of %d in", rep.TuplesOut, rep.TuplesIn)
			}
			if err := sc.Check(rep); err != nil {
				t.Fatalf("%v: %s", err, rep)
			}
		})
	}
}

// TestChaosBreakerOpensAndRecovers forces a burst of consecutive GPU
// failures: the circuit breaker must open (shedding all work to the CPU
// class), probe the device after the cooldown, and close again once the
// fault burst is exhausted — with the stream's invariants intact and the
// device demonstrably back in service.
func TestChaosBreakerOpensAndRecovers(t *testing.T) {
	inj := fault.New(Seed(7100))
	inj.Arm(fault.GPUKernel, fault.Spec{Rate: 1, Limit: 12})
	// Not scaled down under -short: the stream must outlast the 12-failure
	// burst by enough tasks for the half-open probe to find work, succeed,
	// and re-close the breaker before the queue drains.
	rep := runClean(t, Config{
		Seed:             Seed(7100),
		Workload:         WorkloadJitter,
		Tuples:           30000,
		Workers:          4,
		TaskSize:         1024,
		GPU:              true,
		SwitchThreshold:  3,
		MaxJitter:        time.Millisecond,
		Chaos:            inj,
		MaxTaskRetries:   6,
		BreakerThreshold: 4,
		BreakerCooldown:  2 * time.Millisecond,
	})
	if rep.BreakerOpens == 0 {
		t.Fatalf("12 consecutive GPU failures never opened the breaker: %s", rep)
	}
	if rep.BreakerCloses == 0 || rep.BreakerState != "closed" {
		t.Fatalf("breaker never recovered (state=%s closes=%d): %s", rep.BreakerState, rep.BreakerCloses, rep)
	}
	if rep.TasksGPU == 0 {
		t.Fatalf("device never returned to service after recovery: %s", rep)
	}
	if rep.TasksQuarantined != 0 || rep.TuplesOut != rep.TuplesIn {
		t.Fatalf("chaos burst lost work: %s", rep)
	}
}

// TestChaosBurstAdapt is the burst-adapt scenario: a paced bursty feed
// (square-edged load steps, the hardest case for a ϕ controller) drives
// the engine while the adaptive task-sizing loop resizes ϕ live AND
// injected GPU faults push tasks through the GPU→CPU failover path. The
// controller, the breaker-era failover machinery and the exactly-once
// result stage all interact; every invariant must still hold, the
// controller must demonstrably act, and no work may be lost.
func TestChaosBurstAdapt(t *testing.T) {
	inj := fault.New(Seed(7300))
	inj.Arm(fault.GPUKernel, fault.Spec{Rate: 0.1, Limit: 150})

	rep := runClean(t, Config{
		Seed:            Seed(7300),
		Workload:        WorkloadJitter,
		Tuples:          scale(12000, 40000),
		Workers:         4,
		TaskSize:        4096, // start at MaxPhi: the tight SLO must pull ϕ down
		GPU:             true,
		SwitchThreshold: 3,
		MaxJitter:       time.Millisecond,
		Chaos:           inj,
		MaxTaskRetries:  6,
		Adapt: &adapt.Config{
			MinPhi:   256,
			MaxPhi:   4096,
			SLO:      2 * time.Millisecond,
			Interval: 10 * time.Millisecond,
		},
		// ~1.3 MB/s average with 6× bursts: enough pressure that the
		// jittered workers queue up during each burst.
		PacedRate: workload.BurstRate(0.6e6, 3.6e6, 250*time.Millisecond, 80*time.Millisecond),
		FeedTick:  time.Millisecond,
		FeedFor:   2 * time.Second,
	})

	if rep.FaultsInjected == 0 {
		t.Fatalf("burst-adapt injected zero faults; it proved nothing: %s", rep)
	}
	if rep.GPUFailovers == 0 {
		t.Fatalf("kernel faults injected but no GPU→CPU failovers under adaptation: %s", rep)
	}
	if rep.AdaptTicks == 0 {
		t.Fatalf("adaptive controller never ticked: %s", rep)
	}
	if rep.AdaptGrows+rep.AdaptShrinks == 0 {
		t.Fatalf("controller ticked %d times but never resized ϕ under a 6× burst: %s",
			rep.AdaptTicks, rep)
	}
	if rep.PhiFinal < 256 || rep.PhiFinal > 4096 {
		t.Fatalf("final ϕ %d escaped [MinPhi, MaxPhi]: %s", rep.PhiFinal, rep)
	}
	if rep.TasksQuarantined != 0 || rep.TuplesOut != rep.TuplesIn {
		t.Fatalf("conservation under burst-adapt chaos: %s", rep)
	}
}

// TestChaosSeedDeterminism re-runs one chaos scenario with the same seed
// and asserts the injected-fault schedule is identical — the property
// that makes a chaos failure replayable from its logged seed.
func TestChaosSeedDeterminism(t *testing.T) {
	run := func() *Report {
		inj := fault.New(4242)
		inj.Arm(fault.PlanExec, fault.Spec{Rate: 0.05, Limit: 50})
		return runClean(t, Config{
			Seed:     4242,
			Workload: WorkloadPassthrough,
			Tuples:   scale(5000, 20000),
			Workers:  4,
			Chaos:    inj,
		})
	}
	a, b := run(), run()
	if a.FaultsInjected != b.FaultsInjected || a.TasksCreated != b.TasksCreated {
		t.Fatalf("same seed, different chaos: %s vs %s", a, b)
	}
}
