package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"saber/internal/catalog"
	"saber/internal/engine"
	"saber/internal/model"
	"saber/internal/workload"
)

// LifecycleConfig tunes one dynamic-lifecycle stress run: a catalog-
// managed engine whose query set churns (CREATE / PAUSE / RESUME / DROP
// through live BQL DDL) while a paced generator source streams, with a
// per-query conservation verdict for every stream — the ones that
// survive to quiesce and the ones dropped mid-run alike.
type LifecycleConfig struct {
	// Seed drives the source payload and the churn schedule.
	Seed int64
	// Tuples bounds the generated source, so the run self-terminates.
	// Default 60000.
	Tuples int
	// Rate paces the source (tuples/sec) so the DDL churn lands
	// genuinely mid-stream. Default 300000.
	Rate int
	// Workers and TaskSize configure the engine. Defaults 4 and 4096.
	Workers  int
	TaskSize int
	// BaseStreams is the number of streams registered at boot. Default 3.
	BaseStreams int
	// Rounds is the number of churn rounds; each creates a stream,
	// pauses and resumes a seeded base stream, and drops the previous
	// round's creation. Default 4.
	Rounds int
	// LeakSlot arms the mutation self-test: after the engine quiesces, a
	// result slot is marked full behind the drainer's back, and the
	// per-stream quiesce check is expected to flag it.
	LeakSlot bool
}

func (c LifecycleConfig) withDefaults() LifecycleConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tuples <= 0 {
		c.Tuples = 60000
	}
	if c.Rate <= 0 {
		c.Rate = 300000
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.TaskSize <= 0 {
		c.TaskSize = 4096
	}
	if c.BaseStreams <= 0 {
		c.BaseStreams = 3
	}
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	return c
}

// LifecycleReport aggregates a dynamic-lifecycle run's counters and
// violations.
type LifecycleReport struct {
	Seed    int64
	Created int // streams created mid-run
	Dropped int // streams dropped mid-run
	Pauses  int // pause/resume cycles applied

	TuplesIn  int64 // summed over every stream, live and dropped
	TuplesOut int64

	Violations []error
}

// Err joins the violations into one error, or returns nil.
func (r *LifecycleReport) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	errs := make([]string, len(r.Violations))
	for i, e := range r.Violations {
		errs[i] = e.Error()
	}
	return fmt.Errorf("lifecycle(seed=%d): %s", r.Seed, strings.Join(errs, "; "))
}

// String summarises the run for logs.
func (r *LifecycleReport) String() string {
	return fmt.Sprintf("seed=%d created=%d dropped=%d pauses=%d tuples=%d/%d violations=%d",
		r.Seed, r.Created, r.Dropped, r.Pauses, r.TuplesIn, r.TuplesOut, len(r.Violations))
}

// lifeStream tracks one catalog stream's identity-conservation evidence:
// a tumbling SELECT * emits every admitted tuple exactly once, so at its
// quiesce (end of stream, or the drop boundary) in == out + shed must
// hold, and the tap must have seen exactly what the engine counted out.
type lifeStream struct {
	name string
	h    *engine.Handle
	out  atomic.Int64 // tuples seen by the tap
}

// RunLifecycle executes one dynamic-lifecycle stress run: boot a catalog
// from a script, churn the query set through live DDL while the paced
// source streams, quiesce, and check per-query conservation for every
// stream that ever existed. Violations are data in the report; the
// returned error is reserved for configuration mistakes.
func RunLifecycle(cfg LifecycleConfig) (*LifecycleReport, error) {
	cfg = cfg.withDefaults()
	rep := &LifecycleReport{Seed: cfg.Seed}
	tsz := int64(workload.SynSchema.TupleSize())

	eng := engine.New(engine.Config{
		CPUWorkers: cfg.Workers,
		TaskSize:   cfg.TaskSize,
		DisablePad: true,
		Model:      model.Default(),
	})
	m := catalog.New(eng)

	var script strings.Builder
	fmt.Fprintf(&script, "CREATE SOURCE S TYPE gen WITH (gen='syn', seed=%d, rate=%d, count=%d);\n",
		cfg.Seed, cfg.Rate, cfg.Tuples)
	for i := 0; i < cfg.BaseStreams; i++ {
		// Tumbling identity windows of varied sizes: every admitted tuple
		// is emitted exactly once, so conservation is exact per stream.
		w := 32 << uint(i%4)
		fmt.Fprintf(&script, "CREATE STREAM base%d AS SELECT * FROM S [rows %d slide %d];\n", i, w, w)
	}
	if err := m.ExecScript(script.String()); err != nil {
		return nil, err
	}

	track := func(name string) (*lifeStream, error) {
		h, err := m.Handle(name)
		if err != nil {
			return nil, err
		}
		ls := &lifeStream{name: name, h: h}
		if err := m.Tap(name, func(rows []byte) {
			ls.out.Add(int64(len(rows)) / tsz)
		}); err != nil {
			return nil, err
		}
		return ls, nil
	}
	var live, dropped []*lifeStream
	for i := 0; i < cfg.BaseStreams; i++ {
		ls, err := track(fmt.Sprintf("base%d", i))
		if err != nil {
			return nil, err
		}
		live = append(live, ls)
	}

	if err := eng.Start(); err != nil {
		return nil, err
	}
	m.StartFeeds()

	// Churn: spread the rounds across the paced run so every DDL lands
	// mid-stream. Each round creates a stream (whose per-tap feeder
	// replays the full deterministic source from tuple zero), cycles a
	// seeded base stream through pause/resume, and drops the previous
	// round's creation while it is still consuming.
	runFor := time.Duration(float64(cfg.Tuples) / float64(cfg.Rate) * float64(time.Second))
	step := runFor / time.Duration(cfg.Rounds+1)
	rnd := rand.New(rand.NewSource(cfg.Seed ^ 0x11fec1c1e))
	var prev *lifeStream
	for round := 0; round < cfg.Rounds; round++ {
		time.Sleep(step)
		name := fmt.Sprintf("dyn%d", round)
		w := 96
		if _, err := m.Exec(fmt.Sprintf("CREATE STREAM %s AS SELECT * FROM S [rows %d slide %d];", name, w, w)); err != nil {
			return nil, fmt.Errorf("round %d create: %w", round, err)
		}
		ls, err := track(name)
		if err != nil {
			return nil, err
		}
		rep.Created++

		base := fmt.Sprintf("base%d", rnd.Intn(cfg.BaseStreams))
		if _, err := m.Exec("PAUSE STREAM " + base + ";"); err != nil {
			return nil, fmt.Errorf("round %d pause: %w", round, err)
		}
		time.Sleep(2 * time.Millisecond)
		if _, err := m.Exec("RESUME STREAM " + base + ";"); err != nil {
			return nil, fmt.Errorf("round %d resume: %w", round, err)
		}
		rep.Pauses++

		if prev != nil {
			if _, err := m.Exec("DROP STREAM " + prev.name + ";"); err != nil {
				return nil, fmt.Errorf("round %d drop: %w", round, err)
			}
			dropped = append(dropped, prev)
			rep.Dropped++
		}
		prev = ls
	}
	if prev != nil {
		live = append(live, prev)
	}

	m.WaitFeeds()
	eng.Drain()
	m.Close()
	eng.Close()

	if cfg.LeakSlot {
		// Mutation self-test: plant the exact state the quiesce sweep
		// exists to catch and let the checks below find it.
		live[0].h.InjectSlotLeak()
	}

	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Errorf(format, args...))
	}
	for _, ls := range live {
		st := ls.h.Stats()
		in := st.BytesIn / tsz
		rep.TuplesIn += in
		rep.TuplesOut += st.TuplesOut
		if err := ls.h.CheckQuiesced(); err != nil {
			violate("%s quiesce: %w", ls.name, err)
		}
		// Every live stream's feeder replayed the full bounded source —
		// including the ones created mid-run.
		if in != int64(cfg.Tuples) {
			violate("%s admitted %d of %d tuples", ls.name, in, cfg.Tuples)
		}
		if in != st.TuplesOut+st.TuplesShed {
			violate("%s conservation: %d in != %d out + %d shed", ls.name, in, st.TuplesOut, st.TuplesShed)
		}
		if got := ls.out.Load(); got != st.TuplesOut {
			violate("%s tap saw %d tuples, engine emitted %d", ls.name, got, st.TuplesOut)
		}
	}
	for _, ls := range dropped {
		st := ls.h.Stats()
		in := st.BytesIn / tsz
		rep.TuplesIn += in
		rep.TuplesOut += st.TuplesOut
		// Conservation at the drop boundary: everything admitted before
		// the drop was either emitted or accounted shed, and every created
		// task drained.
		d := ls.h.Debug()
		if d.Drained != d.TasksCreated {
			violate("%s (dropped) drained %d of %d tasks", ls.name, d.Drained, d.TasksCreated)
		}
		if in != st.TuplesOut+st.TuplesShed {
			violate("%s (dropped) conservation: %d in != %d out + %d shed", ls.name, in, st.TuplesOut, st.TuplesShed)
		}
		if got := ls.out.Load(); got != st.TuplesOut {
			violate("%s (dropped) tap saw %d tuples, engine emitted %d", ls.name, got, st.TuplesOut)
		}
	}
	return rep, nil
}
