package harness

import (
	"fmt"
	"time"

	"saber/internal/fault"
)

// ChaosScenario is one named fault-injection configuration for the
// stress harness. Cfg carries an armed injector; Check asserts the
// scenario-specific evidence that the targeted fault path really fired
// (a chaos run that injects nothing proves nothing). The generic
// verdicts — zero invariant violations, tuple conservation, no
// quarantine — are asserted by the caller on the Report.
type ChaosScenario struct {
	Name  string
	Cfg   Config
	Check func(*Report) error
}

// ChaosScenarios builds the standard chaos suite, seeded so every run is
// replayable: GPU kernel faults, DMA errors and device hangs (failover +
// exactly-once dedup), CPU plan-execution errors (retry path), ingest
// disconnects (reconnect + frame-level exactly-once), and a mixed storm.
// Rates carry Limits and the engine retry budget stays above any
// plausible consecutive-failure streak, so no scenario quarantines work
// — the conservation invariants must hold exactly.
func ChaosScenarios(seed int64) []ChaosScenario {
	var out []ChaosScenario
	add := func(name string, cfg Config, arm map[fault.Site]fault.Spec, check func(*Report) error) {
		inj := fault.New(seed ^ int64(len(out)+1)*0x9e3779b9)
		for site, spec := range arm {
			inj.Arm(site, spec)
		}
		cfg.Seed = seed + int64(len(out))*1009
		cfg.Chaos = inj
		if cfg.MaxTaskRetries == 0 {
			cfg.MaxTaskRetries = 6
		}
		out = append(out, ChaosScenario{Name: name, Cfg: cfg, Check: check})
	}

	// Hybrid base: jittered identity workload keeps both processor
	// classes busy (and the queue deep enough that the device keeps
	// receiving tasks to fail).
	hybrid := Config{
		Workload:        WorkloadJitter,
		Tuples:          25000,
		Workers:         4,
		TaskSize:        1024,
		GPU:             true,
		SwitchThreshold: 3,
		MaxJitter:       time.Millisecond,
	}

	add("gpu-kernel-fault", hybrid,
		map[fault.Site]fault.Spec{
			fault.GPUKernel: {Rate: 0.15, Limit: 200},
		},
		func(r *Report) error {
			if r.GPUFailovers == 0 {
				return fmt.Errorf("kernel faults injected but no GPU→CPU failovers")
			}
			return nil
		})

	add("gpu-dma-error", hybrid,
		map[fault.Site]fault.Spec{
			fault.GPUCopyIn: {Rate: 0.15, Limit: 200},
		},
		func(r *Report) error {
			if r.GPUFailovers == 0 {
				return fmt.Errorf("DMA errors injected but no GPU→CPU failovers")
			}
			return nil
		})

	hang := hybrid
	hang.Tuples = 15000
	hang.GPUTaskTimeout = 8 * time.Millisecond
	add("gpu-device-hang", hang,
		map[fault.Site]fault.Spec{
			fault.GPUHang: {Rate: 0.05, Delay: 30 * time.Millisecond, Limit: 10},
		},
		func(r *Report) error {
			if r.GPUTimeouts == 0 {
				return fmt.Errorf("hangs injected but no task timeouts detected")
			}
			return nil
		})

	add("cpu-plan-error", Config{
		Workload: WorkloadPassthrough,
		Tuples:   40000,
		Workers:  8,
		TaskSize: 1024,
	},
		map[fault.Site]fault.Spec{
			fault.PlanExec: {Rate: 0.03, Limit: 100},
		},
		func(r *Report) error {
			if r.TasksRetried == 0 {
				return fmt.Errorf("plan errors injected but no retries")
			}
			return nil
		})

	add("ingest-disconnect", Config{
		Workload: WorkloadPassthrough,
		Tuples:   20000,
		Workers:  4,
		TaskSize: 1024,
		Ingest:   true,
	},
		map[fault.Site]fault.Spec{
			fault.IngestDrop:  {Rate: 0.08, Limit: 100},
			fault.IngestStall: {Rate: 0.01, Delay: 5 * time.Millisecond, Limit: 10},
		},
		func(r *Report) error {
			if r.IngestReconnects == 0 {
				return fmt.Errorf("disconnects injected but feeder never reconnected")
			}
			return nil
		})

	mixed := hybrid
	mixed.Workers = 6
	add("hybrid-mixed-storm", mixed,
		map[fault.Site]fault.Spec{
			fault.GPUKernel: {Rate: 0.1, Limit: 100},
			fault.GPUCopyIn: {Rate: 0.05, Limit: 60},
			fault.PlanExec:  {Rate: 0.01, Limit: 40},
		},
		func(r *Report) error {
			if r.TasksFailed == 0 {
				return fmt.Errorf("mixed storm injected but nothing failed")
			}
			return nil
		})

	return out
}
