package harness

import (
	"fmt"
	"math/rand"
	"time"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/window"
)

// StreamSchema is the harness's input tuple layout: a strictly increasing
// timestamp, a strictly increasing sequence number, a random payload and
// a per-tuple checksum over the other three fields. The redundancy makes
// every concurrency failure mode machine-checkable at the sink: a torn or
// corrupted tuple fails its checksum, a dropped/duplicated/reordered
// tuple breaks the sequence, and a reordered window breaks timestamp
// monotonicity.
var StreamSchema = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "seq", Type: schema.Int64},
	schema.Field{Name: "val", Type: schema.Int64},
	schema.Field{Name: "sum", Type: schema.Int64},
)

// tupleChecksum mixes the three value fields into the per-tuple checksum
// (splitmix64-style finalisation).
func tupleChecksum(ts, seq, val int64) int64 {
	x := uint64(ts)*0x9e3779b97f4a7c15 ^ uint64(seq)*0xbf58476d1ce4e5b9 ^ uint64(val)*0x94d049bb133111eb
	x ^= x >> 31
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int64(x)
}

// genStream builds n tuples with seeded random payloads. It returns the
// packed stream and the XOR of all tuple checksums (the multiset
// fingerprint the conservation invariant compares against).
func genStream(n int, seed int64) (data []byte, fingerprint int64) {
	rnd := rand.New(rand.NewSource(seed))
	b := schema.NewTupleBuilder(StreamSchema, n)
	for i := 0; i < n; i++ {
		ts, seq, val := int64(i), int64(i), rnd.Int63()
		sum := tupleChecksum(ts, seq, val)
		b.Begin().Timestamp(ts).Int64("seq", seq).Int64("val", val).Int64("sum", sum)
		fingerprint ^= sum
	}
	return b.Bytes(), fingerprint
}

// Workload kinds.
const (
	// WorkloadPassthrough is a selection whose predicate accepts every
	// tuple: the engine must reproduce the input stream byte for byte.
	WorkloadPassthrough = "passthrough"
	// WorkloadJitter is a pass-through UDF that additionally sleeps a
	// content-derived pseudo-random time per window fragment, maximising
	// out-of-order completion (and thus reorder/overflow pressure) while
	// keeping the expected output identical to the input.
	WorkloadJitter = "jitter"
	// WorkloadAgg is a tumbling-window COUNT(*): the counts across all
	// emitted windows (including the end-of-stream flush) must add up to
	// exactly the number of input tuples.
	WorkloadAgg = "agg"
	// WorkloadAggTime is WorkloadAgg over a time-based window. The
	// harness stream's timestamps advance by exactly one per tuple, so
	// the window boundaries mirror the count-based variant while
	// exercising the timestamp-driven window assignment path (and, for
	// crash-restart runs, the checkpointed PrevTimestamp continuity).
	WorkloadAggTime = "aggtime"
)

// isAggWorkload reports whether the workload collapses windows into
// aggregate rows (so per-tuple conservation does not apply).
func isAggWorkload(w string) bool { return w == WorkloadAgg || w == WorkloadAggTime }

// buildQuery constructs the workload query named name.
func buildQuery(cfg Config, name string) (*query.Query, error) {
	win := window.NewCount(cfg.WindowSize, cfg.WindowSize)
	switch cfg.Workload {
	case WorkloadPassthrough:
		return query.NewBuilder(name).
			From("S", StreamSchema, win).
			Where(expr.Cmp{Op: expr.Ge, Left: expr.Col("seq"), Right: expr.IntConst(0)}).
			Build()
	case WorkloadJitter:
		return query.NewBuilder(name).
			From("S", StreamSchema, win).
			UDF(jitterUDF(cfg)).
			Build()
	case WorkloadAgg:
		return query.NewBuilder(name).
			From("S", StreamSchema, win).
			Aggregate(query.Count, nil, "n").
			Build()
	case WorkloadAggTime:
		return query.NewBuilder(name).
			From("S", StreamSchema, window.NewTime(cfg.WindowSize, cfg.WindowSize)).
			Aggregate(query.Count, nil, "n").
			Build()
	default:
		return nil, fmt.Errorf("harness: unknown workload %q", cfg.Workload)
	}
}

// jitterUDF is the identity operator with adversarial timing: each window
// fragment sleeps a delay derived deterministically from its content and
// the run seed, so completion order scrambles independently of the
// scheduler while reproducing exactly under the same seed.
func jitterUDF(cfg Config) *query.UDF {
	seed, maxJitter, minProc := cfg.Seed, cfg.MaxJitter, cfg.MinProcess
	return &query.UDF{
		Name: "jitter-passthrough",
		Out:  StreamSchema,
		ProcessFragment: func(in [][]byte) []byte {
			d := jitterDelay(in[0], seed, maxJitter)
			if d < minProc {
				// The deterministic service-time floor (Config.MinProcess)
				// that gives the shape a computable capacity bound.
				d = minProc
			}
			if d > 0 {
				time.Sleep(d)
			}
			return append([]byte(nil), in[0]...)
		},
		Merge:    func(acc, next []byte) []byte { return append(acc, next...) },
		Finalize: func(partial []byte) []byte { return partial },
	}
}

// jitterDelay maps a fragment's first tuple to a sleep in [0, max): three
// quarters of fragments return zero, the rest spread across the range, so
// stragglers are rare enough to keep throughput but long enough to push
// completions past the reordering window.
func jitterDelay(fragment []byte, seed int64, max time.Duration) time.Duration {
	if max <= 0 || len(fragment) < StreamSchema.TupleSize() {
		return 0
	}
	first := StreamSchema.ReadInt64(fragment, 1) // seq field
	h := uint64(tupleChecksum(first, seed, 0x6a09e667f3bcc909))
	if h%4 != 0 {
		return 0
	}
	return time.Duration((h >> 2) % uint64(max))
}
