package harness

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// runClean executes the config and fails the test on any invariant
// violation, logging the counters and the seed needed to reproduce.
func runClean(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", rep)
	if err := rep.Err(); err != nil {
		t.Fatalf("invariants violated (reproduce with -harness.seed=%d):\n%v", rep.Seed, err)
	}
	if rep.TasksCreated != rep.Drained {
		t.Fatalf("exactly-once drain: %d tasks created, %d drained", rep.TasksCreated, rep.Drained)
	}
	return rep
}

// scale picks the tuple count for -short versus full runs.
func scale(short, full int) int {
	if testing.Short() {
		return short
	}
	return full
}

// TestPassthroughWrapHeavy floods a deliberately tiny input ring so the
// stream wraps it many times over while workers read and release
// concurrently; the identity workload proves byte-exact conservation.
func TestPassthroughWrapHeavy(t *testing.T) {
	rep := runClean(t, Config{
		Seed:            Seed(101),
		Workload:        WorkloadPassthrough,
		Tuples:          scale(30000, 120000),
		Workers:         8,
		TaskSize:        1024,
		InputBufferSize: 1 << 14,
	})
	if rep.RingWraps == 0 {
		t.Fatal("stress run never wrapped the input ring; configuration too tame")
	}
	if rep.TuplesOut != rep.TuplesIn {
		t.Fatalf("conservation: %d tuples out of %d in", rep.TuplesOut, rep.TuplesIn)
	}
}

// TestJitterForcesOverflow runs the jittered identity workload against
// the smallest legal reordering window, so straggler tasks push later
// results past the slot window into the overflow map — the §4.3 path
// with zero coverage before this harness existed.
func TestJitterForcesOverflow(t *testing.T) {
	rep := runClean(t, Config{
		Seed:        Seed(202),
		Workload:    WorkloadJitter,
		Tuples:      scale(8000, 30000),
		Workers:     2,
		TaskSize:    1024,
		ResultSlots: 4,
		MaxJitter:   2 * time.Millisecond,
	})
	if rep.OverflowDeliveries == 0 {
		t.Fatal("stress run never hit the overflow map; configuration too tame")
	}
	if rep.RingWraps == 0 {
		t.Fatal("stress run never wrapped the input ring; configuration too tame")
	}
}

// TestHybridBackendFlips runs the jittered workload over both processor
// classes with a small switch threshold: HLS must keep flipping the
// backend mid-stream without losing or duplicating a single tuple.
func TestHybridBackendFlips(t *testing.T) {
	rep := runClean(t, Config{
		Seed:            Seed(303),
		Workload:        WorkloadJitter,
		Tuples:          scale(8000, 30000),
		Workers:         4,
		TaskSize:        1024,
		ResultSlots:     8,
		GPU:             true,
		SwitchThreshold: 3,
		MaxJitter:       time.Millisecond,
	})
	if rep.TasksCPU == 0 || rep.TasksGPU == 0 {
		t.Fatalf("both backends should execute tasks: cpu=%d gpu=%d", rep.TasksCPU, rep.TasksGPU)
	}
	if rep.BackendFlips == 0 {
		t.Fatal("HLS never flipped backends; configuration too tame")
	}
}

// TestAggConservationMultiQuery feeds several concurrent aggregation
// queries: the tumbling COUNT(*) totals must account for every input
// tuple exactly once, per query, under cross-query scheduling pressure.
func TestAggConservationMultiQuery(t *testing.T) {
	rep := runClean(t, Config{
		Seed:     Seed(404),
		Workload: WorkloadAgg,
		Tuples:   scale(20000, 60000),
		Queries:  3,
		Workers:  8,
		TaskSize: 1024,
	})
	if rep.TuplesOut == 0 {
		t.Fatal("aggregation emitted no windows")
	}
}

// TestSeedDeterminism re-runs the same seed and asserts the load profile
// is identical — the property that makes -harness.seed reproduction
// work. (Scheduling-dependent counters like overflow deliveries are
// legitimately nondeterministic and not compared.)
func TestSeedDeterminism(t *testing.T) {
	cfg := Config{
		Seed:     Seed(505),
		Workload: WorkloadPassthrough,
		Tuples:   scale(5000, 20000),
		Workers:  4,
	}
	a := runClean(t, cfg)
	b := runClean(t, cfg)
	if a.TasksCreated != b.TasksCreated || a.TuplesOut != b.TuplesOut {
		t.Fatalf("same seed, different load: %s vs %s", a, b)
	}
}

// mutateOnce wraps a chunk rewriter so it fires on the first chunk with
// at least two tuples and passes everything else through unchanged.
func mutateOnce(rewrite func(chunk []byte)) func([]byte) []byte {
	var mu sync.Mutex
	done := false
	tsz := StreamSchema.TupleSize()
	return func(rows []byte) []byte {
		mu.Lock()
		defer mu.Unlock()
		if done || len(rows) < 2*tsz {
			return rows
		}
		done = true
		c := append([]byte(nil), rows...)
		rewrite(c)
		return c
	}
}

// TestInvariantsCatchInjectedBugs is the harness's mutation self-check:
// deliberately injected output bugs — a reorder, a corruption, a drop —
// must each trip the corresponding invariant. A harness whose detectors
// cannot see planted bugs guards nothing.
func TestInvariantsCatchInjectedBugs(t *testing.T) {
	tsz := StreamSchema.TupleSize()
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   string
	}{
		{
			name: "reorder",
			mutate: mutateOnce(func(c []byte) {
				// Swap the first two tuples: simulates a result stage
				// draining slots out of task order.
				tmp := append([]byte(nil), c[:tsz]...)
				copy(c[:tsz], c[tsz:2*tsz])
				copy(c[tsz:2*tsz], tmp)
			}),
			want: "seq",
		},
		{
			name: "corruption",
			mutate: mutateOnce(func(c []byte) {
				// Flip one payload byte: simulates a torn read off a
				// wrapped or prematurely released ring region.
				c[StreamSchema.Offset(2)] ^= 0x40
			}),
			want: "checksum",
		},
		{
			name: "drop",
			mutate: mutateOnce(func(c []byte) {
				// Overwrite the second tuple with the first: one tuple
				// duplicated, one lost, as a double-drained slot would.
				copy(c[tsz:2*tsz], c[:tsz])
			}),
			want: "seq",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Run(Config{
				Seed:         Seed(606),
				Workload:     WorkloadPassthrough,
				Tuples:       scale(3000, 10000),
				Workers:      4,
				MutateOutput: tc.mutate,
			})
			if err != nil {
				t.Fatal(err)
			}
			verr := rep.Err()
			if verr == nil {
				t.Fatalf("injected %s bug went undetected: %s", tc.name, rep)
			}
			if !strings.Contains(verr.Error(), tc.want) {
				t.Fatalf("injected %s bug reported without %q:\n%v", tc.name, tc.want, verr)
			}
			t.Logf("caught as intended: %.200s ...", verr.Error())
		})
	}
}
