package harness

import (
	"testing"
	"time"

	"saber/internal/overload"
)

// runRestart executes the crash-restart differential and fails the test
// on any violation, logging the seed needed to reproduce.
func runRestart(t *testing.T, cfg RestartConfig) *RestartReport {
	t.Helper()
	rep, err := RunCrashRestart(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", rep)
	if err := rep.Err(); err != nil {
		t.Fatalf("differential failed (reproduce with -harness.seed=%d):\n%v", rep.Seed, err)
	}
	if rep.Epochs == 0 {
		t.Fatal("no epochs cut before the crash — the run recovered nothing")
	}
	if rep.PostBytes == 0 {
		t.Fatal("no post-recovery output — the kill point left nothing to recover")
	}
	return rep
}

// TestCrashRestartPassthrough: count windows, selection output. The
// committed prefix + recovered output must be byte-identical to an
// uninterrupted run.
func TestCrashRestartPassthrough(t *testing.T) {
	runRestart(t, RestartConfig{Seed: Seed(21)})
}

// TestCrashRestartAggCount: tumbling count-window COUNT(*) with pending
// windows straddling the epoch barrier.
func TestCrashRestartAggCount(t *testing.T) {
	runRestart(t, RestartConfig{Seed: Seed(22), Workload: WorkloadAgg})
}

// TestCrashRestartAggTime: time-based windows — recovery must restore
// the PrevTimestamp continuity at the barrier, or the first recovered
// task misassigns window starts.
func TestCrashRestartAggTime(t *testing.T) {
	runRestart(t, RestartConfig{Seed: Seed(23), Workload: WorkloadAggTime})
}

// TestCrashRestartMidRingWrap: a small input ring guarantees the crash
// and the recovery both happen mid-wrap, proving the rebased ring's
// absolute addressing survives the restart.
func TestCrashRestartMidRingWrap(t *testing.T) {
	rep := runRestart(t, RestartConfig{
		Seed:            Seed(24),
		Tuples:          60000,
		InputBufferSize: 1 << 14,
	})
	if rep.RingWraps == 0 {
		t.Fatal("recovery engine never wrapped its ring — config did not exercise the wrap path")
	}
}

// TestCrashRestartIngest drives the feed over TCP with the resume
// protocol: the restarted server greets with the checkpoint cursor and
// the surviving client replays the lost suffix from its window.
func TestCrashRestartIngest(t *testing.T) {
	rep := runRestart(t, RestartConfig{Seed: Seed(25), Ingest: true})
	if rep.Reconnects == 0 {
		t.Fatal("client never reconnected across the server restart")
	}
}

// TestChaosCrashRestart arms seeded plan-execution faults across all
// three engines: exactly-once restart must hold even when tasks fail
// and retry around the epoch barrier.
func TestChaosCrashRestart(t *testing.T) {
	rep := runRestart(t, CrashRestartScenario(Seed(26)))
	if rep.FaultsInjected == 0 {
		t.Fatal("chaos scenario injected nothing")
	}
	if rep.Retried == 0 {
		t.Fatal("faults injected but no task retried")
	}
}

// TestCrashRestartOverloadArmed runs the byte-identity differential with
// the full overload layer armed — budget, oldest-first policy, tight
// bounded wait — but a budget the stream cannot exhaust. The armed layer
// must be inert on a healthy pipeline (zero tuples shed, or byte
// identity is void) and its admission-ledger counters must survive the
// restore: offered == in + shed on the recovery engine at quiesce.
func TestCrashRestartOverloadArmed(t *testing.T) {
	rep := runRestart(t, RestartConfig{
		Seed: Seed(28),
		Overload: &overload.Config{
			MaxQueueBytes: 64 << 20,
			Policy:        overload.ShedOldest,
			MaxWait:       200 * time.Microsecond,
		},
	})
	if rep.Shed != 0 {
		t.Fatalf("overload policy actuated on a healthy differential: %s", rep)
	}
}

// TestCrashRestartDeterminism: with Quiesce, the epoch barrier is a pure
// function of the seed — two runs with the same seed must kill at the
// same chunk, commit the same prefix and resume from the same cursor.
func TestCrashRestartDeterminism(t *testing.T) {
	cfg := RestartConfig{Seed: Seed(27), Quiesce: true}
	a := runRestart(t, cfg)
	b := runRestart(t, cfg)
	if a.KillChunk != b.KillChunk || a.CommittedBytes != b.CommittedBytes ||
		a.ResumeCursor != b.ResumeCursor || a.Epochs != b.Epochs ||
		a.PreBytes != b.PreBytes || a.PostBytes != b.PostBytes {
		t.Fatalf("same seed, different recovery:\n  a: %s\n  b: %s", a, b)
	}
}
