package harness

import (
	"strings"
	"testing"
)

// TestDynamicLifecycleStress churns a catalog-managed engine through
// live DDL — streams created, paused, resumed and dropped while a paced
// generator source streams — and demands exact per-query conservation
// for every stream that ever existed: the survivors replayed the full
// bounded source and emitted every admitted tuple, the dropped ones
// balance their ledgers at the drop boundary.
func TestDynamicLifecycleStress(t *testing.T) {
	rep, err := RunLifecycle(LifecycleConfig{Seed: Seed(11001)})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", rep)
	if verr := rep.Err(); verr != nil {
		t.Fatal(verr)
	}
	if rep.Created == 0 || rep.Dropped == 0 || rep.Pauses == 0 {
		t.Fatalf("churn never happened: %s", rep)
	}
	if rep.TuplesOut == 0 {
		t.Fatalf("no output observed: %s", rep)
	}
}

// TestLifecycleMutationDetectsLeakedSlot is the scenario's self-test: a
// result slot marked full behind the drainer's back — a leak the engine
// itself will never produce — must be flagged by the per-stream quiesce
// check. A lifecycle checker that cannot see a planted leak guards
// nothing.
func TestLifecycleMutationDetectsLeakedSlot(t *testing.T) {
	rep, err := RunLifecycle(LifecycleConfig{Seed: Seed(11002), LeakSlot: true})
	if err != nil {
		t.Fatal(err)
	}
	verr := rep.Err()
	if verr == nil {
		t.Fatalf("leaked result slot went undetected: %s", rep)
	}
	if !strings.Contains(verr.Error(), "still full") {
		t.Fatalf("leak reported without the slot verdict: %v", verr)
	}
	t.Logf("caught as intended: %v", verr)
}
