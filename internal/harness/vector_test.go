package harness

import (
	"testing"

	"saber/internal/exec"
)

// TestVectorizedMatchesScalarEndToEnd runs the same seeded workloads
// through the full engine twice — CPU operators pinned to the per-tuple
// scalar reference, then to the vectorized batch kernels. Both runs must
// be invariant-clean and conserve identical tuple volumes, tying the
// vectorized path's correctness to the concurrent engine, not just to
// single-threaded Plan.Process calls.
func TestVectorizedMatchesScalarEndToEnd(t *testing.T) {
	defer exec.SetDefaultVectorized(exec.DefaultVectorized())
	for _, wl := range []string{WorkloadPassthrough, WorkloadAgg} {
		cfg := Config{
			Seed:     Seed(404),
			Workload: wl,
			Tuples:   scale(20000, 60000),
			Workers:  6,
			TaskSize: 1024,
		}
		exec.SetDefaultVectorized(false)
		scalar := runClean(t, cfg)
		exec.SetDefaultVectorized(true)
		vec := runClean(t, cfg)
		if vec.TuplesIn != scalar.TuplesIn || vec.TuplesOut != scalar.TuplesOut {
			t.Fatalf("%s: vectorized run diverges from scalar: in %d/%d, out %d/%d",
				wl, vec.TuplesIn, scalar.TuplesIn, vec.TuplesOut, scalar.TuplesOut)
		}
	}
}
