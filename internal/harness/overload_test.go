package harness

import (
	"sync"
	"testing"
	"time"

	"saber/internal/adapt"
	"saber/internal/overload"
	"saber/internal/workload"
)

// overloadShape is the workload every overload scenario shares: jittered
// identity processing with a deterministic service-time floor, so the
// pipeline's capacity has a computable upper bound and a paced feed can
// be set at a known multiple of it. The jitter on top only lowers true
// capacity, pushing a "2×" feed even further past saturation.
func overloadShape(seed int64) Config {
	return Config{
		Seed:     seed,
		Workload: WorkloadJitter,
		Workers:  4,
		TaskSize: 1024,
		// The ring must dwarf the queue budget: overload protection is the
		// budget acting first, not ring backpressure (a ring no bigger than
		// the budget would throttle the feeder before the budget ever
		// trips and no shedding could be observed).
		InputBufferSize: 1 << 18,
		// One whole window per ϕ-sized task: the oldest-first rung sheds at
		// task granularity, so aligning windows to tasks means a shed drops
		// whole windows. A straddling window would instead be stranded open
		// until the end-of-stream flush and emit its early fragments last,
		// which the order invariant would (correctly) reject.
		WindowSize: 32,
		MaxJitter:  time.Millisecond,
		MinProcess: 400 * time.Microsecond,
	}
}

// shapeCapacity is the shape's capacity upper bound in bytes/sec: every
// worker moves at most one ϕ-sized task per MinProcess.
func shapeCapacity(shape Config) float64 {
	return float64(shape.Workers*shape.TaskSize) / shape.MinProcess.Seconds()
}

// TestOverloadShedOldestAtTwiceCapacity is the sustained-overload chaos
// scenario: the feed is paced at 2× the measured capacity with a tight
// queue budget, so admission pressure is continuous and the
// oldest-window-first rung must actuate. Degradation has to be graceful
// — bounded shedding with real goodput — and exactly accounted: the
// shed-tolerant checker enforces out + shed == offered, order and
// per-tuple integrity on everything that survives.
func TestOverloadShedOldestAtTwiceCapacity(t *testing.T) {
	shape := overloadShape(Seed(9301))
	// Slow the service floor well past the bounded admission wait: budget
	// headroom then reappears on a millisecond scale while MaxWait is tens
	// of microseconds, so a blocked chunk deterministically outlasts the
	// wait and the policy must actuate (rather than racing the drain).
	shape.MinProcess = 2 * time.Millisecond
	capacity := shapeCapacity(shape)

	cfg := shape
	cfg.Tuples = scale(8000, 24000)
	cfg.Overload = &overload.Config{
		MaxQueueBytes: 16 << 10,
		Policy:        overload.ShedOldest,
		MaxWait:       50 * time.Microsecond,
	}
	cfg.PacedRate = workload.SteadyRate(2 * capacity)
	cfg.FeedTick = time.Millisecond
	rep := runClean(t, cfg)

	if rep.TuplesShedOldest == 0 {
		t.Fatalf("2x-capacity feed never tripped oldest-first shedding; overload not exercised: %s", rep)
	}
	if rep.AdmitWaits == 0 {
		t.Fatalf("overload run never hit the bounded admission wait: %s", rep)
	}
	if rep.TuplesOut < rep.TuplesIn/8 {
		t.Fatalf("goodput collapsed under overload (%d of %d tuples): %s", rep.TuplesOut, rep.TuplesIn, rep)
	}
}

// TestOverloadShedWeightedAtTwiceCapacity drives the same sustained
// overload through the probabilistic weighted rung: chunks are dropped
// pre-admission by the seeded coin, so the shed shows up in the
// admission ledger (offered == admitted + shed at admission) rather
// than as window gaps.
func TestOverloadShedWeightedAtTwiceCapacity(t *testing.T) {
	shape := overloadShape(Seed(9302))
	// Slow the service floor well past the bounded admission wait: budget
	// headroom then reappears on a millisecond scale while MaxWait is tens
	// of microseconds, so a blocked chunk deterministically outlasts the
	// wait and the policy must actuate (rather than racing the drain).
	shape.MinProcess = 2 * time.Millisecond
	capacity := shapeCapacity(shape)

	cfg := shape
	cfg.Tuples = scale(8000, 24000)
	cfg.Overload = &overload.Config{
		MaxQueueBytes: 16 << 10,
		Policy:        overload.ShedWeighted,
		MaxWait:       50 * time.Microsecond,
		Seed:          Seed(9302),
	}
	cfg.PacedRate = workload.SteadyRate(2 * capacity)
	cfg.FeedTick = time.Millisecond
	rep := runClean(t, cfg)

	if rep.TuplesShedAdmit == 0 {
		t.Fatalf("2x-capacity feed never tripped weighted admission shedding: %s", rep)
	}
	if rep.TuplesOut < rep.TuplesIn/8 {
		t.Fatalf("goodput collapsed under overload (%d of %d tuples): %s", rep.TuplesOut, rep.TuplesIn, rep)
	}
}

// TestOverloadMutationDetectsLeak is the harness self-test for the
// shed-tolerant checker: in a run that legitimately sheds, silently
// dropping one more output tuple (a "leak" the shed ledger knows nothing
// about) must still be flagged — otherwise shedding mode would be a
// blind spot where real conservation bugs hide behind the policy.
func TestOverloadMutationDetectsLeak(t *testing.T) {
	shape := overloadShape(Seed(9303))
	cfg := shape
	cfg.Tuples = scale(6000, 16000)
	cfg.Overload = &overload.Config{
		MaxQueueBytes: 8 << 10,
		Policy:        overload.ShedOldest,
		MaxWait:       50 * time.Microsecond,
	}
	var once sync.Once
	cfg.MutateOutput = func(chunk []byte) []byte {
		out := chunk
		once.Do(func() {
			// Drop the chunk's last tuple; the checker must notice the
			// ledger no longer balances.
			if tsz := StreamSchema.TupleSize(); len(chunk) >= tsz {
				out = chunk[:len(chunk)-tsz]
			}
		})
		return out
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", rep)
	if rep.Err() == nil {
		t.Fatal("dropped an output tuple behind the shed ledger's back and no invariant fired")
	}
}

// TestOverloadAdaptLastRungSheds proves shedding sits at the end of the
// adaptive ladder: ϕ is pinned at its floor and the SLO is unmeetable,
// so every trusted controller tick raises the last-rung overload signal
// — only then is the policy armed and allowed to cut tuples. The run
// must show both the signal (overload ticks) and the actuation (oldest
// shed) with the ledger still exact.
func TestOverloadAdaptLastRungSheds(t *testing.T) {
	shape := overloadShape(Seed(9304))
	cfg := shape
	cfg.Tuples = scale(8000, 24000)
	cfg.Workers = 2
	cfg.Adapt = &adapt.Config{
		MinPhi:   1024,
		MaxPhi:   1024,
		SLO:      time.Microsecond,
		Interval: 5 * time.Millisecond,
	}
	cfg.Overload = &overload.Config{
		MaxQueueBytes: 8 << 10,
		Policy:        overload.ShedOldest,
		MaxWait:       50 * time.Microsecond,
	}
	rep := runClean(t, cfg)

	if rep.AdaptOverloadTicks == 0 {
		t.Fatalf("unmeetable SLO at the phi floor never raised the last-rung signal: %s", rep)
	}
	if rep.TuplesShedOldest == 0 && rep.TuplesShedAdmit == 0 {
		t.Fatalf("last-rung signal raised but the shedding policy never actuated: %s", rep)
	}
}

// TestOverloadCreditsPaceIngest feeds over real TCP loopback with
// credit-based flow control armed: the server's advertised window must
// pace the client to the sink's rate (the client demonstrably blocks on
// grants), and because flow control holds data at the source instead of
// dropping it, the stream still arrives exactly once, byte for byte.
func TestOverloadCreditsPaceIngest(t *testing.T) {
	shape := overloadShape(Seed(9305))
	cfg := shape
	cfg.Tuples = scale(6000, 20000)
	cfg.Ingest = true
	cfg.SourceCredits = 64
	rep := runClean(t, cfg)

	if rep.CreditWaits == 0 {
		t.Fatalf("credit window 64 never made the feeder wait; flow control not exercised: %s", rep)
	}
	if rep.TuplesOut != rep.TuplesIn {
		t.Fatalf("flow control must be lossless: %d tuples out of %d in: %s", rep.TuplesOut, rep.TuplesIn, rep)
	}
}
