// Package harness is SABER's concurrency correctness harness: it drives
// the full pipeline — ingest → dispatch → scheduling (HLS/FCFS) →
// CPU/sim-GPU workers → slotted result stage → assembly — under
// adversarial configurations (tiny reordering windows that force the
// overflow map, wrap-heavy ring buffers, content-derived worker jitter,
// forced backend flips) and checks machine-verifiable invariants instead
// of golden outputs: per-tuple checksums, exactly-once sequence coverage,
// output-order monotonicity, tuple conservation, ring-buffer accounting
// and clean end-of-stream flush.
//
// Every run is deterministic given Config.Seed (jitter is derived from
// tuple content, not wall clock), so a failing run reproduces with
//
//	go test ./internal/harness/ -run <Test> -harness.seed=<seed>
//
// Subsystems expose their invariants through the inv.Checker contract
// (internal/inv); the harness polls every checker the engine aggregates
// plus any the caller registers via Config.Extra, so future subsystems
// plug in without touching this package.
package harness

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"saber/internal/adapt"
	"saber/internal/engine"
	"saber/internal/fault"
	"saber/internal/gpu"
	"saber/internal/ingest"
	"saber/internal/inv"
	"saber/internal/model"
	"saber/internal/overload"
	"saber/internal/sched"
	"saber/internal/workload"
)

var flagSeed = flag.Int64("harness.seed", 0,
	"override the stress harness seed (0 uses each test's default) to reproduce a failure")

// Seed returns the -harness.seed flag value, or def when the flag is
// unset. Tests route their default seeds through this so any failure's
// reported seed can be replayed from the command line.
func Seed(def int64) int64 {
	if *flagSeed != 0 {
		return *flagSeed
	}
	return def
}

// Config tunes one stress run. The zero value is not runnable; use
// (Config).withDefaults via Run.
type Config struct {
	// Seed drives every random choice: stream payloads, insert chunking
	// and the jitter workload's delays.
	Seed int64
	// Workload selects the query shape: WorkloadPassthrough (default),
	// WorkloadJitter or WorkloadAgg.
	Workload string
	// Tuples is the number of input tuples per query. Default 50000.
	Tuples int
	// Queries is the number of identical queries registered and fed
	// concurrently. Default 1.
	Queries int
	// Workers is the engine's CPU worker count. Default 4.
	Workers int
	// TaskSize is ϕ in bytes. Small values maximise task boundaries.
	// Default 1024 (32 tuples).
	TaskSize int
	// ResultSlots sizes the per-query reordering window. Tiny values
	// (e.g. 4) force the overflow map. Default 0 (engine default).
	ResultSlots int
	// InputBufferSize sizes the input rings. Small values force
	// wrap-heavy operation and backpressure. Default 1<<14.
	InputBufferSize int
	// WindowSize is the tumbling window size in tuples. Default 64.
	WindowSize int64
	// GPU attaches a simulated GPGPU device (hybrid execution).
	GPU bool
	// SwitchThreshold is HLS's switch threshold (hybrid runs). Default
	// engine default.
	SwitchThreshold int
	// MaxJitter bounds the jitter workload's per-fragment delay.
	// Default 2ms.
	MaxJitter time.Duration
	// MinProcess puts a deterministic floor under the jitter workload's
	// per-fragment service time. With it the pipeline's capacity has a
	// computable upper bound (Workers * TaskSize / MinProcess bytes/sec),
	// which is what lets the overload scenarios pace a feed at a known
	// multiple of capacity instead of estimating it from wall clocks.
	// 0 keeps the service time purely jitter-driven.
	MinProcess time.Duration
	// PollInterval is the invariant poller's period. Default 200µs.
	PollInterval time.Duration
	// InsertMaxTuples bounds the seeded random Insert chunk size.
	// Default 300.
	InsertMaxTuples int
	// Chaos arms seeded fault injection across the pipeline: GPU stage
	// faults and hangs, CPU plan-execution errors, and (with Ingest)
	// mid-frame connection drops. nil runs fault-free. The injector's own
	// seed governs which decisions fire; Config.Seed governs the data.
	Chaos *fault.Injector
	// GPUTaskTimeout, MaxTaskRetries, BreakerThreshold and BreakerCooldown
	// pass through to the engine's fault-tolerance knobs (zero = engine
	// default).
	GPUTaskTimeout   time.Duration
	MaxTaskRetries   int
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Ingest feeds each query over a real TCP loopback connection through
	// internal/ingest (reconnecting client, read-deadline-guarded server)
	// instead of direct Insert calls — the path chaos disconnects target.
	Ingest bool
	// Adapt enables adaptive task sizing (dynamic ϕ): the engine's
	// controller resizes ϕ from the live latency histograms while the
	// stress load — and any armed chaos — runs. nil keeps ϕ fixed.
	Adapt *adapt.Config
	// Overload arms the engine's overload protection (queue budgets,
	// tiered shedding, stall watchdog). With a shedding policy set the
	// run is expected to drop tuples under pressure; the harness then
	// swaps the exactly-once passthrough checker for the shed-tolerant
	// one and verifies the conservation ledger instead:
	// offered == admitted + admission-shed and admitted == out + shed.
	Overload *overload.Config
	// SourceCredits, with Ingest, arms credit-based flow control on the
	// loopback feed: the server advertises this window (tuples) and the
	// reconnecting client paces itself on the returned grants.
	SourceCredits int
	// PacedRate, when set, paces every feeder at this offered byte rate
	// (e.g. workload.BurstRate) instead of feeding as fast as
	// backpressure allows. The per-tick tuple schedule comes from
	// workload.PaceTuples, so it is deterministic given the profile; the
	// schedule repeats until the stream is exhausted.
	PacedRate workload.RateFunc
	// FeedTick is the pacing tick for PacedRate. Default 1ms.
	FeedTick time.Duration
	// FeedFor bounds the paced schedule's length before it repeats.
	// Default 2s.
	FeedFor time.Duration
	// Extra invariant checkers polled alongside the engine's own —
	// the hook point for future subsystems.
	Extra []inv.Checker
	// MutateOutput, when set, rewrites every output chunk before it
	// reaches the invariant checkers. It exists for harness self-tests:
	// injecting a reorder/corruption here proves the invariants can
	// catch the bug class they claim to.
	MutateOutput func(chunk []byte) []byte
}

func (c Config) withDefaults() Config {
	if c.Workload == "" {
		c.Workload = WorkloadPassthrough
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tuples <= 0 {
		c.Tuples = 50000
	}
	if c.Queries <= 0 {
		c.Queries = 1
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.TaskSize <= 0 {
		c.TaskSize = 1024
	}
	if c.InputBufferSize <= 0 {
		c.InputBufferSize = 1 << 14
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 64
	}
	if c.MaxJitter <= 0 {
		c.MaxJitter = 2 * time.Millisecond
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 200 * time.Microsecond
	}
	if c.InsertMaxTuples <= 0 {
		c.InsertMaxTuples = 300
	}
	if c.PacedRate != nil {
		if c.FeedTick <= 0 {
			c.FeedTick = time.Millisecond
		}
		if c.FeedFor <= 0 {
			c.FeedFor = 2 * time.Second
		}
	}
	return c
}

// Report aggregates a run's counters and invariant violations. The
// counters double as evidence that the adversarial configuration really
// exercised the paths it targets (e.g. OverflowDeliveries > 0 proves the
// overflow map saw traffic).
type Report struct {
	Seed      int64
	TuplesIn  int64
	TuplesOut int64
	// TasksCreated and Drained must match after a clean run.
	TasksCreated int64
	Drained      int64
	// OverflowDeliveries counts results that bypassed the slot window.
	OverflowDeliveries int64
	// RingWraps counts input-ring writes that wrapped the backing array.
	RingWraps int64
	// BackendFlips counts HLS forced backend switches (hybrid runs).
	BackendFlips int64
	TasksCPU     int64
	TasksGPU     int64
	// InvariantChecks is the number of poller sweeps that ran.
	InvariantChecks int64

	// Fault-tolerance telemetry (chaos runs).
	FaultsInjected      int64 // decisions where the injector fired
	TasksFailed         int64 // failed execution attempts
	TasksRetried        int64 // attempts requeued for retry
	TasksQuarantined    int64 // tasks abandoned after MaxTaskRetries
	TuplesShed          int64 // input tuples covered by quarantined tasks
	GPUFailovers        int64 // GPU-failed tasks pinned to the CPU class
	GPUTimeouts         int64 // device hangs detected by the task timeout
	DuplicatesDiscarded int64 // deliveries dropped by exactly-once dedup
	BreakerOpens        int64
	BreakerCloses       int64
	BreakerState        string // final breaker state ("" without a breaker)
	IngestReconnects    int64  // successful feeder redials (Ingest runs)

	// Adaptive-ϕ telemetry (Adapt runs).
	AdaptTicks   int64 // controller ticks that saw a trusted signal
	AdaptGrows   int64
	AdaptShrinks int64
	// AdaptOverloadTicks counts ticks that raised the last-rung overload
	// signal (over SLO with ϕ already at the floor) — the condition that
	// arms the shedding policy.
	AdaptOverloadTicks int64
	PhiFinal           int64 // ϕ in bytes when the run quiesced

	// Overload-protection telemetry (Overload runs).
	BytesOffered     int64 // bytes Insert took responsibility for
	TuplesShedAdmit  int64 // tuples dropped before admission
	TuplesShedOldest int64 // admitted tuples cut oldest-first
	AdmitWaits       int64 // Inserts that hit the bounded backpressure wait
	CreditWaits      int64 // ingest sends that blocked on the credit window
	Stalls           int64 // watchdog stall episodes

	// Violations holds every invariant violation observed, polling-time
	// and end-of-stream alike. Empty means the run was clean.
	Violations []error
}

// Err joins the violations into one error, or returns nil for a clean
// run.
func (r *Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("harness(seed=%d): %w", r.Seed, errors.Join(r.Violations...))
}

// String summarises the run's counters for logs.
func (r *Report) String() string {
	s := fmt.Sprintf(
		"seed=%d tuples=%d/%d tasks=%d drained=%d overflow=%d wraps=%d flips=%d cpu=%d gpu=%d checks=%d violations=%d",
		r.Seed, r.TuplesIn, r.TuplesOut, r.TasksCreated, r.Drained, r.OverflowDeliveries,
		r.RingWraps, r.BackendFlips, r.TasksCPU, r.TasksGPU, r.InvariantChecks, len(r.Violations))
	if r.FaultsInjected > 0 || r.BreakerState != "" {
		s += fmt.Sprintf(
			" | chaos: injected=%d failed=%d retried=%d quarantined=%d shed=%d failovers=%d timeouts=%d dups=%d breaker=%s(opens=%d,closes=%d) reconnects=%d",
			r.FaultsInjected, r.TasksFailed, r.TasksRetried, r.TasksQuarantined, r.TuplesShed,
			r.GPUFailovers, r.GPUTimeouts, r.DuplicatesDiscarded,
			r.BreakerState, r.BreakerOpens, r.BreakerCloses, r.IngestReconnects)
	}
	if r.AdaptTicks > 0 {
		s += fmt.Sprintf(" | adapt: ticks=%d grows=%d shrinks=%d phi=%d",
			r.AdaptTicks, r.AdaptGrows, r.AdaptShrinks, r.PhiFinal)
	}
	if r.TuplesShedAdmit+r.TuplesShedOldest+r.AdmitWaits+r.CreditWaits+r.Stalls > 0 {
		s += fmt.Sprintf(" | overload: offered=%dB shed_admit=%d shed_oldest=%d waits=%d credit_waits=%d stalls=%d",
			r.BytesOffered, r.TuplesShedAdmit, r.TuplesShedOldest, r.AdmitWaits, r.CreditWaits, r.Stalls)
	}
	return s
}

// Run executes one stress run to completion and reports what happened.
// It returns an error only for configuration mistakes; invariant
// violations are data, reported in Report.Violations so tests can log
// the seed before failing.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Seed: cfg.Seed}

	ecfg := engine.Config{
		CPUWorkers:       cfg.Workers,
		TaskSize:         cfg.TaskSize,
		InputBufferSize:  cfg.InputBufferSize,
		ResultSlots:      cfg.ResultSlots,
		SwitchThreshold:  cfg.SwitchThreshold,
		DisablePad:       true,
		Model:            model.Default(),
		Fault:            cfg.Chaos,
		GPUTaskTimeout:   cfg.GPUTaskTimeout,
		MaxTaskRetries:   cfg.MaxTaskRetries,
		BreakerThreshold: cfg.BreakerThreshold,
		BreakerCooldown:  cfg.BreakerCooldown,
		Adapt:            cfg.Adapt,
		Overload:         cfg.Overload,
	}
	var dev *gpu.Device
	if cfg.GPU {
		// The scaled model makes the simulated device fast enough to
		// compete with unpadded CPU workers, so HLS keeps both classes
		// busy and flips backends (as in the engine's hybrid tests).
		dev = gpu.Open(gpu.Config{SMs: 2, Model: model.Default().Scaled(1e-6), Fault: cfg.Chaos})
		defer dev.Close()
		ecfg.GPU = dev
	}
	eng := engine.New(ecfg)

	type queryRun struct {
		handle      *engine.Handle
		checker     streamChecker
		stream      []byte
		fingerprint int64
	}
	runs := make([]*queryRun, cfg.Queries)
	for i := range runs {
		q, err := buildQuery(cfg, fmt.Sprintf("stress-%d", i))
		if err != nil {
			return nil, err
		}
		h, err := eng.Register(q)
		if err != nil {
			return nil, err
		}
		qr := &queryRun{handle: h}
		// Distinct sub-seed per query so concurrent queries do not march
		// in lockstep.
		qr.stream, qr.fingerprint = genStream(cfg.Tuples, cfg.Seed+int64(i)*7919)
		switch {
		case isAggWorkload(cfg.Workload):
			qr.checker = &aggChecker{out: q.OutputSchema()}
		case cfg.Overload != nil && cfg.Overload.Policy != overload.ShedNone:
			// A shedding run legitimately drops tuples: integrity and order
			// still hold per tuple, but coverage is checked against the shed
			// ledger instead of demanding the full sequence.
			qr.checker = &shedChecker{}
		default:
			qr.checker = &passthroughChecker{}
		}
		mutate := cfg.MutateOutput
		checker := qr.checker
		h.OnResult(func(rows []byte) {
			if mutate != nil {
				rows = mutate(rows)
			}
			checker.consume(rows)
		})
		runs[i] = qr
	}

	if err := eng.Start(); err != nil {
		return nil, err
	}

	// Poll every invariant the engine aggregates — result stages, ring
	// buffers, scheduler, device — plus the caller's, while the stress
	// load runs.
	checkers := append(eng.Invariants(), cfg.Extra...)
	var pollViolations []error
	var pollMu sync.Mutex
	pollDone := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		seen := make(map[string]bool)
		for {
			select {
			case <-pollDone:
				return
			case <-time.After(cfg.PollInterval):
			}
			rep.InvariantChecks++
			for _, c := range checkers {
				if err := c.CheckInvariants(); err != nil {
					pollMu.Lock()
					// One report per checker: a violated invariant stays
					// violated and would otherwise flood the log.
					if !seen[c.InvariantName()] {
						seen[c.InvariantName()] = true
						pollViolations = append(pollViolations,
							fmt.Errorf("%s: %w", c.InvariantName(), err))
					}
					pollMu.Unlock()
				}
			}
		}
	}()

	// Feed every query concurrently in seeded, uneven, tuple-aligned
	// chunks — directly via Insert, or over TCP loopback through the
	// reconnecting ingest client (Ingest mode); Insert's backpressure
	// throttles the feeders naturally either way.
	var servers []*ingest.Server
	var feedErrs []error
	var feedMu sync.Mutex
	var feeders sync.WaitGroup
	var reconnects, creditWaits int64
	for i, qr := range runs {
		var send func([]byte) error
		var cleanup func()
		if cfg.Ingest {
			h := qr.handle
			srv, err := ingest.Listen("127.0.0.1:0", ingest.SinkFunc(func(data []byte) {
				h.Insert(data)
			}), StreamSchema.TupleSize())
			if err != nil {
				return nil, err
			}
			// Generous relative to injected stalls: the deadline is a
			// liveness backstop, not part of the chaos schedule.
			srv.SetReadTimeout(time.Second)
			if cfg.SourceCredits > 0 {
				srv.EnableCredits(int64(cfg.SourceCredits))
			}
			srv.RegisterMetrics(eng.Metrics(), fmt.Sprintf("saber.ingest.in%d", i))
			go func() { _ = srv.Serve() }()
			servers = append(servers, srv)
			rc, err := ingest.DialReconnect(srv.Addr().String(), ingest.ReconnectConfig{
				Seed:      cfg.Seed ^ int64(i),
				Fault:     cfg.Chaos,
				Credits:   cfg.SourceCredits > 0,
				TupleSize: StreamSchema.TupleSize(),
			})
			if err != nil {
				return nil, err
			}
			send = rc.Send
			cleanup = func() {
				feedMu.Lock()
				reconnects += rc.Reconnects()
				creditWaits += rc.CreditWaits()
				feedMu.Unlock()
				rc.Close()
			}
		} else {
			h := qr.handle
			send = func(data []byte) error { h.Insert(data); return nil }
		}
		feeders.Add(1)
		go func(i int, qr *queryRun, send func([]byte) error, cleanup func()) {
			defer feeders.Done()
			if cleanup != nil {
				defer cleanup()
			}
			fail := func(err error) {
				feedMu.Lock()
				feedErrs = append(feedErrs, fmt.Errorf("query %d feeder: %w", i, err))
				feedMu.Unlock()
			}
			tsz := StreamSchema.TupleSize()
			if cfg.PacedRate != nil {
				// Paced mode: replay the deterministic per-tick tuple
				// schedule, sleeping to each tick boundary. Backpressure may
				// push a tick late; the feeder then runs behind (offered load
				// exceeding absorbed load is exactly the condition the
				// adaptive controller is there to handle).
				schedule := workload.PaceTuples(cfg.PacedRate, tsz, cfg.FeedTick, cfg.FeedFor)
				total := 0
				for _, n := range schedule {
					total += n
				}
				if total > 0 {
					start := time.Now()
					tick := 0
					for off := 0; off < len(qr.stream); tick++ {
						n := schedule[tick%len(schedule)] * tsz
						if n > 0 {
							if off+n > len(qr.stream) {
								n = len(qr.stream) - off
							}
							if err := send(qr.stream[off : off+n]); err != nil {
								fail(err)
								return
							}
							off += n
						}
						if d := time.Until(start.Add(time.Duration(tick+1) * cfg.FeedTick)); d > 0 {
							time.Sleep(d)
						}
					}
					return
				}
				// A degenerate all-zero schedule falls through to the
				// unpaced feeder rather than spinning forever.
			}
			rnd := rand.New(rand.NewSource(cfg.Seed ^ int64(i)<<32))
			for off := 0; off < len(qr.stream); {
				n := (1 + rnd.Intn(cfg.InsertMaxTuples)) * tsz
				if off+n > len(qr.stream) {
					n = len(qr.stream) - off
				}
				if err := send(qr.stream[off : off+n]); err != nil {
					fail(err)
					return
				}
				off += n
			}
		}(i, qr, send, cleanup)
	}
	feeders.Wait()
	// Ingest mode: all clients have sent and closed; close the servers so
	// every in-flight frame is sunk before the drain barrier.
	for _, srv := range servers {
		srv.Close()
	}
	rep.IngestReconnects = reconnects
	rep.CreditWaits = creditWaits
	rep.Violations = append(rep.Violations, feedErrs...)
	eng.Drain()

	close(pollDone)
	pollWG.Wait()
	rep.Violations = append(rep.Violations, pollViolations...)

	// Stop the workers before reading stats: Close waits out the
	// late-result collectors of timed-out GPU tasks, so every duplicate
	// discard is counted before the conservation verdicts below.
	eng.Close()

	// End-of-stream: one final invariant sweep, the quiesced-state checks
	// and each stream checker's conservation verdict.
	for _, c := range checkers {
		if err := c.CheckInvariants(); err != nil {
			rep.Violations = append(rep.Violations, fmt.Errorf("%s (final): %w", c.InvariantName(), err))
		}
	}
	for i, qr := range runs {
		if err := qr.handle.CheckQuiesced(); err != nil {
			rep.Violations = append(rep.Violations, fmt.Errorf("query %d quiesce: %w", i, err))
		}
		st := qr.handle.Stats()
		if sc, ok := qr.checker.(*shedChecker); ok {
			// The shed ledger is the checker's coverage baseline: policy gaps
			// (tuples.shed) plus admission drops. Feeding it from the engine's
			// own counters is the point — a leak in the ledger shows up as a
			// conservation violation, not a silently weaker check.
			sc.setShed(st.TuplesShed + st.TuplesShedAdmit)
		}
		qr.checker.finish(int64(cfg.Tuples), qr.fingerprint)
		for _, err := range qr.checker.violations() {
			rep.Violations = append(rep.Violations, fmt.Errorf("query %d: %w", i, err))
		}
		rep.TuplesOut += qr.checker.tuplesOut()
		rep.TuplesIn += int64(cfg.Tuples)

		d := qr.handle.Debug()
		rep.TasksCreated += d.TasksCreated
		rep.Drained += d.Drained
		rep.OverflowDeliveries += d.OverflowDeliveries
		for _, w := range d.RingWraps {
			rep.RingWraps += w
		}
		rep.BytesOffered += st.BytesOffered
		rep.TuplesShedAdmit += st.TuplesShedAdmit
		rep.TuplesShedOldest += st.TuplesShedOldest
		rep.AdmitWaits += st.AdmitWaits
		rep.TasksCPU += st.TasksCPU
		rep.TasksGPU += st.TasksGPU
		rep.TasksFailed += st.TasksFailed
		rep.TasksRetried += st.TasksRetried
		rep.TasksQuarantined += st.TasksQuarantined
		rep.TuplesShed += st.TuplesShed
		rep.GPUFailovers += st.GPUFailovers
		rep.GPUTimeouts += st.GPUTimeouts
		rep.DuplicatesDiscarded += st.DuplicateResults
	}
	// Metrics-only conservation: the obs registry alone must prove the
	// run's accounting, without consulting engine internals. At quiesce
	// every task trace that was started has finished, and — for the 1:1
	// workloads (passthrough, jitter; agg collapses windows) — every
	// ingested tuple was either emitted or shed with nothing in flight.
	snap := eng.Metrics().Snapshot()
	if started, finished := snap.Counters["saber.trace.started"], snap.Counters["saber.trace.finished"]; started != finished {
		rep.Violations = append(rep.Violations,
			fmt.Errorf("metrics: %d task traces started but %d finished at quiesce", started, finished))
	}
	if !isAggWorkload(cfg.Workload) {
		tsz := int64(StreamSchema.TupleSize())
		for i := range runs {
			in := snap.Counters[fmt.Sprintf("saber.engine.q%d.bytes.in", i)] / tsz
			out := snap.Counters[fmt.Sprintf("saber.engine.q%d.tuples.out", i)]
			shed := snap.Counters[fmt.Sprintf("saber.engine.q%d.tuples.shed", i)]
			if in != out+shed {
				rep.Violations = append(rep.Violations,
					fmt.Errorf("metrics: query %d conservation: %d tuples in != %d out + %d shed", i, in, out, shed))
			}
		}
	}
	// Admission-side conservation holds for every workload: each offered
	// byte was either admitted into the ring or dropped pre-admission by
	// the shedding policy, so offered == admitted + admission-shed, in
	// tuples, with nothing unaccounted at quiesce.
	{
		tsz := int64(StreamSchema.TupleSize())
		for i := range runs {
			offered := snap.Counters[fmt.Sprintf("saber.overload.q%d.bytes.offered", i)] / tsz
			in := snap.Counters[fmt.Sprintf("saber.engine.q%d.bytes.in", i)] / tsz
			shedAdmit := snap.Counters[fmt.Sprintf("saber.overload.q%d.shed.admit.tuples", i)]
			if offered != in+shedAdmit {
				rep.Violations = append(rep.Violations,
					fmt.Errorf("metrics: query %d admission conservation: %d tuples offered != %d admitted + %d shed at admission",
						i, offered, in, shedAdmit))
			}
		}
	}

	if hls, ok := eng.Policy().(*sched.HLS); ok {
		rep.BackendFlips = hls.Flips()
	}
	if br := eng.Breaker(); br != nil {
		rep.BreakerOpens = br.Opens()
		rep.BreakerCloses = br.Closes()
		rep.BreakerState = br.State().String()
	}
	if cfg.Chaos != nil {
		rep.FaultsInjected = cfg.Chaos.TotalInjections()
	}
	rep.Stalls = snap.Counters["saber.overload.stalls"]
	if cfg.Adapt != nil {
		rep.AdaptTicks = snap.Counters["saber.adapt.ticks"]
		rep.AdaptGrows = snap.Counters["saber.adapt.grow"]
		rep.AdaptShrinks = snap.Counters["saber.adapt.shrink"]
		rep.AdaptOverloadTicks = snap.Counters["saber.adapt.overload.ticks"]
		rep.PhiFinal = int64(eng.TaskSize())
	}
	return rep, nil
}
