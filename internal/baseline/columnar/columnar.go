// Package columnar is the MonetDB-like comparator of the paper's §6.2: a
// small in-memory column store with partitioned parallel joins. It exists
// to reproduce the three measured contrasts — a θ-join that performs like
// SABER's windowed join, a select-* θ-join that loses time reconstructing
// output rows from columns, and an equi-join where the hash-based
// column-store plan is decisively faster.
package columnar

import (
	"sync"
	"time"

	"saber/internal/model"
	"saber/internal/schema"
)

// GatherNsPerValue models the random-access cost of reconstructing one
// output value from a column during select-* materialisation (the
// measured 40%-of-runtime penalty in the paper's §6.2). Real column
// stores pay a cache miss per gathered value; this reproduction's tables
// are small and hot, so the cost is restored by the model.
const GatherNsPerValue = 160

// Table stores tuples column-major.
type Table struct {
	Schema *schema.Schema
	n      int
	cols   [][]byte // one packed array per field
}

// FromRows decomposes row-major tuples into columns.
func FromRows(s *schema.Schema, rows []byte) *Table {
	tsz := s.TupleSize()
	n := len(rows) / tsz
	t := &Table{Schema: s, n: n, cols: make([][]byte, s.NumFields())}
	for f := 0; f < s.NumFields(); f++ {
		w := s.Field(f).Type.Size()
		col := make([]byte, n*w)
		off := s.Offset(f)
		for i := 0; i < n; i++ {
			copy(col[i*w:(i+1)*w], rows[i*tsz+off:i*tsz+off+w])
		}
		t.cols[f] = col
	}
	return t
}

// Len returns the row count.
func (t *Table) Len() int { return t.n }

// Int32At reads column f of row i as int32 (the comparator's join columns
// are int32).
func (t *Table) Int32At(f, i int) int32 {
	w := t.Schema.Field(f).Type.Size()
	col := t.cols[f]
	return int32(uint32(col[i*w]) | uint32(col[i*w+1])<<8 | uint32(col[i*w+2])<<16 | uint32(col[i*w+3])<<24)
}

// slice returns rows [lo, hi) of the table as a view.
func (t *Table) slice(lo, hi int) *Table {
	v := &Table{Schema: t.Schema, n: hi - lo, cols: make([][]byte, len(t.cols))}
	for f := range t.cols {
		w := t.Schema.Field(f).Type.Size()
		v.cols[f] = t.cols[f][lo*w : hi*w]
	}
	return v
}

// JoinResult counts matches and, when materialised, carries the output.
type JoinResult struct {
	Matches int64
	// OutBytes is the size of the materialised output (two columns or a
	// full row reconstruction).
	OutBytes int64
}

// ThetaJoin runs a partitioned nested-loop θ-join with the given
// predicate over rows (i of a, j of b), parallelised across partitions ×
// threads, in the column store's two steps: count matches, then
// materialise. When selectAll is set, every output row reconstructs all
// columns of both inputs (the measured 40% penalty of the paper's
// select-* case); otherwise only the two join columns are emitted.
func ThetaJoin(a, b *Table, fa, fb int, pred func(x, y int32) bool, selectAll bool, threads int) JoinResult {
	if threads <= 0 {
		threads = 1
	}
	parts := partition(a, threads)
	results := make([]JoinResult, len(parts))
	var wg sync.WaitGroup
	for pi, part := range parts {
		wg.Add(1)
		go func(pi int, part *Table) {
			defer wg.Done()
			results[pi] = joinPartition(part, b, fa, fb, pred, selectAll)
		}(pi, part)
	}
	wg.Wait()
	var total JoinResult
	for _, r := range results {
		total.Matches += r.Matches
		total.OutBytes += r.OutBytes
	}
	return total
}

func joinPartition(a, b *Table, fa, fb int, pred func(x, y int32) bool, selectAll bool) JoinResult {
	start := time.Now()
	// Pass 1: count.
	var matches int64
	for i := 0; i < a.n; i++ {
		x := a.Int32At(fa, i)
		for j := 0; j < b.n; j++ {
			if pred(x, b.Int32At(fb, j)) {
				matches++
			}
		}
	}
	// Pass 2: materialise into a compact output area.
	outWidth := 8 // the two join columns
	if selectAll {
		outWidth = a.Schema.TupleSize() + b.Schema.TupleSize()
	}
	out := make([]byte, 0, int(matches)*outWidth)
	for i := 0; i < a.n; i++ {
		x := a.Int32At(fa, i)
		for j := 0; j < b.n; j++ {
			if !pred(x, b.Int32At(fb, j)) {
				continue
			}
			if selectAll {
				// Column-store output reconstruction: gather every
				// attribute of both rows from its column array.
				out = appendRow(out, a, i)
				out = appendRow(out, b, j)
			} else {
				out = append(out,
					byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
				y := b.Int32At(fb, j)
				out = append(out,
					byte(y), byte(y>>8), byte(y>>16), byte(y>>24))
			}
		}
	}
	if selectAll {
		values := matches * int64(a.Schema.NumFields()+b.Schema.NumFields())
		model.Pad(start, time.Since(start)+time.Duration(values*GatherNsPerValue))
	}
	return JoinResult{Matches: matches, OutBytes: int64(len(out))}
}

func appendRow(dst []byte, t *Table, i int) []byte {
	for f := 0; f < t.Schema.NumFields(); f++ {
		w := t.Schema.Field(f).Type.Size()
		dst = append(dst, t.cols[f][i*w:(i+1)*w]...)
	}
	return dst
}

// HashEquiJoin runs the column store's optimised equi-join: build a hash
// index on b's column, probe with a's, parallelised across a-partitions.
func HashEquiJoin(a, b *Table, fa, fb int, threads int) JoinResult {
	idx := make(map[int32][]int32, b.n)
	for j := 0; j < b.n; j++ {
		k := b.Int32At(fb, j)
		idx[k] = append(idx[k], int32(j))
	}
	if threads <= 0 {
		threads = 1
	}
	parts := partition(a, threads)
	counts := make([]int64, len(parts))
	var wg sync.WaitGroup
	for pi, part := range parts {
		wg.Add(1)
		go func(pi int, part *Table) {
			defer wg.Done()
			var m int64
			for i := 0; i < part.n; i++ {
				m += int64(len(idx[part.Int32At(fa, i)]))
			}
			counts[pi] = m
		}(pi, part)
	}
	wg.Wait()
	var total JoinResult
	for _, c := range counts {
		total.Matches += c
	}
	total.OutBytes = total.Matches * 8
	return total
}

func partition(t *Table, n int) []*Table {
	if n > t.n {
		n = t.n
	}
	if n <= 1 {
		return []*Table{t}
	}
	parts := make([]*Table, 0, n)
	per := t.n / n
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if i == n-1 {
			hi = t.n
		}
		parts = append(parts, t.slice(lo, hi))
	}
	return parts
}
