package columnar

import (
	"testing"

	"saber/internal/schema"
)

var testSchema = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "k", Type: schema.Int32},
	schema.Field{Name: "v", Type: schema.Int32},
)

func mkTable(n int, keyMod int32) *Table {
	b := schema.NewTupleBuilder(testSchema, n)
	for i := 0; i < n; i++ {
		b.Begin().Timestamp(int64(i)).Int32("k", int32(i)%keyMod).Int32("v", int32(i))
	}
	return FromRows(testSchema, b.Bytes())
}

func TestFromRowsRoundTrip(t *testing.T) {
	tab := mkTable(100, 10)
	if tab.Len() != 100 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for i := 0; i < 100; i++ {
		if tab.Int32At(1, i) != int32(i)%10 || tab.Int32At(2, i) != int32(i) {
			t.Fatalf("row %d decomposed wrong", i)
		}
	}
}

func TestThetaJoinCounts(t *testing.T) {
	a := mkTable(64, 8)
	b := mkTable(64, 8)
	// Equality predicate: each a row matches 8 b rows.
	for _, threads := range []int{1, 4} {
		r := ThetaJoin(a, b, 1, 1, func(x, y int32) bool { return x == y }, false, threads)
		if r.Matches != 64*8 {
			t.Fatalf("threads %d: matches = %d, want 512", threads, r.Matches)
		}
		if r.OutBytes != r.Matches*8 {
			t.Fatalf("two-column output bytes = %d", r.OutBytes)
		}
	}
}

func TestThetaJoinSelectAllReconstructs(t *testing.T) {
	a := mkTable(32, 4)
	b := mkTable(32, 4)
	r := ThetaJoin(a, b, 1, 1, func(x, y int32) bool { return x == y }, true, 2)
	wantRow := int64(testSchema.TupleSize() * 2)
	if r.OutBytes != r.Matches*wantRow {
		t.Fatalf("select-* bytes = %d, want %d per row", r.OutBytes, wantRow)
	}
}

func TestHashEquiJoinMatchesTheta(t *testing.T) {
	a := mkTable(200, 16)
	b := mkTable(150, 16)
	theta := ThetaJoin(a, b, 1, 1, func(x, y int32) bool { return x == y }, false, 2)
	hash := HashEquiJoin(a, b, 1, 1, 2)
	if theta.Matches != hash.Matches {
		t.Fatalf("theta %d != hash %d", theta.Matches, hash.Matches)
	}
}

func TestLowSelectivityTheta(t *testing.T) {
	a := mkTable(128, 128)
	b := mkTable(128, 128)
	r := ThetaJoin(a, b, 1, 1, func(x, y int32) bool { return x == y && x < 2 }, false, 3)
	if r.Matches != 2 {
		t.Fatalf("matches = %d", r.Matches)
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	small := mkTable(3, 3)
	parts := partition(small, 8)
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != 3 {
		t.Fatalf("partition lost rows: %d", total)
	}
	if r := HashEquiJoin(small, small, 1, 1, 0); r.Matches != 3 {
		t.Fatalf("single-thread fallback: %d", r.Matches)
	}
}
