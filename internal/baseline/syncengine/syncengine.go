// Package syncengine is the Esper-like baseline of the paper's Fig. 7: a
// multi-threaded stream engine whose window evaluation is globally
// synchronised. Any number of goroutines may insert concurrently, but a
// single engine-wide lock serialises all processing, and each tuple pays
// a per-tuple evaluation cost — the two properties the paper credits for
// Esper's two-orders-of-magnitude gap.
//
// Query semantics reuse the verified operator layer (internal/exec), so
// the comparison isolates the architecture, not the operator code.
package syncengine

import (
	"sync"
	"time"

	"saber/internal/exec"
	"saber/internal/model"
	"saber/internal/query"
	"saber/internal/window"
)

// Config calibrates the baseline.
type Config struct {
	// PerTupleNs is the synchronised per-tuple evaluation cost
	// (listener dispatch, window index maintenance, boxing).
	PerTupleNs float64
	// Model supplies the global time scale.
	Model model.Params
}

// Defaults returns the Fig. 7-calibrated configuration (two orders of
// magnitude below SABER's per-tuple cost at scale 1).
func Defaults() Config {
	return Config{PerTupleNs: 2000, Model: model.Default()}
}

// Engine executes queries one tuple batch at a time under a global lock.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	queries []*registeredQuery

	TuplesIn int64
	BytesOut int64
}

type registeredQuery struct {
	plan *exec.Plan
	asm  *exec.Assembler
	pos  int64
	prev int64
}

// New creates the engine.
func New(cfg Config) *Engine { return &Engine{cfg: cfg} }

// Register compiles and adds a query (single-input queries only; the
// baseline comparison uses them).
func (e *Engine) Register(q *query.Query) error {
	plan, err := exec.Compile(q)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queries = append(e.queries, &registeredQuery{
		plan: plan,
		asm:  exec.NewAssembler(plan),
		prev: window.NoPrev,
	})
	return nil
}

// Insert processes packed tuples through every registered query, under
// the global lock, paying the per-tuple cost.
func (e *Engine) Insert(data []byte) {
	e.mu.Lock()
	start := time.Now() // lock-wait time does not count as work
	tuples := 0
	for _, rq := range e.queries {
		s := rq.plan.InputSchema(0)
		tsz := s.TupleSize()
		n := len(data) / tsz
		if n == 0 {
			continue
		}
		tuples += n
		res := rq.plan.NewResult()
		in := [2]exec.Batch{{Data: data, Ctx: window.Context{
			FirstIndex:    rq.pos,
			PrevTimestamp: rq.prev,
		}}}
		if err := rq.plan.Process(in, res); err != nil {
			panic(err)
		}
		out := rq.asm.Drain(res, nil)
		e.BytesOut += int64(len(out))
		rq.plan.ReleaseResult(res)
		rq.pos += int64(n)
		rq.prev = s.Timestamp(data[(n-1)*tsz:])
	}
	e.TuplesIn += int64(tuples)
	// The per-tuple cost is paid while holding the engine lock: that is
	// the global synchronisation the paper blames for Esper's gap.
	model.Pad(start, time.Duration(float64(tuples)*e.cfg.PerTupleNs*e.cfg.Model.TimeScale))
	e.mu.Unlock()
}

// Flush emits still-open windows.
func (e *Engine) Flush() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rq := range e.queries {
		e.BytesOut += int64(len(rq.asm.Flush(nil)))
	}
}
