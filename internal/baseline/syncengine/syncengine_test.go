package syncengine

import (
	"sync"
	"testing"
	"time"

	"saber/internal/model"
	"saber/internal/query"
	"saber/internal/window"
	"saber/internal/workload"
)

func fastCfg() Config {
	c := Defaults()
	c.Model = model.Default().Scaled(0)
	return c
}

func TestSyncEngineRunsQuery(t *testing.T) {
	e := New(fastCfg())
	if err := e.Register(workload.GroupBy([]query.AggFunc{query.Sum}, 8, window.NewCount(128, 128))); err != nil {
		t.Fatal(err)
	}
	g := workload.NewSynGen(1)
	g.Groups = 8
	e.Insert(g.Next(nil, 1024))
	e.Flush()
	if e.TuplesIn != 1024 || e.BytesOut == 0 {
		t.Fatalf("TuplesIn=%d BytesOut=%d", e.TuplesIn, e.BytesOut)
	}
}

func TestSyncEngineRejectsBadQuery(t *testing.T) {
	e := New(fastCfg())
	q := &query.Query{Name: "broken"}
	if err := e.Register(q); err == nil {
		t.Fatal("invalid query registered")
	}
}

// TestGlobalLockSerialises: concurrent inserters are correct (no lost
// tuples) because the engine lock serialises them.
func TestGlobalLockSerialises(t *testing.T) {
	e := New(fastCfg())
	if err := e.Register(workload.Select(1, window.NewCount(64, 64))); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := workload.NewSynGen(int64(w))
			for i := 0; i < 10; i++ {
				e.Insert(g.Next(nil, 100))
			}
		}(w)
	}
	wg.Wait()
	if e.TuplesIn != 4000 {
		t.Fatalf("TuplesIn = %d", e.TuplesIn)
	}
}

// TestPerTupleCostDominates pins the baseline's defining property: wall
// time scales with tuples, not with parallel inserters.
func TestPerTupleCostDominates(t *testing.T) {
	cfg := Defaults()
	cfg.PerTupleNs = 20000 // exaggerate for measurement stability
	cfg.Model = model.Default().Scaled(1)
	e := New(cfg)
	if err := e.Register(workload.Select(1, window.NewCount(64, 64))); err != nil {
		t.Fatal(err)
	}
	g := workload.NewSynGen(9)
	data := g.Next(nil, 2000)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.Insert(data[w*500*32 : (w+1)*500*32])
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// 2000 tuples × 20 µs = 40 ms of serialised work regardless of the
	// four inserters.
	if elapsed < 35*time.Millisecond {
		t.Fatalf("parallel inserters bypassed the global lock: %v", elapsed)
	}
}
