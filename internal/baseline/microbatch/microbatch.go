// Package microbatch is the Spark-Streaming-like baseline of the paper's
// Figures 1 and 9: a micro-batch engine whose physical batch size is
// coupled to the query's window slide. Each micro-batch pays a fixed
// scheduling overhead before its partial aggregates are computed in
// parallel, and every emitted window merges the partials of all the
// micro-batches it spans — so small slides drown in per-batch overhead,
// which is exactly the coupling SABER's hybrid model removes.
package microbatch

import (
	"time"

	"saber/internal/model"
	"saber/internal/schema"
)

// Config calibrates the baseline. Durations scale with Model.TimeScale so
// comparisons against the SABER engine stay consistent.
type Config struct {
	// Executors is the simulated cluster parallelism.
	Executors int
	// SchedulingOverhead is the fixed cost of launching one micro-batch
	// (driver scheduling, task serialisation).
	SchedulingOverhead time.Duration
	// PerTupleNs is the executor-side cost per tuple.
	PerTupleNs float64
	// MergeNsPerGroup is the cost of folding one group of one partial
	// into a window result.
	MergeNsPerGroup float64
	// Model supplies the global time scale.
	Model model.Params
}

// Defaults returns the Fig. 1-calibrated configuration.
func Defaults() Config {
	return Config{
		Executors:          64,
		SchedulingOverhead: 250 * time.Millisecond,
		PerTupleNs:         25,
		MergeNsPerGroup:    400,
		Model:              model.Default(),
	}
}

// Query is the aggregation the engine runs (a GROUP-BY aggregation, the
// shape used in Figures 1 and 9).
type Query struct {
	Schema *schema.Schema
	// Filter drops tuples before aggregation (nil keeps all).
	Filter func(tuple []byte) bool
	// GroupKey maps a tuple to its group (return 0 for global
	// aggregation).
	GroupKey func(tuple []byte) int64
	// AggArg is the aggregated value.
	AggArg func(tuple []byte) float64
	// WindowBatches is how many micro-batches one window spans (window
	// size / slide, the coupling).
	WindowBatches int
	// BatchTuples is the micro-batch size in tuples (== the slide).
	BatchTuples int
}

type partial map[int64]groupAcc

type groupAcc struct {
	sum float64
	cnt int64
}

// Result is one emitted window's aggregate per group.
type Result struct {
	Window int64
	Groups map[int64]float64 // group → sum
}

// Engine runs one query over micro-batches.
type Engine struct {
	cfg Config
	q   Query

	cur      partial
	curCount int
	history  []partial // last WindowBatches partials
	batchSeq int64

	results   []Result
	keepAll   bool
	TuplesIn  int64
	WindowsUp int64
}

// New creates an engine for the query.
func New(cfg Config, q Query) *Engine {
	if cfg.Executors <= 0 {
		cfg.Executors = 1
	}
	if q.WindowBatches <= 0 {
		q.WindowBatches = 1
	}
	return &Engine{cfg: cfg, q: q, cur: partial{}}
}

// KeepResults retains emitted windows for inspection (tests); by default
// only counters are kept.
func (e *Engine) KeepResults() { e.keepAll = true }

// Results returns retained windows.
func (e *Engine) Results() []Result { return e.results }

// Process ingests packed tuples, closing micro-batches as BatchTuples
// boundaries pass.
func (e *Engine) Process(data []byte) {
	s := e.q.Schema
	tsz := s.TupleSize()
	n := len(data) / tsz
	for i := 0; i < n; i++ {
		tuple := data[i*tsz : (i+1)*tsz]
		e.TuplesIn++
		if e.q.Filter == nil || e.q.Filter(tuple) {
			k := e.q.GroupKey(tuple)
			acc := e.cur[k]
			acc.sum += e.q.AggArg(tuple)
			acc.cnt++
			e.cur[k] = acc
		}
		e.curCount++
		if e.curCount >= e.q.BatchTuples {
			e.closeBatch()
		}
	}
}

// Flush closes the current partial batch and emits its window.
func (e *Engine) Flush() {
	if e.curCount > 0 {
		e.closeBatch()
	}
}

func (e *Engine) closeBatch() {
	start := time.Now()
	// The driver schedules the batch; executors split the tuple work.
	work := float64(e.curCount) * e.cfg.PerTupleNs / float64(e.cfg.Executors)
	target := time.Duration(float64(e.cfg.SchedulingOverhead) + work)

	e.history = append(e.history, e.cur)
	if len(e.history) > e.q.WindowBatches {
		e.history = e.history[1:]
	}
	e.cur = partial{}
	e.curCount = 0
	e.batchSeq++

	// Emit the window ending at this batch: merge the partials it spans.
	merged := map[int64]float64{}
	groupsMerged := 0
	for _, p := range e.history {
		for k, acc := range p {
			merged[k] += acc.sum
			groupsMerged++
		}
	}
	e.WindowsUp++
	if e.keepAll {
		e.results = append(e.results, Result{Window: e.batchSeq - 1, Groups: merged})
	}
	target += time.Duration(float64(groupsMerged) * e.cfg.MergeNsPerGroup)
	model.Pad(start, time.Duration(float64(target)*e.cfg.Model.TimeScale))
}
