package microbatch

import (
	"testing"
	"time"

	"saber/internal/model"
	"saber/internal/schema"
	"saber/internal/workload"
)

func fastCfg() Config {
	c := Defaults()
	c.Model = model.Default().Scaled(0) // no padding in unit tests
	return c
}

func mkQuery(batchTuples, windowBatches int) Query {
	s := workload.SynSchema
	return Query{
		Schema:        s,
		GroupKey:      func(tu []byte) int64 { return int64(s.ReadInt32(tu, 2)) },
		AggArg:        func(tu []byte) float64 { return float64(s.ReadFloat32(tu, 1)) },
		BatchTuples:   batchTuples,
		WindowBatches: windowBatches,
	}
}

func TestMicroBatchAggregation(t *testing.T) {
	g := workload.NewSynGen(1)
	g.Groups = 4
	data := g.Next(nil, 1000)

	e := New(fastCfg(), mkQuery(100, 2))
	e.KeepResults()
	e.Process(data)
	e.Flush()

	if e.TuplesIn != 1000 {
		t.Fatalf("TuplesIn = %d", e.TuplesIn)
	}
	res := e.Results()
	if len(res) != 10 {
		t.Fatalf("windows = %d, want 10", len(res))
	}
	// Window w merges batches w-1 and w: verify against a direct sum.
	s := workload.SynSchema
	tsz := s.TupleSize()
	for wi, r := range res {
		lo := (wi - 1) * 100
		if lo < 0 {
			lo = 0
		}
		hi := (wi + 1) * 100
		want := map[int64]float64{}
		for i := lo; i < hi; i++ {
			tu := data[i*tsz : (i+1)*tsz]
			want[int64(s.ReadInt32(tu, 2))] += float64(s.ReadFloat32(tu, 1))
		}
		for k, v := range want {
			got := r.Groups[k]
			if diff := got - v; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("window %d group %d = %g, want %g", wi, k, got, v)
			}
		}
	}
}

func TestMicroBatchFilter(t *testing.T) {
	s := workload.SynSchema
	q := mkQuery(50, 1)
	q.Filter = func(tu []byte) bool { return s.ReadInt32(tu, 3) < 512 }
	e := New(fastCfg(), q)
	e.KeepResults()
	g := workload.NewSynGen(2)
	e.Process(g.Next(nil, 500))
	e.Flush()
	if len(e.Results()) != 10 {
		t.Fatalf("windows = %d", len(e.Results()))
	}
}

// TestSlideCouplingShape pins Fig. 1's property: with padding enabled,
// smaller slides (smaller batches) yield lower throughput.
func TestSlideCouplingShape(t *testing.T) {
	run := func(batch int) float64 {
		cfg := Defaults()
		cfg.Model = model.Default().Scaled(0.0005) // tiny but non-zero
		cfg.SchedulingOverhead = 250 * time.Millisecond
		q := mkQuery(batch, 4)
		e := New(cfg, q)
		g := workload.NewSynGen(3)
		g.Groups = 64
		data := g.Next(nil, batch*40)
		start := time.Now()
		e.Process(data)
		e.Flush()
		return float64(e.TuplesIn) / time.Since(start).Seconds()
	}
	small := run(500)
	large := run(8000)
	if small >= large {
		t.Fatalf("micro-batch coupling missing: slide 500 → %.0f t/s, slide 8000 → %.0f t/s", small, large)
	}
}

func TestDefaultsSane(t *testing.T) {
	c := Defaults()
	if c.Executors <= 0 || c.SchedulingOverhead <= 0 || c.PerTupleNs <= 0 {
		t.Fatalf("defaults = %+v", c)
	}
	e := New(Config{Model: model.Default().Scaled(0)}, mkQuery(10, 0))
	e.Process(schema.NewTupleBuilder(workload.SynSchema, 0).Bytes())
	e.Flush() // empty flush is a no-op
	if e.WindowsUp != 0 {
		t.Fatal("phantom windows")
	}
}
