package expr

import (
	"fmt"

	"saber/internal/schema"
)

// NumProgram is a compiled numeric expression. Evaluation takes the raw
// tuple bytes of each input side (pass nil for unused sides). Per-tuple
// evaluation runs the closure tree; EvalBatchFloat/EvalBatchInt run the
// flat batch program (vector.go) when the expression lowered to one.
type NumProgram struct {
	typ   schema.Type
	fi    func(l, r []byte) int64
	ff    func(l, r []byte) float64
	batch *numBatchProg
}

// Type returns the static result type of the expression (Int32, Int64,
// Float32 or Float64 after the usual numeric promotions).
func (p *NumProgram) Type() schema.Type { return p.typ }

// IsInt reports whether the expression has integer semantics.
func (p *NumProgram) IsInt() bool { return p.typ == schema.Int32 || p.typ == schema.Int64 }

// EvalInt evaluates with integer semantics; float results are truncated.
func (p *NumProgram) EvalInt(l, r []byte) int64 {
	if p.fi != nil {
		return p.fi(l, r)
	}
	return int64(p.ff(l, r))
}

// EvalFloat evaluates to float64.
func (p *NumProgram) EvalFloat(l, r []byte) float64 {
	if p.ff != nil {
		return p.ff(l, r)
	}
	return float64(p.fi(l, r))
}

// PredProgram is a compiled boolean predicate. Per-tuple evaluation runs
// the closure tree; EvalBatch prefers the fused compare leaves, then the
// flat batch program (vector.go).
type PredProgram struct {
	fn     func(l, r []byte) bool
	fused  bool
	leaves []leafCmp
	batch  *predBatchProg
}

// Eval evaluates the predicate over the input tuples.
func (p *PredProgram) Eval(l, r []byte) bool { return p.fn(l, r) }

// EvalTuple evaluates a single-stream predicate.
func (p *PredProgram) EvalTuple(t []byte) bool { return p.fn(t, nil) }

// CompileNum compiles a numeric expression with the given resolver.
func CompileNum(e Expr, r Resolver) (*NumProgram, error) {
	p, err := compileNum(e, r)
	if err != nil {
		return nil, err
	}
	p.batch = compileNumBatch(e, r)
	return p, nil
}

// CompilePred compiles a predicate with the given resolver.
func CompilePred(p Pred, r Resolver) (*PredProgram, error) {
	fn, err := compilePred(p, r)
	if err != nil {
		return nil, err
	}
	prog := &PredProgram{fn: fn}
	if leaves, ok := flattenAndLeaves(p, r, nil); ok {
		prog.fused, prog.leaves = true, leaves
	} else {
		prog.batch = compilePredBatch(p, r)
	}
	return prog, nil
}

func compileNum(e Expr, r Resolver) (*NumProgram, error) {
	switch v := e.(type) {
	case Column:
		side, field, s, err := r.Resolve(v)
		if err != nil {
			return nil, err
		}
		typ := s.Field(field).Type
		pick := func(l, r []byte) []byte {
			if side == 0 {
				return l
			}
			return r
		}
		p := &NumProgram{typ: typ}
		switch typ {
		case schema.Int32:
			p.fi = func(l, r []byte) int64 { return int64(s.ReadInt32(pick(l, r), field)) }
		case schema.Int64:
			p.fi = func(l, r []byte) int64 { return s.ReadInt64(pick(l, r), field) }
		case schema.Float32:
			p.ff = func(l, r []byte) float64 { return float64(s.ReadFloat32(pick(l, r), field)) }
		case schema.Float64:
			p.ff = func(l, r []byte) float64 { return s.ReadFloat64(pick(l, r), field) }
		}
		return p, nil

	case IntConst:
		c := int64(v)
		return &NumProgram{typ: schema.Int64, fi: func(l, r []byte) int64 { return c }}, nil

	case FloatConst:
		c := float64(v)
		return &NumProgram{typ: schema.Float64, ff: func(l, r []byte) float64 { return c }}, nil

	case Neg:
		in, err := compileNum(v.E, r)
		if err != nil {
			return nil, err
		}
		p := &NumProgram{typ: in.typ}
		if in.IsInt() {
			f := in.fi
			p.fi = func(l, r []byte) int64 { return -f(l, r) }
		} else {
			f := in.ff
			p.ff = func(l, r []byte) float64 { return -f(l, r) }
		}
		return p, nil

	case Arith:
		lp, err := compileNum(v.Left, r)
		if err != nil {
			return nil, err
		}
		rp, err := compileNum(v.Right, r)
		if err != nil {
			return nil, err
		}
		typ := Promote(lp.typ, rp.typ)
		p := &NumProgram{typ: typ}
		if p.IsInt() {
			lf, rf := intFn(lp), intFn(rp)
			switch v.Op {
			case Add:
				p.fi = func(l, r []byte) int64 { return lf(l, r) + rf(l, r) }
			case Sub:
				p.fi = func(l, r []byte) int64 { return lf(l, r) - rf(l, r) }
			case Mul:
				p.fi = func(l, r []byte) int64 { return lf(l, r) * rf(l, r) }
			case Div:
				p.fi = func(l, r []byte) int64 {
					d := rf(l, r)
					if d == 0 {
						return 0
					}
					return lf(l, r) / d
				}
			case Mod:
				p.fi = func(l, r []byte) int64 {
					d := rf(l, r)
					if d == 0 {
						return 0
					}
					return lf(l, r) % d
				}
			default:
				return nil, fmt.Errorf("expr: unknown arithmetic op %d", v.Op)
			}
		} else {
			lf, rf := floatFn(lp), floatFn(rp)
			switch v.Op {
			case Add:
				p.ff = func(l, r []byte) float64 { return lf(l, r) + rf(l, r) }
			case Sub:
				p.ff = func(l, r []byte) float64 { return lf(l, r) - rf(l, r) }
			case Mul:
				p.ff = func(l, r []byte) float64 { return lf(l, r) * rf(l, r) }
			case Div:
				p.ff = func(l, r []byte) float64 { return lf(l, r) / rf(l, r) }
			case Mod:
				return nil, fmt.Errorf("expr: %% requires integer operands")
			default:
				return nil, fmt.Errorf("expr: unknown arithmetic op %d", v.Op)
			}
		}
		return p, nil
	}
	return nil, fmt.Errorf("expr: unsupported expression %T", e)
}

// Promote returns the result type of combining two numeric types, following
// the usual promotions: float64 > float32 > int64 > int32.
func Promote(a, b schema.Type) schema.Type {
	rank := func(t schema.Type) int {
		switch t {
		case schema.Int32:
			return 0
		case schema.Int64:
			return 1
		case schema.Float32:
			return 2
		default:
			return 3
		}
	}
	if rank(a) >= rank(b) {
		return a
	}
	return b
}

func intFn(p *NumProgram) func(l, r []byte) int64 {
	if p.fi != nil {
		return p.fi
	}
	f := p.ff
	return func(l, r []byte) int64 { return int64(f(l, r)) }
}

func floatFn(p *NumProgram) func(l, r []byte) float64 {
	if p.ff != nil {
		return p.ff
	}
	f := p.fi
	return func(l, r []byte) float64 { return float64(f(l, r)) }
}

func compilePred(p Pred, r Resolver) (func(l, rt []byte) bool, error) {
	switch v := p.(type) {
	case Cmp:
		lp, err := compileNum(v.Left, r)
		if err != nil {
			return nil, err
		}
		rp, err := compileNum(v.Right, r)
		if err != nil {
			return nil, err
		}
		if lp.IsInt() && rp.IsInt() {
			lf, rf := intFn(lp), intFn(rp)
			switch v.Op {
			case Eq:
				return func(l, r []byte) bool { return lf(l, r) == rf(l, r) }, nil
			case Ne:
				return func(l, r []byte) bool { return lf(l, r) != rf(l, r) }, nil
			case Lt:
				return func(l, r []byte) bool { return lf(l, r) < rf(l, r) }, nil
			case Le:
				return func(l, r []byte) bool { return lf(l, r) <= rf(l, r) }, nil
			case Gt:
				return func(l, r []byte) bool { return lf(l, r) > rf(l, r) }, nil
			case Ge:
				return func(l, r []byte) bool { return lf(l, r) >= rf(l, r) }, nil
			}
		}
		lf, rf := floatFn(lp), floatFn(rp)
		switch v.Op {
		case Eq:
			return func(l, r []byte) bool { return lf(l, r) == rf(l, r) }, nil
		case Ne:
			return func(l, r []byte) bool { return lf(l, r) != rf(l, r) }, nil
		case Lt:
			return func(l, r []byte) bool { return lf(l, r) < rf(l, r) }, nil
		case Le:
			return func(l, r []byte) bool { return lf(l, r) <= rf(l, r) }, nil
		case Gt:
			return func(l, r []byte) bool { return lf(l, r) > rf(l, r) }, nil
		case Ge:
			return func(l, r []byte) bool { return lf(l, r) >= rf(l, r) }, nil
		}
		return nil, fmt.Errorf("expr: unknown comparison op %d", v.Op)

	case And:
		fns := make([]func(l, r []byte) bool, len(v.Preds))
		for i, q := range v.Preds {
			fn, err := compilePred(q, r)
			if err != nil {
				return nil, err
			}
			fns[i] = fn
		}
		return func(l, r []byte) bool {
			for _, fn := range fns {
				if !fn(l, r) {
					return false
				}
			}
			return true
		}, nil

	case Or:
		fns := make([]func(l, r []byte) bool, len(v.Preds))
		for i, q := range v.Preds {
			fn, err := compilePred(q, r)
			if err != nil {
				return nil, err
			}
			fns[i] = fn
		}
		return func(l, r []byte) bool {
			for _, fn := range fns {
				if fn(l, r) {
					return true
				}
			}
			return false
		}, nil

	case Not:
		fn, err := compilePred(v.P, r)
		if err != nil {
			return nil, err
		}
		return func(l, r []byte) bool { return !fn(l, r) }, nil
	}
	return nil, fmt.Errorf("expr: unsupported predicate %T", p)
}
