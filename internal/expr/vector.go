// Vectorized batch evaluation (the CPU analogue of the paper's batch-wide
// GPGPU kernels, §5.3/§5.4). CompileNum and CompilePred additionally lower
// the expression tree into a flat register program that evaluates a whole
// strided tuple batch column-at-a-time: each program op is one tight loop
// over raw tuple bytes, so the per-tuple cost of the closure-tree
// interpreter (an indirect call per AST node per tuple) disappears from
// the batch operator hot path.
//
// Two layers of lowering:
//
//   - Fused fast paths for the dominant shapes. A predicate that is a
//     single column⋈constant compare — or an AND of such compares — skips
//     program execution entirely: EvalBatch runs one loop over the raw
//     bytes, filling the selection vector directly. A numeric expression
//     that is a plain fixed-offset column load fills the value column in
//     one typed loop.
//   - A general flat program. Arbitrary arithmetic/boolean trees compile
//     to a register machine over int64/float64/bool columns; execution
//     dispatches once per op per batch instead of once per node per tuple.
//
// The scalar closure evaluators remain the reference semantics: the batch
// layer mirrors their promotions (per-node int/float domains, truncating
// int conversions, division-by-zero yielding 0) exactly, and falls back to
// them per-tuple for any shape it cannot lower, so batch and scalar
// evaluation are bit-identical by construction and verified by the
// differential tests.
package expr

import (
	"encoding/binary"
	"math"

	"saber/internal/schema"
)

// BatchInput describes one batch of tuple rows for vectorized evaluation.
// L and R hold the packed bytes of the two input sides (R is nil for
// single-stream expressions). A stride of 0 broadcasts that side's single
// tuple to every row — the join inner pass pins one left tuple against a
// whole right fragment this way. N is the row count.
type BatchInput struct {
	L, R             []byte
	LStride, RStride int
	N                int

	// Optional columnar views. When a side's tuples also exist as
	// contiguous per-field segments (the columnar ring layout), Cols[j]
	// holds N*width bytes of the field at row-tuple byte offset ColOffs[j],
	// packed with stride == the field width. Load ops and fused selection
	// loops prefer these dense segments over the strided row walk; any nil
	// entry (or an offset with no entry) falls back to the rows. Broadcast
	// sides (stride 0) always read the row bytes.
	LCols, RCols       [][]byte
	LColOffs, RColOffs []int32
}

func (in BatchInput) side(s uint8) (data []byte, stride int) {
	if s == 0 {
		return in.L, in.LStride
	}
	return in.R, in.RStride
}

// colView returns the contiguous column backing the field at row byte
// offset off on side s, or nil when the batch carries no such view.
func (in BatchInput) colView(s uint8, off int32) []byte {
	cols, offs := in.LCols, in.LColOffs
	if s != 0 {
		cols, offs = in.RCols, in.RColOffs
	}
	for j, o := range offs {
		if o == off {
			return cols[j]
		}
	}
	return nil
}

// row returns the scalar-evaluator view of row i (used by the per-tuple
// fallback path).
func (in BatchInput) row(i int) (l, r []byte) {
	l, r = in.L, in.R
	if in.LStride > 0 {
		l = in.L[i*in.LStride:]
	}
	if in.RStride > 0 {
		r = in.R[i*in.RStride:]
	}
	return l, r
}

// VecScratch holds the reusable register columns that batch evaluation
// runs on. Callers keep one per worker-scratch and pass it to every
// EvalBatch* call; steady state allocates nothing. The zero value is
// ready. Not safe for concurrent use.
type VecScratch struct {
	ints   [][]int64
	floats [][]float64
	masks  [][]bool
	selTmp []int32
}

func (vs *VecScratch) intReg(i, n int) []int64 {
	for len(vs.ints) <= i {
		vs.ints = append(vs.ints, nil)
	}
	if cap(vs.ints[i]) < n {
		vs.ints[i] = make([]int64, n)
	}
	vs.ints[i] = vs.ints[i][:n]
	return vs.ints[i]
}

func (vs *VecScratch) floatReg(i, n int) []float64 {
	for len(vs.floats) <= i {
		vs.floats = append(vs.floats, nil)
	}
	if cap(vs.floats[i]) < n {
		vs.floats[i] = make([]float64, n)
	}
	vs.floats[i] = vs.floats[i][:n]
	return vs.floats[i]
}

func (vs *VecScratch) maskReg(i, n int) []bool {
	for len(vs.masks) <= i {
		vs.masks = append(vs.masks, nil)
	}
	if cap(vs.masks[i]) < n {
		vs.masks[i] = make([]bool, n)
	}
	vs.masks[i] = vs.masks[i][:n]
	return vs.masks[i]
}

// --- Flat program representation --------------------------------------------

type vecOpCode uint8

const (
	vLoadI32 vecOpCode = iota // intReg[dst] = sign-extended int32 column
	vLoadI64                  // intReg[dst] = int64 column
	vLoadF32                  // floatReg[dst] = float64(float32 column)
	vLoadF64                  // floatReg[dst] = float64 column
	vConstI                   // intReg[dst] = ci
	vConstF                   // floatReg[dst] = cf
	vConstM                   // maskReg[dst] = ci != 0
	vCastIF                   // floatReg[dst] = float64(intReg[a])
	vCastFI                   // intReg[dst] = int64(floatReg[a])
	vNegI                     // intReg[dst] = -intReg[dst]
	vNegF                     // floatReg[dst] = -floatReg[dst]
	vArithI                   // intReg[dst] = intReg[a] op intReg[b]
	vArithF                   // floatReg[dst] = floatReg[a] op floatReg[b]
	vCmpI                     // maskReg[dst] = intReg[a] cmp intReg[b]
	vCmpF                     // maskReg[dst] = floatReg[a] cmp floatReg[b]
	vAndM                     // maskReg[dst] = maskReg[dst] && maskReg[b]
	vOrM                      // maskReg[dst] = maskReg[dst] || maskReg[b]
	vNotM                     // maskReg[dst] = !maskReg[dst]
)

type vecOp struct {
	code        vecOpCode
	dst, adr, b uint8
	side        uint8
	arith       ArithOp
	cmp         CmpOp
	off         int32
	ci          int64
	cf          float64
}

// maxVecRegs bounds the register-stack depth per bank; deeper trees fall
// back to per-tuple scalar evaluation (never hit by the paper's queries).
const maxVecRegs = 16

// numBatchProg is a compiled numeric batch program; the result lands in
// intReg[0] or floatReg[0] depending on isInt.
type numBatchProg struct {
	ops   []vecOp
	isInt bool
}

// predBatchProg is a compiled predicate batch program; the result lands in
// maskReg[0].
type predBatchProg struct {
	ops []vecOp
}

// --- Compilation ------------------------------------------------------------

type vecBuilder struct {
	r   Resolver
	ops []vecOp
}

func (b *vecBuilder) emit(op vecOp) { b.ops = append(b.ops, op) }

// num lowers e so its value lands in intReg[di] (returning isInt=true) or
// floatReg[df] (isInt=false). Registers above the frame are free.
func (b *vecBuilder) num(e Expr, di, df int) (isInt, ok bool) {
	if di+1 >= maxVecRegs || df+1 >= maxVecRegs {
		return false, false
	}
	switch v := e.(type) {
	case Column:
		side, field, s, err := b.r.Resolve(v)
		if err != nil {
			return false, false
		}
		op := vecOp{dst: uint8(di), side: uint8(side), off: int32(s.Offset(field))}
		switch s.Field(field).Type {
		case schema.Int32:
			op.code = vLoadI32
		case schema.Int64:
			op.code = vLoadI64
		case schema.Float32:
			op.code, op.dst = vLoadF32, uint8(df)
		case schema.Float64:
			op.code, op.dst = vLoadF64, uint8(df)
		default:
			return false, false
		}
		b.emit(op)
		return op.code == vLoadI32 || op.code == vLoadI64, true

	case IntConst:
		b.emit(vecOp{code: vConstI, dst: uint8(di), ci: int64(v)})
		return true, true

	case FloatConst:
		b.emit(vecOp{code: vConstF, dst: uint8(df), cf: float64(v)})
		return false, true

	case Neg:
		inInt, ok := b.num(v.E, di, df)
		if !ok {
			return false, false
		}
		if inInt {
			b.emit(vecOp{code: vNegI, dst: uint8(di)})
		} else {
			b.emit(vecOp{code: vNegF, dst: uint8(df)})
		}
		return inInt, true

	case Arith:
		lInt, ok := b.num(v.Left, di, df)
		if !ok {
			return false, false
		}
		rInt, ok := b.num(v.Right, di+1, df+1)
		if !ok {
			return false, false
		}
		if lInt && rInt {
			b.emit(vecOp{code: vArithI, arith: v.Op, dst: uint8(di), adr: uint8(di), b: uint8(di + 1)})
			return true, true
		}
		if v.Op == Mod {
			return false, false // float % is a compile error in the scalar path too
		}
		// Mirror the scalar promotion: int subtrees convert to float at
		// this node.
		if lInt {
			b.emit(vecOp{code: vCastIF, dst: uint8(df), adr: uint8(di)})
		}
		if rInt {
			b.emit(vecOp{code: vCastIF, dst: uint8(df + 1), adr: uint8(di + 1)})
		}
		b.emit(vecOp{code: vArithF, arith: v.Op, dst: uint8(df), adr: uint8(df), b: uint8(df + 1)})
		return false, true
	}
	return false, false
}

// pred lowers p so its verdict lands in maskReg[dm]. Numeric registers are
// scratch across predicate children (masks persist in their own bank).
func (b *vecBuilder) pred(p Pred, dm int) bool {
	if dm+1 >= maxVecRegs {
		return false
	}
	switch v := p.(type) {
	case Cmp:
		lInt, ok := b.num(v.Left, 0, 0)
		if !ok {
			return false
		}
		rInt, ok := b.num(v.Right, 1, 1)
		if !ok {
			return false
		}
		if lInt && rInt {
			b.emit(vecOp{code: vCmpI, cmp: v.Op, dst: uint8(dm), adr: 0, b: 1})
			return true
		}
		if lInt {
			b.emit(vecOp{code: vCastIF, dst: 0, adr: 0})
		}
		if rInt {
			b.emit(vecOp{code: vCastIF, dst: 1, adr: 1})
		}
		b.emit(vecOp{code: vCmpF, cmp: v.Op, dst: uint8(dm), adr: 0, b: 1})
		return true

	case And:
		if len(v.Preds) == 0 {
			b.emit(vecOp{code: vConstM, dst: uint8(dm), ci: 1})
			return true
		}
		if !b.pred(v.Preds[0], dm) {
			return false
		}
		for _, q := range v.Preds[1:] {
			if !b.pred(q, dm+1) {
				return false
			}
			b.emit(vecOp{code: vAndM, dst: uint8(dm), b: uint8(dm + 1)})
		}
		return true

	case Or:
		if len(v.Preds) == 0 {
			b.emit(vecOp{code: vConstM, dst: uint8(dm), ci: 0})
			return true
		}
		if !b.pred(v.Preds[0], dm) {
			return false
		}
		for _, q := range v.Preds[1:] {
			if !b.pred(q, dm+1) {
				return false
			}
			b.emit(vecOp{code: vOrM, dst: uint8(dm), b: uint8(dm + 1)})
		}
		return true

	case Not:
		if !b.pred(v.P, dm) {
			return false
		}
		b.emit(vecOp{code: vNotM, dst: uint8(dm)})
		return true
	}
	return false
}

func compileNumBatch(e Expr, r Resolver) *numBatchProg {
	b := vecBuilder{r: r}
	isInt, ok := b.num(e, 0, 0)
	if !ok {
		return nil
	}
	return &numBatchProg{ops: b.ops, isInt: isInt}
}

func compilePredBatch(p Pred, r Resolver) *predBatchProg {
	b := vecBuilder{r: r}
	if !b.pred(p, 0) {
		return nil
	}
	return &predBatchProg{ops: b.ops}
}

// --- Fused compare leaves ---------------------------------------------------

// leafCmp is one column⋈constant compare of a fused predicate. isInt
// selects integer-domain comparison (both operands integer in the scalar
// path); otherwise the column value is converted to float64 exactly as
// the scalar evaluator would.
type leafCmp struct {
	side  uint8
	typ   schema.Type
	isInt bool
	op    CmpOp
	off   int
	ci    int64
	cf    float64
}

func flipCmp(op CmpOp) CmpOp {
	switch op {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	}
	return op // Eq, Ne are symmetric
}

func leafFromCmp(c Cmp, r Resolver) (leafCmp, bool) {
	col, colOK := c.Left.(Column)
	cst := c.Right
	op := c.Op
	if !colOK {
		// Constant on the left: flip into column-first form.
		if col, colOK = c.Right.(Column); !colOK {
			return leafCmp{}, false
		}
		cst = c.Left
		op = flipCmp(op)
	}
	switch cst.(type) {
	case IntConst, FloatConst:
	default:
		return leafCmp{}, false
	}
	side, field, s, err := r.Resolve(col)
	if err != nil {
		return leafCmp{}, false
	}
	typ := s.Field(field).Type
	lf := leafCmp{side: uint8(side), typ: typ, op: op, off: s.Offset(field)}
	colInt := typ == schema.Int32 || typ == schema.Int64
	switch k := cst.(type) {
	case IntConst:
		if colInt {
			lf.isInt, lf.ci = true, int64(k)
		} else {
			lf.cf = float64(int64(k))
		}
	case FloatConst:
		lf.cf = float64(k)
	}
	return lf, true
}

// flattenAndLeaves lowers p into AND-of-leaves form, or reports failure.
func flattenAndLeaves(p Pred, r Resolver, dst []leafCmp) ([]leafCmp, bool) {
	switch v := p.(type) {
	case Cmp:
		lf, ok := leafFromCmp(v, r)
		if !ok {
			return nil, false
		}
		return append(dst, lf), true
	case And:
		var ok bool
		for _, q := range v.Preds {
			if dst, ok = flattenAndLeaves(q, r, dst); !ok {
				return nil, false
			}
		}
		return dst, true
	}
	return nil, false
}

// --- Program execution ------------------------------------------------------

var le = binary.LittleEndian

func runVec(ops []vecOp, vs *VecScratch, in BatchInput) {
	n := in.N
	for oi := range ops {
		op := &ops[oi]
		switch op.code {
		case vLoadI32:
			dst := vs.intReg(int(op.dst), n)
			data, stride := in.side(op.side)
			o := int(op.off)
			if stride == 0 {
				v := int64(int32(le.Uint32(data[o:])))
				for i := range dst {
					dst[i] = v
				}
				continue
			}
			if c := in.colView(op.side, op.off); c != nil {
				for i := 0; i < n; i++ {
					dst[i] = int64(int32(le.Uint32(c[i*4:])))
				}
				continue
			}
			for i := 0; i < n; i++ {
				dst[i] = int64(int32(le.Uint32(data[o:])))
				o += stride
			}
		case vLoadI64:
			dst := vs.intReg(int(op.dst), n)
			data, stride := in.side(op.side)
			o := int(op.off)
			if stride == 0 {
				v := int64(le.Uint64(data[o:]))
				for i := range dst {
					dst[i] = v
				}
				continue
			}
			if c := in.colView(op.side, op.off); c != nil {
				for i := 0; i < n; i++ {
					dst[i] = int64(le.Uint64(c[i*8:]))
				}
				continue
			}
			for i := 0; i < n; i++ {
				dst[i] = int64(le.Uint64(data[o:]))
				o += stride
			}
		case vLoadF32:
			dst := vs.floatReg(int(op.dst), n)
			data, stride := in.side(op.side)
			o := int(op.off)
			if stride == 0 {
				v := float64(math.Float32frombits(le.Uint32(data[o:])))
				for i := range dst {
					dst[i] = v
				}
				continue
			}
			if c := in.colView(op.side, op.off); c != nil {
				for i := 0; i < n; i++ {
					dst[i] = float64(math.Float32frombits(le.Uint32(c[i*4:])))
				}
				continue
			}
			for i := 0; i < n; i++ {
				dst[i] = float64(math.Float32frombits(le.Uint32(data[o:])))
				o += stride
			}
		case vLoadF64:
			dst := vs.floatReg(int(op.dst), n)
			data, stride := in.side(op.side)
			o := int(op.off)
			if stride == 0 {
				v := math.Float64frombits(le.Uint64(data[o:]))
				for i := range dst {
					dst[i] = v
				}
				continue
			}
			if c := in.colView(op.side, op.off); c != nil {
				for i := 0; i < n; i++ {
					dst[i] = math.Float64frombits(le.Uint64(c[i*8:]))
				}
				continue
			}
			for i := 0; i < n; i++ {
				dst[i] = math.Float64frombits(le.Uint64(data[o:]))
				o += stride
			}
		case vConstI:
			dst := vs.intReg(int(op.dst), n)
			for i := range dst {
				dst[i] = op.ci
			}
		case vConstF:
			dst := vs.floatReg(int(op.dst), n)
			for i := range dst {
				dst[i] = op.cf
			}
		case vConstM:
			dst := vs.maskReg(int(op.dst), n)
			v := op.ci != 0
			for i := range dst {
				dst[i] = v
			}
		case vCastIF:
			src := vs.intReg(int(op.adr), n)
			dst := vs.floatReg(int(op.dst), n)
			for i := range dst {
				dst[i] = float64(src[i])
			}
		case vCastFI:
			src := vs.floatReg(int(op.adr), n)
			dst := vs.intReg(int(op.dst), n)
			for i := range dst {
				dst[i] = int64(src[i])
			}
		case vNegI:
			dst := vs.intReg(int(op.dst), n)
			for i := range dst {
				dst[i] = -dst[i]
			}
		case vNegF:
			dst := vs.floatReg(int(op.dst), n)
			for i := range dst {
				dst[i] = -dst[i]
			}
		case vArithI:
			a := vs.intReg(int(op.adr), n)
			bb := vs.intReg(int(op.b), n)
			dst := vs.intReg(int(op.dst), n)
			switch op.arith {
			case Add:
				for i := range dst {
					dst[i] = a[i] + bb[i]
				}
			case Sub:
				for i := range dst {
					dst[i] = a[i] - bb[i]
				}
			case Mul:
				for i := range dst {
					dst[i] = a[i] * bb[i]
				}
			case Div:
				for i := range dst {
					if bb[i] == 0 {
						dst[i] = 0
					} else {
						dst[i] = a[i] / bb[i]
					}
				}
			case Mod:
				for i := range dst {
					if bb[i] == 0 {
						dst[i] = 0
					} else {
						dst[i] = a[i] % bb[i]
					}
				}
			}
		case vArithF:
			a := vs.floatReg(int(op.adr), n)
			bb := vs.floatReg(int(op.b), n)
			dst := vs.floatReg(int(op.dst), n)
			switch op.arith {
			case Add:
				for i := range dst {
					dst[i] = a[i] + bb[i]
				}
			case Sub:
				for i := range dst {
					dst[i] = a[i] - bb[i]
				}
			case Mul:
				for i := range dst {
					dst[i] = a[i] * bb[i]
				}
			case Div:
				for i := range dst {
					dst[i] = a[i] / bb[i]
				}
			}
		case vCmpI:
			a := vs.intReg(int(op.adr), n)
			bb := vs.intReg(int(op.b), n)
			dst := vs.maskReg(int(op.dst), n)
			switch op.cmp {
			case Eq:
				for i := range dst {
					dst[i] = a[i] == bb[i]
				}
			case Ne:
				for i := range dst {
					dst[i] = a[i] != bb[i]
				}
			case Lt:
				for i := range dst {
					dst[i] = a[i] < bb[i]
				}
			case Le:
				for i := range dst {
					dst[i] = a[i] <= bb[i]
				}
			case Gt:
				for i := range dst {
					dst[i] = a[i] > bb[i]
				}
			case Ge:
				for i := range dst {
					dst[i] = a[i] >= bb[i]
				}
			}
		case vCmpF:
			a := vs.floatReg(int(op.adr), n)
			bb := vs.floatReg(int(op.b), n)
			dst := vs.maskReg(int(op.dst), n)
			switch op.cmp {
			case Eq:
				for i := range dst {
					dst[i] = a[i] == bb[i]
				}
			case Ne:
				for i := range dst {
					dst[i] = a[i] != bb[i]
				}
			case Lt:
				for i := range dst {
					dst[i] = a[i] < bb[i]
				}
			case Le:
				for i := range dst {
					dst[i] = a[i] <= bb[i]
				}
			case Gt:
				for i := range dst {
					dst[i] = a[i] > bb[i]
				}
			case Ge:
				for i := range dst {
					dst[i] = a[i] >= bb[i]
				}
			}
		case vAndM:
			bb := vs.maskReg(int(op.b), n)
			dst := vs.maskReg(int(op.dst), n)
			for i := range dst {
				dst[i] = dst[i] && bb[i]
			}
		case vOrM:
			bb := vs.maskReg(int(op.b), n)
			dst := vs.maskReg(int(op.dst), n)
			for i := range dst {
				dst[i] = dst[i] || bb[i]
			}
		case vNotM:
			dst := vs.maskReg(int(op.dst), n)
			for i := range dst {
				dst[i] = !dst[i]
			}
		}
	}
}

// --- Fused selection loops --------------------------------------------------

// The single column⋈constant compare is the dominant predicate shape
// (paper Table 1's SELECT/GSELECT and every application filter), so each
// (type, op) pair gets a dedicated loop over the raw bytes.

func selI32(sel []int32, data []byte, off, stride, n int, op CmpOp, c int64) []int32 {
	o := off
	switch op {
	case Eq:
		for i := 0; i < n; i++ {
			if int64(int32(le.Uint32(data[o:]))) == c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Ne:
		for i := 0; i < n; i++ {
			if int64(int32(le.Uint32(data[o:]))) != c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Lt:
		for i := 0; i < n; i++ {
			if int64(int32(le.Uint32(data[o:]))) < c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Le:
		for i := 0; i < n; i++ {
			if int64(int32(le.Uint32(data[o:]))) <= c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Gt:
		for i := 0; i < n; i++ {
			if int64(int32(le.Uint32(data[o:]))) > c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Ge:
		for i := 0; i < n; i++ {
			if int64(int32(le.Uint32(data[o:]))) >= c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	}
	return sel
}

func selI64(sel []int32, data []byte, off, stride, n int, op CmpOp, c int64) []int32 {
	o := off
	switch op {
	case Eq:
		for i := 0; i < n; i++ {
			if int64(le.Uint64(data[o:])) == c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Ne:
		for i := 0; i < n; i++ {
			if int64(le.Uint64(data[o:])) != c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Lt:
		for i := 0; i < n; i++ {
			if int64(le.Uint64(data[o:])) < c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Le:
		for i := 0; i < n; i++ {
			if int64(le.Uint64(data[o:])) <= c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Gt:
		for i := 0; i < n; i++ {
			if int64(le.Uint64(data[o:])) > c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Ge:
		for i := 0; i < n; i++ {
			if int64(le.Uint64(data[o:])) >= c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	}
	return sel
}

func selF32(sel []int32, data []byte, off, stride, n int, op CmpOp, c float64) []int32 {
	o := off
	switch op {
	case Eq:
		for i := 0; i < n; i++ {
			if float64(math.Float32frombits(le.Uint32(data[o:]))) == c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Ne:
		for i := 0; i < n; i++ {
			if float64(math.Float32frombits(le.Uint32(data[o:]))) != c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Lt:
		for i := 0; i < n; i++ {
			if float64(math.Float32frombits(le.Uint32(data[o:]))) < c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Le:
		for i := 0; i < n; i++ {
			if float64(math.Float32frombits(le.Uint32(data[o:]))) <= c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Gt:
		for i := 0; i < n; i++ {
			if float64(math.Float32frombits(le.Uint32(data[o:]))) > c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Ge:
		for i := 0; i < n; i++ {
			if float64(math.Float32frombits(le.Uint32(data[o:]))) >= c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	}
	return sel
}

func selF64(sel []int32, data []byte, off, stride, n int, op CmpOp, c float64) []int32 {
	o := off
	switch op {
	case Eq:
		for i := 0; i < n; i++ {
			if math.Float64frombits(le.Uint64(data[o:])) == c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Ne:
		for i := 0; i < n; i++ {
			if math.Float64frombits(le.Uint64(data[o:])) != c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Lt:
		for i := 0; i < n; i++ {
			if math.Float64frombits(le.Uint64(data[o:])) < c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Le:
		for i := 0; i < n; i++ {
			if math.Float64frombits(le.Uint64(data[o:])) <= c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Gt:
		for i := 0; i < n; i++ {
			if math.Float64frombits(le.Uint64(data[o:])) > c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	case Ge:
		for i := 0; i < n; i++ {
			if math.Float64frombits(le.Uint64(data[o:])) >= c {
				sel = append(sel, int32(i))
			}
			o += stride
		}
	}
	return sel
}

// leafValue decodes the leaf's column for row i in the leaf's comparison
// domain.
func (lf *leafCmp) passAt(in BatchInput, i int) bool {
	data, stride := in.side(lf.side)
	o := lf.off + i*stride
	if lf.isInt {
		var v int64
		if lf.typ == schema.Int32 {
			v = int64(int32(le.Uint32(data[o:])))
		} else {
			v = int64(le.Uint64(data[o:]))
		}
		switch lf.op {
		case Eq:
			return v == lf.ci
		case Ne:
			return v != lf.ci
		case Lt:
			return v < lf.ci
		case Le:
			return v <= lf.ci
		case Gt:
			return v > lf.ci
		case Ge:
			return v >= lf.ci
		}
		return false
	}
	var v float64
	switch lf.typ {
	case schema.Int32:
		v = float64(int32(le.Uint32(data[o:])))
	case schema.Int64:
		v = float64(int64(le.Uint64(data[o:])))
	case schema.Float32:
		v = float64(math.Float32frombits(le.Uint32(data[o:])))
	default:
		v = math.Float64frombits(le.Uint64(data[o:]))
	}
	switch lf.op {
	case Eq:
		return v == lf.cf
	case Ne:
		return v != lf.cf
	case Lt:
		return v < lf.cf
	case Le:
		return v <= lf.cf
	case Gt:
		return v > lf.cf
	case Ge:
		return v >= lf.cf
	}
	return false
}

// selLeaf runs one leaf's specialized typed comparison loop over the
// given byte source, appending passing rows to sel. ok is false when the
// leaf has no specialization (an integer column compared in the float
// domain).
func selLeaf(lf *leafCmp, sel []int32, data []byte, off, stride, n int) ([]int32, bool) {
	if lf.isInt {
		switch lf.typ {
		case schema.Int32:
			return selI32(sel, data, off, stride, n, lf.op, lf.ci), true
		case schema.Int64:
			return selI64(sel, data, off, stride, n, lf.op, lf.ci), true
		}
	} else {
		switch lf.typ {
		case schema.Float32:
			return selF32(sel, data, off, stride, n, lf.op, lf.cf), true
		case schema.Float64:
			return selF64(sel, data, off, stride, n, lf.op, lf.cf), true
		}
	}
	return sel, false
}

// leafSrc picks the densest byte source for a leaf's typed loop: the
// contiguous column segment when the batch carries one (offset 0, stride
// = element width), else the row bytes at the leaf's field offset.
func leafSrc(in BatchInput, lf *leafCmp, data []byte, stride int) ([]byte, int, int) {
	if c := in.colView(lf.side, int32(lf.off)); c != nil {
		return c, 0, lf.typ.Size()
	}
	return data, lf.off, stride
}

// intersectSel compacts a in place to the values also present in b; both
// inputs are ascending, as produced by the selection loops.
func intersectSel(a, b []int32) []int32 {
	w, j := 0, 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j == len(b) {
			break
		}
		if b[j] == v {
			a[w] = v
			w++
			j++
		}
	}
	return a[:w]
}

func evalLeafSel(vs *VecScratch, leaves []leafCmp, sel []int32, in BatchInput) []int32 {
	n := in.N
	// Broadcast leaves (a join's pinned left tuple) are row-invariant:
	// evaluate once and either fold the leaf out or reject the whole batch.
	// Unspecializable leaves force the generic per-row loop below.
	specializable := true
	for k := range leaves {
		lf := &leaves[k]
		_, stride := in.side(lf.side)
		if stride == 0 {
			if !lf.passAt(in, 0) {
				return sel
			}
			continue
		}
		if lf.isInt {
			continue
		}
		if lf.typ != schema.Float32 && lf.typ != schema.Float64 {
			specializable = false
		}
	}
	if specializable {
		// One tight typed pass per leaf; conjunction by intersecting the
		// sorted selection vectors.
		first := true
		for k := range leaves {
			lf := &leaves[k]
			data, stride := in.side(lf.side)
			if stride == 0 {
				continue
			}
			src, off, sstride := leafSrc(in, lf, data, stride)
			if first {
				sel, _ = selLeaf(lf, sel, src, off, sstride, n)
				first = false
			} else {
				vs.selTmp, _ = selLeaf(lf, vs.selTmp[:0], src, off, sstride, n)
				sel = intersectSel(sel, vs.selTmp)
			}
			if len(sel) == 0 && !first {
				return sel
			}
		}
		if first { // every leaf was a passing broadcast: all rows qualify
			for i := 0; i < n; i++ {
				sel = append(sel, int32(i))
			}
		}
		return sel
	}
	// AND of leaves with a mixed-domain column: one loop over the raw
	// bytes, dispatching by leaf code — no per-tuple function calls into a
	// closure tree.
	for i := 0; i < n; i++ {
		pass := true
		for k := range leaves {
			if !leaves[k].passAt(in, i) {
				pass = false
				break
			}
		}
		if pass {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

// --- Public batch entry points ----------------------------------------------

// EvalBatch evaluates the predicate over every row of the batch and
// appends the indices of passing rows to sel[:0], returning the filled
// selection vector. Results are bit-identical to calling Eval per row.
func (p *PredProgram) EvalBatch(vs *VecScratch, sel []int32, in BatchInput) []int32 {
	sel = sel[:0]
	n := in.N
	if n == 0 {
		return sel
	}
	if p.fused {
		if len(p.leaves) == 0 {
			for i := 0; i < n; i++ {
				sel = append(sel, int32(i))
			}
			return sel
		}
		return evalLeafSel(vs, p.leaves, sel, in)
	}
	if p.batch != nil {
		runVec(p.batch.ops, vs, in)
		mask := vs.maskReg(0, n)
		for i := 0; i < n; i++ {
			if mask[i] {
				sel = append(sel, int32(i))
			}
		}
		return sel
	}
	for i := 0; i < n; i++ {
		l, r := in.row(i)
		if p.fn(l, r) {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

// EvalBatchFloat evaluates the expression for every row into dst (grown
// to N), with float64 semantics identical to per-row EvalFloat.
func (p *NumProgram) EvalBatchFloat(vs *VecScratch, dst []float64, in BatchInput) []float64 {
	n := in.N
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst
	}
	if p.batch != nil {
		if len(p.batch.ops) == 1 {
			if fillColumnFloat(dst, &p.batch.ops[0], in) {
				return dst
			}
		}
		runVec(p.batch.ops, vs, in)
		if p.batch.isInt {
			src := vs.intReg(0, n)
			for i := range dst {
				dst[i] = float64(src[i])
			}
		} else {
			copy(dst, vs.floatReg(0, n))
		}
		return dst
	}
	for i := 0; i < n; i++ {
		l, r := in.row(i)
		dst[i] = p.EvalFloat(l, r)
	}
	return dst
}

// EvalBatchInt evaluates the expression for every row into dst (grown to
// N), with integer semantics identical to per-row EvalInt.
func (p *NumProgram) EvalBatchInt(vs *VecScratch, dst []int64, in BatchInput) []int64 {
	n := in.N
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst
	}
	if p.batch != nil {
		if len(p.batch.ops) == 1 {
			if fillColumnInt(dst, &p.batch.ops[0], in) {
				return dst
			}
		}
		runVec(p.batch.ops, vs, in)
		if p.batch.isInt {
			copy(dst, vs.intReg(0, n))
		} else {
			src := vs.floatReg(0, n)
			for i := range dst {
				dst[i] = int64(src[i])
			}
		}
		return dst
	}
	for i := 0; i < n; i++ {
		l, r := in.row(i)
		dst[i] = p.EvalInt(l, r)
	}
	return dst
}

// fillColumnFloat is the fused fixed-offset column-load path: a program
// that is a single load or constant fills dst in one typed loop.
func fillColumnFloat(dst []float64, op *vecOp, in BatchInput) bool {
	n := in.N
	data, stride := in.side(op.side)
	o := int(op.off)
	switch op.code {
	case vLoadI32:
		if stride == 0 {
			fillF(dst, float64(int32(le.Uint32(data[o:]))))
			return true
		}
		if c := in.colView(op.side, op.off); c != nil {
			for i := 0; i < n; i++ {
				dst[i] = float64(int32(le.Uint32(c[i*4:])))
			}
			return true
		}
		for i := 0; i < n; i++ {
			dst[i] = float64(int32(le.Uint32(data[o:])))
			o += stride
		}
	case vLoadI64:
		if stride == 0 {
			fillF(dst, float64(int64(le.Uint64(data[o:]))))
			return true
		}
		if c := in.colView(op.side, op.off); c != nil {
			for i := 0; i < n; i++ {
				dst[i] = float64(int64(le.Uint64(c[i*8:])))
			}
			return true
		}
		for i := 0; i < n; i++ {
			dst[i] = float64(int64(le.Uint64(data[o:])))
			o += stride
		}
	case vLoadF32:
		if stride == 0 {
			fillF(dst, float64(math.Float32frombits(le.Uint32(data[o:]))))
			return true
		}
		if c := in.colView(op.side, op.off); c != nil {
			for i := 0; i < n; i++ {
				dst[i] = float64(math.Float32frombits(le.Uint32(c[i*4:])))
			}
			return true
		}
		for i := 0; i < n; i++ {
			dst[i] = float64(math.Float32frombits(le.Uint32(data[o:])))
			o += stride
		}
	case vLoadF64:
		if stride == 0 {
			fillF(dst, math.Float64frombits(le.Uint64(data[o:])))
			return true
		}
		if c := in.colView(op.side, op.off); c != nil {
			for i := 0; i < n; i++ {
				dst[i] = math.Float64frombits(le.Uint64(c[i*8:]))
			}
			return true
		}
		for i := 0; i < n; i++ {
			dst[i] = math.Float64frombits(le.Uint64(data[o:]))
			o += stride
		}
	case vConstI:
		fillF(dst, float64(op.ci))
	case vConstF:
		fillF(dst, op.cf)
	default:
		return false
	}
	return true
}

func fillColumnInt(dst []int64, op *vecOp, in BatchInput) bool {
	n := in.N
	data, stride := in.side(op.side)
	o := int(op.off)
	switch op.code {
	case vLoadI32:
		if stride == 0 {
			fillI(dst, int64(int32(le.Uint32(data[o:]))))
			return true
		}
		if c := in.colView(op.side, op.off); c != nil {
			for i := 0; i < n; i++ {
				dst[i] = int64(int32(le.Uint32(c[i*4:])))
			}
			return true
		}
		for i := 0; i < n; i++ {
			dst[i] = int64(int32(le.Uint32(data[o:])))
			o += stride
		}
	case vLoadI64:
		if stride == 0 {
			fillI(dst, int64(le.Uint64(data[o:])))
			return true
		}
		if c := in.colView(op.side, op.off); c != nil {
			for i := 0; i < n; i++ {
				dst[i] = int64(le.Uint64(c[i*8:]))
			}
			return true
		}
		for i := 0; i < n; i++ {
			dst[i] = int64(le.Uint64(data[o:]))
			o += stride
		}
	case vLoadF32:
		if stride == 0 {
			fillI(dst, int64(math.Float32frombits(le.Uint32(data[o:]))))
			return true
		}
		if c := in.colView(op.side, op.off); c != nil {
			for i := 0; i < n; i++ {
				dst[i] = int64(math.Float32frombits(le.Uint32(c[i*4:])))
			}
			return true
		}
		for i := 0; i < n; i++ {
			dst[i] = int64(math.Float32frombits(le.Uint32(data[o:])))
			o += stride
		}
	case vLoadF64:
		if stride == 0 {
			fillI(dst, int64(math.Float64frombits(le.Uint64(data[o:]))))
			return true
		}
		if c := in.colView(op.side, op.off); c != nil {
			for i := 0; i < n; i++ {
				dst[i] = int64(math.Float64frombits(le.Uint64(c[i*8:])))
			}
			return true
		}
		for i := 0; i < n; i++ {
			dst[i] = int64(math.Float64frombits(le.Uint64(data[o:])))
			o += stride
		}
	case vConstI:
		fillI(dst, op.ci)
	case vConstF:
		fillI(dst, int64(op.cf))
	default:
		return false
	}
	return true
}

func fillF(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

func fillI(dst []int64, v int64) {
	for i := range dst {
		dst[i] = v
	}
}

// --- Columnar capability probes ---------------------------------------------

// specialized reports whether the leaf has a dedicated typed loop (no
// per-row passAt fallback): integer compares on integer columns, float
// compares on float columns.
func (lf *leafCmp) specialized() bool {
	if lf.isInt {
		return lf.typ == schema.Int32 || lf.typ == schema.Int64
	}
	return lf.typ == schema.Float32 || lf.typ == schema.Float64
}

// RowFree reports whether EvalBatch over a non-broadcast batch reads only
// fields that has() confirms carry column views (keyed by side and
// row-tuple byte offset). When true, evaluation never dereferences the
// row bytes, so callers may stage the columns alone — the GPU's
// no-gather DMA path — and pass nil L/R.
func (p *PredProgram) RowFree(has func(side, off int) bool) bool {
	if p.fused {
		for k := range p.leaves {
			lf := &p.leaves[k]
			if !lf.specialized() || !has(int(lf.side), lf.off) {
				return false
			}
		}
		return true
	}
	if p.batch == nil {
		return false // per-row closure fallback reads raw tuples
	}
	return vecOpsRowFree(p.batch.ops, has)
}

// RowFree is the numeric-program analogue: EvalBatchFloat/EvalBatchInt
// touch only column views confirmed by has().
func (p *NumProgram) RowFree(has func(side, off int) bool) bool {
	if p.batch == nil {
		return false
	}
	return vecOpsRowFree(p.batch.ops, has)
}

func vecOpsRowFree(ops []vecOp, has func(side, off int) bool) bool {
	for i := range ops {
		op := &ops[i]
		switch op.code {
		case vLoadI32, vLoadI64, vLoadF32, vLoadF64:
			if !has(int(op.side), int(op.off)) {
				return false
			}
		}
	}
	return true
}

// ColRefs visits every (side, row-byte-offset) field whose column view
// batch evaluation may read when the batch carries one. It
// over-approximates: a visited field is read through its column segment
// when present, an unvisited field is only ever read from the row bytes.
// Callers use it to shred exactly the referenced fields into the
// columnar ring (projection pushdown to ingest).
func (p *PredProgram) ColRefs(visit func(side, off int)) {
	if p.fused {
		for k := range p.leaves {
			lf := &p.leaves[k]
			if lf.specialized() {
				visit(int(lf.side), lf.off)
			}
		}
		return
	}
	if p.batch != nil {
		vecOpsColRefs(p.batch.ops, visit)
	}
}

// ColRefs is the numeric-program analogue of PredProgram.ColRefs.
func (p *NumProgram) ColRefs(visit func(side, off int)) {
	if p.batch != nil {
		vecOpsColRefs(p.batch.ops, visit)
	}
}

func vecOpsColRefs(ops []vecOp, visit func(side, off int)) {
	for i := range ops {
		op := &ops[i]
		switch op.code {
		case vLoadI32, vLoadI64, vLoadF32, vLoadF64:
			visit(int(op.side), int(op.off))
		}
	}
}
