package expr

import (
	"math"
	"math/rand"
	"testing"

	"saber/internal/schema"
)

// randSchema builds a schema with a timestamp and nf random-typed fields.
func randSchema(rnd *rand.Rand, nf int) *schema.Schema {
	fields := []schema.Field{{Name: "ts", Type: schema.Int64}}
	types := []schema.Type{schema.Int32, schema.Int64, schema.Float32, schema.Float64}
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i := 0; i < nf; i++ {
		fields = append(fields, schema.Field{Name: names[i], Type: types[rnd.Intn(len(types))]})
	}
	return schema.MustNew(fields...)
}

// randBatch fills a packed batch of n tuples, seeding a mix of small
// values (so integer == hits), zeros (division guards) and NaNs/infs.
func randBatch(rnd *rand.Rand, s *schema.Schema, n int) []byte {
	data := make([]byte, n*s.TupleSize())
	for i := 0; i < n; i++ {
		t := data[i*s.TupleSize():]
		for f := 0; f < s.NumFields(); f++ {
			switch s.Field(f).Type {
			case schema.Int32:
				s.WriteInt32(t, f, int32(rnd.Intn(9)-4))
			case schema.Int64:
				s.WriteInt64(t, f, int64(rnd.Intn(9)-4))
			case schema.Float32:
				switch rnd.Intn(8) {
				case 0:
					s.WriteFloat32(t, f, float32(math.NaN()))
				case 1:
					s.WriteFloat32(t, f, float32(math.Inf(1)))
				default:
					s.WriteFloat32(t, f, float32(rnd.NormFloat64()))
				}
			case schema.Float64:
				switch rnd.Intn(8) {
				case 0:
					s.WriteFloat64(t, f, math.NaN())
				case 1:
					s.WriteFloat64(t, f, math.Inf(-1))
				default:
					s.WriteFloat64(t, f, rnd.NormFloat64())
				}
			}
		}
	}
	return data
}

// randExpr generates a random numeric expression tree over s.
func randExpr(rnd *rand.Rand, s *schema.Schema, depth int) Expr {
	if depth <= 0 || rnd.Intn(3) == 0 {
		switch rnd.Intn(4) {
		case 0:
			return IntConst(rnd.Intn(7) - 3)
		case 1:
			if rnd.Intn(6) == 0 {
				return FloatConst(math.NaN())
			}
			return FloatConst(rnd.NormFloat64())
		default:
			return Col(s.Field(rnd.Intn(s.NumFields())).Name)
		}
	}
	if rnd.Intn(6) == 0 {
		return Neg{E: randExpr(rnd, s, depth-1)}
	}
	op := ArithOp(rnd.Intn(5))
	return Arith{Op: op, Left: randExpr(rnd, s, depth-1), Right: randExpr(rnd, s, depth-1)}
}

// randPred generates a random predicate tree over s.
func randPred(rnd *rand.Rand, s *schema.Schema, depth int) Pred {
	if depth <= 0 || rnd.Intn(3) == 0 {
		return Cmp{Op: CmpOp(rnd.Intn(6)), Left: randExpr(rnd, s, 1), Right: randExpr(rnd, s, 1)}
	}
	switch rnd.Intn(4) {
	case 0:
		return Not{P: randPred(rnd, s, depth-1)}
	case 1:
		n := rnd.Intn(3)
		ps := make([]Pred, n)
		for i := range ps {
			ps[i] = randPred(rnd, s, depth-1)
		}
		return Or{Preds: ps}
	default:
		n := rnd.Intn(3)
		ps := make([]Pred, n)
		for i := range ps {
			ps[i] = randPred(rnd, s, depth-1)
		}
		return And{Preds: ps}
	}
}

// validExpr reports whether e compiles in the scalar path (float %
// is a static error there).
func compileOK(e Expr, r Resolver) (*NumProgram, bool) {
	p, err := CompileNum(e, r)
	return p, err == nil
}

// TestVectorNumDifferential: random trees over random schemas/batches —
// batch float/int evaluation must be bit-identical to per-tuple scalar.
func TestVectorNumDifferential(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	var vs VecScratch
	trees, lowered := 0, 0
	for iter := 0; iter < 400; iter++ {
		s := randSchema(rnd, 1+rnd.Intn(6))
		r := SingleResolver{Schema: s}
		e := randExpr(rnd, s, 1+rnd.Intn(3))
		p, ok := compileOK(e, r)
		if !ok {
			continue
		}
		trees++
		if p.batch != nil {
			lowered++
		}
		n := rnd.Intn(64) // includes empty batches
		data := randBatch(rnd, s, n)
		in := BatchInput{L: data, LStride: s.TupleSize(), N: n}

		fcol := p.EvalBatchFloat(&vs, nil, in)
		icol := p.EvalBatchInt(&vs, nil, in)
		if len(fcol) != n || len(icol) != n {
			t.Fatalf("expr %v: column length %d/%d, want %d", e, len(fcol), len(icol), n)
		}
		for i := 0; i < n; i++ {
			tuple := data[i*s.TupleSize():]
			wantF := p.EvalFloat(tuple, nil)
			wantI := p.EvalInt(tuple, nil)
			// Bitwise equality, except that any NaN matches any NaN: when
			// both operands of a commutative op are NaN, which payload
			// propagates depends on operand register order, which the
			// compiler is free to choose differently for the closure and
			// the loop. Comparisons and conversions treat all NaNs alike,
			// so this is not an observable semantic difference.
			if math.Float64bits(fcol[i]) != math.Float64bits(wantF) &&
				!(math.IsNaN(fcol[i]) && math.IsNaN(wantF)) {
				t.Fatalf("expr %v row %d: batch float %v (%x), scalar %v (%x)",
					e, i, fcol[i], math.Float64bits(fcol[i]), wantF, math.Float64bits(wantF))
			}
			if icol[i] != wantI {
				t.Fatalf("expr %v row %d: batch int %d, scalar %d", e, i, icol[i], wantI)
			}
		}
	}
	if trees == 0 || lowered == 0 {
		t.Fatalf("degenerate run: %d trees compiled, %d lowered to batch programs", trees, lowered)
	}
}

// TestVectorPredDifferential: random predicates — EvalBatch's selection
// vector must match per-tuple Eval exactly, including NaN compares.
func TestVectorPredDifferential(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	var vs VecScratch
	var sel []int32
	preds, fused, programs := 0, 0, 0
	for iter := 0; iter < 400; iter++ {
		s := randSchema(rnd, 1+rnd.Intn(6))
		r := SingleResolver{Schema: s}
		pr := randPred(rnd, s, 1+rnd.Intn(3))
		p, err := CompilePred(pr, r)
		if err != nil {
			continue
		}
		preds++
		if p.fused {
			fused++
		}
		if p.batch != nil {
			programs++
		}
		n := rnd.Intn(64)
		data := randBatch(rnd, s, n)
		in := BatchInput{L: data, LStride: s.TupleSize(), N: n}

		sel = p.EvalBatch(&vs, sel, in)
		var want []int32
		for i := 0; i < n; i++ {
			if p.EvalTuple(data[i*s.TupleSize():]) {
				want = append(want, int32(i))
			}
		}
		if len(sel) != len(want) {
			t.Fatalf("pred %v: selection %v, want %v", pr, sel, want)
		}
		for i := range sel {
			if sel[i] != want[i] {
				t.Fatalf("pred %v: selection %v, want %v", pr, sel, want)
			}
		}
	}
	if preds == 0 || fused == 0 || programs == 0 {
		t.Fatalf("degenerate run: %d preds, %d fused, %d programs", preds, fused, programs)
	}
}

// TestVectorFusedShapes pins the fused fast paths: single column⋈constant
// compares of every type and op, const-on-left flips, AND-of-compares,
// all-rejected and empty And/Or.
func TestVectorFusedShapes(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	s := schema.MustNew(
		schema.Field{Name: "ts", Type: schema.Int64},
		schema.Field{Name: "i32", Type: schema.Int32},
		schema.Field{Name: "i64", Type: schema.Int64},
		schema.Field{Name: "f32", Type: schema.Float32},
		schema.Field{Name: "f64", Type: schema.Float64},
	)
	r := SingleResolver{Schema: s}
	n := 257
	data := randBatch(rnd, s, n)
	in := BatchInput{L: data, LStride: s.TupleSize(), N: n}

	var cases []Pred
	for _, col := range []string{"i32", "i64", "f32", "f64"} {
		for op := Eq; op <= Ge; op++ {
			cases = append(cases,
				Cmp{Op: op, Left: Col(col), Right: IntConst(1)},
				Cmp{Op: op, Left: Col(col), Right: FloatConst(0.25)},
				Cmp{Op: op, Left: FloatConst(math.NaN()), Right: Col(col)},
				Cmp{Op: op, Left: IntConst(-2), Right: Col(col)}, // const-on-left flip
			)
		}
	}
	cases = append(cases,
		And{}, // empty: all pass
		Or{},  // empty: all reject
		Cmp{Op: Lt, Left: Col("i64"), Right: IntConst(math.MinInt32)}, // all rejected
		And{Preds: []Pred{
			Cmp{Op: Ge, Left: Col("i32"), Right: IntConst(0)},
			Cmp{Op: Lt, Left: Col("f64"), Right: FloatConst(1)},
			Cmp{Op: Ne, Left: Col("i64"), Right: IntConst(2)},
		}},
	)

	var vs VecScratch
	var sel []int32
	for _, pr := range cases {
		p, err := CompilePred(pr, r)
		if err != nil {
			t.Fatalf("compile %v: %v", pr, err)
		}
		sel = p.EvalBatch(&vs, sel, in)
		j := 0
		for i := 0; i < n; i++ {
			pass := p.EvalTuple(data[i*s.TupleSize():])
			inSel := j < len(sel) && sel[j] == int32(i)
			if inSel {
				j++
			}
			if pass != inSel {
				t.Fatalf("pred %v row %d: scalar %v, selected %v", pr, i, pass, inSel)
			}
		}
		if j != len(sel) {
			t.Fatalf("pred %v: %d extra selection entries", pr, len(sel)-j)
		}
	}
}

// TestVectorBroadcast pins the stride-0 broadcast path used by the join
// inner pass: one left tuple against a whole right batch.
func TestVectorBroadcast(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	ls := randSchema(rnd, 4)
	rs := randSchema(rnd, 4)
	r := PairResolver{Left: ls, Right: rs, LeftAlias: "L", RightAlias: "R"}
	n := 100
	lData := randBatch(rnd, ls, 3)
	rData := randBatch(rnd, rs, n)

	preds := []Pred{
		Cmp{Op: Le, Left: QCol("L", "a"), Right: QCol("R", "a")},
		And{Preds: []Pred{
			Cmp{Op: Ge, Left: QCol("L", "b"), Right: QCol("R", "b")},
			Cmp{Op: Lt, Left: QCol("R", "a"), Right: FloatConst(0.5)},
		}},
	}
	var vs VecScratch
	var sel []int32
	for _, pr := range preds {
		p, err := CompilePred(pr, r)
		if err != nil {
			t.Fatalf("compile %v: %v", pr, err)
		}
		for ti := 0; ti < 3; ti++ {
			left := lData[ti*ls.TupleSize() : (ti+1)*ls.TupleSize()]
			in := BatchInput{L: left, LStride: 0, R: rData, RStride: rs.TupleSize(), N: n}
			sel = p.EvalBatch(&vs, sel, in)
			var want []int32
			for i := 0; i < n; i++ {
				if p.Eval(left, rData[i*rs.TupleSize():]) {
					want = append(want, int32(i))
				}
			}
			if len(sel) != len(want) {
				t.Fatalf("pred %v left %d: selection %v, want %v", pr, ti, sel, want)
			}
			for i := range sel {
				if sel[i] != want[i] {
					t.Fatalf("pred %v left %d: selection %v, want %v", pr, ti, sel, want)
				}
			}
		}
	}
}
