package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"saber/internal/schema"
)

var testSchema = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "a", Type: schema.Float32},
	schema.Field{Name: "b", Type: schema.Int32},
	schema.Field{Name: "c", Type: schema.Int32},
	schema.Field{Name: "d", Type: schema.Float64},
)

func makeTuple(t *testing.T, ts int64, a float32, b, c int32, d float64) []byte {
	t.Helper()
	tu := make([]byte, testSchema.TupleSize())
	testSchema.WriteInt64(tu, 0, ts)
	testSchema.WriteFloat32(tu, 1, a)
	testSchema.WriteInt32(tu, 2, b)
	testSchema.WriteInt32(tu, 3, c)
	testSchema.WriteFloat64(tu, 4, d)
	return tu
}

func res() Resolver { return SingleResolver{Schema: testSchema} }

func TestColumnEval(t *testing.T) {
	tu := makeTuple(t, 9, 1.5, -3, 4, 2.25)
	cases := []struct {
		e       Expr
		isInt   bool
		wantI   int64
		wantF   float64
		typWant schema.Type
	}{
		{Col("timestamp"), true, 9, 9, schema.Int64},
		{Col("a"), false, 1, 1.5, schema.Float32},
		{Col("b"), true, -3, -3, schema.Int32},
		{Col("d"), false, 2, 2.25, schema.Float64},
	}
	for _, c := range cases {
		p, err := CompileNum(c.e, res())
		if err != nil {
			t.Fatalf("%v: %v", c.e, err)
		}
		if p.IsInt() != c.isInt || p.Type() != c.typWant {
			t.Errorf("%v: IsInt=%v Type=%v", c.e, p.IsInt(), p.Type())
		}
		if got := p.EvalInt(tu, nil); got != c.wantI {
			t.Errorf("%v EvalInt = %d, want %d", c.e, got, c.wantI)
		}
		if got := p.EvalFloat(tu, nil); got != c.wantF {
			t.Errorf("%v EvalFloat = %g, want %g", c.e, got, c.wantF)
		}
	}
}

func TestArithInteger(t *testing.T) {
	tu := makeTuple(t, 0, 0, 17, 5, 0)
	cases := []struct {
		e    Expr
		want int64
	}{
		{Arith{Add, Col("b"), Col("c")}, 22},
		{Arith{Sub, Col("b"), Col("c")}, 12},
		{Arith{Mul, Col("b"), IntConst(2)}, 34},
		{Arith{Div, Col("b"), Col("c")}, 3}, // integer division
		{Arith{Mod, Col("b"), Col("c")}, 2},
		{Arith{Div, Col("b"), IntConst(0)}, 0}, // guarded
		{Arith{Mod, Col("b"), IntConst(0)}, 0},
		{Neg{Col("c")}, -5},
	}
	for _, c := range cases {
		p, err := CompileNum(c.e, res())
		if err != nil {
			t.Fatalf("%v: %v", c.e, err)
		}
		if !p.IsInt() {
			t.Errorf("%v not integer-typed", c.e)
		}
		if got := p.EvalInt(tu, nil); got != c.want {
			t.Errorf("%v = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestArithFloatPromotion(t *testing.T) {
	tu := makeTuple(t, 0, 2.5, 4, 0, 0.5)
	p, err := CompileNum(Arith{Mul, Col("a"), Col("b")}, res())
	if err != nil {
		t.Fatal(err)
	}
	if p.Type() != schema.Float32 || p.IsInt() {
		t.Errorf("float32*int32 type = %v", p.Type())
	}
	if got := p.EvalFloat(tu, nil); got != 10 {
		t.Errorf("a*b = %g", got)
	}
	if got := p.EvalInt(tu, nil); got != 10 {
		t.Errorf("EvalInt of float expr = %d", got)
	}
	p2, _ := CompileNum(Arith{Div, Col("d"), FloatConst(0.25)}, res())
	if p2.Type() != schema.Float64 {
		t.Errorf("float64 type = %v", p2.Type())
	}
	if got := p2.EvalFloat(tu, nil); got != 2 {
		t.Errorf("d/0.25 = %g", got)
	}
	if neg, _ := CompileNum(Neg{Col("a")}, res()); neg.EvalFloat(tu, nil) != -2.5 {
		t.Error("float negation")
	}
}

func TestModFloatRejected(t *testing.T) {
	if _, err := CompileNum(Arith{Mod, Col("a"), IntConst(2)}, res()); err == nil {
		t.Fatal("float %% compiled")
	}
}

func TestPromote(t *testing.T) {
	cases := []struct{ a, b, want schema.Type }{
		{schema.Int32, schema.Int32, schema.Int32},
		{schema.Int32, schema.Int64, schema.Int64},
		{schema.Int64, schema.Float32, schema.Float32},
		{schema.Float32, schema.Float64, schema.Float64},
		{schema.Float64, schema.Int32, schema.Float64},
	}
	for _, c := range cases {
		if got := Promote(c.a, c.b); got != c.want {
			t.Errorf("Promote(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	tu := makeTuple(t, 0, 1.5, 3, 5, 0)
	cases := []struct {
		p    Pred
		want bool
	}{
		{Cmp{Eq, Col("b"), IntConst(3)}, true},
		{Cmp{Ne, Col("b"), IntConst(3)}, false},
		{Cmp{Lt, Col("b"), Col("c")}, true},
		{Cmp{Le, Col("c"), IntConst(5)}, true},
		{Cmp{Gt, Col("a"), FloatConst(1.0)}, true},
		{Cmp{Ge, Col("a"), FloatConst(2.0)}, false},
		{Cmp{Eq, Col("a"), FloatConst(1.5)}, true},
	}
	for _, c := range cases {
		p, err := CompilePred(c.p, res())
		if err != nil {
			t.Fatalf("%v: %v", c.p, err)
		}
		if got := p.EvalTuple(tu); got != c.want {
			t.Errorf("%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestLogical(t *testing.T) {
	tu := makeTuple(t, 0, 0, 3, 5, 0)
	bIs3 := Cmp{Eq, Col("b"), IntConst(3)}
	cIs9 := Cmp{Eq, Col("c"), IntConst(9)}
	cases := []struct {
		p    Pred
		want bool
	}{
		{And{[]Pred{bIs3, cIs9}}, false},
		{And{[]Pred{bIs3}}, true},
		{And{nil}, true},
		{Or{[]Pred{bIs3, cIs9}}, true},
		{Or{[]Pred{cIs9}}, false},
		{Or{nil}, false},
		{Not{cIs9}, true},
		{Not{bIs3}, false},
		{And{[]Pred{bIs3, Or{[]Pred{cIs9, Not{cIs9}}}}}, true},
	}
	for _, c := range cases {
		p, err := CompilePred(c.p, res())
		if err != nil {
			t.Fatalf("%v: %v", c.p, err)
		}
		if got := p.EvalTuple(tu); got != c.want {
			t.Errorf("%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := CompileNum(Col("nope"), res()); err == nil {
		t.Error("unknown column compiled")
	}
	if _, err := CompileNum(Arith{Add, Col("nope"), IntConst(1)}, res()); err == nil {
		t.Error("unknown column in arith compiled")
	}
	if _, err := CompilePred(Cmp{Eq, Col("nope"), IntConst(1)}, res()); err == nil {
		t.Error("unknown column in pred compiled")
	}
	if _, err := CompilePred(And{[]Pred{Cmp{Eq, Col("x"), IntConst(0)}}}, res()); err == nil {
		t.Error("unknown column in and compiled")
	}
	if _, err := CompileNum(Col("a"), SingleResolver{Schema: testSchema, Alias: "S"}); err != nil {
		t.Errorf("unqualified with alias: %v", err)
	}
	if _, err := CompileNum(QCol("T", "a"), SingleResolver{Schema: testSchema, Alias: "S"}); err == nil {
		t.Error("wrong qualifier compiled")
	}
}

func TestPairResolver(t *testing.T) {
	left := schema.MustNew(schema.Field{Name: "timestamp", Type: schema.Int64}, schema.Field{Name: "v", Type: schema.Int32})
	right := schema.MustNew(schema.Field{Name: "timestamp", Type: schema.Int64}, schema.Field{Name: "w", Type: schema.Int32})
	r := PairResolver{Left: left, Right: right, LeftAlias: "L", RightAlias: "R"}

	lt := make([]byte, left.TupleSize())
	rt := make([]byte, right.TupleSize())
	left.WriteInt32(lt, 1, 10)
	right.WriteInt32(rt, 1, 10)
	left.SetTimestamp(lt, 1)
	right.SetTimestamp(rt, 2)

	p, err := CompilePred(Cmp{Eq, Col("v"), Col("w")}, r)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Eval(lt, rt) {
		t.Error("v == w should hold")
	}
	p2, err := CompilePred(Cmp{Lt, QCol("L", "timestamp"), QCol("R", "timestamp")}, r)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Eval(lt, rt) {
		t.Error("L.timestamp < R.timestamp should hold")
	}
	if _, err := CompilePred(Cmp{Eq, Col("timestamp"), IntConst(0)}, r); err == nil {
		t.Error("ambiguous column compiled")
	}
	if _, err := CompilePred(Cmp{Eq, QCol("X", "v"), IntConst(0)}, r); err == nil {
		t.Error("unknown qualifier compiled")
	}
	if _, err := CompilePred(Cmp{Eq, QCol("L", "w"), IntConst(0)}, r); err == nil {
		t.Error("column on wrong side compiled")
	}
}

func TestColumnsCollection(t *testing.T) {
	e := Arith{Add, Neg{Col("a")}, Arith{Mul, Col("b"), IntConst(2)}}
	cols := Columns(e, nil)
	if len(cols) != 2 || cols[0].Name != "a" || cols[1].Name != "b" {
		t.Errorf("Columns = %v", cols)
	}
	p := And{[]Pred{
		Cmp{Eq, Col("x"), IntConst(1)},
		Or{[]Pred{Not{Cmp{Lt, Col("y"), Col("z")}}}},
	}}
	pcols := PredColumns(p, nil)
	if len(pcols) != 3 {
		t.Errorf("PredColumns = %v", pcols)
	}
}

func TestStringRendering(t *testing.T) {
	e := Arith{Div, QCol("S", "position"), IntConst(5280)}
	if got := e.String(); got != "(S.position / 5280)" {
		t.Errorf("String = %q", got)
	}
	p := And{[]Pred{Cmp{Gt, Col("speed"), FloatConst(40)}, Not{Cmp{Eq, Col("lane"), IntConst(4)}}}}
	s := p.String()
	for _, want := range []string{"speed > 40", "not", "lane == 4", " and "} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	if (Neg{Col("a")}).String() != "(-a)" {
		t.Error("Neg.String")
	}
}

// TestIntFloatConsistency: integer expressions evaluated via the float path
// agree with the int path for values exactly representable in float64.
func TestIntFloatConsistency(t *testing.T) {
	f := func(b, c int32) bool {
		tu := makeTuple(t, 0, 0, b, c, 0)
		e := Arith{Add, Arith{Mul, Col("b"), IntConst(3)}, Col("c")}
		p, err := CompileNum(e, res())
		if err != nil {
			return false
		}
		return p.EvalFloat(tu, nil) == float64(p.EvalInt(tu, nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
