// Package expr provides arithmetic expressions and boolean predicates over
// SABER's binary tuples.
//
// Expressions are built (or parsed from CQL) as a small AST, then compiled
// against one or two tuple schemas into closure-based evaluators that read
// attribute values lazily from raw tuple bytes (paper §5.1): only the
// attributes an expression touches are ever decoded, and only to
// primitives. Integer expressions keep integer semantics (LRB1's
// position/5280 relies on integer division).
package expr

import (
	"fmt"
	"strings"

	"saber/internal/schema"
)

// ArithOp is a binary arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

func (o ArithOp) String() string {
	return [...]string{"+", "-", "*", "/", "%"}[o]
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (o CmpOp) String() string {
	return [...]string{"==", "!=", "<", "<=", ">", ">="}[o]
}

// Expr is a numeric expression AST node.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Column references an attribute, optionally qualified with a stream alias
// for join predicates ("L.vehicle").
type Column struct {
	Qualifier string
	Name      string
}

func (Column) isExpr() {}

func (c Column) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// Col is shorthand for an unqualified column reference.
func Col(name string) Column { return Column{Name: name} }

// QCol is shorthand for a qualified column reference.
func QCol(qualifier, name string) Column { return Column{Qualifier: qualifier, Name: name} }

// IntConst is an integer literal.
type IntConst int64

func (IntConst) isExpr() {}

func (c IntConst) String() string { return fmt.Sprintf("%d", int64(c)) }

// FloatConst is a floating-point literal.
type FloatConst float64

func (FloatConst) isExpr() {}

func (c FloatConst) String() string { return fmt.Sprintf("%g", float64(c)) }

// Arith applies a binary arithmetic operator.
type Arith struct {
	Op          ArithOp
	Left, Right Expr
}

func (Arith) isExpr() {}

func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.Left, a.Op, a.Right)
}

// Neg negates a numeric expression.
type Neg struct{ E Expr }

func (Neg) isExpr() {}

func (n Neg) String() string { return fmt.Sprintf("(-%s)", n.E) }

// Pred is a boolean predicate AST node.
type Pred interface {
	fmt.Stringer
	isPred()
}

// Cmp compares two numeric expressions.
type Cmp struct {
	Op          CmpOp
	Left, Right Expr
}

func (Cmp) isPred() {}

func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// And is the conjunction of its operands (true when empty).
type And struct{ Preds []Pred }

func (And) isPred() {}

func (a And) String() string { return joinPreds(a.Preds, " and ") }

// Or is the disjunction of its operands (false when empty).
type Or struct{ Preds []Pred }

func (Or) isPred() {}

func (o Or) String() string { return joinPreds(o.Preds, " or ") }

// Not negates a predicate.
type Not struct{ P Pred }

func (Not) isPred() {}

func (n Not) String() string { return fmt.Sprintf("not (%s)", n.P) }

func joinPreds(ps []Pred, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = "(" + p.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Columns appends every column referenced by e to dst.
func Columns(e Expr, dst []Column) []Column {
	switch v := e.(type) {
	case Column:
		return append(dst, v)
	case Arith:
		return Columns(v.Right, Columns(v.Left, dst))
	case Neg:
		return Columns(v.E, dst)
	}
	return dst
}

// PredColumns appends every column referenced by p to dst.
func PredColumns(p Pred, dst []Column) []Column {
	switch v := p.(type) {
	case Cmp:
		return Columns(v.Right, Columns(v.Left, dst))
	case And:
		for _, q := range v.Preds {
			dst = PredColumns(q, dst)
		}
	case Or:
		for _, q := range v.Preds {
			dst = PredColumns(q, dst)
		}
	case Not:
		return PredColumns(v.P, dst)
	}
	return dst
}

// Resolver maps column references to a (side, field) location during
// compilation. Side 0 is the only side for single-stream expressions;
// joins use sides 0 (left) and 1 (right).
type Resolver interface {
	// Resolve returns the input side, field index, and schema holding the
	// column, or an error for unknown/ambiguous references.
	Resolve(c Column) (side, field int, s *schema.Schema, err error)
}

// SingleResolver resolves against one schema, ignoring qualifiers that
// match Alias (or any qualifier when Alias is empty).
type SingleResolver struct {
	Schema *schema.Schema
	Alias  string
}

// Resolve implements Resolver.
func (r SingleResolver) Resolve(c Column) (int, int, *schema.Schema, error) {
	if c.Qualifier != "" && r.Alias != "" && c.Qualifier != r.Alias {
		return 0, 0, nil, fmt.Errorf("expr: unknown qualifier %q", c.Qualifier)
	}
	i := r.Schema.IndexOf(c.Name)
	if i < 0 {
		return 0, 0, nil, fmt.Errorf("expr: unknown column %q", c)
	}
	return 0, i, r.Schema, nil
}

// PairResolver resolves against two schemas for join predicates. Qualified
// references select a side by alias; unqualified references must be
// unambiguous.
type PairResolver struct {
	Left, Right           *schema.Schema
	LeftAlias, RightAlias string
}

// Resolve implements Resolver.
func (r PairResolver) Resolve(c Column) (int, int, *schema.Schema, error) {
	switch c.Qualifier {
	case "":
		li, ri := r.Left.IndexOf(c.Name), r.Right.IndexOf(c.Name)
		switch {
		case li >= 0 && ri >= 0:
			return 0, 0, nil, fmt.Errorf("expr: ambiguous column %q", c.Name)
		case li >= 0:
			return 0, li, r.Left, nil
		case ri >= 0:
			return 1, ri, r.Right, nil
		}
	case r.LeftAlias:
		if i := r.Left.IndexOf(c.Name); i >= 0 {
			return 0, i, r.Left, nil
		}
	case r.RightAlias:
		if i := r.Right.IndexOf(c.Name); i >= 0 {
			return 1, i, r.Right, nil
		}
	default:
		return 0, 0, nil, fmt.Errorf("expr: unknown qualifier %q", c.Qualifier)
	}
	return 0, 0, nil, fmt.Errorf("expr: unknown column %q", c)
}
