package bql

import (
	"strings"
	"testing"
	"time"

	"saber/internal/cql"
	"saber/internal/overload"
	"saber/internal/workload"
)

func testCatalog() cql.Catalog {
	return cql.Catalog{"Syn": workload.SynSchema}
}

func parseOne(t *testing.T, src string) (*Script, Statement) {
	t.Helper()
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Stmts) != 1 {
		t.Fatalf("got %d statements, want 1", len(sc.Stmts))
	}
	return sc, sc.Stmts[0]
}

func TestAnalyzeStreamDefaults(t *testing.T) {
	// Selection query: default emitter is IStream, no overload override.
	src := "CREATE STREAM f AS SELECT * FROM Syn [rows 64 slide 32] WHERE a2 < 4;"
	sc, st := parseOne(t, src)
	spec, err := AnalyzeStream(sc.Src, st.(*CreateStream), testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Emitter != EmitIStream {
		t.Errorf("selection emitter = %v, want istream", spec.Emitter)
	}
	if spec.Overload != nil {
		t.Errorf("overload override = %+v, want nil", spec.Overload)
	}
	if spec.Query == nil || spec.Query.Name != "f" {
		t.Errorf("query: %+v", spec.Query)
	}

	// Aggregation query: default emitter is RStream (paper §2.4).
	src = "CREATE STREAM g AS SELECT sum(a2) FROM Syn [range 16 slide 16];"
	sc, st = parseOne(t, src)
	spec, err = AnalyzeStream(sc.Src, st.(*CreateStream), testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Emitter != EmitRStream {
		t.Errorf("aggregation emitter = %v, want rstream", spec.Emitter)
	}

	// Explicit emitter wins over the default.
	src = "CREATE STREAM h AS DSTREAM SELECT sum(a2) FROM Syn [range 16 slide 16];"
	sc, st = parseOne(t, src)
	spec, err = AnalyzeStream(sc.Src, st.(*CreateStream), testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Emitter != EmitDStream {
		t.Errorf("explicit emitter = %v, want dstream", spec.Emitter)
	}
}

func TestAnalyzeStreamOverloadProps(t *testing.T) {
	src := "CREATE STREAM f WITH (max_queue_bytes=65536, shed_policy=weighted, max_wait_ms=5, seed=9) AS SELECT * FROM Syn [rows 4];"
	sc, st := parseOne(t, src)
	spec, err := AnalyzeStream(sc.Src, st.(*CreateStream), testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	ov := spec.Overload
	if ov == nil {
		t.Fatal("no overload override")
	}
	if ov.MaxQueueBytes != 65536 || ov.Policy != overload.ShedWeighted ||
		ov.MaxWait != 5*time.Millisecond || ov.Seed != 9 {
		t.Errorf("override: %+v", ov)
	}
}

// TestAnalyzeStreamErrorRemap checks that cql errors inside the SELECT
// body are reported in script coordinates, not select-body coordinates.
func TestAnalyzeStreamErrorRemap(t *testing.T) {
	src := "-- header\nCREATE STREAM f AS\n  SELECT * FROM Nope [rows 4];"
	sc, st := parseOne(t, src)
	_, err := AnalyzeStream(sc.Src, st.(*CreateStream), testCatalog())
	if err == nil {
		t.Fatal("analysis of unknown stream succeeded")
	}
	be, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	// "Nope" is on line 3; col is 1-based at the stream name.
	wantCol := strings.Index("  SELECT * FROM Nope [rows 4];", "Nope") + 1
	if be.Line != 3 || be.Col != wantCol {
		t.Errorf("error at line %d col %d, want 3:%d (%s)", be.Line, be.Col, wantCol, be.Msg)
	}
	if !strings.Contains(be.Msg, "Nope") {
		t.Errorf("msg %q does not name the stream", be.Msg)
	}
}

func TestAnalyzeStreamBadProps(t *testing.T) {
	cases := []string{
		"CREATE STREAM f WITH (max_queue_bytes=0) AS SELECT * FROM Syn [rows 4];",
		"CREATE STREAM f WITH (max_queue_bytes=x) AS SELECT * FROM Syn [rows 4];",
		"CREATE STREAM f WITH (shed_policy=sometimes) AS SELECT * FROM Syn [rows 4];",
		"CREATE STREAM f WITH (max_wait_ms=oops) AS SELECT * FROM Syn [rows 4];",
		"CREATE STREAM f WITH (frobnicate=1) AS SELECT * FROM Syn [rows 4];",
	}
	for _, src := range cases {
		sc, st := parseOne(t, src)
		if _, err := AnalyzeStream(sc.Src, st.(*CreateStream), testCatalog()); err == nil {
			t.Errorf("AnalyzeStream(%q) succeeded", src)
		} else if _, ok := err.(*Error); !ok {
			t.Errorf("AnalyzeStream(%q): error type %T", src, err)
		}
	}
}

func TestAnalyzeSource(t *testing.T) {
	src := "CREATE SOURCE S TYPE gen WITH (gen='cm', seed=3, rate=5000, count=100000);"
	sc, st := parseOne(t, src)
	spec, err := AnalyzeSource(sc.Src, st.(*CreateSource))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Schema != workload.CMSchema || spec.SchemaName != "cm" {
		t.Errorf("schema: %v (%s)", spec.Schema, spec.SchemaName)
	}
	if spec.Seed != 3 || spec.Rate != 5000 || spec.Count != 100000 {
		t.Errorf("spec: %+v", spec)
	}
	if g := spec.NewGen(); g == nil {
		t.Error("NewGen returned nil")
	} else {
		buf := g.Next(nil, 4)
		if len(buf) != 4*workload.CMSchema.TupleSize() {
			t.Errorf("generated %d bytes", len(buf))
		}
	}

	src = "CREATE SOURCE T TYPE tcp WITH (schema='syn', addr='127.0.0.1:9911');"
	sc, st = parseOne(t, src)
	spec, err = AnalyzeSource(sc.Src, st.(*CreateSource))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Schema != workload.SynSchema || spec.Addr != "127.0.0.1:9911" {
		t.Errorf("tcp spec: %+v", spec)
	}

	// Every generator key resolves and produces tuples.
	for _, g := range []string{"syn", "cm", "sg", "lrb"} {
		sc, st = parseOne(t, "CREATE SOURCE S TYPE gen WITH (gen='"+g+"');")
		spec, err := AnalyzeSource(sc.Src, st.(*CreateSource))
		if err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		if buf := spec.NewGen().Next(nil, 2); len(buf) != 2*spec.Schema.TupleSize() {
			t.Errorf("%s: generated %d bytes", g, len(buf))
		}
	}
}

func TestAnalyzeSourceErrors(t *testing.T) {
	cases := []string{
		"CREATE SOURCE S TYPE carrierpigeon;",
		"CREATE SOURCE S TYPE gen;",
		"CREATE SOURCE S TYPE gen WITH (gen='nope');",
		"CREATE SOURCE S TYPE gen WITH (gen='syn', addr='x');",
		"CREATE SOURCE S TYPE gen WITH (gen='syn', rate=fast);",
		"CREATE SOURCE S TYPE gen WITH (gen='syn', count=-1);",
		"CREATE SOURCE S TYPE gen WITH (gen='lrb', vehicles=0);",
		"CREATE SOURCE S TYPE tcp WITH (schema='syn');",
		"CREATE SOURCE S TYPE tcp WITH (addr='x');",
		"CREATE SOURCE S TYPE tcp WITH (schema='syn', addr='x', gen='syn');",
	}
	for _, src := range cases {
		sc, st := parseOne(t, src)
		if _, err := AnalyzeSource(sc.Src, st.(*CreateSource)); err == nil {
			t.Errorf("AnalyzeSource(%q) succeeded", src)
		}
	}
}

func TestAnalyzeSink(t *testing.T) {
	sc, st := parseOne(t, "CREATE SINK devnull TYPE null;")
	spec, err := AnalyzeSink(sc.Src, st.(*CreateSink))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Type != "null" {
		t.Errorf("spec: %+v", spec)
	}

	sc, st = parseOne(t, "CREATE SINK f TYPE file WITH (path='/tmp/x');")
	spec, err = AnalyzeSink(sc.Src, st.(*CreateSink))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Path != "/tmp/x" {
		t.Errorf("spec: %+v", spec)
	}

	for _, src := range []string{
		"CREATE SINK s TYPE smoke_signals;",
		"CREATE SINK s TYPE file;",
		"CREATE SINK s TYPE null WITH (path='/tmp/x');",
	} {
		sc, st := parseOne(t, src)
		if _, err := AnalyzeSink(sc.Src, st.(*CreateSink)); err == nil {
			t.Errorf("AnalyzeSink(%q) succeeded", src)
		}
	}
}
