package bql

import (
	"strconv"
	"time"

	"saber/internal/cql"
	"saber/internal/overload"
	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/workload"
)

// StreamSpec is an analyzed CREATE STREAM: the compiled query plus the
// engine knobs its WITH clause selected.
type StreamSpec struct {
	Query *query.Query
	// Emitter is the resolved relation-to-stream operator: the statement's
	// explicit choice, or the paper's default (RStream for aggregation,
	// IStream otherwise) when none was written.
	Emitter Emitter
	// Overload is the per-query overload override built from WITH
	// (max_queue_bytes=..., shed_policy=..., ...); nil when the statement
	// sets none, which inherits the engine-wide config.
	Overload *overload.Config
	// Into names the sink the stream's output routes to; "" is the
	// default sink.
	Into string
}

// SourceSpec is an analyzed CREATE SOURCE.
type SourceSpec struct {
	Name string
	Type string // "gen" or "tcp"
	// Schema is the tuple layout of the stream this source feeds, and
	// SchemaName the workload key it was resolved from (syn, cm, sg, lrb).
	Schema     *schema.Schema
	SchemaName string
	// Gen-source knobs.
	Seed     int64
	Rate     float64 // tuples/sec; 0 = as fast as the engine admits
	Count    int64   // total tuples to emit; 0 = unbounded
	Vehicles int     // lrb only
	// Tcp-source knob.
	Addr string
}

// SinkSpec is an analyzed CREATE SINK.
type SinkSpec struct {
	Name string
	Type string // "null" or "file"
	Path string // file only
}

// genSchemas maps the gen/schema property values onto the built-in
// workload schemas.
var genSchemas = map[string]*schema.Schema{
	"syn": workload.SynSchema,
	"cm":  workload.CMSchema,
	"sg":  workload.SGSchema,
	"lrb": workload.LRBSchema,
}

// AnalyzeStream compiles a CREATE STREAM against the given stream
// catalog: the embedded SELECT goes through the cql parser, with parse
// errors remapped from select-body coordinates to script coordinates,
// and WITH properties map onto per-query overload knobs.
func AnalyzeStream(src string, st *CreateStream, cat cql.Catalog) (*StreamSpec, error) {
	q, err := cql.Parse(st.Name, st.Select, cat)
	if err != nil {
		if pe, ok := err.(*cql.ParseError); ok {
			// Shift from select-body coordinates to script coordinates.
			return nil, errAt(src, st.SelectPos+pe.Offset, "%s", pe.Msg)
		}
		// Semantic errors (validation, unknown columns) carry no offset;
		// anchor them at the SELECT keyword.
		return nil, errAt(src, st.SelectPos, "%v", err)
	}
	spec := &StreamSpec{Query: q, Emitter: st.Emitter, Into: st.Into}
	if spec.Emitter == EmitDefault {
		// Paper §2.4: RStream is the natural operator for aggregation
		// (each window yields a fresh relation), IStream for all other
		// query classes.
		if q.IsAggregation() {
			spec.Emitter = EmitRStream
		} else {
			spec.Emitter = EmitIStream
		}
	}
	ov, err := streamOverload(src, st.Props)
	if err != nil {
		return nil, err
	}
	spec.Overload = ov
	return spec, nil
}

// streamOverload builds the per-query overload override from WITH props.
func streamOverload(src string, props []Prop) (*overload.Config, error) {
	var cfg *overload.Config
	ensure := func() *overload.Config {
		if cfg == nil {
			cfg = &overload.Config{}
		}
		return cfg
	}
	for _, pr := range props {
		switch pr.Key {
		case "max_queue_bytes":
			n, err := propInt(src, pr)
			if err != nil {
				return nil, err
			}
			if n <= 0 {
				return nil, errAt(src, pr.Pos, "max_queue_bytes must be positive, got %d", n)
			}
			ensure().MaxQueueBytes = n
		case "shed_policy":
			pol, err := overload.ParsePolicy(pr.Value)
			if err != nil {
				return nil, errAt(src, pr.Pos, "shed_policy: %v", err)
			}
			ensure().Policy = pol
		case "max_wait_ms":
			n, err := propInt(src, pr)
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, errAt(src, pr.Pos, "max_wait_ms must be non-negative, got %d", n)
			}
			ensure().MaxWait = time.Duration(n) * time.Millisecond
		case "seed":
			n, err := propInt(src, pr)
			if err != nil {
				return nil, err
			}
			ensure().Seed = n
		default:
			return nil, errAt(src, pr.Pos, "unknown stream property %q (want max_queue_bytes, shed_policy, max_wait_ms or seed)", pr.Key)
		}
	}
	return cfg, nil
}

// AnalyzeSource resolves a CREATE SOURCE into a runnable spec.
func AnalyzeSource(src string, st *CreateSource) (*SourceSpec, error) {
	spec := &SourceSpec{Name: st.Name, Type: st.Type}
	switch st.Type {
	case "gen", "tcp":
	default:
		return nil, errAt(src, st.Pos, "source %s: unknown type %q (want gen or tcp)", st.Name, st.Type)
	}
	schemaKey := ""
	for _, pr := range st.Props {
		switch {
		case pr.Key == "gen" && st.Type == "gen":
			schemaKey = pr.Value
		case pr.Key == "schema" && st.Type == "tcp":
			schemaKey = pr.Value
		case pr.Key == "seed" && st.Type == "gen":
			n, err := propInt(src, pr)
			if err != nil {
				return nil, err
			}
			spec.Seed = n
		case pr.Key == "rate" && st.Type == "gen":
			f, err := strconv.ParseFloat(pr.Value, 64)
			if err != nil || f < 0 {
				return nil, errAt(src, pr.Pos, "rate must be a non-negative number, got %q", pr.Value)
			}
			spec.Rate = f
		case pr.Key == "count" && st.Type == "gen":
			n, err := propInt(src, pr)
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, errAt(src, pr.Pos, "count must be non-negative, got %d", n)
			}
			spec.Count = n
		case pr.Key == "vehicles" && st.Type == "gen":
			n, err := propInt(src, pr)
			if err != nil {
				return nil, err
			}
			if n <= 0 {
				return nil, errAt(src, pr.Pos, "vehicles must be positive, got %d", n)
			}
			spec.Vehicles = int(n)
		case pr.Key == "addr" && st.Type == "tcp":
			spec.Addr = pr.Value
		default:
			return nil, errAt(src, pr.Pos, "unknown property %q for %s source", pr.Key, st.Type)
		}
	}
	if schemaKey == "" {
		if st.Type == "gen" {
			return nil, errAt(src, st.Pos, "source %s: gen source needs gen=syn|cm|sg|lrb", st.Name)
		}
		return nil, errAt(src, st.Pos, "source %s: tcp source needs schema=syn|cm|sg|lrb", st.Name)
	}
	sch, ok := genSchemas[schemaKey]
	if !ok {
		return nil, errAt(src, st.Pos, "source %s: unknown generator %q (want syn, cm, sg or lrb)", st.Name, schemaKey)
	}
	spec.Schema, spec.SchemaName = sch, schemaKey
	if st.Type == "tcp" && spec.Addr == "" {
		return nil, errAt(src, st.Pos, "source %s: tcp source needs addr='host:port'", st.Name)
	}
	return spec, nil
}

// AnalyzeSink resolves a CREATE SINK into a runnable spec.
func AnalyzeSink(src string, st *CreateSink) (*SinkSpec, error) {
	spec := &SinkSpec{Name: st.Name, Type: st.Type}
	switch st.Type {
	case "null", "file":
	default:
		return nil, errAt(src, st.Pos, "sink %s: unknown type %q (want null or file)", st.Name, st.Type)
	}
	for _, pr := range st.Props {
		switch {
		case pr.Key == "path" && st.Type == "file":
			spec.Path = pr.Value
		default:
			return nil, errAt(src, pr.Pos, "unknown property %q for %s sink", pr.Key, st.Type)
		}
	}
	if st.Type == "file" && spec.Path == "" {
		return nil, errAt(src, st.Pos, "sink %s: file sink needs path='...'", st.Name)
	}
	return spec, nil
}

// Gen is the common interface of the built-in workload generators: fill
// dst with n tuples and return it.
type Gen interface {
	Next(dst []byte, n int) []byte
}

// NewGen constructs the seeded workload generator for a gen source.
// Distinct sources get independent deterministic streams via their seeds,
// which is also what makes crash-restart replay reproducible.
func (s *SourceSpec) NewGen() Gen {
	switch s.SchemaName {
	case "syn":
		return workload.NewSynGen(s.Seed)
	case "cm":
		return workload.NewCMGen(s.Seed)
	case "sg":
		return workload.NewSGGen(s.Seed)
	case "lrb":
		v := s.Vehicles
		if v == 0 {
			v = 64
		}
		return workload.NewLRBGen(s.Seed, v)
	}
	return nil
}

func propInt(src string, pr Prop) (int64, error) {
	n, err := strconv.ParseInt(pr.Value, 10, 64)
	if err != nil {
		return 0, errAt(src, pr.Pos, "property %s must be an integer, got %q", pr.Key, pr.Value)
	}
	return n, nil
}
