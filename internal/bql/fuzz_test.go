package bql

import (
	"strings"
	"testing"

	"saber/internal/cql"
	"saber/internal/workload"
)

// FuzzParse runs arbitrary scripts through the statement lexer + parser
// and, for scripts that parse, through analysis of every statement. The
// contract: malformed input always comes back as an error (never a panic,
// hang or out-of-range slice), parsing is deterministic, and every error
// is positioned inside the source. Scripts reach this path verbatim from
// operator-supplied .bql files and the admin DDL endpoint.
func FuzzParse(f *testing.F) {
	// Every statement form...
	f.Add(`CREATE SOURCE Syn TYPE gen WITH (gen='syn', seed=1, rate=1000, count=50000);`)
	f.Add(`CREATE SOURCE Ext TYPE tcp WITH (schema='cm', addr='127.0.0.1:9900');`)
	f.Add(`CREATE SOURCE Roads TYPE gen WITH (gen='lrb', vehicles=128);`)
	f.Add(`CREATE SINK devnull TYPE null;`)
	f.Add(`CREATE SINK archive TYPE file WITH (path='/tmp/out.bin');`)
	f.Add(`CREATE STREAM f AS SELECT * FROM Syn [rows 64 slide 32] WHERE a2 < 4;`)
	f.Add(`CREATE STREAM g AS RSTREAM SELECT sum(a2), count(*) FROM Syn [range 16] GROUP BY a3 INTO archive;`)
	f.Add(`CREATE STREAM h AS ISTREAM SELECT a2+a3 AS s FROM Syn [range unbounded];`)
	f.Add(`CREATE STREAM i WITH (max_queue_bytes=65536, shed_policy=oldest, max_wait_ms=2, seed=3) AS DSTREAM SELECT * FROM Syn [rows 4];`)
	f.Add("DROP STREAM f;\nDROP SOURCE Syn;\nDROP SINK devnull;")
	f.Add("PAUSE STREAM f; RESUME STREAM f; PAUSE f; RESUME f;")
	f.Add("-- comment only\n;;;\n")
	// ...and malformed ones, weighted toward WITH-spec mistakes.
	f.Add(`CREATE STREAM f WITH max_queue_bytes=1 AS SELECT * FROM Syn [rows 4];`)
	f.Add(`CREATE STREAM f WITH (max_queue_bytes) AS SELECT * FROM Syn [rows 4];`)
	f.Add(`CREATE STREAM f WITH (max_queue_bytes=) AS SELECT * FROM Syn [rows 4];`)
	f.Add(`CREATE STREAM f WITH (max_queue_bytes=-1) AS SELECT * FROM Syn [rows 4];`)
	f.Add(`CREATE STREAM f WITH (shed_policy='sometimes') AS SELECT * FROM Syn [rows 4];`)
	f.Add(`CREATE STREAM f WITH (seed=1,) AS SELECT * FROM Syn [rows 4];`)
	f.Add(`CREATE STREAM f WITH (a=1 b=2) AS SELECT * FROM Syn [rows 4];`)
	f.Add(`CREATE SOURCE S TYPE gen WITH (gen=syn', seed=);`)
	f.Add(`CREATE SOURCE S TYPE;`)
	f.Add(`CREATE STREAM s AS SELECT`)
	f.Add(`CREATE STREAM s AS SELECT * FROM Syn [rows 4] INTO;`)
	f.Add(`DROP;`)
	f.Add(`PAUSE RESUME;`)
	f.Add("CREATE STREAM s AS SELECT 'unterminated")
	f.Add(strings.Repeat("(", 500))
	f.Add(strings.Repeat("CREATE STREAM s AS SELECT * FROM Syn [rows 4]; ", 50))
	f.Add("CREATE\x00STREAM s;")

	cat := cql.Catalog{"Syn": workload.SynSchema}
	f.Fuzz(func(t *testing.T, src string) {
		sc1, err1 := Parse(src)
		sc2, err2 := Parse(src)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic outcome for %q: %v vs %v", src, err1, err2)
		}
		if err1 != nil {
			checkErr(t, src, err1)
			return
		}
		if sc1 == nil || sc2 == nil || len(sc1.Stmts) != len(sc2.Stmts) {
			t.Fatalf("non-deterministic parse for %q", src)
		}
		// Analysis of parsed statements must also never panic; errors are
		// fine (unknown streams, bad props), but must carry positions.
		for _, st := range sc1.Stmts {
			var err error
			switch st := st.(type) {
			case *CreateStream:
				_, err = AnalyzeStream(sc1.Src, st, cat)
			case *CreateSource:
				_, err = AnalyzeSource(sc1.Src, st)
			case *CreateSink:
				_, err = AnalyzeSink(sc1.Src, st)
			}
			if err != nil {
				checkErr(t, src, err)
			}
		}
	})
}

func checkErr(t *testing.T, src string, err error) {
	t.Helper()
	be, ok := err.(*Error)
	if !ok {
		t.Fatalf("error for %q is %T, not *bql.Error: %v", src, err, err)
	}
	if be.Offset < 0 || be.Offset > len(src) || be.Line < 1 || be.Col < 1 {
		t.Fatalf("error position out of range for %q: %+v", src, be)
	}
}
