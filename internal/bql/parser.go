package bql

import "strings"

// Parse lexes and parses a BQL script into statements. Embedded SELECT
// bodies are captured verbatim (statement parsing needs no schemas);
// they are compiled against the catalog during analysis, with errors
// remapped to script positions.
func Parse(src string) (*Script, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	sc := &Script{Src: src}
	for p.cur().kind != tokEOF {
		// Tolerate stray semicolons between statements.
		if p.isPunct(";") {
			p.i++
			continue
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		setStatementEnd(st, p.lastEnd)
		sc.Stmts = append(sc.Stmts, st)
	}
	return sc, nil
}

type parser struct {
	src  string
	toks []token
	i    int
	// lastEnd is the byte offset just past the most recently terminated
	// statement (its ';', or EOF), recorded by expectEnd.
	lastEnd int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) isKeyword(s string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == s
}

func (p *parser) errTok(t token, format string, args ...any) error {
	return errAt(p.src, t.pos, format, args...)
}

// describe renders a token for error messages.
func describe(t token) string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return "'" + t.text + "'"
	default:
		return "\"" + t.text + "\""
	}
}

func (p *parser) expectKeyword(kw string) (token, error) {
	t := p.cur()
	if t.kind != tokKeyword || t.text != kw {
		return t, p.errTok(t, "expected %q, found %s", kw, describe(t))
	}
	p.i++
	return t, nil
}

func (p *parser) expectPunct(s string) (token, error) {
	t := p.cur()
	if t.kind != tokPunct || t.text != s {
		return t, p.errTok(t, "expected %q, found %s", s, describe(t))
	}
	p.i++
	return t, nil
}

func (p *parser) expectIdent(what string) (token, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return t, p.errTok(t, "expected %s, found %s", what, describe(t))
	}
	p.i++
	return t, nil
}

// expectEnd consumes the statement's terminating ';' (EOF is accepted for
// the final statement).
func (p *parser) expectEnd() error {
	if t := p.cur(); t.kind == tokEOF {
		p.lastEnd = t.pos
		return nil
	}
	t, err := p.expectPunct(";")
	if err == nil {
		p.lastEnd = t.pos + 1
	}
	return err
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return nil, p.errTok(t, "expected statement keyword (create, drop, pause, resume), found %s", describe(t))
	}
	switch t.text {
	case "create":
		return p.parseCreate()
	case "drop":
		return p.parseDrop()
	case "pause", "resume":
		return p.parsePauseResume()
	default:
		return nil, p.errTok(t, "expected statement keyword (create, drop, pause, resume), found %s", describe(t))
	}
}

// parseKind consumes STREAM | SOURCE | SINK.
func (p *parser) parseKind() (ObjectKind, error) {
	t := p.cur()
	if t.kind == tokKeyword {
		switch t.text {
		case "stream":
			p.i++
			return KindStream, nil
		case "source":
			p.i++
			return KindSource, nil
		case "sink":
			p.i++
			return KindSink, nil
		}
	}
	return 0, p.errTok(t, "expected \"stream\", \"source\" or \"sink\", found %s", describe(t))
}

func (p *parser) parseCreate() (Statement, error) {
	start := p.next() // create
	kind, err := p.parseKind()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent(kind.String() + " name")
	if err != nil {
		return nil, err
	}
	if kind == KindStream {
		return p.parseCreateStream(start, name.text)
	}
	// CREATE SOURCE|SINK name TYPE t [WITH (...)] ;
	if _, err := p.expectKeyword("type"); err != nil {
		return nil, err
	}
	typ, err := p.expectIdent(kind.String() + " type")
	if err != nil {
		return nil, err
	}
	props, err := p.parseWith()
	if err != nil {
		return nil, err
	}
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	if kind == KindSource {
		return &CreateSource{Pos: start.pos, Name: name.text, Type: strings.ToLower(typ.text), Props: props}, nil
	}
	return &CreateSink{Pos: start.pos, Name: name.text, Type: strings.ToLower(typ.text), Props: props}, nil
}

func (p *parser) parseCreateStream(start token, name string) (Statement, error) {
	props, err := p.parseWith()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("as"); err != nil {
		return nil, err
	}
	emitter := EmitDefault
	if t := p.cur(); t.kind == tokKeyword {
		switch t.text {
		case "istream":
			emitter = EmitIStream
			p.i++
		case "dstream":
			emitter = EmitDStream
			p.i++
		case "rstream":
			emitter = EmitRStream
			p.i++
		}
	}
	selTok := p.cur()
	if selTok.kind != tokKeyword || selTok.text != "select" {
		return nil, p.errTok(selTok, "expected \"select\", found %s", describe(selTok))
	}
	// Capture the SELECT body verbatim: scan to the first top-level ';' or
	// INTO. Depth tracking lets parenthesised expressions and window specs
	// contain anything the cql lexer accepts.
	depth := 0
	end := selTok
scan:
	for {
		t := p.cur()
		switch {
		case t.kind == tokEOF:
			end = t
			break scan
		case t.kind == tokPunct && (t.text == "(" || t.text == "["):
			depth++
		case t.kind == tokPunct && (t.text == ")" || t.text == "]"):
			depth--
		case depth == 0 && t.kind == tokPunct && t.text == ";":
			end = t
			break scan
		case depth == 0 && t.kind == tokKeyword && t.text == "into":
			end = t
			break scan
		}
		p.i++
	}
	sel := strings.TrimSpace(p.src[selTok.pos:end.pos])
	st := &CreateStream{
		Pos: start.pos, Name: name, Props: props,
		Emitter: emitter, Select: sel, SelectPos: selTok.pos,
	}
	if p.isKeyword("into") {
		p.i++
		sink, err := p.expectIdent("sink name")
		if err != nil {
			return nil, err
		}
		st.Into = sink.text
	}
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseDrop() (Statement, error) {
	start := p.next() // drop
	kind, err := p.parseKind()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent(kind.String() + " name")
	if err != nil {
		return nil, err
	}
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	return &Drop{Pos: start.pos, Kind: kind, Name: name.text}, nil
}

func (p *parser) parsePauseResume() (Statement, error) {
	start := p.next() // pause | resume
	// The STREAM keyword is optional: PAUSE name == PAUSE STREAM name.
	if p.isKeyword("stream") {
		p.i++
	}
	name, err := p.expectIdent("stream name")
	if err != nil {
		return nil, err
	}
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	if start.text == "pause" {
		return &Pause{Pos: start.pos, Name: name.text}, nil
	}
	return &Resume{Pos: start.pos, Name: name.text}, nil
}

// parseWith parses an optional WITH (k=v, ...) clause.
func (p *parser) parseWith() ([]Prop, error) {
	if !p.isKeyword("with") {
		return nil, nil
	}
	p.i++
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var props []Prop
	for {
		key, err := p.expectIdent("property name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct("="); err != nil {
			return nil, err
		}
		pr := Prop{Pos: key.pos, Key: strings.ToLower(key.text)}
		neg := false
		if p.isPunct("-") {
			neg = true
			p.i++
		}
		val := p.cur()
		switch {
		case val.kind == tokNumber:
			pr.Value = val.text
			if neg {
				pr.Value = "-" + pr.Value
			}
		case neg:
			return nil, p.errTok(val, "expected number after \"-\", found %s", describe(val))
		case val.kind == tokIdent || val.kind == tokKeyword:
			pr.Value = val.text
		case val.kind == tokString:
			pr.Value = val.text
			pr.Quoted = true
		default:
			return nil, p.errTok(val, "expected property value, found %s", describe(val))
		}
		p.i++
		props = append(props, pr)
		if p.isPunct(",") {
			p.i++
			continue
		}
		break
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return props, nil
}
