// Package bql implements SABER's statement-level streaming SQL dialect:
// DDL statements that create and manage named sources, continuous
// streams and sinks on a live engine, with the per-stream SELECT bodies
// delegated to the internal/cql expression dialect.
//
// The grammar (DESIGN.md §14):
//
//	CREATE SOURCE <name> TYPE <gen|tcp> [WITH (k=v, ...)] ;
//	CREATE SINK   <name> TYPE <null|file> [WITH (k=v, ...)] ;
//	CREATE STREAM <name> [WITH (k=v, ...)]
//	       AS [ISTREAM|DSTREAM|RSTREAM] SELECT ... [INTO <sink>] ;
//	DROP   STREAM|SOURCE|SINK <name> ;
//	PAUSE  STREAM <name> ;
//	RESUME STREAM <name> ;
//
// Statements are ';'-separated; '--' starts a line comment. The pipeline
// is lex → statement AST (Parse) → analysis (Analyze*) → engine actions,
// with each stage unit-testable on its own: Parse never needs schemas,
// and the analyzers never need a running engine.
package bql

import (
	"fmt"
	"strings"
	"unicode"

	"saber/internal/cql"
)

// Error is a BQL parse or analysis error with 1-based source position.
type Error struct {
	Offset    int
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("bql: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// errAt builds an Error anchored at a byte offset of src.
func errAt(src string, offset int, format string, args ...any) error {
	line, col := cql.Position(src, offset)
	return &Error{Offset: offset, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString // single-quoted literal, text holds the unquoted value
	tokPunct
	tokKeyword
)

type token struct {
	kind tokenKind
	text string // keywords lower-cased; strings unquoted
	pos  int    // byte offset
}

// Statement-level keywords. Everything else — including cql keywords
// inside a SELECT body, which this lexer only ever skips over — stays an
// identifier.
var keywords = map[string]bool{
	"create": true, "drop": true, "pause": true, "resume": true,
	"stream": true, "source": true, "sink": true,
	"type": true, "with": true, "as": true, "into": true,
	"istream": true, "dstream": true, "rstream": true,
	"select": true,
}

// lex tokenizes a BQL script. The punctuation set is a superset of the
// cql dialect's, so the statement scanner can skip over an embedded
// SELECT body to its terminating ';' without a lexical error.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				if src[j] == '\n' {
					return nil, errAt(src, i, "unterminated string literal")
				}
				j++
			}
			if j >= len(src) {
				return nil, errAt(src, i, "unterminated string literal")
			}
			toks = append(toks, token{tokString, src[i+1 : j], i})
			i = j + 1
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			lower := strings.ToLower(word)
			if keywords[lower] {
				toks = append(toks, token{tokKeyword, lower, i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		case c >= '0' && c <= '9':
			j := i + 1
			seenDot := false
			for j < len(src) {
				if src[j] >= '0' && src[j] <= '9' {
					j++
				} else if src[j] == '.' && !seenDot && j+1 < len(src) && src[j+1] >= '0' && src[j+1] <= '9' {
					seenDot = true
					j++
				} else {
					break
				}
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=":
				toks = append(toks, token{tokPunct, two, i})
				i += 2
				continue
			}
			switch c {
			case '(', ')', '[', ']', ',', '.', '*', '+', '-', '/', '%', '<', '>', '=', ';':
				toks = append(toks, token{tokPunct, string(c), i})
				i++
			default:
				return nil, errAt(src, i, "unexpected character %q", c)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
