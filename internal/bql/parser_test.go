package bql

import (
	"strings"
	"testing"
)

const sampleScript = `
-- demo catalog
CREATE SOURCE Syn TYPE gen WITH (gen='syn', seed=7, rate=100000);
CREATE SINK results TYPE file WITH (path='/tmp/out.bin');

CREATE STREAM filtered AS
  SELECT timestamp, a, b FROM Syn [rows 64 slide 32] WHERE b < 4;

CREATE STREAM totals WITH (max_queue_bytes=65536, shed_policy=oldest) AS
  RSTREAM SELECT sum(a) FROM Syn [range 16 slide 16] GROUP BY c
  INTO results;

PAUSE STREAM filtered;
RESUME filtered;
DROP STREAM totals;
DROP SOURCE Syn;
`

func TestParseScript(t *testing.T) {
	sc, err := Parse(sampleScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Stmts) != 8 {
		t.Fatalf("got %d statements, want 8", len(sc.Stmts))
	}
	src, ok := sc.Stmts[0].(*CreateSource)
	if !ok || src.Name != "Syn" || src.Type != "gen" {
		t.Fatalf("stmt 0: %+v", sc.Stmts[0])
	}
	wantProps := map[string]string{"gen": "syn", "seed": "7", "rate": "100000"}
	for _, pr := range src.Props {
		if wantProps[pr.Key] != pr.Value {
			t.Errorf("source prop %s=%q", pr.Key, pr.Value)
		}
	}
	sink, ok := sc.Stmts[1].(*CreateSink)
	if !ok || sink.Name != "results" || sink.Type != "file" {
		t.Fatalf("stmt 1: %+v", sc.Stmts[1])
	}
	if len(sink.Props) != 1 || sink.Props[0].Key != "path" || sink.Props[0].Value != "/tmp/out.bin" || !sink.Props[0].Quoted {
		t.Fatalf("sink props: %+v", sink.Props)
	}

	flt, ok := sc.Stmts[2].(*CreateStream)
	if !ok || flt.Name != "filtered" {
		t.Fatalf("stmt 2: %+v", sc.Stmts[2])
	}
	if flt.Emitter != EmitDefault || flt.Into != "" || len(flt.Props) != 0 {
		t.Errorf("filtered: emitter=%v into=%q props=%v", flt.Emitter, flt.Into, flt.Props)
	}
	if want := "SELECT timestamp, a, b FROM Syn [rows 64 slide 32] WHERE b < 4"; flt.Select != want {
		t.Errorf("filtered select span:\n got %q\nwant %q", flt.Select, want)
	}
	if sampleScript[flt.SelectPos:flt.SelectPos+6] != "SELECT" {
		t.Errorf("SelectPos %d does not point at SELECT", flt.SelectPos)
	}

	tot, ok := sc.Stmts[3].(*CreateStream)
	if !ok || tot.Name != "totals" {
		t.Fatalf("stmt 3: %+v", sc.Stmts[3])
	}
	if tot.Emitter != EmitRStream || tot.Into != "results" {
		t.Errorf("totals: emitter=%v into=%q", tot.Emitter, tot.Into)
	}
	if !strings.HasPrefix(tot.Select, "SELECT sum(a)") || strings.Contains(tot.Select, "INTO") {
		t.Errorf("totals select span: %q", tot.Select)
	}
	if len(tot.Props) != 2 || tot.Props[0].Key != "max_queue_bytes" || tot.Props[1].Value != "oldest" {
		t.Errorf("totals props: %+v", tot.Props)
	}

	if p, ok := sc.Stmts[4].(*Pause); !ok || p.Name != "filtered" {
		t.Errorf("stmt 4: %+v", sc.Stmts[4])
	}
	if r, ok := sc.Stmts[5].(*Resume); !ok || r.Name != "filtered" {
		t.Errorf("stmt 5 (optional STREAM keyword): %+v", sc.Stmts[5])
	}
	if d, ok := sc.Stmts[6].(*Drop); !ok || d.Kind != KindStream || d.Name != "totals" {
		t.Errorf("stmt 6: %+v", sc.Stmts[6])
	}
	if d, ok := sc.Stmts[7].(*Drop); !ok || d.Kind != KindSource || d.Name != "Syn" {
		t.Errorf("stmt 7: %+v", sc.Stmts[7])
	}
}

func TestParseEmptyAndComments(t *testing.T) {
	for _, src := range []string{"", "   \n\t", "-- just a comment\n", ";;;"} {
		sc, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		} else if len(sc.Stmts) != 0 {
			t.Errorf("Parse(%q): %d statements", src, len(sc.Stmts))
		}
	}
}

func TestParseFinalSemicolonOptional(t *testing.T) {
	sc, err := Parse("DROP STREAM s")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Stmts) != 1 {
		t.Fatalf("got %d statements", len(sc.Stmts))
	}
}

// TestParseErrors checks that malformed statements fail with positioned
// errors pointing at the offending token.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		line    int
		col     int
		wantMsg string
	}{
		{"FROB STREAM s;", 1, 1, "expected statement keyword"},
		{"CREATE TABLE t;", 1, 8, "expected \"stream\", \"source\" or \"sink\""},
		{"CREATE STREAM;", 1, 14, "expected stream name"},
		{"CREATE STREAM s SELECT 1;", 1, 17, "expected \"as\""},
		{"CREATE STREAM s AS FROM x;", 1, 20, "expected \"select\""},
		{"CREATE SOURCE s WITH (a=1);", 1, 17, "expected \"type\""},
		{"CREATE SOURCE s TYPE gen WITH (=1);", 1, 32, "expected property name"},
		{"CREATE SOURCE s TYPE gen WITH (a 1);", 1, 34, "expected \"=\""},
		{"CREATE SOURCE s TYPE gen WITH (a=;);", 1, 34, "expected property value"},
		{"CREATE SOURCE s TYPE gen WITH (a=1;", 1, 35, "expected \")\""},
		{"DROP s;", 1, 6, "expected \"stream\", \"source\" or \"sink\""},
		{"PAUSE STREAM;", 1, 13, "expected stream name"},
		{"DROP STREAM a b;", 1, 15, "expected \";\""},
		{"CREATE STREAM s AS SELECT 'oops", 1, 27, "unterminated string"},
		{"CREATE STREAM s AS SELECT a ~ b;", 1, 29, "unexpected character"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded", tc.src)
			continue
		}
		be, ok := err.(*Error)
		if !ok {
			t.Errorf("Parse(%q): error type %T", tc.src, err)
			continue
		}
		if be.Line != tc.line || be.Col != tc.col {
			t.Errorf("Parse(%q): error at line %d col %d, want %d:%d (%s)",
				tc.src, be.Line, be.Col, tc.line, tc.col, be.Msg)
		}
		if !strings.Contains(be.Msg, tc.wantMsg) {
			t.Errorf("Parse(%q): msg %q does not contain %q", tc.src, be.Msg, tc.wantMsg)
		}
		if !strings.HasPrefix(err.Error(), "bql: line ") {
			t.Errorf("Parse(%q): error string %q", tc.src, err.Error())
		}
	}
}

// TestSelectSpanNesting checks the span scanner tracks bracket depth, so
// punctuation inside parentheses or window specs never terminates the
// SELECT body early.
func TestSelectSpanNesting(t *testing.T) {
	src := "CREATE STREAM s AS SELECT sum(a+b) FROM x [rows 4] HAVING sum(a+b) > 2; DROP STREAM s;"
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Stmts) != 2 {
		t.Fatalf("got %d statements, want 2", len(sc.Stmts))
	}
	st := sc.Stmts[0].(*CreateStream)
	if want := "SELECT sum(a+b) FROM x [rows 4] HAVING sum(a+b) > 2"; st.Select != want {
		t.Errorf("select span: %q", st.Select)
	}
}
