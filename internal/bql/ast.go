package bql

import "strings"

// Emitter selects the relation-to-stream operator applied to a stream's
// window results (paper §2.4): RStream emits the full window relation,
// IStream the tuples inserted since the previous window, DStream the
// tuples deleted. EmitDefault picks the paper's natural operator per
// query class: RStream for aggregation, IStream for everything else.
type Emitter uint8

// Emitter operators.
const (
	EmitDefault Emitter = iota
	EmitIStream
	EmitDStream
	EmitRStream
)

// String names the emitter as written in BQL.
func (e Emitter) String() string {
	return [...]string{"default", "istream", "dstream", "rstream"}[e]
}

// ObjectKind identifies the catalog object class a DDL statement targets.
type ObjectKind uint8

// Catalog object kinds.
const (
	KindStream ObjectKind = iota
	KindSource
	KindSink
)

// String names the kind as written in BQL.
func (k ObjectKind) String() string {
	return [...]string{"stream", "source", "sink"}[k]
}

// Prop is one k=v entry of a WITH (...) clause. Value holds the raw text
// for numbers and identifiers and the unquoted text for string literals.
type Prop struct {
	Pos    int
	Key    string
	Value  string
	Quoted bool
}

// Statement is one parsed BQL statement.
type Statement interface {
	// Position returns the statement's starting byte offset in the script.
	Position() int
	stmt()
}

// Script is a parsed BQL script: the raw source (kept for error position
// remapping against embedded SELECT spans) and its statements in order.
type Script struct {
	Src   string
	Stmts []Statement
}

// Text returns the verbatim source of one statement, without the
// terminating semicolon — the canonical replayable form the catalog logs
// into checkpoints.
func (sc *Script) Text(st Statement) string {
	end := statementEnd(st)
	if end <= st.Position() || end > len(sc.Src) {
		end = len(sc.Src)
	}
	return strings.TrimRight(strings.TrimSpace(sc.Src[st.Position():end]), ";")
}

func statementEnd(st Statement) int {
	switch st := st.(type) {
	case *CreateSource:
		return st.End
	case *CreateSink:
		return st.End
	case *CreateStream:
		return st.End
	case *Drop:
		return st.End
	case *Pause:
		return st.End
	case *Resume:
		return st.End
	}
	return 0
}

func setStatementEnd(st Statement, end int) {
	switch st := st.(type) {
	case *CreateSource:
		st.End = end
	case *CreateSink:
		st.End = end
	case *CreateStream:
		st.End = end
	case *Drop:
		st.End = end
	case *Pause:
		st.End = end
	case *Resume:
		st.End = end
	}
}

// CreateSource declares a named input: CREATE SOURCE name TYPE gen|tcp
// WITH (...). The source's name is the stream name that CREATE STREAM
// selects FROM.
type CreateSource struct {
	Pos, End   int
	Name  string
	Type  string
	Props []Prop
}

// CreateSink declares a named output: CREATE SINK name TYPE null|file
// WITH (...).
type CreateSink struct {
	Pos, End   int
	Name  string
	Type  string
	Props []Prop
}

// CreateStream registers a continuous query: CREATE STREAM name
// [WITH (...)] AS [emitter] SELECT ... [INTO sink]. Select holds the
// verbatim cql text starting at SelectPos in the script source; it is
// parsed during analysis so Parse stays schema-free.
type CreateStream struct {
	Pos, End       int
	Name      string
	Props     []Prop
	Emitter   Emitter
	Select    string
	SelectPos int
	Into      string // sink name; "" routes to the default sink
}

// Drop removes a catalog object: DROP STREAM|SOURCE|SINK name.
type Drop struct {
	Pos, End  int
	Kind ObjectKind
	Name string
}

// Pause quiesces a stream at a task boundary: PAUSE STREAM name.
type Pause struct {
	Pos, End  int
	Name string
}

// Resume restarts a paused stream: RESUME STREAM name.
type Resume struct {
	Pos, End  int
	Name string
}

func (s *CreateSource) Position() int { return s.Pos }
func (s *CreateSink) Position() int   { return s.Pos }
func (s *CreateStream) Position() int { return s.Pos }
func (s *Drop) Position() int         { return s.Pos }
func (s *Pause) Position() int        { return s.Pos }
func (s *Resume) Position() int       { return s.Pos }

func (*CreateSource) stmt() {}
func (*CreateSink) stmt()   {}
func (*CreateStream) stmt() {}
func (*Drop) stmt()         {}
func (*Pause) stmt()        {}
func (*Resume) stmt()       {}
