package catalog

import (
	"bytes"
	"testing"

	"saber/internal/bql"
)

// rowsOf packs 4-byte rows for emitter tests.
func rowsOf(ids ...byte) []byte {
	out := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		out = append(out, id, 0, 0, id)
	}
	return out
}

func TestEmitterSelectionSemantics(t *testing.T) {
	batch := rowsOf(1, 2, 3)
	if got := newEmitter(bql.EmitIStream, false, 4).apply(batch); !bytes.Equal(got, batch) {
		t.Errorf("selection IStream: %v", got)
	}
	if got := newEmitter(bql.EmitRStream, false, 4).apply(batch); !bytes.Equal(got, batch) {
		t.Errorf("selection RStream: %v", got)
	}
	if got := newEmitter(bql.EmitDStream, false, 4).apply(batch); got != nil {
		t.Errorf("selection DStream emitted %v", got)
	}
}

func TestEmitterAggregationIStream(t *testing.T) {
	em := newEmitter(bql.EmitIStream, true, 4)
	// First batch: everything is an insertion.
	if got := em.apply(rowsOf(1, 2)); !bytes.Equal(got, rowsOf(1, 2)) {
		t.Errorf("first batch: %v", got)
	}
	// Second batch keeps 2, drops 1, adds 3 and a duplicate 2: the
	// insertions are 3 and the second occurrence of 2, in batch order.
	if got := em.apply(rowsOf(2, 3, 2)); !bytes.Equal(got, rowsOf(3, 2)) {
		t.Errorf("second batch: %v", got)
	}
	// Unchanged batch: nothing inserted.
	if got := em.apply(rowsOf(2, 3, 2)); len(got) != 0 {
		t.Errorf("unchanged batch: %v", got)
	}
}

func TestEmitterAggregationDStream(t *testing.T) {
	em := newEmitter(bql.EmitDStream, true, 4)
	// First batch: nothing was deleted (no previous window).
	if got := em.apply(rowsOf(1, 2, 2)); len(got) != 0 {
		t.Errorf("first batch: %v", got)
	}
	// 1 and one occurrence of 2 disappear.
	if got := em.apply(rowsOf(2, 3)); !bytes.Equal(got, rowsOf(1, 2)) {
		t.Errorf("second batch: %v", got)
	}
	// Everything disappears, in previous-batch order.
	if got := em.apply(nil); !bytes.Equal(got, rowsOf(2, 3)) {
		t.Errorf("final batch: %v", got)
	}
}

func TestEmitterAggregationRStreamIdentity(t *testing.T) {
	em := newEmitter(bql.EmitRStream, true, 4)
	for i := 0; i < 3; i++ {
		batch := rowsOf(byte(i), byte(i+1))
		if got := em.apply(batch); !bytes.Equal(got, batch) {
			t.Errorf("batch %d: %v", i, got)
		}
	}
}
