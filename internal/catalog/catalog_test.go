package catalog

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"saber/internal/bql"
	"saber/internal/cql"
	"saber/internal/engine"
	"saber/internal/workload"
)

func fastCfg(dir string) engine.Config {
	cfg := engine.Config{CPUWorkers: 4, TaskSize: 4096, DisablePad: true}
	if dir != "" {
		cfg.CheckpointDir = dir
		cfg.CheckpointInterval = -1 // epochs are cut explicitly
	}
	return cfg
}

// collector buffers a stream tap.
type collector struct {
	mu  sync.Mutex
	buf []byte
}

func (c *collector) add(rows []byte) {
	c.mu.Lock()
	c.buf = append(c.buf, rows...)
	c.mu.Unlock()
}

func (c *collector) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf...)
}

// tapStream attaches a fresh collector to a stream.
func tapStream(t *testing.T, m *Manager, name string) *collector {
	t.Helper()
	c := &collector{}
	if err := m.Tap(name, c.add); err != nil {
		t.Fatal(err)
	}
	return c
}

// refInput regenerates a gen source's full deterministic stream.
func refInput(seed int64, count int) []byte {
	return workload.NewSynGen(seed).Next(nil, count)
}

// refRun compiles the stream statement against the given schema catalog
// and runs it alone on a fresh engine over input — the statically
// registered reference the catalog-managed run must match byte for byte.
func refRun(t *testing.T, stmt string, input []byte) []byte {
	t.Helper()
	sc, err := bql.Parse(stmt)
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := sc.Stmts[0].(*bql.CreateStream)
	if !ok {
		t.Fatalf("reference statement is %T", sc.Stmts[0])
	}
	spec, err := bql.AnalyzeStream(sc.Src, cs, cql.Catalog{"Syn": workload.SynSchema})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(fastCfg(""))
	h, err := eng.Register(spec.Query)
	if err != nil {
		t.Fatal(err)
	}
	em := newEmitter(spec.Emitter, spec.Query.IsAggregation(), h.OutputSchema().TupleSize())
	c := &collector{}
	h.OnResult(func(rows []byte) {
		if out := em.apply(rows); len(out) > 0 {
			c.add(out)
		}
	})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	h.Insert(input)
	eng.Drain()
	eng.Close()
	return c.bytes()
}

const (
	testSeed  = 5
	testCount = 20000
)

var testStreams = map[string]string{
	// a3 is drawn from [0,1024), so the predicate passes ~half the rows —
	// the selection differential compares real bytes, not empty outputs.
	"sel":  "CREATE STREAM sel AS SELECT * FROM Syn [rows 64 slide 32] WHERE a3 < 512",
	"agg":  "CREATE STREAM agg AS SELECT count(*) AS n FROM Syn [rows 200 slide 50]",
	"proj": "CREATE STREAM proj AS SELECT timestamp, a1 FROM Syn [rows 64 slide 64]",
}

func testScript(rate int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE SOURCE Syn TYPE gen WITH (gen='syn', seed=%d, count=%d", testSeed, testCount)
	if rate > 0 {
		fmt.Fprintf(&b, ", rate=%d", rate)
	}
	b.WriteString(");\nCREATE SINK devnull TYPE null;\n")
	for _, name := range []string{"sel", "agg", "proj"} {
		b.WriteString(testStreams[name])
		b.WriteString(";\n")
	}
	return b.String()
}

// TestScriptedLifecycle boots three streams from a script, runs the gen
// source to its count bound and checks every stream's output is
// byte-identical to a statically registered single-query reference.
func TestScriptedLifecycle(t *testing.T) {
	eng := engine.New(fastCfg(""))
	m := New(eng)
	if err := m.ExecScript(testScript(0)); err != nil {
		t.Fatal(err)
	}
	taps := map[string]*collector{}
	for name := range testStreams {
		taps[name] = tapStream(t, m, name)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	m.StartFeeds()
	m.WaitFeeds()
	eng.Drain()
	m.Close()
	eng.Close()

	input := refInput(testSeed, testCount)
	for name, stmt := range testStreams {
		want := refRun(t, stmt+";", input)
		if got := taps[name].bytes(); !bytes.Equal(got, want) {
			t.Errorf("%s: got %d bytes, want %d", name, len(got), len(want))
		}
	}
	l := m.List()
	if len(l.Sources) != 1 || len(l.Sinks) != 1 || len(l.Streams) != 3 {
		t.Errorf("listing: %d sources, %d sinks, %d streams", len(l.Sources), len(l.Sinks), len(l.Streams))
	}
	if len(l.Statements) != 5 {
		t.Errorf("statement log: %v", l.Statements)
	}
}

// TestDynamicDDL exercises the live paths: a stream created mid-run
// still sees the source's full deterministic stream (per-tap feeders), a
// dropped stream quiesces cleanly and unpublishes its statement, pause
// parks the statement log entry until resume, and the siblings keep
// byte-identical output throughout.
func TestDynamicDDL(t *testing.T) {
	eng := engine.New(fastCfg(""))
	m := New(eng)
	// Pace the source so DDL lands genuinely mid-stream.
	if err := m.ExecScript(testScript(400000)); err != nil {
		t.Fatal(err)
	}
	taps := map[string]*collector{}
	for name := range testStreams {
		taps[name] = tapStream(t, m, name)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	m.StartFeeds()

	// Wait until the run is genuinely mid-stream.
	waitBytesIn(t, m, "sel", int64(testCount/4*workload.SynTupleSize))

	// Live CREATE: the new stream's feeder starts its own generator from
	// zero, so it sees the identical full stream.
	// Created paused so the tap attaches before the first result, then
	// released — the pattern an operator uses to plumb a sink first.
	lateStmt := "CREATE STREAM late AS SELECT timestamp, a2 FROM Syn [rows 32 slide 32]"
	if n, err := m.Exec(lateStmt + "; PAUSE STREAM late;"); err != nil || n != 2 {
		t.Fatalf("live CREATE: %d, %v", n, err)
	}
	lateTap := tapStream(t, m, "late")
	if _, err := m.Exec("RESUME STREAM late;"); err != nil {
		t.Fatal(err)
	}

	// Live PAUSE/RESUME on a sibling.
	if _, err := m.Exec("PAUSE STREAM proj;"); err != nil {
		t.Fatal(err)
	}
	if !contains(m.Statements(), "PAUSE STREAM proj") {
		t.Errorf("pause not logged: %v", m.Statements())
	}
	if _, err := m.Exec("RESUME STREAM proj;"); err != nil {
		t.Fatal(err)
	}
	if contains(m.Statements(), "PAUSE STREAM proj") {
		t.Errorf("resume left pause logged: %v", m.Statements())
	}

	// Live DROP of a stream mid-run.
	if _, err := m.Exec("DROP STREAM agg;"); err != nil {
		t.Fatal(err)
	}
	for _, s := range m.Statements() {
		if strings.Contains(s, "CREATE STREAM agg") {
			t.Errorf("dropped stream still logged: %v", m.Statements())
		}
	}
	// Its source dependency is gone too, so dropping the source while
	// other readers remain must still refuse.
	if _, err := m.Exec("DROP SOURCE Syn;"); err == nil {
		t.Fatal("DROP SOURCE with live readers succeeded")
	}

	m.WaitFeeds()
	eng.Drain()
	m.Close()
	eng.Close()

	input := refInput(testSeed, testCount)
	for _, name := range []string{"sel", "proj"} {
		want := refRun(t, testStreams[name]+";", input)
		if got := taps[name].bytes(); !bytes.Equal(got, want) {
			t.Errorf("%s disturbed by sibling DDL: got %d bytes, want %d", name, len(got), len(want))
		}
	}
	if want := refRun(t, lateStmt+";", input); !bytes.Equal(lateTap.bytes(), want) {
		t.Errorf("late stream: got %d bytes, want %d", len(lateTap.bytes()), len(want))
	}
	// The dropped stream's ledger still balances at its drop boundary.
	l := m.List()
	if len(l.Streams) != 3 {
		t.Errorf("final streams: %+v", l.Streams)
	}
}

func waitBytesIn(t *testing.T, m *Manager, stream string, min int64) {
	t.Helper()
	h, err := m.Handle(stream)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for h.Stats().BytesIn < min {
		if time.Now().After(deadline) {
			t.Fatalf("%s: stuck at %d bytes in", stream, h.Stats().BytesIn)
		}
		time.Sleep(time.Millisecond)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// TestCatalogErrors covers the dependency-graph refusals and name rules.
func TestCatalogErrors(t *testing.T) {
	eng := engine.New(fastCfg(""))
	m := New(eng)
	mustExec := func(src string) {
		t.Helper()
		if _, err := m.Exec(src); err != nil {
			t.Fatal(err)
		}
	}
	mustFail := func(src, why string) {
		t.Helper()
		if _, err := m.Exec(src); err == nil {
			t.Errorf("%s: %q succeeded", why, src)
		}
	}
	mustExec("CREATE SOURCE Syn TYPE gen WITH (gen='syn', count=100);")
	mustExec("CREATE SINK out TYPE null;")
	mustExec("CREATE STREAM s AS SELECT * FROM Syn [rows 4] INTO out;")

	mustFail("CREATE SOURCE Syn TYPE gen WITH (gen='syn');", "duplicate source")
	mustFail("CREATE SINK out TYPE null;", "duplicate sink")
	mustFail("CREATE STREAM s AS SELECT * FROM Syn [rows 4];", "duplicate stream")
	mustFail("CREATE STREAM t AS SELECT * FROM Missing [rows 4];", "unknown source")
	mustFail("CREATE STREAM t AS SELECT * FROM Syn [rows 4] INTO missing;", "unknown sink")
	mustFail("DROP SOURCE Syn;", "source with readers")
	mustFail("DROP SINK out;", "sink with writers")
	mustFail("DROP STREAM nope;", "unknown stream")
	mustFail("PAUSE STREAM nope;", "pause unknown")

	mustExec("DROP STREAM s;")
	mustExec("DROP SINK out;")
	mustExec("DROP SOURCE Syn;")
	if got := m.Statements(); len(got) != 0 {
		t.Errorf("log after full teardown: %v", got)
	}
	eng.Close()
}
