package catalog

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"

	"saber/internal/obs"
)

// Routes returns the catalog's admin endpoints, mounted on the engine's
// obs handler mux:
//
//	GET  /catalog      the live catalog: sources, sinks, streams + stats
//	POST /catalog/ddl  execute BQL DDL (raw statement text in the body)
func (m *Manager) Routes() []obs.Route {
	return []obs.Route{
		{Pattern: "/catalog", Handler: http.HandlerFunc(m.handleList)},
		{Pattern: "/catalog/ddl", Handler: http.HandlerFunc(m.handleDDL)},
	}
}

// SourceInfo is one source's row in the GET /catalog listing.
type SourceInfo struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	Schema  string `json:"schema"`
	Addr    string `json:"addr,omitempty"`
	Readers int    `json:"readers"`
}

// SinkInfo is one sink's row in the GET /catalog listing.
type SinkInfo struct {
	Name    string   `json:"name"`
	Type    string   `json:"type"`
	Path    string   `json:"path,omitempty"`
	Writers []string `json:"writers"`
	Bytes   int64    `json:"bytes"`
}

// StreamInfo is one stream's row in the GET /catalog listing.
type StreamInfo struct {
	Name     string   `json:"name"`
	Emitter  string   `json:"emitter"`
	Paused   bool     `json:"paused"`
	From     []string `json:"from"`
	Into     string   `json:"into,omitempty"`
	BytesIn  int64    `json:"bytes_in"`
	BytesOut int64    `json:"bytes_out"`
	Tasks    int64    `json:"tasks"`
}

// Listing is the GET /catalog response body.
type Listing struct {
	Sources []SourceInfo `json:"sources"`
	Sinks   []SinkInfo   `json:"sinks"`
	Streams []StreamInfo `json:"streams"`
	// Statements is the replayable DDL log (what a checkpoint would carry).
	Statements []string `json:"statements"`
}

// List snapshots the catalog (the GET /catalog payload, also used by
// tests and the run harness directly).
func (m *Manager) List() Listing {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := Listing{Statements: m.Statements()}
	for name, s := range m.sources {
		l.Sources = append(l.Sources, SourceInfo{
			Name: name, Type: s.spec.Type, Schema: s.spec.SchemaName,
			Addr: s.addr(), Readers: s.numReaders(),
		})
	}
	for name, sk := range m.sinks {
		writers := make([]string, 0, len(sk.writers))
		for w := range sk.writers {
			writers = append(writers, w)
		}
		sort.Strings(writers)
		l.Sinks = append(l.Sinks, SinkInfo{
			Name: name, Type: sk.spec.Type, Path: sk.spec.Path,
			Writers: writers, Bytes: sk.bytesWritten(),
		})
	}
	for name, str := range m.streams {
		st := str.handle.Stats()
		from := make([]string, len(str.spec.Query.Inputs))
		for i, in := range str.spec.Query.Inputs {
			from[i] = in.Name
		}
		l.Streams = append(l.Streams, StreamInfo{
			Name: name, Emitter: str.spec.Emitter.String(), Paused: str.paused,
			From: from, Into: str.spec.Into,
			BytesIn: st.BytesIn, BytesOut: st.BytesOut, Tasks: st.TasksCreated,
		})
	}
	sort.Slice(l.Sources, func(i, j int) bool { return l.Sources[i].Name < l.Sources[j].Name })
	sort.Slice(l.Sinks, func(i, j int) bool { return l.Sinks[i].Name < l.Sinks[j].Name })
	sort.Slice(l.Streams, func(i, j int) bool { return l.Streams[i].Name < l.Streams[j].Name })
	return l
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m.List())
}

// DDLResult is the POST /catalog/ddl response body.
type DDLResult struct {
	Applied int    `json:"applied"`
	Error   string `json:"error,omitempty"`
}

func (m *Manager) handleDDL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	applied, execErr := m.Exec(string(body))
	res := DDLResult{Applied: applied}
	status := http.StatusOK
	if execErr != nil {
		res.Error = execErr.Error()
		status = http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(res)
}
