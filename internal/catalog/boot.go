package catalog

import (
	"errors"
	"fmt"
	"strings"

	"saber/internal/ckpt"
	"saber/internal/engine"
)

// Boot builds the catalog for eng. When the engine's checkpoint
// directory holds a loadable epoch, the snapshot's statement log is
// replayed through a fresh catalog (re-creating every source, stream and
// sink exactly as registered at the barrier) and the engine restored at
// it; otherwise the given script cold-starts the catalog. Call before
// Engine.Start, then StartFeeds after it — feeders resume at the
// restored input cursors, giving exactly-once output across the restart.
//
// The returned RestoreInfo is nil on a cold start.
func Boot(eng *engine.Engine, script string) (*Manager, *engine.RestoreInfo, error) {
	m := New(eng)
	if dir := eng.Config().CheckpointDir; dir != "" {
		snap, _, err := ckpt.LoadLatest(dir)
		switch {
		case err == nil:
			if err := m.ExecScript(strings.Join(snap.Statements, ";\n")); err != nil {
				return nil, nil, fmt.Errorf("catalog: replaying checkpoint statements: %w", err)
			}
			info, err := eng.Restore(dir)
			if err != nil {
				return nil, nil, err
			}
			return m, info, nil
		case errors.Is(err, ckpt.ErrNoCheckpoint):
			// Cold start below.
		default:
			return nil, nil, err
		}
	}
	if err := m.ExecScript(script); err != nil {
		return nil, nil, err
	}
	return m, nil, nil
}
