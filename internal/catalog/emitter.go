package catalog

import (
	"sync"

	"saber/internal/bql"
)

// emitter applies the stream's relation-to-stream operator (paper §2.4)
// to the engine's ordered result chunks.
//
// For non-aggregation queries the engine already emits with IStream
// semantics (each output tuple appears once, when its window admits it),
// so IStream and RStream are the identity and DStream is empty — a
// selection never deletes a previously emitted tuple.
//
// For aggregation queries the engine emits RStream semantics (one result
// relation per window), so RStream is the identity, and IStream/DStream
// are computed as the multiset difference between consecutive result
// batches: IStream emits rows whose multiplicity grew since the previous
// batch, DStream rows whose multiplicity shrank. The batch granularity
// is the engine's result chunk, which aggregation assembly aligns to
// window results; chunks spanning several windows diff coarser than the
// per-window ideal — a documented approximation (DESIGN.md §14).
type emitter struct {
	kind  bql.Emitter
	isAgg bool
	tsz   int

	mu   sync.Mutex
	prev map[string]int // multiset of the previous batch's rows
	ord  []string       // previous batch's rows in arrival order (DStream)
}

func newEmitter(kind bql.Emitter, isAgg bool, tupleSize int) *emitter {
	return &emitter{kind: kind, isAgg: isAgg, tsz: tupleSize}
}

// apply transforms one ordered result chunk. Runs on the engine's result
// goroutine; returns nil when the operator emits nothing for this chunk.
func (em *emitter) apply(rows []byte) []byte {
	if !em.isAgg {
		if em.kind == bql.EmitDStream {
			return nil
		}
		return rows
	}
	if em.kind == bql.EmitRStream {
		return rows
	}
	em.mu.Lock()
	defer em.mu.Unlock()
	cur := make(map[string]int, len(em.prev))
	ord := make([]string, 0, len(rows)/em.tsz)
	for off := 0; off+em.tsz <= len(rows); off += em.tsz {
		r := string(rows[off : off+em.tsz])
		cur[r]++
		ord = append(ord, r)
	}
	var out []byte
	switch em.kind {
	case bql.EmitIStream:
		// Rows whose multiplicity grew, emitted in current-batch order:
		// the occurrences beyond the previous batch's count.
		seen := make(map[string]int, len(cur))
		for _, r := range ord {
			seen[r]++
			if seen[r] > em.prev[r] {
				out = append(out, r...)
			}
		}
	case bql.EmitDStream:
		// Rows whose multiplicity shrank, in previous-batch order.
		seen := make(map[string]int, len(em.prev))
		for _, r := range em.ord {
			seen[r]++
			if seen[r] > cur[r] {
				out = append(out, r...)
			}
		}
	}
	em.prev, em.ord = cur, ord
	return out
}
