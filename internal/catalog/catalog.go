// Package catalog is SABER's live query catalog: the control plane that
// owns named sources, streams and sinks, translates BQL DDL into engine
// lifecycle actions (Register/Deregister/Pause/Resume), and keeps a
// replayable statement log that rides inside every checkpoint so a
// restarted engine restores its registered statements exactly-once.
//
// Consistency protocol with the checkpoint coordinator (which captures
// the log lock-free, under the engine's registration lock, via
// Engine.SetStatementSource): a CREATE publishes its statement to the
// log BEFORE registering with the engine, and a DROP removes it AFTER
// deregistering. A crash landing in either window therefore yields a
// checkpoint whose statement log is a superset of its query snapshots —
// recovery replays the log, cold-starts the extra stream, and skips the
// unmatched snapshot entry (Restore's catalog mode) — never a refused
// restore.
package catalog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"saber/internal/bql"
	"saber/internal/cql"
	"saber/internal/engine"
)

// Manager is the live catalog over one engine. All DDL goes through
// Exec/ExecScript; mutations are serialised by an internal lock, while
// the statement log is published atomically for the lock-free
// checkpoint capture path.
type Manager struct {
	eng *engine.Engine

	mu      sync.Mutex
	sources map[string]*source
	sinks   map[string]*sink
	streams map[string]*stream
	log     []logEntry
	// running flips when StartFeeds is called (engine started): from then
	// on CREATE starts a stream's feeders immediately; before it, feeders
	// stay parked so Restore can rebase the rings first.
	running bool
	closed  bool

	stmts atomic.Value // []string: the published statement log
}

// logEntry is one replayable statement in the catalog log, keyed so
// DROP/RESUME can remove exactly the entry its CREATE/PAUSE added.
type logEntry struct {
	key  string
	text string
}

// New builds an empty catalog over eng and installs its statement log as
// the engine's checkpoint statement source (which also switches Restore
// into catalog mode).
func New(eng *engine.Engine) *Manager {
	m := &Manager{
		eng:     eng,
		sources: make(map[string]*source),
		sinks:   make(map[string]*sink),
		streams: make(map[string]*stream),
	}
	m.stmts.Store([]string{})
	eng.SetStatementSource(m.Statements)
	return m
}

// Statements returns the published statement log: every statement needed
// to rebuild the current catalog, in dependency order. Lock-free — the
// checkpoint coordinator calls it under the engine's registration lock.
func (m *Manager) Statements() []string {
	return m.stmts.Load().([]string)
}

// publish rebuilds the published log from m.log. Callers hold m.mu.
func (m *Manager) publish() {
	out := make([]string, len(m.log))
	for i, e := range m.log {
		out[i] = e.text
	}
	m.stmts.Store(out)
}

// logAppend adds a keyed statement and publishes. Callers hold m.mu.
func (m *Manager) logAppend(key, text string) {
	m.log = append(m.log, logEntry{key: key, text: text})
	m.publish()
}

// logRemove deletes the entry with the given key (if present) and
// publishes. Callers hold m.mu.
func (m *Manager) logRemove(key string) {
	for i, e := range m.log {
		if e.key == key {
			m.log = append(m.log[:i], m.log[i+1:]...)
			m.publish()
			return
		}
	}
}

// ExecScript parses and executes a whole BQL script, stopping at the
// first failing statement.
func (m *Manager) ExecScript(src string) error {
	sc, err := bql.Parse(src)
	if err != nil {
		return err
	}
	for _, st := range sc.Stmts {
		if err := m.execStatement(sc, st); err != nil {
			return err
		}
	}
	return nil
}

// Exec executes one or more DDL statements and reports how many applied.
func (m *Manager) Exec(src string) (int, error) {
	sc, err := bql.Parse(src)
	if err != nil {
		return 0, err
	}
	for i, st := range sc.Stmts {
		if err := m.execStatement(sc, st); err != nil {
			return i, err
		}
	}
	return len(sc.Stmts), nil
}

func (m *Manager) execStatement(sc *bql.Script, st bql.Statement) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("catalog: closed")
	}
	switch st := st.(type) {
	case *bql.CreateSource:
		return m.createSource(sc, st)
	case *bql.CreateSink:
		return m.createSink(sc, st)
	case *bql.CreateStream:
		return m.createStream(sc, st)
	case *bql.Drop:
		return m.drop(st)
	case *bql.Pause:
		return m.pause(st.Name)
	case *bql.Resume:
		return m.resume(st.Name)
	default:
		return fmt.Errorf("catalog: unsupported statement %T", st)
	}
}

func (m *Manager) createSource(sc *bql.Script, st *bql.CreateSource) error {
	spec, err := bql.AnalyzeSource(sc.Src, st)
	if err != nil {
		return err
	}
	if _, ok := m.sources[st.Name]; ok {
		return fmt.Errorf("catalog: source %q already exists", st.Name)
	}
	src, err := newSource(spec)
	if err != nil {
		return err
	}
	m.sources[st.Name] = src
	m.logAppend("source/"+st.Name, sc.Text(st))
	if m.running {
		src.start()
	}
	return nil
}

func (m *Manager) createSink(sc *bql.Script, st *bql.CreateSink) error {
	spec, err := bql.AnalyzeSink(sc.Src, st)
	if err != nil {
		return err
	}
	if _, ok := m.sinks[st.Name]; ok {
		return fmt.Errorf("catalog: sink %q already exists", st.Name)
	}
	sk, err := newSink(spec)
	if err != nil {
		return err
	}
	m.sinks[st.Name] = sk
	m.logAppend("sink/"+st.Name, sc.Text(st))
	return nil
}

// cqlCatalog derives the schema catalog the SELECT bodies compile
// against: one entry per registered source. Callers hold m.mu.
func (m *Manager) cqlCatalog() cql.Catalog {
	cat := make(cql.Catalog, len(m.sources))
	for name, s := range m.sources {
		cat[name] = s.spec.Schema
	}
	return cat
}

func (m *Manager) createStream(sc *bql.Script, st *bql.CreateStream) error {
	spec, err := bql.AnalyzeStream(sc.Src, st, m.cqlCatalog())
	if err != nil {
		return err
	}
	if _, ok := m.streams[st.Name]; ok {
		return fmt.Errorf("catalog: stream %q already exists", st.Name)
	}
	var out *sink
	if spec.Into != "" {
		var ok bool
		if out, ok = m.sinks[spec.Into]; !ok {
			return fmt.Errorf("catalog: stream %q writes to unknown sink %q", st.Name, spec.Into)
		}
	}
	// Resolve the FROM dependencies before touching the engine.
	srcs := make([]*source, len(spec.Query.Inputs))
	for i, in := range spec.Query.Inputs {
		s, ok := m.sources[in.Name]
		if !ok {
			return fmt.Errorf("catalog: stream %q reads unknown source %q", st.Name, in.Name)
		}
		srcs[i] = s
	}

	// Publish-before-register (see the package comment): a crash between
	// the two can only make recovery cold-start this stream, never refuse.
	key := "stream/" + st.Name
	m.logAppend(key, sc.Text(st))
	h, err := m.eng.RegisterWith(spec.Query, engine.RegisterOptions{Overload: spec.Overload})
	if err != nil {
		m.logRemove(key)
		return fmt.Errorf("catalog: stream %q: %w", st.Name, err)
	}
	str := &stream{
		name:    st.Name,
		handle:  h,
		spec:    spec,
		emit:    newEmitter(spec.Emitter, spec.Query.IsAggregation(), h.OutputSchema().TupleSize()),
		out:     out,
		sources: srcs,
	}
	str.taps.Store([]func([]byte){})
	h.OnResult(str.onResult)
	if out != nil {
		out.writers[st.Name] = true
	}
	for side, s := range srcs {
		s.attach(str, side)
	}
	m.streams[st.Name] = str
	if m.running {
		str.startFeeds()
	}
	return nil
}

func (m *Manager) drop(st *bql.Drop) error {
	switch st.Kind {
	case bql.KindStream:
		str, ok := m.streams[st.Name]
		if !ok {
			return fmt.Errorf("catalog: stream %q does not exist", st.Name)
		}
		// Signal the feeders, run the engine's drain-safe drop protocol
		// (which turns any blocked admission into an accounted abort), then
		// join the feeders, and only then unpublish the statement
		// (drop-after-deregister).
		str.signalFeeds()
		if err := m.eng.Deregister(st.Name); err != nil {
			return err
		}
		str.stopFeeds()
		for side, s := range str.sources {
			s.detach(str, side)
		}
		if str.out != nil {
			delete(str.out.writers, st.Name)
		}
		delete(m.streams, st.Name)
		m.logRemove("pause/" + st.Name)
		m.logRemove("stream/" + st.Name)
		return nil
	case bql.KindSource:
		s, ok := m.sources[st.Name]
		if !ok {
			return fmt.Errorf("catalog: source %q does not exist", st.Name)
		}
		if n := s.numReaders(); n > 0 {
			return fmt.Errorf("catalog: source %q still feeds %d stream(s)", st.Name, n)
		}
		s.close()
		delete(m.sources, st.Name)
		m.logRemove("source/" + st.Name)
		return nil
	case bql.KindSink:
		sk, ok := m.sinks[st.Name]
		if !ok {
			return fmt.Errorf("catalog: sink %q does not exist", st.Name)
		}
		if len(sk.writers) > 0 {
			names := make([]string, 0, len(sk.writers))
			for w := range sk.writers {
				names = append(names, w)
			}
			sort.Strings(names)
			return fmt.Errorf("catalog: sink %q still receives from %v", st.Name, names)
		}
		sk.close()
		delete(m.sinks, st.Name)
		m.logRemove("sink/" + st.Name)
		return nil
	}
	return fmt.Errorf("catalog: unknown object kind %v", st.Kind)
}

func (m *Manager) pause(name string) error {
	str, ok := m.streams[name]
	if !ok {
		return fmt.Errorf("catalog: stream %q does not exist", name)
	}
	if err := m.eng.Pause(name); err != nil {
		return err
	}
	if !str.paused {
		str.paused = true
		m.logAppend("pause/"+name, "PAUSE STREAM "+name)
	}
	return nil
}

func (m *Manager) resume(name string) error {
	str, ok := m.streams[name]
	if !ok {
		return fmt.Errorf("catalog: stream %q does not exist", name)
	}
	if err := m.eng.Resume(name); err != nil {
		return err
	}
	if str.paused {
		str.paused = false
		m.logRemove("pause/" + name)
	}
	return nil
}

// StartFeeds starts every source feeder, resuming each stream input at
// its handle's input cursor (0 on a cold start; the checkpoint barrier
// after a Restore). Call once, after Engine.Start.
func (m *Manager) StartFeeds() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running || m.closed {
		return
	}
	m.running = true
	for _, s := range m.sources {
		s.start()
	}
	for _, str := range m.streams {
		str.startFeeds()
	}
}

// WaitFeeds blocks until every feeder running at the time of the call
// has finished — the natural quiesce point for scripts whose gen sources
// are count-bounded (after it, Engine.Drain settles the pipeline).
func (m *Manager) WaitFeeds() {
	m.mu.Lock()
	var fs []*feeder
	for _, str := range m.streams {
		fs = append(fs, str.feeders...)
	}
	m.mu.Unlock()
	for _, f := range fs {
		f.wait()
	}
}

// Tap attaches fn to a stream's post-emitter output — the catalog-level
// observer used by tests and differential harnesses. fn runs on the
// engine's result path and must not block.
func (m *Manager) Tap(stream string, fn func(rows []byte)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	str, ok := m.streams[stream]
	if !ok {
		return fmt.Errorf("catalog: stream %q does not exist", stream)
	}
	taps := str.taps.Load().([]func([]byte))
	next := make([]func([]byte), len(taps)+1)
	copy(next, taps)
	next[len(taps)] = fn
	str.taps.Store(next)
	return nil
}

// Handle exposes a stream's engine handle (tests and the run harness).
func (m *Manager) Handle(stream string) (*engine.Handle, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	str, ok := m.streams[stream]
	if !ok {
		return nil, fmt.Errorf("catalog: stream %q does not exist", stream)
	}
	return str.handle, nil
}

// Close signals every feeder, stops the tcp servers and closes the
// sinks. Feeders are signalled but not joined: one blocked in admission
// only returns once the engine quiesces, so the owner's Drain/Close
// right after this unblocks it. The engine itself is left to its owner.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	for _, str := range m.streams {
		str.signalFeeds()
	}
	for _, s := range m.sources {
		s.close()
	}
	for _, sk := range m.sinks {
		sk.close()
	}
}
