package catalog

import (
	"sync/atomic"

	"saber/internal/bql"
	"saber/internal/engine"
)

// stream is one live CREATE STREAM: an engine query plus its catalog
// wiring — the emitter stage on the result path, the sink it routes to,
// and the feeders pumping its gen inputs. All fields except taps are
// guarded by Manager.mu; taps is atomic because onResult runs on the
// engine's result goroutine.
type stream struct {
	name    string
	handle  *engine.Handle
	spec    *bql.StreamSpec
	emit    *emitter
	out     *sink
	sources []*source
	taps    atomic.Value // []func([]byte)

	paused  bool
	started bool
	feeders []*feeder
}

// onResult is the stream's engine result sink: emitter first, then the
// named sink and any attached taps, all on the ordered result path.
func (s *stream) onResult(rows []byte) {
	rows = s.emit.apply(rows)
	if len(rows) == 0 {
		return
	}
	if s.out != nil {
		s.out.write(rows)
	}
	for _, fn := range s.taps.Load().([]func([]byte)) {
		fn(rows)
	}
}

// startFeeds launches one feeder per gen input, resuming at the input
// cursor (0 cold, the checkpoint barrier after Restore). Manager.mu held.
func (s *stream) startFeeds() {
	if s.started {
		return
	}
	s.started = true
	for side, src := range s.sources {
		if src.spec.Type != "gen" {
			continue
		}
		cursor := s.handle.InputCursor(side)
		s.feeders = append(s.feeders, newFeeder(s.handle, side, src.spec, cursor))
	}
}

// signalFeeds asks the feeders to stop without waiting (they may be
// blocked in admission until the query drops or quiesces). Manager.mu held.
func (s *stream) signalFeeds() {
	for _, f := range s.feeders {
		f.signal()
	}
}

// stopFeeds signals and joins the feeders. Manager.mu held.
func (s *stream) stopFeeds() {
	for _, f := range s.feeders {
		f.signal()
	}
	for _, f := range s.feeders {
		f.wait()
	}
	s.feeders = nil
	s.started = false
}
