package catalog

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"saber/internal/engine"
	"saber/internal/obs"
)

// TestAdminAPI drives the catalog's DDL endpoint end to end on a live
// engine: create objects over HTTP, list them, drop one, and check the
// JSON error contract for malformed DDL.
func TestAdminAPI(t *testing.T) {
	eng := engine.New(fastCfg(""))
	m := New(eng)
	srv := httptest.NewServer(obs.Handler(eng.Metrics(), eng.Tracer(), m.Routes()...))
	defer srv.Close()

	post := func(ddl string) (*http.Response, DDLResult) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/catalog/ddl", "text/plain", strings.NewReader(ddl))
		if err != nil {
			t.Fatal(err)
		}
		var res DDLResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
		resp.Body.Close()
		return resp, res
	}

	resp, res := post(`
		CREATE SOURCE Syn TYPE gen WITH (gen='syn', seed=1, count=50000, rate=200000);
		CREATE STREAM one AS SELECT * FROM Syn [rows 64 slide 32] WHERE a2 < 0;
		CREATE STREAM two AS SELECT count(*) AS n FROM Syn [rows 200 slide 50];
	`)
	if resp.StatusCode != http.StatusOK || res.Applied != 3 || res.Error != "" {
		t.Fatalf("create: status %d, %+v", resp.StatusCode, res)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	m.StartFeeds()

	// Malformed DDL: 400 with a positioned error, nothing applied.
	resp, res = post("CREATE STREAM bad AS SELECT * FROM Nope [rows 4];")
	if resp.StatusCode != http.StatusBadRequest || res.Error == "" {
		t.Fatalf("bad ddl: status %d, %+v", resp.StatusCode, res)
	}
	if !strings.Contains(res.Error, "line 1") {
		t.Errorf("error lacks position: %q", res.Error)
	}

	// Mid-script failure reports how many statements applied first.
	resp, res = post("PAUSE STREAM one; PAUSE STREAM nope;")
	if resp.StatusCode != http.StatusBadRequest || res.Applied != 1 {
		t.Fatalf("partial script: status %d, %+v", resp.StatusCode, res)
	}
	if _, res = post("RESUME STREAM one;"); res.Error != "" {
		t.Fatalf("resume: %+v", res)
	}

	if _, res = post("DROP STREAM two;"); res.Error != "" || res.Applied != 1 {
		t.Fatalf("drop: %+v", res)
	}

	// GET /catalog reflects the surviving objects.
	listResp, err := http.Get(srv.URL + "/catalog")
	if err != nil {
		t.Fatal(err)
	}
	var l Listing
	if err := json.NewDecoder(listResp.Body).Decode(&l); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	if len(l.Streams) != 1 || l.Streams[0].Name != "one" {
		t.Fatalf("listing streams: %+v", l.Streams)
	}
	if len(l.Sources) != 1 || l.Sources[0].Readers != 1 {
		t.Fatalf("listing sources: %+v", l.Sources)
	}
	if len(l.Statements) != 2 {
		t.Fatalf("listing statements: %v", l.Statements)
	}

	// Method checks.
	if resp, _ := http.Get(srv.URL + "/catalog/ddl"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET ddl: %d", resp.StatusCode)
	}
	if resp, _ := http.Post(srv.URL+"/catalog", "text/plain", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST catalog: %d", resp.StatusCode)
	}

	m.Close()
	eng.Drain()
	eng.Close()
}
