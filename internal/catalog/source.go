package catalog

import (
	"sync"
	"sync/atomic"
	"time"

	"saber/internal/bql"
	"saber/internal/engine"
	"saber/internal/ingest"
)

// source is one live CREATE SOURCE. Gen sources carry no goroutine of
// their own — every attached stream input gets its own identically
// seeded feeder, so each stream sees the same deterministic byte stream
// no matter when it attached (the property the differential tests rest
// on). Tcp sources run one ingest server fanning arriving frames out to
// every attached input.
type source struct {
	spec *bql.SourceSpec
	srv  *ingest.Server // tcp only

	// readers maps attached streams to their input sides; guarded by
	// Manager.mu. fan is the tcp fan-out list, atomic because the ingest
	// connection goroutines read it per frame.
	readers map[*stream][]int
	fan     atomic.Value // []fanTap
	serving bool
}

type fanTap struct {
	h    *engine.Handle
	side int
}

func newSource(spec *bql.SourceSpec) (*source, error) {
	s := &source{spec: spec, readers: make(map[*stream][]int)}
	s.fan.Store([]fanTap{})
	if spec.Type == "tcp" {
		srv, err := ingest.Listen(spec.Addr, ingest.SinkFunc(s.fanout), spec.Schema.TupleSize())
		if err != nil {
			return nil, err
		}
		s.srv = srv
	}
	return s, nil
}

// fanout delivers one arriving tcp frame to every attached stream input.
// Runs on an ingest connection goroutine.
func (s *source) fanout(data []byte) {
	for _, t := range s.fan.Load().([]fanTap) {
		t.h.InsertInto(t.side, data)
	}
}

// attach registers a stream input as a reader. Manager.mu held.
func (s *source) attach(str *stream, side int) {
	s.readers[str] = append(s.readers[str], side)
	if s.srv != nil {
		s.refan()
	}
}

// detach removes one stream input. Manager.mu held.
func (s *source) detach(str *stream, side int) {
	sides := s.readers[str]
	for i, sd := range sides {
		if sd == side {
			sides = append(sides[:i], sides[i+1:]...)
			break
		}
	}
	if len(sides) == 0 {
		delete(s.readers, str)
	} else {
		s.readers[str] = sides
	}
	if s.srv != nil {
		s.refan()
	}
}

// refan republishes the tcp fan-out list from readers. Manager.mu held.
func (s *source) refan() {
	var taps []fanTap
	for str, sides := range s.readers {
		for _, side := range sides {
			taps = append(taps, fanTap{h: str.handle, side: side})
		}
	}
	if taps == nil {
		taps = []fanTap{}
	}
	s.fan.Store(taps)
}

func (s *source) numReaders() int { return len(s.readers) }

// start begins serving (tcp only; gen feeders belong to the streams).
// Manager.mu held.
func (s *source) start() {
	if s.srv != nil && !s.serving {
		s.serving = true
		go s.srv.Serve()
	}
}

// Addr returns the tcp listen address ("" for gen sources) — the
// ephemeral-port resolution tests and tools need.
func (s *source) addr() string {
	if s.srv == nil {
		return ""
	}
	return s.srv.Addr().String()
}

func (s *source) close() {
	if s.srv != nil {
		s.srv.Close()
	}
}

// feeder is one gen-source pump: a goroutine generating the source's
// deterministic tuple stream into one stream input, paced to the
// source's rate and bounded by its count.
type feeder struct {
	stopc chan struct{}
	done  chan struct{}
	once  sync.Once
}

func newFeeder(h *engine.Handle, side int, spec *bql.SourceSpec, cursor int64) *feeder {
	f := &feeder{stopc: make(chan struct{}), done: make(chan struct{})}
	go f.run(h, side, spec, cursor)
	return f
}

// signal asks the feeder to stop without waiting for it.
func (f *feeder) signal() { f.once.Do(func() { close(f.stopc) }) }

// wait blocks until the feeder goroutine exits. The caller must have
// arranged for any blocked admission to return first (dropped query,
// engine quiesce, or simply a live consumer).
func (f *feeder) wait() { <-f.done }

func (f *feeder) run(h *engine.Handle, side int, spec *bql.SourceSpec, cursor int64) {
	defer close(f.done)
	g := spec.NewGen()
	tsz := spec.Schema.TupleSize()
	const chunk = 512
	buf := make([]byte, 0, chunk*tsz)
	// Deterministic fast-forward: regenerate and discard the tuples below
	// the resume cursor so replay continues the exact pre-crash stream.
	for skip := cursor; skip > 0; {
		n := int64(chunk)
		if skip < n {
			n = skip
		}
		g.Next(buf[:0], int(n))
		skip -= n
	}
	fed := cursor
	for {
		select {
		case <-f.stopc:
			return
		default:
		}
		n := int64(chunk)
		if spec.Count > 0 {
			rem := spec.Count - fed
			if rem <= 0 {
				return
			}
			if rem < n {
				n = rem
			}
		}
		data := g.Next(buf[:0], int(n))
		h.InsertInto(side, data)
		fed += n
		if spec.Rate > 0 {
			d := time.Duration(float64(n) / spec.Rate * float64(time.Second))
			select {
			case <-f.stopc:
				return
			case <-time.After(d):
			}
		}
	}
}
