package catalog

import (
	"bytes"
	"testing"
	"time"

	"saber/internal/bql"
	"saber/internal/cql"
	"saber/internal/engine"
	"saber/internal/workload"
)

// waitOut polls until the stream has drained output (so a checkpoint
// cut now lands mid-stream, with real state on both sides of the
// barrier). Committed() itself only advances when an epoch is cut.
func waitOut(t *testing.T, h *engine.Handle, min int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for h.Stats().BytesOut < min {
		if time.Now().After(deadline) {
			t.Fatalf("output stuck at %d bytes", h.Stats().BytesOut)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCrashRestartDifferential is the catalog's exactly-once contract:
// run a scripted engine with live DDL (a stream created mid-run, another
// dropped mid-run), crash it without drain after a checkpoint, Boot a
// fresh engine from the same directory, and check that for every stream
// in the restored catalog, committed-prefix + post-recovery output is
// byte-identical to an uninterrupted statically registered reference.
// A query registered behind the catalog's back (a statement-log/snapshot
// mismatch, the crash-window shape) restores as a skipped unmatched
// entry, not a refused recovery.
func TestCrashRestartDifferential(t *testing.T) {
	dir := t.TempDir()

	// --- Phase A: scripted boot, live DDL, crash. ---
	engA := engine.New(fastCfg(dir))
	mA, info, err := Boot(engA, testScript(400000))
	if err != nil {
		t.Fatal(err)
	}
	if info != nil {
		t.Fatalf("cold boot returned restore info %+v", info)
	}
	preTaps := map[string]*collector{}
	for name := range testStreams {
		preTaps[name] = tapStream(t, mA, name)
	}

	// A query the catalog does not know about: its snapshot entry will
	// have no replayed statement and must be skipped on restore.
	ghostSc, _ := bql.Parse("CREATE STREAM ghost AS SELECT * FROM Syn [rows 32] WHERE a3 < 0;")
	ghostSpec, err := bql.AnalyzeStream(ghostSc.Src, ghostSc.Stmts[0].(*bql.CreateStream), cql.Catalog{"Syn": workload.SynSchema})
	if err != nil {
		t.Fatal(err)
	}
	hGhost, err := engA.Register(ghostSpec.Query)
	if err != nil {
		t.Fatal(err)
	}

	if err := engA.Start(); err != nil {
		t.Fatal(err)
	}
	mA.StartFeeds()
	hGhost.Insert(refInput(testSeed, 2000))

	hSel, _ := mA.Handle("sel")
	waitOut(t, hSel, 1)
	if _, err := engA.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Live DDL after the first epoch: CREATE one stream, DROP another.
	lateStmt := "CREATE STREAM late AS SELECT timestamp, a2 FROM Syn [rows 32 slide 32]"
	if _, err := mA.Exec(lateStmt + "; PAUSE STREAM late;"); err != nil {
		t.Fatal(err)
	}
	preLate := tapStream(t, mA, "late")
	if _, err := mA.Exec("RESUME STREAM late;"); err != nil {
		t.Fatal(err)
	}
	if _, err := mA.Exec("DROP STREAM proj;"); err != nil {
		t.Fatal(err)
	}

	hLate, _ := mA.Handle("late")
	waitOut(t, hLate, 1)
	hAgg, _ := mA.Handle("agg")
	waitOut(t, hAgg, 1)
	if _, err := engA.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Crash: signal feeders, no drain. Buffered input and queued tasks
	// are abandoned.
	mA.Close()
	engA.Close()

	// --- Phase B: boot from the crash directory. ---
	engB := engine.New(fastCfg(dir))
	mB, info, err := Boot(engB, "IGNORED — restore path must not parse this")
	if err != nil {
		t.Fatal(err)
	}
	if info == nil {
		t.Fatal("restore boot returned no info")
	}
	if info.Unmatched != 1 {
		t.Errorf("unmatched snapshot queries: %d, want 1 (ghost)", info.Unmatched)
	}
	l := mB.List()
	names := map[string]bool{}
	for _, s := range l.Streams {
		names[s.Name] = true
	}
	if !names["sel"] || !names["agg"] || !names["late"] || names["proj"] || names["ghost"] {
		t.Fatalf("restored stream set: %v", names)
	}

	postTaps := map[string]*collector{}
	committed := map[string]int64{}
	for _, name := range []string{"sel", "agg", "late"} {
		postTaps[name] = tapStream(t, mB, name)
		h, err := mB.Handle(name)
		if err != nil {
			t.Fatal(err)
		}
		committed[name] = h.Committed()
	}
	if err := engB.Start(); err != nil {
		t.Fatal(err)
	}
	mB.StartFeeds()
	mB.WaitFeeds()
	engB.Drain()
	mB.Close()
	engB.Close()

	// --- Differential: every restored stream is byte-identical to an
	// uninterrupted run. ---
	input := refInput(testSeed, testCount)
	refs := map[string]string{
		"sel":  testStreams["sel"],
		"agg":  testStreams["agg"],
		"late": lateStmt,
	}
	pres := map[string]*collector{"sel": preTaps["sel"], "agg": preTaps["agg"], "late": preLate}
	for name, stmt := range refs {
		want := refRun(t, stmt+";", input)
		pre := pres[name].bytes()
		c := committed[name]
		if int64(len(pre)) < c {
			t.Fatalf("%s: pre-crash tap saw %d bytes, barrier committed %d", name, len(pre), c)
		}
		got := append(pre[:c:c], postTaps[name].bytes()...)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: committed-prefix+recovery = %d bytes, uninterrupted reference = %d",
				name, len(got), len(want))
		}
	}
}
