package catalog

import (
	"os"
	"sync"

	"saber/internal/bql"
)

// sink is one live CREATE SINK: a byte-stream destination shared by the
// streams that INTO it. writers is guarded by Manager.mu; write runs on
// engine result goroutines and serialises through its own lock.
type sink struct {
	spec    *bql.SinkSpec
	writers map[string]bool

	mu    sync.Mutex
	f     *os.File
	bytes int64
}

func newSink(spec *bql.SinkSpec) (*sink, error) {
	s := &sink{spec: spec, writers: make(map[string]bool)}
	if spec.Type == "file" {
		f, err := os.Create(spec.Path)
		if err != nil {
			return nil, err
		}
		s.f = f
	}
	return s, nil
}

func (s *sink) write(rows []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytes += int64(len(rows))
	if s.f != nil {
		s.f.Write(rows)
	}
}

func (s *sink) bytesWritten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

func (s *sink) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}
