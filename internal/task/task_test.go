package task

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestQueueFIFOUnderConcurrency(t *testing.T) {
	q := NewQueue()
	const producers = 4
	const perProducer = 500

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(&Task{Query: p, ID: int64(i)})
			}
		}(p)
	}

	var consumed atomic.Int64
	lastPerQuery := make([]atomic.Int64, producers)
	for i := range lastPerQuery {
		lastPerQuery[i].Store(-1)
	}
	var cwg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for consumed.Load() < producers*perProducer {
				tk := q.PopHead()
				if tk == nil {
					continue
				}
				// Per-producer order must be preserved by the FIFO pop.
				prev := lastPerQuery[tk.Query].Load()
				if tk.ID <= prev {
					// A later consumer may observe a smaller ID only if a
					// different goroutine already advanced it; the swap
					// below tolerates benign interleavings while still
					// catching gross reordering.
					if prev-tk.ID > int64(producers) {
						t.Errorf("query %d: ID %d long after %d", tk.Query, tk.ID, prev)
					}
				} else {
					lastPerQuery[tk.Query].Store(tk.ID)
				}
				consumed.Add(1)
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	if consumed.Load() != producers*perProducer {
		t.Fatalf("consumed %d", consumed.Load())
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty: %d", q.Len())
	}
}

func TestSelectRemovesChosen(t *testing.T) {
	q := NewQueue()
	for i := int64(0); i < 5; i++ {
		q.Push(&Task{ID: i})
	}
	got := q.Select(func(items []*Task) int {
		for i, t := range items {
			if t.ID == 3 {
				return i
			}
		}
		return -1
	})
	if got == nil || got.ID != 3 {
		t.Fatalf("Select = %+v", got)
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d", q.Len())
	}
	// Remaining order intact.
	want := []int64{0, 1, 2, 4}
	for _, w := range want {
		if got := q.PopHead(); got.ID != w {
			t.Fatalf("PopHead = %d, want %d", got.ID, w)
		}
	}
}

func TestSelectNegativeKeepsQueue(t *testing.T) {
	q := NewQueue()
	q.Push(&Task{ID: 1})
	if got := q.Select(func([]*Task) int { return -1 }); got != nil {
		t.Fatal("Select(-1) returned a task")
	}
	if q.Len() != 1 {
		t.Fatal("task lost")
	}
}
