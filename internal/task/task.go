// Package task defines SABER's query tasks and the single, system-wide
// task queue the scheduling stage operates on (paper §3, §4.1).
package task

import (
	"sync"

	"saber/internal/exec"
	"saber/internal/obs"
)

// Task is one schedulable unit: a query's compiled operator function
// bundled with one stream batch per input. Tasks of a query are totally
// ordered by ID; the result stage uses the order to reorder out-of-order
// completions.
type Task struct {
	// Query is the engine-assigned dense query index.
	Query int
	// ID is the per-query task sequence number, from 0.
	ID int64
	// In holds one batch per input stream.
	In [2]exec.Batch
	// FreeTo, per input, is the ring-buffer offset that can be released
	// once this task's results have been consumed (paper §4.1's free
	// pointer).
	FreeTo [2]int64
	// EndPrevTS, per input, is the timestamp of this task's last tuple —
	// the PrevTimestamp the *next* task's window.Context carries. The
	// result stage records it at the drain frontier so a checkpoint can
	// restore timestamp continuity for the first batch cut after recovery.
	EndPrevTS [2]int64
	// Created is a logical enqueue stamp used for latency accounting
	// (nanoseconds).
	Created int64
	// Attempts counts failed executions of this task. A task is owned by
	// exactly one worker at a time and hand-offs go through the queue
	// mutex, so plain fields suffice.
	Attempts int32
	// CPUOnly pins the task to the CPU class after a GPGPU-side failure,
	// so a retry cannot bounce back to the device that just failed it.
	CPUOnly bool
	// Trace accumulates the task's lifecycle stamps (nil when tracing is
	// off; every stamp method is nil-safe).
	Trace *obs.TaskTrace
}

// Queue is the system-wide query task queue. Workers remove tasks through
// a scheduling policy that may inspect (look ahead into) the queue, so the
// queue exposes an indexed snapshot under its lock rather than just
// pop-head.
type Queue struct {
	mu     sync.Mutex
	items  []*Task
	closed bool
}

// NewQueue creates an empty queue.
func NewQueue() *Queue { return &Queue{} }

// Push appends a task. Pushing to a closed queue panics (engine bug).
func (q *Queue) Push(t *Task) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		panic("task: Push on closed queue")
	}
	q.items = append(q.items, t)
}

// PushOpen appends a task unless the queue has closed, reporting whether
// the task was accepted. The dispatcher uses it where an Insert can race
// Close (which closes the queue without the dispatch lock): the check and
// the append are atomic under the queue mutex, so a false return means
// the task will never be scheduled and the caller must account for it
// (shed gap) instead of abandoning it.
func (q *Queue) PushOpen(t *Task) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, t)
	return true
}

// Requeue re-inserts a previously dispatched task at the head of the
// queue after a failed execution attempt. Unlike Push it is permitted on
// a closed (draining) queue: the task was already accounted for by the
// dispatcher, and the drain barrier waits on its result, so it must
// remain schedulable. Head insertion keeps a retried task inside the
// scheduler's bounded lookahead (and thus the result stage's reordering
// window).
func (q *Queue) Requeue(t *Task) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, nil)
	copy(q.items[1:], q.items)
	q.items[0] = t
}

// Close marks the queue as draining: no more pushes will happen.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
}

// Closed reports whether the queue is draining.
func (q *Queue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Len returns the number of queued tasks.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Select runs fn over the queued tasks under the queue lock. fn returns
// the index of the task to remove, or -1 to leave the queue unchanged.
// Select returns the removed task, or nil.
func (q *Queue) Select(fn func(items []*Task) int) *Task {
	q.mu.Lock()
	defer q.mu.Unlock()
	i := fn(q.items)
	if i < 0 || i >= len(q.items) {
		return nil
	}
	t := q.items[i]
	q.items = append(q.items[:i], q.items[i+1:]...)
	return t
}

// PopHead removes and returns the first task, or nil when empty.
func (q *Queue) PopHead() *Task {
	return q.Select(func(items []*Task) int {
		if len(items) == 0 {
			return -1
		}
		return 0
	})
}
