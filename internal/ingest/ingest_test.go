package ingest

import (
	"bytes"
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T, sink Sink, tupleSize int) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", sink, tupleSize)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve() }()
	t.Cleanup(func() { s.Close() })
	return s
}

type collectSink struct {
	mu  sync.Mutex
	buf []byte
}

func (c *collectSink) Insert(data []byte) {
	c.mu.Lock()
	c.buf = append(c.buf, data...)
	c.mu.Unlock()
}

func (c *collectSink) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]byte, len(c.buf))
	copy(out, c.buf)
	return out
}

func TestRoundTrip(t *testing.T) {
	sink := &collectSink{}
	srv := startServer(t, sink, 8)

	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 100; i++ {
		frame := make([]byte, 8*(1+i%5))
		for j := range frame {
			frame[j] = byte(i + j)
		}
		if err := c.Send(frame); err != nil {
			t.Fatal(err)
		}
		want = append(want, frame...)
	}
	if err := c.Send(nil); err != nil { // empty frame: no-op
		t.Fatal(err)
	}
	c.Close()
	srv.Close()

	if !bytes.Equal(sink.bytes(), want) {
		t.Fatalf("received %d bytes, want %d", len(sink.bytes()), len(want))
	}
	if srv.BytesIn() != int64(len(want)) || srv.Frames() != 100 {
		t.Fatalf("telemetry: bytes=%d frames=%d", srv.BytesIn(), srv.Frames())
	}
}

func TestRejectsPartialTuples(t *testing.T) {
	sink := &collectSink{}
	srv := startServer(t, sink, 8)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A 5-byte frame is not whole 8-byte tuples: the server must drop the
	// connection without sinking anything.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 5)
	conn.Write(hdr[:])
	conn.Write([]byte{1, 2, 3, 4, 5})
	// The server closes; a subsequent read observes EOF.
	buf := make([]byte, 1)
	conn.Read(buf)
	if len(sink.bytes()) != 0 {
		t.Fatal("partial tuple reached the sink")
	}
}

func TestRejectsOversizedFrame(t *testing.T) {
	c := &Client{}
	if err := c.Send(make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized frame accepted by client")
	}
	sink := &collectSink{}
	srv := startServer(t, sink, 8)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrame+8)
	conn.Write(hdr[:])
	buf := make([]byte, 1)
	conn.Read(buf) // server hangs up
	if len(sink.bytes()) != 0 {
		t.Fatal("oversized frame reached the sink")
	}
}

func TestConcurrentSenders(t *testing.T) {
	var total int
	var mu sync.Mutex
	srv := startServer(t, SinkFunc(func(data []byte) {
		mu.Lock()
		total += len(data)
		mu.Unlock()
	}), 8)

	var wg sync.WaitGroup
	const senders, frames = 4, 50
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			frame := make([]byte, 64)
			for i := 0; i < frames; i++ {
				if err := c.Send(frame); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Closing the listener drops connections that were not yet accepted,
	// so wait for the payload to arrive before shutting down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		got := total
		mu.Unlock()
		if got == senders*frames*64 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("total = %d", got)
		}
		time.Sleep(time.Millisecond)
	}
	srv.Close()
}

// TestDefaultReadTimeoutArmed: a fresh server must have a non-zero read
// deadline — with strictly serial connection handling, a deadline-less
// idle connection would starve every later sender and block Close.
func TestDefaultReadTimeoutArmed(t *testing.T) {
	srv := startServer(t, &collectSink{}, 8)
	if d := time.Duration(srv.readTimeout.Load()); d != DefaultReadTimeout || d <= 0 {
		t.Fatalf("default read timeout = %v, want %v", d, DefaultReadTimeout)
	}
}

// TestIdleConnectionDoesNotStarveNextSender: an idle-but-live connection
// holds the single serving slot only until its read deadline fires; the
// next sender's frames must then drain instead of queueing forever.
func TestIdleConnectionDoesNotStarveNextSender(t *testing.T) {
	sink := &collectSink{}
	srv := startServer(t, sink, 8)
	srv.SetReadTimeout(50 * time.Millisecond)

	idle, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 16)
	if err := c.Send(frame); err != nil {
		t.Fatal(err)
	}
	c.Close()

	deadline := time.Now().Add(10 * time.Second)
	for len(sink.bytes()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second sender starved behind an idle connection")
		}
		time.Sleep(time.Millisecond)
	}
	if !bytes.Equal(sink.bytes(), frame) {
		t.Fatalf("received %d bytes, want %d", len(sink.bytes()), len(frame))
	}
	if srv.Stats().DeadlineDrops == 0 {
		t.Error("idle connection was not counted as a deadline drop")
	}
}

// TestCloseBoundedByIdleConnection: Close must not wait out a live idle
// sender's full read timeout (30s by default) — the close grace bounds
// the drain of the in-flight connection.
func TestCloseBoundedByIdleConnection(t *testing.T) {
	srv := startServer(t, &collectSink{}, 8)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Let the server accept and block reading the idle connection.
	time.Sleep(20 * time.Millisecond)

	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close blocked on a live idle connection")
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewServer(nil, nil, 8); err == nil {
		t.Error("nil sink accepted")
	}
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	defer l.Close()
	if _, err := NewServer(l, &collectSink{}, 0); err == nil {
		t.Error("zero tuple size accepted")
	}
	srv, err := NewServer(l, &collectSink{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
}
