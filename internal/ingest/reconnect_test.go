package ingest

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"net"
	"testing"
	"time"

	"saber/internal/fault"
)

func TestReadDeadlineDropsStalledConnection(t *testing.T) {
	sink := &collectSink{}
	srv := startServer(t, sink, 8)
	srv.SetReadTimeout(20 * time.Millisecond)

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a header and then stall mid-payload: the read deadline must
	// fire and the server must drop the connection, not pin a goroutine.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 16)
	conn.Write(hdr[:])
	conn.Write(make([]byte, 8))

	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().DeadlineDrops == 0 {
		if time.Now().After(deadline) {
			t.Fatal("read deadline never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if got := sink.bytes(); len(got) != 0 {
		t.Fatalf("partial frame reached the sink (%d bytes)", len(got))
	}
}

func TestFrameErrorCounters(t *testing.T) {
	sink := &collectSink{}
	srv := startServer(t, sink, 8)

	send := func(f func(net.Conn)) {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		f(conn)
		buf := make([]byte, 1)
		conn.Read(buf) // wait for server close / keepalive ack window
	}

	var hdr [4]byte
	// Empty frame: tolerated, connection stays up.
	send(func(c net.Conn) {
		binary.LittleEndian.PutUint32(hdr[:], 0)
		c.Write(hdr[:])
		binary.LittleEndian.PutUint32(hdr[:], 8)
		c.Write(hdr[:])
		c.Write(make([]byte, 8))
		c.(*net.TCPConn).CloseWrite()
	})
	// Oversized frame: rejected.
	send(func(c net.Conn) {
		binary.LittleEndian.PutUint32(hdr[:], MaxFrame+8)
		c.Write(hdr[:])
	})
	// Ragged frame: rejected.
	send(func(c net.Conn) {
		binary.LittleEndian.PutUint32(hdr[:], 5)
		c.Write(hdr[:])
		c.Write([]byte{1, 2, 3, 4, 5})
	})

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stats()
		if st.EmptyFrames == 1 && st.OversizeFrames == 1 && st.RaggedFrames == 1 && st.Frames == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("counters: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if got := sink.bytes(); len(got) != 8 {
		t.Fatalf("sink received %d bytes, want 8", len(got))
	}
}

func TestReconnectResendsWholeFramesExactlyOnce(t *testing.T) {
	sink := &collectSink{}
	srv := startServer(t, sink, 8)

	inj := fault.New(42)
	inj.Arm(fault.IngestDrop, fault.Spec{Rate: 0.3})
	rc, err := DialReconnect(srv.Addr().String(), ReconnectConfig{
		Seed:      42,
		BaseDelay: 100 * time.Microsecond,
		MaxDelay:  2 * time.Millisecond,
		Fault:     inj,
	})
	if err != nil {
		t.Fatal(err)
	}

	var want []byte
	for i := 0; i < 200; i++ {
		frame := make([]byte, 8*(1+i%4))
		for j := range frame {
			frame[j] = byte(i*7 + j)
		}
		if err := rc.Send(frame); err != nil {
			t.Fatal(err)
		}
		want = append(want, frame...)
	}
	rc.Close()
	if rc.Reconnects() == 0 || inj.TotalInjections() == 0 {
		t.Fatalf("no faults exercised: reconnects=%d injections=%d", rc.Reconnects(), inj.TotalInjections())
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.BytesIn() < int64(len(want)) {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	srv.Close()
	// Exactly-once at frame granularity: despite mid-frame disconnects and
	// resends, the sink holds each frame exactly once, in order.
	if !bytes.Equal(sink.bytes(), want) {
		t.Fatalf("sink has %d bytes, want %d (duplicate or lost frames)", len(sink.bytes()), len(want))
	}
}

func TestReconnectGivesUpAfterMaxAttempts(t *testing.T) {
	sink := &collectSink{}
	srv := startServer(t, sink, 8)
	addr := srv.Addr().String()

	inj := fault.New(7)
	inj.Arm(fault.IngestDrop, fault.Spec{Rate: 1})
	rc, err := DialReconnect(addr, ReconnectConfig{
		MaxAttempts: 3,
		BaseDelay:   50 * time.Microsecond,
		Fault:       inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	sendErr := rc.Send(make([]byte, 8))
	if sendErr == nil {
		t.Fatal("Send succeeded with a 100% drop rate")
	}
	if !fault.Injected(sendErr) {
		t.Fatalf("error does not wrap the injected fault: %v", sendErr)
	}
}

func TestBackoffBounds(t *testing.T) {
	rc := &ReconnectClient{cfg: ReconnectConfig{
		BaseDelay: time.Millisecond,
		MaxDelay:  8 * time.Millisecond,
	}.withDefaults()}
	rc.rnd = rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		d := rc.backoff(i)
		want := rc.cfg.BaseDelay << uint(i)
		if want <= 0 || want > rc.cfg.MaxDelay {
			want = rc.cfg.MaxDelay
		}
		if d < want/2 || d > want {
			t.Fatalf("backoff(%d) = %v outside [%v, %v]", i, d, want/2, want)
		}
	}
}
