package ingest

import (
	"bytes"
	"testing"
	"time"

	"saber/internal/fault"
)

// startResumeServer is startServer with the resume protocol armed at the
// given cursor.
func startResumeServer(t *testing.T, sink Sink, tupleSize int, cursor int64) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", sink, tupleSize)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableResume(cursor)
	go func() { _ = s.Serve() }()
	t.Cleanup(func() { s.Close() })
	return s
}

// stream returns n 8-byte tuples with recognisable contents.
func stream(n int) []byte {
	out := make([]byte, n*8)
	for i := range out {
		out[i] = byte(i * 13)
	}
	return out
}

func waitBytes(t *testing.T, srv *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.BytesIn() < want {
		if time.Now().After(deadline) {
			t.Fatalf("server received %d bytes, want %d", srv.BytesIn(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestResumeGreetingAndSendAt: the greeting carries the seeded cursor and
// offset frames at the cursor flow straight through.
func TestResumeGreetingAndSendAt(t *testing.T) {
	sink := &collectSink{}
	srv := startResumeServer(t, sink, 8, 5)

	c, cursor, err := DialResume(srv.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if cursor != 5 {
		t.Fatalf("greeting cursor %d, want 5", cursor)
	}
	data := stream(4)
	if err := c.SendAt(data, 5); err != nil {
		t.Fatal(err)
	}
	waitBytes(t, srv, int64(len(data)))
	srv.Close()
	if !bytes.Equal(sink.bytes(), data) {
		t.Fatal("sink content mismatch")
	}
	if got := srv.Cursor(); got != 9 {
		t.Fatalf("cursor %d after 4 tuples from 5, want 9", got)
	}
}

// TestResumeDedupAndTrim: frames below the cursor are discarded, frames
// straddling it are prefix-trimmed — the sink sees each tuple once.
func TestResumeDedupAndTrim(t *testing.T) {
	sink := &collectSink{}
	srv := startResumeServer(t, sink, 8, 0)

	c, _, err := DialResume(srv.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := stream(10)
	if err := c.SendAt(data[:6*8], 0); err != nil { // tuples [0,6)
		t.Fatal(err)
	}
	if err := c.SendAt(data[2*8:4*8], 2); err != nil { // dup [2,4)
		t.Fatal(err)
	}
	if err := c.SendAt(data[4*8:], 4); err != nil { // straddle [4,10): trim to [6,10)
		t.Fatal(err)
	}
	waitBytes(t, srv, int64(len(data))+2*8+2*8)
	srv.Close()
	if !bytes.Equal(sink.bytes(), data) {
		t.Fatalf("sink has %d bytes, want %d exactly once", len(sink.bytes()), len(data))
	}
	st := srv.Stats()
	if st.ResumeDups != 1 || st.ResumeTrims != 1 {
		t.Fatalf("stats %+v, want 1 dup and 1 trim", st)
	}
}

// TestResumeGapRejected: a frame starting past the cursor would lose
// tuples silently; the server must kill the connection instead.
func TestResumeGapRejected(t *testing.T) {
	sink := &collectSink{}
	srv := startResumeServer(t, sink, 8, 0)

	c, _, err := DialResume(srv.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendAt(stream(2), 7); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().ResumeGaps == 0 {
		if time.Now().After(deadline) {
			t.Fatal("gap frame never rejected")
		}
		time.Sleep(time.Millisecond)
	}
	if len(sink.bytes()) != 0 {
		t.Fatal("gap frame reached the sink")
	}
}

// TestResumeReconnectReplaysFromGreeting is the crash-recovery path: the
// server restarts with a cursor behind the client's position and the
// reconnecting client retransmits the missing suffix from its replay
// window, exactly once.
func TestResumeReconnectReplaysFromGreeting(t *testing.T) {
	sinkA := &collectSink{}
	srvA := startResumeServer(t, sinkA, 8, 0)

	rc, err := DialReconnect(srvA.Addr().String(), ReconnectConfig{
		Seed:      7,
		Resume:    true,
		TupleSize: 8,
		BaseDelay: 100 * time.Microsecond,
		MaxDelay:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := stream(100)
	for off := 0; off < 60*8; off += 10 * 8 {
		if err := rc.Send(data[off : off+10*8]); err != nil {
			t.Fatal(err)
		}
	}
	waitBytes(t, srvA, 60*8)
	srvA.Close()

	// "Restart" on the same address from an older checkpoint: the new
	// server only remembers tuples [0, 40).
	sinkB := &collectSink{}
	srvB, err := Listen(srvA.Addr().String(), sinkB, 8)
	if err != nil {
		t.Fatal(err)
	}
	srvB.EnableResume(40)
	go func() { _ = srvB.Serve() }()
	defer srvB.Close()

	for off := 60 * 8; off < len(data); off += 10 * 8 {
		if err := rc.Send(data[off : off+10*8]); err != nil {
			t.Fatal(err)
		}
	}
	rc.Close()
	waitBytes(t, srvB, int64(len(data)-40*8))
	srvB.Close()
	if rc.Next() != 100 {
		t.Fatalf("client next %d, want 100", rc.Next())
	}
	if !bytes.Equal(sinkB.bytes(), data[40*8:]) {
		t.Fatalf("restarted sink has %d bytes, want tuples [40,100) exactly once", len(sinkB.bytes())/8)
	}
}

// TestResumeReconnectUnderFaults mixes the resume protocol with seeded
// mid-frame disconnects: offsets must keep the sink exactly-once even
// when frames die on the wire and are resent.
func TestResumeReconnectUnderFaults(t *testing.T) {
	sink := &collectSink{}
	srv := startResumeServer(t, sink, 8, 0)

	inj := fault.New(42)
	inj.Arm(fault.IngestDrop, fault.Spec{Rate: 0.3})
	rc, err := DialReconnect(srv.Addr().String(), ReconnectConfig{
		Seed:      42,
		Resume:    true,
		TupleSize: 8,
		BaseDelay: 100 * time.Microsecond,
		MaxDelay:  2 * time.Millisecond,
		Fault:     inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 200; i++ {
		frame := make([]byte, 8*(1+i%4))
		for j := range frame {
			frame[j] = byte(i*7 + j)
		}
		if err := rc.Send(frame); err != nil {
			t.Fatal(err)
		}
		want = append(want, frame...)
	}
	rc.Close()
	if rc.Reconnects() == 0 || inj.TotalInjections() == 0 {
		t.Fatalf("no faults exercised: reconnects=%d injections=%d", rc.Reconnects(), inj.TotalInjections())
	}
	waitBytes(t, srv, int64(len(want)))
	srv.Close()
	if !bytes.Equal(sink.bytes(), want) {
		t.Fatalf("sink has %d bytes, want %d exactly once", len(sink.bytes()), len(want))
	}
	if rc.Next() != int64(len(want)/8) {
		t.Fatalf("client next %d, want %d", rc.Next(), len(want)/8)
	}
}

// TestReplayWindowTrimsAligned exercises the bounded replay buffer
// directly: overflow trims whole tuples from the front and slice
// refuses ranges that fell out.
func TestReplayWindowTrimsAligned(t *testing.T) {
	rb := replayBuf{max: 5 * 8, tsz: 8}
	data := stream(12)
	for i := 0; i < 12; i += 3 {
		rb.append(data[i*8 : (i+3)*8])
	}
	if rb.base != 7 {
		t.Fatalf("base %d after trimming to a 5-tuple window, want 7", rb.base)
	}
	if got, ok := rb.slice(7, 12); !ok || !bytes.Equal(got, data[7*8:]) {
		t.Fatal("retained window should cover tuples [7,12)")
	}
	if _, ok := rb.slice(6, 12); ok {
		t.Fatal("slice before the window must fail")
	}
	if _, ok := rb.slice(7, 13); ok {
		t.Fatal("slice past the window must fail")
	}
}
