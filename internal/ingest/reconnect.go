package ingest

import (
	"fmt"
	"math/rand"
	"time"

	"saber/internal/fault"
)

// ReconnectConfig tunes the reconnecting client.
type ReconnectConfig struct {
	// MaxAttempts bounds how many connection attempts one Send makes
	// before giving up. Default 10.
	MaxAttempts int
	// BaseDelay is the first reconnect backoff; it doubles per attempt up
	// to MaxDelay, with jitter in [delay/2, delay). Defaults 500µs / 50ms.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives the jitter PRNG (deterministic replay).
	Seed int64
	// Fault arms seeded send-side fault injection (see Client.SetFault).
	Fault *fault.Injector

	// Resume speaks the resume protocol (server side: EnableResume): the
	// client tracks absolute tuple offsets, keeps a bounded replay window
	// of recently sent tuples, and on every redial retransmits from the
	// server's greeted cursor — so a server restarted from a checkpoint
	// gets the lost suffix again, exactly once. Requires TupleSize.
	Resume bool
	// TupleSize is the stream schema's tuple size (resume mode only).
	TupleSize int
	// ReplayWindow bounds the replay buffer in bytes; a redial whose
	// greeted cursor has fallen out of the window fails the Send. It must
	// cover the server's checkpoint lag: cursor distance beyond the
	// window is unrecoverable from this client alone. Default 16 MiB.
	ReplayWindow int

	// Credits speaks the credit-granting flow-control protocol (server
	// side: EnableCredits): Send blocks while the greeted window is
	// exhausted, pacing this sender to the server's consumption. Composes
	// with Resume — a redial re-reads the greeting, so the balance resets
	// with the connection. Requires TupleSize.
	Credits bool
}

func (c ReconnectConfig) withDefaults() ReconnectConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 10
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 500 * time.Microsecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 50 * time.Millisecond
	}
	if c.ReplayWindow <= 0 {
		c.ReplayWindow = 16 << 20
	}
	return c
}

// replayBuf is a bounded byte window over the most recently sent tuples,
// addressed by absolute tuple index. Always whole-tuple aligned.
type replayBuf struct {
	buf  []byte
	base int64 // absolute tuple index of buf[0]
	max  int
	tsz  int
}

func (rb *replayBuf) append(tuples []byte) {
	rb.buf = append(rb.buf, tuples...)
	if over := len(rb.buf) - rb.max; over > 0 {
		trim := (over + rb.tsz - 1) / rb.tsz * rb.tsz
		rb.base += int64(trim / rb.tsz)
		rb.buf = append(rb.buf[:0], rb.buf[trim:]...)
	}
}

// slice returns the retained bytes for tuple range [from, to), or false
// when from has already been trimmed out of the window.
func (rb *replayBuf) slice(from, to int64) ([]byte, bool) {
	if from < rb.base || to < from || to > rb.base+int64(len(rb.buf)/rb.tsz) {
		return nil, false
	}
	return rb.buf[(from-rb.base)*int64(rb.tsz) : (to-rb.base)*int64(rb.tsz)], true
}

// ReconnectClient is a Client that transparently redials after connection
// failures, resending the interrupted frame whole. Because the server
// only sinks fully received frames, a frame is inserted exactly once no
// matter how many times the connection dies mid-transfer. Like Client it
// serves a single sending goroutine.
type ReconnectClient struct {
	cfg  ReconnectConfig
	addr string
	c    *Client
	rnd  *rand.Rand

	// next is the absolute tuple index of the next unsent tuple; replay
	// holds the window behind it for post-reconnect retransmission
	// (resume mode only).
	next   int64
	replay replayBuf

	reconnects  int64
	resends     int64
	creditWaits int64 // accumulated from closed connections' clients
}

// DialReconnect connects a reconnecting client to an ingest server.
func DialReconnect(addr string, cfg ReconnectConfig) (*ReconnectClient, error) {
	cfg = cfg.withDefaults()
	if (cfg.Resume || cfg.Credits) && cfg.TupleSize <= 0 {
		return nil, fmt.Errorf("ingest: resume/credit client needs TupleSize (got %d)", cfg.TupleSize)
	}
	rc := &ReconnectClient{
		cfg:  cfg,
		addr: addr,
		rnd:  rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Resume {
		rc.replay = replayBuf{max: cfg.ReplayWindow, tsz: cfg.TupleSize}
	}
	if err := rc.redial(); err != nil {
		return nil, err
	}
	return rc, nil
}

func (rc *ReconnectClient) redial() error {
	c, cursor, err := dialStream(rc.addr, rc.cfg.TupleSize, rc.cfg.Resume, rc.cfg.Credits)
	if err != nil {
		return err
	}
	c.SetFault(rc.cfg.Fault)
	if !rc.cfg.Resume {
		rc.c = c
		return nil
	}
	if cursor == 0 && rc.next == 0 {
		// Fresh stream on both sides; nothing to replay.
		rc.c = c
		return nil
	}
	if cursor < rc.next {
		// The server lost tuples we already sent (restart from an older
		// checkpoint): retransmit [cursor, next) from the replay window.
		data, ok := rc.replay.slice(cursor, rc.next)
		if !ok {
			rc.creditWaits += c.CreditWaits()
			c.Close()
			return fmt.Errorf("ingest: server cursor %d is outside the replay window [%d, %d)",
				cursor, rc.replay.base, rc.next)
		}
		chunk := int64(MaxFrame - MaxFrame%rc.cfg.TupleSize)
		for off := int64(0); off < int64(len(data)); off += chunk {
			end := off + chunk
			if end > int64(len(data)) {
				end = int64(len(data))
			}
			if err := c.SendAt(data[off:end], cursor+off/int64(rc.cfg.TupleSize)); err != nil {
				rc.creditWaits += c.CreditWaits()
				c.Close()
				return err
			}
			rc.resends++
		}
	}
	// cursor > next means the server has more than we remember sending
	// (e.g. this client restarted); our next frames will be discarded or
	// trimmed server-side until the offsets converge.
	rc.c = c
	return nil
}

// backoff returns the jittered delay for attempt i (0-based): the base
// delay doubled per attempt, capped, with the final value drawn from
// [delay/2, delay) so synchronised failures don't reconnect in lockstep.
func (rc *ReconnectClient) backoff(i int) time.Duration {
	d := rc.cfg.BaseDelay << uint(i)
	if d <= 0 || d > rc.cfg.MaxDelay {
		d = rc.cfg.MaxDelay
	}
	half := d / 2
	return half + time.Duration(rc.rnd.Int63n(int64(half)+1))
}

// Send transmits one frame, redialing and resending it whole after any
// connection failure, until it succeeds or MaxAttempts is exhausted. In
// resume mode the frame is stamped with the stream's running tuple
// offset and retained in the replay window, and every redial first
// retransmits whatever the server's greeting says it is missing.
func (rc *ReconnectClient) Send(tuples []byte) error {
	if rc.cfg.Resume {
		if len(tuples)%rc.cfg.TupleSize != 0 {
			return fmt.Errorf("ingest: frame of %d bytes is not whole %d-byte tuples",
				len(tuples), rc.cfg.TupleSize)
		}
		if len(tuples) > 0 {
			rc.replay.append(tuples)
		}
	}
	var lastErr error
	for attempt := 0; attempt < rc.cfg.MaxAttempts; attempt++ {
		if rc.c == nil {
			if attempt > 0 {
				time.Sleep(rc.backoff(attempt - 1))
			}
			if err := rc.redial(); err != nil {
				lastErr = err
				continue
			}
			rc.reconnects++
		}
		if attempt > 0 {
			rc.resends++
		}
		var err error
		if rc.cfg.Resume {
			err = rc.c.SendAt(tuples, rc.next)
		} else {
			err = rc.c.Send(tuples)
		}
		if err == nil {
			if rc.cfg.Resume {
				rc.next += int64(len(tuples) / rc.cfg.TupleSize)
			}
			return nil
		}
		lastErr = err
		rc.creditWaits += rc.c.CreditWaits()
		_ = rc.c.Close()
		rc.c = nil
	}
	return fmt.Errorf("ingest: send failed after %d attempts: %w", rc.cfg.MaxAttempts, lastErr)
}

// Next returns the absolute tuple index of the next unsent tuple
// (resume mode; 0 otherwise).
func (rc *ReconnectClient) Next() int64 { return rc.next }

// Reconnects counts successful redials.
func (rc *ReconnectClient) Reconnects() int64 { return rc.reconnects }

// Resends counts frame retransmissions after a failure.
func (rc *ReconnectClient) Resends() int64 { return rc.resends }

// CreditWaits counts Sends that blocked on the credit window, summed
// across every connection this client has used (credit mode).
func (rc *ReconnectClient) CreditWaits() int64 {
	n := rc.creditWaits
	if rc.c != nil {
		n += rc.c.CreditWaits()
	}
	return n
}

// Close closes the current connection, if any.
func (rc *ReconnectClient) Close() error {
	if rc.c == nil {
		return nil
	}
	rc.creditWaits += rc.c.CreditWaits()
	err := rc.c.Close()
	rc.c = nil
	return err
}
