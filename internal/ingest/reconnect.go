package ingest

import (
	"fmt"
	"math/rand"
	"time"

	"saber/internal/fault"
)

// ReconnectConfig tunes the reconnecting client.
type ReconnectConfig struct {
	// MaxAttempts bounds how many connection attempts one Send makes
	// before giving up. Default 10.
	MaxAttempts int
	// BaseDelay is the first reconnect backoff; it doubles per attempt up
	// to MaxDelay, with jitter in [delay/2, delay). Defaults 500µs / 50ms.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives the jitter PRNG (deterministic replay).
	Seed int64
	// Fault arms seeded send-side fault injection (see Client.SetFault).
	Fault *fault.Injector
}

func (c ReconnectConfig) withDefaults() ReconnectConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 10
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 500 * time.Microsecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 50 * time.Millisecond
	}
	return c
}

// ReconnectClient is a Client that transparently redials after connection
// failures, resending the interrupted frame whole. Because the server
// only sinks fully received frames, a frame is inserted exactly once no
// matter how many times the connection dies mid-transfer. Like Client it
// serves a single sending goroutine.
type ReconnectClient struct {
	cfg  ReconnectConfig
	addr string
	c    *Client
	rnd  *rand.Rand

	reconnects int64
	resends    int64
}

// DialReconnect connects a reconnecting client to an ingest server.
func DialReconnect(addr string, cfg ReconnectConfig) (*ReconnectClient, error) {
	cfg = cfg.withDefaults()
	rc := &ReconnectClient{
		cfg:  cfg,
		addr: addr,
		rnd:  rand.New(rand.NewSource(cfg.Seed)),
	}
	if err := rc.redial(); err != nil {
		return nil, err
	}
	return rc, nil
}

func (rc *ReconnectClient) redial() error {
	c, err := Dial(rc.addr)
	if err != nil {
		return err
	}
	c.SetFault(rc.cfg.Fault)
	rc.c = c
	return nil
}

// backoff returns the jittered delay for attempt i (0-based): the base
// delay doubled per attempt, capped, with the final value drawn from
// [delay/2, delay) so synchronised failures don't reconnect in lockstep.
func (rc *ReconnectClient) backoff(i int) time.Duration {
	d := rc.cfg.BaseDelay << uint(i)
	if d <= 0 || d > rc.cfg.MaxDelay {
		d = rc.cfg.MaxDelay
	}
	half := d / 2
	return half + time.Duration(rc.rnd.Int63n(int64(half)+1))
}

// Send transmits one frame, redialing and resending it whole after any
// connection failure, until it succeeds or MaxAttempts is exhausted.
func (rc *ReconnectClient) Send(tuples []byte) error {
	var lastErr error
	for attempt := 0; attempt < rc.cfg.MaxAttempts; attempt++ {
		if rc.c == nil {
			if attempt > 0 {
				time.Sleep(rc.backoff(attempt - 1))
			}
			if err := rc.redial(); err != nil {
				lastErr = err
				continue
			}
			rc.reconnects++
		}
		if attempt > 0 {
			rc.resends++
		}
		err := rc.c.Send(tuples)
		if err == nil {
			return nil
		}
		lastErr = err
		_ = rc.c.Close()
		rc.c = nil
	}
	return fmt.Errorf("ingest: send failed after %d attempts: %w", rc.cfg.MaxAttempts, lastErr)
}

// Reconnects counts successful redials.
func (rc *ReconnectClient) Reconnects() int64 { return rc.reconnects }

// Resends counts frame retransmissions after a failure.
func (rc *ReconnectClient) Resends() int64 { return rc.resends }

// Close closes the current connection, if any.
func (rc *ReconnectClient) Close() error {
	if rc.c == nil {
		return nil
	}
	err := rc.c.Close()
	rc.c = nil
	return err
}
