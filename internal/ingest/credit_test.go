package ingest

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"saber/internal/fault"
)

// slowSink delays every Insert, modelling a sink blocked on engine
// admission, and checks the credit bound: the sender may never be more
// than window+frame tuples ahead of what the sink has consumed.
type slowSink struct {
	collectSink
	delay    time.Duration
	sent     *atomic.Int64 // tuples the client has finished sending
	consumed atomic.Int64  // tuples this sink has accepted
	maxLag   atomic.Int64
}

func (s *slowSink) Insert(data []byte) {
	time.Sleep(s.delay)
	if lag := s.sent.Load() - s.consumed.Load(); lag > s.maxLag.Load() {
		s.maxLag.Store(lag)
	}
	s.consumed.Add(int64(len(data) / 8))
	s.collectSink.Insert(data)
}

// TestCreditsPaceSenderToSink: with a 64-tuple window over a slow sink,
// the sender must block on grants (CreditWaits > 0) and its lead over
// the sink stays within window + one frame. Every byte still arrives in
// order.
func TestCreditsPaceSenderToSink(t *testing.T) {
	var sent atomic.Int64
	sink := &slowSink{delay: 200 * time.Microsecond, sent: &sent}
	srv, err := Listen("127.0.0.1:0", sink, 8)
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableCredits(64)
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	c, err := DialCredits(srv.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Window() != 64 {
		t.Fatalf("greeted window %d, want 64", c.Window())
	}

	const frameTuples = 16
	var want []byte
	for i := 0; i < 200; i++ {
		frame := make([]byte, frameTuples*8)
		for j := range frame {
			frame[j] = byte(i*31 + j)
		}
		if err := c.Send(frame); err != nil {
			t.Fatal(err)
		}
		sent.Add(frameTuples)
		want = append(want, frame...)
	}
	waitBytes(t, srv, int64(len(want)))
	srv.Close()

	if !bytes.Equal(sink.bytes(), want) {
		t.Fatal("sink content mismatch under credit pacing")
	}
	if c.CreditWaits() == 0 {
		t.Fatal("sender never waited on credits despite a slow sink")
	}
	// sent is stamped after Send returns, so the observed lag is a lower
	// bound on the true in-flight count — a violation here is definitive.
	if lag := sink.maxLag.Load(); lag > 64+frameTuples {
		t.Fatalf("sender ran %d tuples ahead of the sink, credit bound is %d", lag, 64+frameTuples)
	}
	st := srv.Stats()
	if st.CreditGrants == 0 || st.CreditTuples != int64(len(want)/8) {
		t.Fatalf("grants=%d granted tuples=%d, want all %d tuples granted back",
			st.CreditGrants, st.CreditTuples, len(want)/8)
	}
}

// TestCreditsJumboFrameOverdraft: a frame far larger than the window
// must still go through (overdraft), and the balance recovers from the
// grant stream afterwards.
func TestCreditsJumboFrameOverdraft(t *testing.T) {
	sink := &collectSink{}
	srv, err := Listen("127.0.0.1:0", sink, 8)
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableCredits(8) // tiny window
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	c, err := DialCredits(srv.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	jumbo := stream(100) // 100 tuples against an 8-tuple window
	if err := c.Send(jumbo); err != nil {
		t.Fatal(err)
	}
	// A second jumbo forces the client to wait out the first one's grants.
	if err := c.Send(jumbo); err != nil {
		t.Fatal(err)
	}
	waitBytes(t, srv, int64(2*len(jumbo)))
	srv.Close()
	if got := sink.bytes(); len(got) != 2*len(jumbo) {
		t.Fatalf("sink has %d bytes, want %d", len(got), 2*len(jumbo))
	}
	if c.CreditWaits() == 0 {
		t.Fatal("second jumbo frame should have waited for grants")
	}
}

// TestCreditsResumeReconnectInterop drives both protocol extensions at
// once under seeded mid-frame faults: the greeting carries cursor then
// window, each redial resets the balance, replayed frames are granted
// like fresh ones, and the sink still sees every tuple exactly once.
func TestCreditsResumeReconnectInterop(t *testing.T) {
	sink := &collectSink{}
	srv, err := Listen("127.0.0.1:0", sink, 8)
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableResume(0)
	srv.EnableCredits(32)
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	inj := fault.New(42)
	inj.Arm(fault.IngestDrop, fault.Spec{Rate: 0.3})
	rc, err := DialReconnect(srv.Addr().String(), ReconnectConfig{
		Seed:      42,
		Resume:    true,
		Credits:   true,
		TupleSize: 8,
		BaseDelay: 100 * time.Microsecond,
		MaxDelay:  2 * time.Millisecond,
		Fault:     inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 200; i++ {
		frame := make([]byte, 8*(1+i%4))
		for j := range frame {
			frame[j] = byte(i*7 + j)
		}
		if err := rc.Send(frame); err != nil {
			t.Fatal(err)
		}
		want = append(want, frame...)
	}
	rc.Close()
	if rc.Reconnects() == 0 || inj.TotalInjections() == 0 {
		t.Fatalf("no faults exercised: reconnects=%d injections=%d", rc.Reconnects(), inj.TotalInjections())
	}
	waitBytes(t, srv, int64(len(want)))
	srv.Close()
	if !bytes.Equal(sink.bytes(), want) {
		t.Fatalf("sink has %d bytes, want %d exactly once", len(sink.bytes()), len(want))
	}
	if rc.Next() != int64(len(want)/8) {
		t.Fatalf("client next %d, want %d", rc.Next(), len(want)/8)
	}
	if srv.Stats().CreditGrants == 0 {
		t.Fatal("server granted nothing across the whole run")
	}
}

// TestCreditsGreetingOrder pins the wire layout when both extensions are
// on: 8-byte cursor first, 8-byte window second.
func TestCreditsGreetingOrder(t *testing.T) {
	sink := &collectSink{}
	srv, err := Listen("127.0.0.1:0", sink, 8)
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableResume(17)
	srv.EnableCredits(96)
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	c, cursor, err := DialResumeCredits(srv.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if cursor != 17 || c.Window() != 96 {
		t.Fatalf("greeting (cursor=%d window=%d), want (17, 96)", cursor, c.Window())
	}
}
