// Package ingest streams serialised tuples into the engine over TCP, the
// way the paper's evaluation feeds SABER from a 10 Gbps NIC (§6.1).
//
// The wire protocol is minimal and allocation-friendly: a stream of
// frames, each a 4-byte little-endian payload length followed by that
// many bytes of whole tuples. Tuples stay in their binary schema layout
// end to end — the receiver inserts the payload bytes directly into the
// query's circular input buffer without deserialisation, preserving
// SABER's lazy-deserialisation discipline (§5.1).
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"saber/internal/fault"
)

// MaxFrame bounds a single frame's payload (16 MiB).
const MaxFrame = 16 << 20

// Sink receives whole-tuple payloads in arrival order. A query handle's
// Insert method satisfies it.
type Sink interface {
	Insert(data []byte)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(data []byte)

// Insert implements Sink.
func (f SinkFunc) Insert(data []byte) { f(data) }

// Server accepts tuple streams and forwards them to a sink. Connections
// are handled strictly in accept order, one at a time: a stream source is
// one logical sender, and a reconnecting sender's new connection must not
// overtake frames still buffered in its dead predecessor — the previous
// connection is drained to EOF (or its read deadline) before the next
// one's frames reach the sink, preserving stream order across failover.
type Server struct {
	l         net.Listener
	sink      Sink
	tupleSize int

	// readTimeout, when positive, bounds how long a read may sit idle on a
	// connection before it is dropped (a stalled or half-dead peer must not
	// pin a handler goroutine forever).
	readTimeout atomic.Int64 // nanoseconds

	sinkMu   sync.Mutex
	handleMu sync.Mutex // held while a connection is being drained
	closed   atomic.Bool

	// Telemetry.
	bytesIn        atomic.Int64
	framesIn       atomic.Int64
	conns          atomic.Int64
	emptyFrames    atomic.Int64 // zero-length frames (no-op keepalives)
	oversizeFrames atomic.Int64 // frames rejected for exceeding MaxFrame
	raggedFrames   atomic.Int64 // frames rejected for partial tuples
	deadlineDrops  atomic.Int64 // connections dropped by the read deadline
	connErrors     atomic.Int64 // connections ended by any other error
}

// ServerStats is a point-in-time snapshot of the server's counters.
type ServerStats struct {
	BytesIn        int64
	Frames         int64
	Conns          int64
	EmptyFrames    int64
	OversizeFrames int64
	RaggedFrames   int64
	DeadlineDrops  int64
	ConnErrors     int64
}

// NewServer wraps an existing listener. tupleSize is the stream schema's
// tuple size; frames that are not whole tuples are rejected and the
// offending connection closed.
func NewServer(l net.Listener, sink Sink, tupleSize int) (*Server, error) {
	if tupleSize <= 0 {
		return nil, fmt.Errorf("ingest: tuple size %d", tupleSize)
	}
	if sink == nil {
		return nil, errors.New("ingest: nil sink")
	}
	return &Server{l: l, sink: sink, tupleSize: tupleSize}, nil
}

// Listen starts a server on the given TCP address (e.g. "127.0.0.1:0").
func Listen(addr string, sink Sink, tupleSize int) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewServer(l, sink, tupleSize)
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.l.Addr() }

// BytesIn returns the total payload bytes received.
func (s *Server) BytesIn() int64 { return s.bytesIn.Load() }

// Frames returns the number of frames received.
func (s *Server) Frames() int64 { return s.framesIn.Load() }

// SetReadTimeout sets the per-read idle deadline for all connections
// (0 disables). Safe to call concurrently with Serve.
func (s *Server) SetReadTimeout(d time.Duration) { s.readTimeout.Store(int64(d)) }

// Stats snapshots the server's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		BytesIn:        s.bytesIn.Load(),
		Frames:         s.framesIn.Load(),
		Conns:          s.conns.Load(),
		EmptyFrames:    s.emptyFrames.Load(),
		OversizeFrames: s.oversizeFrames.Load(),
		RaggedFrames:   s.raggedFrames.Load(),
		DeadlineDrops:  s.deadlineDrops.Load(),
		ConnErrors:     s.connErrors.Load(),
	}
}

// Serve accepts connections until Close. It returns nil after Close and
// the first accept error otherwise.
func (s *Server) Serve() error {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.conns.Add(1)
		// Synchronous: the next connection is not accepted (and cannot
		// deliver frames) until this one has been drained. See the Server
		// doc comment for why ordering requires this.
		s.handleMu.Lock()
		if err := s.handle(conn); err != nil && !s.closed.Load() {
			// A malformed or broken connection only affects itself; a
			// reconnecting client resends the interrupted frame whole.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				s.deadlineDrops.Add(1)
			} else {
				s.connErrors.Add(1)
			}
		}
		conn.Close()
		s.handleMu.Unlock()
	}
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.l.Close()
	s.handleMu.Lock() // wait for the in-flight connection to drain
	s.handleMu.Unlock()
	return err
}

// handle processes one connection. A frame only reaches the sink after
// its payload has been read in full — a connection dying mid-frame
// discards the partial frame, so a reconnecting client that resends the
// whole frame yields exactly-once insertion at frame granularity.
func (s *Server) handle(conn net.Conn) error {
	var hdr [4]byte
	buf := make([]byte, 64<<10)
	for {
		s.armDeadline(conn)
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		switch {
		case n == 0:
			// A zero-length frame carries no tuples; tolerate it as a
			// keepalive rather than killing the connection.
			s.emptyFrames.Add(1)
			continue
		case n > MaxFrame:
			s.oversizeFrames.Add(1)
			return fmt.Errorf("ingest: frame of %d bytes exceeds limit", n)
		case n%s.tupleSize != 0:
			s.raggedFrames.Add(1)
			return fmt.Errorf("ingest: frame of %d bytes is not whole %d-byte tuples", n, s.tupleSize)
		}
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		s.armDeadline(conn)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return fmt.Errorf("ingest: truncated frame: %w", err)
		}
		s.bytesIn.Add(int64(n))
		s.framesIn.Add(1)
		s.sinkMu.Lock()
		s.sink.Insert(buf)
		s.sinkMu.Unlock()
	}
}

func (s *Server) armDeadline(conn net.Conn) {
	if d := time.Duration(s.readTimeout.Load()); d > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(d))
	} else {
		_ = conn.SetReadDeadline(time.Time{})
	}
}

// Client sends tuple frames to an ingest server.
type Client struct {
	conn net.Conn
	hdr  [4]byte
	inj  *fault.Injector
}

// Dial connects to an ingest server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// SetFault arms seeded fault injection on this client: fault.IngestDrop
// makes Send abort mid-frame and close the connection (simulating a
// sender crash), fault.IngestStall inserts the armed delay before the
// abort (simulating a wedged sender tripping the server's read deadline).
func (c *Client) SetFault(inj *fault.Injector) { c.inj = inj }

// Send transmits one frame of whole tuples. On an injected fault the
// frame is truncated on the wire and the connection closed; the caller
// must redial and resend the whole frame (see DialReconnect) — the
// server never forwards a partial frame to its sink.
func (c *Client) Send(tuples []byte) error {
	if len(tuples) == 0 {
		return nil
	}
	if len(tuples) > MaxFrame {
		return fmt.Errorf("ingest: frame of %d bytes exceeds limit", len(tuples))
	}
	if c.inj.Decide(fault.IngestDrop) {
		return c.abortMidFrame(tuples, 0, fault.IngestDrop)
	}
	if d := c.inj.Stall(fault.IngestStall); d > 0 {
		return c.abortMidFrame(tuples, d, fault.IngestStall)
	}
	binary.LittleEndian.PutUint32(c.hdr[:], uint32(len(tuples)))
	if _, err := c.conn.Write(c.hdr[:]); err != nil {
		return err
	}
	_, err := c.conn.Write(tuples)
	return err
}

// abortMidFrame writes the frame header and half the payload, optionally
// stalls, then closes the connection and reports the injected failure.
func (c *Client) abortMidFrame(tuples []byte, stall time.Duration, site fault.Site) error {
	binary.LittleEndian.PutUint32(c.hdr[:], uint32(len(tuples)))
	_, _ = c.conn.Write(c.hdr[:])
	_, _ = c.conn.Write(tuples[:len(tuples)/2])
	if stall > 0 {
		time.Sleep(stall)
	}
	_ = c.conn.Close()
	return fault.Errorf(site, "connection lost mid-frame (%d bytes)", len(tuples))
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
