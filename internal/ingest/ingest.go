// Package ingest streams serialised tuples into the engine over TCP, the
// way the paper's evaluation feeds SABER from a 10 Gbps NIC (§6.1).
//
// The wire protocol is minimal and allocation-friendly: a stream of
// frames, each a 4-byte little-endian payload length followed by that
// many bytes of whole tuples. Tuples stay in their binary schema layout
// end to end — the receiver inserts the payload bytes directly into the
// query's circular input buffer without deserialisation, preserving
// SABER's lazy-deserialisation discipline (§5.1).
//
// Downstream of the sink, a frame lands twice in one pass: the engine's
// insert path admits the payload to the row ring and immediately shreds
// it into the per-column segments of the columnar mirror
// (ringbuf.ColumnStore), while the frame is still hot in cache. From
// that point tasks, operators and the GPGPU DMA stage consume dense
// column views; no later stage re-gathers rows (see DESIGN.md §11).
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"saber/internal/fault"
	"saber/internal/obs"
)

// MaxFrame bounds a single frame's payload (16 MiB).
const MaxFrame = 16 << 20

// DefaultReadTimeout is the per-read idle deadline applied to every
// connection unless overridden with SetReadTimeout. It must be non-zero:
// connections are served strictly one at a time, so a dead or idle
// predecessor that never times out would block every later connection
// (and Close) forever.
const DefaultReadTimeout = 30 * time.Second

// closeGrace bounds how long Close lets the in-flight connection keep
// draining: long enough to read frames already buffered in the socket
// (a finished sender's tail must not be lost), short enough that a live
// idle sender cannot stall shutdown for its full read timeout.
const closeGrace = 250 * time.Millisecond

// Sink receives whole-tuple payloads in arrival order. A query handle's
// Insert method satisfies it.
type Sink interface {
	Insert(data []byte)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(data []byte)

// Insert implements Sink.
func (f SinkFunc) Insert(data []byte) { f(data) }

// Server accepts tuple streams and forwards them to a sink.
//
// The server supports exactly ONE logical sender at a time. Connections
// are handled strictly in accept order, one at a time: a stream source is
// one logical sender, and a reconnecting sender's new connection must not
// overtake frames still buffered in its dead predecessor — the previous
// connection is drained to EOF (or its read deadline) before the next
// one's frames reach the sink, preserving stream order across failover.
// The flip side is that a second concurrent sender queues behind the
// first until it disconnects or idles past the read timeout; this is why
// the read timeout defaults to DefaultReadTimeout and should not be
// disabled outside tests — with it disabled, one idle-but-live connection
// starves every later connection indefinitely.
type Server struct {
	l         net.Listener
	sink      Sink
	tupleSize int

	// resume, when set (EnableResume), switches the wire protocol to
	// resume frames: the server greets every connection with its durable
	// tuple cursor, each frame carries the absolute tuple offset of its
	// first tuple, and replayed tuples below the cursor are discarded or
	// trimmed instead of re-inserted — exactly-once across reconnects
	// that replay from a checkpoint cursor.
	resume bool
	cursor atomic.Int64 // next tuple index the sink expects

	// credits, when set (EnableCredits), adds credit-based flow control
	// to either protocol: the greeting additionally carries the window
	// (in tuples, after the resume cursor when both are enabled) and the
	// server returns 8-byte grant increments as it consumes frames, so a
	// well-behaved sender can never hold more than roughly one window of
	// tuples in flight — backpressure surfaces at the source instead of
	// as unbounded socket growth in front of a blocked sink.
	credits      bool
	creditWindow int64 // tuples

	// readTimeout, when positive, bounds how long a read may sit idle on a
	// connection before it is dropped (a stalled or half-dead peer must not
	// pin the single serving slot forever). Defaults to DefaultReadTimeout.
	readTimeout atomic.Int64 // nanoseconds

	sinkMu   sync.Mutex
	handleMu sync.Mutex // held while a connection is being drained
	closed   atomic.Bool

	// closeDeadline (unix nanoseconds, 0 = not closing) is the final read
	// deadline Close imposes on every remaining read, bounding shutdown by
	// closeGrace instead of the full read timeout. active is the
	// connection currently being drained, so Close can re-arm a read
	// already blocked on the old deadline.
	closeDeadline atomic.Int64
	activeMu      sync.Mutex
	active        net.Conn

	// Telemetry.
	bytesIn        atomic.Int64
	framesIn       atomic.Int64
	conns          atomic.Int64
	emptyFrames    atomic.Int64 // zero-length frames (no-op keepalives)
	oversizeFrames atomic.Int64 // frames rejected for exceeding MaxFrame
	raggedFrames   atomic.Int64 // frames rejected for partial tuples
	deadlineDrops  atomic.Int64 // connections dropped by the read deadline
	connErrors     atomic.Int64 // connections ended by any other error
	resumeDups     atomic.Int64 // resume frames fully below the cursor, discarded
	resumeTrims    atomic.Int64 // resume frames straddling the cursor, prefix-trimmed
	resumeGaps     atomic.Int64 // resume frames starting past the cursor, rejected
	creditGrants   atomic.Int64 // grant messages written (credit mode)
	creditTuples   atomic.Int64 // tuples granted back to senders (credit mode)
}

// ServerStats is a point-in-time snapshot of the server's counters.
type ServerStats struct {
	BytesIn        int64
	Frames         int64
	Conns          int64
	EmptyFrames    int64
	OversizeFrames int64
	RaggedFrames   int64
	DeadlineDrops  int64
	ConnErrors     int64
	ResumeDups     int64
	ResumeTrims    int64
	ResumeGaps     int64
	CreditGrants   int64
	CreditTuples   int64
}

// NewServer wraps an existing listener. tupleSize is the stream schema's
// tuple size; frames that are not whole tuples are rejected and the
// offending connection closed.
func NewServer(l net.Listener, sink Sink, tupleSize int) (*Server, error) {
	if tupleSize <= 0 {
		return nil, fmt.Errorf("ingest: tuple size %d", tupleSize)
	}
	if sink == nil {
		return nil, errors.New("ingest: nil sink")
	}
	s := &Server{l: l, sink: sink, tupleSize: tupleSize}
	s.readTimeout.Store(int64(DefaultReadTimeout))
	return s, nil
}

// Listen starts a server on the given TCP address (e.g. "127.0.0.1:0").
func Listen(addr string, sink Sink, tupleSize int) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewServer(l, sink, tupleSize)
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.l.Addr() }

// BytesIn returns the total payload bytes received.
func (s *Server) BytesIn() int64 { return s.bytesIn.Load() }

// Frames returns the number of frames received.
func (s *Server) Frames() int64 { return s.framesIn.Load() }

// EnableResume switches the server to the resume protocol, seeding its
// durable tuple cursor (typically Handle.InputCursor after a Restore, or
// 0 on a cold start). Must be called before Serve; clients must use
// DialResume / ReconnectConfig.Resume. Every accepted connection is
// greeted with the current cursor so the sender knows where to replay
// from, and tuples below the cursor are discarded on arrival.
func (s *Server) EnableResume(cursor int64) {
	s.resume = true
	s.cursor.Store(cursor)
}

// Cursor returns the next tuple index the sink expects (resume mode).
func (s *Server) Cursor() int64 { return s.cursor.Load() }

// EnableCredits arms credit-based flow control with the given window (in
// tuples; values below 1 are clamped to 1). Must be called before Serve;
// clients must dial with the matching credit variant (DialCredits,
// DialResumeCredits, or ReconnectConfig.Credits). Composes with
// EnableResume: the greeting then carries cursor followed by window.
//
// Grants are batched: the server returns an 8-byte increment once a
// quarter window of tuples has been consumed since the last grant, and a
// sender may overdraw by at most one frame — so the in-flight bound is
// window plus one frame, not an exact window.
func (s *Server) EnableCredits(window int64) {
	if window < 1 {
		window = 1
	}
	s.credits = true
	s.creditWindow = window
}

// SetReadTimeout sets the per-read idle deadline for all connections,
// overriding DefaultReadTimeout. Safe to call concurrently with Serve.
// Passing 0 disables the deadline — do that only in tests: with serial
// connection handling, a deadline-less idle connection blocks every
// subsequent connection until it closes (see the Server doc comment).
func (s *Server) SetReadTimeout(d time.Duration) { s.readTimeout.Store(int64(d)) }

// Stats snapshots the server's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		BytesIn:        s.bytesIn.Load(),
		Frames:         s.framesIn.Load(),
		Conns:          s.conns.Load(),
		EmptyFrames:    s.emptyFrames.Load(),
		OversizeFrames: s.oversizeFrames.Load(),
		RaggedFrames:   s.raggedFrames.Load(),
		DeadlineDrops:  s.deadlineDrops.Load(),
		ConnErrors:     s.connErrors.Load(),
		ResumeDups:     s.resumeDups.Load(),
		ResumeTrims:    s.resumeTrims.Load(),
		ResumeGaps:     s.resumeGaps.Load(),
		CreditGrants:   s.creditGrants.Load(),
		CreditTuples:   s.creditTuples.Load(),
	}
}

// RegisterMetrics mirrors the server's counters into reg under
// prefix.<counter> (canonical scheme: e.g. saber.ingest.in0.frames).
// Mirrors are read only at snapshot time, so registration adds no
// hot-path cost.
func (s *Server) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.RegisterFunc(prefix+".bytes.in", s.bytesIn.Load)
	reg.RegisterFunc(prefix+".frames", s.framesIn.Load)
	reg.RegisterFunc(prefix+".conns", s.conns.Load)
	reg.RegisterFunc(prefix+".frames.empty", s.emptyFrames.Load)
	reg.RegisterFunc(prefix+".frames.oversize", s.oversizeFrames.Load)
	reg.RegisterFunc(prefix+".frames.ragged", s.raggedFrames.Load)
	reg.RegisterFunc(prefix+".deadline.drops", s.deadlineDrops.Load)
	reg.RegisterFunc(prefix+".conn.errors", s.connErrors.Load)
	reg.RegisterFunc(prefix+".resume.dups", s.resumeDups.Load)
	reg.RegisterFunc(prefix+".resume.trims", s.resumeTrims.Load)
	reg.RegisterFunc(prefix+".resume.gaps", s.resumeGaps.Load)
	reg.RegisterFunc(prefix+".credit.grants", s.creditGrants.Load)
	reg.RegisterFunc(prefix+".credit.tuples", s.creditTuples.Load)
}

// Serve accepts connections until Close. It returns nil after Close and
// the first accept error otherwise.
func (s *Server) Serve() error {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.conns.Add(1)
		// Synchronous: the next connection is not accepted (and cannot
		// deliver frames) until this one has been drained. See the Server
		// doc comment for why ordering requires this.
		s.handleMu.Lock()
		s.activeMu.Lock()
		s.active = conn
		s.activeMu.Unlock()
		err = s.handle(conn)
		s.activeMu.Lock()
		s.active = nil
		s.activeMu.Unlock()
		if err != nil && !s.closed.Load() {
			// A malformed or broken connection only affects itself; a
			// reconnecting client resends the interrupted frame whole.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				s.deadlineDrops.Add(1)
			} else {
				s.connErrors.Add(1)
			}
		}
		conn.Close()
		s.handleMu.Unlock()
	}
}

// Close stops accepting and waits for the in-flight connection to
// finish, bounded by closeGrace: frames a finished sender left buffered
// in the socket still drain to the sink, but a live idle sender is timed
// out instead of stalling shutdown for its full read timeout.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.l.Close()
	deadline := time.Now().Add(closeGrace)
	s.closeDeadline.Store(deadline.UnixNano())
	s.activeMu.Lock()
	if s.active != nil {
		// Re-arm a read already blocked on the pre-close deadline.
		_ = s.active.SetReadDeadline(deadline)
	}
	s.activeMu.Unlock()
	s.handleMu.Lock() // wait for the in-flight connection to drain
	s.handleMu.Unlock()
	return err
}

// handle processes one connection. A frame only reaches the sink after
// its payload has been read in full — a connection dying mid-frame
// discards the partial frame, so a reconnecting client that resends the
// whole frame yields exactly-once insertion at frame granularity. In
// resume mode the header additionally carries the frame's absolute tuple
// offset, and the cursor turns frame-level at-least-once replay into
// tuple-level exactly-once insertion.
func (s *Server) handle(conn net.Conn) error {
	hdrLen := 4
	if s.resume {
		hdrLen = resumeHeaderSize
		// Greet with the durable cursor: the sender replays from here.
		var g [8]byte
		binary.LittleEndian.PutUint64(g[:], uint64(s.cursor.Load()))
		if _, err := conn.Write(g[:]); err != nil {
			return fmt.Errorf("ingest: resume greeting: %w", err)
		}
	}
	if s.credits {
		// Advertise the credit window (after the cursor when both are on).
		var g [8]byte
		binary.LittleEndian.PutUint64(g[:], uint64(s.creditWindow))
		if _, err := conn.Write(g[:]); err != nil {
			return fmt.Errorf("ingest: credit greeting: %w", err)
		}
	}
	// Grants are per-connection state: a redialing sender resets its
	// balance from the fresh greeting, so nothing carries over. A grant
	// covers tuples consumed from the wire whatever the resume verdict —
	// duplicates and trims spent window space on the wire all the same.
	var pendingGrant int64
	grantThreshold := s.creditWindow / 4
	if grantThreshold < 1 {
		grantThreshold = 1
	}
	grant := func(tuples int64) error {
		if !s.credits {
			return nil
		}
		pendingGrant += tuples
		if pendingGrant < grantThreshold {
			return nil
		}
		// A write deadline keeps a sender that stopped reading grants from
		// pinning the serving slot forever (mirrors the read-side policy).
		if d := time.Duration(s.readTimeout.Load()); d > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(d))
		}
		var g [8]byte
		binary.LittleEndian.PutUint64(g[:], uint64(pendingGrant))
		if _, err := conn.Write(g[:]); err != nil {
			return fmt.Errorf("ingest: credit grant: %w", err)
		}
		s.creditGrants.Add(1)
		s.creditTuples.Add(pendingGrant)
		pendingGrant = 0
		return nil
	}
	var hdr [resumeHeaderSize]byte
	buf := make([]byte, 64<<10)
	for {
		s.armDeadline(conn)
		if _, err := io.ReadFull(conn, hdr[:hdrLen]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		n := int(binary.LittleEndian.Uint32(hdr[:4]))
		switch {
		case n == 0:
			// A zero-length frame carries no tuples; tolerate it as a
			// keepalive rather than killing the connection.
			s.emptyFrames.Add(1)
			continue
		case n > MaxFrame:
			s.oversizeFrames.Add(1)
			return fmt.Errorf("ingest: frame of %d bytes exceeds limit", n)
		case n%s.tupleSize != 0:
			s.raggedFrames.Add(1)
			return fmt.Errorf("ingest: frame of %d bytes is not whole %d-byte tuples", n, s.tupleSize)
		}
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		s.armDeadline(conn)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return fmt.Errorf("ingest: truncated frame: %w", err)
		}
		s.bytesIn.Add(int64(n))
		s.framesIn.Add(1)
		payload := buf
		if s.resume {
			// The payload has been consumed from the wire whatever the
			// verdict, so a discarded duplicate leaves the stream aligned.
			off := int64(binary.LittleEndian.Uint64(hdr[4:12]))
			cur := s.cursor.Load()
			end := off + int64(n/s.tupleSize)
			switch {
			case end <= cur:
				s.resumeDups.Add(1)
				if err := grant(int64(n / s.tupleSize)); err != nil {
					return err
				}
				continue
			case off > cur:
				s.resumeGaps.Add(1)
				return fmt.Errorf("ingest: resume frame at tuple %d leaves a gap (cursor %d)", off, cur)
			case off < cur:
				s.resumeTrims.Add(1)
				payload = payload[(cur-off)*int64(s.tupleSize):]
			}
			s.sinkMu.Lock()
			s.sink.Insert(payload)
			s.cursor.Store(end)
			s.sinkMu.Unlock()
			if err := grant(int64(n / s.tupleSize)); err != nil {
				return err
			}
			continue
		}
		s.sinkMu.Lock()
		s.sink.Insert(payload)
		s.sinkMu.Unlock()
		// Granting after the sink returns ties the credit window to real
		// downstream consumption: a sink blocked on engine admission stops
		// the grant flow, and the sender pauses one window later.
		if err := grant(int64(n / s.tupleSize)); err != nil {
			return err
		}
	}
}

func (s *Server) armDeadline(conn net.Conn) {
	if cd := s.closeDeadline.Load(); cd != 0 {
		// Shutting down: every remaining read shares the one fixed
		// close deadline, so a still-streaming sender cannot extend the
		// drain indefinitely.
		_ = conn.SetReadDeadline(time.Unix(0, cd))
		return
	}
	if d := time.Duration(s.readTimeout.Load()); d > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(d))
	} else {
		_ = conn.SetReadDeadline(time.Time{})
	}
}

// resumeHeaderSize is the resume-mode frame header: 4-byte payload
// length followed by the 8-byte absolute tuple offset of the frame's
// first tuple.
const resumeHeaderSize = 12

// Client sends tuple frames to an ingest server.
type Client struct {
	conn   net.Conn
	hdr    [resumeHeaderSize]byte
	inj    *fault.Injector
	resume bool
	tsz    int

	// Credit mode: window is the server's advertised window (tuples),
	// balance the remaining spendable credits. balance may go negative —
	// a frame larger than the balance is sent on overdraft once the
	// balance is positive, so jumbo frames cannot wedge the protocol —
	// and recovers from the grant stream. gbuf/gn reassemble a grant that
	// arrived split across reads.
	credits     bool
	window      int64
	balance     int64
	gbuf        [8]byte
	gn          int
	creditWaits int64
}

// Dial connects to an ingest server.
func Dial(addr string) (*Client, error) {
	c, _, err := dialStream(addr, 0, false, false)
	return c, err
}

// DialResume connects to a resume-mode server (EnableResume) and reads
// its greeting: the tuple index the server expects next. The caller
// replays its stream from that index using SendAt.
func DialResume(addr string, tupleSize int) (*Client, int64, error) {
	return dialStream(addr, tupleSize, true, false)
}

// DialCredits connects to a credit-mode server (EnableCredits). Send
// blocks while the credit balance is exhausted, pacing this sender to
// the server's real consumption rate.
func DialCredits(addr string, tupleSize int) (*Client, error) {
	c, _, err := dialStream(addr, tupleSize, false, true)
	return c, err
}

// DialResumeCredits connects to a server with both resume and credits
// enabled, returning the greeted replay cursor.
func DialResumeCredits(addr string, tupleSize int) (*Client, int64, error) {
	return dialStream(addr, tupleSize, true, true)
}

// dialStream is the one dial path: it reads whichever greeting fields
// the chosen protocol flags call for, in wire order (resume cursor, then
// credit window).
func dialStream(addr string, tupleSize int, resume, credits bool) (*Client, int64, error) {
	if (resume || credits) && tupleSize <= 0 {
		return nil, 0, fmt.Errorf("ingest: tuple size %d", tupleSize)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, 0, err
	}
	var cursor int64
	if resume {
		var g [8]byte
		if _, err := io.ReadFull(conn, g[:]); err != nil {
			conn.Close()
			return nil, 0, fmt.Errorf("ingest: resume greeting: %w", err)
		}
		cursor = int64(binary.LittleEndian.Uint64(g[:]))
	}
	c := &Client{conn: conn, resume: resume, credits: credits, tsz: tupleSize}
	if credits {
		var g [8]byte
		if _, err := io.ReadFull(conn, g[:]); err != nil {
			conn.Close()
			return nil, 0, fmt.Errorf("ingest: credit greeting: %w", err)
		}
		c.window = int64(binary.LittleEndian.Uint64(g[:]))
		c.balance = c.window
	}
	return c, cursor, nil
}

// Window returns the server-advertised credit window in tuples (credit
// mode; 0 otherwise).
func (c *Client) Window() int64 { return c.window }

// CreditWaits counts Sends that blocked waiting for a credit grant.
func (c *Client) CreditWaits() int64 { return c.creditWaits }

// SetFault arms seeded fault injection on this client: fault.IngestDrop
// makes Send abort mid-frame and close the connection (simulating a
// sender crash), fault.IngestStall inserts the armed delay before the
// abort (simulating a wedged sender tripping the server's read deadline).
func (c *Client) SetFault(inj *fault.Injector) { c.inj = inj }

// Send transmits one frame of whole tuples. On an injected fault the
// frame is truncated on the wire and the connection closed; the caller
// must redial and resend the whole frame (see DialReconnect) — the
// server never forwards a partial frame to its sink. Not valid on a
// resume-mode client, where every frame must carry its offset (SendAt).
func (c *Client) Send(tuples []byte) error {
	if c.resume {
		return errors.New("ingest: Send on a resume client (use SendAt)")
	}
	return c.send(tuples, 0)
}

// SendAt transmits one frame of whole tuples starting at absolute tuple
// index off. Resume-mode clients only.
func (c *Client) SendAt(tuples []byte, off int64) error {
	if !c.resume {
		return errors.New("ingest: SendAt on a non-resume client")
	}
	if len(tuples)%c.tsz != 0 {
		return fmt.Errorf("ingest: frame of %d bytes is not whole %d-byte tuples", len(tuples), c.tsz)
	}
	return c.send(tuples, off)
}

func (c *Client) send(tuples []byte, off int64) error {
	if len(tuples) == 0 {
		return nil
	}
	if len(tuples) > MaxFrame {
		return fmt.Errorf("ingest: frame of %d bytes exceeds limit", len(tuples))
	}
	if c.credits {
		if err := c.awaitCredit(); err != nil {
			return err
		}
	}
	hdr := c.header(tuples, off)
	if c.inj.Decide(fault.IngestDrop) {
		return c.abortMidFrame(hdr, tuples, 0, fault.IngestDrop)
	}
	if d := c.inj.Stall(fault.IngestStall); d > 0 {
		return c.abortMidFrame(hdr, tuples, d, fault.IngestStall)
	}
	if _, err := c.conn.Write(hdr); err != nil {
		return err
	}
	if _, err := c.conn.Write(tuples); err != nil {
		return err
	}
	if c.credits {
		// Spend only after the frame is fully on the wire: an aborted
		// frame never reaches the sink and is never granted back.
		c.balance -= int64(len(tuples) / c.tsz)
	}
	return nil
}

// awaitCredit first drains every grant already buffered on the
// connection (keeping the server's grant writes from ever backing up —
// the mutual-write deadlock a one-way drain would invite), then blocks
// for more until the balance is positive again.
func (c *Client) awaitCredit() error {
	if err := c.drainGrants(); err != nil {
		return err
	}
	if c.balance > 0 {
		return nil
	}
	c.creditWaits++
	for c.balance <= 0 {
		if _, err := c.readGrant(true); err != nil {
			return err
		}
	}
	return nil
}

// drainGrants consumes grants without blocking: it stops at the first
// read that finds the socket empty.
func (c *Client) drainGrants() error {
	for {
		got, err := c.readGrant(false)
		if err != nil {
			return err
		}
		if !got {
			return nil
		}
	}
}

// readGrant reads one 8-byte grant increment into the balance. In
// non-blocking mode a partial read is retained in gbuf (alignment
// survives) and (false, nil) reports an empty socket.
func (c *Client) readGrant(block bool) (bool, error) {
	if block {
		_ = c.conn.SetReadDeadline(time.Time{})
	} else {
		_ = c.conn.SetReadDeadline(time.Now())
	}
	for c.gn < len(c.gbuf) {
		n, err := c.conn.Read(c.gbuf[c.gn:])
		c.gn += n
		if err != nil {
			if !block {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					return false, nil
				}
			}
			return false, err
		}
	}
	c.gn = 0
	c.balance += int64(binary.LittleEndian.Uint64(c.gbuf[:]))
	return true, nil
}

// header fills the frame header for this client's mode and returns the
// wire slice.
func (c *Client) header(tuples []byte, off int64) []byte {
	binary.LittleEndian.PutUint32(c.hdr[:4], uint32(len(tuples)))
	if !c.resume {
		return c.hdr[:4]
	}
	binary.LittleEndian.PutUint64(c.hdr[4:12], uint64(off))
	return c.hdr[:resumeHeaderSize]
}

// abortMidFrame writes the frame header and half the payload, optionally
// stalls, then closes the connection and reports the injected failure.
func (c *Client) abortMidFrame(hdr, tuples []byte, stall time.Duration, site fault.Site) error {
	_, _ = c.conn.Write(hdr)
	_, _ = c.conn.Write(tuples[:len(tuples)/2])
	if stall > 0 {
		time.Sleep(stall)
	}
	_ = c.conn.Close()
	return fault.Errorf(site, "connection lost mid-frame (%d bytes)", len(tuples))
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
