// Package ingest streams serialised tuples into the engine over TCP, the
// way the paper's evaluation feeds SABER from a 10 Gbps NIC (§6.1).
//
// The wire protocol is minimal and allocation-friendly: a stream of
// frames, each a 4-byte little-endian payload length followed by that
// many bytes of whole tuples. Tuples stay in their binary schema layout
// end to end — the receiver inserts the payload bytes directly into the
// query's circular input buffer without deserialisation, preserving
// SABER's lazy-deserialisation discipline (§5.1).
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// MaxFrame bounds a single frame's payload (16 MiB).
const MaxFrame = 16 << 20

// Sink receives whole-tuple payloads in arrival order. A query handle's
// Insert method satisfies it.
type Sink interface {
	Insert(data []byte)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(data []byte)

// Insert implements Sink.
func (f SinkFunc) Insert(data []byte) { f(data) }

// Server accepts tuple streams and forwards them to a sink. Frames from
// different connections interleave at frame granularity; per-connection
// order is preserved. (The engine's per-query dispatcher requires a
// single logical inserter, which the server's sink lock provides.)
type Server struct {
	l         net.Listener
	sink      Sink
	tupleSize int

	sinkMu sync.Mutex
	wg     sync.WaitGroup
	closed atomic.Bool

	// Telemetry.
	bytesIn  atomic.Int64
	framesIn atomic.Int64
}

// NewServer wraps an existing listener. tupleSize is the stream schema's
// tuple size; frames that are not whole tuples are rejected and the
// offending connection closed.
func NewServer(l net.Listener, sink Sink, tupleSize int) (*Server, error) {
	if tupleSize <= 0 {
		return nil, fmt.Errorf("ingest: tuple size %d", tupleSize)
	}
	if sink == nil {
		return nil, errors.New("ingest: nil sink")
	}
	return &Server{l: l, sink: sink, tupleSize: tupleSize}, nil
}

// Listen starts a server on the given TCP address (e.g. "127.0.0.1:0").
func Listen(addr string, sink Sink, tupleSize int) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewServer(l, sink, tupleSize)
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.l.Addr() }

// BytesIn returns the total payload bytes received.
func (s *Server) BytesIn() int64 { return s.bytesIn.Load() }

// Frames returns the number of frames received.
func (s *Server) Frames() int64 { return s.framesIn.Load() }

// Serve accepts connections until Close. It returns nil after Close and
// the first accept error otherwise.
func (s *Server) Serve() error {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			if err := s.handle(conn); err != nil && !s.closed.Load() {
				// A malformed or broken connection only affects itself.
				_ = err
			}
		}()
	}
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.l.Close()
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) error {
	var hdr [4]byte
	buf := make([]byte, 64<<10)
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		switch {
		case n == 0:
			continue
		case n > MaxFrame:
			return fmt.Errorf("ingest: frame of %d bytes exceeds limit", n)
		case n%s.tupleSize != 0:
			return fmt.Errorf("ingest: frame of %d bytes is not whole %d-byte tuples", n, s.tupleSize)
		}
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(conn, buf); err != nil {
			return fmt.Errorf("ingest: truncated frame: %w", err)
		}
		s.bytesIn.Add(int64(n))
		s.framesIn.Add(1)
		s.sinkMu.Lock()
		s.sink.Insert(buf)
		s.sinkMu.Unlock()
	}
}

// Client sends tuple frames to an ingest server.
type Client struct {
	conn net.Conn
	hdr  [4]byte
}

// Dial connects to an ingest server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Send transmits one frame of whole tuples.
func (c *Client) Send(tuples []byte) error {
	if len(tuples) == 0 {
		return nil
	}
	if len(tuples) > MaxFrame {
		return fmt.Errorf("ingest: frame of %d bytes exceeds limit", len(tuples))
	}
	binary.LittleEndian.PutUint32(c.hdr[:], uint32(len(tuples)))
	if _, err := c.conn.Write(c.hdr[:]); err != nil {
		return err
	}
	_, err := c.conn.Write(tuples)
	return err
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
