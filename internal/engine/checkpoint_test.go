package engine

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"saber/internal/ckpt"
	"saber/internal/query"
	"saber/internal/window"
)

// ckptConfig is fastConfig plus a manual-only checkpoint store: tests cut
// epochs explicitly so barriers land at reproducible places.
func ckptConfig(workers int, dir string) Config {
	cfg := fastConfig(workers)
	cfg.CheckpointDir = dir
	cfg.CheckpointInterval = -1 // manual Checkpoint calls only
	return cfg
}

// scalarAggQuery aggregates without grouping, so its output is fully
// deterministic (grouped output order depends on table layout) while
// still exercising the assembler's cross-task pending-window state.
func scalarAggQuery(t *testing.T) *query.Query {
	t.Helper()
	return query.NewBuilder("scalar-agg").
		From("S", syn, window.NewCount(200, 50)).
		Aggregate(query.Count, nil, "n").
		MustBuild()
}

// crashRestoreRoundTrip feeds part of a stream into a checkpointing
// engine, cuts epochs along the way, "crashes" it (Close without Drain),
// restores a fresh engine from disk and replays the input from the saved
// cursor. It returns committed-prefix + post-recovery output.
func crashRestoreRoundTrip(t *testing.T, mkQuery func(*testing.T) *query.Query, dir string, stream []byte, killOff int) []byte {
	t.Helper()
	tsz := syn.TupleSize()

	engA := New(ckptConfig(4, dir))
	hA, err := engA.Register(mkQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	pre := collectOutput(hA)
	if err := engA.Start(); err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(11))
	chunks := 0
	for off := 0; off < killOff; {
		n := (1 + rnd.Intn(300)) * tsz
		if off+n > killOff {
			n = killOff - off
		}
		hA.Insert(stream[off : off+n])
		off += n
		if chunks++; chunks%5 == 0 {
			if _, err := engA.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
	}
	if _, err := engA.Checkpoint(); err != nil {
		t.Fatalf("mid-stream Checkpoint: %v", err)
	}
	// Crash: no Drain — queued tasks and buffered input are abandoned.
	engA.Close()
	committed := hA.Committed()
	if committed <= 0 {
		t.Fatal("nothing committed before the crash")
	}
	pre.mu.Lock()
	preOut := append([]byte(nil), pre.buf...)
	pre.mu.Unlock()
	if int64(len(preOut)) < committed {
		t.Fatalf("sink saw %d bytes but checkpoint committed %d", len(preOut), committed)
	}

	engB := New(ckptConfig(4, dir))
	hB, err := engB.Register(mkQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	post := collectOutput(hB)
	info, err := engB.Restore(dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if info.Epoch == 0 || info.Queries != 1 {
		t.Fatalf("restore info: %+v", info)
	}
	if hB.Committed() != committed {
		t.Fatalf("restored Committed() = %d, want %d", hB.Committed(), committed)
	}
	cursor := hB.InputCursor(0)
	if cursor < 0 || cursor*int64(tsz) > int64(killOff) {
		t.Fatalf("restored cursor %d outside fed range", cursor)
	}
	if err := engB.Start(); err != nil {
		t.Fatal(err)
	}
	// Replay from the cursor with different chunking: task boundaries are
	// chunking-independent, so the output must not care.
	rnd2 := rand.New(rand.NewSource(23))
	for off := cursor * int64(tsz); off < int64(len(stream)); {
		n := int64((1+rnd2.Intn(200))*tsz)
		if off+n > int64(len(stream)) {
			n = int64(len(stream)) - off
		}
		hB.Insert(stream[off : off+n])
		off += n
	}
	engB.Drain()
	for _, c := range engB.Invariants() {
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("post-restore invariant: %v", err)
		}
	}
	engB.Close()

	post.mu.Lock()
	defer post.mu.Unlock()
	return append(preOut[:committed:committed], post.buf...)
}

// TestCheckpointCrashRestoreSelection is the exactly-once contract for
// IStream output: pre-crash committed bytes + post-recovery bytes must
// equal an uninterrupted run, byte for byte.
func TestCheckpointCrashRestoreSelection(t *testing.T) {
	stream := genStream(30000, 3)
	got := crashRestoreRoundTrip(t, selQuery, t.TempDir(), stream, (len(stream)/syn.TupleSize()*2/3)*syn.TupleSize())
	want := directRun(t, selQuery(t), [2][]byte{stream, nil}, 128)
	if !bytes.Equal(got, want) {
		t.Fatalf("stitched output %d bytes, reference %d bytes (first divergence at %d)",
			len(got), len(want), firstDiff(got, want))
	}
}

// TestCheckpointCrashRestoreAggregation does the same for RStream output
// with cross-barrier pending windows (sliding count windows, so several
// windows straddle every epoch barrier).
func TestCheckpointCrashRestoreAggregation(t *testing.T) {
	stream := genStream(30000, 5)
	got := crashRestoreRoundTrip(t, scalarAggQuery, t.TempDir(), stream, (len(stream)/syn.TupleSize()*3/5)*syn.TupleSize())
	want := directRun(t, scalarAggQuery(t), [2][]byte{stream, nil}, 128)
	if !bytes.Equal(got, want) {
		t.Fatalf("stitched output %d bytes, reference %d bytes (first divergence at %d)",
			len(got), len(want), firstDiff(got, want))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestRestoreFallsBackPastCorruptEpoch corrupts the newest epoch on disk
// and expects recovery to settle on the previous one, surfacing the skip
// in saber.ckpt.corrupt.
func TestRestoreFallsBackPastCorruptEpoch(t *testing.T) {
	dir := t.TempDir()
	stream := genStream(8000, 7)

	engA := New(ckptConfig(4, dir))
	hA, err := engA.Register(selQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := engA.Start(); err != nil {
		t.Fatal(err)
	}
	half := len(stream) / 2
	half -= half % syn.TupleSize()
	hA.Insert(stream[:half])
	if _, err := engA.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	hA.Insert(stream[half:])
	snap2, err := engA.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	engA.Close()

	// Bit-flip the newest epoch file.
	path := filepath.Join(dir, "epoch-0000000000000002.ckpt")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x10
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	engB := New(ckptConfig(4, dir))
	if _, err := engB.Register(selQuery(t)); err != nil {
		t.Fatal(err)
	}
	info, err := engB.Restore(dir)
	if err != nil {
		t.Fatalf("Restore should fall back, got %v", err)
	}
	if info.Epoch != 1 || info.Skipped != 1 {
		t.Fatalf("restore info %+v, want epoch 1 with 1 skip", info)
	}
	if snap2.Epoch != 2 {
		t.Fatalf("second checkpoint numbered %d, want 2", snap2.Epoch)
	}
	if got := engB.Metrics().Snapshot().Counters["saber.ckpt.corrupt"]; got != 1 {
		t.Fatalf("saber.ckpt.corrupt = %d, want 1", got)
	}
}

// TestRestoreColdStart: an empty directory is a cold start, not an error
// class callers need to string-match.
func TestRestoreColdStart(t *testing.T) {
	dir := t.TempDir()
	eng := New(ckptConfig(2, dir))
	if _, err := eng.Register(selQuery(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Restore(dir); !errors.Is(err, ckpt.ErrNoCheckpoint) {
		t.Fatalf("Restore on empty dir: %v, want ErrNoCheckpoint", err)
	}
}

// TestAutomaticCheckpointLoop: with a positive interval the coordinator
// cuts epochs on its own between Start and Close.
func TestAutomaticCheckpointLoop(t *testing.T) {
	cfg := ckptConfig(2, t.TempDir())
	cfg.CheckpointInterval = 2 * 1e6 // 2ms
	cfg.CheckpointEveryTasks = 8
	eng := New(cfg)
	h, err := eng.Register(selQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	stream := genStream(40000, 9)
	step := 200 * syn.TupleSize()
	for off := 0; off < len(stream); off += step {
		end := off + step
		if end > len(stream) {
			end = len(stream)
		}
		h.Insert(stream[off:end])
	}
	// The coordinator runs on wall-clock ticks; wait for the first epoch
	// rather than racing Close against the ticker.
	deadline := time.Now().Add(5 * time.Second)
	for eng.Metrics().Snapshot().Counters["saber.ckpt.epochs"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("automatic coordinator cut no epochs within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	eng.Drain()
	eng.Close()
	if eng.Metrics().Snapshot().Counters["saber.ckpt.bytes"] == 0 {
		t.Fatal("no checkpoint bytes recorded")
	}
}
