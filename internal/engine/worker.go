package engine

import (
	"time"

	"saber/internal/exec"
	"saber/internal/sched"
	"saber/internal/task"
)

// cpuWorker is one CPU worker thread: it runs the full task lifecycle —
// schedule, execute, store result, assemble, emit — per paper §4's worker
// model, then pads the execution to the calibrated model's duration so
// the machine reproduces the paper's performance surface.
func (e *Engine) cpuWorker() {
	defer e.workers.Done()
	for {
		t := e.policy.Next(e.queue, sched.CPU)
		if t == nil {
			if e.queue.Closed() && e.queue.Len() == 0 {
				return
			}
			if e.stopped.Load() {
				return
			}
			time.Sleep(50 * time.Microsecond)
			continue
		}
		r := e.quer[t.Query]
		start := time.Now()
		res := r.plan.NewResult()
		if err := r.plan.Process(t.In, res); err != nil {
			// Compiled plans cannot fail at runtime; a failure here is an
			// engine bug, surfaced loudly.
			panic(err)
		}
		elapsed := e.padCPU(r, t, res, start)
		e.observe(t.Query, sched.CPU, elapsed)
		r.stats.tasksCPU.Add(1)
		r.result.deliver(t, res)
	}
}

// padCPU stretches the task to the model's CPU duration; the measured
// output selectivity scales the modelled per-tuple work (cheap when the
// guard predicate rejects most tuples, as in Fig. 16).
func (e *Engine) padCPU(r *registered, t *task.Task, res *exec.TaskResult, start time.Time) time.Duration {
	tuples := taskTuples(r, t)
	if e.cfg.DisablePad {
		return time.Since(start)
	}
	sel := measuredSelectivity(r, res, tuples)
	return e.waitPad(start, e.cfg.Model.CPUTaskTime(r.cost, tuples, sel))
}

func (e *Engine) waitPad(start time.Time, target time.Duration) time.Duration {
	elapsed := time.Since(start)
	if remaining := target - elapsed; remaining > 0 {
		time.Sleep(remaining)
		return target
	}
	return elapsed
}

func taskTuples(r *registered, t *task.Task) int {
	n := 0
	for i := 0; i < r.plan.NumInputs(); i++ {
		n += len(t.In[i].Data) / r.plan.InputSchema(i).TupleSize()
	}
	return n
}

// measuredSelectivity estimates the fraction of tuples that pass a Map
// plan's predicate, with a floor for the always-evaluated guard.
func measuredSelectivity(r *registered, res *exec.TaskResult, tuples int) float64 {
	if r.plan.Kind != exec.Map || tuples == 0 {
		return 1
	}
	osz := r.plan.OutputSchema().TupleSize()
	sel := float64(len(res.Stream)/osz) / float64(tuples)
	if sel < 0.02 {
		sel = 0.02
	}
	return sel
}

// gpuWorker is the single worker thread that fronts the GPGPU. To keep
// the five-stage pipeline busy it keeps up to the pipeline depth of tasks
// in flight, completing them in submission order (paper §5.2).
func (e *Engine) gpuWorker() {
	defer e.workers.Done()
	type inflight struct {
		t     *task.Task
		res   *exec.TaskResult
		done  <-chan error
		start time.Time
	}
	var fly []inflight
	const depth = 4

	for {
		for len(fly) < depth {
			t := e.policy.Next(e.queue, sched.GPU)
			if t == nil {
				break
			}
			r := e.quer[t.Query]
			res := r.plan.NewResult()
			fly = append(fly, inflight{
				t:     t,
				res:   res,
				done:  r.prog.Submit(t.In, res),
				start: time.Now(),
			})
		}
		if len(fly) == 0 {
			if e.queue.Closed() && e.queue.Len() == 0 {
				return
			}
			if e.stopped.Load() {
				return
			}
			time.Sleep(50 * time.Microsecond)
			continue
		}
		f := fly[0]
		fly = fly[1:]
		<-f.done
		r := e.quer[f.t.Query]
		e.observe(f.t.Query, sched.GPU, time.Since(f.start))
		r.stats.tasksGPU.Add(1)
		r.result.deliver(f.t, f.res)
	}
}
