package engine

import (
	"fmt"
	"time"

	"saber/internal/exec"
	"saber/internal/fault"
	"saber/internal/obs"
	"saber/internal/sched"
	"saber/internal/task"
)

// idleBackoff paces a worker's poll loop while the queue yields nothing:
// starting at 20µs and doubling to a 1ms cap, so an idle worker burns far
// fewer wakeups than a fixed-period spin while still reacting to new work
// within a millisecond. Any successful dequeue resets it.
type idleBackoff struct {
	d time.Duration
}

const (
	idleBackoffMin = 20 * time.Microsecond
	idleBackoffMax = time.Millisecond
)

func (b *idleBackoff) sleep() {
	if b.d == 0 {
		b.d = idleBackoffMin
	}
	time.Sleep(b.d)
	b.d *= 2
	if b.d > idleBackoffMax {
		b.d = idleBackoffMax
	}
}

func (b *idleBackoff) reset() { b.d = 0 }

// cpuWorker is one CPU worker thread: it runs the full task lifecycle —
// schedule, execute, store result, assemble, emit — per paper §4's worker
// model, then pads the execution to the calibrated model's duration so
// the machine reproduces the paper's performance surface.
//
// A failing task (plan error, injected fault, or a GPGPU task failed over
// to this class) goes through failTask: bounded retries, then quarantine.
// The worker may only exit once no GPU task is in flight — a device
// failure requeues its task here even after the queue has closed.
func (e *Engine) cpuWorker() {
	defer e.workers.Done()
	var idle idleBackoff
	for {
		t := e.policy.Next(e.queue, sched.CPU)
		if t == nil {
			if e.queue.Closed() && e.queue.Len() == 0 && e.gpuInflight.Load() == 0 {
				return
			}
			if e.stopped.Load() {
				return
			}
			idle.sleep()
			continue
		}
		idle.reset()
		r := e.queryAt(t.Query)
		if r.takeShedTask() {
			// ShedOldest's worker-side rung: admission granted a shed for
			// this query because all over-budget bytes were already cut
			// into tasks. Skip execution and deliver the gap; the drain
			// reclaims the task's ring span, which is what unblocks the
			// waiting Insert.
			if r.result.deliverGap(t) {
				n := int64(taskTuples(r, t))
				r.stats.tuplesShed.Add(n)
				r.over.shedOldest.Add(n)
			}
			continue
		}
		start := time.Now()
		t.Trace.SetStage(obs.StageQueue, time.Duration(start.UnixNano()-t.Created))
		res := r.plan.NewResult()
		err := r.plan.Process(t.In, res)
		if err == nil && e.cfg.Fault.Decide(fault.PlanExec) {
			err = fault.Errorf(fault.PlanExec, "injected plan failure (task %d, attempt %d)", t.ID, t.Attempts+1)
		}
		if err != nil {
			r.plan.ReleaseResult(res)
			e.failTask(t, sched.CPU, err)
			continue
		}
		elapsed := e.padCPU(r, t, res, start)
		t.Trace.SetProc(obs.ProcCPU)
		t.Trace.SetStage(obs.StageExecCPU, elapsed)
		e.observe(t.Query, sched.CPU, taskBytes(r, t), elapsed)
		if r.result.deliver(t, res) {
			r.stats.tasksCPU.Add(1)
		}
	}
}

// failTask handles one failed execution attempt: record it, pin a
// GPU-failed task to the CPU class, then either requeue for another
// attempt or — once MaxTaskRetries attempts have failed — quarantine the
// task by depositing a gap so assembly continues past its window range
// instead of wedging the drain frontier.
func (e *Engine) failTask(t *task.Task, p sched.Processor, err error) {
	r := e.queryAt(t.Query)
	r.stats.tasksFailed.Add(1)
	r.recordFailure(err)
	t.Attempts++
	if p == sched.GPU && e.cfg.CPUWorkers > 0 {
		t.CPUOnly = true
		r.stats.gpuFailovers.Add(1)
	}
	if int(t.Attempts) >= e.cfg.MaxTaskRetries {
		if r.result.deliverGap(t) {
			r.stats.tasksQuarantined.Add(1)
			r.stats.tuplesShed.Add(int64(taskTuples(r, t)))
		}
		return
	}
	r.stats.tasksRetried.Add(1)
	e.queue.Requeue(t)
}

// padCPU stretches the task to the model's CPU duration; the measured
// output selectivity scales the modelled per-tuple work (cheap when the
// guard predicate rejects most tuples, as in Fig. 16).
func (e *Engine) padCPU(r *registered, t *task.Task, res *exec.TaskResult, start time.Time) time.Duration {
	tuples := taskTuples(r, t)
	if e.cfg.DisablePad {
		return time.Since(start)
	}
	sel := measuredSelectivity(r, res, tuples)
	return e.waitPad(start, e.cfg.Model.CPUTaskTime(r.cost, tuples, sel))
}

func (e *Engine) waitPad(start time.Time, target time.Duration) time.Duration {
	elapsed := time.Since(start)
	if remaining := target - elapsed; remaining > 0 {
		time.Sleep(remaining)
		return target
	}
	return elapsed
}

func taskTuples(r *registered, t *task.Task) int {
	n := 0
	for i := 0; i < r.plan.NumInputs(); i++ {
		n += len(t.In[i].Data) / r.plan.InputSchema(i).TupleSize()
	}
	return n
}

// taskBytes is the task's total input volume — the x-axis of the
// matrix's ϕ-aware service-time fits.
func taskBytes(r *registered, t *task.Task) int64 {
	n := int64(0)
	for i := 0; i < r.plan.NumInputs(); i++ {
		n += int64(len(t.In[i].Data))
	}
	return n
}

// measuredSelectivity estimates the fraction of tuples that pass a Map
// plan's predicate, with a floor for the always-evaluated guard.
func measuredSelectivity(r *registered, res *exec.TaskResult, tuples int) float64 {
	if r.plan.Kind != exec.Map || tuples == 0 {
		return 1
	}
	osz := r.plan.OutputSchema().TupleSize()
	sel := float64(len(res.Stream)/osz) / float64(tuples)
	if sel < 0.02 {
		sel = 0.02
	}
	return sel
}

// gpuInflightEntry is one task submitted to the device pipeline.
type gpuInflightEntry struct {
	t     *task.Task
	res   *exec.TaskResult
	done  <-chan error
	start time.Time
	probe bool // this submission is the breaker's half-open probe
}

// gpuWorker is the single worker thread that fronts the GPGPU. To keep
// the five-stage pipeline busy it keeps up to the pipeline depth of tasks
// in flight, completing them in submission order (paper §5.2).
//
// Fault handling: every submission first asks the circuit breaker for
// permission; device-side failures and timeouts feed back into it and
// into failTask (GPU→CPU failover). A task that exceeds GPUTaskTimeout is
// failed over immediately, and a detached collector waits for the
// device's eventual late completion and discards it (counted as a
// duplicate) — the CPU retry owns the task from the moment it is failed
// over.
func (e *Engine) gpuWorker() {
	defer e.workers.Done()
	var fly []gpuInflightEntry
	const depth = 4
	var idle idleBackoff

	for {
		for len(fly) < depth {
			allow, probe := e.breaker.Acquire()
			if !allow {
				break
			}
			t := e.policy.Next(e.queue, sched.GPU)
			if t == nil {
				e.breaker.CancelProbe(probe)
				break
			}
			e.gpuInflight.Add(1)
			r := e.queryAt(t.Query)
			res := r.plan.NewResult()
			t.Trace.SetStage(obs.StageQueue, time.Duration(time.Now().UnixNano()-t.Created))
			fly = append(fly, gpuInflightEntry{
				t:     t,
				res:   res,
				done:  r.prog.SubmitTraced(t.In, res, t.Trace),
				start: time.Now(),
				probe: probe,
			})
			if probe {
				break // the single probe decides recovery; don't pile on
			}
		}
		if len(fly) == 0 {
			if e.queue.Closed() && e.queue.Len() == 0 {
				return
			}
			if e.stopped.Load() {
				return
			}
			idle.sleep()
			continue
		}
		idle.reset()
		f := fly[0]
		fly = fly[1:]
		if e.completeGPU(f) {
			// Head-of-line hang: the entries queued behind the hung task
			// sat stalled in the pipeline through no fault of their own,
			// so their submit stamps overstate their elapsed time. Re-arm
			// their deadlines from now, or a single hang would cascade
			// into up to pipeline-depth spurious failovers (and the
			// duplicate-discard work their late results then cause).
			now := time.Now()
			for i := range fly {
				fly[i].start = now
			}
		}
	}
}

// completeGPU waits for one in-flight device task (bounded by the
// remaining share of GPUTaskTimeout) and resolves it: success, device
// failure, or hang-timeout with failover and late-result collection.
// It reports whether the task timed out, so the caller can re-arm the
// deadlines of the entries that were queued behind it.
func (e *Engine) completeGPU(f gpuInflightEntry) (hung bool) {
	var err error
	timedOut := false
	if remaining := e.cfg.GPUTaskTimeout - time.Since(f.start); remaining <= 0 {
		select {
		case err = <-f.done:
		default:
			timedOut = true
		}
	} else {
		timer := time.NewTimer(remaining)
		select {
		case err = <-f.done:
			timer.Stop()
		case <-timer.C:
			timedOut = true
		}
	}

	r := e.queryAt(f.t.Query)
	switch {
	case timedOut:
		e.breaker.RecordFailure(f.probe)
		r.stats.gpuTimeouts.Add(1)
		e.failTask(f.t, sched.GPU, fmt.Errorf("gpu: task %d timed out after %v", f.t.ID, e.cfg.GPUTaskTimeout))
		// The device owns staged copies of the inputs and will eventually
		// complete; collect that late completion off-thread and discard it.
		// It must NOT be delivered: the failed-over CPU retry is now the
		// sole owner of the task's ring region, and a late delivery winning
		// the slot would advance the drain frontier and release that region
		// while the retry is still reading it.
		e.lateWG.Add(1)
		go func() {
			defer e.lateWG.Done()
			lateErr := <-f.done
			if lateErr == nil {
				r.result.discardDup(f.res)
			} else {
				r.plan.ReleaseResult(f.res)
			}
		}()
	case err != nil:
		e.breaker.RecordFailure(f.probe)
		r.plan.ReleaseResult(f.res)
		e.failTask(f.t, sched.GPU, err)
	default:
		e.breaker.RecordSuccess(f.probe)
		f.t.Trace.SetProc(obs.ProcGPU)
		e.observe(f.t.Query, sched.GPU, taskBytes(r, f.t), time.Since(f.start))
		if r.result.deliver(f.t, f.res) {
			r.stats.tasksGPU.Add(1)
		}
	}
	e.gpuInflight.Add(-1)
	return timedOut
}
