package engine

import (
	"fmt"

	"saber/internal/inv"
)

// Invariant and debug hooks for the stress harness (internal/harness).
// resultStage satisfies the inv.Checker contract structurally; Engine
// aggregates every concurrency-bearing subsystem it owns.

// Invariants returns the invariant checkers of everything the engine
// wires together: each query's result stage and input ring buffers, the
// scheduling policy (when it exposes invariants) and the GPGPU device.
// Call it after Start, when the policy exists; the harness polls the
// returned checkers while the engine runs.
func (e *Engine) Invariants() []inv.Checker {
	var cs []inv.Checker
	for _, r := range e.queries() {
		if r.dropped.Load() {
			continue
		}
		cs = append(cs, r.result)
		r.bufMu.Lock()
		for i := 0; i < r.plan.NumInputs(); i++ {
			if ring := r.ins[i].ring; ring != nil {
				cs = append(cs, ring)
			}
		}
		r.bufMu.Unlock()
	}
	if c, ok := e.policy.(inv.Checker); ok {
		cs = append(cs, c)
	}
	if e.breaker != nil {
		cs = append(cs, e.breaker)
	}
	if e.cfg.GPU != nil {
		cs = append(cs, e.cfg.GPU)
	}
	return cs
}

// InvariantName implements the inv.Checker contract.
func (rs *resultStage) InvariantName() string {
	return fmt.Sprintf("engine.result[q%d]", rs.r.idx)
}

// CheckInvariants verifies the result stage's reorder bookkeeping with
// race-safe load orderings (both counters are monotonic, and the drainer
// advances next before drained, so loading drained first can never
// observe drained > next):
//
//   - drained <= next <= tasks created;
//   - no overflow entry sits behind the drain frontier (an entry is
//     removed under overflowMu before next advances past its ID, so a
//     behind-frontier entry is a lost result, not a race);
//   - slot control flags are free, full or claimed (a claimed slot is a
//     deliverer mid-publish; it transitions to full or back to free).
func (rs *resultStage) CheckInvariants() error {
	drained := rs.drained.Load()
	next := rs.next.Load()
	if drained > next {
		return fmt.Errorf("drained %d ahead of next %d", drained, next)
	}
	if seq := rs.r.taskSeq.Load(); next > seq {
		return fmt.Errorf("next %d ahead of %d tasks created", next, seq)
	}

	frontier := rs.next.Load()
	rs.overflowMu.Lock()
	var stuck int64 = -1
	for id := range rs.overflow {
		if id < frontier {
			stuck = id
			break
		}
	}
	rs.overflowMu.Unlock()
	if stuck >= 0 {
		return fmt.Errorf("overflow entry %d behind drain frontier %d (lost result)", stuck, frontier)
	}

	for i := range rs.slots {
		st := rs.slots[i].state.Load()
		if st != slotFree && st != slotFull && st != slotClaimed {
			return fmt.Errorf("slot %d control flag %d", i, st)
		}
	}
	return nil
}

// Debug is a point-in-time snapshot of one query's concurrency counters,
// exposed for the stress harness and for debugging.
type Debug struct {
	// TasksCreated, Drained and NextID mirror the dispatch/drain
	// frontier: after a clean Drain all three are equal.
	TasksCreated int64
	Drained      int64
	NextID       int64
	// OverflowDeliveries counts results that arrived from beyond the
	// reordering window and took the overflow-map path.
	OverflowDeliveries int64
	// OverflowPending is the number of results currently parked in the
	// overflow map.
	OverflowPending int
	// DuplicateResults counts deliveries discarded by the exactly-once
	// guard (retries and late results losing the slot claim).
	DuplicateResults int64
	// RingWraps, RingStart and RingEnd describe each input ring buffer.
	RingWraps []int64
	RingStart []int64
	RingEnd   []int64
}

// Debug snapshots the query's concurrency counters.
func (h *Handle) Debug() Debug {
	r := h.r
	rs := r.result
	rs.overflowMu.Lock()
	pending := len(rs.overflow)
	rs.overflowMu.Unlock()
	d := Debug{
		TasksCreated:       r.taskSeq.Load(),
		Drained:            rs.drained.Load(),
		NextID:             rs.next.Load(),
		OverflowDeliveries: rs.overflowed.Value(),
		OverflowPending:    pending,
		DuplicateResults:   rs.duplicates.Value(),
	}
	r.bufMu.Lock()
	for i := 0; i < r.plan.NumInputs(); i++ {
		if ring := r.ins[i].ring; ring != nil {
			d.RingWraps = append(d.RingWraps, ring.Wraps())
			d.RingStart = append(d.RingStart, ring.Start())
			d.RingEnd = append(d.RingEnd, ring.End())
		}
	}
	r.bufMu.Unlock()
	return d
}

// CheckQuiesced verifies the end-of-stream invariants after Drain: every
// created task was drained exactly once, the overflow map and result
// slots are empty, and all input data has been released back to the
// rings. Calling it while the engine is still processing reports
// violations spuriously — it is a post-Drain check.
func (h *Handle) CheckQuiesced() error {
	r := h.r
	rs := r.result
	seq, drained, next := r.taskSeq.Load(), rs.drained.Load(), rs.next.Load()
	if drained != seq || next != seq {
		return fmt.Errorf("drain frontier %d/%d != %d tasks created", drained, next, seq)
	}
	rs.overflowMu.Lock()
	pending := len(rs.overflow)
	rs.overflowMu.Unlock()
	if pending != 0 {
		return fmt.Errorf("%d results stuck in overflow map", pending)
	}
	for i := range rs.slots {
		if rs.slots[i].state.Load() != 0 {
			return fmt.Errorf("result slot %d still full", i)
		}
	}
	r.bufMu.Lock()
	defer r.bufMu.Unlock()
	for i := 0; i < r.plan.NumInputs(); i++ {
		if ring := r.ins[i].ring; ring != nil {
			if sz := ring.Size(); sz != 0 {
				return fmt.Errorf("input %d ring retains %d bytes", i, sz)
			}
		}
	}
	return nil
}

// InjectSlotLeak marks result slot 0 full without a matching deposit —
// exactly the state CheckQuiesced's slot sweep exists to catch. It is a
// mutation hook for harness self-tests (a checker that cannot see a
// planted leak guards nothing): call it only on a quiesced query, since
// on a live one the phantom slot would wedge the drainer.
func (h *Handle) InjectSlotLeak() {
	h.r.result.slots[0].state.Store(slotFull)
}
