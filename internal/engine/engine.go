// Package engine is SABER's core: it wires the four processing stages of
// paper §4 — dispatching, scheduling, execution and result handling — into
// a running hybrid stream processing engine over the substrate packages
// (ringbuf, window, exec, gpu, sched, model).
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"saber/internal/adapt"
	"saber/internal/ckpt"
	"saber/internal/exec"
	"saber/internal/fault"
	"saber/internal/gpu"
	"saber/internal/model"
	"saber/internal/obs"
	"saber/internal/overload"
	"saber/internal/query"
	"saber/internal/sched"
	"saber/internal/task"
)

// Config tunes the engine. The zero value plus defaults reproduces the
// paper's setup (15 CPU workers, 1 MB query tasks, HLS scheduling).
type Config struct {
	// CPUWorkers is the number of CPU worker threads. Default 15 (the
	// paper's 16-core server keeps one core for dispatch). A negative
	// value means zero CPU workers (GPGPU-only execution; requires GPU).
	CPUWorkers int
	// GPU is the (simulated) GPGPU device; nil runs CPU-only.
	GPU *gpu.Device
	// TaskSize is ϕ, the query task size in bytes. Default 1 MiB.
	TaskSize int
	// InputBufferSize is each input's circular buffer capacity in bytes
	// (power of two). Default max(16 MiB, 16 × TaskSize rounded up).
	InputBufferSize int
	// ResultSlots is the per-query result buffer size (power of two),
	// which must exceed the worker count. Default 256.
	ResultSlots int
	// Policy selects the scheduling policy: "hls" (default), "fcfs" or
	// "static" (with StaticAssign).
	Policy string
	// StaticAssign maps query index → processor for the static policy.
	StaticAssign []sched.Processor
	// SwitchThreshold is HLS's switch threshold. Default 10.
	SwitchThreshold int
	// MatrixAlpha is the EWMA weight of new throughput observations.
	// Default 0.25.
	MatrixAlpha float64
	// Model is the calibrated performance model; see internal/model.
	// A zero TimeScale selects model.Default(). Set DisablePad to run at
	// native speed instead (correctness tests).
	Model      model.Params
	DisablePad bool

	// RowLayout disables the columnar ring mirror: tasks then carry only
	// the packed row view, reproducing the pre-columnar engine. The
	// default (false) shreds ingested tuples into per-column segments
	// alongside the row ring and hands every task zero-copy column views;
	// the differential tests compare the two layouts byte for byte.
	RowLayout bool

	// MaxTaskRetries bounds how many times a failing task is re-executed
	// before it is quarantined (its window range is recorded as a gap and
	// assembly continues past it). Default 3.
	MaxTaskRetries int
	// GPUTaskTimeout is how long the GPU worker waits for a submitted task
	// before declaring the device hung and failing the task over to the
	// CPU. Default 2s.
	GPUTaskTimeout time.Duration
	// BreakerThreshold is the number of consecutive GPGPU task failures
	// that open the circuit breaker (hybrid hls/fcfs modes only).
	// Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before letting a
	// half-open probe through. Default 50ms.
	BreakerCooldown time.Duration
	// Fault optionally injects plan-execution faults on the CPU path; the
	// GPU device takes its own injector via gpu.Config. nil runs
	// fault-free.
	Fault *fault.Injector

	// Adapt, when non-nil, enables adaptive task sizing: a control loop
	// resizes ϕ within [Adapt.MinPhi, Adapt.MaxPhi] from the engine's
	// trace histograms (see internal/adapt). TaskSize becomes the
	// starting point rather than a constant. The controller requires its
	// own registry view, so engines sharing a Metrics registry must not
	// both enable Adapt.
	Adapt *adapt.Config

	// Overload, when non-nil, enables overload protection: per-query
	// queue-bytes admission budgets, tiered load shedding (see
	// overload.Policy) and a stall watchdog. With Adapt also set, shedding
	// actuates only as the adapt ladder's last rung — when ϕ is pinned at
	// its floor and the tail p99 still violates the SLO; without Adapt it
	// actuates directly on budget pressure. See internal/overload.
	Overload *overload.Config

	// CheckpointDir, when non-empty, enables epoch checkpointing into the
	// given directory (created if missing): periodic crash-consistent
	// snapshots recovery rebuilds from via Restore. See internal/ckpt.
	CheckpointDir string
	// CheckpointInterval is the automatic epoch period. 0 selects the
	// default (500ms) when CheckpointDir is set; a negative value disables
	// the automatic coordinator (epochs are cut only by explicit
	// Checkpoint calls — tests and final-checkpoint-on-shutdown paths).
	CheckpointInterval time.Duration
	// CheckpointEveryTasks, when positive, additionally cuts an epoch as
	// soon as this many new tasks have drained since the last one,
	// without waiting out the full interval.
	CheckpointEveryTasks int
	// CheckpointKeep is how many epochs the store retains (older files
	// are garbage-collected). Default 3.
	CheckpointKeep int

	// Metrics is the observability registry every engine counter,
	// histogram and mirror registers in. nil gives the engine a private
	// registry (telemetry is always on; its hot-path cost is a few
	// uncontended atomic adds per task). Share one registry across
	// engines only if their query indices do not collide.
	Metrics *obs.Registry
	// TraceRing bounds the tracer's postmortem ring of recent task
	// traces. 0 selects the default (128).
	TraceRing int
}

func (c Config) withDefaults() Config {
	if c.CPUWorkers == 0 {
		c.CPUWorkers = 15
	}
	if c.CPUWorkers < 0 {
		c.CPUWorkers = 0
	}
	if c.TaskSize <= 0 {
		c.TaskSize = 1 << 20
	}
	if c.InputBufferSize <= 0 {
		c.InputBufferSize = 16 << 20
		for c.InputBufferSize < 16*c.TaskSize {
			c.InputBufferSize <<= 1
		}
	}
	if c.ResultSlots <= 0 {
		c.ResultSlots = 256
	}
	// The result buffer is indexed by task ID modulo its size, so round a
	// non-power-of-two request up rather than mis-masking.
	if c.ResultSlots&(c.ResultSlots-1) != 0 {
		v := 1
		for v < c.ResultSlots {
			v <<= 1
		}
		c.ResultSlots = v
	}
	for c.ResultSlots <= c.CPUWorkers+1 {
		c.ResultSlots <<= 1
	}
	if c.Policy == "" {
		c.Policy = "hls"
	}
	if c.SwitchThreshold <= 0 {
		c.SwitchThreshold = 10
	}
	if c.MatrixAlpha <= 0 {
		c.MatrixAlpha = 0.25
	}
	if c.Model.TimeScale == 0 {
		c.Model = model.Default()
	}
	if c.MaxTaskRetries <= 0 {
		c.MaxTaskRetries = 3
	}
	if c.GPUTaskTimeout <= 0 {
		c.GPUTaskTimeout = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 50 * time.Millisecond
	}
	if c.CheckpointDir != "" {
		if c.CheckpointInterval == 0 {
			c.CheckpointInterval = 500 * time.Millisecond
		}
		if c.CheckpointKeep <= 0 {
			c.CheckpointKeep = 3
		}
	}
	if c.Overload != nil {
		ov := c.Overload.WithDefaults()
		c.Overload = &ov
	}
	return c
}

// Engine executes registered continuous queries over heterogeneous
// processors.
type Engine struct {
	cfg Config

	// quer is the dense query table, indexed by task.Query. It is
	// copy-on-write behind an atomic pointer so workers index it lock-free
	// while the catalog registers queries into a running engine.
	// Deregistered queries stay in the table as tombstones (dropped flag
	// set) — indices of live tasks and scheduler rows must stay valid
	// forever. regMu serialises every mutation (Register, Deregister,
	// Pause, Resume) and guards byName.
	regMu  sync.Mutex
	quer   atomic.Pointer[[]*registered]
	byName map[string]*registered

	// stmtSource, when set (SetStatementSource), contributes the
	// catalog's DDL statement log to every checkpoint, and switches
	// Restore to catalog mode: snapshot queries with no registered match
	// are skipped instead of refused (the replayed statement log governs
	// the query set).
	stmtSource atomic.Value // func() []string

	queue  *task.Queue
	matrix *sched.Matrix
	policy sched.Policy

	// reg and tracer are the observability spine: every counter in this
	// package lives in reg, and tracer stamps each task's lifecycle (see
	// metrics.go and package obs).
	reg    *obs.Registry
	tracer *obs.Tracer

	// breaker is the GPGPU circuit breaker; nil in single-processor modes
	// and under policies that cannot reroute (static, greedy).
	breaker *sched.Breaker

	// gpuInflight counts tasks currently owned by the GPU worker. CPU
	// workers may only exit once it reaches zero: a failing GPU task is
	// requeued (pinned CPUOnly) even after the queue closed, and someone
	// must still be around to run it.
	gpuInflight atomic.Int64

	// lateWG tracks goroutines waiting on timed-out GPU submissions so a
	// hung device's eventual (discarded) late results are accounted for
	// before Close returns.
	lateWG sync.WaitGroup

	// taskSize is the live ϕ in bytes: initialized from Config.TaskSize
	// and rewritten by SetTaskSize (the adapt controller, or tests
	// exercising mid-stream resizes). The dispatcher reads it on every
	// cut, so a resize takes effect at the next task boundary.
	taskSize atomic.Int64
	// phiFloor is the largest registered tuple size: a cut of fewer
	// bytes would emit zero-tuple tasks and spin the dispatch loop.
	// Atomic because live registration raises it while SetTaskSize reads.
	phiFloor atomic.Int64

	adaptCtl  *adapt.Controller
	adaptStop chan struct{}
	adaptWG   sync.WaitGroup

	// Overload-protection state (see internal/overload and
	// registered.admit). quiesced flips at the start of Drain/Close:
	// a blocked Insert observes it within one bounded-wait step and
	// aborts (its unadmitted remainder accounted as admission-shed)
	// instead of deadlocking shutdown. shedArmed gates the shedding
	// policies: always armed without Adapt, else toggled by the adapt
	// controller's last-rung Overloaded signal.
	quiesced  atomic.Bool
	shedArmed atomic.Bool
	stalls    *obs.Counter
	stallDump atomic.Value // string: latest watchdog postmortem
	watchStop chan struct{}
	watchWG   sync.WaitGroup

	// Checkpoint state (see checkpoint.go): the store opens lazily on the
	// first epoch, the epoch counter continues across Restore, and the
	// automatic coordinator runs between Start and Close.
	ckptOnce  sync.Once
	ckptStore *ckpt.Store
	ckptErr   error
	ckptEpoch atomic.Int64
	ckptStop  chan struct{}
	ckptWG    sync.WaitGroup
	ckm       ckptMetrics

	started atomic.Bool
	stopped atomic.Bool
	workers sync.WaitGroup

	dispatchMu sync.Mutex // serialises the dispatching stage (paper §4.1)
}

// New creates an engine.
func New(cfg Config) *Engine {
	e := &Engine{
		cfg:    cfg.withDefaults(),
		byName: make(map[string]*registered),
		queue:  task.NewQueue(),
	}
	e.reg = e.cfg.Metrics
	if e.reg == nil {
		e.reg = obs.NewRegistry()
	}
	e.tracer = obs.NewTracer(e.reg, e.cfg.TraceRing)
	e.taskSize.Store(int64(e.cfg.TaskSize))
	e.ckm = newCkptMetrics(e.reg)
	e.stalls = e.reg.Counter("saber.overload.stalls")
	return e
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// queries returns the current query table (tombstones included). The
// slice is immutable once published; workers index it lock-free.
func (e *Engine) queries() []*registered {
	if p := e.quer.Load(); p != nil {
		return *p
	}
	return nil
}

// queryAt returns the query registered at dense index i (a task.Query).
func (e *Engine) queryAt(i int) *registered { return e.queries()[i] }

// RegisterOptions carries per-query registration overrides.
type RegisterOptions struct {
	// Overload overrides the engine-wide overload-protection config for
	// this query alone (per-stream WITH (max_queue_bytes=...,
	// shed_policy=...) specs from the BQL frontend). nil inherits
	// Config.Overload.
	Overload *overload.Config
}

// Register compiles and registers a query. Before Start it only extends
// the table; on a running engine it additionally grows the scheduler
// (matrix and HLS rows) and binds the query's metric mirrors, so the
// first Insert on the returned handle dispatches like any other — no
// restart, no disturbance to sibling queries. Live registration is
// refused under the static policy, whose assignment array is fixed at
// Start.
func (e *Engine) Register(q *query.Query) (*Handle, error) {
	return e.RegisterWith(q, RegisterOptions{})
}

// RegisterWith is Register with per-query options.
func (e *Engine) RegisterWith(q *query.Query, opts RegisterOptions) (*Handle, error) {
	e.regMu.Lock()
	defer e.regMu.Unlock()
	if e.stopped.Load() {
		return nil, fmt.Errorf("engine: Register after Close")
	}
	live := e.started.Load()
	if live && e.cfg.Policy == "static" {
		return nil, fmt.Errorf("engine: cannot register on a running engine under the static policy")
	}
	if _, dup := e.byName[q.Name]; dup {
		return nil, fmt.Errorf("engine: duplicate query %q", q.Name)
	}
	plan, err := exec.Compile(q)
	if err != nil {
		return nil, err
	}
	ov := e.cfg.Overload
	if opts.Overload != nil {
		o := opts.Overload.WithDefaults()
		ov = &o
	}
	cur := e.queries()
	r := newRegistered(e, len(cur), plan, ov)
	if e.cfg.GPU != nil {
		r.prog = e.cfg.GPU.Compile(plan)
	}
	for i := 0; i < plan.NumInputs(); i++ {
		if ts := int64(plan.InputSchema(i).TupleSize()); ts > e.phiFloor.Load() {
			e.phiFloor.Store(ts)
		}
	}
	if live {
		// Size the scheduler for the new index before the handle escapes:
		// no task of this query can reach the queue until the caller holds
		// the handle, so Grow-then-publish is race-free.
		e.matrix.Grow(len(cur) + 1)
		if h, ok := e.policy.(*sched.HLS); ok {
			h.Grow(len(cur) + 1)
		}
	}
	next := make([]*registered, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = r
	e.quer.Store(&next)
	e.byName[q.Name] = r
	if live {
		e.registerQueryMirrors(r)
		e.registerRateMirrors(r.idx)
		// A live-registered query with its own shedding policy arms the
		// actuation gate exactly as an engine-wide config would at Start.
		if ov != nil && ov.Policy != overload.ShedNone && e.cfg.Adapt == nil {
			e.shedArmed.Store(true)
		}
	}
	return &Handle{r: r}, nil
}

// Pause quiesces a query at a task boundary: inserts keep admitting into
// the ring (backpressure applies) but no further tasks are cut, and Pause
// returns only once every already-cut task has drained. Sibling queries
// are untouched. Pausing a paused query is a no-op.
func (e *Engine) Pause(name string) error {
	e.regMu.Lock()
	r, ok := e.byName[name]
	e.regMu.Unlock()
	if !ok {
		return fmt.Errorf("engine: pause: unknown query %q", name)
	}
	if r.paused.Swap(true) {
		return nil
	}
	if e.started.Load() {
		r.awaitTaskBoundary()
	}
	return nil
}

// Resume lifts a Pause and immediately cuts any backlog the rings
// accumulated while paused.
func (e *Engine) Resume(name string) error {
	e.regMu.Lock()
	r, ok := e.byName[name]
	e.regMu.Unlock()
	if !ok {
		return fmt.Errorf("engine: resume: unknown query %q", name)
	}
	if !r.paused.Swap(false) {
		return nil
	}
	if e.started.Load() {
		r.cutBacklog()
	}
	return nil
}

// Deregister drops a query from a running engine: concurrent inserts stop
// admitting (their unadmitted remainder stays with the caller), buffered
// residue is flushed as a final task, every outstanding task drains, open
// windows flush to the sink, and the query's ring and column-store memory
// is released. The table entry remains as a tombstone so sibling task
// indices and scheduler rows stay valid; the name becomes reusable
// immediately. Conservation holds at the drop boundary: everything
// admitted was either emitted or accounted shed.
func (e *Engine) Deregister(name string) error {
	e.regMu.Lock()
	defer e.regMu.Unlock()
	r, ok := e.byName[name]
	if !ok {
		return fmt.Errorf("engine: deregister: unknown query %q", name)
	}
	delete(e.byName, name)
	r.dropped.Store(true)
	if e.started.Load() {
		// Flush the sub-ϕ residue. insMu inside dispatchTail serialises
		// against any insert mid-call: it finishes its current chunk, then
		// its next dropped check bails out.
		e.dispatchMu.Lock()
		r.dispatchTail()
		e.dispatchMu.Unlock()
		r.awaitTaskBoundary()
		r.result.flush()
	}
	r.release()
	return nil
}

// SetStatementSource installs fn as the catalog's DDL statement log: its
// result is embedded in every checkpoint so a restart can replay the
// registered statements exactly. fn must be safe to call concurrently
// and must not acquire locks that are held while calling engine
// lifecycle methods (the catalog keeps its log in an atomic value).
// Setting a source also switches Restore to catalog mode: snapshot
// queries with no registered match are skipped, not refused, because the
// replayed statement log governs the query set.
func (e *Engine) SetStatementSource(fn func() []string) { e.stmtSource.Store(fn) }

func (e *Engine) statementSource() func() []string {
	if fn, ok := e.stmtSource.Load().(func() []string); ok {
		return fn
	}
	return nil
}

// Start launches the worker threads. The scheduling policy is fixed at
// this point; queries may still be registered, paused and dropped on the
// running engine (see Register, Pause, Deregister).
func (e *Engine) Start() error {
	e.regMu.Lock()
	defer e.regMu.Unlock()
	if e.started.Swap(true) {
		return fmt.Errorf("engine: already started")
	}
	n := len(e.queries())
	if n == 0 {
		return fmt.Errorf("engine: no queries registered")
	}
	if e.cfg.CPUWorkers == 0 && e.cfg.GPU == nil {
		return fmt.Errorf("engine: no processors configured")
	}
	gpuCap := 0.0
	if e.cfg.GPU != nil {
		gpuCap = 4 // pipeline depth converts latency into throughput
	}
	e.matrix = sched.NewMatrix(n, 1000, e.cfg.MatrixAlpha, float64(e.cfg.CPUWorkers), gpuCap)

	switch e.cfg.Policy {
	case "hls":
		if e.cfg.GPU == nil || e.cfg.CPUWorkers == 0 {
			// A single processor class needs no lookahead.
			e.policy = sched.FCFS{}
		} else {
			h := sched.NewHLS(n, e.matrix, e.cfg.SwitchThreshold)
			// Keep out-of-order execution within the reordering window of
			// the per-query result buffers.
			h.MaxLookahead = e.cfg.ResultSlots / 2
			e.policy = h
		}
	case "fcfs":
		e.policy = sched.FCFS{}
	case "greedy":
		if e.cfg.GPU == nil || e.cfg.CPUWorkers == 0 {
			return fmt.Errorf("engine: greedy policy needs both processor classes")
		}
		e.policy = sched.Greedy{C: e.matrix}
	case "static":
		if len(e.cfg.StaticAssign) != n {
			return fmt.Errorf("engine: static policy needs %d assignments", n)
		}
		e.policy = sched.Static{Assign: e.cfg.StaticAssign}
	default:
		return fmt.Errorf("engine: unknown policy %q", e.cfg.Policy)
	}

	// The circuit breaker only makes sense when failed GPU work can be
	// rerouted: hybrid mode under a policy that lets the CPU absorb it.
	// Static and greedy assignments would starve GPU-pinned queries while
	// the breaker is open, so they run without one.
	if e.cfg.GPU != nil && e.cfg.CPUWorkers > 0 {
		switch e.policy.(type) {
		case *sched.HLS:
			e.breaker = sched.NewBreaker(e.cfg.BreakerThreshold, e.cfg.BreakerCooldown)
			e.policy.(*sched.HLS).Breaker = e.breaker
		case sched.FCFS:
			e.breaker = sched.NewBreaker(e.cfg.BreakerThreshold, e.cfg.BreakerCooldown)
		}
	}

	// Seed the fresh matrix with any rates a Restore carried over, so
	// scheduling resumes from the crashed process's learned crossover
	// instead of the uniform prior.
	for _, r := range e.queries() {
		if r.restoredRates[0] > 0 || r.restoredRates[1] > 0 {
			e.matrix.SeedRates(r.idx, r.restoredRates[0], r.restoredRates[1])
		}
	}

	e.registerMirrors()

	if e.cfg.Adapt != nil {
		// The matrix needs to know ϕ from the first task so its rates
		// track the size tasks will actually have.
		e.matrix.SetPhi(int(e.taskSize.Load()))
		e.adaptCtl = adapt.NewController(*e.cfg.Adapt, int(e.taskSize.Load()), e.reg, func(phi int) {
			e.SetTaskSize(phi)
		})
		e.SetTaskSize(e.adaptCtl.Phi()) // fold controller clamping back in
		e.adaptStop = make(chan struct{})
		e.adaptWG.Add(1)
		go e.adaptLoop()
	}

	for i := 0; i < e.cfg.CPUWorkers; i++ {
		e.workers.Add(1)
		go e.cpuWorker()
	}
	if e.cfg.GPU != nil {
		e.workers.Add(1)
		go e.gpuWorker()
	}

	if e.cfg.CheckpointDir != "" && e.cfg.CheckpointInterval > 0 {
		e.ckptStop = make(chan struct{})
		e.ckptWG.Add(1)
		go e.ckptLoop()
	}

	// Without an adapt controller there is no SLO ladder to descend: a
	// configured shedding policy — engine-wide or any query's per-stream
	// override — arms directly on budget pressure. With Adapt, adaptLoop
	// arms it only at the ladder's last rung.
	if e.cfg.Adapt == nil {
		for _, r := range e.queries() {
			if r.ov != nil && r.ov.Policy != overload.ShedNone {
				e.shedArmed.Store(true)
				break
			}
		}
	}
	if e.cfg.Overload != nil {
		e.watchStop = make(chan struct{})
		e.watchWG.Add(1)
		go e.watchLoop()
	}
	return nil
}

// quiescing reports whether the engine has begun shutting down
// (Drain or Close): admission must stop blocking and bail out.
func (e *Engine) quiescing() bool {
	return e.stopped.Load() || e.quiesced.Load()
}

// shedActive reports whether the configured shedding policy may actuate
// right now.
func (e *Engine) shedActive() bool { return e.shedArmed.Load() }

// watchLoop runs the stall watchdog between Start and Close: it probes
// drain progress and, when input is pending but the frontier has not
// advanced for Overload.StallTimeout, counts a stall and captures a
// postmortem trace dump (StallReport).
func (e *Engine) watchLoop() {
	defer e.watchWG.Done()
	ov := e.cfg.Overload
	w := overload.NewWatchdog(ov.StallTimeout)
	tick := time.NewTicker(ov.StallInterval)
	defer tick.Stop()
	for {
		select {
		case <-e.watchStop:
			return
		case now := <-tick.C:
			var p overload.Progress
			for _, r := range e.queries() {
				if r.dropped.Load() {
					continue
				}
				p.Drained += r.result.drained.Load()
				r.bufMu.Lock()
				for i := 0; i < r.plan.NumInputs(); i++ {
					if ring := r.ins[i].ring; ring != nil {
						p.PendingBytes += ring.Size()
					}
				}
				r.bufMu.Unlock()
			}
			p.QueueLen = int64(e.queue.Len())
			if rep, ok := w.Observe(now, p); ok {
				e.stalls.Add(1)
				e.stallDump.Store(e.formatStall(rep))
			}
		}
	}
}

// formatStall renders a watchdog report plus the tracer's postmortem
// ring into a human-readable dump.
func (e *Engine) formatStall(rep overload.StallReport) string {
	s := fmt.Sprintf("engine stalled for %v: %d bytes pending, %d tasks queued, drain frontier frozen at %d\nrecent task traces:\n",
		rep.Stalled.Round(time.Millisecond), rep.Last.PendingBytes, rep.Last.QueueLen, rep.Last.Drained)
	for _, tr := range e.tracer.Recent() {
		s += fmt.Sprintf("  %+v\n", tr)
	}
	return s
}

// StallReport returns the most recent watchdog postmortem, or "" when no
// stall has been detected. The saber.overload.stalls counter carries the
// volume.
func (e *Engine) StallReport() string {
	if s, ok := e.stallDump.Load().(string); ok {
		return s
	}
	return ""
}

// adaptLoop ticks the ϕ controller until Close. The controller itself
// is pure; this loop only supplies real time and registry snapshots.
func (e *Engine) adaptLoop() {
	defer e.adaptWG.Done()
	interval := e.cfg.Adapt.Interval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-e.adaptStop:
			return
		case <-tick.C:
			d := e.adaptCtl.Tick(e.reg.Snapshot())
			// Last rung of the adapt ladder: ϕ pinned at its floor with
			// the tail p99 still over the SLO arms the shedding policy;
			// any recovery disarms it. Without a policy configured the
			// signal is telemetry only (saber.adapt.overloaded).
			if ov := e.cfg.Overload; ov != nil && ov.Policy != overload.ShedNone {
				e.shedArmed.Store(d.Overloaded)
			}
		}
	}
}

// Drain dispatches any buffered partial batches as final tasks, waits for
// the queue to empty and all results to be assembled, then flushes still-
// open windows. Call once, after all Insert calls.
func (e *Engine) Drain() {
	// Flag quiescence before taking the dispatch lock: a concurrent
	// Insert blocked on backpressure (which holds the ingest lock
	// dispatchTail needs) observes the flag within one bounded-wait step
	// and aborts, so Drain cannot deadlock behind it. The aborted call's
	// unadmitted remainder is accounted as admission-shed.
	e.quiesced.Store(true)
	e.dispatchMu.Lock()
	for _, r := range e.queries() {
		if r.dropped.Load() {
			continue
		}
		r.dispatchTail()
	}
	e.queue.Close()
	e.dispatchMu.Unlock()

	for _, r := range e.queries() {
		if r.dropped.Load() {
			continue
		}
		r.waitDrained()
	}
}

// Close stops the workers and waits for any late results from timed-out
// GPGPU tasks to be collected and discarded. Drain first for a clean
// shutdown; Close alone abandons queued work. Close the engine before
// closing the GPU device — the late-result collectors block on the
// device's pipeline.
func (e *Engine) Close() {
	// As in Drain: unblock any Insert stuck on backpressure before
	// closing the queue, so Close never deadlocks behind a full ring
	// whose consumers are about to exit.
	e.quiesced.Store(true)
	if e.stopped.Swap(true) {
		return
	}
	if e.watchStop != nil {
		close(e.watchStop)
		e.watchWG.Wait()
	}
	if e.adaptStop != nil {
		close(e.adaptStop)
		e.adaptWG.Wait()
	}
	if e.ckptStop != nil {
		close(e.ckptStop)
		e.ckptWG.Wait()
	}
	e.queue.Close()
	e.workers.Wait()
	e.lateWG.Wait()
}

// Matrix exposes the throughput matrix (telemetry, Fig. 16).
func (e *Engine) Matrix() *sched.Matrix { return e.matrix }

// Breaker exposes the GPGPU circuit breaker, or nil when the engine runs
// without one (single-processor modes, static/greedy policies).
func (e *Engine) Breaker() *sched.Breaker { return e.breaker }

// Policy exposes the scheduling policy chosen at Start (telemetry), or
// nil before Start.
func (e *Engine) Policy() sched.Policy { return e.policy }

// QueueLen reports the current task queue depth.
func (e *Engine) QueueLen() int { return e.queue.Len() }

// TaskSize returns the live ϕ in bytes.
func (e *Engine) TaskSize() int { return int(e.taskSize.Load()) }

// SetTaskSize resizes ϕ. The dispatcher reads the new size at its next
// cut, so the change lands on a task boundary and never splits a task
// mid-flight; window boundaries are ϕ-independent, so results are
// byte-identical to a fixed-ϕ run (see the differential tests).
//
// The requested size is clamped to stay runnable: at least one tuple of
// the widest registered input (a smaller cut would emit empty tasks and
// spin the dispatch loop), and at most a quarter of the input ring (a
// larger one could leave the ring too full to ever complete a cut,
// deadlocking Insert's backpressure).
func (e *Engine) SetTaskSize(phi int) int {
	if floor := int(e.phiFloor.Load()); phi < floor {
		phi = floor
	}
	if max := e.cfg.InputBufferSize / 4; phi > max {
		phi = max
	}
	if phi <= 0 {
		phi = e.cfg.TaskSize
	}
	e.taskSize.Store(int64(phi))
	if e.matrix != nil && e.cfg.Adapt != nil {
		e.matrix.SetPhi(phi)
	}
	if e.cfg.GPU != nil {
		e.cfg.GPU.SetBatchHint(phi)
	}
	return phi
}

// observe routes a completion into the throughput matrix, with the
// task's input volume attached so the matrix's ϕ-aware service-time
// fits learn how cost scales with size.
func (e *Engine) observe(q int, p sched.Processor, bytes int64, d time.Duration) {
	if e.matrix != nil {
		e.matrix.ObserveSized(q, p, bytes, d.Seconds())
	}
}
