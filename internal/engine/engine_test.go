package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"saber/internal/exec"
	"saber/internal/expr"
	"saber/internal/gpu"
	"saber/internal/model"
	"saber/internal/query"
	"saber/internal/sched"
	"saber/internal/schema"
	"saber/internal/window"
)

var syn = schema.MustNew(
	schema.Field{Name: "timestamp", Type: schema.Int64},
	schema.Field{Name: "a", Type: schema.Float32},
	schema.Field{Name: "b", Type: schema.Int32},
	schema.Field{Name: "c", Type: schema.Int32},
)

func genStream(n int, seed int64) []byte {
	rnd := rand.New(rand.NewSource(seed))
	b := schema.NewTupleBuilder(syn, n)
	for i := 0; i < n; i++ {
		b.Begin().
			Timestamp(int64(i)).
			Float32("a", float32(rnd.Intn(1000))/10).
			Int32("b", int32(rnd.Intn(8))).
			Int32("c", int32(rnd.Intn(50)))
	}
	return b.Bytes()
}

// fastConfig runs at native speed with small tasks so tests exercise many
// task boundaries quickly.
func fastConfig(workers int) Config {
	return Config{
		CPUWorkers: workers,
		TaskSize:   4096, // 128 tuples per task
		DisablePad: true,
		Model:      model.Default(),
	}
}

// collectOutput registers an ordered collector sink.
func collectOutput(h *Handle) *struct {
	mu  sync.Mutex
	buf []byte
} {
	c := &struct {
		mu  sync.Mutex
		buf []byte
	}{}
	h.OnResult(func(rows []byte) {
		c.mu.Lock()
		c.buf = append(c.buf, rows...)
		c.mu.Unlock()
	})
	return c
}

// directRun computes the reference output with the exec layer directly
// (single-threaded, already verified against naive references in
// internal/exec tests).
func directRun(t *testing.T, q *query.Query, streams [2][]byte, batchTuples int) []byte {
	t.Helper()
	p, err := exec.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	asm := exec.NewAssembler(p)
	var out []byte
	var pos [2]int
	prevTS := [2]int64{window.NoPrev, window.NoPrev}
	more := func() bool {
		for i := 0; i < p.NumInputs(); i++ {
			if pos[i]*p.InputSchema(i).TupleSize() < len(streams[i]) {
				return true
			}
		}
		return false
	}
	for more() {
		var in [2]exec.Batch
		for i := 0; i < p.NumInputs(); i++ {
			s := p.InputSchema(i)
			tsz := s.TupleSize()
			total := len(streams[i]) / tsz
			n := batchTuples
			if pos[i]+n > total {
				n = total - pos[i]
			}
			data := streams[i][pos[i]*tsz : (pos[i]+n)*tsz]
			in[i] = exec.Batch{Data: data, Ctx: window.Context{
				FirstIndex:    int64(pos[i]),
				PrevTimestamp: prevTS[i],
			}}
			if n > 0 {
				prevTS[i] = s.Timestamp(data[(n-1)*tsz:])
			}
			pos[i] += n
		}
		res := p.NewResult()
		if err := p.Process(in, res); err != nil {
			t.Fatal(err)
		}
		out = asm.Drain(res, out)
		p.ReleaseResult(res)
	}
	return asm.Flush(out)
}

func selQuery(t *testing.T) *query.Query {
	t.Helper()
	return query.NewBuilder("sel").
		From("S", syn, window.NewCount(64, 32)).
		Where(expr.Cmp{Op: expr.Lt, Left: expr.Col("b"), Right: expr.IntConst(4)}).
		MustBuild()
}

func TestEndToEndSelection(t *testing.T) {
	eng := New(fastConfig(4))
	h, err := eng.Register(selQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	stream := genStream(20000, 1)
	// Insert in uneven chunks.
	rnd := rand.New(rand.NewSource(2))
	tsz := syn.TupleSize()
	for off := 0; off < len(stream); {
		n := (1 + rnd.Intn(300)) * tsz
		if off+n > len(stream) {
			n = len(stream) - off
		}
		h.Insert(stream[off : off+n])
		off += n
	}
	eng.Drain()
	eng.Close()

	want := directRun(t, selQuery(t), [2][]byte{stream, nil}, 128)
	if !bytes.Equal(out.buf, want) {
		t.Fatalf("selection output: got %d bytes, want %d", len(out.buf), len(want))
	}
	st := h.Stats()
	if st.BytesIn != int64(len(stream)) || st.BytesOut != int64(len(want)) {
		t.Errorf("stats: %+v", st)
	}
	if st.TasksCreated == 0 || st.TasksCPU != st.TasksCreated || st.TasksGPU != 0 {
		t.Errorf("task stats: %+v", st)
	}
	if st.AvgLatency <= 0 {
		t.Errorf("latency: %+v", st.AvgLatency)
	}
}

func aggQuery(t *testing.T) *query.Query {
	t.Helper()
	return query.NewBuilder("agg").
		From("S", syn, window.NewCount(200, 50)).
		Aggregate(query.Sum, expr.Col("a"), "s").
		Aggregate(query.Count, nil, "n").
		GroupBy("b").
		MustBuild()
}

func sortedRows(s *schema.Schema, out []byte) []string {
	osz := s.TupleSize()
	var rows []string
	for i := 0; i+osz <= len(out); i += osz {
		var b []byte
		for f := 0; f < s.NumFields(); f++ {
			b = fmt.Appendf(b, "%.3f;", s.ReadFloat(out[i:i+osz], f))
		}
		rows = append(rows, string(b))
	}
	sort.Strings(rows)
	return rows
}

func TestEndToEndGroupedAggregation(t *testing.T) {
	eng := New(fastConfig(8))
	h, err := eng.Register(aggQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	stream := genStream(30000, 3)
	h.Insert(stream)
	eng.Drain()
	eng.Close()

	want := directRun(t, aggQuery(t), [2][]byte{stream, nil}, 128)
	got := sortedRows(h.OutputSchema(), out.buf)
	ref := sortedRows(h.OutputSchema(), want)
	if len(got) != len(ref) {
		t.Fatalf("rows: got %d want %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("row %d: got %s want %s", i, got[i], ref[i])
		}
	}
}

// TestOutputOrdering: with many workers completing tasks out of order,
// the result stage must emit in task order — for an aggregation the
// emitted window timestamps are non-decreasing.
func TestOutputOrdering(t *testing.T) {
	q := query.NewBuilder("ord").
		From("S", syn, window.NewCount(100, 100)).
		Aggregate(query.Count, nil, "n").
		MustBuild()
	eng := New(fastConfig(12))
	h, _ := eng.Register(q)
	var mu sync.Mutex
	var timestamps []int64
	osz := q.OutputSchema().TupleSize()
	h.OnResult(func(rows []byte) {
		mu.Lock()
		for i := 0; i+osz <= len(rows); i += osz {
			timestamps = append(timestamps, q.OutputSchema().Timestamp(rows[i:]))
		}
		mu.Unlock()
	})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	h.Insert(genStream(50000, 4))
	eng.Drain()
	eng.Close()
	if len(timestamps) != 500 {
		t.Fatalf("windows = %d, want 500", len(timestamps))
	}
	for i := 1; i < len(timestamps); i++ {
		if timestamps[i] < timestamps[i-1] {
			t.Fatalf("out-of-order window results: %d after %d", timestamps[i], timestamps[i-1])
		}
	}
}

func TestEndToEndJoin(t *testing.T) {
	right := schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "w", Type: schema.Int32},
	)
	mkQuery := func() *query.Query {
		return query.NewBuilder("join").
			FromAs("L", "L", syn, window.NewCount(32, 32)).
			FromAs("R", "R", right, window.NewCount(32, 32)).
			Join(expr.Cmp{Op: expr.Eq, Left: expr.Col("b"), Right: expr.Col("w")}).
			MustBuild()
	}
	n := 4096
	lb := schema.NewTupleBuilder(syn, n)
	rb := schema.NewTupleBuilder(right, n)
	rnd := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		lb.Begin().Timestamp(int64(i)).Int32("b", int32(rnd.Intn(4)))
		rb.Begin().Timestamp(int64(i)).Int32("w", int32(rnd.Intn(4)))
	}
	eng := New(fastConfig(4))
	h, err := eng.Register(mkQuery())
	if err != nil {
		t.Fatal(err)
	}
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	// Interleave the two inputs in modest chunks.
	ltz, rtz := syn.TupleSize(), right.TupleSize()
	for off := 0; off < n; off += 100 {
		end := off + 100
		if end > n {
			end = n
		}
		h.InsertInto(0, lb.Bytes()[off*ltz:end*ltz])
		h.InsertInto(1, rb.Bytes()[off*rtz:end*rtz])
	}
	eng.Drain()
	eng.Close()

	want := directRun(t, mkQuery(), [2][]byte{lb.Bytes(), rb.Bytes()}, 96)
	got := sortedRows(h.OutputSchema(), out.buf)
	ref := sortedRows(h.OutputSchema(), want)
	if len(got) != len(ref) {
		t.Fatalf("rows: got %d want %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestHybridUsesBothProcessors(t *testing.T) {
	dev := gpu.Open(gpu.Config{SMs: 2, Model: model.Default().Scaled(1e-6)})
	defer dev.Close()
	cfg := fastConfig(4)
	cfg.GPU = dev
	cfg.SwitchThreshold = 3
	eng := New(cfg)
	h, err := eng.Register(selQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	stream := genStream(60000, 6)
	h.Insert(stream)
	eng.Drain()
	eng.Close()

	want := directRun(t, selQuery(t), [2][]byte{stream, nil}, 128)
	if !bytes.Equal(out.buf, want) {
		t.Fatalf("hybrid output differs: %d vs %d bytes", len(out.buf), len(want))
	}
	st := h.Stats()
	if st.TasksCPU == 0 || st.TasksGPU == 0 {
		t.Fatalf("both processors should contribute: %+v", st)
	}
	if st.GPUShare() <= 0 || st.GPUShare() >= 1 {
		t.Fatalf("GPUShare = %g", st.GPUShare())
	}
}

func TestTailFlushEmitsOpenWindows(t *testing.T) {
	q := query.NewBuilder("tail").
		From("S", syn, window.NewCount(1000000, 1000000)). // never closes
		Aggregate(query.Count, nil, "n").
		MustBuild()
	eng := New(fastConfig(2))
	h, _ := eng.Register(q)
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	h.Insert(genStream(5000, 7))
	eng.Drain()
	eng.Close()
	osz := q.OutputSchema().TupleSize()
	if len(out.buf) != osz {
		t.Fatalf("flush emitted %d bytes, want one row", len(out.buf))
	}
	if got := q.OutputSchema().ReadInt(out.buf, 1); got != 5000 {
		t.Fatalf("count = %d", got)
	}
}

func TestBackpressureSmallBuffer(t *testing.T) {
	cfg := fastConfig(2)
	cfg.InputBufferSize = 1 << 16 // 64 KiB: forces ring reuse + wrap
	cfg.TaskSize = 1 << 12
	eng := New(cfg)
	h, _ := eng.Register(selQuery(t))
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	stream := genStream(100000, 8)
	h.Insert(stream)
	eng.Drain()
	eng.Close()
	want := directRun(t, selQuery(t), [2][]byte{stream, nil}, 128)
	if !bytes.Equal(out.buf, want) {
		t.Fatalf("output under backpressure differs: %d vs %d", len(out.buf), len(want))
	}
}

func TestConfigValidationAndPolicies(t *testing.T) {
	if err := New(fastConfig(1)).Start(); err == nil {
		t.Error("Start with no queries succeeded")
	}

	eng := New(fastConfig(1))
	if _, err := eng.Register(selQuery(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Register(selQuery(t)); err == nil {
		t.Error("duplicate registration succeeded")
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err == nil {
		t.Error("double Start succeeded")
	}
	// Live registration: a query registered after Start joins the
	// running engine.
	if _, err := eng.Register(aggQuery(t)); err != nil {
		t.Errorf("Register after Start failed: %v", err)
	}
	eng.Drain()
	eng.Close()
	eng.Close() // idempotent
	if _, err := eng.Register(selQuery(t)); err == nil {
		t.Error("Register after Close succeeded")
	}

	bad := fastConfig(1)
	bad.Policy = "banana"
	e2 := New(bad)
	if _, err := e2.Register(selQuery(t)); err != nil {
		t.Fatal(err)
	}
	if err := e2.Start(); err == nil {
		t.Error("unknown policy accepted")
	}

	st := fastConfig(1)
	st.Policy = "static"
	e3 := New(st)
	if _, err := e3.Register(selQuery(t)); err != nil {
		t.Fatal(err)
	}
	if err := e3.Start(); err == nil {
		t.Error("static policy without assignments accepted")
	}
	st.StaticAssign = []sched.Processor{sched.CPU}
	e4 := New(st)
	h, _ := e4.Register(selQuery(t))
	if err := e4.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := e4.Register(aggQuery(t)); err == nil {
		t.Error("live registration under the static policy succeeded")
	}
	h.Insert(genStream(1000, 9))
	e4.Drain()
	e4.Close()
	if h.Stats().TasksCPU == 0 {
		t.Error("static CPU assignment executed nothing")
	}
}

func TestInsertValidation(t *testing.T) {
	eng := New(fastConfig(1))
	h, _ := eng.Register(selQuery(t))
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		eng.Drain()
		eng.Close()
	}()
	h.Insert(nil) // no-op
	defer func() {
		if recover() == nil {
			t.Error("partial tuple insert did not panic")
		}
	}()
	h.Insert(make([]byte, 7))
}
