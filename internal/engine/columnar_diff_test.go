package engine

import (
	"bytes"
	"math/rand"
	"slices"
	"testing"

	"saber/internal/expr"
	"saber/internal/fault"
	"saber/internal/gpu"
	"saber/internal/model"
	"saber/internal/obs"
	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/window"
)

// Differential layout tests: the same stream through two engines — one
// forced onto the row-only seed path (Config.RowLayout) and one on the
// default columnar mirror — must produce byte-identical output. The row
// path is the reference implementation; these tests are what lets the
// columnar fast path claim correctness rather than just speed (see
// DESIGN.md §11).

// runLayout feeds one query through a fresh engine in the given layout
// and returns the collected output plus the handle (for telemetry
// assertions after Close).
func runLayout(t *testing.T, mk func() *query.Query, cfg Config, feed func(h *Handle, eng *Engine)) ([]byte, *Handle) {
	t.Helper()
	eng := New(cfg)
	h, err := eng.Register(mk())
	if err != nil {
		t.Fatal(err)
	}
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	feed(h, eng)
	eng.Drain()
	eng.Close()
	if err := h.CheckQuiesced(); err != nil {
		t.Errorf("layout row=%v: %v", cfg.RowLayout, err)
	}
	return out.buf, h
}

// chunkedFeed inserts stream into side 0 in uneven seeded chunks, so
// task cuts land at varied offsets relative to the columnar segments.
func chunkedFeed(stream []byte, seed int64) func(h *Handle, eng *Engine) {
	return func(h *Handle, eng *Engine) {
		rnd := rand.New(rand.NewSource(seed))
		tsz := syn.TupleSize()
		for off := 0; off < len(stream); {
			n := (1 + rnd.Intn(300)) * tsz
			if off+n > len(stream) {
				n = len(stream) - off
			}
			h.Insert(stream[off : off+n])
			off += n
		}
	}
}

// colStats sums the gather telemetry across a handle's inputs.
func colStats(h *Handle) (views, copies int64) {
	for i := 0; i < h.r.plan.NumInputs(); i++ {
		views += h.r.ins[i].colViews.Load()
		copies += h.r.ins[i].colCopies.Load()
	}
	return
}

// projQuery is a filter + projection whose writers all read carried
// fields — the RowFreeMap shape that lets the GPU stage columns with no
// row gather at all.
func projQuery(t *testing.T) *query.Query {
	t.Helper()
	return query.NewBuilder("proj").
		From("S", syn, window.NewCount(64, 32)).
		Where(expr.Cmp{Op: expr.Lt, Left: expr.Col("c"), Right: expr.IntConst(30)}).
		Select("timestamp", "a", "b").
		SelectAs(expr.Arith{Op: expr.Add, Left: expr.Col("c"), Right: expr.IntConst(1)}, "c1").
		MustBuild()
}

// TestColumnarDiffSelection: ordered selection output — the strictest
// comparison (bytes.Equal, no sorting). An identity-projection selection
// streams whole rows for its output, so the plan reads no columns and
// projection pushdown skips the column store entirely on BOTH layouts:
// the differential check here is that pruning changes nothing about the
// bytes produced.
func TestColumnarDiffSelection(t *testing.T) {
	stream := genStream(40000, 101)
	want := directRun(t, selQuery(t), [2][]byte{stream, nil}, 128)

	rowCfg := fastConfig(4)
	rowCfg.RowLayout = true
	rowOut, rowH := runLayout(t, func() *query.Query { return selQuery(t) }, rowCfg, chunkedFeed(stream, 102))
	colOut, colH := runLayout(t, func() *query.Query { return selQuery(t) }, fastConfig(4), chunkedFeed(stream, 102))

	if !bytes.Equal(rowOut, want) {
		t.Fatalf("row layout diverged from direct run: got %d bytes, want %d", len(rowOut), len(want))
	}
	if !bytes.Equal(colOut, rowOut) {
		t.Fatalf("columnar output != row output: got %d bytes, want %d", len(colOut), len(rowOut))
	}
	if colH.r.ins[0].cols != nil {
		t.Error("identity-projection plan reads no columns, yet the engine built a column store")
	}
	if rowH.r.ins[0].cols != nil {
		t.Error("RowLayout engine built a column store")
	}
}

// TestColumnarDiffProjection: computed writers (NumProgram over a
// column) alongside forwarded fields, still byte-identical and ordered.
func TestColumnarDiffProjection(t *testing.T) {
	stream := genStream(30000, 103)
	want := directRun(t, projQuery(t), [2][]byte{stream, nil}, 128)

	rowCfg := fastConfig(4)
	rowCfg.RowLayout = true
	rowOut, _ := runLayout(t, func() *query.Query { return projQuery(t) }, rowCfg, chunkedFeed(stream, 104))
	colOut, colH := runLayout(t, func() *query.Query { return projQuery(t) }, fastConfig(4), chunkedFeed(stream, 104))

	if !bytes.Equal(rowOut, want) {
		t.Fatalf("row layout diverged from direct run: got %d bytes, want %d", len(rowOut), len(want))
	}
	if !bytes.Equal(colOut, rowOut) {
		t.Fatalf("columnar output != row output: got %d bytes, want %d", len(colOut), len(rowOut))
	}
	if v, _ := colStats(colH); v == 0 {
		t.Error("columnar run elided no gathers")
	}
}

// TestColumnarDiffAggregation: grouped sliding-window aggregation —
// window boundaries come from window.Context, so a columnar off-by-one
// in FirstIndex addressing shows up as shifted panes here.
func TestColumnarDiffAggregation(t *testing.T) {
	stream := genStream(30000, 105)
	want := directRun(t, aggQuery(t), [2][]byte{stream, nil}, 128)

	rowCfg := fastConfig(8)
	rowCfg.RowLayout = true
	rowOut, _ := runLayout(t, func() *query.Query { return aggQuery(t) }, rowCfg, chunkedFeed(stream, 106))
	colOut, _ := runLayout(t, func() *query.Query { return aggQuery(t) }, fastConfig(8), chunkedFeed(stream, 106))

	sch := aggQuery(t).OutputSchema()
	ref := sortedRows(sch, want)
	for name, out := range map[string][]byte{"row": rowOut, "columnar": colOut} {
		got := sortedRows(sch, out)
		if len(got) != len(ref) {
			t.Fatalf("%s rows: got %d want %d", name, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%s row %d: got %s want %s", name, i, got[i], ref[i])
			}
		}
	}
}

// TestColumnarDiffJoin: two inputs, each with its own column store and
// its own tuple geometry.
func TestColumnarDiffJoin(t *testing.T) {
	right := schema.MustNew(
		schema.Field{Name: "timestamp", Type: schema.Int64},
		schema.Field{Name: "w", Type: schema.Int32},
	)
	mk := func() *query.Query {
		return query.NewBuilder("join").
			FromAs("L", "L", syn, window.NewCount(32, 32)).
			FromAs("R", "R", right, window.NewCount(32, 32)).
			Join(expr.Cmp{Op: expr.Eq, Left: expr.Col("b"), Right: expr.Col("w")}).
			MustBuild()
	}
	n := 4096
	lb := schema.NewTupleBuilder(syn, n)
	rb := schema.NewTupleBuilder(right, n)
	rnd := rand.New(rand.NewSource(107))
	for i := 0; i < n; i++ {
		lb.Begin().Timestamp(int64(i)).Int32("b", int32(rnd.Intn(4)))
		rb.Begin().Timestamp(int64(i)).Int32("w", int32(rnd.Intn(4)))
	}
	ltz, rtz := syn.TupleSize(), right.TupleSize()
	feed := func(h *Handle, eng *Engine) {
		for off := 0; off < n; off += 100 {
			end := off + 100
			if end > n {
				end = n
			}
			h.InsertInto(0, lb.Bytes()[off*ltz:end*ltz])
			h.InsertInto(1, rb.Bytes()[off*rtz:end*rtz])
		}
	}

	rowCfg := fastConfig(4)
	rowCfg.RowLayout = true
	rowOut, _ := runLayout(t, mk, rowCfg, feed)
	colOut, colH := runLayout(t, mk, fastConfig(4), feed)

	want := directRun(t, mk(), [2][]byte{lb.Bytes(), rb.Bytes()}, 96)
	sch := mk().OutputSchema()
	ref := sortedRows(sch, want)
	for name, out := range map[string][]byte{"row": rowOut, "columnar": colOut} {
		got := sortedRows(sch, out)
		if len(got) != len(ref) {
			t.Fatalf("%s rows: got %d want %d", name, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%s row %d mismatch", name, i)
			}
		}
	}
	if v, c := colStats(colH); v+c == 0 {
		t.Error("join columnar run produced no column views")
	}
}

// TestColumnarDiffResize: mid-stream ϕ resizes move the task cuts; the
// column views must track the new extents exactly, including the wrap
// fallback once the absolute indices lap the segment capacity.
func TestColumnarDiffResize(t *testing.T) {
	stream := genStream(40000, 108)
	want := directRun(t, selQuery(t), [2][]byte{stream, nil}, 128)

	for _, seed := range []int64{1, 2, 3} {
		rowCfg := fastConfig(4)
		rowCfg.RowLayout = true
		var rowApplied, colApplied []int
		rowOut, _ := runLayout(t, func() *query.Query { return selQuery(t) }, rowCfg,
			func(h *Handle, eng *Engine) { rowApplied = insertResizing(h, eng, stream, 12, seed) })
		colOut, _ := runLayout(t, func() *query.Query { return selQuery(t) }, fastConfig(4),
			func(h *Handle, eng *Engine) { colApplied = insertResizing(h, eng, stream, 12, seed) })

		if !bytes.Equal(rowOut, want) {
			t.Fatalf("seed %d: row layout diverged under resizes %v", seed, rowApplied)
		}
		if !bytes.Equal(colOut, want) {
			t.Fatalf("seed %d: columnar layout diverged under resizes %v: got %d bytes, want %d",
				seed, colApplied, len(colOut), len(want))
		}
	}
}

// TestColumnarDiffGPUFailover: injected kernel faults push tasks through
// GPU→CPU failover while the columnar path is live — retried tasks carry
// their column views with them, and the GPU stages RowFreeMap tasks as
// raw column segments (no gather). Output must stay byte-identical.
func TestColumnarDiffGPUFailover(t *testing.T) {
	stream := genStream(60000, 109)
	want := directRun(t, projQuery(t), [2][]byte{stream, nil}, 128)

	run := func(rowLayout bool) ([]byte, *gpu.Device, *fault.Injector) {
		inj := fault.New(55)
		inj.Arm(fault.GPUKernel, fault.Spec{Rate: 0.3, Limit: 200})
		dev := gpu.Open(gpu.Config{SMs: 2, Model: model.Default().Scaled(1e-6), Fault: inj})
		cfg := fastConfig(4)
		cfg.GPU = dev
		cfg.RowLayout = rowLayout
		out, _ := runLayout(t, func() *query.Query { return projQuery(t) }, cfg,
			func(h *Handle, eng *Engine) { insertResizing(h, eng, stream, 15, 21) })
		dev.Close()
		return out, dev, inj
	}

	rowOut, _, rowInj := run(true)
	colOut, colDev, colInj := run(false)

	if rowInj.TotalInjections() == 0 || colInj.TotalInjections() == 0 {
		t.Fatal("no faults injected — test exercised nothing")
	}
	if !bytes.Equal(rowOut, want) {
		t.Fatalf("row layout diverged under failover: got %d bytes, want %d", len(rowOut), len(want))
	}
	if !bytes.Equal(colOut, want) {
		t.Fatalf("columnar layout diverged under failover: got %d bytes, want %d", len(colOut), len(want))
	}
	if colDev.GathersElided() == 0 {
		t.Error("GPU staged no columnar tasks despite RowFreeMap plan")
	}
}

// TestColumnarProjectionPushdown: the engine shreds exactly the fields
// the compiled plan reads through columns — for the grouped aggregation
// (SUM(a) GROUP BY b) that is a and b, while timestamp and c stay
// row-only — and the results still match the row layout exactly.
func TestColumnarProjectionPushdown(t *testing.T) {
	stream := genStream(30000, 120)

	rowCfg := fastConfig(4)
	rowCfg.RowLayout = true
	rowOut, _ := runLayout(t, func() *query.Query { return aggQuery(t) }, rowCfg, chunkedFeed(stream, 121))
	colOut, colH := runLayout(t, func() *query.Query { return aggQuery(t) }, fastConfig(4), chunkedFeed(stream, 121))

	outS := colH.r.plan.OutputSchema()
	if rows, want := sortedRows(outS, colOut), sortedRows(outS, rowOut); !slices.Equal(rows, want) {
		t.Fatalf("pushdown run diverged from row layout: %d vs %d rows", len(rows), len(want))
	}
	cs := colH.r.ins[0].cols
	if cs == nil {
		t.Fatal("aggregation engine built no column store")
	}
	want := map[int]bool{1: true, 2: true} // a (arg), b (group key)
	for f := 0; f < syn.NumFields(); f++ {
		if cs.Shredded(f) != want[f] {
			t.Errorf("field %s shredded=%v, want %v", syn.Field(f).Name, cs.Shredded(f), want[f])
		}
	}
	if v, c := colStats(colH); v+c == 0 {
		t.Error("pushdown run handed no column views to tasks")
	}
}

// TestColumnarGauges: the saber.ring.* columnar gauges surface through
// the shared registry — occupancy, per-column bytes, and the gather
// counters — and read zero again once the stream is drained. The query
// is the RowFreeMap projection, which references every schema field, so
// all per-column gauges must exist.
func TestColumnarGauges(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := fastConfig(4)
	cfg.Metrics = reg
	stream := genStream(20000, 110)
	_, _ = runLayout(t, func() *query.Query { return projQuery(t) }, cfg, chunkedFeed(stream, 111))

	snap := reg.Snapshot()
	if got := snap.Gauges["saber.ring.q0.in0.gather.elided"]; got <= 0 {
		t.Errorf("gather.elided gauge = %v, want > 0", got)
	}
	if got, ok := snap.Gauges["saber.ring.q0.in0.col.tuples"]; !ok {
		t.Error("col.tuples gauge missing")
	} else if got != 0 {
		t.Errorf("col.tuples = %v after drain, want 0 (all released)", got)
	}
	// One bytes gauge per schema field.
	for c := 0; c < syn.NumFields(); c++ {
		name := "saber.ring.q0.in0.col" + string(rune('0'+c)) + ".bytes"
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("%s gauge missing", name)
		}
	}
}
