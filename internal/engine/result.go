package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"saber/internal/exec"
	"saber/internal/obs"
	"saber/internal/task"
	"saber/internal/window"
)

// resultStage implements paper §4.3: a slotted circular result buffer
// indexed by query task identifier with atomic control flags, so parallel
// workers deposit out-of-order results without blocking each other, and
// whichever worker holds the next in-order slot drains it — running the
// assembly operator function and appending to the output stream.
//
// With task failover (GPU → CPU retries, late results from a hung
// device) the same task ID can be delivered more than once; the stage
// guarantees exactly-once assembly: a delivery must CAS-claim its slot
// (or insert first into the overflow map), and every losing delivery is
// discarded. Quarantined tasks deposit a gap entry that releases the
// task's inputs and advances the drain frontier without emitting output,
// so a poisoned task cannot wedge assembly.
type resultStage struct {
	r     *registered
	slots []resultSlot
	mask  int64

	next    atomic.Int64 // next task ID to drain
	drained atomic.Int64 // tasks fully assembled
	drainMu sync.Mutex

	asm *exec.Assembler

	// overflow holds results delivered from beyond the slot window (rare:
	// HLS lookahead is bounded below the window, but scheduling races can
	// still land a result a few IDs past it). overflowed counts deliveries
	// that took this path (stress-harness telemetry; see invariant.go).
	overflowMu sync.Mutex
	overflow   map[int64]overflowEntry
	overflowed *obs.Counter // saber.engine.q<i>.result.overflow

	// duplicates counts deliveries discarded because another attempt of
	// the same task already claimed the slot (or the task had already
	// drained) — the exactly-once guarantee at work.
	duplicates *obs.Counter // saber.engine.q<i>.result.duplicates

	sinkMu sync.RWMutex
	sink   func([]byte)

	// lastFreeTo/lastPrevTS record, per input, the free pointer and the
	// end-of-batch timestamp of the last task drained — the input replay
	// cursor and window.Context continuity at the frontier. Guarded by
	// drainMu (updated by the drainer, read by the checkpoint capture).
	lastFreeTo  [2]int64
	lastPrevTS  [2]int64
}

type overflowEntry struct {
	res       *exec.TaskResult
	freeTo    [2]int64
	endPrevTS [2]int64
	start     int64
	gap       bool
	tr        *obs.TaskTrace
}

// Slot control-flag states (the paper's control buffer, extended with a
// claim state so concurrent re-deliveries of one task resolve by CAS).
const (
	slotFree    int32 = 0
	slotFull    int32 = 1
	slotClaimed int32 = 2 // a deliverer won the CAS and is writing fields
)

type resultSlot struct {
	state     atomic.Int32
	id        atomic.Int64 // task ID occupying the slot (valid once claimed)
	res       *exec.TaskResult
	freeTo    [2]int64
	endPrevTS [2]int64
	start     int64          // task creation stamp for latency accounting
	gap       bool           // quarantined task: release inputs, skip assembly
	tr        *obs.TaskTrace // winning delivery's trace, finished at drain
}

func newResultStage(r *registered, slots int) *resultStage {
	rs := &resultStage{
		r:          r,
		slots:      make([]resultSlot, slots),
		mask:       int64(slots) - 1,
		asm:        exec.NewAssembler(r.plan),
		overflowed: r.e.reg.Counter(qname(r.idx, "result.overflow")),
		duplicates: r.e.reg.Counter(qname(r.idx, "result.duplicates")),
	}
	for i := range rs.slots {
		rs.slots[i].id.Store(-1)
	}
	rs.lastPrevTS = [2]int64{window.NoPrev, window.NoPrev}
	return rs
}

// deliver stores a completed task's result in its slot (task ID modulo
// the buffer size) and attempts an in-order drain. It reports whether
// this delivery won the slot; a false return means another attempt of
// the same task delivered first (or the task already drained) and res
// was discarded — the caller must not count the task as executed.
func (rs *resultStage) deliver(t *task.Task, res *exec.TaskResult) bool {
	return rs.deposit(t, res, false)
}

// deliverGap records a quarantined task: its inputs are released and the
// drain frontier advances past it without emitting output. Returns false
// if a real result for the task already claimed the slot.
func (rs *resultStage) deliverGap(t *task.Task) bool {
	return rs.deposit(t, nil, true)
}

// deposit routes a delivery to its slot or the overflow map with
// exactly-once semantics. Within the reordering window [next,
// next+slots) each ID maps to a unique slot, and an occupied in-window
// slot can only hold the same ID (the previous occupant, ID-slots, must
// have drained for the window to reach this ID) — so claim conflicts are
// always same-task duplicates, never different tasks.
func (rs *resultStage) deposit(t *task.Task, res *exec.TaskResult, gap bool) bool {
	for {
		next := rs.next.Load()
		if t.ID < next {
			// Already drained: a late duplicate (e.g. a hung GPU task
			// completing after its CPU retry). Discard.
			rs.discardDup(res)
			return false
		}
		if t.ID >= next+int64(len(rs.slots)) {
			if rs.depositOverflow(t, res, gap) {
				rs.overflowed.Add(1)
				rs.tryDrain()
				return true
			}
			// Re-routed (window moved) or duplicate; depositOverflow
			// discarded duplicates itself.
			if rs.isDuplicate(t.ID) {
				rs.discardDup(res)
				return false
			}
			continue
		}
		s := &rs.slots[t.ID&rs.mask]
		if !s.state.CompareAndSwap(slotFree, slotClaimed) {
			// Slot occupied: within the window that can only be another
			// attempt of this very task (claimed or full, possibly being
			// drained right now). Once its ID is visible, discard ours;
			// until then the occupant is still publishing — retry.
			if s.id.Load() == t.ID {
				rs.discardDup(res)
				return false
			}
			runtime.Gosched()
			continue
		}
		// Claim won. Publish the ID first so racing duplicates can see
		// who owns the slot, then re-validate: the frontier may have
		// passed this ID (drained from this very slot, or via a duplicate
		// that went through the overflow map), or such a duplicate may
		// still sit in overflow. Frontier and map are read under
		// overflowMu because the drainer advances the frontier before
		// freeing a slot and, for overflow drains, deletes the entry and
		// advances under this same lock — so a stale claim always fails at
		// least one of the two checks; it can never slip between them.
		s.id.Store(t.ID)
		rs.overflowMu.Lock()
		stale := t.ID < rs.next.Load()
		if !stale {
			_, stale = rs.overflow[t.ID]
		}
		rs.overflowMu.Unlock()
		if stale {
			s.state.Store(slotFree)
			rs.discardDup(res)
			return false
		}
		s.res = res
		s.freeTo = t.FreeTo
		s.endPrevTS = t.EndPrevTS
		s.start = t.Created
		s.gap = gap
		s.tr = t.Trace
		t.Trace.SetAttempts(t.Attempts)
		t.Trace.MarkDelivered(time.Now().UnixNano())
		s.state.Store(slotFull)
		rs.tryDrain()
		return true
	}
}

// depositOverflow inserts into the overflow map iff the ID is still
// beyond the window and not already present; all checks happen under
// overflowMu so concurrent duplicates serialise.
func (rs *resultStage) depositOverflow(t *task.Task, res *exec.TaskResult, gap bool) bool {
	rs.overflowMu.Lock()
	defer rs.overflowMu.Unlock()
	if t.ID < rs.next.Load()+int64(len(rs.slots)) {
		return false // window caught up; take the slot path instead
	}
	if _, dup := rs.overflow[t.ID]; dup {
		return false
	}
	if rs.overflow == nil {
		rs.overflow = make(map[int64]overflowEntry)
	}
	t.Trace.SetAttempts(t.Attempts)
	t.Trace.MarkDelivered(time.Now().UnixNano())
	rs.overflow[t.ID] = overflowEntry{res: res, freeTo: t.FreeTo, endPrevTS: t.EndPrevTS, start: t.Created, gap: gap, tr: t.Trace}
	return true
}

// isDuplicate reports whether id already drained or sits in overflow.
func (rs *resultStage) isDuplicate(id int64) bool {
	if id < rs.next.Load() {
		return true
	}
	return rs.overflowHas(id)
}

func (rs *resultStage) discardDup(res *exec.TaskResult) {
	rs.duplicates.Add(1)
	if res != nil {
		rs.r.plan.ReleaseResult(res)
	}
}

// tryDrain drains consecutive in-order results while any are available.
// Only one worker drains at a time; a worker that loses the race but
// still sees its in-order slot full retries, closing the window in which
// a concurrent drainer may have just missed it.
func (rs *resultStage) tryDrain() {
	for {
		n := rs.next.Load()
		if rs.slots[n&rs.mask].state.Load() != slotFull && !rs.overflowHas(n) {
			return
		}
		if !rs.drainMu.TryLock() {
			runtime.Gosched()
			continue
		}
		rs.drainLocked()
		rs.drainMu.Unlock()
	}
}

func (rs *resultStage) overflowHas(id int64) bool {
	rs.overflowMu.Lock()
	_, ok := rs.overflow[id]
	rs.overflowMu.Unlock()
	return ok
}

func (rs *resultStage) drainLocked() {
	r := rs.r
	for {
		n := rs.next.Load()
		s := &rs.slots[n&rs.mask]
		var e overflowEntry
		switch {
		case s.state.Load() == slotFull && s.id.Load() == n:
			e = overflowEntry{res: s.res, freeTo: s.freeTo, endPrevTS: s.endPrevTS, start: s.start, gap: s.gap, tr: s.tr}
			s.res = nil
			s.tr = nil
			// Advance the frontier BEFORE freeing the slot. A duplicate
			// delivery of n can CAS-claim the slot the instant it frees;
			// its re-validation must then observe next > n and unwind — if
			// the slot freed first, the duplicate could pass re-validation,
			// publish slotFull a second time (double delivery) and wedge
			// the slot with a stale ID for every later occupant.
			rs.next.Add(1)
			s.state.Store(slotFree)
		default:
			rs.overflowMu.Lock()
			var ok bool
			e, ok = rs.overflow[n]
			if ok {
				delete(rs.overflow, n)
				// Advance while still holding overflowMu: deposit's
				// re-validation reads the frontier and the map under this
				// lock, so a duplicate of n sees either the entry or the
				// advanced frontier — never neither.
				rs.next.Add(1)
			}
			rs.overflowMu.Unlock()
			if !ok {
				return
			}
		}

		if e.gap {
			// Quarantined task: the gap is recorded in the query's shed
			// counters; assembly simply continues past it.
		} else {
			rs.emit(rs.asm.Drain(e.res, nil))
		}

		// Advance the checkpoint frontier bookkeeping. Gap entries count
		// too: their input range is released below and must not be
		// replayed after a restore.
		for i := 0; i < r.plan.NumInputs(); i++ {
			rs.lastFreeTo[i] = e.freeTo[i]
			rs.lastPrevTS[i] = e.endPrevTS[i]
		}

		// Release input data up to the task's free pointers and recycle
		// the result. Columns go first: the dispatcher blocks on row-ring
		// space, so releasing the column range before the row range
		// guarantees ColumnStore.Append has room whenever Put succeeds.
		for i := 0; i < r.plan.NumInputs(); i++ {
			in := r.ins[i]
			if in.cols != nil {
				in.cols.Release(e.freeTo[i] / int64(in.tupleSize))
			}
			in.ring.Release(e.freeTo[i])
		}
		if e.res != nil {
			r.plan.ReleaseResult(e.res)
		}
		now := time.Now().UnixNano()
		if e.start > 0 && !e.gap {
			r.stats.latencyNs.Add(now - e.start)
			r.stats.latencyN.Add(1)
		}
		r.e.tracer.Finish(e.tr, now, e.gap)
		rs.drained.Add(1)
	}
}

// flush finalises still-open windows at end of stream.
func (rs *resultStage) flush() {
	rs.drainMu.Lock()
	defer rs.drainMu.Unlock()
	rs.emit(rs.asm.Flush(nil))
}

func (rs *resultStage) emit(out []byte) {
	if len(out) == 0 {
		return
	}
	r := rs.r
	r.stats.bytesOut.Add(int64(len(out)))
	r.stats.tuplesOut.Add(int64(len(out) / r.plan.OutputSchema().TupleSize()))
	rs.sinkMu.RLock()
	fn := rs.sink
	rs.sinkMu.RUnlock()
	if fn != nil {
		fn(out)
	}
}

func (rs *resultStage) setSink(fn func([]byte)) {
	rs.sinkMu.Lock()
	rs.sink = fn
	rs.sinkMu.Unlock()
}
