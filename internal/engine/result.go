package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"saber/internal/exec"
	"saber/internal/task"
)

// resultStage implements paper §4.3: a slotted circular result buffer
// indexed by query task identifier with atomic control flags, so parallel
// workers deposit out-of-order results without blocking each other, and
// whichever worker holds the next in-order slot drains it — running the
// assembly operator function and appending to the output stream.
type resultStage struct {
	r     *registered
	slots []resultSlot
	mask  int64

	next    atomic.Int64 // next task ID to drain
	drained atomic.Int64 // tasks fully assembled
	drainMu sync.Mutex

	asm *exec.Assembler

	// overflow holds results delivered from beyond the slot window (rare:
	// HLS lookahead is bounded below the window, but scheduling races can
	// still land a result a few IDs past it). overflowed counts deliveries
	// that took this path (stress-harness telemetry; see invariant.go).
	overflowMu sync.Mutex
	overflow   map[int64]overflowEntry
	overflowed atomic.Int64

	sinkMu sync.RWMutex
	sink   func([]byte)
}

type overflowEntry struct {
	res    *exec.TaskResult
	freeTo [2]int64
	start  int64
}

type resultSlot struct {
	state  atomic.Int32 // 0 free, 1 full (the paper's control buffer)
	res    *exec.TaskResult
	freeTo [2]int64
	start  int64 // task creation stamp for latency accounting
}

func newResultStage(r *registered, slots int) *resultStage {
	return &resultStage{
		r:     r,
		slots: make([]resultSlot, slots),
		mask:  int64(slots) - 1,
		asm:   exec.NewAssembler(r.plan),
	}
}

// deliver stores a completed task's result in its slot (task ID modulo
// the buffer size) and attempts an in-order drain. Results from beyond
// the current reordering window go to the overflow map so that no worker
// ever blocks on a slot owned by an earlier, still-missing task.
func (rs *resultStage) deliver(t *task.Task, res *exec.TaskResult) {
	if t.ID >= rs.next.Load()+int64(len(rs.slots)) {
		rs.overflowMu.Lock()
		if rs.overflow == nil {
			rs.overflow = make(map[int64]overflowEntry)
		}
		rs.overflow[t.ID] = overflowEntry{res: res, freeTo: t.FreeTo, start: t.Created}
		rs.overflowMu.Unlock()
		rs.overflowed.Add(1)
		rs.tryDrain()
		return
	}
	s := &rs.slots[t.ID&rs.mask]
	// Within the window the slot is free or in the act of being drained;
	// the brief spin cannot starve.
	for s.state.Load() != 0 {
		runtime.Gosched()
	}
	s.res = res
	s.freeTo = t.FreeTo
	s.start = t.Created
	s.state.Store(1)
	rs.tryDrain()
}

// tryDrain drains consecutive in-order results while any are available.
// Only one worker drains at a time; a worker that loses the race but
// still sees its in-order slot full retries, closing the window in which
// a concurrent drainer may have just missed it.
func (rs *resultStage) tryDrain() {
	for {
		n := rs.next.Load()
		if rs.slots[n&rs.mask].state.Load() != 1 && !rs.overflowHas(n) {
			return
		}
		if !rs.drainMu.TryLock() {
			runtime.Gosched()
			continue
		}
		rs.drainLocked()
		rs.drainMu.Unlock()
	}
}

func (rs *resultStage) overflowHas(id int64) bool {
	rs.overflowMu.Lock()
	_, ok := rs.overflow[id]
	rs.overflowMu.Unlock()
	return ok
}

func (rs *resultStage) drainLocked() {
	r := rs.r
	for {
		n := rs.next.Load()
		s := &rs.slots[n&rs.mask]
		var e overflowEntry
		switch {
		case s.state.Load() == 1:
			e = overflowEntry{res: s.res, freeTo: s.freeTo, start: s.start}
			s.res = nil
		default:
			rs.overflowMu.Lock()
			var ok bool
			e, ok = rs.overflow[n]
			if ok {
				delete(rs.overflow, n)
			}
			rs.overflowMu.Unlock()
			if !ok {
				return
			}
		}

		rs.emit(rs.asm.Drain(e.res, nil))

		// Release input data up to the task's free pointers and recycle
		// the result.
		for i := 0; i < r.plan.NumInputs(); i++ {
			r.ins[i].ring.Release(e.freeTo[i])
		}
		r.plan.ReleaseResult(e.res)
		if e.start > 0 {
			r.stats.latencyNs.Add(time.Now().UnixNano() - e.start)
			r.stats.latencyN.Add(1)
		}
		if s.state.Load() == 1 {
			s.state.Store(0)
		}
		rs.next.Add(1)
		rs.drained.Add(1)
	}
}

// flush finalises still-open windows at end of stream.
func (rs *resultStage) flush() {
	rs.drainMu.Lock()
	defer rs.drainMu.Unlock()
	rs.emit(rs.asm.Flush(nil))
}

func (rs *resultStage) emit(out []byte) {
	if len(out) == 0 {
		return
	}
	r := rs.r
	r.stats.bytesOut.Add(int64(len(out)))
	r.stats.tuplesOut.Add(int64(len(out) / r.plan.OutputSchema().TupleSize()))
	rs.sinkMu.RLock()
	fn := rs.sink
	rs.sinkMu.RUnlock()
	if fn != nil {
		fn(out)
	}
}

func (rs *resultStage) setSink(fn func([]byte)) {
	rs.sinkMu.Lock()
	rs.sink = fn
	rs.sinkMu.Unlock()
}
