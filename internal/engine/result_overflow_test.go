package engine

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"saber/internal/exec"
	"saber/internal/query"
	"saber/internal/task"
	"saber/internal/window"
)

// overflowFixture compiles a tumbling COUNT(*) query on a 4-slot result
// buffer and pre-processes the stream into per-task results, so tests
// can hand results to resultStage.deliver in any adversarial order.
type overflowFixture struct {
	h       *Handle
	rs      *resultStage
	tasks   []*task.Task
	results []*exec.TaskResult
	want    []byte
}

func newOverflowFixture(t *testing.T, nTasks, batchTuples int) *overflowFixture {
	t.Helper()
	mk := func() *query.Query {
		return query.NewBuilder("overflow").
			From("S", syn, window.NewCount(100, 100)).
			Aggregate(query.Count, nil, "n").
			MustBuild()
	}
	cfg := fastConfig(2)
	cfg.ResultSlots = 4 // the smallest window the defaults allow for 2 workers
	eng := New(cfg)
	h, err := eng.Register(mk())
	if err != nil {
		t.Fatal(err)
	}
	r := h.r
	if len(r.result.slots) != 4 {
		t.Fatalf("result slots = %d, want 4", len(r.result.slots))
	}

	stream := genStream(nTasks*batchTuples, 42)
	f := &overflowFixture{h: h, rs: r.result}
	f.want = directRun(t, mk(), [2][]byte{stream, nil}, batchTuples)

	tsz := syn.TupleSize()
	prevTS := int64(window.NoPrev)
	for i := 0; i < nTasks; i++ {
		data := stream[i*batchTuples*tsz : (i+1)*batchTuples*tsz]
		tk := &task.Task{
			Query: 0,
			ID:    int64(i),
			In: [2]exec.Batch{{Data: data, Ctx: window.Context{
				FirstIndex:    int64(i * batchTuples),
				PrevTimestamp: prevTS,
			}}},
		}
		prevTS = syn.Timestamp(data[(batchTuples-1)*tsz:])
		res := r.plan.NewResult()
		if err := r.plan.Process(tk.In, res); err != nil {
			t.Fatal(err)
		}
		f.tasks = append(f.tasks, tk)
		f.results = append(f.results, res)
	}
	// deliver bypassed the dispatcher, so mirror its task accounting for
	// the quiesced-state check.
	r.taskSeq.Store(int64(nTasks))
	return f
}

func (f *overflowFixture) run(t *testing.T, order []int) {
	t.Helper()
	var mu sync.Mutex
	var got []byte
	f.rs.setSink(func(rows []byte) {
		mu.Lock()
		got = append(got, rows...)
		mu.Unlock()
	})
	for _, id := range order {
		f.rs.deliver(f.tasks[id], f.results[id])
	}
	f.rs.flush()

	if n := f.rs.drained.Load(); n != int64(len(f.tasks)) {
		t.Fatalf("drained %d of %d tasks", n, len(f.tasks))
	}
	if err := f.h.CheckQuiesced(); err != nil {
		t.Fatalf("quiesce after drain: %v", err)
	}
	if err := f.rs.CheckInvariants(); err != nil {
		t.Fatalf("result stage invariants: %v", err)
	}
	if !bytes.Equal(got, f.want) {
		t.Fatalf("reordered delivery changed output: got %d bytes, want %d", len(got), len(f.want))
	}
}

// TestResultStageOverflowDescending delivers every task result in
// reverse order: all but the first window's worth of IDs land beyond the
// 4-slot reordering window and must park in the overflow map, then drain
// ordered and loss-free once task 0 arrives (regression test for the
// previously uncovered overflow path in resultStage.deliver).
func TestResultStageOverflowDescending(t *testing.T) {
	const nTasks = 16
	f := newOverflowFixture(t, nTasks, 128)
	order := make([]int, nTasks)
	for i := range order {
		order[i] = nTasks - 1 - i
	}
	f.run(t, order)
	// IDs 4..15 were delivered while next=0, all beyond the slot window.
	if got := f.rs.overflowed.Value(); got != nTasks-4 {
		t.Fatalf("overflow deliveries = %d, want %d", got, nTasks-4)
	}
}

// TestResultStageOverflowInterleaved delivers odd IDs first (pushing the
// tail far past the window), then even IDs, so the drain advances in
// bursts that consume from slots and the overflow map alternately.
func TestResultStageOverflowInterleaved(t *testing.T) {
	const nTasks = 16
	f := newOverflowFixture(t, nTasks, 128)
	var order []int
	for i := 1; i < nTasks; i += 2 {
		order = append(order, i)
	}
	for i := 0; i < nTasks; i += 2 {
		order = append(order, i)
	}
	f.run(t, order)
	if got := f.rs.overflowed.Value(); got == 0 {
		t.Fatal("interleaved delivery never used the overflow map")
	}
}

// TestResultStageDuplicateDrainRace targets the deposit/drain TOCTOU
// window: several goroutines deliver every task ID in ascending order on
// a 4-slot buffer, so duplicates constantly race the drainer for the
// slot it is just freeing. The drainer must advance the frontier before
// a slot frees (and before an overflow entry's deletion is visible), or
// a duplicate can CAS-claim the freed slot, pass re-validation, and win
// a second delivery — double-counting the task and wedging the slot
// with a stale ID for every later occupant.
func TestResultStageDuplicateDrainRace(t *testing.T) {
	const nTasks = 64
	const dups = 4
	f := newOverflowFixture(t, nTasks, 64)

	var mu sync.Mutex
	var got []byte
	f.rs.setSink(func(rows []byte) {
		mu.Lock()
		got = append(got, rows...)
		mu.Unlock()
	})
	// Every attempt carries an identically-processed result, so the
	// output must match the reference no matter which attempt wins.
	r := f.h.r
	results := make([][]*exec.TaskResult, dups)
	results[0] = f.results
	for d := 1; d < dups; d++ {
		results[d] = make([]*exec.TaskResult, nTasks)
		for i, tk := range f.tasks {
			res := r.plan.NewResult()
			if err := r.plan.Process(tk.In, res); err != nil {
				t.Fatal(err)
			}
			results[d][i] = res
		}
	}

	var wins atomic.Int64
	var wg sync.WaitGroup
	for d := 0; d < dups; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for i := 0; i < nTasks; i++ {
				if f.rs.deliver(f.tasks[i], results[d][i]) {
					wins.Add(1)
				}
			}
		}(d)
	}
	wg.Wait()
	f.rs.flush()

	if wins.Load() != nTasks {
		t.Fatalf("%d deliveries won for %d tasks (exactly-once broken)", wins.Load(), nTasks)
	}
	if got := f.rs.duplicates.Value(); got != nTasks*(dups-1) {
		t.Fatalf("duplicates discarded = %d, want %d", got, nTasks*(dups-1))
	}
	if err := f.h.CheckQuiesced(); err != nil {
		t.Fatalf("quiesce after duplicate storm: %v", err)
	}
	if err := f.rs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, f.want) {
		t.Fatalf("duplicate racing changed output: got %d bytes, want %d", len(got), len(f.want))
	}
}

// TestResultStageOverflowConcurrent hammers deliver from many goroutines
// in a scrambled order under -race: the control flags, overflow map and
// drain handoff must serialise into one ordered, exactly-once output.
func TestResultStageOverflowConcurrent(t *testing.T) {
	const nTasks = 64
	f := newOverflowFixture(t, nTasks, 128)

	var mu sync.Mutex
	var got []byte
	f.rs.setSink(func(rows []byte) {
		mu.Lock()
		got = append(got, rows...)
		mu.Unlock()
	})
	// Four deliverers, each handed a stride of task IDs high-to-low, so
	// early IDs arrive last and the overflow map stays busy.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := nTasks - 1 - w; i >= 0; i -= 4 {
				f.rs.deliver(f.tasks[i], f.results[i])
			}
		}(w)
	}
	wg.Wait()
	f.rs.flush()

	if n := f.rs.drained.Load(); n != nTasks {
		t.Fatalf("drained %d of %d tasks", n, nTasks)
	}
	if err := f.h.CheckQuiesced(); err != nil {
		t.Fatalf("quiesce after drain: %v", err)
	}
	if !bytes.Equal(got, f.want) {
		t.Fatalf("concurrent delivery changed output: got %d bytes, want %d", len(got), len(f.want))
	}
	if f.rs.overflowed.Value() == 0 {
		t.Fatal("concurrent delivery never used the overflow map")
	}
}
