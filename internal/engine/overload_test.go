package engine

import (
	"testing"
	"time"

	"saber/internal/model"
	"saber/internal/overload"
	"saber/internal/query"
	"saber/internal/window"
)

// gateUDF is a passthrough operator whose every fragment blocks on gate,
// wedging the worker pool at will. Closing the gate releases everything.
func gateUDF(gate chan struct{}) *query.UDF {
	return &query.UDF{
		Name: "gate",
		Out:  syn,
		ProcessFragment: func(in [][]byte) []byte {
			<-gate
			return append([]byte(nil), in[0]...)
		},
		Merge:    func(acc, next []byte) []byte { return append(acc, next...) },
		Finalize: func(partial []byte) []byte { return partial },
	}
}

func gateQuery(gate chan struct{}) *query.Query {
	return query.NewBuilder("gate").
		From("S", syn, window.NewCount(64, 32)).
		UDF(gateUDF(gate)).
		MustBuild()
}

// waitFor polls cond for up to d.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloseUnblocksBlockedInsert is the bounded-wait shutdown regression:
// an Insert blocked on backpressure (full ring, wedged worker) must not
// deadlock Close, and Close must not strand the Insert. Before admission
// became quiesce-aware this spun forever in ring.Put — the workers had
// exited, so the ring could never drain — or panicked pushing a cut onto
// the closed queue.
func TestCloseUnblocksBlockedInsert(t *testing.T) {
	gate := make(chan struct{})
	eng := New(Config{
		CPUWorkers:      1,
		TaskSize:        4096,
		InputBufferSize: 1 << 16,
		DisablePad:      true,
		Model:           model.Default(),
	})
	h, err := eng.Register(gateQuery(gate))
	if err != nil {
		t.Fatal(err)
	}
	h.OnResult(func([]byte) {})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	// 4× the ring: the insert must block once the wedged worker stops
	// draining it.
	big := genStream(4*(1<<16)/syn.TupleSize(), 11)
	inserted := make(chan struct{})
	go func() {
		h.Insert(big)
		close(inserted)
	}()
	waitFor(t, 10*time.Second, func() bool { return h.Stats().AdmitWaits > 0 }, "Insert to block")

	closed := make(chan struct{})
	go func() {
		eng.Close()
		close(closed)
	}()
	// The blocked Insert must abort promptly — while the worker is still
	// wedged inside the UDF, so its return cannot depend on the ring
	// draining.
	select {
	case <-inserted:
	case <-time.After(10 * time.Second):
		t.Fatal("Insert still blocked after Close: admission deadlock")
	}
	close(gate)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return")
	}

	// The aborted call's ledger must balance: every offered tuple is
	// admitted or admission-shed.
	st := h.Stats()
	tsz := int64(syn.TupleSize())
	if st.BytesOffered != int64(len(big)) {
		t.Fatalf("offered %d bytes, want %d", st.BytesOffered, len(big))
	}
	if got, want := st.BytesOffered/tsz, st.BytesIn/tsz+st.TuplesShedAdmit; got != want {
		t.Fatalf("conservation: offered %d tuples != admitted %d + shed %d",
			got, st.BytesIn/tsz, st.TuplesShedAdmit)
	}
	if st.TuplesShedAdmit == 0 {
		t.Fatal("expected the aborted Insert's remainder to be accounted as admission-shed")
	}
}

// TestDrainUnblocksBlockedInsert is the Drain-side twin: Drain flags
// quiescence before taking the locks dispatchTail needs, so a
// concurrent blocked Insert aborts instead of holding insMu against it.
func TestDrainUnblocksBlockedInsert(t *testing.T) {
	gate := make(chan struct{})
	eng := New(Config{
		CPUWorkers:      1,
		TaskSize:        4096,
		InputBufferSize: 1 << 16,
		DisablePad:      true,
		Model:           model.Default(),
	})
	h, err := eng.Register(gateQuery(gate))
	if err != nil {
		t.Fatal(err)
	}
	h.OnResult(func([]byte) {})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	big := genStream(4*(1<<16)/syn.TupleSize(), 13)
	inserted := make(chan struct{})
	go func() {
		h.Insert(big)
		close(inserted)
	}()
	waitFor(t, 10*time.Second, func() bool { return h.Stats().AdmitWaits > 0 }, "Insert to block")

	drained := make(chan struct{})
	go func() {
		eng.Drain()
		close(drained)
	}()
	select {
	case <-inserted:
	case <-time.After(10 * time.Second):
		t.Fatal("Insert still blocked after Drain began: admission deadlock")
	}
	close(gate) // let the workers finish the admitted tasks
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return")
	}
	eng.Close()
	if err := h.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// slowUDF is a passthrough that costs d per fragment — a deterministic
// capacity limiter for overload tests.
func slowUDF(d time.Duration) *query.UDF {
	return &query.UDF{
		Name: "slow",
		Out:  syn,
		ProcessFragment: func(in [][]byte) []byte {
			time.Sleep(d)
			return append([]byte(nil), in[0]...)
		},
		Merge:    func(acc, next []byte) []byte { return append(acc, next...) },
		Finalize: func(partial []byte) []byte { return partial },
	}
}

// TestShedOldestUnderBudget drives a slow query far past capacity with a
// small queue budget and the oldest-first policy: admission must shed
// (not block forever), the ledger must balance exactly, and the engine
// must still quiesce cleanly.
func TestShedOldestUnderBudget(t *testing.T) {
	eng := New(Config{
		CPUWorkers:      2,
		TaskSize:        4096,
		InputBufferSize: 1 << 20,
		DisablePad:      true,
		Model:           model.Default(),
		Overload: &overload.Config{
			MaxQueueBytes: 32 << 10,
			Policy:        overload.ShedOldest,
			MaxWait:       200 * time.Microsecond,
		},
	})
	q := query.NewBuilder("slow").
		From("S", syn, window.NewCount(64, 32)).
		UDF(slowUDF(500 * time.Microsecond)).
		MustBuild()
	h, err := eng.Register(q)
	if err != nil {
		t.Fatal(err)
	}
	h.OnResult(func([]byte) {})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	const total = 32768 // tuples, 1 MiB: far beyond the slow pipeline's appetite
	stream := genStream(total, 17)
	step := 2048 * syn.TupleSize()
	for off := 0; off < len(stream); off += step {
		end := off + step
		if end > len(stream) {
			end = len(stream)
		}
		h.Insert(stream[off:end])
	}
	eng.Drain()
	eng.Close()

	st := h.Stats()
	tsz := int64(syn.TupleSize())
	if st.TuplesShedOldest == 0 {
		t.Fatal("2x-overload run shed nothing: policy did not actuate")
	}
	if st.BytesOffered != int64(len(stream)) {
		t.Fatalf("offered %d, want %d", st.BytesOffered, len(stream))
	}
	// Ledger: offered == admitted + admission-shed (in tuples), and the
	// oldest-policy sheds are a subset of the gap-shed total.
	if got, want := st.BytesOffered/tsz, st.BytesIn/tsz+st.TuplesShedAdmit; got != want {
		t.Fatalf("offered %d != admitted %d + admission-shed %d", got, st.BytesIn/tsz, st.TuplesShedAdmit)
	}
	if st.TuplesShed < st.TuplesShedOldest {
		t.Fatalf("tuples.shed %d < shed.oldest %d", st.TuplesShed, st.TuplesShedOldest)
	}
	if err := h.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// TestTryInsertNonBlocking verifies the whole-or-nothing non-blocking
// path: rejects consume nothing and are counted; acceptance admits the
// full payload.
func TestTryInsertNonBlocking(t *testing.T) {
	gate := make(chan struct{})
	eng := New(Config{
		CPUWorkers:      1,
		TaskSize:        4096,
		InputBufferSize: 1 << 16,
		DisablePad:      true,
		Model:           model.Default(),
	})
	h, err := eng.Register(gateQuery(gate))
	if err != nil {
		t.Fatal(err)
	}
	h.OnResult(func([]byte) {})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	fits := genStream((1<<15)/syn.TupleSize(), 19)   // half the ring
	toobig := genStream((1<<17)/syn.TupleSize(), 23) // 2x the ring: can never fit
	if !h.TryInsert(fits) {
		t.Fatal("TryInsert rejected a payload that fits an empty ring")
	}
	if h.TryInsert(toobig) {
		t.Fatal("TryInsert admitted a payload larger than the ring")
	}
	st := h.Stats()
	if st.AdmitRejects != 1 {
		t.Fatalf("admit.rejects = %d, want 1", st.AdmitRejects)
	}
	// The reject consumed nothing: offered/admitted cover only the first
	// payload.
	if st.BytesOffered != int64(len(fits)) || st.BytesIn != int64(len(fits)) {
		t.Fatalf("reject consumed data: offered %d admitted %d, want %d", st.BytesOffered, st.BytesIn, len(fits))
	}
	close(gate)
	eng.Drain()
	eng.Close()
	if err := h.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// TestWatchdogDetectsStall wedges the single worker and checks the stall
// watchdog counts the episode and captures a postmortem, then recovers.
func TestWatchdogDetectsStall(t *testing.T) {
	gate := make(chan struct{})
	eng := New(Config{
		CPUWorkers:      1,
		TaskSize:        4096,
		InputBufferSize: 1 << 16,
		DisablePad:      true,
		Model:           model.Default(),
		Overload: &overload.Config{
			StallTimeout:  100 * time.Millisecond,
			StallInterval: 10 * time.Millisecond,
		},
	})
	h, err := eng.Register(gateQuery(gate))
	if err != nil {
		t.Fatal(err)
	}
	h.OnResult(func([]byte) {})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	// Two tasks' worth: the first wedges the worker, the rest stays
	// pending in the ring — exactly the watchdog's trigger condition.
	h.Insert(genStream(2*4096/syn.TupleSize(), 29))

	waitFor(t, 10*time.Second, func() bool {
		return eng.Metrics().Counter("saber.overload.stalls").Value() > 0
	}, "watchdog to trip")
	if eng.StallReport() == "" {
		t.Fatal("stall counted but no postmortem captured")
	}

	close(gate)
	eng.Drain()
	eng.Close()
	if err := h.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Metrics().Counter("saber.overload.stalls").Value(); got != 1 {
		t.Fatalf("stalls = %d, want exactly one episode", got)
	}
}
