package engine

// Epoch checkpointing and crash recovery (see internal/ckpt and DESIGN.md
// §12). The coordinator snapshots each query at its result stage's drain
// frontier: because drainLocked merges results strictly in task-ID order
// under drainMu, holding that lock gives a barrier B = next where the
// committed output bytes, the assembler's pending windows and the input
// release cursors all describe exactly tasks [0, B). Capture is the only
// step inside engine locks; encode, write and fsync run on the
// coordinator goroutine.

import (
	"fmt"
	"time"

	"saber/internal/ckpt"
	"saber/internal/obs"
	"saber/internal/sched"
)

// ckptMetrics are the engine-wide checkpoint counters, registered under
// saber.ckpt.*.
type ckptMetrics struct {
	epochs     *obs.Counter   // saber.ckpt.epochs — snapshots persisted
	bytes      *obs.Counter   // saber.ckpt.bytes — encoded bytes written
	failures   *obs.Counter   // saber.ckpt.failures — snapshots that failed to persist
	corrupt    *obs.Counter   // saber.ckpt.corrupt — torn/corrupt files skipped at recovery
	snapshotNs *obs.Histogram // saber.ckpt.snapshot.ns — capture+persist latency
	recoverNs  *obs.Histogram // saber.ckpt.recover.ns — Restore latency
	lastEpoch  *obs.Gauge     // saber.ckpt.epoch — newest persisted/restored epoch
}

func newCkptMetrics(reg *obs.Registry) ckptMetrics {
	return ckptMetrics{
		epochs:     reg.Counter("saber.ckpt.epochs"),
		bytes:      reg.Counter("saber.ckpt.bytes"),
		failures:   reg.Counter("saber.ckpt.failures"),
		corrupt:    reg.Counter("saber.ckpt.corrupt"),
		snapshotNs: reg.Histogram("saber.ckpt.snapshot.ns"),
		recoverNs:  reg.Histogram("saber.ckpt.recover.ns"),
		lastEpoch:  reg.Gauge("saber.ckpt.epoch"),
	}
}

// store lazily opens the checkpoint store (New cannot return an error).
func (e *Engine) store() (*ckpt.Store, error) {
	if e.cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("engine: Checkpoint without Config.CheckpointDir")
	}
	e.ckptOnce.Do(func() {
		e.ckptStore, e.ckptErr = ckpt.Open(e.cfg.CheckpointDir, e.cfg.CheckpointKeep)
	})
	return e.ckptStore, e.ckptErr
}

// Checkpoint cuts one epoch: it captures every query's state at its
// current drain frontier and durably persists the snapshot. Safe to call
// while the engine is running; the automatic loop (CheckpointInterval)
// calls it too. Returns the persisted snapshot.
func (e *Engine) Checkpoint() (*ckpt.Snapshot, error) {
	st, err := e.store()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	snap := &ckpt.Snapshot{
		Epoch: uint64(e.ckptEpoch.Add(1)),
		Phi:   e.taskSize.Load(),
	}
	// Capture under regMu so the statement log and the per-query state
	// describe one consistent catalog generation: a concurrent DDL either
	// lands wholly before this epoch or wholly after it. The statement
	// source must be lock-free (see SetStatementSource). Dropped
	// tombstones are excluded — their state is gone and their statements
	// have left the log.
	e.regMu.Lock()
	var captured []*registered
	if fn := e.statementSource(); fn != nil {
		snap.Statements = fn()
	}
	for _, r := range e.queries() {
		if r.dropped.Load() {
			continue
		}
		captured = append(captured, r)
		qs := r.result.capture()
		if e.matrix != nil {
			qs.RateCPU = e.matrix.Rate(r.idx, sched.CPU)
			qs.RateGPU = e.matrix.Rate(r.idx, sched.GPU)
		}
		snap.Queries = append(snap.Queries, qs)
	}
	e.regMu.Unlock()
	if _, n, err := st.Save(snap); err != nil {
		e.ckm.failures.Add(1)
		return nil, err
	} else {
		e.ckm.bytes.Add(int64(n))
	}
	e.ckm.epochs.Add(1)
	e.ckm.lastEpoch.Set(int64(snap.Epoch))
	e.ckm.snapshotNs.Observe(time.Since(start).Nanoseconds())
	// Publish the new exactly-once cutoffs only after the epoch is
	// durable: Handle.Committed must never run ahead of disk. captured
	// is index-aligned with snap.Queries (both skipped tombstones).
	for i, r := range captured {
		r.committed.Store(snap.Queries[i].CommittedBytes)
	}
	return snap, nil
}

// ckptLoop is the automatic epoch coordinator: it cuts an epoch every
// CheckpointInterval, or as soon as CheckpointEveryTasks new tasks have
// drained (whichever comes first), until Close.
func (e *Engine) ckptLoop() {
	defer e.ckptWG.Done()
	interval := e.cfg.CheckpointInterval
	poll := interval
	if e.cfg.CheckpointEveryTasks > 0 {
		// The task gate needs a faster pulse than the wall-clock period.
		poll = interval / 8
		if poll < time.Millisecond {
			poll = time.Millisecond
		}
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	last := time.Now()
	lastDrained := e.totalDrained()
	for {
		select {
		case <-e.ckptStop:
			return
		case <-tick.C:
			drained := e.totalDrained()
			due := time.Since(last) >= interval
			if n := e.cfg.CheckpointEveryTasks; n > 0 && drained-lastDrained >= int64(n) {
				due = true
			}
			if !due {
				continue
			}
			if _, err := e.Checkpoint(); err != nil {
				continue // counted in saber.ckpt.failures; retry next tick
			}
			last = time.Now()
			lastDrained = drained
		}
	}
}

func (e *Engine) totalDrained() int64 {
	var n int64
	for _, r := range e.queries() {
		n += r.result.drained.Load()
	}
	return n
}

// capture snapshots one query at its drain frontier. Holding drainMu
// excludes the drainer, so next, the committed-output counters, the
// pending windows and the per-input frontier bookkeeping are mutually
// consistent: all reflect exactly tasks [0, next).
func (rs *resultStage) capture() ckpt.QuerySnap {
	rs.drainMu.Lock()
	defer rs.drainMu.Unlock()
	r := rs.r
	qs := ckpt.QuerySnap{
		Name:            r.plan.Q.Name,
		Barrier:         rs.next.Load(),
		CommittedBytes:  r.stats.bytesOut.Value(),
		CommittedTuples: r.stats.tuplesOut.Value(),
		Pending:         rs.asm.Export(),
		// The overload ledger is maintained under insMu, not drainMu, so
		// these reads are approximate within the inserts in flight at the
		// barrier (exact when the engine is quiescent). Good enough for
		// telemetry continuity; output exactness never depends on them.
		OfferedBytes:     r.over.bytesOffered.Value(),
		InBytes:          r.stats.bytesIn.Value(),
		ShedTuples:       r.stats.tuplesShed.Value(),
		ShedAdmitTuples:  r.over.shedAdmit.Value(),
		ShedOldestTuples: r.over.shedOldest.Value(),
	}
	for i := 0; i < r.plan.NumInputs(); i++ {
		qs.Ins = append(qs.Ins, ckpt.InputSnap{
			FreeTo: rs.lastFreeTo[i],
			PrevTS: rs.lastPrevTS[i],
		})
	}
	return qs
}

// RestoreInfo summarises a successful Restore.
type RestoreInfo struct {
	// Epoch is the restored epoch number.
	Epoch uint64
	// Path is the checkpoint file the engine was rebuilt from.
	Path string
	// Skipped counts newer torn/corrupt epoch files fallen past (also
	// surfaced as saber.ckpt.corrupt).
	Skipped int
	// Queries is how many queries the snapshot restored.
	Queries int
	// Unmatched counts snapshot queries with no registered match that
	// catalog mode skipped (0 outside catalog mode, where an unmatched
	// query is an error instead).
	Unmatched int
}

// Restore rebuilds the engine's state from the newest valid checkpoint
// in dir. Call after every Register and before Start; the registered
// queries must match the checkpoint by name. On success the engine
// resumes at the epoch barrier: input rings are rebased to the saved
// cursors (Handle.InputCursor tells the feeder where to resume), the
// assembler holds the barrier's pending windows, the committed-output
// counters continue from the saved offsets, and ϕ plus the scheduler's
// learned rates carry over. Returns ckpt.ErrNoCheckpoint (wrapped) when
// dir holds no loadable epoch — treat as a cold start.
func (e *Engine) Restore(dir string) (*RestoreInfo, error) {
	if e.started.Load() {
		return nil, fmt.Errorf("engine: Restore after Start")
	}
	start := time.Now()
	snap, info, err := ckpt.LoadLatest(dir)
	if info != nil && info.Skipped > 0 {
		e.ckm.corrupt.Add(int64(info.Skipped))
	}
	if err != nil {
		return nil, err
	}
	unmatched := 0
	for _, qs := range snap.Queries {
		r, ok := e.byName[qs.Name]
		if !ok {
			// In catalog mode the replayed statement log governs the query
			// set, so a snapshot entry with no registered match (a crash
			// window around a DROP) is skipped, not refused.
			if e.statementSource() != nil {
				unmatched++
				continue
			}
			return nil, fmt.Errorf("engine: checkpoint query %q is not registered", qs.Name)
		}
		if err := r.restore(qs); err != nil {
			return nil, err
		}
	}
	if snap.Phi > 0 {
		e.SetTaskSize(int(snap.Phi))
	}
	e.ckptEpoch.Store(int64(snap.Epoch))
	e.ckm.lastEpoch.Set(int64(snap.Epoch))
	e.ckm.recoverNs.Observe(time.Since(start).Nanoseconds())
	return &RestoreInfo{
		Epoch:     snap.Epoch,
		Path:      info.Path,
		Skipped:   info.Skipped,
		Queries:   len(snap.Queries) - unmatched,
		Unmatched: unmatched,
	}, nil
}

// restore rebuilds one query at the checkpoint's barrier. Runs strictly
// before Start, so no locking is needed.
func (r *registered) restore(qs ckpt.QuerySnap) error {
	if len(qs.Ins) != r.plan.NumInputs() {
		return fmt.Errorf("engine: checkpoint query %q carries %d inputs, plan has %d",
			qs.Name, len(qs.Ins), r.plan.NumInputs())
	}
	if qs.Barrier < 0 {
		return fmt.Errorf("engine: checkpoint query %q has negative barrier %d", qs.Name, qs.Barrier)
	}
	r.taskSeq.Store(qs.Barrier)
	rs := r.result
	rs.next.Store(qs.Barrier)
	rs.drained.Store(qs.Barrier)
	for i := range qs.Ins {
		in := r.ins[i]
		fr := qs.Ins[i].FreeTo
		if fr < 0 || fr%int64(in.tupleSize) != 0 {
			return fmt.Errorf("engine: checkpoint query %q input %d cursor %d not aligned to tuple size %d",
				qs.Name, i, fr, in.tupleSize)
		}
		// Rebase the fresh ring (and column mirror) so the restored engine
		// keeps the stream's absolute addressing: the first replayed byte
		// lands at offset fr, exactly where the crashed engine had it.
		in.ring.Rebase(fr)
		if in.cols != nil {
			in.cols.Rebase(fr / int64(in.tupleSize))
		}
		in.batchStart = fr
		in.firstIndex = fr / int64(in.tupleSize)
		in.prevTS = qs.Ins[i].PrevTS
		rs.lastFreeTo[i] = fr
		rs.lastPrevTS[i] = qs.Ins[i].PrevTS
		// The replayed prefix was admitted once pre-crash; seeding bytesIn
		// keeps the cumulative counters consistent across the restart. The
		// prefix was offered once too, so bytesOffered gets the same seed;
		// the admission-shed delta is added below.
		r.stats.bytesIn.Add(fr)
		r.over.bytesOffered.Add(fr)
	}
	// Re-seed the overload ledger. Shed telemetry carries over verbatim;
	// offered additionally absorbs the pre-crash admission-shed volume
	// (offered - admitted, in bytes) so offered == admitted + shed keeps
	// holding after the replayed suffix is re-offered and re-admitted.
	if d := qs.OfferedBytes - qs.InBytes; d > 0 {
		r.over.bytesOffered.Add(d)
	}
	r.stats.tuplesShed.Add(qs.ShedTuples)
	r.over.shedAdmit.Add(qs.ShedAdmitTuples)
	r.over.shedOldest.Add(qs.ShedOldestTuples)
	rs.asm.Restore(qs.Pending)
	r.stats.bytesOut.Add(qs.CommittedBytes)
	r.stats.tuplesOut.Add(qs.CommittedTuples)
	r.stats.tasksCreated.Add(qs.Barrier)
	r.committed.Store(qs.CommittedBytes)
	r.restoredRates = [2]float64{qs.RateCPU, qs.RateGPU}
	return nil
}
