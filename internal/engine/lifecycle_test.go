package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"saber/internal/expr"
	"saber/internal/overload"
	"saber/internal/query"
	"saber/internal/window"
)

// namedSel builds the standard selection query under a custom name, so
// lifecycle tests can register several instances side by side.
func namedSel(name string) *query.Query {
	return query.NewBuilder(name).
		From("S", syn, window.NewCount(64, 32)).
		Where(expr.Cmp{Op: expr.Lt, Left: expr.Col("b"), Right: expr.IntConst(4)}).
		MustBuild()
}

// feedChunked inserts the stream in uneven chunks (same pattern the
// end-to-end tests use).
func feedChunked(h *Handle, stream []byte, seed int64) {
	rnd := rand.New(rand.NewSource(seed))
	tsz := syn.TupleSize()
	for off := 0; off < len(stream); {
		n := (1 + rnd.Intn(300)) * tsz
		if off+n > len(stream) {
			n = len(stream) - off
		}
		h.Insert(stream[off : off+n])
		off += n
	}
}

// TestLiveRegister checks that a query registered on a running engine —
// while a sibling is mid-stream — produces byte-identical output to a
// statically registered reference, and that the sibling is undisturbed.
func TestLiveRegister(t *testing.T) {
	eng := New(fastConfig(4))
	h1, err := eng.Register(namedSel("q1"))
	if err != nil {
		t.Fatal(err)
	}
	out1 := collectOutput(h1)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	s1 := genStream(12000, 1)
	s2 := genStream(9000, 2)
	feedChunked(h1, s1[:len(s1)/2], 3)

	h2, err := eng.Register(namedSel("q2"))
	if err != nil {
		t.Fatalf("live Register: %v", err)
	}
	out2 := collectOutput(h2)
	feedChunked(h2, s2, 4)
	feedChunked(h1, s1[len(s1)/2:], 5)

	eng.Drain()
	eng.Close()

	want1 := directRun(t, namedSel("q1"), [2][]byte{s1, nil}, 128)
	want2 := directRun(t, namedSel("q2"), [2][]byte{s2, nil}, 128)
	if !bytes.Equal(out1.buf, want1) {
		t.Errorf("q1 output: got %d bytes, want %d", len(out1.buf), len(want1))
	}
	if !bytes.Equal(out2.buf, want2) {
		t.Errorf("live-registered q2 output: got %d bytes, want %d", len(out2.buf), len(want2))
	}
	for _, h := range []*Handle{h1, h2} {
		if err := h.CheckQuiesced(); err != nil {
			t.Errorf("%s: %v", h.Name(), err)
		}
	}
}

// TestPauseResume checks the task-boundary quiesce: while paused no new
// tasks are cut (admission continues into the ring), Resume cuts the
// backlog, and the final output is byte-identical to an uninterrupted run.
func TestPauseResume(t *testing.T) {
	eng := New(fastConfig(4))
	h, err := eng.Register(namedSel("q"))
	if err != nil {
		t.Fatal(err)
	}
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	stream := genStream(16000, 7)
	third := len(stream) / 3 / syn.TupleSize() * syn.TupleSize()
	feedChunked(h, stream[:third], 8)

	if err := eng.Pause("q"); err != nil {
		t.Fatal(err)
	}
	// At the pause boundary every cut task has drained.
	d := h.Debug()
	if d.Drained != d.TasksCreated {
		t.Fatalf("paused with %d/%d tasks drained", d.Drained, d.TasksCreated)
	}
	created := d.TasksCreated
	// Insert while paused: admitted, buffered, but not cut. Keep the
	// volume under the ring capacity so admission cannot block.
	feedChunked(h, stream[third:2*third], 9)
	if got := h.Debug().TasksCreated; got != created {
		t.Fatalf("paused query cut %d new tasks", got-created)
	}
	if err := eng.Pause("q"); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := eng.Resume("q"); err != nil {
		t.Fatal(err)
	}
	if got := h.Debug().TasksCreated; got <= created {
		t.Fatalf("resume cut no backlog (still %d tasks)", got)
	}
	feedChunked(h, stream[2*third:], 10)
	eng.Drain()
	eng.Close()

	want := directRun(t, namedSel("q"), [2][]byte{stream, nil}, 128)
	if !bytes.Equal(out.buf, want) {
		t.Fatalf("output after pause/resume: got %d bytes, want %d", len(out.buf), len(want))
	}
	if err := eng.Pause("nope"); err == nil {
		t.Error("Pause of unknown query succeeded")
	}
	if err := eng.Resume("nope"); err == nil {
		t.Error("Resume of unknown query succeeded")
	}
}

// TestDeregister drops one of two queries mid-stream and checks the
// drain-safe drop protocol: the dropped query's admitted bytes are fully
// flushed (in == out + shed at the drop boundary), its buffers are
// released, inserts on the stale handle become no-ops, the name is
// immediately reusable, and the surviving sibling's output is
// byte-identical to an undisturbed reference.
func TestDeregister(t *testing.T) {
	eng := New(fastConfig(4))
	hDrop, err := eng.Register(namedSel("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	hKeep, err := eng.Register(namedSel("keep"))
	if err != nil {
		t.Fatal(err)
	}
	collectOutput(hDrop)
	outKeep := collectOutput(hKeep)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	sKeep := genStream(12000, 11)
	sDrop := genStream(8000, 12)
	feedChunked(hKeep, sKeep[:len(sKeep)/2], 13)
	feedChunked(hDrop, sDrop, 14)

	if err := eng.Deregister("doomed"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Deregister("doomed"); err == nil {
		t.Error("double Deregister succeeded")
	}
	// Conservation at the drop boundary: every admitted tuple was emitted
	// through a task or accounted shed.
	st := hDrop.Stats()
	tsz := int64(syn.TupleSize())
	if in, flushed := st.BytesIn/tsz, st.TasksCreated; in > 0 && flushed == 0 {
		t.Error("drop flushed no tasks despite admitted input")
	}
	d := hDrop.Debug()
	if d.Drained != d.TasksCreated {
		t.Errorf("dropped query drained %d of %d tasks", d.Drained, d.TasksCreated)
	}
	if rings := hDrop.Debug().RingWraps; len(rings) != 0 {
		t.Errorf("dropped query still exposes %d rings", len(rings))
	}
	// Inserting on the stale handle is a no-op, not a crash.
	before := hDrop.Stats().BytesOffered
	hDrop.Insert(genStream(100, 15))
	if hDrop.Stats().BytesOffered != before {
		t.Error("insert on dropped handle was accounted as offered")
	}
	if ok := hDrop.TryInsert(genStream(10, 16)); ok {
		t.Error("TryInsert on dropped handle succeeded")
	}

	// The name is reusable immediately; the new query gets a fresh index.
	hNew, err := eng.Register(namedSel("doomed"))
	if err != nil {
		t.Fatalf("re-register dropped name: %v", err)
	}
	outNew := collectOutput(hNew)
	sNew := genStream(6000, 17)
	feedChunked(hNew, sNew, 18)

	feedChunked(hKeep, sKeep[len(sKeep)/2:], 19)
	eng.Drain()
	eng.Close()

	if want := directRun(t, namedSel("keep"), [2][]byte{sKeep, nil}, 128); !bytes.Equal(outKeep.buf, want) {
		t.Errorf("surviving query output: got %d bytes, want %d", len(outKeep.buf), len(want))
	}
	if want := directRun(t, namedSel("doomed"), [2][]byte{sNew, nil}, 128); !bytes.Equal(outNew.buf, want) {
		t.Errorf("re-registered query output: got %d bytes, want %d", len(outNew.buf), len(want))
	}
	if err := hKeep.CheckQuiesced(); err != nil {
		t.Errorf("keep: %v", err)
	}
	if err := eng.Deregister("nope"); err == nil {
		t.Error("Deregister of unknown query succeeded")
	}
}

// TestPerQueryOverload checks that RegisterOptions.Overload overrides the
// engine-wide config for one query only: the constrained query sheds
// under pressure while its sibling, sharing the engine, stays lossless.
func TestPerQueryOverload(t *testing.T) {
	cfg := fastConfig(2)
	eng := New(cfg)
	hFree, err := eng.Register(namedSel("free"))
	if err != nil {
		t.Fatal(err)
	}
	hCapped, err := eng.RegisterWith(namedSel("capped"), RegisterOptions{
		Overload: &overload.Config{
			MaxQueueBytes: 32 << 10,
			Policy:        overload.ShedWeighted,
			MaxWait:       0, // defaulted
			Seed:          42,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	collectOutput(hFree)
	collectOutput(hCapped)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	stream := genStream(40000, 20)
	done := make(chan struct{})
	go func() {
		defer close(done)
		feedChunked(hFree, stream, 21)
	}()
	feedChunked(hCapped, stream, 22)
	<-done
	eng.Drain()
	eng.Close()

	free, capped := hFree.Stats(), hCapped.Stats()
	if free.TuplesShedAdmit != 0 || free.TuplesShed != 0 {
		t.Errorf("unconstrained query shed: %+v", free)
	}
	if free.BytesIn != int64(len(stream)) {
		t.Errorf("unconstrained query admitted %d of %d bytes", free.BytesIn, len(stream))
	}
	// The capped query's ledger must balance regardless of whether the
	// pressure actually triggered sheds in this run: offered == in + shed.
	tsz := int64(syn.TupleSize())
	if capped.BytesOffered != capped.BytesIn+capped.TuplesShedAdmit*tsz {
		t.Errorf("capped ledger: offered %d != in %d + shedAdmit %d tuples",
			capped.BytesOffered, capped.BytesIn, capped.TuplesShedAdmit)
	}
}

// TestLiveRegisterManyUnderChurn registers queries while siblings stream,
// drops some, and checks every query that ever ran satisfies conservation
// — a miniature of the harness dynamic-lifecycle scenario, kept in-package
// so engine refactors hit it first.
func TestLiveRegisterManyUnderChurn(t *testing.T) {
	eng := New(fastConfig(4))
	if _, err := eng.Register(namedSel("q0")); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	var handles []*Handle
	for i := 0; i < 6; i++ {
		h, err := eng.Register(namedSel(fmt.Sprintf("churn%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		collectOutput(h)
		handles = append(handles, h)
		feedChunked(h, genStream(3000, int64(30+i)), int64(40+i))
		if i%2 == 1 {
			if err := eng.Deregister(fmt.Sprintf("churn%d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.Drain()
	eng.Close()
	for _, h := range handles {
		st := h.Stats()
		d := h.Debug()
		if d.Drained != d.TasksCreated {
			t.Errorf("%s: drained %d of %d tasks", h.Name(), d.Drained, d.TasksCreated)
		}
		if st.BytesOffered < st.BytesIn {
			t.Errorf("%s: offered %d < admitted %d", h.Name(), st.BytesOffered, st.BytesIn)
		}
	}
}
