package engine

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"saber/internal/expr"
	"saber/internal/gpu"
	"saber/internal/model"
	"saber/internal/query"
	"saber/internal/window"
)

// TestGPUOnlyMode: CPUWorkers < 0 with a device runs everything on the
// GPGPU and still produces the correct, ordered output.
func TestGPUOnlyMode(t *testing.T) {
	dev := gpu.Open(gpu.Config{SMs: 2, Model: model.Default().Scaled(1e-6)})
	defer dev.Close()
	cfg := fastConfig(1)
	cfg.CPUWorkers = -1
	cfg.GPU = dev
	eng := New(cfg)
	h, err := eng.Register(selQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	stream := genStream(20000, 21)
	h.Insert(stream)
	eng.Drain()
	eng.Close()

	want := directRun(t, selQuery(t), [2][]byte{stream, nil}, 128)
	if !bytes.Equal(out.buf, want) {
		t.Fatalf("gpu-only output differs: %d vs %d bytes", len(out.buf), len(want))
	}
	st := h.Stats()
	if st.TasksCPU != 0 || st.TasksGPU == 0 {
		t.Fatalf("gpu-only split wrong: %+v", st)
	}
}

func TestNoProcessorsRejected(t *testing.T) {
	cfg := fastConfig(1)
	cfg.CPUWorkers = -1
	eng := New(cfg)
	if _, err := eng.Register(selQuery(t)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err == nil {
		t.Fatal("engine started with no processors")
	}
}

func TestGreedyPolicy(t *testing.T) {
	dev := gpu.Open(gpu.Config{SMs: 2, Model: model.Default().Scaled(1e-6)})
	defer dev.Close()
	cfg := fastConfig(2)
	cfg.GPU = dev
	cfg.Policy = "greedy"
	eng := New(cfg)
	h, err := eng.Register(selQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	stream := genStream(20000, 22)
	h.Insert(stream)
	eng.Drain()
	eng.Close()
	want := directRun(t, selQuery(t), [2][]byte{stream, nil}, 128)
	if !bytes.Equal(out.buf, want) {
		t.Fatal("greedy output differs")
	}
	// Greedy without a GPU is rejected.
	cfg2 := fastConfig(1)
	cfg2.Policy = "greedy"
	e2 := New(cfg2)
	if _, err := e2.Register(selQuery(t)); err != nil {
		t.Fatal(err)
	}
	if err := e2.Start(); err == nil {
		t.Fatal("greedy without GPU accepted")
	}
}

// TestModelPaddingSlowsTasks: with the model enabled, task latency must
// reflect the modelled duration rather than raw Go speed.
func TestModelPaddingSlowsTasks(t *testing.T) {
	cfg := Config{
		CPUWorkers: 2,
		TaskSize:   1 << 16, // 2048 tuples of 32 B
		Model:      model.Default().Scaled(100),
	}
	eng := New(cfg)
	q := query.NewBuilder("pad").
		From("S", syn, window.NewCount(64, 64)).
		Where(expr.Cmp{Op: expr.Lt, Left: expr.Col("b"), Right: expr.IntConst(100)}).
		MustBuild()
	h, _ := eng.Register(q)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	// 2048 tuples × (55+14·2) ns × 100 ≈ 17 ms per task minimum.
	h.Insert(genStream(8192, 23))
	eng.Drain()
	eng.Close()
	st := h.Stats()
	if st.AvgLatency < 10*time.Millisecond {
		t.Fatalf("padding ineffective: latency %v", st.AvgLatency)
	}
}

// TestTimeWindowAggregationEngine exercises time-based windows through
// the whole engine (dispatch context propagation across tasks).
func TestTimeWindowAggregationEngine(t *testing.T) {
	q := query.NewBuilder("tw").
		From("S", syn, window.NewTime(500, 100)).
		Aggregate(query.Count, nil, "n").
		MustBuild()
	eng := New(fastConfig(4))
	h, _ := eng.Register(q)
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	stream := genStream(40000, 24) // timestamps 0..39999
	h.Insert(stream)
	eng.Drain()
	eng.Close()
	want := directRun(t, q, [2][]byte{stream, nil}, 100)
	if !bytes.Equal(out.buf, want) {
		t.Fatalf("time-window output differs: %d vs %d bytes", len(out.buf), len(want))
	}
}

// TestManyQueriesShareEngine runs four queries concurrently and checks
// each produces its isolated, correct output.
func TestManyQueriesShareEngine(t *testing.T) {
	eng := New(fastConfig(6))
	mk := func(name string, limit int64) *query.Query {
		return query.NewBuilder(name).
			From("S", syn, window.NewCount(64, 64)).
			Where(expr.Cmp{Op: expr.Lt, Left: expr.Col("b"), Right: expr.IntConst(limit)}).
			MustBuild()
	}
	qs := []*query.Query{mk("q1", 2), mk("q2", 4), mk("q3", 6), mk("q4", 8)}
	var handles []*Handle
	var outs []*struct {
		mu  sync.Mutex
		buf []byte
	}
	for _, q := range qs {
		h, err := eng.Register(q)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		outs = append(outs, collectOutput(h))
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	stream := genStream(30000, 25)
	for _, h := range handles {
		h.Insert(stream)
	}
	eng.Drain()
	eng.Close()
	for i, q := range qs {
		want := directRun(t, q, [2][]byte{stream, nil}, 128)
		if !bytes.Equal(outs[i].buf, want) {
			t.Fatalf("query %s output differs", q.Name)
		}
	}
}
