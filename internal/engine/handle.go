package engine

import (
	"time"

	"saber/internal/obs"
	"saber/internal/schema"
)

// Handle is the application-facing side of a registered query: it ingests
// stream data and exposes the ordered output stream and statistics.
type Handle struct {
	r *registered
}

// Insert appends whole serialised tuples to the query's (single) input
// stream. It blocks when the input buffer is full (backpressure) and
// paces itself to the modelled dispatcher rate.
func (h *Handle) Insert(data []byte) { h.r.insert(0, data) }

// InsertInto appends tuples to input side (0 or 1) of a join query.
func (h *Handle) InsertInto(side int, data []byte) { h.r.insert(side, data) }

// TryInsert is the non-blocking admission path: the whole payload is
// admitted iff it fits the input ring and the overload queue budget
// right now. On false, nothing was consumed and the caller decides —
// retry, redirect, or drop with its own accounting. Payloads larger
// than the ring can never succeed.
func (h *Handle) TryInsert(data []byte) bool { return h.r.tryInsert(0, data) }

// TryInsertInto is TryInsert for input side (0 or 1) of a join query.
func (h *Handle) TryInsertInto(side int, data []byte) bool { return h.r.tryInsert(side, data) }

// OnResult installs fn as the output sink. fn receives ordered chunks of
// serialised output tuples from whichever worker thread completes the
// assembly; it must be fast and must not retain the slice.
func (h *Handle) OnResult(fn func(rows []byte)) { h.r.result.setSink(fn) }

// OutputSchema returns the query's result schema.
func (h *Handle) OutputSchema() *schema.Schema { return h.r.OutputSchema() }

// Name returns the query name.
func (h *Handle) Name() string { return h.r.plan.Q.Name }

// RecentFailures returns the most recent task-execution errors recorded
// for this query (at most a handful are retained), newest last.
func (h *Handle) RecentFailures() []error { return h.r.recentFailures() }

// Committed returns the output byte offset covered by the newest durable
// checkpoint: a downstream consumer that keeps only output up to this
// offset, and resumes from it after a crash and Restore, observes every
// result exactly once. 0 until the first epoch persists.
func (h *Handle) Committed() int64 { return h.r.committed.Load() }

// InputCursor returns the absolute tuple index of the first byte not yet
// dispatched on input side — immediately after Restore, the position the
// feeder (or ingest resume) must replay the stream from. It reads the
// dispatch position under the ingest lock, so it is exact between
// Restore and the first Insert, and a live lower bound afterwards.
func (h *Handle) InputCursor(side int) int64 {
	h.r.insMu.Lock()
	defer h.r.insMu.Unlock()
	in := h.r.ins[side]
	return in.batchStart / int64(in.tupleSize)
}

// statsCounters are the per-query hot-path counters, registered in the
// engine's obs registry under saber.engine.q<i>.* (see metrics.go).
type statsCounters struct {
	bytesIn      *obs.Counter
	bytesOut     *obs.Counter
	tuplesOut    *obs.Counter
	tasksCreated *obs.Counter
	tasksCPU     *obs.Counter
	tasksGPU     *obs.Counter
	latencyNs    *obs.Counter
	latencyN     *obs.Counter

	// Fault-tolerance counters.
	tasksFailed      *obs.Counter // failed execution attempts (all causes)
	tasksRetried     *obs.Counter // failed attempts that were requeued
	tasksQuarantined *obs.Counter // tasks given up on after MaxTaskRetries
	tuplesShed       *obs.Counter // input tuples covered by gap entries (quarantine + policy)
	gpuFailovers     *obs.Counter // GPU-failed tasks pinned to the CPU class
	gpuTimeouts      *obs.Counter // device hangs detected by GPUTaskTimeout
}

// overloadCounters are the per-query overload-protection counters,
// registered under saber.overload.q<i>.* (see metrics.go). Together they
// close the admission ledger: every tuple Insert took responsibility for
// (bytes.offered) is either admitted (saber.engine counters) or counted
// in exactly one shed bucket.
type overloadCounters struct {
	bytesOffered *obs.Counter // bytes Insert accepted responsibility for
	shedAdmit    *obs.Counter // tuples dropped before admission (weighted policy, quiesce abort)
	shedOldest   *obs.Counter // admitted tuples cut as oldest-first gap tasks (also in tuples.shed)
	admitWaits   *obs.Counter // Insert calls that hit the bounded backpressure wait
	admitRejects *obs.Counter // non-blocking TryInsert rejections
}

// Stats is a point-in-time snapshot of one query's counters.
type Stats struct {
	BytesIn      int64
	BytesOut     int64
	TuplesOut    int64
	TasksCreated int64
	TasksCPU     int64
	TasksGPU     int64
	// AvgLatency is the mean task-creation→result-emission latency.
	AvgLatency time.Duration

	// TasksFailed counts failed execution attempts (several per task when
	// it is retried); TasksRetried the attempts requeued for another go;
	// TasksQuarantined the tasks abandoned after MaxTaskRetries, with
	// TuplesShed the input tuples their gap entries cover.
	TasksFailed      int64
	TasksRetried     int64
	TasksQuarantined int64
	TuplesShed       int64
	// GPUFailovers counts GPU-failed tasks pinned over to the CPU class;
	// GPUTimeouts the device hangs detected by GPUTaskTimeout.
	GPUFailovers int64
	GPUTimeouts  int64
	// Overload-protection accounting. BytesOffered is every byte Insert
	// accepted responsibility for; TuplesShedAdmit the tuples dropped
	// before admission (ShedWeighted or a quiesce-aborted Insert);
	// TuplesShedOldest the admitted tuples the ShedOldest policy cut as
	// gap tasks (a subset of TuplesShed). AdmitWaits counts Inserts that
	// hit the bounded backpressure wait, AdmitRejects the TryInsert
	// refusals. offered == in + shed_admit and in == out + shed hold at
	// quiesce (in tuples).
	BytesOffered     int64
	TuplesShedAdmit  int64
	TuplesShedOldest int64
	AdmitWaits       int64
	AdmitRejects     int64
	// DuplicateResults counts deliveries the result stage discarded to
	// keep assembly exactly-once (late results racing their CPU retry).
	DuplicateResults int64
}

// GPUShare is the fraction of executed tasks that ran on the GPGPU.
func (s Stats) GPUShare() float64 {
	total := s.TasksCPU + s.TasksGPU
	if total == 0 {
		return 0
	}
	return float64(s.TasksGPU) / float64(total)
}

// Stats snapshots the query's counters.
func (h *Handle) Stats() Stats {
	c := &h.r.stats
	s := Stats{
		BytesIn:          c.bytesIn.Value(),
		BytesOut:         c.bytesOut.Value(),
		TuplesOut:        c.tuplesOut.Value(),
		TasksCreated:     c.tasksCreated.Value(),
		TasksCPU:         c.tasksCPU.Value(),
		TasksGPU:         c.tasksGPU.Value(),
		TasksFailed:      c.tasksFailed.Value(),
		TasksRetried:     c.tasksRetried.Value(),
		TasksQuarantined: c.tasksQuarantined.Value(),
		TuplesShed:       c.tuplesShed.Value(),
		GPUFailovers:     c.gpuFailovers.Value(),
		GPUTimeouts:      c.gpuTimeouts.Value(),
		DuplicateResults: h.r.result.duplicates.Value(),

		BytesOffered:     h.r.over.bytesOffered.Value(),
		TuplesShedAdmit:  h.r.over.shedAdmit.Value(),
		TuplesShedOldest: h.r.over.shedOldest.Value(),
		AdmitWaits:       h.r.over.admitWaits.Value(),
		AdmitRejects:     h.r.over.admitRejects.Value(),
	}
	if n := c.latencyN.Value(); n > 0 {
		s.AvgLatency = time.Duration(c.latencyNs.Value() / n)
	}
	return s
}
