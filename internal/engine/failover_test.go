package engine

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"saber/internal/fault"
	"saber/internal/gpu"
	"saber/internal/model"
	"saber/internal/task"
)

// TestPlanErrorRetryProducesCorrectOutput: injected plan failures on the
// CPU path are retried and the retries produce byte-identical output —
// the structured failure path replaces the old panic without losing or
// reordering anything.
func TestPlanErrorRetryProducesCorrectOutput(t *testing.T) {
	inj := fault.New(11)
	inj.Arm(fault.PlanExec, fault.Spec{Rate: 1, Limit: 4})

	cfg := fastConfig(4)
	cfg.Fault = inj
	// A requeued task retries at the queue head, so with Rate 1 the same
	// task can absorb several of the four injections back to back; keep
	// the retry budget above the injection limit so it always recovers.
	cfg.MaxTaskRetries = 8
	eng := New(cfg)
	h, err := eng.Register(selQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	stream := genStream(20000, 1)
	h.Insert(stream)
	eng.Drain()
	eng.Close()

	want := directRun(t, selQuery(t), [2][]byte{stream, nil}, 128)
	if !bytes.Equal(out.buf, want) {
		t.Fatalf("output diverged after retries: got %d bytes, want %d", len(out.buf), len(want))
	}
	st := h.Stats()
	if st.TasksFailed != 4 || st.TasksRetried != 4 {
		t.Errorf("failure stats: %+v", st)
	}
	if st.TasksQuarantined != 0 || st.TuplesShed != 0 {
		t.Errorf("unexpected quarantine: %+v", st)
	}
	if errs := h.RecentFailures(); len(errs) != 4 || !fault.Injected(errs[0]) {
		t.Errorf("failure log: %v", errs)
	}
	if err := h.CheckQuiesced(); err != nil {
		t.Error(err)
	}
}

// TestQuarantineRecordsGap: a task that fails every attempt is abandoned
// after MaxTaskRetries, its window range recorded as shed tuples, and —
// critically — Drain completes instead of wedging on the poisoned task.
func TestQuarantineRecordsGap(t *testing.T) {
	inj := fault.New(5)
	inj.Arm(fault.PlanExec, fault.Spec{Rate: 1})

	cfg := fastConfig(4)
	cfg.Fault = inj
	cfg.MaxTaskRetries = 2
	eng := New(cfg)
	h, err := eng.Register(selQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	stream := genStream(5000, 2)

	h.Insert(stream)
	done := make(chan struct{})
	go func() { eng.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Drain wedged on quarantined tasks")
	}
	eng.Close()

	st := h.Stats()
	if len(out.buf) != 0 {
		t.Fatalf("%d output bytes from all-failing tasks", len(out.buf))
	}
	if st.TasksQuarantined != st.TasksCreated {
		t.Errorf("quarantined %d of %d tasks", st.TasksQuarantined, st.TasksCreated)
	}
	if st.TuplesShed != 5000 {
		t.Errorf("shed %d tuples, want 5000", st.TuplesShed)
	}
	if st.TasksFailed != 2*st.TasksCreated {
		t.Errorf("failed attempts %d, want %d", st.TasksFailed, 2*st.TasksCreated)
	}
	if err := h.CheckQuiesced(); err != nil {
		t.Error(err)
	}
}

// TestExactlyOnceConcurrentDelivery hammers the result stage directly:
// several goroutines deliver the same task IDs concurrently (the shape a
// GPU late result racing its CPU retry produces). Exactly one delivery
// per ID may win; everything else must be discarded and counted.
func TestExactlyOnceConcurrentDelivery(t *testing.T) {
	eng := New(fastConfig(1))
	h, err := eng.Register(selQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	r := h.r
	const ids = 64
	const dups = 3
	r.taskSeq.Store(ids) // pretend the dispatcher created them

	var wins atomic.Int64
	var wg sync.WaitGroup
	for id := int64(0); id < ids; id++ {
		for d := 0; d < dups; d++ {
			wg.Add(1)
			go func(id int64) {
				defer wg.Done()
				tk := &task.Task{Query: 0, ID: id, Created: time.Now().UnixNano()}
				if r.result.deliver(tk, r.plan.NewResult()) {
					wins.Add(1)
				}
			}(id)
		}
	}
	wg.Wait()

	if wins.Load() != ids {
		t.Fatalf("%d deliveries won for %d tasks", wins.Load(), ids)
	}
	if got := r.result.duplicates.Value(); got != ids*(dups-1) {
		t.Fatalf("duplicates discarded = %d, want %d", got, ids*(dups-1))
	}
	if got := r.result.drained.Load(); got != ids {
		t.Fatalf("drained = %d, want %d", got, ids)
	}
	if err := r.result.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGPUFailoverExactlyOnce: injected GPU kernel faults fail tasks over
// to the CPU; the output must stay byte-identical to the fault-free
// reference and every failover must be visible in the stats.
func TestGPUFailoverExactlyOnce(t *testing.T) {
	inj := fault.New(99)
	inj.Arm(fault.GPUKernel, fault.Spec{Rate: 0.3, Limit: 100})

	dev := gpu.Open(gpu.Config{SMs: 2, Model: model.Default().Scaled(1e-6), Fault: inj})
	defer dev.Close()

	cfg := fastConfig(4)
	cfg.GPU = dev
	eng := New(cfg)
	h, err := eng.Register(selQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	stream := genStream(60000, 7)
	h.Insert(stream)
	eng.Drain()
	eng.Close()

	want := directRun(t, selQuery(t), [2][]byte{stream, nil}, 128)
	if !bytes.Equal(out.buf, want) {
		t.Fatalf("output diverged under GPU faults: got %d bytes, want %d", len(out.buf), len(want))
	}
	st := h.Stats()
	if inj.TotalInjections() == 0 {
		t.Fatal("no faults injected — test exercised nothing")
	}
	if st.GPUFailovers == 0 || st.GPUFailovers != st.TasksFailed {
		t.Errorf("failover stats: %+v", st)
	}
	if st.TasksQuarantined != 0 {
		t.Errorf("quarantine under single-shot faults: %+v", st)
	}
	if err := h.CheckQuiesced(); err != nil {
		t.Error(err)
	}
}

// TestGPUHangTimeoutFailover: an injected device hang trips the engine's
// GPU task timeout; the task fails over to the CPU while the device's
// eventual late completion is collected and discarded by the
// exactly-once result stage — the output never duplicates a window.
func TestGPUHangTimeoutFailover(t *testing.T) {
	inj := fault.New(21)
	inj.Arm(fault.GPUHang, fault.Spec{Rate: 0.1, Delay: 50 * time.Millisecond, Limit: 3})

	dev := gpu.Open(gpu.Config{SMs: 2, Model: model.Default().Scaled(1e-6), Fault: inj})

	cfg := fastConfig(4)
	cfg.GPU = dev
	cfg.GPUTaskTimeout = 5 * time.Millisecond
	eng := New(cfg)
	h, err := eng.Register(selQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	stream := genStream(40000, 9)
	h.Insert(stream)
	eng.Drain()
	eng.Close() // waits for late-result collectors
	dev.Close()

	want := directRun(t, selQuery(t), [2][]byte{stream, nil}, 128)
	if !bytes.Equal(out.buf, want) {
		t.Fatalf("output diverged under device hangs: got %d bytes, want %d", len(out.buf), len(want))
	}
	st := h.Stats()
	if dev.Hangs() == 0 {
		t.Fatal("no hangs injected — test exercised nothing")
	}
	if st.GPUTimeouts == 0 {
		t.Errorf("hangs injected but no timeouts detected: %+v", st)
	}
	if st.DuplicateResults == 0 {
		t.Errorf("late results never raced the CPU retry: %+v", st)
	}
	if err := h.CheckQuiesced(); err != nil {
		t.Error(err)
	}
}
