package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"saber/internal/exec"
	"saber/internal/gpu"
	"saber/internal/model"
	"saber/internal/obs"
	"saber/internal/overload"
	"saber/internal/ringbuf"
	"saber/internal/schema"
	"saber/internal/task"
	"saber/internal/window"
)

// registered is one query's runtime state: per-input circular buffers and
// dispatch positions, the compiled plan (and GPGPU program), and the
// result stage.
type registered struct {
	e    *Engine
	idx  int
	plan *exec.Plan
	prog *gpu.Program
	cost model.QueryCost

	insMu sync.Mutex
	ins   [2]*inputStream

	// bufMu additionally guards the ins[i].ring and ins[i].cols POINTER
	// fields (not their contents): release nils them under insMu+bufMu,
	// so readers outside the dispatch path (watchdog, Debug) take the
	// never-contended bufMu instead of insMu — which an admission wait
	// can hold across its entire bounded backpressure loop.
	bufMu sync.Mutex

	// ov is the query's effective overload-protection config: the
	// per-query override from RegisterOptions, else the engine's
	// Config.Overload. nil disables budgets and shedding for this query.
	ov *overload.Config

	// paused gates task cutting (Pause/Resume): admission continues,
	// dispatch stops at the current task boundary.
	paused atomic.Bool
	// dropped marks a deregistered tombstone: inserts stop admitting,
	// workers never see new tasks, and the buffers have been released.
	dropped atomic.Bool

	taskSeq atomic.Int64
	result  *resultStage
	stats   statsCounters
	over    overloadCounters

	// shed makes the ShedWeighted coin flips; nil unless the engine has
	// an Overload config. Guarded by insMu (which also makes the flip
	// sequence deterministic for a seed).
	shed *overload.Shedder
	// shedTaskQuota is ShedOldest's worker-side escape valve: when the
	// bounded admission wait expires but every buffered byte is already
	// cut into queued tasks (so shedOldestLocked has nothing to cut),
	// admit grants one task of quota here and the next worker pickup for
	// this query delivers that task as an accounted gap instead of
	// executing it. FCFS pickup makes it the oldest queued work. Held at
	// most 1 so sheds stay paced one bounded wait apart.
	shedTaskQuota atomic.Int64

	// committed is the output byte offset covered by the newest durable
	// checkpoint — the exactly-once cutoff Handle.Committed reports to
	// downstream consumers. 0 until the first epoch persists.
	committed atomic.Int64
	// restoredRates carries a checkpoint's learned CPU/GPU throughput row
	// from Restore (pre-Start) to the matrix created at Start.
	restoredRates [2]float64

	// failMu guards failLog, a small ring of the most recent task errors
	// (diagnostics; counters carry the volume).
	failMu  sync.Mutex
	failLog []error
}

// maxFailLog bounds the retained per-query error history.
const maxFailLog = 8

// recordFailure appends a task error to the bounded failure log.
func (r *registered) recordFailure(err error) {
	if err == nil {
		return
	}
	r.failMu.Lock()
	if len(r.failLog) == maxFailLog {
		copy(r.failLog, r.failLog[1:])
		r.failLog = r.failLog[:maxFailLog-1]
	}
	r.failLog = append(r.failLog, err)
	r.failMu.Unlock()
}

// recentFailures snapshots the failure log, newest last.
func (r *registered) recentFailures() []error {
	r.failMu.Lock()
	defer r.failMu.Unlock()
	out := make([]error, len(r.failLog))
	copy(out, r.failLog)
	return out
}

type inputStream struct {
	ring      *ringbuf.Buffer
	tupleSize int
	// cols mirrors the ring's retained window as per-field column
	// segments (nil under Config.RowLayout). The dispatcher appends right
	// after ring.Put accepts the same bytes; the result stage releases
	// columns before the ring (see ringbuf.ColumnStore).
	cols *ringbuf.ColumnStore
	// colViews counts tasks handed zero-copy column views; colCopies
	// counts the wrap fallback (one memcpy per column, still no per-tuple
	// gather).
	colViews  atomic.Int64
	colCopies atomic.Int64
	// batchStart is the ring offset of the first undispatched byte;
	// firstIndex the absolute tuple index it corresponds to; prevTS the
	// timestamp of the last tuple already dispatched.
	batchStart int64
	firstIndex int64
	prevTS     int64
	// pendingSince stamps (unix ns) when the oldest undispatched byte
	// arrived, feeding the trace's ingest stage (batching delay). 0 when
	// nothing is pending. Guarded by insMu, like the dispatch positions.
	pendingSince int64
}

func newRegistered(e *Engine, idx int, plan *exec.Plan, ov *overload.Config) *registered {
	r := &registered{e: e, idx: idx, plan: plan, cost: model.Analyze(plan.Q), ov: ov}
	r.stats = newStatsCounters(e.reg, idx)
	r.over = newOverloadCounters(e.reg, idx)
	if ov != nil {
		// Offset the seed per query so two queries sharing a config do
		// not shed in lockstep.
		cfg := *ov
		cfg.Seed += int64(idx) * 7919
		r.shed = overload.NewShedder(cfg)
	}
	for i := 0; i < plan.NumInputs(); i++ {
		s := plan.InputSchema(i)
		r.ins[i] = &inputStream{
			ring:      ringbuf.MustNew(e.cfg.InputBufferSize),
			tupleSize: s.TupleSize(),
			prevTS:    window.NoPrev,
		}
		r.ins[i].ring.SetInvariantName(fmt.Sprintf("ringbuf[q%d/in%d]", idx, i))
		if !e.cfg.RowLayout {
			// Shred only the fields the compiled plan reads through column
			// views (projection pushdown to ingest): the dispatcher-thread
			// shred cost then scales with the query's working columns, and a
			// plan that reads no columns at all — e.g. an identity-projection
			// selection, which streams whole rows for its output anyway —
			// skips the column store entirely.
			read := plan.ColumnsRead(i)
			any := false
			for _, r := range read {
				any = any || r
			}
			if any {
				offs := make([]int, s.NumFields())
				widths := make([]int, s.NumFields())
				for f := range offs {
					offs[f] = s.Offset(f)
					widths[f] = s.Field(f).Type.Size()
				}
				r.ins[i].cols = ringbuf.MustNewColumnStore(offs, widths, read, s.TupleSize(),
					e.cfg.InputBufferSize/s.TupleSize())
			}
		}
	}
	r.result = newResultStage(r, e.cfg.ResultSlots)
	return r
}

// insert is the dispatching stage (paper §4.1): buffer the data, then cut
// fixed-size query tasks. Window boundary computation is postponed to the
// tasks; the dispatcher only advances O(1) counters.
//
// Admission is bounded-wait (see admit): backpressure against the ring
// and the Overload queue budget, with the configured shedding policy as
// the escape valve, and a quiesce abort so a blocked Insert can never
// deadlock Drain or Close. Every offered byte lands in exactly one
// accounting bucket — admitted (bytes.in), admission-shed, or gap-shed —
// so `offered == out + shed` holds at quiesce.
func (r *registered) insert(side int, data []byte) {
	if len(data) == 0 || r.dropped.Load() {
		return
	}
	start := time.Now()
	in := r.ins[side]
	if len(data)%in.tupleSize != 0 {
		panic("engine: Insert data must be whole tuples")
	}
	r.insMu.Lock()
	// Re-check under the lock: a concurrent Deregister nils the ring
	// under insMu, so past this point the buffers are stable for the
	// whole call. A dropped query's bytes stay with the caller (neither
	// offered nor shed), like a rejected TryInsert.
	if r.dropped.Load() || in.ring == nil {
		r.insMu.Unlock()
		return
	}
	r.over.bytesOffered.Add(int64(len(data)))

	// Feed the ring in chunks no larger than half its capacity so that
	// arbitrarily large Insert calls simply experience backpressure. A
	// queue budget additionally caps the chunk at half the effective
	// budget: a chunk as large as the budget itself could only ever be
	// admitted into an empty ring, so a sub-phi residual (buffered bytes
	// too few to cut a task, released only at drain) would wedge
	// admission for good. Half leaves headroom for exactly that residue.
	chunk := in.ring.Capacity() / 2
	if ov := r.ov; ov != nil && ov.MaxQueueBytes > 0 {
		if b := overload.EffectiveBudget(ov.MaxQueueBytes, r.e.taskSize.Load(), 0) / 2; b < int64(chunk) {
			chunk = int(b)
		}
	}
	chunk -= chunk % in.tupleSize
	if chunk < in.tupleSize {
		chunk = in.tupleSize
	}
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		switch r.admit(side, in, data[off:end]) {
		case admitDropped:
			// ShedWeighted dropped this chunk before admission.
			r.over.shedAdmit.Add(int64((end - off) / in.tupleSize))
			continue
		case admitQuiesced:
			// The engine began Drain/Close: nothing further can ever be
			// admitted. Account the rest as admission-shed and bail out
			// rather than block shutdown.
			r.over.shedAdmit.Add(int64((len(data) - off) / in.tupleSize))
			r.insMu.Unlock()
			return
		}
		if in.pendingSince == 0 {
			in.pendingSince = time.Now().UnixNano()
		}
		if in.cols != nil {
			// Shred into the column segments while the chunk is still hot
			// in cache: ring admission above is the capacity gate, so the
			// append cannot overflow.
			in.cols.Append(data[off:end])
		}
		r.stats.bytesIn.Add(int64(end - off))
		if !r.paused.Load() {
			if r.plan.NumInputs() == 1 {
				for r.pendingBytes(0) >= r.e.taskSize.Load() {
					r.cutSingle()
				}
			} else {
				for r.combinedPending() >= r.e.taskSize.Load() {
					if !r.cutPair(false) {
						break
					}
				}
			}
		}
	}
	r.insMu.Unlock()

	if !r.e.cfg.DisablePad {
		model.Pad(start, r.e.cfg.Model.DispatchTime(len(data)))
	}
}

// admitVerdict is admit's outcome for one chunk.
type admitVerdict int

const (
	admitOK       admitVerdict = iota // chunk is in the ring
	admitDropped                      // ShedWeighted dropped it pre-admission
	admitQuiesced                     // engine is shutting down; nothing admitted
)

// admit places one chunk into the input ring with bounded waiting.
// Called with insMu held. The loop:
//
//   - aborts as soon as the engine quiesces (Drain/Close), which is the
//     no-deadlock guarantee: the ring may never drain once workers stop,
//     so unbounded spinning here would wedge shutdown behind insMu;
//   - admits when the chunk fits both the ring and the effective
//     Overload queue budget;
//   - once the bounded wait (Overload.MaxWait) expires with the shedding
//     policy armed, actuates it — ShedOldest frees budget by cutting the
//     stalest undispatched range as an accounted gap task, ShedWeighted
//     drops the incoming chunk with the per-source weighted coin;
//   - otherwise backs off (exponential, capped) and retries: plain
//     quiesce-aware backpressure.
func (r *registered) admit(side int, in *inputStream, p []byte) admitVerdict {
	ov := r.ov
	// since stamps when the current bounded wait began. MaxWait is wall
	// time, so it must be measured, not inferred from the nominal backoff
	// sleeps — time.Sleep(10µs) routinely runs several times longer under
	// timer slack, and summing the nominal durations would let a blocked
	// Insert wait many times MaxWait without the policy ever actuating.
	var since time.Time
	backoff := 10 * time.Microsecond
	counted := false
	for {
		if r.e.quiescing() || r.dropped.Load() {
			return admitQuiesced
		}
		if !r.overBudget(in, int64(len(p))) {
			if _, ok := in.ring.TryPut(p); ok {
				return admitOK
			}
		}
		if since.IsZero() {
			since = time.Now()
		}
		// The policy actuates only when the configured budget is the
		// binding constraint. A ring-full block within budget is ordinary
		// backpressure and must stay lossless — otherwise a generous
		// budget over a small ring would shed where the operator asked
		// for blocking.
		if ov != nil && ov.Policy != overload.ShedNone && time.Since(since) >= ov.MaxWait &&
			r.overBudget(in, int64(len(p))) && r.e.shedActive() {
			switch ov.Policy {
			case overload.ShedOldest:
				if r.shedOldestLocked(side) {
					// The gap's space is reclaimed asynchronously at the
					// drain frontier, so pace further sheds by another
					// bounded wait instead of cascading through all
					// pending data at once.
					since = time.Now()
					continue
				}
				// Nothing undispatched to shed — the eager dispatcher has
				// already cut everything into queued tasks. Grant the
				// worker-side quota instead: the next pickup for this
				// query sheds its (oldest queued) task as a gap, and its
				// drain reclaims the budget. One grant at a time keeps
				// sheds paced one bounded wait apart.
				r.shedTaskQuota.CompareAndSwap(0, 1)
				since = time.Now()
			case overload.ShedWeighted:
				if r.shed.DropChunk(side) {
					return admitDropped
				}
				since = time.Now() // survived the coin; re-wait before re-flipping
			}
		}
		if !counted {
			r.over.admitWaits.Add(1)
			counted = true
		}
		time.Sleep(backoff)
		if backoff < time.Millisecond {
			backoff *= 2
		}
	}
}

// overBudget reports whether admitting need more bytes would exceed the
// input's effective queue budget (Overload.MaxQueueBytes floored to stay
// cuttable; see overload.EffectiveBudget). Ring occupancy — buffered but
// not yet released bytes — is the queue-depth measure.
func (r *registered) overBudget(in *inputStream, need int64) bool {
	ov := r.ov
	if ov == nil || ov.MaxQueueBytes <= 0 {
		return false
	}
	budget := overload.EffectiveBudget(ov.MaxQueueBytes, r.e.taskSize.Load(), need)
	return in.ring.Size()+need > budget
}

// shedOldestLocked cuts up to one ϕ of the oldest undispatched tuples on
// side as a gap task delivered straight to the result stage: their ring
// and column space is reclaimed in drain order, timestamp continuity is
// preserved through the usual EndPrevTS bookkeeping, and the tuples are
// counted shed — exactly the quarantine machinery, driven by policy
// instead of failure. Called with insMu held; returns false when nothing
// is undispatched.
func (r *registered) shedOldestLocked(side int) bool {
	in := r.ins[side]
	n := r.e.taskSize.Load() / int64(in.tupleSize)
	if n < 1 {
		n = 1
	}
	if r.pendingBytes(side)/int64(in.tupleSize) < n {
		// Never shed a sub-ϕ range: a gap narrower than a task would shift
		// every later count-window boundary off the task grid, stranding
		// straddled windows open until the end-of-stream flush. Defer to
		// the worker-side quota, which sheds whole queued tasks only.
		return false
	}
	var tuples [2]int64
	tuples[side] = n
	r.emit(tuples, true)
	r.stats.tuplesShed.Add(n)
	r.over.shedOldest.Add(n)
	return true
}

// takeShedTask consumes one unit of the worker-side ShedOldest quota.
// Workers call it on every pickup; it is a single load on the (vastly
// common) unarmed path.
func (r *registered) takeShedTask() bool {
	for {
		q := r.shedTaskQuota.Load()
		if q <= 0 {
			return false
		}
		if r.shedTaskQuota.CompareAndSwap(q, q-1) {
			return true
		}
	}
}

func (r *registered) pendingBytes(side int) int64 {
	in := r.ins[side]
	return in.ring.End() - in.batchStart
}

func (r *registered) combinedPending() int64 {
	return r.pendingBytes(0) + r.pendingBytes(1)
}

// cutSingle dispatches one task of exactly ϕ bytes (tuple-aligned) from
// the single input. ϕ is re-read per cut, so an adaptive resize takes
// effect at the very next task boundary.
func (r *registered) cutSingle() {
	in := r.ins[0]
	n := r.e.taskSize.Load() / int64(in.tupleSize)
	if n < 1 {
		n = 1
	}
	r.emit([2]int64{n, 0}, false)
}

// cutPair dispatches a two-input task, splitting both inputs' pending
// data proportionally so the combined volume approximates TaskSize. When
// the application feeds the two inputs stream-aligned (as the paper's
// join workloads do), proportional cuts keep the batches aligned even for
// rate-mismatched inputs such as SG3's local/global averages. Returns
// false when nothing is pending.
func (r *registered) cutPair(tail bool) bool {
	a, b := r.ins[0], r.ins[1]
	pa := r.pendingBytes(0) / int64(a.tupleSize)
	pb := r.pendingBytes(1) / int64(b.tupleSize)
	if pa == 0 && pb == 0 {
		return false
	}
	na, nb := pa, pb
	if !tail {
		phi := r.e.taskSize.Load()
		total := pa*int64(a.tupleSize) + pb*int64(b.tupleSize)
		if total > phi {
			f := float64(phi) / float64(total)
			na = int64(float64(pa) * f)
			nb = int64(float64(pb) * f)
			if na == 0 && nb == 0 {
				return false
			}
		}
	}
	r.emit([2]int64{na, nb}, false)
	return true
}

// emit cuts tuples[i] tuples from each input and enqueues the task.
// With shed set the task is a policy-shed gap: it is sequenced and
// accounted like any other cut (ring/column release, timestamp
// continuity, drain barrier) but delivered straight to the result stage
// as a gap instead of being scheduled.
func (r *registered) emit(tuples [2]int64, shed bool) {
	t := &task.Task{
		Query:   r.idx,
		ID:      r.taskSeq.Add(1) - 1,
		Created: time.Now().UnixNano(),
	}
	t.Trace = r.e.tracer.Begin(r.idx, t.ID, t.Created)
	// Ingest stage: how long the batch's oldest byte waited in the rings
	// before the dispatcher cut this task.
	oldest := int64(0)
	for i := 0; i < r.plan.NumInputs(); i++ {
		if p := r.ins[i].pendingSince; p > 0 && (oldest == 0 || p < oldest) {
			oldest = p
		}
	}
	if oldest > 0 {
		t.Trace.SetStage(obs.StageIngest, time.Duration(t.Created-oldest))
	}
	for i := 0; i < r.plan.NumInputs(); i++ {
		in := r.ins[i]
		n := tuples[i]
		end := in.batchStart + n*int64(in.tupleSize)
		var data []byte
		if n > 0 {
			if view, ok := in.ring.Contiguous(in.batchStart, end); ok {
				data = view
			} else {
				data = in.ring.CopyTo(nil, in.batchStart, end)
			}
		}
		var cols [][]byte
		if n > 0 && in.cols != nil {
			// Hand the task dense per-field views of its tuple range:
			// zero-copy when the range doesn't cross the segment boundary,
			// one memcpy per column when it does. The view headers are
			// per-task (they travel with it through retries), so Views
			// gets a nil scratch.
			if v, ok := in.cols.Views(nil, in.firstIndex, in.firstIndex+n); ok {
				cols = v
				in.colViews.Add(1)
			} else {
				cols = in.cols.CopyViews(nil, in.firstIndex, in.firstIndex+n)
				in.colCopies.Add(1)
			}
		}
		t.In[i] = exec.Batch{Data: data, Cols: cols, Ctx: window.Context{
			FirstIndex:    in.firstIndex,
			PrevTimestamp: in.prevTS,
		}}
		t.FreeTo[i] = end
		if n > 0 {
			last := data[(n-1)*int64(in.tupleSize):]
			in.prevTS = r.plan.InputSchema(i).Timestamp(last)
		}
		// Stamp the batch-end timestamp on the task: the result stage
		// records it at the drain frontier so a checkpoint can restore
		// window.Context continuity for the first post-recovery batch.
		t.EndPrevTS[i] = in.prevTS
		in.batchStart = end
		in.firstIndex += n
		// Re-arm the pending stamp for the bytes left behind. Their true
		// arrival is unknown (between the old stamp and now), so restart
		// the clock — the ingest stage under-reports by at most one task's
		// batching interval.
		if in.ring.End() == end {
			in.pendingSince = 0
		} else {
			in.pendingSince = t.Created
		}
	}
	r.stats.tasksCreated.Add(1)
	if shed {
		r.result.deliverGap(t)
		return
	}
	if !r.e.queue.PushOpen(t) {
		// The queue closed between the admission quiesce check and this
		// cut — Close (which closes the queue without the dispatch lock)
		// racing an Insert. The task is already sequenced and the drain
		// barrier counts it, so record it as a shed gap no worker will
		// ever run instead of panicking on the closed queue.
		if r.result.deliverGap(t) {
			n := tuples[0] + tuples[1]
			r.stats.tuplesShed.Add(n)
		}
	}
}

// tryInsert is the non-blocking admission path: the whole payload is
// admitted iff it fits the ring and the queue budget right now, else
// nothing is consumed and the caller keeps the data (count in
// admit.rejects). Unlike insert it never waits and never sheds.
func (r *registered) tryInsert(side int, data []byte) bool {
	if len(data) == 0 {
		return true
	}
	start := time.Now()
	in := r.ins[side]
	if len(data)%in.tupleSize != 0 {
		panic("engine: Insert data must be whole tuples")
	}
	r.insMu.Lock()
	if r.e.quiescing() || r.dropped.Load() || in.ring == nil || r.overBudget(in, int64(len(data))) {
		r.insMu.Unlock()
		r.over.admitRejects.Add(1)
		return false
	}
	if _, ok := in.ring.TryPut(data); !ok {
		r.insMu.Unlock()
		r.over.admitRejects.Add(1)
		return false
	}
	// Offered counts only what admission took responsibility for: a
	// rejected TryInsert leaves the bytes with the caller, so they are
	// neither offered nor shed.
	r.over.bytesOffered.Add(int64(len(data)))
	if in.pendingSince == 0 {
		in.pendingSince = time.Now().UnixNano()
	}
	if in.cols != nil {
		in.cols.Append(data)
	}
	r.stats.bytesIn.Add(int64(len(data)))
	if !r.paused.Load() {
		if r.plan.NumInputs() == 1 {
			for r.pendingBytes(0) >= r.e.taskSize.Load() {
				r.cutSingle()
			}
		} else {
			for r.combinedPending() >= r.e.taskSize.Load() {
				if !r.cutPair(false) {
					break
				}
			}
		}
	}
	r.insMu.Unlock()

	if !r.e.cfg.DisablePad {
		model.Pad(start, r.e.cfg.Model.DispatchTime(len(data)))
	}
	return true
}

// dispatchTail flushes any remaining partial batch as a final (smaller)
// task, regardless of pause state. Called with the engine's dispatch
// lock held, during Drain and Deregister.
func (r *registered) dispatchTail() {
	r.insMu.Lock()
	defer r.insMu.Unlock()
	if r.ins[0] == nil || r.ins[0].ring == nil {
		return // already released
	}
	if r.plan.NumInputs() == 1 {
		if n := r.pendingBytes(0) / int64(r.ins[0].tupleSize); n > 0 {
			r.emit([2]int64{n, 0}, false)
		}
		return
	}
	for r.cutPair(true) {
	}
}

// cutBacklog cuts every full ϕ of data buffered while the query was
// paused (Resume's catch-up path).
func (r *registered) cutBacklog() {
	r.insMu.Lock()
	defer r.insMu.Unlock()
	if r.ins[0] == nil || r.ins[0].ring == nil {
		return
	}
	if r.plan.NumInputs() == 1 {
		for r.pendingBytes(0) >= r.e.taskSize.Load() {
			r.cutSingle()
		}
	} else {
		for r.combinedPending() >= r.e.taskSize.Load() {
			if !r.cutPair(false) {
				break
			}
		}
	}
}

// awaitTaskBoundary blocks until every task cut so far has drained —
// the quiesce point Pause and Deregister converge on. Returns early if
// the engine is closed (workers are gone; nothing further will drain).
func (r *registered) awaitTaskBoundary() {
	for r.result.drained.Load() < r.taskSeq.Load() {
		if r.e.stopped.Load() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// waitDrained blocks until every dispatched task's result has been
// assembled, then flushes still-open windows.
func (r *registered) waitDrained() {
	r.awaitTaskBoundary()
	r.result.flush()
}

// release frees a dropped query's buffer memory: the metric mirrors are
// rebound to zero functions (dropping their captured ring pointers), then
// the ring and column-store references are cut under insMu (dispatch
// path) plus bufMu (watchdog/debug readers). The registered entry itself
// stays as a tombstone.
func (r *registered) release() {
	r.e.releaseQueryMirrors(r)
	r.insMu.Lock()
	r.bufMu.Lock()
	for i := 0; i < r.plan.NumInputs(); i++ {
		if in := r.ins[i]; in != nil {
			in.ring = nil
			in.cols = nil
		}
	}
	r.bufMu.Unlock()
	r.insMu.Unlock()
}

// OutputSchema of the query.
func (r *registered) OutputSchema() *schema.Schema { return r.plan.OutputSchema() }
