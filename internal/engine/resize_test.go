package engine

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"saber/internal/fault"
	"saber/internal/gpu"
	"saber/internal/model"
	"saber/internal/query"
	"saber/internal/window"
)

// Differential resize tests: a run whose ϕ changes mid-stream must
// produce output byte-identical to a fixed-ϕ run. Window boundaries are
// computed from window.Context (FirstIndex, PrevTimestamp), not from
// task extents, so where the dispatcher cuts must be invisible in the
// results — these tests are the proof.

// insertResizing feeds stream in chunks, resizing ϕ between chunks on a
// deterministic seeded schedule. Returns the sizes it applied so a
// failing run logs its schedule.
func insertResizing(h *Handle, eng *Engine, stream []byte, chunks int, seed int64) []int {
	rnd := rand.New(rand.NewSource(seed))
	sizes := []int{512, 1024, 2048, 4096, 8192, 16384}
	var applied []int
	chunk := (len(stream)/chunks/syn.TupleSize() + 1) * syn.TupleSize()
	for off := 0; off < len(stream); off += chunk {
		end := off + chunk
		if end > len(stream) {
			end = len(stream)
		}
		h.Insert(stream[off:end])
		phi := sizes[rnd.Intn(len(sizes))]
		applied = append(applied, eng.SetTaskSize(phi))
	}
	return applied
}

// TestResizeMidStreamByteIdentical: a selection (ordered, no
// aggregation — every input tuple maps to at most one output tuple, so
// the comparison is bytes.Equal, no sorting) through a run that resizes
// ϕ a dozen times mid-stream.
func TestResizeMidStreamByteIdentical(t *testing.T) {
	stream := genStream(40000, 31)
	want := directRun(t, selQuery(t), [2][]byte{stream, nil}, 128)

	for _, seed := range []int64{1, 2, 3} {
		eng := New(fastConfig(4))
		h, err := eng.Register(selQuery(t))
		if err != nil {
			t.Fatal(err)
		}
		out := collectOutput(h)
		if err := eng.Start(); err != nil {
			t.Fatal(err)
		}
		applied := insertResizing(h, eng, stream, 12, seed)
		eng.Drain()
		eng.Close()

		if !bytes.Equal(out.buf, want) {
			t.Fatalf("seed %d: output diverged under resizes %v: got %d bytes, want %d",
				seed, applied, len(out.buf), len(want))
		}
		if err := h.CheckQuiesced(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestResizeMidStreamAggregationWindows: the window-boundary variant —
// a grouped sliding-window aggregation is the construct that breaks
// first if a resize shifted a window edge, double-counted a pane, or
// dropped one.
func TestResizeMidStreamAggregationWindows(t *testing.T) {
	stream := genStream(30000, 32)
	want := directRun(t, aggQuery(t), [2][]byte{stream, nil}, 128)
	ref := sortedRows(aggQuery(t).OutputSchema(), want)

	eng := New(fastConfig(4))
	h, err := eng.Register(aggQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	applied := insertResizing(h, eng, stream, 16, 7)
	eng.Drain()
	eng.Close()

	got := sortedRows(h.OutputSchema(), out.buf)
	if len(got) != len(ref) {
		t.Fatalf("window rows under resizes %v: got %d want %d", applied, len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("window row %d diverged under resizes %v: got %s want %s",
				i, applied, got[i], ref[i])
		}
	}
	if err := h.CheckQuiesced(); err != nil {
		t.Error(err)
	}
}

// TestResizeOrderingPreserved: results must stay in task order across a
// resize — the result stage sequences on task IDs, which a resize must
// not perturb. Window timestamps from an ungrouped tumbling-count
// aggregation are strictly ordered, so any reorder shows up as a
// timestamp regression.
func TestResizeOrderingPreserved(t *testing.T) {
	q := query.NewBuilder("ord-resize").
		From("S", syn, window.NewCount(100, 100)).
		Aggregate(query.Count, nil, "n").
		MustBuild()
	eng := New(fastConfig(8))
	h, err := eng.Register(q)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var firsts []int64
	osz := h.OutputSchema().TupleSize()
	sch := h.OutputSchema()
	h.OnResult(func(rows []byte) {
		mu.Lock()
		for i := 0; i+osz <= len(rows); i += osz {
			firsts = append(firsts, sch.Timestamp(rows[i:]))
		}
		mu.Unlock()
	})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	insertResizing(h, eng, genStream(50000, 33), 20, 9)
	eng.Drain()
	eng.Close()

	for i := 1; i < len(firsts); i++ {
		if firsts[i] < firsts[i-1] {
			t.Fatalf("window timestamps regressed after resize: %d after %d (index %d)",
				firsts[i], firsts[i-1], i)
		}
	}
}

// TestResizeConcurrentWithIngest: SetTaskSize racing Insert and the
// dispatcher — the shape the live adaptive controller produces, where
// the control loop runs beside the feed. Output must still match;
// running under -race proves the atomics hold up.
func TestResizeConcurrentWithIngest(t *testing.T) {
	stream := genStream(60000, 34)
	want := directRun(t, selQuery(t), [2][]byte{stream, nil}, 128)

	eng := New(fastConfig(4))
	h, err := eng.Register(selQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rnd := rand.New(rand.NewSource(17))
		sizes := []int{512, 1024, 4096, 16384}
		for {
			select {
			case <-stop:
				return
			default:
				eng.SetTaskSize(sizes[rnd.Intn(len(sizes))])
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	tsz := syn.TupleSize()
	for off := 0; off < len(stream); off += 200 * tsz {
		end := off + 200*tsz
		if end > len(stream) {
			end = len(stream)
		}
		h.Insert(stream[off:end])
	}
	eng.Drain()
	close(stop)
	wg.Wait()
	eng.Close()

	if !bytes.Equal(out.buf, want) {
		t.Fatalf("output diverged under concurrent resizes: got %d bytes, want %d",
			len(out.buf), len(want))
	}
	if err := h.CheckQuiesced(); err != nil {
		t.Error(err)
	}
}

// TestResizeDuringGPUFailover: resizes while injected GPU faults push
// tasks through the GPU→CPU failover path. Exactly-once delivery and
// byte-identical output must both survive the combination — a task cut
// at one ϕ retries on the CPU at that same extent even if ϕ has moved
// since.
func TestResizeDuringGPUFailover(t *testing.T) {
	inj := fault.New(55)
	inj.Arm(fault.GPUKernel, fault.Spec{Rate: 0.3, Limit: 200})

	dev := gpu.Open(gpu.Config{SMs: 2, Model: model.Default().Scaled(1e-6), Fault: inj})
	defer dev.Close()

	cfg := fastConfig(4)
	cfg.GPU = dev
	eng := New(cfg)
	h, err := eng.Register(selQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	out := collectOutput(h)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	stream := genStream(60000, 35)
	applied := insertResizing(h, eng, stream, 15, 21)
	eng.Drain()
	eng.Close()

	want := directRun(t, selQuery(t), [2][]byte{stream, nil}, 128)
	if !bytes.Equal(out.buf, want) {
		t.Fatalf("output diverged under resize+failover (resizes %v): got %d bytes, want %d",
			applied, len(out.buf), len(want))
	}
	st := h.Stats()
	if inj.TotalInjections() == 0 {
		t.Fatal("no faults injected — test exercised nothing")
	}
	if st.GPUFailovers == 0 {
		t.Errorf("faults injected but no failovers: %+v", st)
	}
	if err := h.CheckQuiesced(); err != nil {
		t.Error(err)
	}
}

// TestSetTaskSizeClamps pins the safety clamps: below the widest
// tuple's size ϕ rises to the floor, above a quarter of the input ring
// it is capped, and the engine reports what it actually applied.
func TestSetTaskSizeClamps(t *testing.T) {
	cfg := fastConfig(1)
	cfg.InputBufferSize = 1 << 20
	eng := New(cfg)
	if _, err := eng.Register(selQuery(t)); err != nil {
		t.Fatal(err)
	}

	if got := eng.SetTaskSize(1); got < syn.TupleSize() {
		t.Fatalf("ϕ=1 clamped to %d, below tuple size %d", got, syn.TupleSize())
	}
	if got := eng.SetTaskSize(64 << 20); got != cfg.InputBufferSize/4 {
		t.Fatalf("huge ϕ clamped to %d, want ring/4 = %d", got, cfg.InputBufferSize/4)
	}
	if got, want := eng.SetTaskSize(8192), 8192; got != want {
		t.Fatalf("in-range ϕ altered: got %d want %d", got, want)
	}
	if got := eng.TaskSize(); got != 8192 {
		t.Fatalf("TaskSize() = %d after SetTaskSize(8192)", got)
	}
}
