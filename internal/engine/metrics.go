package engine

import (
	"fmt"

	"saber/internal/fault"
	"saber/internal/obs"
	"saber/internal/sched"
)

// All engine telemetry reports through one obs.Registry under the
// canonical dotted naming scheme (see package obs). Hot-path counters
// (per-task, per-insert) are obs.Counters owned by this package; telemetry
// that leaf subsystems already keep in their own atomics — ring wraps, HLS
// selection counts, breaker state, GPGPU device counters, fault-injection
// budgets — is mirrored with RegisterFunc, evaluated only at snapshot
// time, so mirroring costs nothing while the engine runs.

// qname builds a per-query metric name: saber.engine.q<i>.<suffix>.
func qname(q int, suffix string) string {
	return fmt.Sprintf("saber.engine.q%d.%s", q, suffix)
}

// newStatsCounters binds one query's hot-path counters into the registry.
func newStatsCounters(reg *obs.Registry, q int) statsCounters {
	return statsCounters{
		bytesIn:      reg.Counter(qname(q, "bytes.in")),
		bytesOut:     reg.Counter(qname(q, "bytes.out")),
		tuplesOut:    reg.Counter(qname(q, "tuples.out")),
		tasksCreated: reg.Counter(qname(q, "tasks.created")),
		tasksCPU:     reg.Counter(qname(q, "tasks.cpu")),
		tasksGPU:     reg.Counter(qname(q, "tasks.gpu")),
		latencyNs:    reg.Counter(qname(q, "latency.sum.ns")),
		latencyN:     reg.Counter(qname(q, "latency.count")),

		tasksFailed:      reg.Counter(qname(q, "tasks.failed")),
		tasksRetried:     reg.Counter(qname(q, "tasks.retried")),
		tasksQuarantined: reg.Counter(qname(q, "tasks.quarantined")),
		tuplesShed:       reg.Counter(qname(q, "tuples.shed")),
		gpuFailovers:     reg.Counter(qname(q, "gpu.failovers")),
		gpuTimeouts:      reg.Counter(qname(q, "gpu.timeouts")),
	}
}

// newOverloadCounters binds one query's overload-protection counters
// under saber.overload.q<i>.*. Registered unconditionally (they read 0
// without an Overload config) so dashboards and the harness conservation
// check never need to special-case.
func newOverloadCounters(reg *obs.Registry, q int) overloadCounters {
	pre := fmt.Sprintf("saber.overload.q%d.", q)
	return overloadCounters{
		bytesOffered: reg.Counter(pre + "bytes.offered"),
		shedAdmit:    reg.Counter(pre + "shed.admit.tuples"),
		shedOldest:   reg.Counter(pre + "shed.oldest.tuples"),
		admitWaits:   reg.Counter(pre + "admit.waits"),
		admitRejects: reg.Counter(pre + "admit.rejects"),
	}
}

// Metrics returns the engine's registry. Always non-nil: New creates a
// private registry when Config.Metrics is unset.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// Tracer returns the engine's task tracer (per-stage latency histograms
// and the postmortem ring).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// registerMirrors binds snapshot-time mirrors for every subsystem the
// engine wired together at Start. Re-registering (an engine restarted on
// a shared registry) rebinds the funcs to the live instances.
func (e *Engine) registerMirrors() {
	reg := e.reg
	reg.RegisterFunc("saber.engine.queue.depth", func() int64 { return int64(e.queue.Len()) })
	reg.RegisterFunc("saber.engine.gpu.inflight", e.gpuInflight.Load)
	// The live ϕ. Under a fixed configuration this mirrors Config.TaskSize;
	// with Adapt enabled it tracks the controller (which also reports its
	// own view as saber.adapt.phi).
	reg.RegisterFunc("saber.engine.phi", e.taskSize.Load)
	// 1 while the shedding policy may actuate (armed at Start without
	// Adapt, else by the controller's last-rung signal).
	reg.RegisterFunc("saber.overload.active", func() int64 {
		if e.shedArmed.Load() {
			return 1
		}
		return 0
	})

	for _, r := range e.queries() {
		if r.dropped.Load() {
			continue
		}
		e.registerQueryMirrors(r)
		e.registerRateMirrors(r.idx)
	}
	if h, ok := e.policy.(*sched.HLS); ok {
		reg.RegisterFunc("saber.sched.hls.selected", h.Selected)
		reg.RegisterFunc("saber.sched.hls.flips", h.Flips)
	}
	if b := e.breaker; b != nil {
		reg.RegisterFunc("saber.sched.breaker.state", func() int64 { return int64(b.State()) })
		reg.RegisterFunc("saber.sched.breaker.opens", b.Opens)
		reg.RegisterFunc("saber.sched.breaker.closes", b.Closes)
		reg.RegisterFunc("saber.sched.breaker.probes", b.Probes)
		reg.RegisterFunc("saber.sched.breaker.rejected", b.Rejected)
	}

	if d := e.cfg.GPU; d != nil {
		reg.RegisterFunc("saber.gpu.tasks.done", d.TasksCompleted)
		reg.RegisterFunc("saber.gpu.tasks.failed", d.TasksFailed)
		reg.RegisterFunc("saber.gpu.hangs", d.Hangs)
		reg.RegisterFunc("saber.gpu.bytes.moved", d.BytesMoved)
		reg.RegisterFunc("saber.gpu.pipeline.inflight", d.Inflight)
		reg.RegisterFunc("saber.gpu.staging.hint", d.BatchHint)
		reg.RegisterFunc("saber.gpu.staging.grows", d.StagingGrows)
		reg.RegisterFunc("saber.gpu.gathers.elided", d.GathersElided)
		registerFaultMirrors(reg, d.Injector(), "saber.fault.gpu")
	}
	registerFaultMirrors(reg, e.cfg.Fault, "saber.fault.cpu")
}

// registerQueryMirrors binds one query's snapshot-time mirrors: ring and
// column-store gauges plus the result-stage drain counters. Called from
// registerMirrors at Start and directly when a query is registered on a
// running engine.
func (e *Engine) registerQueryMirrors(r *registered) {
	reg := e.reg
	for i := 0; i < r.plan.NumInputs(); i++ {
		in := r.ins[i]
		ring := in.ring
		reg.RegisterFunc(fmt.Sprintf("saber.engine.q%d.in%d.ring.wraps", r.idx, i), ring.Wraps)
		reg.RegisterFunc(fmt.Sprintf("saber.engine.q%d.in%d.ring.bytes", r.idx, i), ring.Size)
		if cs := in.cols; cs != nil {
			// Columnar segment gauges: occupancy, wraps, per-column
			// payload bytes, and how many tasks skipped the row gather.
			pre := fmt.Sprintf("saber.ring.q%d.in%d", r.idx, i)
			reg.RegisterFunc(pre+".col.tuples", cs.Tuples)
			reg.RegisterFunc(pre+".col.wraps", cs.Wraps)
			reg.RegisterFunc(pre+".gather.elided", in.colViews.Load)
			reg.RegisterFunc(pre+".gather.copied", in.colCopies.Load)
			for c := 0; c < cs.NumCols(); c++ {
				c := c
				reg.RegisterFunc(fmt.Sprintf("%s.col%d.bytes", pre, c), func() int64 { return cs.ColBytes(c) })
			}
		}
	}
	rs := r.result
	reg.RegisterFunc(qname(r.idx, "result.drained"), rs.drained.Load)
	reg.RegisterFunc(qname(r.idx, "result.overflow.pending"), func() int64 {
		rs.overflowMu.Lock()
		n := len(rs.overflow)
		rs.overflowMu.Unlock()
		return int64(n)
	})
}

// registerRateMirrors binds one query row of the live HLS throughput
// matrix (paper Fig. 16): per-query EWMA task rates on each processor
// class. No-op before the matrix exists (pre-Start registrations are
// covered by registerMirrors).
func (e *Engine) registerRateMirrors(q int) {
	m := e.matrix
	if m == nil {
		return
	}
	e.reg.RegisterFloatFunc(fmt.Sprintf("saber.sched.matrix.q%d.cpu.rate", q), func() float64 { return m.Rate(q, sched.CPU) })
	e.reg.RegisterFloatFunc(fmt.Sprintf("saber.sched.matrix.q%d.gpu.rate", q), func() float64 { return m.Rate(q, sched.GPU) })
}

// releaseQueryMirrors rebinds a dropped query's ring and column-store
// mirrors to zero functions, releasing the buffer references the old
// closures captured (obs.Registry.RegisterFunc replaces in place). The
// result-stage counters keep reporting the tombstone's final frontier,
// and the rate mirrors keep reading the (now idle) matrix row.
func (e *Engine) releaseQueryMirrors(r *registered) {
	reg := e.reg
	zero := func() int64 { return 0 }
	for i := 0; i < r.plan.NumInputs(); i++ {
		reg.RegisterFunc(fmt.Sprintf("saber.engine.q%d.in%d.ring.wraps", r.idx, i), zero)
		reg.RegisterFunc(fmt.Sprintf("saber.engine.q%d.in%d.ring.bytes", r.idx, i), zero)
		if cs := r.ins[i].cols; cs != nil {
			pre := fmt.Sprintf("saber.ring.q%d.in%d", r.idx, i)
			reg.RegisterFunc(pre+".col.tuples", zero)
			reg.RegisterFunc(pre+".col.wraps", zero)
			reg.RegisterFunc(pre+".gather.elided", zero)
			reg.RegisterFunc(pre+".gather.copied", zero)
			for c := 0; c < cs.NumCols(); c++ {
				reg.RegisterFunc(fmt.Sprintf("%s.col%d.bytes", pre, c), zero)
			}
		}
	}
}

// registerFaultMirrors exposes one injector's per-site injection and
// decision counts under prefix.<site>. All Injector methods are nil-safe,
// but a nil injector has nothing to report.
func registerFaultMirrors(reg *obs.Registry, in *fault.Injector, prefix string) {
	if in == nil {
		return
	}
	for _, site := range []fault.Site{
		fault.GPUCopyIn, fault.GPUKernel, fault.GPUHang,
		fault.PlanExec, fault.IngestDrop, fault.IngestStall,
	} {
		site := site
		reg.RegisterFunc(prefix+"."+string(site)+".injections", func() int64 { return in.Injections(site) })
		reg.RegisterFunc(prefix+"."+string(site)+".decisions", func() int64 { return in.Decisions(site) })
	}
}
