package ringbuf

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// pattern is the expected byte at absolute stream offset off: readers can
// verify any region of the stream from its offsets alone, so a torn read,
// a wrap-around addressing bug or a premature release shows up as a
// content mismatch rather than a silent corruption.
func pattern(off int64) byte { return byte(off*31 + 7) }

func fillPattern(dst []byte, off int64) {
	for i := range dst {
		dst[i] = pattern(off + int64(i))
	}
}

func checkPattern(t *testing.T, got []byte, off int64, how string) {
	t.Helper()
	for i, b := range got {
		if want := pattern(off + int64(i)); b != want {
			t.Errorf("%s: byte at offset %d = %#x, want %#x", how, off+int64(i), b, want)
			return
		}
	}
}

// TestConcurrentWrapReadRelease drives the buffer through the engine's
// full single-writer/multi-reader/free-pointer protocol under -race,
// with a capacity small enough that the stream wraps the backing array
// hundreds of times:
//
//   - one writer Puts variable-size records (blocking on backpressure),
//   - racing readers verify each record's content via Slice, Contiguous
//     or CopyTo while later records are still being written,
//   - a releaser advances the free pointer only over fully read records
//     (out-of-order completions wait, as the result stage's reordering
//     window does), and
//   - a poller runs CheckInvariants throughout.
//
// At the end every byte must have been read exactly once with correct
// content, the buffer must be empty, and the wrap counter must prove the
// run exercised wrap-around addressing.
func TestConcurrentWrapReadRelease(t *testing.T) {
	const (
		capacity = 1 << 12
		records  = 4000
		readers  = 4
	)
	b := MustNew(capacity)
	b.SetInvariantName("ringbuf[test]")

	type region struct{ from, to int64 }
	regions := make(chan region, 64)
	done := make(chan region, 64)

	// Poller: invariants must hold at every instant of the run.
	stopPoll := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			if err := b.CheckInvariants(); err != nil {
				t.Errorf("invariants: %v", err)
				return
			}
			time.Sleep(20 * time.Microsecond)
		}
	}()

	// Releaser: advance the free pointer over the contiguous prefix of
	// completed records, mirroring the result stage's free-pointer use.
	var relWG sync.WaitGroup
	relWG.Add(1)
	go func() {
		defer relWG.Done()
		pending := make(map[int64]int64)
		var frontier int64
		for r := range done {
			pending[r.from] = r.to
			for to, ok := pending[frontier]; ok; to, ok = pending[frontier] {
				delete(pending, frontier)
				b.Release(to)
				frontier = to
			}
		}
		if len(pending) != 0 {
			t.Errorf("%d records never became releasable", len(pending))
		}
	}()

	// Readers: verify each record through a rotating access method.
	var readWG sync.WaitGroup
	for w := 0; w < readers; w++ {
		readWG.Add(1)
		go func(w int) {
			defer readWG.Done()
			var scratch []byte
			for r := range regions {
				n := r.to - r.from
				switch (r.from + int64(w)) % 3 {
				case 0:
					first, second := b.Slice(r.from, r.to)
					checkPattern(t, first, r.from, "Slice first")
					checkPattern(t, second, r.from+int64(len(first)), "Slice second")
					if int64(len(first)+len(second)) != n {
						t.Errorf("Slice returned %d bytes, want %d", len(first)+len(second), n)
					}
				case 1:
					if p, ok := b.Contiguous(r.from, r.to); ok {
						checkPattern(t, p, r.from, "Contiguous")
					} else {
						scratch = b.CopyTo(scratch[:0], r.from, r.to)
						checkPattern(t, scratch, r.from, "CopyTo (wrapped)")
					}
				default:
					scratch = b.CopyTo(scratch[:0], r.from, r.to)
					checkPattern(t, scratch, r.from, "CopyTo")
				}
				done <- region{r.from, r.to}
			}
		}(w)
	}

	// Writer: seeded variable-size records, some larger than half the
	// buffer's remaining space so Put's backpressure path runs.
	rnd := rand.New(rand.NewSource(1))
	var total int64
	buf := make([]byte, 512)
	for i := 0; i < records; i++ {
		n := 1 + rnd.Intn(len(buf))
		rec := buf[:n]
		fillPattern(rec, total)
		off := b.Put(rec)
		if off != total {
			t.Fatalf("record %d written at offset %d, want %d", i, off, total)
		}
		total += int64(n)
		regions <- region{off, total}
	}
	close(regions)
	readWG.Wait()
	close(done)
	relWG.Wait()
	close(stopPoll)
	pollWG.Wait()

	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("final invariants: %v", err)
	}
	if b.Start() != total || b.End() != total || b.Size() != 0 {
		t.Fatalf("buffer not empty after full release: start=%d end=%d total=%d", b.Start(), b.End(), total)
	}
	if b.Wraps() == 0 {
		t.Fatal("run never wrapped the backing array; configuration too tame")
	}
	t.Logf("wrote %d bytes across %d records, %d wraps", total, records, b.Wraps())
}

// TestWrapsCounter pins the wrap counter's definition: a write that fits
// before the physical end does not count, a write that crosses it does.
func TestWrapsCounter(t *testing.T) {
	b := MustNew(8)
	b.Put([]byte{1, 2, 3, 4, 5, 6})
	if b.Wraps() != 0 {
		t.Fatalf("wraps = %d before any wrap", b.Wraps())
	}
	b.Release(6)
	b.Put([]byte{7, 8, 9, 10}) // crosses offset 8
	if b.Wraps() != 1 {
		t.Fatalf("wraps = %d after wrapping write", b.Wraps())
	}
	got := b.CopyTo(nil, 6, 10)
	if !bytes.Equal(got, []byte{7, 8, 9, 10}) {
		t.Fatalf("wrapped read = %v", got)
	}
}
