package ringbuf

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, c := range []int{0, -8, 3, 100} {
		if _, err := New(c); err == nil {
			t.Errorf("New(%d): expected error", c)
		}
	}
	b, err := New(16)
	if err != nil || b.Capacity() != 16 {
		t.Fatalf("New(16) = %v, %v", b, err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(3) did not panic")
		}
	}()
	MustNew(3)
}

func TestPutSliceRelease(t *testing.T) {
	b := MustNew(16)
	off := b.Put([]byte("hello"))
	if off != 0 {
		t.Fatalf("first Put offset = %d", off)
	}
	if b.Size() != 5 || b.Free() != 11 {
		t.Fatalf("Size=%d Free=%d", b.Size(), b.Free())
	}
	first, second := b.Slice(0, 5)
	if string(first) != "hello" || second != nil {
		t.Fatalf("Slice = %q, %q", first, second)
	}
	b.Release(5)
	if b.Start() != 5 || b.Size() != 0 {
		t.Fatalf("after Release Start=%d Size=%d", b.Start(), b.Size())
	}
}

func TestWrapAround(t *testing.T) {
	b := MustNew(8)
	b.Put([]byte("abcdef")) // offsets 0..6
	b.Release(6)
	off := b.Put([]byte("wxyz")) // offsets 6..10, wraps at 8
	if off != 6 {
		t.Fatalf("offset = %d, want 6", off)
	}
	first, second := b.Slice(6, 10)
	if string(first) != "wx" || string(second) != "yz" {
		t.Fatalf("Slice = %q, %q", first, second)
	}
	if _, ok := b.Contiguous(6, 10); ok {
		t.Error("Contiguous reported wrapping region as contiguous")
	}
	got := b.CopyTo(nil, 6, 10)
	if string(got) != "wxyz" {
		t.Fatalf("CopyTo = %q", got)
	}
}

func TestContiguousFastPath(t *testing.T) {
	b := MustNew(8)
	b.Put([]byte("abcd"))
	p, ok := b.Contiguous(1, 3)
	if !ok || string(p) != "bc" {
		t.Fatalf("Contiguous = %q, %v", p, ok)
	}
}

func TestTryPutFullBuffer(t *testing.T) {
	b := MustNew(8)
	if _, ok := b.TryPut(make([]byte, 8)); !ok {
		t.Fatal("TryPut exact capacity failed")
	}
	if _, ok := b.TryPut([]byte{1}); ok {
		t.Fatal("TryPut into full buffer succeeded")
	}
	b.Release(4)
	if _, ok := b.TryPut([]byte{1, 2, 3, 4}); !ok {
		t.Fatal("TryPut after Release failed")
	}
}

func TestPutTooLargePanics(t *testing.T) {
	b := MustNew(8)
	defer func() {
		if recover() == nil {
			t.Fatal("Put larger than capacity did not panic")
		}
	}()
	b.Put(make([]byte, 9))
}

func TestReleaseBackwardsNoop(t *testing.T) {
	b := MustNew(8)
	b.Put([]byte("abcd"))
	b.Release(3)
	b.Release(1) // backwards: no-op
	if b.Start() != 3 {
		t.Fatalf("Start = %d, want 3", b.Start())
	}
}

func TestReleasePastEndPanics(t *testing.T) {
	b := MustNew(8)
	b.Put([]byte("ab"))
	defer func() {
		if recover() == nil {
			t.Fatal("Release past end did not panic")
		}
	}()
	b.Release(3)
}

func TestSliceValidation(t *testing.T) {
	b := MustNew(8)
	b.Put([]byte("abcd"))
	b.Release(2)
	for _, c := range [][2]int64{{0, 1}, {3, 5}, {3, 2}} {
		func() {
			defer func() { recover() }()
			b.Slice(c[0], c[1])
			t.Errorf("Slice(%d,%d) did not panic", c[0], c[1])
		}()
	}
	if f, s := b.Slice(3, 3); f != nil || s != nil {
		t.Error("empty Slice not nil")
	}
}

// TestFIFOProperty checks the core invariant: bytes come out in the order
// and with the values they went in, across arbitrary chunkings.
func TestFIFOProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		b := MustNew(64)
		var want, got []byte
		read := int64(0)
		for _, c := range chunks {
			if len(c) > 32 {
				c = c[:32]
			}
			for _, chunk := range [][]byte{c} {
				// Drain whenever the chunk wouldn't fit.
				for int64(len(chunk)) > b.Free() {
					end := b.End()
					got = b.CopyTo(got, read, end)
					read = end
					b.Release(end)
				}
				b.Put(chunk)
				want = append(want, chunk...)
			}
		}
		got = b.CopyTo(got, read, b.End())
		return bytes.Equal(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentProducerConsumer exercises the single-writer/releaser
// protocol under the race detector: one goroutine writes a known pattern,
// another reads and releases, and the consumed stream must match.
func TestConcurrentProducerConsumer(t *testing.T) {
	const total = 1 << 16
	b := MustNew(1 << 10)
	src := make([]byte, total)
	rnd := rand.New(rand.NewSource(1))
	rnd.Read(src)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for sent := 0; sent < total; {
			n := 1 + rnd.Intn(200)
			if sent+n > total {
				n = total - sent
			}
			b.Put(src[sent : sent+n])
			sent += n
		}
	}()

	var got []byte
	read := int64(0)
	for int(read) < total {
		end := b.End()
		if end == read {
			spinYield()
			continue
		}
		got = b.CopyTo(got, read, end)
		b.Release(end)
		read = end
	}
	wg.Wait()
	if !bytes.Equal(src, got) {
		t.Fatal("concurrent stream corrupted")
	}
}

func BenchmarkPutRelease(b *testing.B) {
	buf := MustNew(1 << 20)
	chunk := make([]byte, 4096)
	b.SetBytes(int64(len(chunk)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := buf.Put(chunk)
		buf.Release(off + int64(len(chunk)))
	}
}
