// Package ringbuf implements the lock-free circular input buffer SABER
// keeps per input stream and per query (paper §4.1).
//
// The buffer is backed by a byte array and addressed with absolute,
// monotonically increasing byte offsets. Exactly one writer (the worker
// thread that dispatches a query's input) appends data; any number of
// worker threads read already-published regions; data is released by
// advancing the start pointer to a task's free pointer once the task's
// results have been processed. There are no locks: the writer publishes by
// advancing `end` with a release store, and readers/releasers only touch
// regions the pointers prove stable.
package ringbuf

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Buffer is a single-writer, multi-reader circular byte buffer.
//
// Writer-only methods: Put, TryPut, End.
// Any-thread methods: Slice, CopyTo, Release, Start, Size.
type Buffer struct {
	data []byte
	mask int64

	// Absolute offsets. end is advanced only by the writer; start only by
	// Release (result stage). start <= end <= start+capacity always holds.
	start atomic.Int64
	end   atomic.Int64

	// wraps counts writes that crossed the physical end of the backing
	// array (stress-harness telemetry; see invariant.go).
	wraps atomic.Int64

	// chk holds the invariant checker's monotonicity watermarks. The
	// mutex serialises CheckInvariants callers so watermark comparisons
	// cannot observe stale loads (see CheckInvariants).
	chk struct {
		mu           sync.Mutex
		start, end   int64
		name         string
	}
}

// New creates a buffer with the given capacity, which must be a power of
// two and positive.
func New(capacity int) (*Buffer, error) {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("ringbuf: capacity %d is not a positive power of two", capacity)
	}
	return &Buffer{data: make([]byte, capacity), mask: int64(capacity) - 1}, nil
}

// MustNew is like New but panics on error.
func MustNew(capacity int) *Buffer {
	b, err := New(capacity)
	if err != nil {
		panic(err)
	}
	return b
}

// Capacity returns the buffer capacity in bytes.
func (b *Buffer) Capacity() int { return len(b.data) }

// Start returns the absolute offset of the oldest retained byte.
func (b *Buffer) Start() int64 { return b.start.Load() }

// End returns the absolute offset one past the newest written byte.
func (b *Buffer) End() int64 { return b.end.Load() }

// Size returns the number of retained bytes.
func (b *Buffer) Size() int64 { return b.end.Load() - b.start.Load() }

// Free returns the number of bytes that can currently be written.
func (b *Buffer) Free() int64 { return int64(len(b.data)) - b.Size() }

// TryPut appends p if there is room, returning the absolute offset of the
// first written byte and true; otherwise it writes nothing and returns
// false. Only the writer goroutine may call TryPut.
func (b *Buffer) TryPut(p []byte) (int64, bool) {
	if int64(len(p)) > b.Free() {
		return 0, false
	}
	end := b.end.Load()
	b.copyIn(end, p)
	// Release-store: publish the bytes before moving the end pointer.
	b.end.Store(end + int64(len(p)))
	return end, true
}

// Put appends p, spinning until space is available (space appears when the
// result stage releases processed data). It returns the absolute offset of
// the first written byte. Only the writer goroutine may call Put. If p is
// larger than the whole buffer, Put panics: it could never succeed.
func (b *Buffer) Put(p []byte) int64 {
	if len(p) > len(b.data) {
		panic(fmt.Sprintf("ringbuf: Put of %d bytes exceeds capacity %d", len(p), len(b.data)))
	}
	for {
		if off, ok := b.TryPut(p); ok {
			return off
		}
		// Backpressure: the dispatcher stalls until workers free space.
		spinYield()
	}
}

func (b *Buffer) copyIn(off int64, p []byte) {
	i := off & b.mask
	n := copy(b.data[i:], p)
	if n < len(p) {
		copy(b.data, p[n:])
		b.wraps.Add(1)
	}
}

// Slice returns the bytes in [from, to) as at most two subslices of the
// underlying array (the second is non-nil only when the region wraps).
// The region must lie within [Start, End); the caller must not retain the
// slices past the point where Release frees the region.
func (b *Buffer) Slice(from, to int64) (first, second []byte) {
	b.check(from, to)
	if from == to {
		return nil, nil
	}
	i := from & b.mask
	j := to & b.mask
	if i < j {
		return b.data[i:j], nil
	}
	return b.data[i:], b.data[:j]
}

// Contiguous returns the bytes in [from, to) as a single subslice when the
// region does not wrap, and ok=false otherwise.
func (b *Buffer) Contiguous(from, to int64) (p []byte, ok bool) {
	first, second := b.Slice(from, to)
	if second != nil {
		return nil, false
	}
	return first, true
}

// CopyTo appends the bytes in [from, to) to dst and returns the extended
// slice. It always succeeds for a valid region, wrapping or not.
func (b *Buffer) CopyTo(dst []byte, from, to int64) []byte {
	first, second := b.Slice(from, to)
	dst = append(dst, first...)
	return append(dst, second...)
}

// Release frees all data before the absolute offset upTo, making the space
// available to the writer. Offsets only move forward; releasing an already
// released region is a no-op. Releasing past End panics.
func (b *Buffer) Release(upTo int64) {
	for {
		cur := b.start.Load()
		if upTo <= cur {
			return
		}
		if upTo > b.end.Load() {
			panic(fmt.Sprintf("ringbuf: Release(%d) past end %d", upTo, b.end.Load()))
		}
		if b.start.CompareAndSwap(cur, upTo) {
			return
		}
	}
}

// Rebase repositions an empty buffer at absolute offset off, so an
// engine restored from a checkpoint keeps addressing the stream with the
// same absolute offsets the checkpoint recorded. Only a fresh (or fully
// released and never-rebased) empty buffer may be rebased: retained bytes
// would have no defined position after the jump. Offsets only move
// forward, matching the monotonicity invariant.
func (b *Buffer) Rebase(off int64) {
	b.chk.mu.Lock()
	defer b.chk.mu.Unlock()
	start, end := b.start.Load(), b.end.Load()
	if start != end {
		panic(fmt.Sprintf("ringbuf: Rebase(%d) with %d retained bytes [%d,%d)", off, end-start, start, end))
	}
	if off < start {
		panic(fmt.Sprintf("ringbuf: Rebase(%d) moves offsets backwards from %d", off, start))
	}
	b.start.Store(off)
	b.end.Store(off)
	b.chk.start, b.chk.end = off, off
}

func (b *Buffer) check(from, to int64) {
	if from > to || from < b.start.Load() || to > b.end.Load() {
		panic(fmt.Sprintf("ringbuf: region [%d,%d) outside retained [%d,%d)",
			from, to, b.start.Load(), b.end.Load()))
	}
	if to-from > int64(len(b.data)) {
		panic(fmt.Sprintf("ringbuf: region [%d,%d) larger than capacity %d", from, to, len(b.data)))
	}
}
