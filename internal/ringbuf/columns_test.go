package ringbuf

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// Test tuple layout: int64 ts | float32 a | int32 b  (16 bytes).
const (
	ctsz = 16
)

var (
	coffs   = []int{0, 8, 12}
	cwidths = []int{8, 4, 4}
)

// genRows builds n deterministic 16-byte tuples.
func genRows(n int, seed int64) []byte {
	rnd := rand.New(rand.NewSource(seed))
	out := make([]byte, n*ctsz)
	for i := 0; i < n; i++ {
		row := out[i*ctsz:]
		binary.LittleEndian.PutUint64(row, uint64(i))
		binary.LittleEndian.PutUint32(row[8:], rnd.Uint32())
		binary.LittleEndian.PutUint32(row[12:], rnd.Uint32())
	}
	return out
}

// wantCol extracts column c of rows[from:to) the slow way — the
// reference the shredder is checked against.
func wantCol(rows []byte, c int, from, to int64) []byte {
	o, w := coffs[c], cwidths[c]
	var out []byte
	for i := from; i < to; i++ {
		out = append(out, rows[int(i)*ctsz+o:int(i)*ctsz+o+w]...)
	}
	return out
}

func TestColumnStoreShred(t *testing.T) {
	s := MustNewColumnStore(coffs, cwidths, nil, ctsz, 64)
	rows := genRows(48, 1)
	// Append in uneven chunks.
	for _, n := range []int{1, 7, 16, 24} {
		off := int(s.End())
		s.Append(rows[off*ctsz : (off+n)*ctsz])
	}
	if s.End() != 48 || s.Start() != 0 || s.Tuples() != 48 {
		t.Fatalf("bounds: [%d,%d)", s.Start(), s.End())
	}
	views, ok := s.Views(nil, 0, 48)
	if !ok {
		t.Fatal("contiguous range reported wrapped")
	}
	for c := range views {
		if want := wantCol(rows, c, 0, 48); !bytes.Equal(views[c], want) {
			t.Fatalf("column %d shredded wrong:\n got %x\nwant %x", c, views[c], want)
		}
		if got, want := s.ColBytes(c), int64(48*cwidths[c]); got != want {
			t.Errorf("ColBytes(%d) = %d, want %d", c, got, want)
		}
	}
}

// TestColumnStoreWrap drives the indices past the physical capacity:
// Views must refuse the wrapping range and CopyViews must reassemble it
// byte-identically.
func TestColumnStoreWrap(t *testing.T) {
	s := MustNewColumnStore(coffs, cwidths, nil, ctsz, 32) // rounds to 32
	if s.CapacityTuples() != 32 {
		t.Fatalf("capacity = %d, want 32", s.CapacityTuples())
	}
	rows := genRows(200, 2)
	next := int64(0)
	appendTo := func(end int64) {
		s.Append(rows[next*ctsz : end*ctsz])
		next = end
	}

	appendTo(24)
	s.Release(16) // free room so the next append wraps
	appendTo(40)  // crosses physical index 32
	if s.Wraps() != 1 {
		t.Fatalf("wraps = %d, want 1", s.Wraps())
	}

	if _, ok := s.Views(nil, 28, 36); ok {
		t.Fatal("Views accepted a wrapping range")
	}
	got := s.CopyViews(nil, 28, 36)
	for c := range got {
		if want := wantCol(rows, c, 28, 36); !bytes.Equal(got[c], want) {
			t.Fatalf("CopyViews column %d:\n got %x\nwant %x", c, got[c], want)
		}
	}
	// Non-wrapping sub-ranges on both sides are still zero-copy.
	for _, r := range [][2]int64{{16, 32}, {32, 40}, {33, 36}} {
		v, ok := s.Views(nil, r[0], r[1])
		if !ok {
			t.Fatalf("range [%d,%d) should not wrap", r[0], r[1])
		}
		for c := range v {
			if want := wantCol(rows, c, r[0], r[1]); !bytes.Equal(v[c], want) {
				t.Fatalf("view [%d,%d) column %d wrong", r[0], r[1], c)
			}
		}
	}
	// CopyViews reuses caller buffers.
	bufs := make([][]byte, len(coffs))
	for c := range bufs {
		bufs[c] = make([]byte, 0, 64)
	}
	got = s.CopyViews(bufs, 30, 38)
	for c := range got {
		if want := wantCol(rows, c, 30, 38); !bytes.Equal(got[c], want) {
			t.Fatalf("reused CopyViews column %d wrong", c)
		}
	}
}

// TestColumnStoreRandomized: a long randomized append/view/release run
// against the row-slice reference, lapping the capacity many times.
func TestColumnStoreRandomized(t *testing.T) {
	s := MustNewColumnStore(coffs, cwidths, nil, ctsz, 61) // rounds to 64
	rows := genRows(5000, 3)
	rnd := rand.New(rand.NewSource(4))
	var next int64
	for next < 5000 {
		// Append up to the free space.
		free := s.CapacityTuples() - s.Tuples()
		if free > 0 {
			n := 1 + rnd.Int63n(free)
			if next+n > 5000 {
				n = 5000 - next
			}
			s.Append(rows[next*ctsz : (next+n)*ctsz])
			next += n
		}
		// Read a random retained range through whichever path applies.
		lo := s.Start() + rnd.Int63n(s.Tuples()+1)
		hi := lo + rnd.Int63n(s.End()-lo+1)
		var got [][]byte
		if v, ok := s.Views(nil, lo, hi); ok {
			got = v
		} else {
			got = s.CopyViews(nil, lo, hi)
		}
		for c := range got {
			if want := wantCol(rows, c, lo, hi); !bytes.Equal(got[c], want) {
				t.Fatalf("range [%d,%d) column %d wrong after %d tuples", lo, hi, c, next)
			}
		}
		// Release a random prefix.
		s.Release(s.Start() + rnd.Int63n(s.Tuples()+1))
	}
	if s.Wraps() == 0 {
		t.Error("randomized run never wrapped — capacity too large for the test to bite")
	}
}

func TestColumnStoreInvariantPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}

	s := MustNewColumnStore(coffs, cwidths, nil, ctsz, 8)
	rows := genRows(16, 5)
	s.Append(rows[:8*ctsz])

	expectPanic("overflow append (release ordering broken)", func() {
		s.Append(rows[8*ctsz : 9*ctsz])
	})
	expectPanic("ragged append", func() {
		s.Append(rows[:ctsz-1])
	})
	expectPanic("view past end", func() {
		s.Views(nil, 0, 9)
	})
	s.Release(4)
	expectPanic("view before start", func() {
		s.Views(nil, 3, 6)
	})
	expectPanic("release past end", func() {
		s.Release(9)
	})
	// Backwards/duplicate release is a no-op, not a panic.
	s.Release(2)
	if s.Start() != 4 {
		t.Errorf("backwards release moved start to %d", s.Start())
	}

	if _, err := NewColumnStore([]int{0}, []int{4, 4}, nil, 8, 8); err == nil {
		t.Error("mismatched offs/widths accepted")
	}
	if _, err := NewColumnStore([]int{6}, []int{4}, nil, 8, 8); err == nil {
		t.Error("column overhanging the tuple accepted")
	}
	if _, err := NewColumnStore([]int{0}, []int{4}, nil, 0, 8); err == nil {
		t.Error("zero tuple size accepted")
	}
}

func TestColumnStorePow2Rounding(t *testing.T) {
	for _, tc := range []struct{ in, want int64 }{{1, 1}, {2, 2}, {3, 4}, {61, 64}, {64, 64}, {65, 128}} {
		s := MustNewColumnStore([]int{0}, []int{8}, nil, 8, int(tc.in))
		if s.CapacityTuples() != tc.want {
			t.Errorf("cap %d rounded to %d, want %d", tc.in, s.CapacityTuples(), tc.want)
		}
	}
}

// TestColumnStoreShredMask: a deselected column is never materialised —
// its Views/CopyViews entries stay nil, ColBytes reads 0 — while the
// selected columns behave exactly as an unmasked store (projection
// pushdown: the engine shreds only fields the plan reads through
// columns).
func TestColumnStoreShredMask(t *testing.T) {
	s := MustNewColumnStore(coffs, cwidths, []bool{false, true, false}, ctsz, 32)
	if s.Shredded(0) || !s.Shredded(1) || s.Shredded(2) {
		t.Fatalf("shredded flags: %v %v %v", s.Shredded(0), s.Shredded(1), s.Shredded(2))
	}
	rows := genRows(24, 9)
	s.Append(rows)

	views, ok := s.Views(nil, 0, 24)
	if !ok {
		t.Fatal("contiguous range reported wrapped")
	}
	if views[0] != nil || views[2] != nil {
		t.Errorf("masked columns returned views: %v %v", views[0], views[2])
	}
	if want := wantCol(rows, 1, 0, 24); !bytes.Equal(views[1], want) {
		t.Errorf("selected column shredded wrong:\n got %x\nwant %x", views[1], want)
	}
	if s.ColBytes(0) != 0 || s.ColBytes(2) != 0 {
		t.Errorf("masked ColBytes = %d, %d, want 0", s.ColBytes(0), s.ColBytes(2))
	}
	if got, want := s.ColBytes(1), int64(24*4); got != want {
		t.Errorf("selected ColBytes = %d, want %d", got, want)
	}

	// Drive past the physical boundary so CopyViews reassembles: masked
	// entries must stay nil there too.
	s.Release(16)
	s.Append(genRows(40, 9)[24*ctsz : 40*ctsz])
	if _, ok := s.Views(nil, 28, 36); ok {
		t.Fatal("wrapping range not refused")
	}
	bufs := s.CopyViews(nil, 28, 36)
	if bufs[0] != nil || bufs[2] != nil {
		t.Errorf("masked columns returned copies: %v %v", bufs[0], bufs[2])
	}
	if want := wantCol(genRows(40, 9), 1, 28, 36); !bytes.Equal(bufs[1], want) {
		t.Errorf("selected column copy wrong:\n got %x\nwant %x", bufs[1], want)
	}

	if _, err := NewColumnStore(coffs, cwidths, []bool{true}, ctsz, 32); err == nil {
		t.Error("short shred mask accepted")
	}
}
