package ringbuf

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

var le = binary.LittleEndian

// ColumnStore mirrors a row ring's retained window as per-column
// contiguous segments: column j holds the bytes of one fixed-width tuple
// field for every retained tuple, packed with stride == field width. The
// store is addressed in absolute, monotonically increasing *tuple*
// indices (the row ring's byte offset divided by the tuple size), so the
// row ring and the column store always describe the same window of the
// stream and are released together.
//
// Like Buffer it is single-writer multi-reader: exactly one goroutine
// appends (the same dispatcher thread that writes the row ring), workers
// read published segments, and the result stage releases. The writer
// publishes by advancing `end` after the column bytes are in place;
// readers only touch [start, end) regions, which both pointers prove
// stable.
//
// Capacity is the row ring's tuple capacity rounded up to a power of two,
// so a tuple range that fits in the row ring always fits here; Append can
// therefore never block as long as Release mirrors the row ring's
// releases (and is called *before* the row release, see Release).
type ColumnStore struct {
	cols   [][]byte // per-column backing arrays, widths[j]*capTuples bytes
	offs   []int    // byte offset of column j within the row tuple
	widths []int    // element width of column j (4 or 8)
	tsz    int      // row tuple size in bytes
	mask   int64    // capTuples-1 (capTuples is a power of two)

	// Absolute tuple indices. end is advanced only by the writer; start
	// only by Release.
	start atomic.Int64
	end   atomic.Int64

	// wraps counts appends that crossed the physical end of the backing
	// arrays (a new segment began). All columns wrap at the same tuple
	// index, so one counter covers them all.
	wraps atomic.Int64
}

// NewColumnStore creates a store for tuples of tupleSize bytes whose
// columns live at offs with element widths. capTuples is the row ring's
// tuple capacity; it is rounded up to a power of two internally.
//
// shred selects which columns are materialised (nil means all). A
// deselected column is never shredded: its Views/CopyViews entries stay
// nil and readers fall back to the row ring. The engine passes the
// compiled plan's ColumnsRead set here — projection pushdown to ingest —
// so the dispatcher-thread shred cost scales with the fields the query
// reads, not the schema width.
func NewColumnStore(offs, widths []int, shred []bool, tupleSize, capTuples int) (*ColumnStore, error) {
	if len(offs) != len(widths) || len(offs) == 0 {
		return nil, fmt.Errorf("ringbuf: column layout %d offsets / %d widths", len(offs), len(widths))
	}
	if shred != nil && len(shred) != len(offs) {
		return nil, fmt.Errorf("ringbuf: column shred mask has %d entries for %d columns", len(shred), len(offs))
	}
	if tupleSize <= 0 || capTuples <= 0 {
		return nil, fmt.Errorf("ringbuf: column store needs positive tuple size (%d) and capacity (%d)", tupleSize, capTuples)
	}
	cap2 := 1
	for cap2 < capTuples {
		cap2 <<= 1
	}
	s := &ColumnStore{
		offs:   append([]int(nil), offs...),
		widths: append([]int(nil), widths...),
		tsz:    tupleSize,
		mask:   int64(cap2) - 1,
	}
	s.cols = make([][]byte, len(offs))
	for j, w := range widths {
		if o := offs[j]; o < 0 || w <= 0 || o+w > tupleSize {
			return nil, fmt.Errorf("ringbuf: column %d [off %d, width %d] outside tuple size %d", j, o, w, tupleSize)
		}
		if shred == nil || shred[j] {
			s.cols[j] = make([]byte, w*cap2)
		}
	}
	return s, nil
}

// MustNewColumnStore is like NewColumnStore but panics on error.
func MustNewColumnStore(offs, widths []int, shred []bool, tupleSize, capTuples int) *ColumnStore {
	s, err := NewColumnStore(offs, widths, shred, tupleSize, capTuples)
	if err != nil {
		panic(err)
	}
	return s
}

// Shredded reports whether column j is materialised.
func (s *ColumnStore) Shredded(j int) bool { return s.cols[j] != nil }

// NumCols returns the number of columns.
func (s *ColumnStore) NumCols() int { return len(s.cols) }

// Offset returns the row-tuple byte offset of column j.
func (s *ColumnStore) Offset(j int) int { return s.offs[j] }

// Width returns the element width of column j in bytes.
func (s *ColumnStore) Width(j int) int { return s.widths[j] }

// CapacityTuples returns the per-column capacity in tuples.
func (s *ColumnStore) CapacityTuples() int64 { return s.mask + 1 }

// Start returns the absolute index of the oldest retained tuple.
func (s *ColumnStore) Start() int64 { return s.start.Load() }

// End returns the absolute index one past the newest published tuple.
func (s *ColumnStore) End() int64 { return s.end.Load() }

// Tuples returns the number of retained tuples (segment occupancy).
func (s *ColumnStore) Tuples() int64 { return s.end.Load() - s.start.Load() }

// Wraps returns how many appends started a new physical segment.
func (s *ColumnStore) Wraps() int64 { return s.wraps.Load() }

// ColBytes returns the retained payload bytes of column j (0 when the
// column is not materialised).
func (s *ColumnStore) ColBytes(j int) int64 {
	if s.cols[j] == nil {
		return 0
	}
	return s.Tuples() * int64(s.widths[j])
}

// Append shreds len(rows)/tupleSize row tuples into the column segments
// and publishes them. Only the writer goroutine may call Append, and only
// after the same rows were accepted by the row ring: ring admission is
// the capacity gate, so running out of column space is an invariant
// violation (a missed or misordered Release), not backpressure.
func (s *ColumnStore) Append(rows []byte) {
	if len(rows)%s.tsz != 0 {
		panic(fmt.Sprintf("ringbuf: column append of %d bytes is not a multiple of tuple size %d", len(rows), s.tsz))
	}
	n := int64(len(rows) / s.tsz)
	if n == 0 {
		return
	}
	end := s.end.Load()
	if end+n-s.start.Load() > s.mask+1 {
		panic(fmt.Sprintf("ringbuf: column append of %d tuples overflows [%d,%d) cap %d — release ordering broken",
			n, s.start.Load(), end, s.mask+1))
	}
	// Split at the physical boundary once; within a run every column is a
	// dense stride-w write.
	pos := end & s.mask
	first := n
	if rem := s.mask + 1 - pos; first > rem {
		first = rem
	}
	s.shred(rows, 0, int(first), pos)
	if first < n {
		s.shred(rows, int(first), int(n-first), 0)
		s.wraps.Add(1)
	}
	// Publish after the bytes are in place.
	s.end.Store(end + n)
}

// shred copies count tuples starting at row index rowOff into physical
// tuple position pos of every column. It runs on the dispatcher thread
// under the ingest lock, so its rate bounds end-to-end ingest: the inner
// loops keep a running source offset instead of re-multiplying, unroll
// four tuples per iteration, and pack pairs of 4-byte elements into one
// 8-byte store (dst is always 8-byte aligned for even positions because
// capacities are powers of two).
func (s *ColumnStore) shred(rows []byte, rowOff, count int, pos int64) {
	tsz := s.tsz
	for j, col := range s.cols {
		if col == nil {
			continue // deselected: readers use the row ring
		}
		o, w := s.offs[j], s.widths[j]
		src := rows[rowOff*tsz+o:]
		switch w {
		case 8:
			dst := col[pos*8 : pos*8+int64(count)*8]
			so, t := 0, 0
			for ; t+4 <= count; t += 4 {
				d := dst[t*8 : t*8+32]
				le.PutUint64(d[0:], le.Uint64(src[so:]))
				le.PutUint64(d[8:], le.Uint64(src[so+tsz:]))
				le.PutUint64(d[16:], le.Uint64(src[so+2*tsz:]))
				le.PutUint64(d[24:], le.Uint64(src[so+3*tsz:]))
				so += 4 * tsz
			}
			for ; t < count; t++ {
				le.PutUint64(dst[t*8:], le.Uint64(src[so:]))
				so += tsz
			}
		case 4:
			dst := col[pos*4 : pos*4+int64(count)*4]
			so, t := 0, 0
			if pos&1 == 0 {
				for ; t+4 <= count; t += 4 {
					d := dst[t*4 : t*4+16]
					le.PutUint64(d[0:], uint64(le.Uint32(src[so:]))|uint64(le.Uint32(src[so+tsz:]))<<32)
					le.PutUint64(d[8:], uint64(le.Uint32(src[so+2*tsz:]))|uint64(le.Uint32(src[so+3*tsz:]))<<32)
					so += 4 * tsz
				}
			}
			for ; t < count; t++ {
				le.PutUint32(dst[t*4:], le.Uint32(src[so:]))
				so += tsz
			}
		default:
			so := 0
			dst := col[pos*int64(w):]
			for t := 0; t < count; t++ {
				copy(dst[t*w:(t+1)*w], src[so:so+w])
				so += tsz
			}
		}
	}
}

// Views returns zero-copy per-column slices covering tuple range
// [from, to): views[j] holds (to-from)*Width(j) bytes of column j. ok is
// false when the range crosses the physical segment boundary (it wraps),
// in which case CopyViews assembles contiguous copies instead. All
// columns wrap at the same tuple index, so one ok covers every column.
// The caller must not retain the views past the range's Release.
func (s *ColumnStore) Views(views [][]byte, from, to int64) ([][]byte, bool) {
	s.check(from, to)
	i := from & s.mask
	j := to & s.mask
	if j == 0 && to > from {
		// The range ends exactly at the physical boundary: still one
		// contiguous run [i, cap).
		j = s.mask + 1
	}
	if from != to && i >= j {
		return views, false // wraps
	}
	views = views[:0]
	for c, col := range s.cols {
		if col == nil {
			views = append(views, nil)
			continue
		}
		w := int64(s.widths[c])
		views = append(views, col[i*w:j*w])
	}
	return views, true
}

// CopyViews appends contiguous copies of tuple range [from, to) of every
// column to bufs (reusing each bufs[j][:0] when present) and returns the
// per-column views. It is the wrap fallback for Views: one memcpy pair
// per column, never a per-tuple gather.
func (s *ColumnStore) CopyViews(bufs [][]byte, from, to int64) [][]byte {
	s.check(from, to)
	if cap(bufs) < len(s.cols) {
		bufs = make([][]byte, len(s.cols))
	}
	bufs = bufs[:len(s.cols)]
	i := from & s.mask
	j := to & s.mask
	for c, col := range s.cols {
		if col == nil {
			bufs[c] = nil
			continue
		}
		w := int64(s.widths[c])
		dst := bufs[c][:0]
		if from == to {
			bufs[c] = dst
			continue
		}
		if i < j {
			dst = append(dst, col[i*w:j*w]...)
		} else {
			dst = append(dst, col[i*w:]...)
			dst = append(dst, col[:j*w]...)
		}
		bufs[c] = dst
	}
	return bufs
}

// Rebase repositions an empty store at absolute tuple index idx — the
// column-store counterpart of Buffer.Rebase, used when restoring an
// engine from a checkpoint. Only an empty store may be rebased, and the
// index may only move forward.
func (s *ColumnStore) Rebase(idx int64) {
	start, end := s.start.Load(), s.end.Load()
	if start != end {
		panic(fmt.Sprintf("ringbuf: column Rebase(%d) with %d retained tuples [%d,%d)", idx, end-start, start, end))
	}
	if idx < start {
		panic(fmt.Sprintf("ringbuf: column Rebase(%d) moves indices backwards from %d", idx, start))
	}
	s.start.Store(idx)
	s.end.Store(idx)
}

// Release frees all tuples before absolute index upTo. Offsets only move
// forward; releasing an already released range is a no-op; releasing past
// End panics. Call this *before* the row ring's Release for the same
// range: the writer blocks on row-ring space, so columns released first
// guarantee Append always has room when the row Put succeeds.
func (s *ColumnStore) Release(upTo int64) {
	for {
		cur := s.start.Load()
		if upTo <= cur {
			return
		}
		if upTo > s.end.Load() {
			panic(fmt.Sprintf("ringbuf: column Release(%d) past end %d", upTo, s.end.Load()))
		}
		if s.start.CompareAndSwap(cur, upTo) {
			return
		}
	}
}

func (s *ColumnStore) check(from, to int64) {
	if from > to || from < s.start.Load() || to > s.end.Load() {
		panic(fmt.Sprintf("ringbuf: column range [%d,%d) outside retained [%d,%d)",
			from, to, s.start.Load(), s.end.Load()))
	}
	if to-from > s.mask+1 {
		panic(fmt.Sprintf("ringbuf: column range [%d,%d) larger than capacity %d", from, to, s.mask+1))
	}
}
