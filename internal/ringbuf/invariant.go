package ringbuf

import "fmt"

// Invariant hooks for the stress harness (internal/harness). Buffer
// satisfies the inv.Checker contract structurally; the checks are safe to
// run concurrently with the writer, readers and releasers.

// Wraps returns the number of writes that wrapped around the physical end
// of the backing array. The harness uses it to prove a stress run really
// exercised wrap-around addressing.
func (b *Buffer) Wraps() int64 { return b.wraps.Load() }

// SetInvariantName labels this buffer in invariant violation reports
// (e.g. "ringbuf[q0/in0]"). Safe to call before the buffer is shared.
func (b *Buffer) SetInvariantName(name string) {
	b.chk.mu.Lock()
	b.chk.name = name
	b.chk.mu.Unlock()
}

// InvariantName implements the inv.Checker contract.
func (b *Buffer) InvariantName() string {
	b.chk.mu.Lock()
	defer b.chk.mu.Unlock()
	if b.chk.name != "" {
		return b.chk.name
	}
	return "ringbuf"
}

// CheckInvariants verifies, race-safely, that
//
//   - start and end never move backwards (Put and Release are monotonic),
//   - start <= end (loading start before end: start only grows, so the
//     later-loaded end can only exceed the earlier-loaded start), and
//   - end - start <= capacity, i.e. the writer never overruns unreleased
//     data. Because start may advance between the two loads this is
//     re-checked on a fresh start load before being reported.
//
// The checker mutex serialises callers: within the critical section a
// later atomic load cannot return an older value, so the watermark
// comparisons cannot misfire on stale reads.
func (b *Buffer) CheckInvariants() error {
	b.chk.mu.Lock()
	defer b.chk.mu.Unlock()

	start := b.start.Load()
	end := b.end.Load()
	if start < b.chk.start {
		return fmt.Errorf("start moved backwards: %d -> %d", b.chk.start, start)
	}
	if end < b.chk.end {
		return fmt.Errorf("end moved backwards: %d -> %d", b.chk.end, end)
	}
	b.chk.start, b.chk.end = start, end

	if end < start {
		return fmt.Errorf("end %d < start %d", end, start)
	}
	if end-start > int64(len(b.data)) {
		// start may have advanced after it was loaded; re-load before
		// declaring an overrun. end was loaded after start, so a stable
		// violation persists against the fresh start.
		if fresh := b.start.Load(); end-fresh > int64(len(b.data)) {
			return fmt.Errorf("retained %d bytes exceed capacity %d (start %d end %d)",
				end-fresh, len(b.data), fresh, end)
		}
	}
	return nil
}
