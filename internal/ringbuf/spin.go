package ringbuf

import "runtime"

// spinYield yields the processor while the writer waits for free space.
// Gosched keeps the scheduler responsive without burning a full core in a
// tight loop.
func spinYield() { runtime.Gosched() }
