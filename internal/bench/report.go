// Package bench regenerates every table and figure of the paper's
// evaluation (§6) against this reproduction: it builds the workloads,
// runs them through the engine (and the baseline engines), and prints the
// same rows/series the paper reports. Absolute numbers follow the
// calibrated model at the chosen time scale; the shapes — who wins, by
// what factor, where the crossovers sit — are the reproduction targets
// (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Report is one experiment's regenerated table/series.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Print renders the report as an aligned text table.
func (r Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment is a registered, runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) Report
}

var registry []Experiment

func register(id, title string, run func(Options) Report) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the experiments in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the sorted experiment IDs.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
