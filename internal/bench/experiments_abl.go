package bench

import (
	"fmt"
	"time"

	"saber/internal/exec"
	"saber/internal/gpu"
	"saber/internal/query"
	"saber/internal/window"
	"saber/internal/workload"
)

func init() {
	register("abl-lookahead", "Ablation: HLS lookahead vs greedy preferred-only", ablLookahead)
	register("abl-incremental", "Ablation: incremental sliding aggregation vs per-window recompute", ablIncremental)
	register("abl-pipeline", "Ablation: five-stage pipeline vs sequential transfers", ablPipeline)
	register("abl-dispatcher", "Ablation: postponed window computation vs dispatcher-side", ablDispatcher)
}

// ablLookahead runs the Fig. 15 W1 workload under greedy (no delay
// estimation, no switch threshold) and full HLS.
func ablLookahead(o Options) Report {
	o = o.WithDefaults()
	rep := Report{
		ID:     "abl-lookahead",
		Title:  "HLS delay estimation (GB/s, paper-equivalent)",
		Header: []string{"workload", "greedy", "hls"},
		Notes:  []string{"expect: greedy loses the throughput the non-preferred processor could contribute"},
	}
	w1, _, _, _ := fig15Workloads()
	vol := o.MB << 20
	streams := make([][2][]byte, len(w1))
	for i := range w1 {
		streams[i] = [2][]byte{synStream(int64(70+i), 4, vol)}
	}
	measure := func(policy string) float64 {
		rs := run(runSpec{
			opts: o, queries: w1, mode: modeHybrid, policy: policy,
			taskSize: defaultPhi, streams: streams,
			sequential: true, alpha: 0.5,
		})
		return rs.paperGBps(o)
	}
	rep.Rows = append(rep.Rows, []string{"W1", f3(measure("greedy")), f3(measure("hls"))})
	return rep
}

// ablIncremental measures the batch operator function directly (no
// padding): sliding grouped aggregation with the rolling table versus
// per-fragment recompute.
func ablIncremental(o Options) Report {
	rep := Report{
		ID:     "abl-incremental",
		Title:  "Incremental computation, raw batch-operator time (ms per 1MB task)",
		Header: []string{"window", "incremental-ms", "recompute-ms", "speedup"},
		Notes:  []string{"expect: speedup grows with window overlap (size/slide)"},
	}
	stream := synStream(81, 8, 4<<20)
	for _, slide := range []int64{512, 128, 32} {
		q := workload.GroupBy([]query.AggFunc{query.Sum}, 8, window.NewCount(w32KB, slide))
		inc := timeBatchOp(q, stream, true)
		rec := timeBatchOp(q, stream, false)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("ω32KB,%dB", slide*32),
			f2(inc), f2(rec), f2(rec / inc),
		})
	}
	return rep
}

func timeBatchOp(q *query.Query, stream []byte, incremental bool) float64 {
	p, err := exec.Compile(q)
	if err != nil {
		panic(err)
	}
	p.SetIncremental(incremental)
	const taskTuples = 32768 // 1 MB
	tsz := p.InputSchema(0).TupleSize()
	total := len(stream) / tsz
	start := time.Now()
	tasks := 0
	prev := window.NoPrev
	for pos := 0; pos+taskTuples <= total; pos += taskTuples {
		data := stream[pos*tsz : (pos+taskTuples)*tsz]
		res := p.NewResult()
		in := [2]exec.Batch{{Data: data, Ctx: window.Context{
			FirstIndex:    int64(pos),
			PrevTimestamp: prev,
		}}}
		if err := p.Process(in, res); err != nil {
			panic(err)
		}
		p.ReleaseResult(res)
		prev = p.InputSchema(0).Timestamp(data[(taskTuples-1)*tsz:])
		tasks++
	}
	return float64(time.Since(start).Microseconds()) / 1000 / float64(tasks)
}

// ablPipeline pushes a burst of tasks through the GPGPU with pipeline
// depth 4 versus 1 and compares completion time.
func ablPipeline(o Options) Report {
	o = o.WithDefaults()
	rep := Report{
		ID:     "abl-pipeline",
		Title:  "Five-stage pipelining (ms for a 16-task burst)",
		Header: []string{"depth", "burst-ms"},
		Notes:  []string{"expect: depth 4 ≈ the bottleneck stage × tasks; depth 1 ≈ the stage sum × tasks"},
	}
	stream := synStream(82, 0, defaultPhi)
	q := workload.Select(8, window.NewCount(w32KB, w32KB))
	p, err := exec.Compile(q)
	if err != nil {
		panic(err)
	}
	for _, depth := range []int{1, 4} {
		dev := gpu.Open(gpu.Config{PipelineDepth: depth, Model: o.params()})
		prog := dev.Compile(p)
		const burst = 16
		start := time.Now()
		dones := make([]<-chan error, 0, burst)
		results := make([]*exec.TaskResult, 0, burst)
		for i := 0; i < burst; i++ {
			res := p.NewResult()
			results = append(results, res)
			dones = append(dones, prog.Submit([2]exec.Batch{{
				Data: stream,
				Ctx:  window.Context{FirstIndex: int64(i * 8192), PrevTimestamp: int64(i*8192) - 1},
			}, {}}, res))
		}
		for _, d := range dones {
			<-d
		}
		elapsed := time.Since(start)
		for _, r := range results {
			p.ReleaseResult(r)
		}
		dev.Close()
		rep.Rows = append(rep.Rows, []string{fmt.Sprintf("%d", depth), f2(float64(elapsed.Microseconds()) / 1000)})
	}
	return rep
}

// ablDispatcher quantifies the postponed-window-computation design: the
// real cost of computing fragment boundaries for a 1 MB task, which SABER
// pays inside parallel tasks instead of in the sequential dispatcher.
func ablDispatcher(o Options) Report {
	o = o.WithDefaults()
	rep := Report{
		ID:     "abl-dispatcher",
		Title:  "Window-boundary computation cost per 1MB task (µs, real)",
		Header: []string{"window", "boundary-µs", "dispatcher-budget-µs"},
		Notes: []string{
			"the dispatcher-budget column is the modelled sequential dispatch time for 1MB;",
			"boundary costs above it would make dispatcher-side window computation the ingest bottleneck",
		},
	}
	stream := synStream(83, 0, 1<<20)
	budget := o.params().DispatchTime(1 << 20)
	for _, slide := range []int64{1024, 64, 1} {
		q := workload.Agg(query.Sum, window.NewCount(w32KB, slide))
		p, err := exec.Compile(q)
		if err != nil {
			panic(err)
		}
		const reps = 16
		start := time.Now()
		for r := 0; r < reps; r++ {
			p.Fragments(nil, 0, len(stream)/32, stream, window.Context{FirstIndex: 0, PrevTimestamp: window.NoPrev})
		}
		per := time.Since(start) / reps
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("ω32KB,%dB", slide*32),
			f1(float64(per.Microseconds())),
			f1(float64(budget.Microseconds())),
		})
	}
	return rep
}
