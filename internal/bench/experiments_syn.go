package bench

import (
	"fmt"

	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/window"
	"saber/internal/workload"
)

// Window shorthands in tuples for the paper's byte-denominated windows
// over 32-byte tuples.
const (
	w32KB = 1024 // ω32KB
	w4KB  = 128  // ω4KB

	// defaultPhi is the task size for experiments that do not sweep ϕ:
	// 256 KiB keeps enough tasks in flight for HLS to warm up at the
	// benchmark volumes.
	defaultPhi = 256 << 10
)

func init() {
	register("fig08", "Synthetic queries: hybrid vs CPU-only vs GPGPU-only", fig08)
	register("fig10a", "SELECTn throughput vs number of predicates", fig10a)
	register("fig10b", "JOINr throughput vs number of predicates", fig10b)
	register("fig11a", "SELECT10: window slide impact (ω32KB,x)", fig11a)
	register("fig11b", "AGGavg: window slide impact (ω32KB,x)", fig11b)
	register("fig12", "Query task size ϕ: throughput and latency", fig12)
	register("fig13", "Batch/window independence: SELECT1 under three window defs", fig13)
	register("fig14", "CPU operator scalability: PROJ6 vs worker threads", fig14)
}

// threeModes measures a query under hybrid, CPU-only and GPGPU-only.
func threeModes(o Options, q *query.Query, streams [2][]byte, taskSize int) map[mode]runResult {
	out := map[mode]runResult{}
	for _, m := range []mode{modeCPU, modeGPU, modeHybrid} {
		out[m] = run(runSpec{
			opts:     o,
			queries:  []*query.Query{q},
			mode:     m,
			taskSize: taskSize,
			streams:  [][2][]byte{streams},
		})
	}
	return out
}

func fig08(o Options) Report {
	o = o.WithDefaults()
	w := window.NewCount(w32KB, w32KB)
	aggAll := query.NewBuilder("AGG*").
		From("Syn", workload.SynSchema, w).
		Aggregate(query.Sum, colA1(), "s").
		Aggregate(query.Avg, colA1(), "m").
		Aggregate(query.Min, colA1(), "lo").
		Aggregate(query.Max, colA1(), "hi").
		MustBuild()
	cases := []struct {
		q     *query.Query
		join  bool
		label string
	}{
		{workload.Proj(4, 1, w), false, "PROJ4"},
		{workload.Select(16, w), false, "SELECT16"},
		{aggAll, false, "AGG*"},
		{workload.GroupBy([]query.AggFunc{query.Count, query.Sum}, 8, w), false, "GROUP-BY8"},
		{workload.Join(1, window.NewCount(w4KB, w4KB)), true, "JOIN1"},
	}
	rep := Report{
		ID:     "fig08",
		Title:  "Synthetic queries (GB/s)",
		Header: []string{"query", "cpu-only", "gpu-only", "hybrid"},
		Notes:  []string{"expect: hybrid > max(cpu, gpu) and < cpu+gpu (dispatch/result contention)"},
	}
	for _, c := range cases {
		vol := o.MB << 20
		streams := [2][]byte{synStream(1, 8, vol)}
		if c.join {
			vol /= 8 // joins are quadratic in window size; keep points quick
			streams = [2][]byte{synStream(1, 8, vol), synStream(2, 8, vol)}
		}
		rs := threeModes(o, c.q, streams, defaultPhi)
		rep.Rows = append(rep.Rows, []string{
			c.label, f3(rs[modeCPU].paperGBps(o)), f3(rs[modeGPU].paperGBps(o)), f3(rs[modeHybrid].paperGBps(o)),
		})
	}
	return rep
}

func fig10a(o Options) Report {
	o = o.WithDefaults()
	rep := Report{
		ID:     "fig10a",
		Title:  "SELECTn with ω32KB,32KB (GB/s)",
		Header: []string{"predicates", "cpu-only", "gpu-only", "hybrid"},
		Notes:  []string{"expect: CPU collapses with n, GPGPU near-flat, crossover in between"},
	}
	stream := [2][]byte{synStream(3, 0, o.MB<<20)}
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		q := workload.Select(n, window.NewCount(w32KB, w32KB))
		rs := threeModes(o, q, stream, defaultPhi)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", n), f3(rs[modeCPU].paperGBps(o)), f3(rs[modeGPU].paperGBps(o)), f3(rs[modeHybrid].paperGBps(o)),
		})
	}
	return rep
}

func fig10b(o Options) Report {
	o = o.WithDefaults()
	rep := Report{
		ID:     "fig10b",
		Title:  "JOINr with ω4KB,4KB (GB/s)",
		Header: []string{"predicates", "cpu-only", "gpu-only", "hybrid"},
	}
	vol := (o.MB << 20) / 16
	streams := [2][]byte{synStream(4, 0, vol), synStream(5, 0, vol)}
	for _, r := range []int{1, 2, 4, 8, 16, 32, 64} {
		q := workload.Join(r, window.NewCount(w4KB, w4KB))
		rs := threeModes(o, q, streams, defaultPhi)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", r), f3(rs[modeCPU].paperGBps(o)), f3(rs[modeGPU].paperGBps(o)), f3(rs[modeHybrid].paperGBps(o)),
		})
	}
	return rep
}

func slideSweep(o Options, mk func(slideTuples int64) *query.Query, id, title string, note string) Report {
	rep := Report{
		ID:     id,
		Title:  title,
		Header: []string{"slide", "cpu-only", "gpu-only", "hybrid", "hybrid-latency-ms"},
	}
	if note != "" {
		rep.Notes = append(rep.Notes, note)
	}
	stream := [2][]byte{synStream(6, 0, o.MB<<20)}
	for _, slide := range []int64{1, 16, 64, 256, 1024} { // 32 B … 32 KB
		q := mk(slide)
		rs := threeModes(o, q, stream, defaultPhi)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%dB", slide*32),
			f3(rs[modeCPU].paperGBps(o)), f3(rs[modeGPU].paperGBps(o)), f3(rs[modeHybrid].paperGBps(o)),
			f1(rs[modeHybrid].paperLatencyMS(o)),
		})
	}
	return rep
}

func fig11a(o Options) Report {
	o = o.WithDefaults()
	return slideSweep(o, func(slide int64) *query.Query {
		return workload.Select(10, window.NewCount(w32KB, slide))
	}, "fig11a", "SELECT10 with ω32KB,x (GB/s)",
		"expect: slide-invariant (selection keeps no window state)")
}

func fig11b(o Options) Report {
	o = o.WithDefaults()
	if o.MB > 4 {
		o.MB = 4 // small slides make the GPGPU recompute every window
	}
	return slideSweep(o, func(slide int64) *query.Query {
		return workload.Agg(query.Avg, window.NewCount(w32KB, slide))
	}, "fig11b", "AGGavg with ω32KB,x (GB/s)",
		"expect: CPU rises with slide (incremental) to the dispatcher bound; GPGPU rises to the PCIe ceiling")
}

func fig12(o Options) Report {
	o = o.WithDefaults()
	w := window.NewCount(w32KB, w32KB)
	cases := []struct {
		label string
		q     *query.Query
		join  bool
	}{
		{"SELECT10", workload.Select(10, w), false},
		{"AGGavg GROUP-BY64", workload.GroupBy([]query.AggFunc{query.Avg}, 64, w), false},
		{"JOIN4", workload.Join(4, w), true},
	}
	rep := Report{
		ID:     "fig12",
		Title:  "Query task size ϕ (GB/s; hybrid latency ms)",
		Header: []string{"query", "ϕ", "cpu-only", "gpu-only", "hybrid", "latency-ms"},
		Notes: []string{
			"expect: throughput grows with ϕ and plateaus ≈1MB; latency grows with ϕ",
			"expect: GPGPU-only JOIN collapses at large ϕ (host-side window computation)",
		},
	}
	for _, c := range cases {
		vol := o.MB << 20
		streams := [2][]byte{synStream(7, 64, vol)}
		if c.join {
			vol /= 32
			streams = [2][]byte{synStream(7, 64, vol), synStream(8, 64, vol)}
		}
		for _, phi := range []int{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
			rs := threeModes(o, c.q, streams, phi)
			rep.Rows = append(rep.Rows, []string{
				c.label, fmt.Sprintf("%dKB", phi>>10),
				f3(rs[modeCPU].paperGBps(o)), f3(rs[modeGPU].paperGBps(o)), f3(rs[modeHybrid].paperGBps(o)),
				f1(rs[modeHybrid].paperLatencyMS(o)),
			})
		}
	}
	return rep
}

func fig13(o Options) Report {
	o = o.WithDefaults()
	rep := Report{
		ID:     "fig13",
		Title:  "SELECT1 under three window definitions vs ϕ (hybrid GB/s)",
		Header: []string{"ϕ", "ω32B,32B", "ω32KB,32B", "ω32KB,32KB"},
		Notes:  []string{"expect: the three columns coincide — ϕ is independent of the window definition"},
	}
	stream := [2][]byte{synStream(9, 0, o.MB<<20)}
	defs := []window.Def{
		window.NewCount(1, 1),
		window.NewCount(w32KB, 1),
		window.NewCount(w32KB, w32KB),
	}
	for _, phi := range []int{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		row := []string{fmt.Sprintf("%dKB", phi>>10)}
		for _, d := range defs {
			rs := run(runSpec{
				opts:     o,
				queries:  []*query.Query{workload.Select(1, d)},
				mode:     modeHybrid,
				taskSize: phi,
				streams:  [][2][]byte{stream},
			})
			row = append(row, f3(rs.paperGBps(o)))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

func fig14(o Options) Report {
	o = o.WithDefaults()
	rep := Report{
		ID:     "fig14",
		Title:  "PROJ6 CPU-only throughput vs worker threads (GB/s)",
		Header: []string{"workers", "GB/s"},
		Notes:  []string{"expect: linear scaling to 16 workers, plateau beyond (the paper's core count)"},
	}
	stream := [2][]byte{synStream(10, 0, o.MB<<20)}
	q := workload.Proj(6, 1, window.NewCount(w32KB, w32KB))
	for _, workers := range []int{1, 2, 4, 8, 16, 32} {
		oo := o
		oo.Workers = workers
		rs := run(runSpec{
			opts:     oo,
			queries:  []*query.Query{q},
			mode:     modeCPU,
			taskSize: defaultPhi,
			streams:  [][2][]byte{stream},
		})
		rep.Rows = append(rep.Rows, []string{fmt.Sprintf("%d", workers), f3(rs.paperGBps(oo))})
	}
	return rep
}

func colA1() expr.Expr { return expr.Col("a1") }
