package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"saber/internal/adapt"
	"saber/internal/engine"
	"saber/internal/gpu"
	"saber/internal/model"
	"saber/internal/obs"
	"saber/internal/window"
	"saber/internal/workload"
)

// The adaptive experiment measures what dynamic ϕ buys under bursty
// load: a fixed-ϕ sweep shows the static trade — small tasks pay the
// per-task overhead in sustained capacity, while large tasks blow the
// latency SLO (batching delay at the trough, queueing at the burst) —
// and the adaptive controller, started from the engine's default 1 MiB,
// must shrink into the band that meets the SLO without giving up paced
// throughput. Alongside the text report it writes a machine-readable
// BENCH_adaptive.json; CI gates on it via tools/benchguard -adaptive
// (tail p99 within SLO at ≥90% of the best fixed-ϕ throughput).

func init() {
	register("adaptive", "Adaptive task sizing (dynamic ϕ) vs fixed-ϕ sweep under bursty load", adaptive)
}

// adaptiveJSONPath is where the experiment drops its JSON twin; tests
// point it into a scratch directory.
var adaptiveJSONPath = "BENCH_adaptive.json"

// The workload: square-wave bursts over a steady base, sized against
// the sustained capacity the engine actually measures on the host the
// experiment runs on (~0.5 GB/s at ϕ=16 KiB rising to ~0.6 GB/s at
// mid ϕ — per-task overhead is real, so small tasks genuinely cost
// throughput). The burst approaches the small-ϕ capacity so tiny
// tasks queue against the SLO; the base rate makes large tasks pay
// ϕ/rate batching (ingest) delay against it. The latency metric is
// the tail p99 — ingest batching p99 plus post-cut e2e p99 — the
// same signal the controller steers on (adapt.Signals.TailP99).
const (
	adaptBaseRate  = 80e6  // bytes/sec at the trough
	adaptBurstRate = 300e6 // bytes/sec during the burst
	adaptPeriod    = time.Second
	adaptBurstLen  = 300 * time.Millisecond
	adaptDuration  = 5 * time.Second
	// adaptFeedTick quantizes the paced feeder; it must sit well under
	// the SLO because a tuple landing just after a tick's lump waits a
	// full tick before its task can fill (an ingest-latency floor).
	adaptFeedTick = time.Millisecond
	adaptSLO      = 12 * time.Millisecond
	// adaptTarget is what the controller steers at: 75% of the reported
	// SLO. Steering at the SLO itself would converge to ϕ just under the
	// boundary and leave the measured tail no margin for run-to-run
	// noise — the usual burn-rate margin, applied to ϕ.
	adaptTarget   = 9 * time.Millisecond
	adaptInterval = 100 * time.Millisecond
	adaptWarmup   = 1500 * time.Millisecond // excluded from steady-state p99
	adaptWorkers  = 2
	adaptMinPhi   = 16 << 10
	adaptMaxPhi   = 1 << 20
)

type adaptRun struct {
	Phi int `json:"phi,omitempty"` // fixed runs only
	// CapacityGBps is the ϕ's saturated throughput from a separate
	// full-throttle feed (fixed runs only): the honest record of what
	// small tasks cost in per-task overhead, measured apart from the
	// paced SLO runs so saturation queueing cannot poison their tails.
	CapacityGBps float64 `json:"capacity_gbps,omitempty"`
	GBps         float64 `json:"gbps"`
	P99Ms        float64 `json:"p99_ms"`      // steady-state (post-warmup)
	P99FullMs    float64 `json:"p99_full_ms"` // whole run, incl. transient
	MeetsSLO     bool    `json:"meets_slo"`
	GPUShare     float64 `json:"gpu_share"`

	// Adaptive-run controller trajectory.
	PhiStart int   `json:"phi_start,omitempty"`
	PhiFinal int   `json:"phi_final,omitempty"`
	Grows    int64 `json:"grows,omitempty"`
	Shrinks  int64 `json:"shrinks,omitempty"`
	Clamps   int64 `json:"clamps,omitempty"`
}

type adaptReport struct {
	SLOMs         float64    `json:"slo_ms"`
	BaseRateMBps  float64    `json:"base_rate_mbps"`
	BurstRateMBps float64    `json:"burst_rate_mbps"`
	BurstDuty     float64    `json:"burst_duty"`
	Fixed         []adaptRun `json:"fixed"`
	Adaptive      adaptRun   `json:"adaptive"`
	BestFixedGBps float64    `json:"best_fixed_gbps"`
	// AdaptiveVsBestPct is the acceptance ratio: adaptive throughput as
	// a percentage of the best fixed-ϕ throughput. The CI gate requires
	// ≥90 with Adaptive.MeetsSLO true.
	AdaptiveVsBestPct float64 `json:"adaptive_vs_best_pct"`
	// Metrics embeds the adaptive run's final snapshot (saber.adapt.*
	// included) so the JSON is self-describing.
	Metrics obs.Snapshot `json:"metrics"`
}

// adaptEngine builds the experiment's engine + device pair.
func adaptEngine(taskSize int, adaptCfg *adapt.Config) (*engine.Engine, *gpu.Device, *engine.Handle) {
	params := model.Default() // unscaled: the SLO is a real-time target
	dev := gpu.Open(gpu.Config{Model: params})
	eng := engine.New(engine.Config{
		CPUWorkers: adaptWorkers,
		GPU:        dev,
		TaskSize:   taskSize,
		Model:      params,
		Adapt:      adaptCfg,
	})
	h, err := eng.Register(workload.Select(2, window.NewCount(1024, 1024)))
	if err != nil {
		panic(err)
	}
	if err := eng.Start(); err != nil {
		panic(err)
	}
	return eng, dev, h
}

// adaptCapacity measures one fixed ϕ's saturated throughput with a
// full-throttle feed for about a second.
func adaptCapacity(taskSize int) float64 {
	eng, dev, h := adaptEngine(taskSize, nil)
	defer dev.Close()
	block := synStream(7, 64, 16<<20)
	start := time.Now()
	total := int64(0)
	for time.Since(start) < 1200*time.Millisecond {
		h.Insert(block[:4<<20])
		total += 4 << 20
	}
	eng.Drain()
	elapsed := time.Since(start)
	eng.Close()
	return float64(total) / elapsed.Seconds() / 1e9
}

// adaptMeasure runs the burst workload against one engine configuration
// and measures sustained throughput plus steady-state p99. adaptCfg nil
// means fixed ϕ = taskSize.
func adaptMeasure(taskSize int, adaptCfg *adapt.Config) adaptRun {
	eng, dev, h := adaptEngine(taskSize, adaptCfg)
	defer dev.Close()
	phiStart := eng.TaskSize()

	// One 16 MiB block of synthetic tuples, fed cyclically: the byte
	// volume is ~3.7 GB, far too much to pre-generate, and the latency
	// surface only depends on rates and sizes, not tuple novelty.
	block := synStream(7, 64, 16<<20)
	rate := workload.BurstRate(adaptBaseRate, adaptBurstRate, adaptPeriod, adaptBurstLen)
	counts := workload.PaceTuples(rate, workload.SynTupleSize, adaptFeedTick, adaptDuration)

	reg := eng.Metrics()
	var warm obs.Snapshot
	warmTick := int(adaptWarmup / adaptFeedTick)

	start := time.Now()
	total := int64(0)
	off := 0
	for i, n := range counts {
		if wait := time.Duration(i)*adaptFeedTick - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		if i == warmTick {
			warm = reg.Snapshot()
		}
		remaining := n * workload.SynTupleSize
		for remaining > 0 {
			c := remaining
			if off+c > len(block) {
				c = len(block) - off
			}
			h.Insert(block[off : off+c])
			total += int64(c)
			off = (off + c) % len(block)
			remaining -= c
		}
	}
	eng.Drain()
	elapsed := time.Since(start)
	final := reg.Snapshot()
	eng.Close()

	// Tail p99 = ingest batching p99 + post-cut e2e p99: the e2e trace
	// starts at the task cut, so the batching delay a large ϕ inflicts
	// at low rate only shows in the ingest stage histogram.
	tailP99 := func(s obs.Snapshot) float64 {
		e2e := s.Histograms["saber.trace.e2e"]
		ing := s.Histograms["saber.trace.ingest"]
		return float64(e2e.Quantile(0.99)+ing.Quantile(0.99)) / 1e6
	}
	steady := obs.Snapshot{Histograms: map[string]obs.HistogramSnapshot{
		"saber.trace.e2e":    final.Histograms["saber.trace.e2e"].Sub(warm.Histograms["saber.trace.e2e"]),
		"saber.trace.ingest": final.Histograms["saber.trace.ingest"].Sub(warm.Histograms["saber.trace.ingest"]),
	}}
	if steady.Histograms["saber.trace.e2e"].Count == 0 {
		steady = final
	}
	st := h.Stats()
	run := adaptRun{
		GBps:      float64(total) / elapsed.Seconds() / 1e9,
		P99Ms:     tailP99(steady),
		P99FullMs: tailP99(final),
		GPUShare:  st.GPUShare(),
	}
	run.MeetsSLO = run.P99Ms <= float64(adaptSLO)/1e6
	if adaptCfg != nil {
		run.PhiStart = phiStart
		run.PhiFinal = eng.TaskSize()
		run.Grows = final.Counters["saber.adapt.grow"]
		run.Shrinks = final.Counters["saber.adapt.shrink"]
		run.Clamps = final.Counters["saber.adapt.clamped"]
	} else {
		run.Phi = taskSize
	}
	return run
}

func adaptive(o Options) Report {
	o = o.WithDefaults()
	rep := Report{
		ID:     "adaptive",
		Title:  "Adaptive task sizing (dynamic ϕ) vs fixed-ϕ sweep under bursty load",
		Header: []string{"config", "GB/s", "capacity GB/s", "tail p99 ms", "p99 ms (full)", "meets SLO", "gpu share"},
	}

	js := adaptReport{
		SLOMs:         float64(adaptSLO.Milliseconds()),
		BaseRateMBps:  adaptBaseRate / 1e6,
		BurstRateMBps: adaptBurstRate / 1e6,
		BurstDuty:     float64(adaptBurstLen) / float64(adaptPeriod),
	}

	for _, phi := range []int{16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		r := adaptMeasure(phi, nil)
		r.CapacityGBps = round2(adaptCapacity(phi))
		js.Fixed = append(js.Fixed, r)
		if r.GBps > js.BestFixedGBps {
			js.BestFixedGBps = r.GBps
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("fixed %d KiB", phi>>10),
			f2(r.GBps), f2(r.CapacityGBps), f2(r.P99Ms), f2(r.P99FullMs), fmt.Sprint(r.MeetsSLO), f2(r.GPUShare)})
	}

	js.Adaptive = adaptMeasure(1<<20, &adapt.Config{
		MinPhi:   adaptMinPhi,
		MaxPhi:   adaptMaxPhi,
		SLO:      adaptTarget,
		Interval: adaptInterval,
	})
	if js.BestFixedGBps > 0 {
		js.AdaptiveVsBestPct = round2(js.Adaptive.GBps / js.BestFixedGBps * 100)
	}
	rep.Rows = append(rep.Rows, []string{
		fmt.Sprintf("adaptive %d→%d KiB", js.Adaptive.PhiStart>>10, js.Adaptive.PhiFinal>>10),
		f2(js.Adaptive.GBps), "-", f2(js.Adaptive.P99Ms), f2(js.Adaptive.P99FullMs),
		fmt.Sprint(js.Adaptive.MeetsSLO), f2(js.Adaptive.GPUShare)})

	// Re-run snapshot embedding: the adaptive run's registry was private;
	// record a compact summary instead of re-plumbing it out — the
	// decisions and trajectory are already in js.Adaptive.
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("SLO %v tail p99 = ingest batching p99 + e2e p99 (steady-state, first %v of controller convergence excluded)", adaptSLO, adaptWarmup),
		fmt.Sprintf("burst %0.fMB/s over %0.fMB/s base, %d%% duty; unscaled model, %d CPU workers",
			adaptBurstRate/1e6, adaptBaseRate/1e6, int(js.BurstDuty*100), adaptWorkers),
		fmt.Sprintf("adaptive vs best fixed: %.1f%% (gate ≥90%% with SLO met)", js.AdaptiveVsBestPct))

	if buf, err := json.MarshalIndent(js, "", "  "); err == nil {
		if werr := os.WriteFile(adaptiveJSONPath, append(buf, '\n'), 0o644); werr != nil {
			rep.Notes = append(rep.Notes, "could not write "+adaptiveJSONPath+": "+werr.Error())
		} else {
			rep.Notes = append(rep.Notes, "machine-readable twin written to "+adaptiveJSONPath)
		}
	}
	return rep
}
