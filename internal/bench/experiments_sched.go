package bench

import (
	"fmt"
	"sync"
	"time"

	"saber/internal/engine"
	"saber/internal/query"
	"saber/internal/sched"
	"saber/internal/window"
	"saber/internal/workload"
)

func init() {
	register("fig15", "HLS vs FCFS vs Static on workloads W1 and W2", fig15)
	register("fig16", "HLS adaptation to selectivity surges (timeline)", fig16)
}

// fig15Workloads builds the paper's two scheduling workloads with
// opposite processor preferences:
// W1 pairs a GPGPU-leaning compute-heavy query with a CPU-leaning
// sliding GROUP-BY. The paper's Q1 is PROJ6* (100 arithmetic expressions
// per attribute); interpreted expression trees make that query raw-CPU-
// bound on small hosts, which would mask the scheduling signal, so this
// reproduction uses SELECT64 — the same side of the Fig. 10a crossover —
// as the GPGPU-leaning member (noted in EXPERIMENTS.md).
// W2 = PROJ1 + AGGsum, both cheap, where any static split underuses one
// side.
func fig15Workloads() (w1, w2 []*query.Query, static1, static2 []sched.Processor) {
	w := window.NewCount(w32KB, w32KB)
	w1 = []*query.Query{
		workload.Select(64, w), // Q1: compute-heavy → GPGPU (≈2× faster there)
		// Q2: fine-sliding GROUP-BY → CPU (incremental computation; the
		// GPGPU recomputes every overlapping window).
		workload.GroupBy([]query.AggFunc{query.Count}, 1, window.NewCount(w32KB, 16)),
	}
	static1 = []sched.Processor{sched.GPU, sched.CPU}
	w2 = []*query.Query{
		workload.Proj(1, 1, w),     // Q3
		workload.Agg(query.Sum, w), // Q4
	}
	static2 = []sched.Processor{sched.GPU, sched.CPU}
	return
}

func fig15(o Options) Report {
	o = o.WithDefaults()
	rep := Report{
		ID:     "fig15",
		Title:  "Scheduling policies, aggregate throughput (GB/s, paper-equivalent)",
		Header: []string{"workload", "fcfs", "static", "hls"},
		Notes: []string{
			"expect: fcfs < hls on W1 and hls >= static on W2",
			"at reproduction volumes static can edge out hls on W1: the static",
			"assignment equals the preference hls must first learn, and the",
			"short phases leave little idle capacity for hls to reclaim",
		},
	}
	w1, w2, st1, st2 := fig15Workloads()
	runPolicy := func(qs []*query.Query, static []sched.Processor, policy string) float64 {
		vol := 2 * (o.MB << 20) // two phases, each larger than the input ring
		streams := make([][2][]byte, len(qs))
		for i := range qs {
			streams[i] = [2][]byte{synStream(int64(50+i), 4, vol)}
		}
		rs := run(runSpec{
			opts:     o,
			queries:  qs,
			mode:     modeHybrid,
			policy:   policy,
			static:   static,
			taskSize: defaultPhi,
			streams:  streams,
			alpha:    0.5, // learn the preference within the run
			// The paper executes the two queries in sequence; ring-buffer
			// backpressure enforces the phases while leaving enough
			// reordering slack for cross-processor task completion.
			sequential: true,
		})
		return rs.paperGBps(o)
	}
	for _, c := range []struct {
		label  string
		qs     []*query.Query
		static []sched.Processor
	}{
		{"W1", w1, st1},
		{"W2", w2, st2},
	} {
		fcfs := runPolicy(c.qs, nil, "fcfs")
		stat := runPolicy(c.qs, c.static, "static")
		hls := runPolicy(c.qs, nil, "hls")
		rep.Rows = append(rep.Rows, []string{c.label, f3(fcfs), f3(stat), f3(hls)})
	}
	return rep
}

// fig16 replays the adaptation experiment: a guarded selection over a
// trace with task-failure surges. When the surge hits, the guard passes
// and the 499 inner predicates run, making tasks expensive on the CPU;
// HLS shifts work to the GPGPU, then back.
func fig16(o Options) Report {
	o = o.WithDefaults()
	rep := Report{
		ID:     "fig16",
		Title:  "HLS adaptation timeline (guarded SELECT500 over surging trace)",
		Header: []string{"segment", "selectivity", "GB/s", "gpu-share"},
		Notes: []string{
			"expect: the gpu-share column tracks the selectivity surges",
			"adaptation and in-flight tasks span segment boundaries at reproduction",
			"volumes, so shares shift with up to one segment of lag (visible in the",
			"paper's timeline too)",
		},
	}
	// Build a stream of alternating calm/surge segments: the guard
	// predicate is a4 < 100, so segments with a4 ∈ [0,100) are expensive
	// (selectivity ≈ 1) and segments with a4 uniform are cheap (≈ 0.1).
	const segments = 6
	segBytes := (o.MB << 20) / segments
	var stream []byte
	var segSel []float64
	g := workload.NewSynGen(61)
	for si := 0; si < segments; si++ {
		chunk := g.Next(nil, segBytes/32)
		if si%2 == 1 {
			// Surge: force the guard to pass.
			s := workload.SynSchema
			a4 := s.IndexOf("a4")
			for i := 0; i < len(chunk)/32; i++ {
				s.WriteInt32(s.TupleAt(chunk, i), a4, int32(i%100))
			}
			segSel = append(segSel, 1.0)
		} else {
			segSel = append(segSel, 0.1)
		}
		stream = append(stream, chunk...)
	}

	q := workload.GuardedSelect(500, 100, window.NewCount(w32KB, w32KB))

	// Sample the per-segment GPGPU share by tracking task-counter deltas.
	type sample struct {
		gpu, all int64
		bytes    int64
		at       time.Duration
	}
	var mu sync.Mutex
	var samples []sample
	rs := run(runSpec{
		opts:     o,
		queries:  []*query.Query{q},
		mode:     modeHybrid,
		taskSize: defaultPhi,
		streams:  [][2][]byte{{stream, nil}},
		alpha:    0.5, // the paper refreshes the matrix every 100 ms
		// A small ring keeps ingestion tracking processing, so samples
		// attribute to the segment actually being executed.
		inputBuf:    2 << 20,
		sampleEvery: 10 * time.Millisecond,
		sample: func(elapsed time.Duration, handles []*engine.Handle) {
			st := handles[0].Stats()
			mu.Lock()
			samples = append(samples, sample{
				gpu: st.TasksGPU, all: st.TasksGPU + st.TasksCPU,
				bytes: st.BytesIn, at: elapsed,
			})
			mu.Unlock()
		},
	})

	// Attribute samples to stream segments by ingested bytes.
	mu.Lock()
	defer mu.Unlock()
	var prev sample
	segOf := func(b int64) int {
		s := int(b) / segBytes
		if s >= segments {
			s = segments - 1
		}
		return s
	}
	type segAcc struct {
		gpu, all int64
		bytes    int64
		dur      time.Duration
	}
	accs := make([]segAcc, segments)
	for _, s := range samples {
		si := segOf((prev.bytes + s.bytes) / 2)
		accs[si].gpu += s.gpu - prev.gpu
		accs[si].all += s.all - prev.all
		accs[si].bytes += s.bytes - prev.bytes
		accs[si].dur += s.at - prev.at
		prev = s
	}
	for si, a := range accs {
		share := 0.0
		if a.all > 0 {
			share = float64(a.gpu) / float64(a.all)
		}
		gbps := 0.0
		if a.dur > 0 {
			gbps = float64(a.bytes) / a.dur.Seconds() / 1e9 * o.Scale
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", si), f2(segSel[si]), f3(gbps), f2(share),
		})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("overall: %.3f GB/s, gpu-share %.2f", rs.paperGBps(o), rs.GPUShare))
	return rep
}
