package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"testing"
	"time"
)

// tiny returns low-volume options for CI-speed smoke runs. Scale stays
// high enough that the model still dominates.
func tiny() Options { return Options{Scale: 8, MB: 4, Workers: 8} }

// skipShape skips timing-shape assertions under the race detector: its
// instrumentation slows compute by an order of magnitude, distorting the
// calibrated timing surface these tests assert on. Compile/registry
// tests still run under -race.
func skipShape(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("timing-shape assertions are not meaningful under -race")
	}
}

func cell(t *testing.T, rep Report, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(rep.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s row %d col %d = %q", rep.ID, row, col, rep.Rows[row][col])
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig01", "tab01", "fig07", "fig08", "fig09", "mdb",
		"fig10a", "fig10b", "fig11a", "fig11b", "fig12", "fig13",
		"fig14", "fig15", "fig16",
		"abl-lookahead", "abl-incremental", "abl-pipeline", "abl-dispatcher",
		"operators", "adaptive", "ckpt", "overload",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(All()), len(want))
	}
	if len(IDs()) != len(want) {
		t.Errorf("IDs() = %d", len(IDs()))
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("phantom experiment")
	}
}

func TestOperatorsExperiment(t *testing.T) {
	old := operatorsJSONPath
	operatorsJSONPath = t.TempDir() + "/BENCH_operators.json"
	defer func() { operatorsJSONPath = old }()
	rep := operators(tiny())
	if len(rep.Rows) != 7 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	buf, err := os.ReadFile(operatorsJSONPath)
	if err != nil {
		t.Fatalf("JSON twin not written: %v", err)
	}
	var js opsReport
	if err := json.Unmarshal(buf, &js); err != nil {
		t.Fatalf("JSON twin malformed: %v", err)
	}
	if len(js.Operators) != len(rep.Rows) || js.TupleBytes != 32 {
		t.Fatalf("JSON twin content: %+v", js)
	}
	// The metrics-on measurement and its embedded snapshot (PR 5): every
	// operator reports an instrumented rate, and the snapshot carries the
	// per-operator counters the instrumented loop incremented.
	for _, op := range js.Operators {
		if op.MetricsOnMtps <= 0 {
			t.Errorf("%s: no metrics-on measurement", op.Name)
		}
		if op.MetricsOverheadPct < 0 {
			t.Errorf("%s: negative overhead %g", op.Name, op.MetricsOverheadPct)
		}
		if op.ColumnarMtps <= 0 || op.ColumnarVsRow <= 0 {
			t.Errorf("%s: no columnar measurement (%g Mt/s, ratio %g)", op.Name, op.ColumnarMtps, op.ColumnarVsRow)
		}
		if n := js.Metrics.Counters["saber.bench.ops."+op.Name+".tasks.created"]; n <= 0 {
			t.Errorf("%s: snapshot missing instrumented counters (tasks.created = %d)", op.Name, n)
		}
	}
	// The end-to-end ingest-bandwidth section (columnar ring layout):
	// both layouts measured, and the columnar engine really took the
	// no-gather path.
	if js.IngestBandwidth == nil {
		t.Fatal("JSON twin missing ingest_bandwidth section")
	}
	if ing := js.IngestBandwidth; ing.RowMtps <= 0 || ing.ColumnarMtps <= 0 {
		t.Errorf("ingest-bandwidth rates degenerate: %+v", ing)
	} else if ing.GatherElided <= 0 {
		t.Errorf("ingest-bandwidth columnar run elided no gathers: %+v", ing)
	}
	if js.MetricsOverheadPct < 0 {
		t.Errorf("aggregate overhead %g < 0", js.MetricsOverheadPct)
	}
	if _, ok := js.Metrics.Histograms["saber.trace.e2e"]; !ok {
		t.Error("snapshot missing saber.trace.e2e histogram")
	}
	if raceEnabled {
		return // ratios are not meaningful under instrumentation
	}
	for _, op := range js.Operators {
		if op.Speedup <= 0 {
			t.Errorf("%s: degenerate speedup %g", op.Name, op.Speedup)
		}
	}
	// The acceptance floor: the batch kernels must at least double
	// tuples/s on the selection, projection and scalar-aggregation paths.
	// The floors sit within a few percent of the nominal ratios on small
	// hosts, so one re-measurement is allowed before failing: a noisy
	// neighbour clears on the retry, a genuine kernel regression does not.
	bad := speedupViolations(js)
	if len(bad) > 0 {
		t.Logf("speedup floors missed (%v), re-measuring once", bad)
		operators(tiny())
		buf, err = os.ReadFile(operatorsJSONPath)
		if err != nil {
			t.Fatalf("JSON twin not rewritten: %v", err)
		}
		js = opsReport{}
		if err := json.Unmarshal(buf, &js); err != nil {
			t.Fatalf("JSON twin malformed on retry: %v", err)
		}
		bad = speedupViolations(js)
	}
	for _, m := range bad {
		t.Error(m)
	}
}

// speedupViolations returns the operators whose vectorized/scalar ratio
// is below the acceptance floor.
func speedupViolations(js opsReport) []string {
	var bad []string
	for _, name := range []string{"selection", "projection", "agg-scalar-prefix", "agg-scalar-direct"} {
		for _, op := range js.Operators {
			if op.Name == name && op.Speedup < 2 {
				bad = append(bad, fmt.Sprintf("%s: speedup %g < 2x", name, op.Speedup))
			}
		}
	}
	return bad
}

// TestOverloadExperiment smoke-runs the overload experiment at reduced
// duration and checks the JSON twin's structure; the timing-shape gates
// (goodput ratio, SLO) are benchguard's job on the full-length run.
func TestOverloadExperiment(t *testing.T) {
	oldPath, oldProbe, oldDur := overloadJSONPath, overloadCapacityProbe, overloadDuration
	overloadJSONPath = t.TempDir() + "/BENCH_overload.json"
	overloadCapacityProbe = 300 * time.Millisecond
	overloadDuration = 600 * time.Millisecond
	defer func() {
		overloadJSONPath, overloadCapacityProbe, overloadDuration = oldPath, oldProbe, oldDur
	}()
	rep := overloadExp(tiny())
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	buf, err := os.ReadFile(overloadJSONPath)
	if err != nil {
		t.Fatalf("JSON twin not written: %v", err)
	}
	var js overloadReport
	if err := json.Unmarshal(buf, &js); err != nil {
		t.Fatalf("JSON twin malformed: %v", err)
	}
	if js.CapacityGBps <= 0 || len(js.Runs) != 3 {
		t.Fatalf("JSON twin content: capacity %g, %d runs", js.CapacityGBps, len(js.Runs))
	}
	if js.Gate.Policy != "oldest" {
		t.Fatalf("gate run = %q, want oldest", js.Gate.Policy)
	}
	for _, r := range js.Runs {
		if r.Stalls != 0 {
			t.Errorf("%s: watchdog counted %d stalls", r.Policy, r.Stalls)
		}
	}
	if _, ok := js.Metrics.Counters["saber.overload.q0.bytes.offered"]; !ok {
		t.Error("snapshot missing saber.overload admission ledger")
	}
	if raceEnabled {
		return // shed/latency shapes are not meaningful under instrumentation
	}
	for _, r := range js.Runs[1:] {
		if r.ShedFrac <= 0 {
			t.Errorf("%s: 2x-capacity feed shed nothing", r.Policy)
		}
	}
}

func TestReportPrint(t *testing.T) {
	rep := Report{ID: "x", Title: "t", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	rep.Print(io.Discard)
}

func TestTab01AllQueriesCompile(t *testing.T) {
	rep := tab01(tiny())
	if len(rep.Rows) < 14 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if len(row[4]) > 7 && row[4][:7] == "COMPILE" {
			t.Errorf("%s/%s failed to compile: %s", row[0], row[1], row[4])
		}
	}
}

func TestFig01SlideCoupling(t *testing.T) {
	skipShape(t)
	o := tiny()
	rep := fig01(o)
	first := cell(t, rep, 0, 1)
	last := cell(t, rep, len(rep.Rows)-1, 1)
	if first >= last {
		t.Fatalf("micro-batch throughput must rise with slide: %g vs %g", first, last)
	}
}

func TestFig10aCrossoverShape(t *testing.T) {
	skipShape(t)
	o := Options{Scale: 20, MB: 8, Workers: 15}
	rep := fig10a(o)
	n := len(rep.Rows)
	cpuFirst, cpuLast := cell(t, rep, 0, 1), cell(t, rep, n-1, 1)
	gpuFirst, gpuLast := cell(t, rep, 0, 2), cell(t, rep, n-1, 2)
	if cpuFirst <= cpuLast*2 {
		t.Errorf("CPU should collapse with predicates: %g → %g", cpuFirst, cpuLast)
	}
	if gpuLast < gpuFirst*0.5 {
		t.Errorf("GPGPU should stay near-flat: %g → %g", gpuFirst, gpuLast)
	}
	if cpuFirst <= gpuFirst {
		t.Errorf("CPU should win at n=1: %g vs %g", cpuFirst, gpuFirst)
	}
	if gpuLast <= cpuLast {
		t.Errorf("GPGPU should win at n=64: %g vs %g", gpuLast, cpuLast)
	}
}

func TestFig13WindowIndependence(t *testing.T) {
	skipShape(t)
	o := Options{Scale: 20, MB: 16, Workers: 15}
	rep := fig13(o)
	// Only the rows with >=16 tasks per run are statistically stable.
	rep.Rows = rep.Rows[:2]
	for r := range rep.Rows {
		a, b, c := cell(t, rep, r, 1), cell(t, rep, r, 2), cell(t, rep, r, 3)
		lo, hi := a, a
		for _, v := range []float64{b, c} {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > lo*1.6 {
			t.Errorf("row %d: window definitions diverge: %g %g %g", r, a, b, c)
		}
	}
}

func TestFig14Scaling(t *testing.T) {
	skipShape(t)
	o := Options{Scale: 20, MB: 4}
	rep := fig14(o)
	w1 := cell(t, rep, 0, 1)
	w8 := cell(t, rep, 3, 1)
	if w8 < w1*3 {
		t.Errorf("worker scaling too weak: 1→%g, 8→%g", w1, w8)
	}
}

func TestAblIncrementalSpeedup(t *testing.T) {
	skipShape(t)
	rep := ablIncremental(tiny())
	last := len(rep.Rows) - 1
	if sp := cell(t, rep, last, 3); sp < 1.5 {
		t.Errorf("incremental speedup at smallest slide = %g", sp)
	}
	if f, l := cell(t, rep, 0, 3), cell(t, rep, last, 3); l < f {
		t.Errorf("speedup should grow with overlap: %g → %g", f, l)
	}
}

func TestAblPipelineOverlap(t *testing.T) {
	skipShape(t)
	rep := ablPipeline(tiny())
	d1, d4 := cell(t, rep, 0, 1), cell(t, rep, 1, 1)
	if d4*1.5 > d1 {
		t.Errorf("pipelining gains too small: depth1=%gms depth4=%gms", d1, d4)
	}
}

func TestAblDispatcherBudget(t *testing.T) {
	skipShape(t)
	rep := ablDispatcher(tiny())
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// The smallest slide (most windows) must cost the most.
	if cell(t, rep, 2, 1) < cell(t, rep, 0, 1) {
		t.Error("boundary cost should grow as the slide shrinks")
	}
}

func TestFig16SharesTrackSelectivity(t *testing.T) {
	skipShape(t)
	o := Options{Scale: 20, MB: 12, Workers: 15}
	// As with fig15, a contended run (parallel test packages) can distort
	// the share attribution, so allow a single retry before failing.
	for attempt := 0; ; attempt++ {
		rep := fig16(o)
		if len(rep.Rows) != 6 {
			t.Fatalf("segments = %d", len(rep.Rows))
		}
		// Adaptation shows as: near-zero GPGPU share before the first surge,
		// and a substantial share at or after some surge. Exact per-segment
		// attribution lags (see the experiment's note), so the assertion
		// checks the response exists rather than its precise segment.
		first := cell(t, rep, 0, 3)
		maxShare := 0.0
		for r := 1; r < 6; r++ {
			if sh := cell(t, rep, r, 3); sh > maxShare {
				maxShare = sh
			}
		}
		if first <= 0.15 && maxShare >= 0.2 {
			return
		}
		if attempt == 1 {
			if first > 0.15 {
				t.Errorf("GPU share before any surge = %g, want ~0", first)
			}
			if maxShare < 0.2 {
				t.Errorf("no GPGPU response to surges: max share %g", maxShare)
			}
			return
		}
	}
}

func TestFig15PolicyOrdering(t *testing.T) {
	skipShape(t)
	o := Options{Scale: 20, MB: 16, Workers: 15}
	// The W1 fcfs-vs-hls margin is ~5-20% run to run; one contended run
	// (other test packages sharing the host) can flip the strict
	// ordering, so allow a single retry before declaring the shape lost.
	for attempt := 0; ; attempt++ {
		rep := fig15(o)
		fcfs, hls := cell(t, rep, 0, 1), cell(t, rep, 0, 3)
		staticW2, hlsW2 := cell(t, rep, 1, 2), cell(t, rep, 1, 3)
		if fcfs < hls && staticW2 < hlsW2*1.05 {
			return
		}
		if attempt == 1 {
			if !(fcfs < hls) {
				t.Errorf("W1: fcfs %g should trail hls %g", fcfs, hls)
			}
			if !(staticW2 < hlsW2*1.05) {
				t.Errorf("W2: static %g should not beat hls %g", staticW2, hlsW2)
			}
			return
		}
	}
}

func TestMdbRatios(t *testing.T) {
	skipShape(t)
	rep := mdb(tiny())
	selectStar := cell(t, rep, 1, 2)
	twoCols := cell(t, rep, 0, 2)
	equi := cell(t, rep, 2, 2)
	if selectStar <= twoCols {
		t.Errorf("select-* should cost more than two columns: %g vs %g", selectStar, twoCols)
	}
	if equi >= twoCols {
		t.Errorf("equi-join should be far cheaper: %g vs %g", equi, twoCols)
	}
}
