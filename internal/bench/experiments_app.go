package bench

import (
	"fmt"
	"time"

	"saber/internal/engine"

	"saber/internal/baseline/columnar"
	"saber/internal/baseline/microbatch"
	"saber/internal/baseline/syncengine"
	"saber/internal/exec"
	"saber/internal/model"
	"saber/internal/query"
	"saber/internal/schema"
	"saber/internal/window"
	"saber/internal/workload"
)

func init() {
	register("fig01", "Spark-like micro-batch GROUP-BY vs window slide", fig01)
	register("tab01", "Table 1: datasets and query catalogue", tab01)
	register("fig07", "Application benchmarks: SABER (with GPGPU split) vs Esper-like", fig07)
	register("fig09", "CM1/CM2/SG1: SABER vs Spark-like micro-batching", fig09)
	register("mdb", "§6.2 θ-join comparison vs MonetDB-like column store", mdb)
}

// fig01 reproduces Fig. 1: a streaming GROUP-BY on a Spark-Streaming-like
// engine whose batch size is tied to the window slide.
func fig01(o Options) Report {
	o = o.WithDefaults()
	rep := Report{
		ID:     "fig01",
		Title:  "Micro-batch GROUP-BY, 5 s window, varying slide (10^6 tuples/s)",
		Header: []string{"slide-tuples", "throughput-Mt/s"},
		Notes:  []string{"expect: throughput collapses as the slide (== batch) shrinks"},
	}
	s := workload.SynSchema
	// The baseline pays its modelled costs at scale 1: they are orders of
	// magnitude above real compute, so measurements are already
	// paper-equivalent.
	cfg := microbatch.Defaults()
	cfg.Model = model.Default()
	const windowTuples = 4 << 20 // ≈5 s of ingest in the paper's setting
	for _, slide := range []int{1 << 16, 1 << 18, 1 << 20, 1 << 22} {
		g := workload.NewSynGen(11)
		g.Groups = 64
		data := g.Next(nil, slide*3)
		wb := windowTuples / slide
		if wb < 1 {
			wb = 1
		}
		e := microbatch.New(cfg, microbatch.Query{
			Schema:        s,
			GroupKey:      func(tu []byte) int64 { return int64(s.ReadInt32(tu, 2)) },
			AggArg:        func(tu []byte) float64 { return float64(s.ReadFloat32(tu, 1)) },
			BatchTuples:   slide,
			WindowBatches: wb,
		})
		start := time.Now()
		e.Process(data)
		e.Flush()
		rate := float64(e.TuplesIn) / time.Since(start).Seconds() / 1e6
		rep.Rows = append(rep.Rows, []string{fmt.Sprintf("%d", slide), f3(rate)})
	}
	return rep
}

// tab01 regenerates Table 1 as a live catalogue: every workload query is
// compiled and smoke-run.
func tab01(o Options) Report {
	rep := Report{
		ID:     "tab01",
		Title:  "Datasets and queries",
		Header: []string{"dataset", "query", "windows", "operators", "output"},
	}
	w := window.NewCount(w32KB, w32KB)
	entries := []struct {
		dataset string
		q       *query.Query
	}{
		{"Synthetic", workload.Proj(4, 1, w)},
		{"Synthetic", workload.Select(16, w)},
		{"Synthetic", workload.Agg(query.Avg, w)},
		{"Synthetic", workload.GroupBy([]query.AggFunc{query.Count, query.Sum}, 8, w)},
		{"Synthetic", workload.Join(1, window.NewCount(w4KB, w4KB))},
		{"Cluster Monitoring", workload.CM1()},
		{"Cluster Monitoring", workload.CM2()},
		{"Smart Grid", workload.SG1(1)},
		{"Smart Grid", workload.SG2(1)},
		{"Smart Grid", workload.SG3Join()},
		{"Linear Road", workload.LRB1()},
		{"Linear Road", workload.LRB2()},
		{"Linear Road", workload.LRB3()},
		{"Linear Road", workload.LRB4()},
	}
	for _, e := range entries {
		p, err := exec.Compile(e.q)
		status := "ok"
		if err != nil {
			status = "COMPILE ERROR: " + err.Error()
		}
		wins := e.q.Inputs[0].Window.String()
		ops := ""
		if p != nil {
			ops = p.Kind.String()
			if e.q.Where != nil {
				ops = "σ+" + ops
			}
			if len(e.q.GroupBy) > 0 {
				ops += "+γ"
			}
			if e.q.Having != nil {
				ops += "+having"
			}
			if e.q.Distinct {
				ops += "+distinct"
			}
		}
		out := status
		if err == nil {
			out = e.q.OutputSchema().String()
			if len(out) > 48 {
				out = out[:45] + "..."
			}
		}
		rep.Rows = append(rep.Rows, []string{e.dataset, e.q.Name, wins, ops, out})
	}
	return rep
}

// derive runs a query over pre-generated input (untimed) to produce the
// derived streams the chained application queries consume (SegSpeedStr,
// LocalLoadStr, GlobalLoadStr).
func derive(q *query.Query, streams [2][]byte, batchTuples int) []byte {
	p, err := exec.Compile(q)
	if err != nil {
		panic(err)
	}
	asm := exec.NewAssembler(p)
	var out []byte
	var pos [2]int
	prevTS := [2]int64{window.NoPrev, window.NoPrev}
	for {
		progressed := false
		var in [2]exec.Batch
		for i := 0; i < p.NumInputs(); i++ {
			s := p.InputSchema(i)
			tsz := s.TupleSize()
			total := len(streams[i]) / tsz
			n := batchTuples
			if pos[i]+n > total {
				n = total - pos[i]
			}
			data := streams[i][pos[i]*tsz : (pos[i]+n)*tsz]
			in[i] = exec.Batch{Data: data, Ctx: window.Context{
				FirstIndex:    int64(pos[i]),
				PrevTimestamp: prevTS[i],
			}}
			if n > 0 {
				prevTS[i] = s.Timestamp(data[(n-1)*tsz:])
				pos[i] += n
				progressed = true
			}
		}
		if !progressed {
			break
		}
		res := p.NewResult()
		if err := p.Process(in, res); err != nil {
			panic(err)
		}
		out = asm.Drain(res, out)
		p.ReleaseResult(res)
	}
	return asm.Flush(out)
}

// fig07 measures the application queries on SABER (hybrid, reporting the
// GPGPU's task share) against the Esper-like globally synchronised
// baseline.
func fig07(o Options) Report {
	o = o.WithDefaults()
	rep := Report{
		ID:     "fig07",
		Title:  "Application benchmarks (paper-equivalent 10^6 tuples/s)",
		Header: []string{"query", "saber-Mt/s", "gpu-share", "esper-Mt/s"},
		Notes: []string{
			"expect: SABER ≈ two orders of magnitude above the Esper-like baseline",
			"expect: CM2 leans on the GPGPU; SG1/LRB1 mostly CPU; SG2/LRB3 split",
		},
	}

	vol := (o.MB << 20) / 2
	cmStream := workload.NewCMGen(21).Next(nil, vol/workload.CMSchema.TupleSize())
	sgGen := workload.NewSGGen(22)
	sgStream := sgGen.Next(nil, vol/workload.SGSchema.TupleSize())
	lrbStream := workload.NewLRBGen(23, 500).Next(nil, vol/workload.LRBSchema.TupleSize())
	segStream := derive(workload.LRB1(), [2][]byte{lrbStream, nil}, 8192)

	// SG windows scaled (3600 → 120 time units) to bound the GPGPU's
	// non-incremental recompute on this host; see EXPERIMENTS.md.
	const sgScale = 30
	localStream := derive(workload.SG2(sgScale), [2][]byte{sgStream, nil}, 8192)
	globalStream := derive(workload.SG1(sgScale), [2][]byte{sgStream, nil}, 8192)

	cases := []struct {
		q       *query.Query
		streams [2][]byte
	}{
		{workload.CM1(), [2][]byte{cmStream, nil}},
		{workload.CM2(), [2][]byte{cmStream, nil}},
		{workload.SG1(sgScale), [2][]byte{sgStream, nil}},
		{workload.SG2(sgScale), [2][]byte{sgStream, nil}},
		{workload.SG3Join(), [2][]byte{localStream, globalStream}},
		{workload.LRB1(), [2][]byte{lrbStream, nil}},
		{workload.LRB2(), [2][]byte{segStream, nil}},
		{workload.LRB3(), [2][]byte{segStream, nil}},
		{workload.LRB4(), [2][]byte{segStream, nil}},
	}
	esperCfg := syncengine.Defaults() // scale-1 costs: already paper-equivalent
	for _, c := range cases {
		rs := run(runSpec{
			opts:     o,
			queries:  []*query.Query{c.q},
			mode:     modeHybrid,
			taskSize: defaultPhi,
			streams:  [][2][]byte{c.streams},
		})

		esper := 0.0
		if c.q.IsJoin() {
			// The Esper-like baseline runs single-input queries; joins are
			// reported for SABER only (as in the paper's figure, Esper's
			// join bars are vanishingly small).
		} else {
			se := syncengine.New(esperCfg)
			if err := se.Register(c.q); err != nil {
				panic(err)
			}
			data := c.streams[0]
			if len(data) > 2<<20 {
				data = data[:2<<20] // the baseline is slow by design
			}
			tsz := c.q.Inputs[0].Schema.TupleSize()
			data = data[:len(data)/tsz*tsz]
			start := time.Now()
			for off := 0; off < len(data); off += 64 * tsz {
				end := off + 64*tsz
				if end > len(data) {
					end = len(data)
				}
				se.Insert(data[off:end])
			}
			se.Flush()
			esper = float64(se.TuplesIn) / time.Since(start).Seconds() / 1e6
		}

		// SABER's tuple rate uses the query's own tuple size.
		tsz := float64(c.q.Inputs[0].Schema.TupleSize())
		saberMt := rs.paperGBps(o) * 1e9 / tsz / 1e6
		rep.Rows = append(rep.Rows, []string{
			c.q.Name, f1(saberMt), f2(rs.GPUShare), f3(esper),
		})
	}
	return rep
}

// fig09 compares SABER against the micro-batch baseline on CM1, CM2 and
// SG1 with tumbling windows (the paper uses 500 ms tumbling windows for
// comparability since Spark lacks count windows).
func fig09(o Options) Report {
	o = o.WithDefaults()
	rep := Report{
		ID:     "fig09",
		Title:  "SABER vs Spark-like micro-batching, tumbling windows (10^6 tuples/s)",
		Header: []string{"query", "saber-Mt/s", "spark-Mt/s"},
		Notes: []string{
			"expect: SABER several times faster; the gap is Spark's scheduling overhead",
			"the gap exceeds the paper's ~6x because reproduction-volume 500ms batches hold ~2K tuples",
			"where the paper's held millions; the per-batch overhead amortises accordingly",
		},
	}
	vol := (o.MB << 20) / 2
	cmStream := workload.NewCMGen(31).Next(nil, vol/workload.CMSchema.TupleSize())
	sgStream := workload.NewSGGen(32).Next(nil, vol/workload.SGSchema.TupleSize())

	mkTumbling := func(base *query.Query) *query.Query {
		q := *base
		q.Inputs = append([]query.Input(nil), base.Inputs...)
		q.Inputs[0].Window = window.NewTime(32, 32) // ≈500 ms of trace time
		q.Name = base.Name + "-tumbling"
		if err := q.Validate(); err != nil {
			panic(err)
		}
		return &q
	}

	type caseT struct {
		q      *query.Query
		stream []byte
		group  func(s *schema.Schema) func([]byte) int64
		arg    func(s *schema.Schema) func([]byte) float64
		filter func(s *schema.Schema) func([]byte) bool
	}
	cases := []caseT{
		{
			q: mkTumbling(workload.CM1()), stream: cmStream,
			group: func(s *schema.Schema) func([]byte) int64 {
				i := s.IndexOf("category")
				return func(tu []byte) int64 { return int64(s.ReadInt32(tu, i)) }
			},
			arg: func(s *schema.Schema) func([]byte) float64 {
				i := s.IndexOf("cpu")
				return func(tu []byte) float64 { return float64(s.ReadFloat32(tu, i)) }
			},
		},
		{
			q: mkTumbling(workload.CM2()), stream: cmStream,
			group: func(s *schema.Schema) func([]byte) int64 {
				i := s.IndexOf("jobId")
				return func(tu []byte) int64 { return s.ReadInt64(tu, i) }
			},
			arg: func(s *schema.Schema) func([]byte) float64 {
				i := s.IndexOf("cpu")
				return func(tu []byte) float64 { return float64(s.ReadFloat32(tu, i)) }
			},
			filter: func(s *schema.Schema) func([]byte) bool {
				i := s.IndexOf("eventType")
				return func(tu []byte) bool { return s.ReadInt32(tu, i) == 1 }
			},
		},
		{
			q: mkTumbling(workload.SG1(1)), stream: sgStream,
			group: func(s *schema.Schema) func([]byte) int64 {
				return func(tu []byte) int64 { return 0 }
			},
			arg: func(s *schema.Schema) func([]byte) float64 {
				i := s.IndexOf("value")
				return func(tu []byte) float64 { return float64(s.ReadFloat32(tu, i)) }
			},
		},
	}
	sparkCfg := microbatch.Defaults() // scale-1: paper-equivalent directly
	for _, c := range cases {
		rs := run(runSpec{
			opts:     o,
			queries:  []*query.Query{c.q},
			mode:     modeHybrid,
			taskSize: defaultPhi,
			streams:  [][2][]byte{{c.stream, nil}},
		})
		s := c.q.Inputs[0].Schema
		mq := microbatch.Query{
			Schema:        s,
			GroupKey:      c.group(s),
			AggArg:        c.arg(s),
			BatchTuples:   32 * 64, // one tumbling window per batch
			WindowBatches: 1,
		}
		if c.filter != nil {
			mq.Filter = c.filter(s)
		}
		sp := microbatch.New(sparkCfg, mq)
		data := c.stream
		if len(data) > 4<<20 {
			data = data[:4<<20]
		}
		start := time.Now()
		sp.Process(data)
		sp.Flush()
		sparkMt := float64(sp.TuplesIn) / time.Since(start).Seconds() / 1e6

		tsz := float64(s.TupleSize())
		saberMt := rs.paperGBps(o) * 1e9 / tsz / 1e6
		rep.Rows = append(rep.Rows, []string{c.q.Name, f1(saberMt), f3(sparkMt)})
	}
	return rep
}

// mdb reproduces the §6.2 MonetDB comparison: a θ-join over two tables at
// 1% selectivity, with two output columns and with select *, plus the
// equi-join case.
func mdb(o Options) Report {
	o = o.WithDefaults()
	rep := Report{
		ID:     "mdb",
		Title:  "θ-join vs MonetDB-like column store (relative runtimes)",
		Header: []string{"case", "saber-ms", "monetdb-ms", "ratio"},
		Notes: []string{
			"expect: two-column θ-join comparable; select-* slower on the column store; equi-join much faster there",
		},
	}
	// Tables sized so the quadratic θ-join stays in the milliseconds on
	// this host (the paper uses 1 MB tables on 16 cores).
	const rows = 4096
	mk := func(seed int64) []byte {
		g := workload.NewSynGen(seed)
		g.Groups = 100 // 1% selectivity on equality over a2
		return g.Next(nil, rows)
	}
	aRows, bRows := mk(41), mk(42)
	at := columnar.FromRows(workload.SynSchema, aRows)
	bt := columnar.FromRows(workload.SynSchema, bRows)
	a2 := workload.SynSchema.IndexOf("a2")

	// SABER: the θ-join over one tumbling window covering both tables,
	// at native speed — both engines measure raw wall time here.
	saberJoin := func() time.Duration {
		q := workload.Join(1, window.NewCount(rows, rows))
		eng := engine.New(engine.Config{
			CPUWorkers: o.Workers,
			TaskSize:   rows * 32,
			DisablePad: true,
		})
		h, err := eng.Register(q)
		if err != nil {
			panic(err)
		}
		if err := eng.Start(); err != nil {
			panic(err)
		}
		start := time.Now()
		h.InsertInto(0, aRows)
		h.InsertInto(1, bRows)
		eng.Drain()
		elapsed := time.Since(start)
		eng.Close()
		return elapsed
	}
	saberTime := saberJoin()

	timeIt := func(fn func()) time.Duration {
		start := time.Now()
		fn()
		return time.Since(start)
	}
	eq := func(x, y int32) bool { return x == y }
	theta2 := timeIt(func() { columnar.ThetaJoin(at, bt, a2, a2, eq, false, 4) })
	thetaAll := timeIt(func() { columnar.ThetaJoin(at, bt, a2, a2, eq, true, 4) })
	equi := timeIt(func() { columnar.HashEquiJoin(at, bt, a2, a2, 4) })

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	rep.Rows = append(rep.Rows,
		[]string{"θ-join (2 cols)", f2(ms(saberTime)), f2(ms(theta2)), f2(ms(theta2) / ms(saberTime))},
		[]string{"θ-join (select *)", f2(ms(saberTime)), f2(ms(thetaAll)), f2(ms(thetaAll) / ms(saberTime))},
		[]string{"equi-join", f2(ms(saberTime)), f2(ms(equi)), f2(ms(equi) / ms(saberTime))},
	)
	return rep
}
