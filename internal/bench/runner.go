package bench

import (
	"time"

	"saber/internal/engine"
	"saber/internal/gpu"
	"saber/internal/model"
	"saber/internal/obs"
	"saber/internal/query"
	"saber/internal/sched"
	"saber/internal/workload"
)

// Options tunes experiment volume and fidelity.
type Options struct {
	// Scale is the model time scale. Larger is slower and more faithful
	// on weak hosts: the calibrated model must dominate real compute for
	// the paper's performance surface to emerge. Default 20 (reported
	// throughputs are 1/20 of the paper's magnitudes; all ratios hold).
	Scale float64
	// MB is the data volume per measurement point (default 16).
	MB int
	// Workers is the CPU worker count (default 15, the paper's).
	Workers int
	// MaxQueueBytes overrides the overload experiment's admission budget
	// in bytes (0 keeps the experiment default). Other experiments
	// ignore it.
	MaxQueueBytes int64
	// ShedPolicy selects which shedding policy run ("oldest" or
	// "weighted") the overload experiment publishes as its gate; ""
	// keeps the default "oldest". Other experiments ignore it.
	ShedPolicy string
	// Metrics, when set, is shared by every engine the experiments build,
	// so a live admin endpoint (saber-bench -metrics-addr) sees the run in
	// progress. Counters accumulate across sequential runs; gauges and
	// mirror functions rebind to the most recent engine. Nil keeps each
	// run's registry private.
	Metrics *obs.Registry
}

// WithDefaults fills in defaults.
func (o Options) WithDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 20
	}
	if o.MB <= 0 {
		o.MB = 16
	}
	if o.Workers <= 0 {
		o.Workers = 15
	}
	return o
}

func (o Options) params() model.Params { return model.Default().Scaled(o.Scale) }

// mode selects the processors for a run.
type mode string

const (
	modeHybrid mode = "hybrid"
	modeCPU    mode = "cpu"
	modeGPU    mode = "gpu"
)

// runSpec describes one measured engine run.
type runSpec struct {
	opts     Options
	queries  []*query.Query
	mode     mode
	policy   string // "" = hls (or fcfs when single-class)
	static   []sched.Processor
	taskSize int
	// streams[q][side] supplies the pre-generated input per query input.
	streams [][2][]byte
	// chunk is the Insert granularity in bytes (default taskSize).
	chunk int
	// sample, when set, is called every sampleEvery during the run with
	// the elapsed time (Fig. 16's timeline).
	sample      func(elapsed time.Duration, handles []*engine.Handle)
	sampleEvery time.Duration
	// alpha overrides the matrix EWMA weight (Fig. 16 adaptation).
	alpha float64
	// switchThreshold overrides HLS's St (0 = engine default).
	switchThreshold int
	// sequential feeds each query's stream to completion before the
	// next query's (the paper's Fig. 15 workloads run "in sequence").
	sequential bool
	// inputBuf overrides the per-input ring capacity (0 = default);
	// sequential runs use a small buffer so backpressure actually phases
	// the queries.
	inputBuf int
}

// runResult is one run's measurements.
type runResult struct {
	GBps     float64
	MTuples  float64 // 10^6 tuples/s (32-byte reference tuples)
	Latency  time.Duration
	GPUShare float64
	Stats    []engine.Stats
}

// Paper-equivalent units: with model padding dominating wall time,
// measured throughput scales as 1/TimeScale, so measured × Scale is the
// scale-invariant, paper-comparable magnitude (and latency ÷ Scale).
func (r runResult) paperGBps(o Options) float64    { return r.GBps * o.Scale }
func (r runResult) paperMTuples(o Options) float64 { return r.MTuples * o.Scale }
func (r runResult) paperLatencyMS(o Options) float64 {
	return float64(r.Latency.Microseconds()) / 1000 / o.Scale
}

// run executes the spec: builds an engine, feeds every query its stream
// (interleaved across queries), drains, and measures goodput as inserted
// bytes over wall time.
func run(spec runSpec) runResult {
	o := spec.opts
	var dev *gpu.Device
	if spec.mode != modeCPU {
		dev = gpu.Open(gpu.Config{Model: o.params()})
		defer dev.Close()
	}
	workers := o.Workers
	if spec.mode == modeGPU {
		workers = -1
	}
	if spec.switchThreshold == 0 {
		// At benchmark volumes (tens to hundreds of tasks per run) the
		// engine's default threshold forces exploration so often that the
		// GPGPU worker stalls waiting for busy CPU workers to reset the
		// streak; 40 keeps exploration alive at ~2% of tasks.
		spec.switchThreshold = 40
	}
	cfg := engine.Config{
		CPUWorkers:      workers,
		GPU:             dev,
		TaskSize:        spec.taskSize,
		InputBufferSize: spec.inputBuf,
		Policy:          spec.policy,
		StaticAssign:    spec.static,
		Model:           o.params(),
		MatrixAlpha:     spec.alpha,
		SwitchThreshold: spec.switchThreshold,
		Metrics:         o.Metrics,
	}
	eng := engine.New(cfg)
	handles := make([]*engine.Handle, len(spec.queries))
	for i, q := range spec.queries {
		h, err := eng.Register(q)
		if err != nil {
			panic(err)
		}
		handles[i] = h
	}
	if err := eng.Start(); err != nil {
		panic(err)
	}

	chunk := spec.chunk
	if chunk <= 0 {
		chunk = spec.taskSize
	}
	if chunk <= 0 {
		chunk = 1 << 20
	}

	stop := make(chan struct{})
	if spec.sample != nil {
		go func() {
			t0 := time.Now()
			tick := time.NewTicker(spec.sampleEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					spec.sample(time.Since(t0), handles)
				}
			}
		}()
	}

	start := time.Now()
	total := int64(0)
	// Interleave chunk-sized inserts across queries and sides so
	// multi-query and join workloads progress together — or, with
	// sequential set, feed one query at a time.
	offsets := make([][2]int, len(spec.streams))
	feedOne := func(qi int) bool {
		progressed := false
		for side := 0; side < 2; side++ {
			data := spec.streams[qi][side]
			off := offsets[qi][side]
			if off >= len(data) {
				continue
			}
			tsz := spec.queries[qi].Inputs[side].Schema.TupleSize()
			c := chunk - chunk%tsz
			if c < tsz {
				c = tsz
			}
			end := off + c
			if end > len(data) {
				end = len(data)
			}
			end -= (end - off) % tsz
			handles[qi].InsertInto(side, data[off:end])
			offsets[qi][side] = end
			total += int64(end - off)
			progressed = true
		}
		return progressed
	}
	if spec.sequential {
		for qi := range spec.streams {
			for feedOne(qi) {
			}
		}
	}
	for {
		progressed := false
		for qi := range spec.streams {
			for side := 0; side < 2; side++ {
				data := spec.streams[qi][side]
				off := offsets[qi][side]
				if off >= len(data) {
					continue
				}
				tsz := spec.queries[qi].Inputs[side].Schema.TupleSize()
				c := chunk - chunk%tsz
				if c < tsz {
					c = tsz
				}
				end := off + c
				if end > len(data) {
					end = len(data)
				}
				end -= (end - off) % tsz
				handles[qi].InsertInto(side, data[off:end])
				offsets[qi][side] = end
				total += int64(end - off)
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	eng.Drain()
	elapsed := time.Since(start)
	close(stop)
	eng.Close()

	res := runResult{
		GBps:    float64(total) / elapsed.Seconds() / 1e9,
		MTuples: float64(total) / 32 / elapsed.Seconds() / 1e6,
	}
	var latSum time.Duration
	var gpuT, allT int64
	for _, h := range handles {
		st := h.Stats()
		res.Stats = append(res.Stats, st)
		latSum += st.AvgLatency
		gpuT += st.TasksGPU
		allT += st.TasksGPU + st.TasksCPU
	}
	if len(handles) > 0 {
		res.Latency = latSum / time.Duration(len(handles))
	}
	if allT > 0 {
		res.GPUShare = float64(gpuT) / float64(allT)
	}
	return res
}

// synStream pre-generates n bytes of synthetic tuples (32 B each).
func synStream(seed int64, groups int32, bytes int) []byte {
	g := workload.NewSynGen(seed)
	g.Groups = groups
	return g.Next(nil, bytes/32)
}
