package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"saber/internal/engine"
	"saber/internal/model"
	"saber/internal/obs"
	"saber/internal/window"
	"saber/internal/workload"
)

// The ckpt experiment prices epoch checkpointing: the same full-throttle
// selection workload runs with the checkpoint coordinator off and on
// (20ms epochs), interleaved to cancel host drift, and the report is the
// throughput delta plus the coordinator's own latency histogram. The
// claim under test is that cutting an epoch at the drain frontier is a
// brief barrier, not a stall: CI gates the twin (BENCH_ckpt.json) via
// tools/benchguard -ckpt, requiring checkpoint-on throughput within 5%
// of off with at least one epoch actually persisted.

func init() {
	register("ckpt", "Epoch checkpointing overhead: coordinator off vs on", ckptExperiment)
}

// ckptJSONPath is where the experiment drops its JSON twin; tests point
// it into a scratch directory.
var ckptJSONPath = "BENCH_ckpt.json"

const (
	ckptWorkers = 4
	ckptPhi     = 256 << 10
	// 50ms epochs: ~20 snapshots+fsyncs per second, an order of magnitude
	// hotter than any production period, yet spaced enough that fsyncs
	// don't queue behind each other on slow container disks (at 20ms the
	// persist p99 grows ~10x from IO queueing alone).
	ckptInterval = 50 * time.Millisecond
	ckptTrialDur = 1200 * time.Millisecond
	ckptTrials   = 3 // interleaved off/on pairs; best-of per arm
)

// ckptRun records one measured trial.
type ckptRun struct {
	Ckpt bool    `json:"ckpt"`
	GBps float64 `json:"gbps"`
	// Coordinator stats (checkpoint-on trials only).
	Epochs        int64   `json:"epochs,omitempty"`
	CkptBytes     int64   `json:"ckpt_bytes,omitempty"`
	Failures      int64   `json:"failures,omitempty"`
	SnapshotP50Ms float64 `json:"snapshot_p50_ms,omitempty"`
	SnapshotP99Ms float64 `json:"snapshot_p99_ms,omitempty"`
}

type ckptReport struct {
	IntervalMs float64 `json:"interval_ms"`
	Trials     int     `json:"trials"`
	// Best-of-trials throughput per arm (informational).
	OffGBps float64 `json:"off_gbps"`
	OnGBps  float64 `json:"on_gbps"`
	// OverheadPct is the acceptance ratio the CI gate reads (≤5 with
	// Epochs ≥ 1): 100×(1 − mean over pairs of onᵢ/offᵢ). Each on run is
	// compared against the off run immediately before it, so slow host
	// drift (thermal, noisy neighbours) cancels instead of masquerading
	// as checkpoint cost — cross-pair comparisons swing several percent
	// on shared runners while paired ratios stay tight.
	OverheadPct float64 `json:"overhead_pct"`
	// Totals across every checkpoint-on trial.
	Epochs        int64   `json:"epochs"`
	CkptBytes     int64   `json:"ckpt_bytes"`
	SnapshotP50Ms float64 `json:"snapshot_p50_ms"`
	SnapshotP99Ms float64 `json:"snapshot_p99_ms"`

	Runs []ckptRun `json:"runs"`
	// Metrics embeds the last checkpoint-on run's snapshot (saber.ckpt.*
	// included) so the JSON is self-describing.
	Metrics obs.Snapshot `json:"metrics"`
}

// ckptMeasure runs one full-throttle trial. dir == "" disables the
// coordinator; otherwise epochs are cut every interval into dir.
func ckptMeasure(dir string, interval time.Duration) (ckptRun, obs.Snapshot) {
	if dir == "" {
		interval = -1 // no dir: manual-only, i.e. off
	}
	eng := engine.New(engine.Config{
		CPUWorkers: ckptWorkers,
		TaskSize:   ckptPhi,
		DisablePad: true, // native speed: real compute, honest overhead
		Model:      model.Default(),

		CheckpointDir:      dir,
		CheckpointInterval: interval,
	})
	h, err := eng.Register(workload.Select(2, window.NewCount(1024, 1024)))
	if err != nil {
		panic(err)
	}
	if err := eng.Start(); err != nil {
		panic(err)
	}

	// One 16 MiB block fed cyclically at full throttle: the overhead
	// surface depends on rates, not tuple novelty (same trick as the
	// adaptive capacity probe).
	block := synStream(11, 64, 16<<20)
	start := time.Now()
	total := int64(0)
	for time.Since(start) < ckptTrialDur {
		h.Insert(block[:4<<20])
		total += 4 << 20
	}
	eng.Drain()
	elapsed := time.Since(start)
	snap := eng.Metrics().Snapshot()
	eng.Close()

	run := ckptRun{
		Ckpt: dir != "",
		GBps: float64(total) / elapsed.Seconds() / 1e9,
	}
	if dir != "" {
		run.Epochs = snap.Counters["saber.ckpt.epochs"]
		run.CkptBytes = snap.Counters["saber.ckpt.bytes"]
		run.Failures = snap.Counters["saber.ckpt.failures"]
		hist := snap.Histograms["saber.ckpt.snapshot.ns"]
		run.SnapshotP50Ms = round2(float64(hist.Quantile(0.50)) / 1e6)
		run.SnapshotP99Ms = round2(float64(hist.Quantile(0.99)) / 1e6)
	}
	return run, snap
}

func ckptExperiment(o Options) Report {
	o = o.WithDefaults()
	rep := Report{
		ID:     "ckpt",
		Title:  "Epoch checkpointing overhead: coordinator off vs on",
		Header: []string{"config", "GB/s", "epochs", "ckpt KiB", "snapshot p50 ms", "snapshot p99 ms"},
	}

	js := ckptReport{
		IntervalMs: float64(ckptInterval.Milliseconds()),
		Trials:     ckptTrials,
	}
	var lastOn obs.Snapshot
	ratioSum := 0.0
	for i := 0; i < ckptTrials; i++ {
		off, _ := ckptMeasure("", 0)
		js.Runs = append(js.Runs, off)
		if off.GBps > js.OffGBps {
			js.OffGBps = off.GBps
		}

		dir, err := os.MkdirTemp("", "saber-bench-ckpt-")
		if err != nil {
			rep.Notes = append(rep.Notes, "could not create checkpoint dir: "+err.Error())
			return rep
		}
		on, snap := ckptMeasure(dir, ckptInterval)
		os.RemoveAll(dir)
		js.Runs = append(js.Runs, on)
		lastOn = snap
		if on.GBps > js.OnGBps {
			js.OnGBps = on.GBps
			js.SnapshotP50Ms = on.SnapshotP50Ms
			js.SnapshotP99Ms = on.SnapshotP99Ms
		}
		js.Epochs += on.Epochs
		js.CkptBytes += on.CkptBytes
		ratioSum += on.GBps / off.GBps
	}
	js.OverheadPct = round2((1 - ratioSum/ckptTrials) * 100)
	js.Metrics = lastOn

	for _, r := range js.Runs {
		cfg := "checkpoint off"
		row := []string{cfg, f2(r.GBps), "-", "-", "-", "-"}
		if r.Ckpt {
			row = []string{"checkpoint on", f2(r.GBps), fmt.Sprint(r.Epochs),
				f2(float64(r.CkptBytes) / (1 << 10)), f2(r.SnapshotP50Ms), f2(r.SnapshotP99Ms)}
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("paired overhead %.2f%% (mean of %d on/off pairs, gate ≤5%%); best-of per arm: off %.2f GB/s, on %.2f GB/s",
			js.OverheadPct, ckptTrials, js.OffGBps, js.OnGBps),
		fmt.Sprintf("%d epochs persisted (%0.1f KiB total), %v epoch period, ϕ %d KiB, %d workers, native speed",
			js.Epochs, float64(js.CkptBytes)/(1<<10), ckptInterval, ckptPhi>>10, ckptWorkers))

	if buf, err := json.MarshalIndent(js, "", "  "); err == nil {
		if werr := os.WriteFile(ckptJSONPath, append(buf, '\n'), 0o644); werr != nil {
			rep.Notes = append(rep.Notes, "could not write "+ckptJSONPath+": "+werr.Error())
		} else {
			rep.Notes = append(rep.Notes, "machine-readable twin written to "+ckptJSONPath)
		}
	}
	return rep
}
