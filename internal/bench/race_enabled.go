//go:build race

package bench

// raceEnabled reports whether the binary was built with the race
// detector, whose instrumentation slows compute enough to invalidate
// timing-shape assertions.
const raceEnabled = true
