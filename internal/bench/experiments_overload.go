package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"saber/internal/engine"
	"saber/internal/model"
	"saber/internal/obs"
	"saber/internal/overload"
	"saber/internal/window"
	"saber/internal/workload"
)

// The overload experiment measures graceful degradation: the same
// 2×-capacity feed runs against plain blocking backpressure and against
// the two shedding rungs, with a tight admission budget. Blocking keeps
// every tuple but lets the queue — and therefore the tail latency —
// grow to the ring; the shedding policies hold the queue at the budget,
// keep goodput at capacity and keep the tail inside the SLO at the cost
// of an exactly-accounted shed fraction. Alongside the text report the
// experiment writes a machine-readable BENCH_overload.json; CI gates on
// it via tools/benchguard -overload (oldest-policy goodput ≥80% of
// capacity, a real shed fraction, p99 within SLO, zero stalls).

func init() {
	register("overload", "Overload protection: goodput and tail latency at 2x capacity under blocking vs shedding", overloadExp)
}

// overloadJSONPath is where the experiment drops its JSON twin; tests
// point it into a scratch directory.
var overloadJSONPath = "BENCH_overload.json"

// Durations are vars so the smoke test can shrink them.
var (
	overloadCapacityProbe = 1200 * time.Millisecond
	overloadDuration      = 3 * time.Second
)

const (
	overloadWorkers = 2
	overloadPhi     = 64 << 10
	// overloadRing dwarfs the budget so the budget, not ring capacity, is
	// what admission enforces — and so the blocking baseline has room to
	// build the queue whose tail latency the shed policies are judged
	// against.
	overloadRing   = 64 << 20
	overloadBudget = 1 << 20
	// overloadMaxWait paces shed actuations: a blocked Insert waits this
	// long for the queue to drop below budget before the policy fires.
	overloadMaxWait  = time.Millisecond
	overloadFeedTick = time.Millisecond
	overloadOffered  = 2.0 // offered load as a multiple of capacity
	overloadSLO      = 25 * time.Millisecond
)

type overloadRun struct {
	Policy      string  `json:"policy"`
	OfferedGBps float64 `json:"offered_gbps"` // bytes the feed handed to Insert
	GoodputGBps float64 `json:"goodput_gbps"` // admitted minus shed, per wall second
	// GoodputVsCapacityPct is the gate ratio: goodput as a percentage of
	// the blocking baseline's goodput at the same offered load.
	GoodputVsCapacityPct float64 `json:"goodput_vs_capacity_pct"`
	// ShedFrac is shed bytes over offered bytes (exact, from the
	// admission ledger).
	ShedFrac   float64 `json:"shed_frac"`
	P99Ms      float64 `json:"p99_ms"`
	MeetsSLO   bool    `json:"meets_slo"`
	AdmitWaits int64   `json:"admit_waits"`
	Stalls     int64   `json:"stalls"`
}

type overloadReport struct {
	// CapacityGBps is the blocking baseline's goodput under the same
	// offered load — the lossless reference every degradation ratio is
	// normalized against. (A separate saturation probe only sizes the
	// paced feed; short probes under-read steady state, so the paired
	// baseline is the honest denominator.)
	CapacityGBps float64 `json:"capacity_gbps"`
	SLOMs        float64 `json:"slo_ms"`
	OfferedX     float64 `json:"offered_x"` // offered multiple of capacity
	BudgetBytes  int64   `json:"budget_bytes"`
	// Runs holds the blocking baseline and the two shedding policies.
	Runs []overloadRun `json:"runs"`
	// Gate duplicates the "oldest" run the CI gate reads.
	Gate overloadRun `json:"gate"`
	// Metrics embeds the oldest-policy run's final snapshot
	// (saber.overload.* included) so the JSON is self-describing.
	Metrics obs.Snapshot `json:"metrics"`
}

// overloadEngine builds one CPU-only engine with the experiment's shape.
func overloadEngine(ov *overload.Config) (*engine.Engine, *engine.Handle) {
	eng := engine.New(engine.Config{
		CPUWorkers:      overloadWorkers,
		TaskSize:        overloadPhi,
		InputBufferSize: overloadRing,
		Model:           model.Default(), // unscaled: the SLO is a real-time target
		Overload:        ov,
	})
	h, err := eng.Register(workload.Select(2, window.NewCount(1024, 1024)))
	if err != nil {
		panic(err)
	}
	if err := eng.Start(); err != nil {
		panic(err)
	}
	return eng, h
}

// overloadCapacity measures the shape's saturated goodput with plain
// blocking admission — the denominator for every degradation ratio.
func overloadCapacity() float64 {
	eng, h := overloadEngine(nil)
	block := synStream(11, 64, 16<<20)
	start := time.Now()
	total := int64(0)
	for time.Since(start) < overloadCapacityProbe {
		h.Insert(block[:2<<20])
		total += 2 << 20
	}
	eng.Drain()
	elapsed := time.Since(start)
	eng.Close()
	return float64(total) / elapsed.Seconds() / 1e9
}

// overloadMeasure drives the paced feed (rate from the saturation
// probe) against one policy (ov nil = blocking baseline) and measures
// offered rate, goodput, shed fraction and tail p99 over the whole run
// including the drain.
func overloadMeasure(paceGBps float64, ov *overload.Config) (overloadRun, obs.Snapshot) {
	eng, h := overloadEngine(ov)
	reg := eng.Metrics()

	block := synStream(11, 64, 16<<20)
	rate := workload.SteadyRate(overloadOffered * paceGBps * 1e9)
	counts := workload.PaceTuples(rate, workload.SynTupleSize, overloadFeedTick, overloadDuration)

	start := time.Now()
	offered := int64(0)
	off := 0
	for i, n := range counts {
		if wait := time.Duration(i)*overloadFeedTick - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		remaining := n * workload.SynTupleSize
		for remaining > 0 {
			c := remaining
			if off+c > len(block) {
				c = len(block) - off
			}
			h.Insert(block[off : off+c])
			offered += int64(c)
			off = (off + c) % len(block)
			remaining -= c
		}
	}
	eng.Drain()
	elapsed := time.Since(start)
	snap := reg.Snapshot()
	st := h.Stats()
	eng.Close()

	shedBytes := st.TuplesShed * workload.SynTupleSize
	droppedBytes := st.TuplesShedAdmit * workload.SynTupleSize
	e2e := snap.Histograms["saber.trace.e2e"]
	ing := snap.Histograms["saber.trace.ingest"]
	run := overloadRun{
		OfferedGBps: float64(offered) / elapsed.Seconds() / 1e9,
		GoodputGBps: float64(st.BytesIn-shedBytes) / elapsed.Seconds() / 1e9,
		ShedFrac:    float64(shedBytes+droppedBytes) / float64(offered),
		P99Ms:       float64(e2e.Quantile(0.99)+ing.Quantile(0.99)) / 1e6,
		AdmitWaits:  st.AdmitWaits,
		Stalls:      snap.Counters["saber.overload.stalls"],
	}
	run.MeetsSLO = run.P99Ms <= float64(overloadSLO)/1e6
	return run, snap
}

func overloadExp(o Options) Report {
	rep := Report{
		ID:     "overload",
		Title:  "Overload protection: goodput and tail latency at 2x capacity under blocking vs shedding",
		Header: []string{"policy", "offered GB/s", "goodput GB/s", "vs capacity %", "shed frac", "p99 ms", "meets SLO", "stalls"},
	}

	// -max-queue-bytes / -shed-policy let a run override the budget and
	// which shedding run the gate publishes; defaults reproduce CI.
	budget := int64(overloadBudget)
	if o.MaxQueueBytes > 0 {
		budget = o.MaxQueueBytes
	}
	gatePolicy := "oldest"
	if p, err := overload.ParsePolicy(o.ShedPolicy); err == nil && p != overload.ShedNone {
		gatePolicy = p.String()
	}

	pace := overloadCapacity()
	js := overloadReport{
		SLOMs:       float64(overloadSLO.Milliseconds()),
		OfferedX:    overloadOffered,
		BudgetBytes: budget,
	}

	policies := []struct {
		name string
		cfg  *overload.Config
	}{
		{"blocking", nil},
		{"oldest", &overload.Config{MaxQueueBytes: budget, Policy: overload.ShedOldest, MaxWait: overloadMaxWait}},
		{"weighted", &overload.Config{MaxQueueBytes: budget, Policy: overload.ShedWeighted, MaxWait: overloadMaxWait, Seed: 11}},
	}
	var snaps []obs.Snapshot
	for _, p := range policies {
		run, snap := overloadMeasure(pace, p.cfg)
		run.Policy = p.name
		js.Runs = append(js.Runs, run)
		snaps = append(snaps, snap)
	}
	// Normalize against the blocking baseline's goodput: it processes
	// every byte at whatever rate the pipeline sustains, so it IS the
	// shape's capacity under this offered load.
	capacity := js.Runs[0].GoodputGBps
	js.CapacityGBps = round2(capacity)
	for i := range js.Runs {
		if capacity > 0 {
			js.Runs[i].GoodputVsCapacityPct = round2(js.Runs[i].GoodputGBps / capacity * 100)
		}
		if js.Runs[i].Policy == gatePolicy {
			js.Gate = js.Runs[i]
			js.Metrics = snaps[i]
		}
		run := js.Runs[i]
		rep.Rows = append(rep.Rows, []string{
			run.Policy, f2(run.OfferedGBps), f2(run.GoodputGBps), f2(run.GoodputVsCapacityPct),
			fmt.Sprintf("%.3f", run.ShedFrac), f2(run.P99Ms), fmt.Sprint(run.MeetsSLO), fmt.Sprint(run.Stalls)})
	}

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("capacity %.2f GB/s (blocking baseline goodput); offered %.0fx the probe rate over %v, budget %d KiB, ϕ %d KiB, %d workers; gate reads the %q run",
			capacity, overloadOffered, overloadDuration, budget>>10, overloadPhi>>10, overloadWorkers, gatePolicy),
		fmt.Sprintf("SLO %v on tail p99 (e2e + ingest batching); shed fraction is exact from the admission ledger", overloadSLO),
		"sheds are paced one MaxWait apart, so overload beyond the shed rate backpressures the source instead of free-falling")

	if buf, err := json.MarshalIndent(js, "", "  "); err == nil {
		if werr := os.WriteFile(overloadJSONPath, append(buf, '\n'), 0o644); werr != nil {
			rep.Notes = append(rep.Notes, "could not write "+overloadJSONPath+": "+werr.Error())
		} else {
			rep.Notes = append(rep.Notes, "machine-readable twin written to "+overloadJSONPath)
		}
	}
	return rep
}
