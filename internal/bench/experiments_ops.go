package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime/debug"
	"sort"
	"time"

	"saber/internal/engine"
	"saber/internal/exec"
	"saber/internal/expr"
	"saber/internal/model"
	"saber/internal/obs"
	"saber/internal/query"
	"saber/internal/ringbuf"
	"saber/internal/schema"
	"saber/internal/window"
	"saber/internal/workload"
)

// The operators experiment measures the CPU batch operator functions at
// native speed — no model padding, no engine — comparing the per-tuple
// scalar reference against the vectorized batch kernels over one pinned
// query-task batch per operator. Alongside the text report it writes a
// machine-readable BENCH_operators.json for CI and regression tracking.

func init() {
	register("operators", "CPU operator kernels: scalar vs vectorized (native speed)", operators)
}

// operatorsJSONPath is where the experiment drops its JSON twin; tests
// point it into a scratch directory.
var operatorsJSONPath = "BENCH_operators.json"

// opTrials is the best-of count per measurement. On a loaded or
// single-core host a noisy neighbour can depress several consecutive
// trials at once, so the count errs high.
const opTrials = 7

type opResult struct {
	Name           string  `json:"name"`
	ScalarMtps     float64 `json:"scalar_mtps"`
	VectorizedMtps float64 `json:"vectorized_mtps"`
	Speedup        float64 `json:"speedup"`
	// ColumnarMtps re-measures the vectorized kernel over a batch that
	// carries pre-shredded column segments (exec.Batch.Cols), the layout
	// the engine's columnar ring hands every task; ColumnarVsRow is the
	// ratio against the row-gather vectorized rate. CI gates columnar ≥
	// row on every operator (tools/benchguard). Operators whose kernels
	// read rows regardless (joins) sit at ~1.0.
	ColumnarMtps  float64 `json:"columnar_mtps"`
	ColumnarVsRow float64 `json:"columnar_vs_row"`
	// MetricsOnMtps re-measures the vectorized kernel with the engine's
	// full per-task observability bundle (counters, latency histogram,
	// lifecycle trace) applied once per batch; MetricsOverheadPct is the
	// throughput cost in percent. One 4096-tuple bench batch stands in
	// for a 1 MiB engine task, so this overstates the engine's actual
	// per-byte overhead by ~8x — a conservative gate.
	MetricsOnMtps      float64 `json:"metrics_on_mtps"`
	MetricsOverheadPct float64 `json:"metrics_overhead_pct"`
}

// ingestResult is the end-to-end ingest-bandwidth comparison: the same
// stream through a full engine (dispatch → tasks → workers → assembly,
// no model padding) on the row-only seed layout versus the default
// columnar ring. GatherElided/GatherCopied count the columnar run's
// zero-copy column views and wrap-fallback copies; together they equal
// the number of per-task row gathers the row layout would have done.
type ingestResult struct {
	Query         string  `json:"query"`
	Tuples        int     `json:"tuples"`
	RowMtps       float64 `json:"row_mtps"`
	ColumnarMtps  float64 `json:"columnar_mtps"`
	ColumnarVsRow float64 `json:"columnar_vs_row"`
	GatherElided  int64   `json:"gather_elided"`
	GatherCopied  int64   `json:"gather_copied"`
}

type opsReport struct {
	TupleBytes  int        `json:"tuple_bytes"`
	BatchTuples int        `json:"batch_tuples"`
	Operators   []opResult `json:"operators"`
	// IngestBandwidth is the end-to-end row vs columnar engine run.
	IngestBandwidth *ingestResult `json:"ingest_bandwidth"`
	// MetricsOverheadPct is the geometric-mean metrics-on overhead across
	// operators; CI fails the build when it exceeds 3 (tools/benchguard).
	MetricsOverheadPct float64 `json:"metrics_overhead_pct"`
	// Metrics embeds the final observability snapshot of the instrumented
	// runs, so a BENCH_*.json is self-describing about what was measured.
	Metrics obs.Snapshot `json:"metrics"`
}

// shredCols builds the per-field column segments for one pinned batch
// through the same ColumnStore the engine's ingest path uses, returning
// zero-copy views over the whole batch. Shredding happens once, outside
// the timed loop — in the engine it rides the ingest memcpy, and the
// ingest-bandwidth section measures that end to end.
func shredCols(s *schema.Schema, data []byte) [][]byte {
	offs := make([]int, s.NumFields())
	widths := make([]int, s.NumFields())
	for f := range offs {
		offs[f] = s.Offset(f)
		widths[f] = s.Field(f).Type.Size()
	}
	n := len(data) / s.TupleSize()
	cs := ringbuf.MustNewColumnStore(offs, widths, nil, s.TupleSize(), n)
	cs.Append(data)
	views, ok := cs.Views(nil, 0, int64(n))
	if !ok {
		panic("operators: fresh column store wrapped")
	}
	return views
}

// measureOp processes the same batch repeatedly through one compiled plan
// and returns millions of input tuples per second. columnar attaches
// pre-shredded column segments to the batches, the layout engine tasks
// carry by default.
func measureOp(q *query.Query, streams [2][]byte, vec, columnar bool) float64 {
	p, err := exec.Compile(q)
	if err != nil {
		panic(fmt.Sprintf("operators: compile %s: %v", q.Name, err))
	}
	p.SetVectorized(vec)
	var batches [2]exec.Batch
	tuples := 0
	for i := 0; i < p.NumInputs(); i++ {
		batches[i] = exec.Batch{Data: streams[i], Ctx: window.Context{PrevTimestamp: window.NoPrev}}
		if columnar && len(streams[i]) > 0 {
			batches[i].Cols = shredCols(p.InputSchema(i), streams[i])
		}
		tuples += len(streams[i]) / p.InputSchema(i).TupleSize()
	}
	iter := func() {
		res := p.NewResult()
		if err := p.Process(batches, res); err != nil {
			panic(err)
		}
		p.ReleaseResult(res)
	}
	iter() // warm the pools and the branch predictor
	// Start each measurement with a fully swept heap: earlier tests in
	// the same process can leave tens of MiB of garbage whose lazy sweep
	// debt is paid by the measurement loop's allocations, taxing the
	// allocation-heavier vectorized path disproportionately (observed as
	// a ~15% speedup-ratio depression on single-core hosts).
	debug.FreeOSMemory()
	// Best-of-trials: scheduler contention (e.g. other test packages
	// running in parallel) only ever slows a trial down, so the fastest
	// trial is the robust estimate of the kernel's actual rate.
	const trials = opTrials
	const minWall = 8 * time.Millisecond
	best := 0.0
	for t := 0; t < trials; t++ {
		n := 0
		start := time.Now()
		var elapsed time.Duration
		for {
			iter()
			n++
			if elapsed = time.Since(start); elapsed >= minWall && n >= 2 {
				break
			}
		}
		if r := float64(tuples) * float64(n) / elapsed.Seconds() / 1e6; r > best {
			best = r
		}
	}
	return best
}

// measureOpColPair measures the vectorized kernel with row-gather
// batches and with pre-shredded column batches, interleaving the trials
// (as in measureOpPair) so the columnar/row ratio is taken within one
// host-speed regime — on a shared host the absolute rate drifts far more
// between two measurement blocks than the layouts differ.
func measureOpColPair(q *query.Query, streams [2][]byte) (row, col float64) {
	p, err := exec.Compile(q)
	if err != nil {
		panic(fmt.Sprintf("operators: compile %s: %v", q.Name, err))
	}
	p.SetVectorized(true)
	var rowB, colB [2]exec.Batch
	tuples := 0
	for i := 0; i < p.NumInputs(); i++ {
		rowB[i] = exec.Batch{Data: streams[i], Ctx: window.Context{PrevTimestamp: window.NoPrev}}
		colB[i] = rowB[i]
		if len(streams[i]) > 0 {
			colB[i].Cols = shredCols(p.InputSchema(i), streams[i])
		}
		tuples += len(streams[i]) / p.InputSchema(i).TupleSize()
	}
	iter := func(b [2]exec.Batch) {
		res := p.NewResult()
		if err := p.Process(b, res); err != nil {
			panic(err)
		}
		p.ReleaseResult(res)
	}
	iter(rowB)
	iter(colB)
	debug.FreeOSMemory()
	const minWall = 8 * time.Millisecond
	trial := func(b [2]exec.Batch) float64 {
		n := 0
		start := time.Now()
		var elapsed time.Duration
		for {
			iter(b)
			n++
			if elapsed = time.Since(start); elapsed >= minWall && n >= 2 {
				break
			}
		}
		return float64(tuples) * float64(n) / elapsed.Seconds() / 1e6
	}
	for t := 0; t < opTrials; t++ {
		if r := trial(rowB); r > row {
			row = r
		}
		if c := trial(colB); c > col {
			col = c
		}
	}
	return row, col
}

// opInstr carries the observability instruments the instrumented
// measurement applies per batch — the same bundle the engine applies per
// task (internal/engine/metrics.go): counters, the e2e latency
// histogram, and a full lifecycle trace through the tracer's ring.
type opInstr struct {
	tracer       *obs.Tracer
	bytesIn      *obs.Counter
	bytesOut     *obs.Counter
	tuplesOut    *obs.Counter
	tasksCreated *obs.Counter
	tasksCPU     *obs.Counter
	latencyNs    *obs.Counter
	latencyN     *obs.Counter
	seq          int64
}

func newOpInstr(reg *obs.Registry, op string) *opInstr {
	n := func(suffix string) *obs.Counter {
		return reg.Counter("saber.bench.ops." + op + "." + suffix)
	}
	return &opInstr{
		tracer:       obs.NewTracer(reg, 0),
		bytesIn:      n("bytes.in"),
		bytesOut:     n("bytes.out"),
		tuplesOut:    n("tuples.out"),
		tasksCreated: n("tasks.created"),
		tasksCPU:     n("tasks.cpu"),
		latencyNs:    n("latency.sum.ns"),
		latencyN:     n("latency.count"),
	}
}

// measureOpPair measures the vectorized kernel bare and with the
// engine's per-task observability bundle applied once per batch: ingest
// counters and trace begin, queue/exec stage stamps, delivery mark,
// output counters, latency accumulation and trace finish (histogram
// observes + postmortem ring write). Bare and instrumented trials are
// interleaved so each pair runs in the same host-speed regime — on a
// shared or frequency-scaled host the absolute rate drifts far more
// between two measurement blocks than the instrumentation costs, and a
// paired best-of keeps that drift out of the overhead ratio. Returns
// millions of input tuples/s for both variants, plus the overhead in
// percent as the median over the paired trials — the median discards
// both a noise spike in an instrumented half (which would inflate a
// max-based ratio) and one in a bare half (which would deflate it).
func measureOpPair(q *query.Query, streams [2][]byte, in *opInstr) (bare, instr, overheadPct float64) {
	p, err := exec.Compile(q)
	if err != nil {
		panic(fmt.Sprintf("operators: compile %s: %v", q.Name, err))
	}
	p.SetVectorized(true)
	var batches [2]exec.Batch
	tuples, inBytes := 0, 0
	for i := 0; i < p.NumInputs(); i++ {
		batches[i] = exec.Batch{Data: streams[i], Ctx: window.Context{PrevTimestamp: window.NoPrev}}
		tuples += len(streams[i]) / p.InputSchema(i).TupleSize()
		inBytes += len(streams[i])
	}
	osz := p.OutputSchema().TupleSize()
	iterBare := func() {
		res := p.NewResult()
		if err := p.Process(batches, res); err != nil {
			panic(err)
		}
		p.ReleaseResult(res)
	}
	iterInstr := func() {
		created := time.Now().UnixNano()
		in.seq++
		tr := in.tracer.Begin(0, in.seq, created)
		in.bytesIn.Add(int64(inBytes))
		in.tasksCreated.Inc()
		execStart := time.Now()
		tr.SetStage(obs.StageQueue, time.Duration(execStart.UnixNano()-created))
		res := p.NewResult()
		if err := p.Process(batches, res); err != nil {
			panic(err)
		}
		tr.SetProc(obs.ProcCPU)
		tr.SetStage(obs.StageExecCPU, time.Since(execStart))
		in.tasksCPU.Inc()
		in.bytesOut.Add(int64(len(res.Stream)))
		in.tuplesOut.Add(int64(len(res.Stream) / osz))
		p.ReleaseResult(res)
		now := time.Now().UnixNano()
		tr.MarkDelivered(now)
		in.latencyNs.Add(now - created)
		in.latencyN.Inc()
		in.tracer.Finish(tr, now, false)
	}
	iterBare()
	iterInstr()
	debug.FreeOSMemory() // as in measureOp: keep sweep debt out of the trials
	const minWall = 8 * time.Millisecond
	trial := func(iter func()) float64 {
		n := 0
		start := time.Now()
		var elapsed time.Duration
		for {
			iter()
			n++
			if elapsed = time.Since(start); elapsed >= minWall && n >= 2 {
				break
			}
		}
		return float64(tuples) * float64(n) / elapsed.Seconds() / 1e6
	}
	overs := make([]float64, 0, opTrials)
	for t := 0; t < opTrials; t++ {
		b := trial(iterBare)
		m := trial(iterInstr)
		if b > bare {
			bare = b
		}
		if m > instr {
			instr = m
		}
		overs = append(overs, (b-m)/b*100)
	}
	sort.Float64s(overs)
	overheadPct = math.Max(0, overs[len(overs)/2])
	return bare, instr, overheadPct
}

// ingestBandwidth runs the same aggregation stream end-to-end through
// two engines — row-only layout vs the default columnar ring — at native
// speed (no model padding) and reports Mtuples/s for each plus the
// columnar run's gather telemetry. This is the tentpole number: the
// whole ingest → dispatch → operator path with and without per-task row
// gathers. The workload is a sliding sum because aggregation is where
// the layout shows up end to end: the kernel touches one 4-byte field
// per 32-byte tuple, so projection pushdown shreds exactly that field at
// ingest (1/8th of the stream bytes) and every task reads a dense 4-byte
// column instead of walking 32-byte rows. An identity-output selection
// would re-read the full rows for its output copy either way, shreds
// nothing, and measures only layout-neutral dispatch.
func ingestBandwidth(o Options) ingestResult {
	q := workload.Agg(query.Sum, window.NewCount(512, 64))
	vol := o.MB << 20
	stream := synStream(44, 64, vol)
	tuples := len(stream) / workload.SynTupleSize

	runOnce := func(rowLayout bool) (mtps float64, elided, copied int64) {
		reg := obs.NewRegistry()
		eng := engine.New(engine.Config{
			CPUWorkers: o.Workers,
			TaskSize:   256 << 10,
			DisablePad: true,
			Model:      model.Default(),
			Metrics:    reg,
			RowLayout:  rowLayout,
		})
		h, err := eng.Register(q)
		if err != nil {
			panic(fmt.Sprintf("operators: register ingest query: %v", err))
		}
		h.OnResult(func([]byte) {})
		if err := eng.Start(); err != nil {
			panic(err)
		}
		const chunk = 64 << 10
		start := time.Now()
		for off := 0; off < len(stream); off += chunk {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			h.Insert(stream[off:end])
		}
		eng.Drain()
		elapsed := time.Since(start)
		eng.Close()
		snap := reg.Snapshot()
		return float64(tuples) / elapsed.Seconds() / 1e6,
			int64(snap.Gauges["saber.ring.q0.in0.gather.elided"]),
			int64(snap.Gauges["saber.ring.q0.in0.gather.copied"])
	}

	res := ingestResult{Query: q.Name, Tuples: tuples}
	// Best-of-trials, interleaved so both layouts see the same host-speed
	// regime (as in measureOpPair).
	for t := 0; t < 3; t++ {
		if r, _, _ := runOnce(true); r > res.RowMtps {
			res.RowMtps = r
		}
		c, elided, copied := runOnce(false)
		if c > res.ColumnarMtps {
			res.ColumnarMtps = c
			res.GatherElided, res.GatherCopied = elided, copied
		}
	}
	res.RowMtps, res.ColumnarMtps = round2(res.RowMtps), round2(res.ColumnarMtps)
	if res.RowMtps > 0 {
		res.ColumnarVsRow = round2(res.ColumnarMtps / res.RowMtps)
	}
	return res
}

func operators(o Options) Report {
	o = o.WithDefaults()
	const batchTuples = 4096
	syn := synStream(42, 64, batchTuples*workload.SynTupleSize)
	synB := synStream(43, 64, batchTuples*workload.SynTupleSize)

	thetaJoin := query.NewBuilder("JOIN-THETA").
		FromAs("SynA", "A", workload.SynSchema, window.NewCount(128, 128)).
		FromAs("SynB", "B", workload.SynSchema, window.NewCount(128, 128)).
		Join(expr.Cmp{Op: expr.Lt, Left: expr.QCol("A", "a3"), Right: expr.QCol("B", "a3")}).
		MustBuild()

	cases := []struct {
		name    string
		q       *query.Query
		streams [2][]byte
	}{
		{"selection", workload.Select(2, window.NewCount(1024, 1024)), [2][]byte{syn, nil}},
		{"projection", workload.Proj(3, 1, window.NewCount(1024, 1024)), [2][]byte{syn, nil}},
		{"agg-scalar-prefix", workload.Agg(query.Sum, window.NewCount(512, 64)), [2][]byte{syn, nil}},
		{"agg-scalar-direct", workload.Agg(query.Max, window.NewCount(512, 64)), [2][]byte{syn, nil}},
		{"agg-grouped", workload.GroupBy([]query.AggFunc{query.Sum, query.Count}, 64, window.NewCount(512, 64)), [2][]byte{syn, nil}},
		{"join-equi", workload.Join(1, window.NewCount(256, 256)), [2][]byte{syn, synB}},
		{"join-theta", thetaJoin, [2][]byte{syn, synB}},
	}

	rep := Report{
		ID:     "operators",
		Title:  "CPU operator kernels: scalar vs vectorized vs columnar (native speed, Mt/s)",
		Header: []string{"operator", "scalar Mt/s", "vectorized Mt/s", "speedup", "columnar Mt/s", "col/row", "metrics-on Mt/s", "overhead %"},
	}
	reg := o.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	js := opsReport{TupleBytes: workload.SynTupleSize, BatchTuples: batchTuples}
	geomean, measured := 0.0, 0
	for _, c := range cases {
		s := measureOp(c.q, c.streams, false, false)
		rowV, col := measureOpColPair(c.q, c.streams)
		v, m, over := measureOpPair(c.q, c.streams, newOpInstr(reg, c.name))
		rep.Rows = append(rep.Rows, []string{c.name, f1(s), f1(v), f2(v / s), f1(col), f2(col / rowV), f1(m), f2(over)})
		js.Operators = append(js.Operators, opResult{
			Name: c.name, ScalarMtps: round2(s), VectorizedMtps: round2(v), Speedup: round2(v / s),
			ColumnarMtps: round2(col), ColumnarVsRow: round2(col / rowV),
			MetricsOnMtps: round2(m), MetricsOverheadPct: round2(over),
		})
		geomean += math.Log1p(over)
		measured++
	}
	if measured > 0 {
		js.MetricsOverheadPct = round2(math.Expm1(geomean / float64(measured)))
	}
	ing := ingestBandwidth(o)
	js.IngestBandwidth = &ing
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"ingest-bandwidth (%s, %d tuples end-to-end, no padding): row %.1f Mt/s, columnar %.1f Mt/s (%.2fx), %d gathers elided / %d wrap copies",
		ing.Query, ing.Tuples, ing.RowMtps, ing.ColumnarMtps, ing.ColumnarVsRow, ing.GatherElided, ing.GatherCopied))
	js.Metrics = reg.Snapshot()

	if buf, err := json.MarshalIndent(js, "", "  "); err == nil {
		if werr := os.WriteFile(operatorsJSONPath, append(buf, '\n'), 0o644); werr != nil {
			rep.Notes = append(rep.Notes, "could not write "+operatorsJSONPath+": "+werr.Error())
		} else {
			rep.Notes = append(rep.Notes, "machine-readable twin written to "+operatorsJSONPath)
		}
	}
	rep.Notes = append(rep.Notes,
		"native-speed Plan.Process over one pinned batch; no model padding, so numbers are host-dependent — compare the scalar/vectorized ratio, not absolutes")
	return rep
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
