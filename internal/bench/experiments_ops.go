package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"saber/internal/exec"
	"saber/internal/expr"
	"saber/internal/query"
	"saber/internal/window"
	"saber/internal/workload"
)

// The operators experiment measures the CPU batch operator functions at
// native speed — no model padding, no engine — comparing the per-tuple
// scalar reference against the vectorized batch kernels over one pinned
// query-task batch per operator. Alongside the text report it writes a
// machine-readable BENCH_operators.json for CI and regression tracking.

func init() {
	register("operators", "CPU operator kernels: scalar vs vectorized (native speed)", operators)
}

// operatorsJSONPath is where the experiment drops its JSON twin; tests
// point it into a scratch directory.
var operatorsJSONPath = "BENCH_operators.json"

type opResult struct {
	Name           string  `json:"name"`
	ScalarMtps     float64 `json:"scalar_mtps"`
	VectorizedMtps float64 `json:"vectorized_mtps"`
	Speedup        float64 `json:"speedup"`
}

type opsReport struct {
	TupleBytes  int        `json:"tuple_bytes"`
	BatchTuples int        `json:"batch_tuples"`
	Operators   []opResult `json:"operators"`
}

// measureOp processes the same batch repeatedly through one compiled plan
// and returns millions of input tuples per second.
func measureOp(q *query.Query, streams [2][]byte, vec bool) float64 {
	p, err := exec.Compile(q)
	if err != nil {
		panic(fmt.Sprintf("operators: compile %s: %v", q.Name, err))
	}
	p.SetVectorized(vec)
	var batches [2]exec.Batch
	tuples := 0
	for i := 0; i < p.NumInputs(); i++ {
		batches[i] = exec.Batch{Data: streams[i], Ctx: window.Context{PrevTimestamp: window.NoPrev}}
		tuples += len(streams[i]) / p.InputSchema(i).TupleSize()
	}
	iter := func() {
		res := p.NewResult()
		if err := p.Process(batches, res); err != nil {
			panic(err)
		}
		p.ReleaseResult(res)
	}
	iter() // warm the pools and the branch predictor
	// Best-of-trials: scheduler contention (e.g. other test packages
	// running in parallel) only ever slows a trial down, so the fastest
	// trial is the robust estimate of the kernel's actual rate.
	const trials = 5
	const minWall = 8 * time.Millisecond
	best := 0.0
	for t := 0; t < trials; t++ {
		n := 0
		start := time.Now()
		var elapsed time.Duration
		for {
			iter()
			n++
			if elapsed = time.Since(start); elapsed >= minWall && n >= 2 {
				break
			}
		}
		if r := float64(tuples) * float64(n) / elapsed.Seconds() / 1e6; r > best {
			best = r
		}
	}
	return best
}

func operators(o Options) Report {
	o = o.WithDefaults()
	const batchTuples = 4096
	syn := synStream(42, 64, batchTuples*workload.SynTupleSize)
	synB := synStream(43, 64, batchTuples*workload.SynTupleSize)

	thetaJoin := query.NewBuilder("JOIN-THETA").
		FromAs("SynA", "A", workload.SynSchema, window.NewCount(128, 128)).
		FromAs("SynB", "B", workload.SynSchema, window.NewCount(128, 128)).
		Join(expr.Cmp{Op: expr.Lt, Left: expr.QCol("A", "a3"), Right: expr.QCol("B", "a3")}).
		MustBuild()

	cases := []struct {
		name    string
		q       *query.Query
		streams [2][]byte
	}{
		{"selection", workload.Select(2, window.NewCount(1024, 1024)), [2][]byte{syn, nil}},
		{"projection", workload.Proj(3, 1, window.NewCount(1024, 1024)), [2][]byte{syn, nil}},
		{"agg-scalar-prefix", workload.Agg(query.Sum, window.NewCount(512, 64)), [2][]byte{syn, nil}},
		{"agg-scalar-direct", workload.Agg(query.Max, window.NewCount(512, 64)), [2][]byte{syn, nil}},
		{"agg-grouped", workload.GroupBy([]query.AggFunc{query.Sum, query.Count}, 64, window.NewCount(512, 64)), [2][]byte{syn, nil}},
		{"join-equi", workload.Join(1, window.NewCount(256, 256)), [2][]byte{syn, synB}},
		{"join-theta", thetaJoin, [2][]byte{syn, synB}},
	}

	rep := Report{
		ID:     "operators",
		Title:  "CPU operator kernels: scalar vs vectorized (native speed, Mt/s)",
		Header: []string{"operator", "scalar Mt/s", "vectorized Mt/s", "speedup"},
	}
	js := opsReport{TupleBytes: workload.SynTupleSize, BatchTuples: batchTuples}
	for _, c := range cases {
		s := measureOp(c.q, c.streams, false)
		v := measureOp(c.q, c.streams, true)
		rep.Rows = append(rep.Rows, []string{c.name, f1(s), f1(v), f2(v / s)})
		js.Operators = append(js.Operators, opResult{
			Name: c.name, ScalarMtps: round2(s), VectorizedMtps: round2(v), Speedup: round2(v / s),
		})
	}

	if buf, err := json.MarshalIndent(js, "", "  "); err == nil {
		if werr := os.WriteFile(operatorsJSONPath, append(buf, '\n'), 0o644); werr != nil {
			rep.Notes = append(rep.Notes, "could not write "+operatorsJSONPath+": "+werr.Error())
		} else {
			rep.Notes = append(rep.Notes, "machine-readable twin written to "+operatorsJSONPath)
		}
	}
	rep.Notes = append(rep.Notes,
		"native-speed Plan.Process over one pinned batch; no model padding, so numbers are host-dependent — compare the scalar/vectorized ratio, not absolutes")
	return rep
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
