package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is a circuit breaker's state.
type BreakerState int32

// Breaker states.
const (
	// BreakerClosed: the GPGPU is healthy; tasks flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the device failed too many consecutive tasks; no new
	// tasks are submitted and the scheduler routes everything to the CPU
	// class until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe task is
	// allowed through. Success closes the breaker, failure reopens it.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Breaker is the GPGPU circuit breaker: it opens after Threshold
// consecutive device-side task failures, sheds all GPGPU work onto the
// CPU class while open (graceful degradation of the hybrid model), and
// half-open-probes the device after the cooldown to recover. The GPGPU
// worker drives it (Acquire before submitting, RecordSuccess/
// RecordFailure after completion); HLS consults State to route
// GPU-preferred tasks to the CPU while the breaker is not closed.
type Breaker struct {
	threshold int64
	cooldown  time.Duration

	mu       sync.Mutex
	state    BreakerState
	consec   int64 // consecutive failures
	openedAt time.Time
	probeOut bool // a half-open probe is in flight

	// Telemetry.
	opens    atomic.Int64
	closes   atomic.Int64
	probes   atomic.Int64
	rejected atomic.Int64 // Acquire calls refused while open/probing
}

// NewBreaker creates a closed breaker that opens after threshold
// consecutive failures and probes after cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 50 * time.Millisecond
	}
	return &Breaker{threshold: int64(threshold), cooldown: cooldown}
}

// Acquire asks permission to submit one task to the device. probe is
// true when the grant is the single half-open probe; the caller must
// resolve it with RecordSuccess/RecordFailure, or return it with
// CancelProbe if no task was available to submit. Safe on nil (always
// allows: no breaker configured).
func (b *Breaker) Acquire() (allow, probe bool) {
	if b == nil {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			b.probeOut = true
			b.probes.Add(1)
			return true, true
		}
		b.rejected.Add(1)
		return false, false
	default: // BreakerHalfOpen
		if !b.probeOut {
			b.probeOut = true
			b.probes.Add(1)
			return true, true
		}
		b.rejected.Add(1)
		return false, false
	}
}

// CancelProbe returns an unused probe grant (the worker acquired it but
// found no task to submit). A grant already invalidated by a transition
// out of half-open is ignored, so a stale cancel can never release a
// probe slot that belongs to a newer half-open cycle.
func (b *Breaker) CancelProbe(probe bool) {
	if b == nil || !probe {
		return
	}
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.probeOut = false
	}
	b.mu.Unlock()
}

// RecordSuccess reports a completed device task. Any success closes the
// breaker and resets the failure streak; closing also resolves the probe
// cycle, invalidating any still-outstanding grant.
func (b *Breaker) RecordSuccess(probe bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec = 0
	b.probeOut = false
	if b.state != BreakerClosed {
		b.state = BreakerClosed
		b.closes.Add(1)
	}
}

// RecordFailure reports a failed (or timed-out) device task. Any failure
// while half-open — the probe itself, or an older in-flight task that was
// submitted before the breaker opened — reopens the breaker; in the
// closed state the breaker opens once the consecutive-failure streak
// reaches the threshold. Every transition out of half-open clears the
// outstanding probe grant, so probeOut is true only while half-open (the
// invariant CheckInvariants asserts) and an orphaned in-flight probe
// resolving later cannot double-grant the next cycle's probe: its
// eventual RecordSuccess/RecordFailure is handled as an ordinary
// completion.
func (b *Breaker) RecordFailure(probe bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec++
	switch {
	case b.state == BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = time.Now()
		b.opens.Add(1)
		b.probeOut = false
	case b.state == BreakerClosed && b.consec >= b.threshold:
		b.state = BreakerOpen
		b.openedAt = time.Now()
		b.opens.Add(1)
	}
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens counts closed/half-open → open transitions.
func (b *Breaker) Opens() int64 {
	if b == nil {
		return 0
	}
	return b.opens.Load()
}

// Closes counts open/half-open → closed transitions.
func (b *Breaker) Closes() int64 {
	if b == nil {
		return 0
	}
	return b.closes.Load()
}

// Probes counts half-open probe grants.
func (b *Breaker) Probes() int64 {
	if b == nil {
		return 0
	}
	return b.probes.Load()
}

// Rejected counts Acquire calls refused while the device was gated.
func (b *Breaker) Rejected() int64 {
	if b == nil {
		return 0
	}
	return b.rejected.Load()
}

// InvariantName implements the inv.Checker contract.
func (b *Breaker) InvariantName() string { return "sched.breaker" }

// CheckInvariants verifies the breaker's bookkeeping:
//
//   - the state is one of the three defined states;
//   - the consecutive-failure streak is non-negative;
//   - a probe can only be outstanding in the half-open state;
//   - transition counters balance: closes never exceed opens, and the
//     breaker can only be non-closed after at least one open.
func (b *Breaker) CheckInvariants() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed && b.state != BreakerOpen && b.state != BreakerHalfOpen {
		return fmt.Errorf("undefined state %d", b.state)
	}
	if b.consec < 0 {
		return fmt.Errorf("negative failure streak %d", b.consec)
	}
	if b.probeOut && b.state != BreakerHalfOpen {
		return fmt.Errorf("probe outstanding in %v state", b.state)
	}
	opens, closes := b.opens.Load(), b.closes.Load()
	if closes > opens {
		return fmt.Errorf("%d closes exceed %d opens", closes, opens)
	}
	if b.state != BreakerClosed && opens == 0 {
		return fmt.Errorf("%v state with zero opens", b.state)
	}
	return nil
}
